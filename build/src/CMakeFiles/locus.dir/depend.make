# Empty dependencies file for locus.
# This may be replaced when dependencies are built.
