
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/Affine.cpp" "src/CMakeFiles/locus.dir/analysis/Affine.cpp.o" "gcc" "src/CMakeFiles/locus.dir/analysis/Affine.cpp.o.d"
  "/root/repo/src/analysis/Dependence.cpp" "src/CMakeFiles/locus.dir/analysis/Dependence.cpp.o" "gcc" "src/CMakeFiles/locus.dir/analysis/Dependence.cpp.o.d"
  "/root/repo/src/baseline/Pluto.cpp" "src/CMakeFiles/locus.dir/baseline/Pluto.cpp.o" "gcc" "src/CMakeFiles/locus.dir/baseline/Pluto.cpp.o.d"
  "/root/repo/src/cir/Ast.cpp" "src/CMakeFiles/locus.dir/cir/Ast.cpp.o" "gcc" "src/CMakeFiles/locus.dir/cir/Ast.cpp.o.d"
  "/root/repo/src/cir/AstUtils.cpp" "src/CMakeFiles/locus.dir/cir/AstUtils.cpp.o" "gcc" "src/CMakeFiles/locus.dir/cir/AstUtils.cpp.o.d"
  "/root/repo/src/cir/Lexer.cpp" "src/CMakeFiles/locus.dir/cir/Lexer.cpp.o" "gcc" "src/CMakeFiles/locus.dir/cir/Lexer.cpp.o.d"
  "/root/repo/src/cir/Parser.cpp" "src/CMakeFiles/locus.dir/cir/Parser.cpp.o" "gcc" "src/CMakeFiles/locus.dir/cir/Parser.cpp.o.d"
  "/root/repo/src/cir/PathIndex.cpp" "src/CMakeFiles/locus.dir/cir/PathIndex.cpp.o" "gcc" "src/CMakeFiles/locus.dir/cir/PathIndex.cpp.o.d"
  "/root/repo/src/cir/Printer.cpp" "src/CMakeFiles/locus.dir/cir/Printer.cpp.o" "gcc" "src/CMakeFiles/locus.dir/cir/Printer.cpp.o.d"
  "/root/repo/src/driver/Orchestrator.cpp" "src/CMakeFiles/locus.dir/driver/Orchestrator.cpp.o" "gcc" "src/CMakeFiles/locus.dir/driver/Orchestrator.cpp.o.d"
  "/root/repo/src/eval/Evaluator.cpp" "src/CMakeFiles/locus.dir/eval/Evaluator.cpp.o" "gcc" "src/CMakeFiles/locus.dir/eval/Evaluator.cpp.o.d"
  "/root/repo/src/eval/NativeEvaluator.cpp" "src/CMakeFiles/locus.dir/eval/NativeEvaluator.cpp.o" "gcc" "src/CMakeFiles/locus.dir/eval/NativeEvaluator.cpp.o.d"
  "/root/repo/src/locus/Interpreter.cpp" "src/CMakeFiles/locus.dir/locus/Interpreter.cpp.o" "gcc" "src/CMakeFiles/locus.dir/locus/Interpreter.cpp.o.d"
  "/root/repo/src/locus/LocusAst.cpp" "src/CMakeFiles/locus.dir/locus/LocusAst.cpp.o" "gcc" "src/CMakeFiles/locus.dir/locus/LocusAst.cpp.o.d"
  "/root/repo/src/locus/LocusLexer.cpp" "src/CMakeFiles/locus.dir/locus/LocusLexer.cpp.o" "gcc" "src/CMakeFiles/locus.dir/locus/LocusLexer.cpp.o.d"
  "/root/repo/src/locus/LocusParser.cpp" "src/CMakeFiles/locus.dir/locus/LocusParser.cpp.o" "gcc" "src/CMakeFiles/locus.dir/locus/LocusParser.cpp.o.d"
  "/root/repo/src/locus/LocusPrinter.cpp" "src/CMakeFiles/locus.dir/locus/LocusPrinter.cpp.o" "gcc" "src/CMakeFiles/locus.dir/locus/LocusPrinter.cpp.o.d"
  "/root/repo/src/locus/Modules.cpp" "src/CMakeFiles/locus.dir/locus/Modules.cpp.o" "gcc" "src/CMakeFiles/locus.dir/locus/Modules.cpp.o.d"
  "/root/repo/src/locus/Optimizer.cpp" "src/CMakeFiles/locus.dir/locus/Optimizer.cpp.o" "gcc" "src/CMakeFiles/locus.dir/locus/Optimizer.cpp.o.d"
  "/root/repo/src/locus/Value.cpp" "src/CMakeFiles/locus.dir/locus/Value.cpp.o" "gcc" "src/CMakeFiles/locus.dir/locus/Value.cpp.o.d"
  "/root/repo/src/machine/CacheSim.cpp" "src/CMakeFiles/locus.dir/machine/CacheSim.cpp.o" "gcc" "src/CMakeFiles/locus.dir/machine/CacheSim.cpp.o.d"
  "/root/repo/src/search/Searchers.cpp" "src/CMakeFiles/locus.dir/search/Searchers.cpp.o" "gcc" "src/CMakeFiles/locus.dir/search/Searchers.cpp.o.d"
  "/root/repo/src/search/Space.cpp" "src/CMakeFiles/locus.dir/search/Space.cpp.o" "gcc" "src/CMakeFiles/locus.dir/search/Space.cpp.o.d"
  "/root/repo/src/support/StringUtils.cpp" "src/CMakeFiles/locus.dir/support/StringUtils.cpp.o" "gcc" "src/CMakeFiles/locus.dir/support/StringUtils.cpp.o.d"
  "/root/repo/src/transform/AltdescPragmas.cpp" "src/CMakeFiles/locus.dir/transform/AltdescPragmas.cpp.o" "gcc" "src/CMakeFiles/locus.dir/transform/AltdescPragmas.cpp.o.d"
  "/root/repo/src/transform/FusionDistribution.cpp" "src/CMakeFiles/locus.dir/transform/FusionDistribution.cpp.o" "gcc" "src/CMakeFiles/locus.dir/transform/FusionDistribution.cpp.o.d"
  "/root/repo/src/transform/GenericTiling.cpp" "src/CMakeFiles/locus.dir/transform/GenericTiling.cpp.o" "gcc" "src/CMakeFiles/locus.dir/transform/GenericTiling.cpp.o.d"
  "/root/repo/src/transform/Interchange.cpp" "src/CMakeFiles/locus.dir/transform/Interchange.cpp.o" "gcc" "src/CMakeFiles/locus.dir/transform/Interchange.cpp.o.d"
  "/root/repo/src/transform/LicmScalarRepl.cpp" "src/CMakeFiles/locus.dir/transform/LicmScalarRepl.cpp.o" "gcc" "src/CMakeFiles/locus.dir/transform/LicmScalarRepl.cpp.o.d"
  "/root/repo/src/transform/Tiling.cpp" "src/CMakeFiles/locus.dir/transform/Tiling.cpp.o" "gcc" "src/CMakeFiles/locus.dir/transform/Tiling.cpp.o.d"
  "/root/repo/src/transform/Transform.cpp" "src/CMakeFiles/locus.dir/transform/Transform.cpp.o" "gcc" "src/CMakeFiles/locus.dir/transform/Transform.cpp.o.d"
  "/root/repo/src/transform/Unroll.cpp" "src/CMakeFiles/locus.dir/transform/Unroll.cpp.o" "gcc" "src/CMakeFiles/locus.dir/transform/Unroll.cpp.o.d"
  "/root/repo/src/workloads/Workloads.cpp" "src/CMakeFiles/locus.dir/workloads/Workloads.cpp.o" "gcc" "src/CMakeFiles/locus.dir/workloads/Workloads.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
