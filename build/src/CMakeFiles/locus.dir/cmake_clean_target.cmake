file(REMOVE_RECURSE
  "liblocus.a"
)
