# Empty compiler generated dependencies file for locus_tests.
# This may be replaced when dependencies are built.
