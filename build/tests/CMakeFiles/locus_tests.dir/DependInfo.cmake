
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/CirParserTest.cpp" "tests/CMakeFiles/locus_tests.dir/CirParserTest.cpp.o" "gcc" "tests/CMakeFiles/locus_tests.dir/CirParserTest.cpp.o.d"
  "/root/repo/tests/DependenceTest.cpp" "tests/CMakeFiles/locus_tests.dir/DependenceTest.cpp.o" "gcc" "tests/CMakeFiles/locus_tests.dir/DependenceTest.cpp.o.d"
  "/root/repo/tests/DriverTest.cpp" "tests/CMakeFiles/locus_tests.dir/DriverTest.cpp.o" "gcc" "tests/CMakeFiles/locus_tests.dir/DriverTest.cpp.o.d"
  "/root/repo/tests/EvaluatorTest.cpp" "tests/CMakeFiles/locus_tests.dir/EvaluatorTest.cpp.o" "gcc" "tests/CMakeFiles/locus_tests.dir/EvaluatorTest.cpp.o.d"
  "/root/repo/tests/LocusLangTest.cpp" "tests/CMakeFiles/locus_tests.dir/LocusLangTest.cpp.o" "gcc" "tests/CMakeFiles/locus_tests.dir/LocusLangTest.cpp.o.d"
  "/root/repo/tests/LocusPrinterTest.cpp" "tests/CMakeFiles/locus_tests.dir/LocusPrinterTest.cpp.o" "gcc" "tests/CMakeFiles/locus_tests.dir/LocusPrinterTest.cpp.o.d"
  "/root/repo/tests/NativeEvaluatorTest.cpp" "tests/CMakeFiles/locus_tests.dir/NativeEvaluatorTest.cpp.o" "gcc" "tests/CMakeFiles/locus_tests.dir/NativeEvaluatorTest.cpp.o.d"
  "/root/repo/tests/OptimizerTest.cpp" "tests/CMakeFiles/locus_tests.dir/OptimizerTest.cpp.o" "gcc" "tests/CMakeFiles/locus_tests.dir/OptimizerTest.cpp.o.d"
  "/root/repo/tests/PropertyTest.cpp" "tests/CMakeFiles/locus_tests.dir/PropertyTest.cpp.o" "gcc" "tests/CMakeFiles/locus_tests.dir/PropertyTest.cpp.o.d"
  "/root/repo/tests/SearchTest.cpp" "tests/CMakeFiles/locus_tests.dir/SearchTest.cpp.o" "gcc" "tests/CMakeFiles/locus_tests.dir/SearchTest.cpp.o.d"
  "/root/repo/tests/SupportTest.cpp" "tests/CMakeFiles/locus_tests.dir/SupportTest.cpp.o" "gcc" "tests/CMakeFiles/locus_tests.dir/SupportTest.cpp.o.d"
  "/root/repo/tests/TransformTest.cpp" "tests/CMakeFiles/locus_tests.dir/TransformTest.cpp.o" "gcc" "tests/CMakeFiles/locus_tests.dir/TransformTest.cpp.o.d"
  "/root/repo/tests/WorkloadsTest.cpp" "tests/CMakeFiles/locus_tests.dir/WorkloadsTest.cpp.o" "gcc" "tests/CMakeFiles/locus_tests.dir/WorkloadsTest.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/locus.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
