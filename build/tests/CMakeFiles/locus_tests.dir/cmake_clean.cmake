file(REMOVE_RECURSE
  "CMakeFiles/locus_tests.dir/CirParserTest.cpp.o"
  "CMakeFiles/locus_tests.dir/CirParserTest.cpp.o.d"
  "CMakeFiles/locus_tests.dir/DependenceTest.cpp.o"
  "CMakeFiles/locus_tests.dir/DependenceTest.cpp.o.d"
  "CMakeFiles/locus_tests.dir/DriverTest.cpp.o"
  "CMakeFiles/locus_tests.dir/DriverTest.cpp.o.d"
  "CMakeFiles/locus_tests.dir/EvaluatorTest.cpp.o"
  "CMakeFiles/locus_tests.dir/EvaluatorTest.cpp.o.d"
  "CMakeFiles/locus_tests.dir/LocusLangTest.cpp.o"
  "CMakeFiles/locus_tests.dir/LocusLangTest.cpp.o.d"
  "CMakeFiles/locus_tests.dir/LocusPrinterTest.cpp.o"
  "CMakeFiles/locus_tests.dir/LocusPrinterTest.cpp.o.d"
  "CMakeFiles/locus_tests.dir/NativeEvaluatorTest.cpp.o"
  "CMakeFiles/locus_tests.dir/NativeEvaluatorTest.cpp.o.d"
  "CMakeFiles/locus_tests.dir/OptimizerTest.cpp.o"
  "CMakeFiles/locus_tests.dir/OptimizerTest.cpp.o.d"
  "CMakeFiles/locus_tests.dir/PropertyTest.cpp.o"
  "CMakeFiles/locus_tests.dir/PropertyTest.cpp.o.d"
  "CMakeFiles/locus_tests.dir/SearchTest.cpp.o"
  "CMakeFiles/locus_tests.dir/SearchTest.cpp.o.d"
  "CMakeFiles/locus_tests.dir/SupportTest.cpp.o"
  "CMakeFiles/locus_tests.dir/SupportTest.cpp.o.d"
  "CMakeFiles/locus_tests.dir/TransformTest.cpp.o"
  "CMakeFiles/locus_tests.dir/TransformTest.cpp.o.d"
  "CMakeFiles/locus_tests.dir/WorkloadsTest.cpp.o"
  "CMakeFiles/locus_tests.dir/WorkloadsTest.cpp.o.d"
  "locus_tests"
  "locus_tests.pdb"
  "locus_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/locus_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
