file(REMOVE_RECURSE
  "CMakeFiles/fig6_stencils.dir/fig6_stencils.cpp.o"
  "CMakeFiles/fig6_stencils.dir/fig6_stencils.cpp.o.d"
  "fig6_stencils"
  "fig6_stencils.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_stencils.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
