# Empty compiler generated dependencies file for fig6_stencils.
# This may be replaced when dependencies are built.
