file(REMOVE_RECURSE
  "CMakeFiles/table1_loopnests.dir/table1_loopnests.cpp.o"
  "CMakeFiles/table1_loopnests.dir/table1_loopnests.cpp.o.d"
  "table1_loopnests"
  "table1_loopnests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_loopnests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
