# Empty dependencies file for table1_loopnests.
# This may be replaced when dependencies are built.
