file(REMOVE_RECURSE
  "CMakeFiles/ablation_search.dir/ablation_search.cpp.o"
  "CMakeFiles/ablation_search.dir/ablation_search.cpp.o.d"
  "ablation_search"
  "ablation_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
