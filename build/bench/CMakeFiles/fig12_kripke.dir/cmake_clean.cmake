file(REMOVE_RECURSE
  "CMakeFiles/fig12_kripke.dir/fig12_kripke.cpp.o"
  "CMakeFiles/fig12_kripke.dir/fig12_kripke.cpp.o.d"
  "fig12_kripke"
  "fig12_kripke.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_kripke.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
