# Empty compiler generated dependencies file for fig12_kripke.
# This may be replaced when dependencies are built.
