file(REMOVE_RECURSE
  "CMakeFiles/fig7_space.dir/fig7_space.cpp.o"
  "CMakeFiles/fig7_space.dir/fig7_space.cpp.o.d"
  "fig7_space"
  "fig7_space.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_space.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
