# Empty dependencies file for fig7_space.
# This may be replaced when dependencies are built.
