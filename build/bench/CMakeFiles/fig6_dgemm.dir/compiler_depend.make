# Empty compiler generated dependencies file for fig6_dgemm.
# This may be replaced when dependencies are built.
