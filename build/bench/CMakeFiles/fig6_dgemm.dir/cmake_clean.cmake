file(REMOVE_RECURSE
  "CMakeFiles/fig6_dgemm.dir/fig6_dgemm.cpp.o"
  "CMakeFiles/fig6_dgemm.dir/fig6_dgemm.cpp.o.d"
  "fig6_dgemm"
  "fig6_dgemm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_dgemm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
