# Empty compiler generated dependencies file for stencil_tuning.
# This may be replaced when dependencies are built.
