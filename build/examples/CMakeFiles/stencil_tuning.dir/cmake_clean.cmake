file(REMOVE_RECURSE
  "CMakeFiles/stencil_tuning.dir/stencil_tuning.cpp.o"
  "CMakeFiles/stencil_tuning.dir/stencil_tuning.cpp.o.d"
  "stencil_tuning"
  "stencil_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stencil_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
