file(REMOVE_RECURSE
  "CMakeFiles/locus_cli.dir/locus_cli.cpp.o"
  "CMakeFiles/locus_cli.dir/locus_cli.cpp.o.d"
  "locus_cli"
  "locus_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/locus_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
