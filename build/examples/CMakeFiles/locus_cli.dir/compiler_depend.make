# Empty compiler generated dependencies file for locus_cli.
# This may be replaced when dependencies are built.
