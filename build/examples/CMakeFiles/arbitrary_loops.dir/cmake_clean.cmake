file(REMOVE_RECURSE
  "CMakeFiles/arbitrary_loops.dir/arbitrary_loops.cpp.o"
  "CMakeFiles/arbitrary_loops.dir/arbitrary_loops.cpp.o.d"
  "arbitrary_loops"
  "arbitrary_loops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/arbitrary_loops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
