# Empty dependencies file for arbitrary_loops.
# This may be replaced when dependencies are built.
