file(REMOVE_RECURSE
  "CMakeFiles/kripke_layouts.dir/kripke_layouts.cpp.o"
  "CMakeFiles/kripke_layouts.dir/kripke_layouts.cpp.o.d"
  "kripke_layouts"
  "kripke_layouts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kripke_layouts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
