# Empty compiler generated dependencies file for kripke_layouts.
# This may be replaced when dependencies are built.
