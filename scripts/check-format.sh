#!/usr/bin/env bash
# Checks that every C++ source conforms to .clang-format.
#
# Exits 0 when everything is clean OR when clang-format is not installed
# (prints a notice so CI logs show the check was skipped, not passed).
# Exits 1 listing the offending files otherwise.
set -u

cd "$(dirname "$0")/.."

CLANG_FORMAT="${CLANG_FORMAT:-clang-format}"
if ! command -v "$CLANG_FORMAT" >/dev/null 2>&1; then
  echo "check-format: '$CLANG_FORMAT' not found; skipping format check" >&2
  exit 0
fi

mapfile -t FILES < <(git ls-files '*.cpp' '*.h')
if [ "${#FILES[@]}" -eq 0 ]; then
  echo "check-format: no C++ sources found" >&2
  exit 0
fi

BAD=()
for F in "${FILES[@]}"; do
  if ! "$CLANG_FORMAT" --dry-run -Werror "$F" >/dev/null 2>&1; then
    BAD+=("$F")
  fi
done

if [ "${#BAD[@]}" -ne 0 ]; then
  echo "check-format: ${#BAD[@]} file(s) need formatting:" >&2
  printf '  %s\n' "${BAD[@]}" >&2
  echo "run: $CLANG_FORMAT -i ${BAD[*]}" >&2
  exit 1
fi

echo "check-format: ${#FILES[@]} files clean"
