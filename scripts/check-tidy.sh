#!/usr/bin/env bash
# Runs clang-tidy with the repo's curated .clang-tidy profile over src/.
#
# Exits 0 when everything is clean OR when clang-tidy is not installed
# (prints a notice so CI logs show the check was skipped, not passed).
# Exits 1 with the diagnostics otherwise.
#
# Requires a compile_commands.json; pass the build directory as $1 or set
# BUILD_DIR (default: build). Configure with
#   cmake -B build -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON
set -u

cd "$(dirname "$0")/.."

CLANG_TIDY="${CLANG_TIDY:-clang-tidy}"
if ! command -v "$CLANG_TIDY" >/dev/null 2>&1; then
  echo "check-tidy: '$CLANG_TIDY' not found; skipping tidy check" >&2
  exit 0
fi

BUILD_DIR="${1:-${BUILD_DIR:-build}}"
if [ ! -f "$BUILD_DIR/compile_commands.json" ]; then
  echo "check-tidy: no $BUILD_DIR/compile_commands.json; configure with" >&2
  echo "  cmake -B $BUILD_DIR -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON" >&2
  exit 1
fi

mapfile -t FILES < <(git ls-files 'src/*.cpp')
if [ "${#FILES[@]}" -eq 0 ]; then
  echo "check-tidy: no C++ sources found" >&2
  exit 0
fi

if command -v run-clang-tidy >/dev/null 2>&1; then
  run-clang-tidy -clang-tidy-binary "$CLANG_TIDY" -p "$BUILD_DIR" \
    -quiet "${FILES[@]}"
  STATUS=$?
else
  STATUS=0
  for F in "${FILES[@]}"; do
    "$CLANG_TIDY" -p "$BUILD_DIR" --quiet "$F" || STATUS=1
  done
fi

if [ "$STATUS" -ne 0 ]; then
  echo "check-tidy: clang-tidy reported errors" >&2
  exit 1
fi

echo "check-tidy: ${#FILES[@]} files clean"
