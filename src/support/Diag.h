//===- Diag.h - Severity/location diagnostics -------------------*- C++ -*-===//
///
/// \file
/// The diagnostics engine shared by the CIR verifier, the dependence
/// analyzer and the lint workflow. A diagnostic carries a severity, a source
/// location in the analyzed MiniC file (threaded through the lexer, parser
/// and AST as SrcLoc), and the name of the Locus code region it concerns,
/// so a failed legality check or a broken rewrite points at the line that
/// caused it instead of surfacing as a bare reason string.
///
//===----------------------------------------------------------------------===//
#ifndef LOCUS_SUPPORT_DIAG_H
#define LOCUS_SUPPORT_DIAG_H

#include <string>
#include <vector>

namespace locus {
namespace support {

/// A position in the analyzed source: 1-based line and column. Line 0 means
/// "no location" (e.g. AST nodes synthesized by a transformation).
struct SrcLoc {
  int Line = 0;
  int Col = 0;

  bool valid() const { return Line > 0; }

  /// "line 12:5", "line 12", or "<unknown location>".
  std::string str() const;
};

enum class DiagSeverity { Note, Warning, Error };

const char *diagSeverityName(DiagSeverity S);

/// One diagnostic: severity + location + region context + message.
struct Diag {
  DiagSeverity Sev = DiagSeverity::Error;
  SrcLoc Loc;
  std::string Region; ///< Locus region name; may be empty
  std::string Message;

  /// "line 12:5: error: [matmul] message".
  std::string render() const;
};

/// Accumulates diagnostics; used by the verifier and the lint workflow.
class DiagEngine {
public:
  void report(DiagSeverity Sev, SrcLoc Loc, std::string Region,
              std::string Message);
  void error(SrcLoc Loc, std::string Region, std::string Message) {
    report(DiagSeverity::Error, Loc, std::move(Region), std::move(Message));
  }
  void warning(SrcLoc Loc, std::string Region, std::string Message) {
    report(DiagSeverity::Warning, Loc, std::move(Region), std::move(Message));
  }
  void note(SrcLoc Loc, std::string Region, std::string Message) {
    report(DiagSeverity::Note, Loc, std::move(Region), std::move(Message));
  }

  const std::vector<Diag> &all() const { return Diags; }
  bool empty() const { return Diags.empty(); }

  bool hasErrors() const;
  size_t errorCount() const;

  /// The first error diagnostic; only valid when hasErrors().
  const Diag &firstError() const;

  /// All diagnostics rendered one per line (trailing newline included when
  /// non-empty).
  std::string renderAll() const;

private:
  std::vector<Diag> Diags;
};

} // namespace support
} // namespace locus

#endif // LOCUS_SUPPORT_DIAG_H
