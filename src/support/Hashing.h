//===- Hashing.h - FNV-1a hashing utilities --------------------*- C++ -*-===//
///
/// \file
/// Stable (cross-run, cross-platform) hashing used for code-region coherence
/// checks and search-point deduplication.
///
//===----------------------------------------------------------------------===//
#ifndef LOCUS_SUPPORT_HASHING_H
#define LOCUS_SUPPORT_HASHING_H

#include <cstdint>
#include <string_view>

namespace locus {

/// 64-bit FNV-1a over a byte sequence.
inline uint64_t fnv1a(std::string_view Data, uint64_t Seed = 0xcbf29ce484222325ULL) {
  uint64_t Hash = Seed;
  for (unsigned char C : Data) {
    Hash ^= C;
    Hash *= 0x100000001b3ULL;
  }
  return Hash;
}

/// Mixes an integer into an existing hash value.
inline uint64_t hashCombine(uint64_t Hash, uint64_t Value) {
  Hash ^= Value + 0x9e3779b97f4a7c15ULL + (Hash << 6) + (Hash >> 2);
  return Hash;
}

} // namespace locus

#endif // LOCUS_SUPPORT_HASHING_H
