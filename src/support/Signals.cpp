//===- Signals.cpp - Graceful-shutdown signal flag ------------------------===//

#include "src/support/Signals.h"

#include <csignal>

namespace locus {
namespace support {

namespace {

std::atomic<bool> ShutdownFlag{false};

extern "C" void shutdownHandler(int Sig) {
  ShutdownFlag.store(true, std::memory_order_relaxed);
  // Re-arm to the default disposition: a second SIGINT/SIGTERM kills the
  // process even if the cooperative stop is stuck in a long evaluation.
  std::signal(Sig, SIG_DFL);
}

} // namespace

void installShutdownFlag() {
  struct sigaction SA;
  SA.sa_handler = shutdownHandler;
  sigemptyset(&SA.sa_mask);
  // No SA_RESTART: blocking syscalls must return EINTR so loops observe
  // the flag instead of sleeping through it.
  SA.sa_flags = 0;
  sigaction(SIGTERM, &SA, nullptr);
  sigaction(SIGINT, &SA, nullptr);
}

const std::atomic<bool> *shutdownFlag() { return &ShutdownFlag; }

bool shutdownRequested() {
  return ShutdownFlag.load(std::memory_order_relaxed);
}

void requestShutdown() {
  ShutdownFlag.store(true, std::memory_order_relaxed);
}

} // namespace support
} // namespace locus
