//===- Subprocess.cpp - Sandboxed subprocess execution --------------------===//

#include "src/support/Subprocess.h"

#include "src/support/Posix.h"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include <dirent.h>
#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/resource.h>
#include <sys/stat.h>
#ifdef __linux__
#include <sys/prctl.h>
#endif
#include <sys/time.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <time.h>
#include <unistd.h>

namespace locus {
namespace support {

namespace {

double monotonicSeconds() {
  timespec Ts;
  clock_gettime(CLOCK_MONOTONIC, &Ts);
  return static_cast<double>(Ts.tv_sec) + 1e-9 * static_cast<double>(Ts.tv_nsec);
}

/// Child-side rlimit application; async-signal-safe (setrlimit only).
/// Failures are deliberately ignored: a host without rlimit support still
/// gets timeout supervision from the parent-side watchdog.
void applyLimits(const SubprocessLimits &L) {
  rlimit R;
  // Core dumps off unconditionally: a crashing variant must not litter the
  // workdir (or stall on a multi-GiB dump) once per failing point.
  R.rlim_cur = 0;
  R.rlim_max = 0;
  setrlimit(RLIMIT_CORE, &R);
  if (L.CpuSeconds > 0) {
    R.rlim_cur = static_cast<rlim_t>(L.CpuSeconds);
    // Hard limit one second above soft: SIGXCPU first, SIGKILL backstop.
    R.rlim_max = static_cast<rlim_t>(L.CpuSeconds + 1);
    setrlimit(RLIMIT_CPU, &R);
  }
  if (L.AddressSpaceBytes > 0) {
    R.rlim_cur = R.rlim_max = static_cast<rlim_t>(L.AddressSpaceBytes);
    setrlimit(RLIMIT_AS, &R);
  }
  if (L.FileSizeBytes > 0) {
    R.rlim_cur = R.rlim_max = static_cast<rlim_t>(L.FileSizeBytes);
    setrlimit(RLIMIT_FSIZE, &R);
  }
}

/// Appends up to the cap from one pipe; returns false on EOF.
bool drainPipe(int Fd, std::string &Sink, size_t Cap, bool &Truncated) {
  char Buf[65536];
  for (;;) {
    ssize_t N = retryRead(Fd, Buf, sizeof(Buf));
    if (N == 0)
      return false;
    if (N < 0)
      return errno == EAGAIN || errno == EWOULDBLOCK;
    size_t Got = static_cast<size_t>(N);
    size_t Take = Sink.size() < Cap ? std::min(Got, Cap - Sink.size()) : 0;
    Sink.append(Buf, Take);
    if (Take < Got)
      Truncated = true;
    if (static_cast<size_t>(N) < sizeof(Buf))
      return true; // pipe momentarily empty
  }
}

void setNonBlocking(int Fd) {
  int Flags = fcntl(Fd, F_GETFL, 0);
  if (Flags >= 0)
    fcntl(Fd, F_SETFL, Flags | O_NONBLOCK);
}

/// Signals the child's whole process group (falling back to the child alone
/// if the group is already gone).
void signalGroup(pid_t Pid, int Sig) {
  if (kill(-Pid, Sig) != 0)
    kill(Pid, Sig);
}

} // namespace

std::string signalName(int Sig) {
  switch (Sig) {
  case SIGHUP:  return "SIGHUP";
  case SIGINT:  return "SIGINT";
  case SIGQUIT: return "SIGQUIT";
  case SIGILL:  return "SIGILL";
  case SIGTRAP: return "SIGTRAP";
  case SIGABRT: return "SIGABRT";
  case SIGBUS:  return "SIGBUS";
  case SIGFPE:  return "SIGFPE";
  case SIGKILL: return "SIGKILL";
  case SIGUSR1: return "SIGUSR1";
  case SIGSEGV: return "SIGSEGV";
  case SIGUSR2: return "SIGUSR2";
  case SIGPIPE: return "SIGPIPE";
  case SIGALRM: return "SIGALRM";
  case SIGTERM: return "SIGTERM";
  case SIGXCPU: return "SIGXCPU";
  case SIGXFSZ: return "SIGXFSZ";
  default:      return "signal " + std::to_string(Sig);
  }
}

bool rlimitsSupported() {
  rlimit R;
  return getrlimit(RLIMIT_CPU, &R) == 0;
}

std::string SubprocessResult::describe() const {
  char Buf[128];
  switch (Exit) {
  case SpawnExit::Exited:
    std::snprintf(Buf, sizeof(Buf), "exited %d", ExitCode);
    return Buf;
  case SpawnExit::Signaled:
    return "killed by " + signalName(Signal);
  case SpawnExit::TimedOut:
    std::snprintf(Buf, sizeof(Buf), "timed out after %.2fs%s", ElapsedSeconds,
                  TermEscalated ? " (SIGTERM escalated to SIGKILL)" : "");
    return Buf;
  case SpawnExit::SpawnFailed:
    return "spawn failed: " + SpawnError;
  }
  return "unknown";
}

SubprocessResult runSubprocess(const SubprocessOptions &Opts) {
  SubprocessResult Res;
  if (Opts.Argv.empty()) {
    Res.SpawnError = "empty argv";
    return Res;
  }

  int OutPipe[2], ErrPipe[2], StatusPipe[2];
  if (pipe(OutPipe) != 0) {
    Res.SpawnError = std::string("pipe: ") + std::strerror(errno);
    return Res;
  }
  if (pipe(ErrPipe) != 0) {
    Res.SpawnError = std::string("pipe: ") + std::strerror(errno);
    close(OutPipe[0]); close(OutPipe[1]);
    return Res;
  }
  // exec-failure reporting channel: CLOEXEC, so a successful exec closes it
  // silently and a failed exec writes errno through it.
  if (pipe(StatusPipe) != 0 ||
      fcntl(StatusPipe[1], F_SETFD, FD_CLOEXEC) != 0) {
    Res.SpawnError = std::string("pipe: ") + std::strerror(errno);
    close(OutPipe[0]); close(OutPipe[1]);
    close(ErrPipe[0]); close(ErrPipe[1]);
    return Res;
  }

  // argv built before fork: only async-signal-safe calls after it.
  std::vector<char *> Argv;
  Argv.reserve(Opts.Argv.size() + 1);
  for (const std::string &A : Opts.Argv)
    Argv.push_back(const_cast<char *>(A.c_str()));
  Argv.push_back(nullptr);

  double Start = monotonicSeconds();
  pid_t Pid = fork();
  if (Pid < 0) {
    Res.SpawnError = std::string("fork: ") + std::strerror(errno);
    for (int Fd : {OutPipe[0], OutPipe[1], ErrPipe[0], ErrPipe[1],
                   StatusPipe[0], StatusPipe[1]})
      close(Fd);
    return Res;
  }

  if (Pid == 0) {
    // Child. Own process group, so the watchdog's group-kill reaps every
    // descendant (compiler cc1/ld children, forked variant children).
    setpgid(0, 0);
    applyLimits(Opts.Limits);
    int DevNull = open("/dev/null", O_RDONLY);
    if (DevNull >= 0)
      dup2(DevNull, STDIN_FILENO);
    dup2(OutPipe[1], STDOUT_FILENO);
    dup2(ErrPipe[1], STDERR_FILENO);
    close(OutPipe[0]); close(OutPipe[1]);
    close(ErrPipe[0]); close(ErrPipe[1]);
    close(StatusPipe[0]);
    if (!Opts.WorkDir.empty() && chdir(Opts.WorkDir.c_str()) != 0) {
      int Err = errno;
      ssize_t Ignored = write(StatusPipe[1], &Err, sizeof(Err));
      (void)Ignored;
      _exit(127);
    }
    execvp(Argv[0], Argv.data());
    int Err = errno;
    ssize_t Ignored = write(StatusPipe[1], &Err, sizeof(Err));
    (void)Ignored;
    _exit(127);
  }

  // Parent. Mirror the child's setpgid to close the fork/exec race: until
  // one of the two calls lands, a group-kill could miss the child.
  setpgid(Pid, Pid);
  close(OutPipe[1]);
  close(ErrPipe[1]);
  close(StatusPipe[1]);
  setNonBlocking(OutPipe[0]);
  setNonBlocking(ErrPipe[0]);

  bool OutOpen = true, ErrOpen = true;
  bool Reaped = false;
  int WaitStatus = 0;
  enum { Running, TermSent, KillSent } Watchdog = Running;
  double Deadline = Opts.Limits.WallClockSeconds > 0
                        ? Start + Opts.Limits.WallClockSeconds
                        : 0;
  double Escalation = 0; // SIGKILL time once SIGTERM has been sent
  double ReapedAt = 0;
  bool TimedOut = false;

  while (OutOpen || ErrOpen || !Reaped) {
    double Now = monotonicSeconds();

    if (!Reaped) {
      pid_t W = waitpid(Pid, &WaitStatus, WNOHANG);
      if (W == Pid) {
        Reaped = true;
        ReapedAt = Now;
      }
    }
    if (Reaped && !OutOpen && !ErrOpen)
      break;

    // Watchdog: deadline -> SIGTERM the group; grace -> SIGKILL.
    if (!Reaped && Deadline > 0 && Watchdog == Running && Now >= Deadline) {
      TimedOut = true;
      signalGroup(Pid, SIGTERM);
      Watchdog = TermSent;
      Escalation = Now + std::max(0.0, Opts.Limits.TermGraceSeconds);
    }
    if (!Reaped && Watchdog == TermSent && Now >= Escalation) {
      signalGroup(Pid, SIGKILL);
      Res.TermEscalated = true;
      Watchdog = KillSent;
    }
    // A grandchild that escaped its group can hold the pipes open after the
    // child is gone; don't wait on it forever.
    if (Reaped && Now - ReapedAt > 1.0)
      break;

    pollfd Fds[2];
    nfds_t N = 0;
    if (OutOpen)
      Fds[N++] = {OutPipe[0], POLLIN, 0};
    if (ErrOpen)
      Fds[N++] = {ErrPipe[0], POLLIN, 0};

    int TimeoutMs = 50;
    if (!Reaped && Watchdog == Running && Deadline > 0)
      TimeoutMs = std::min(TimeoutMs,
                           std::max(1, static_cast<int>((Deadline - Now) * 1000)));
    else if (!Reaped && Watchdog == TermSent)
      TimeoutMs = std::min(TimeoutMs,
                           std::max(1, static_cast<int>((Escalation - Now) * 1000)));

    if (N == 0) {
      // Pipes closed, child alive: just wait for it (bounded by watchdog).
      struct timespec Ts = {0, TimeoutMs * 1000000};
      nanosleep(&Ts, nullptr);
      continue;
    }
    int PollRet = retryPoll(Fds, N, TimeoutMs);
    if (PollRet < 0)
      break;
    for (nfds_t I = 0; I < N; ++I) {
      if (!(Fds[I].revents & (POLLIN | POLLHUP | POLLERR)))
        continue;
      bool IsOut = Fds[I].fd == OutPipe[0];
      bool Alive = drainPipe(Fds[I].fd, IsOut ? Res.Stdout : Res.Stderr,
                             Opts.Limits.MaxCaptureBytes,
                             IsOut ? Res.StdoutTruncated : Res.StderrTruncated);
      if (!Alive) {
        close(Fds[I].fd);
        (IsOut ? OutOpen : ErrOpen) = false;
      }
    }
  }
  if (OutOpen)
    close(OutPipe[0]);
  if (ErrOpen)
    close(ErrPipe[0]);
  if (!Reaped) {
    // Loop exited abnormally (poll error): make sure the child dies. The
    // EINTR-safe wait matters here — a signal landing mid-reap would leave
    // the child a zombie and WaitStatus uninitialized.
    signalGroup(Pid, SIGKILL);
    retryWaitpid(Pid, &WaitStatus, 0);
  }
  // Sweep stragglers: any group member still alive after the child was
  // reaped (killed-but-lingering descendants on the timeout path, or
  // children the variant forked and never waited for). ESRCH when the
  // group is already empty — the common case — is harmless.
  kill(-Pid, SIGKILL);

  Res.ElapsedSeconds = monotonicSeconds() - Start;

  // Spawn failure takes priority: errno arrives through the CLOEXEC pipe.
  int ExecErr = 0;
  ssize_t StatusN = retryRead(StatusPipe[0], &ExecErr, sizeof(ExecErr));
  close(StatusPipe[0]);
  if (StatusN == static_cast<ssize_t>(sizeof(ExecErr))) {
    Res.Exit = SpawnExit::SpawnFailed;
    Res.SpawnError = Opts.Argv[0] + ": " + std::strerror(ExecErr);
    return Res;
  }

  if (WIFEXITED(WaitStatus)) {
    Res.Exit = SpawnExit::Exited;
    Res.ExitCode = WEXITSTATUS(WaitStatus);
  } else if (WIFSIGNALED(WaitStatus)) {
    Res.Exit = SpawnExit::Signaled;
    Res.Signal = WTERMSIG(WaitStatus);
  }
  if (TimedOut)
    Res.Exit = SpawnExit::TimedOut; // deadline classification wins
  return Res;
}

//===----------------------------------------------------------------------===//
// ChildProcess
//===----------------------------------------------------------------------===//

ChildProcess::~ChildProcess() { kill(); }

ChildProcess::ChildProcess(ChildProcess &&Other) noexcept
    : Pid(Other.Pid), Reaped(Other.Reaped), WaitStatus(Other.WaitStatus) {
  Other.Pid = -1;
}

ChildProcess &ChildProcess::operator=(ChildProcess &&Other) noexcept {
  if (this != &Other) {
    kill();
    Pid = Other.Pid;
    Reaped = Other.Reaped;
    WaitStatus = Other.WaitStatus;
    Other.Pid = -1;
  }
  return *this;
}

Expected<ChildProcess> ChildProcess::spawn(const ChildProcessOptions &Opts) {
  if (Opts.Argv.empty())
    return Expected<ChildProcess>::error("empty argv");

  int StatusPipe[2];
  if (pipe(StatusPipe) != 0 ||
      fcntl(StatusPipe[1], F_SETFD, FD_CLOEXEC) != 0)
    return Expected<ChildProcess>::error(std::string("pipe: ") +
                                         std::strerror(errno));

  std::vector<char *> Argv;
  Argv.reserve(Opts.Argv.size() + 1);
  for (const std::string &A : Opts.Argv)
    Argv.push_back(const_cast<char *>(A.c_str()));
  Argv.push_back(nullptr);

  pid_t ParentPid = getpid();
  pid_t Pid = fork();
  if (Pid < 0) {
    int Err = errno;
    close(StatusPipe[0]);
    close(StatusPipe[1]);
    return Expected<ChildProcess>::error(std::string("fork: ") +
                                         std::strerror(Err));
  }

  if (Pid == 0) {
    // Child: own group (group-kill supervision), then bind its lifetime to
    // the parent's so a SIGKILLed supervisor cannot orphan it.
    setpgid(0, 0);
    close(StatusPipe[0]);
    auto Die = [&](int Err) {
      ssize_t Ignored = write(StatusPipe[1], &Err, sizeof(Err));
      (void)Ignored;
      _exit(127);
    };
#ifdef __linux__
    if (Opts.KillOnParentDeath) {
      prctl(PR_SET_PDEATHSIG, SIGKILL);
      // Close the fork/prctl race: if the parent died before the death
      // signal was armed, the child has been reparented already.
      if (getppid() != ParentPid)
        Die(ESRCH);
    }
#else
    (void)ParentPid;
#endif
    int DevNull = open("/dev/null", O_RDONLY);
    if (DevNull >= 0)
      dup2(DevNull, STDIN_FILENO);
    if (!Opts.OutputPath.empty()) {
      int Out = open(Opts.OutputPath.c_str(),
                     O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC, 0644);
      if (Out < 0)
        Die(errno);
      dup2(Out, STDOUT_FILENO);
      dup2(Out, STDERR_FILENO);
      close(Out);
    }
    if (!Opts.WorkDir.empty() && chdir(Opts.WorkDir.c_str()) != 0)
      Die(errno);
    execvp(Argv[0], Argv.data());
    Die(errno);
  }

  // Parent: mirror setpgid (same race as runSubprocess), then block on the
  // status pipe — EOF means the exec succeeded.
  setpgid(Pid, Pid);
  close(StatusPipe[1]);
  int ExecErr = 0;
  ssize_t StatusN = retryRead(StatusPipe[0], &ExecErr, sizeof(ExecErr));
  close(StatusPipe[0]);
  if (StatusN == static_cast<ssize_t>(sizeof(ExecErr))) {
    int IgnoredStatus = 0;
    retryWaitpid(Pid, &IgnoredStatus, 0); // reap the _exit(127) child
    return Expected<ChildProcess>::error(Opts.Argv[0] + ": " +
                                         std::strerror(ExecErr));
  }

  ChildProcess CP;
  CP.Pid = Pid;
  return CP;
}

bool ChildProcess::running() {
  if (Pid <= 0)
    return false;
  if (!Reaped && retryWaitpid(Pid, &WaitStatus, WNOHANG) == Pid)
    Reaped = true;
  return !Reaped;
}

int ChildProcess::exitCode() const {
  return Reaped && WIFEXITED(WaitStatus) ? WEXITSTATUS(WaitStatus) : -1;
}

int ChildProcess::signal() const {
  return Reaped && WIFSIGNALED(WaitStatus) ? WTERMSIG(WaitStatus) : 0;
}

std::string ChildProcess::describeExit() const {
  if (Pid <= 0)
    return "never spawned";
  if (!Reaped)
    return "still running";
  if (WIFEXITED(WaitStatus))
    return "exited " + std::to_string(WEXITSTATUS(WaitStatus));
  if (WIFSIGNALED(WaitStatus))
    return "killed by " + signalName(WTERMSIG(WaitStatus));
  return "unknown exit";
}

void ChildProcess::signalGroup(int Sig) {
  if (Pid > 0 && !Reaped && ::kill(-Pid, Sig) != 0)
    ::kill(Pid, Sig);
}

bool ChildProcess::waitExit(double TimeoutSeconds) {
  double Deadline = monotonicSeconds() + TimeoutSeconds;
  while (running()) {
    if (monotonicSeconds() >= Deadline)
      return false;
    struct timespec Ts = {0, 5 * 1000000};
    nanosleep(&Ts, nullptr);
  }
  return Pid > 0;
}

void ChildProcess::kill() {
  if (Pid <= 0)
    return;
  if (!Reaped) {
    if (::kill(-Pid, SIGKILL) != 0)
      ::kill(Pid, SIGKILL);
    retryWaitpid(Pid, &WaitStatus, 0);
    Reaped = true;
  }
  // Sweep group stragglers the child never waited for.
  ::kill(-Pid, SIGKILL);
}

//===----------------------------------------------------------------------===//
// TempDir
//===----------------------------------------------------------------------===//

namespace {

void removeTree(const std::string &Path) {
  DIR *D = opendir(Path.c_str());
  if (!D) {
    unlink(Path.c_str());
    return;
  }
  while (dirent *E = readdir(D)) {
    if (std::strcmp(E->d_name, ".") == 0 || std::strcmp(E->d_name, "..") == 0)
      continue;
    std::string Child = Path + "/" + E->d_name;
    struct stat St;
    if (lstat(Child.c_str(), &St) == 0 && S_ISDIR(St.st_mode))
      removeTree(Child);
    else
      unlink(Child.c_str());
  }
  closedir(D);
  rmdir(Path.c_str());
}

} // namespace

TempDir::TempDir(const std::string &Prefix, const std::string &Base) {
  std::string Dir = Base;
  if (Dir.empty()) {
    const char *Env = std::getenv("TMPDIR");
    Dir = Env && *Env ? Env : "/tmp";
  }
  std::string Template = Dir + "/" + Prefix + "XXXXXX";
  std::vector<char> Buf(Template.begin(), Template.end());
  Buf.push_back('\0');
  if (mkdtemp(Buf.data()))
    Path.assign(Buf.data());
}

TempDir::~TempDir() {
  if (!Path.empty())
    removeTree(Path);
}

TempDir::TempDir(TempDir &&Other) noexcept : Path(std::move(Other.Path)) {
  Other.Path.clear();
}

TempDir &TempDir::operator=(TempDir &&Other) noexcept {
  if (this != &Other) {
    if (!Path.empty())
      removeTree(Path);
    Path = std::move(Other.Path);
    Other.Path.clear();
  }
  return *this;
}

std::string TempDir::release() {
  std::string P = std::move(Path);
  Path.clear();
  return P;
}

} // namespace support
} // namespace locus
