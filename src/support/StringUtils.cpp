//===- StringUtils.cpp - Small string helpers -----------------------------===//

#include "src/support/StringUtils.h"

namespace locus {

std::vector<std::string> splitString(std::string_view Text, char Sep) {
  std::vector<std::string> Parts;
  size_t Start = 0;
  while (true) {
    size_t Pos = Text.find(Sep, Start);
    if (Pos == std::string_view::npos) {
      Parts.emplace_back(Text.substr(Start));
      return Parts;
    }
    Parts.emplace_back(Text.substr(Start, Pos - Start));
    Start = Pos + 1;
  }
}

std::string_view trimString(std::string_view Text) {
  size_t Begin = 0;
  while (Begin < Text.size() && std::isspace(static_cast<unsigned char>(Text[Begin])))
    ++Begin;
  size_t End = Text.size();
  while (End > Begin && std::isspace(static_cast<unsigned char>(Text[End - 1])))
    --End;
  return Text.substr(Begin, End - Begin);
}

std::string joinStrings(const std::vector<std::string> &Parts,
                        std::string_view Sep) {
  std::string Result;
  for (size_t I = 0; I < Parts.size(); ++I) {
    if (I != 0)
      Result += Sep;
    Result += Parts[I];
  }
  return Result;
}

bool startsWith(std::string_view Text, std::string_view Prefix) {
  return Text.size() >= Prefix.size() &&
         Text.substr(0, Prefix.size()) == Prefix;
}

bool endsWith(std::string_view Text, std::string_view Suffix) {
  return Text.size() >= Suffix.size() &&
         Text.substr(Text.size() - Suffix.size()) == Suffix;
}

} // namespace locus
