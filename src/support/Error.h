//===- Error.h - Lightweight result/error types ---------------*- C++ -*-===//
///
/// \file
/// Error handling primitives used across the Locus library. The library does
/// not use C++ exceptions; fallible operations return Expected<T> or Status.
///
//===----------------------------------------------------------------------===//
#ifndef LOCUS_SUPPORT_ERROR_H
#define LOCUS_SUPPORT_ERROR_H

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace locus {

/// A failure description: a human-readable message.
class Failure {
public:
  Failure() = default;
  explicit Failure(std::string Message) : Message(std::move(Message)) {}

  const std::string &message() const { return Message; }

private:
  std::string Message;
};

/// Success-or-error status for operations that return no value.
class Status {
public:
  /// Constructs a success status.
  Status() = default;

  /// Constructs a failure status with a message.
  static Status error(std::string Message) {
    Status S;
    S.Err = Failure(std::move(Message));
    return S;
  }

  static Status success() { return Status(); }

  bool ok() const { return !Err.has_value(); }
  explicit operator bool() const { return ok(); }

  /// Returns the error message; only valid when !ok().
  const std::string &message() const {
    assert(Err && "message() on a success Status");
    return Err->message();
  }

private:
  std::optional<Failure> Err;
};

/// A value-or-error wrapper, in the spirit of llvm::Expected but simplified
/// (no mandatory-check semantics).
template <typename T> class Expected {
public:
  Expected(T Value) : Value(std::move(Value)) {}
  Expected(Failure Err) : Err(std::move(Err)) {}

  /// Creates an error result from a message.
  static Expected<T> error(std::string Message) {
    return Expected<T>(Failure(std::move(Message)));
  }

  bool ok() const { return Value.has_value(); }
  explicit operator bool() const { return ok(); }

  T &get() {
    assert(Value && "get() on an error Expected");
    return *Value;
  }
  const T &get() const {
    assert(Value && "get() on an error Expected");
    return *Value;
  }
  T &operator*() { return get(); }
  const T &operator*() const { return get(); }
  T *operator->() { return &get(); }
  const T *operator->() const { return &get(); }

  const std::string &message() const {
    assert(Err && "message() on a success Expected");
    return Err->message();
  }

private:
  std::optional<T> Value;
  std::optional<Failure> Err;
};

} // namespace locus

#endif // LOCUS_SUPPORT_ERROR_H
