//===- Diag.cpp - Severity/location diagnostics ----------------------------===//

#include "src/support/Diag.h"

#include <cassert>

namespace locus {
namespace support {

std::string SrcLoc::str() const {
  if (!valid())
    return "<unknown location>";
  std::string S = "line " + std::to_string(Line);
  if (Col > 0)
    S += ":" + std::to_string(Col);
  return S;
}

const char *diagSeverityName(DiagSeverity S) {
  switch (S) {
  case DiagSeverity::Note:
    return "note";
  case DiagSeverity::Warning:
    return "warning";
  case DiagSeverity::Error:
    return "error";
  }
  return "error";
}

std::string Diag::render() const {
  std::string Out = Loc.str() + ": " + diagSeverityName(Sev) + ": ";
  if (!Region.empty())
    Out += "[" + Region + "] ";
  Out += Message;
  return Out;
}

void DiagEngine::report(DiagSeverity Sev, SrcLoc Loc, std::string Region,
                        std::string Message) {
  Diags.push_back(Diag{Sev, Loc, std::move(Region), std::move(Message)});
}

bool DiagEngine::hasErrors() const {
  for (const Diag &D : Diags)
    if (D.Sev == DiagSeverity::Error)
      return true;
  return false;
}

size_t DiagEngine::errorCount() const {
  size_t N = 0;
  for (const Diag &D : Diags)
    if (D.Sev == DiagSeverity::Error)
      ++N;
  return N;
}

const Diag &DiagEngine::firstError() const {
  for (const Diag &D : Diags)
    if (D.Sev == DiagSeverity::Error)
      return D;
  assert(false && "firstError() without errors");
  return Diags.front();
}

std::string DiagEngine::renderAll() const {
  std::string Out;
  for (const Diag &D : Diags)
    Out += D.render() + "\n";
  return Out;
}

} // namespace support
} // namespace locus
