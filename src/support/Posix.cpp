//===- Posix.cpp - EINTR-safe syscall wrappers ----------------------------===//

#include "src/support/Posix.h"

#include <cerrno>
#include <ctime>
#include <fcntl.h>
#include <sys/file.h>
#include <sys/wait.h>
#include <unistd.h>

namespace locus {
namespace support {

namespace {

long long monotonicMs() {
  struct timespec Ts;
  clock_gettime(CLOCK_MONOTONIC, &Ts);
  return static_cast<long long>(Ts.tv_sec) * 1000 + Ts.tv_nsec / 1000000;
}

} // namespace

ssize_t retryRead(int Fd, void *Buf, size_t Len) {
  for (;;) {
    ssize_t N = ::read(Fd, Buf, Len);
    if (N >= 0 || errno != EINTR)
      return N;
  }
}

bool retryWriteAll(int Fd, const char *Data, size_t Len, size_t *Written) {
  size_t Off = 0;
  while (Off < Len) {
    ssize_t N = ::write(Fd, Data + Off, Len - Off);
    if (N < 0 && errno == EINTR)
      continue;
    if (N <= 0) { // a 0-byte write would loop forever; treat it as an error
      if (Written)
        *Written = Off;
      return false;
    }
    Off += static_cast<size_t>(N);
  }
  if (Written)
    *Written = Off;
  return true;
}

bool retryReadToEnd(int Fd, std::string &Out) {
  char Buf[1 << 16];
  for (;;) {
    ssize_t N = retryRead(Fd, Buf, sizeof(Buf));
    if (N < 0)
      return false;
    if (N == 0)
      return true;
    Out.append(Buf, static_cast<size_t>(N));
  }
}

int retryPoll(struct pollfd *Fds, nfds_t NFds, int TimeoutMs) {
  if (TimeoutMs < 0) {
    for (;;) {
      int R = ::poll(Fds, NFds, -1);
      if (R >= 0 || errno != EINTR)
        return R;
    }
  }
  long long Deadline = monotonicMs() + TimeoutMs;
  int Remaining = TimeoutMs;
  for (;;) {
    int R = ::poll(Fds, NFds, Remaining);
    if (R >= 0 || errno != EINTR)
      return R;
    long long Now = monotonicMs();
    if (Now >= Deadline)
      return 0; // timed out across interruptions
    Remaining = static_cast<int>(Deadline - Now);
  }
}

int retryFlock(int Fd, int Operation) {
  if (Fd < 0)
    return 0;
  for (;;) {
    int R = ::flock(Fd, Operation);
    if (R == 0 || errno != EINTR)
      return R;
  }
}

pid_t retryWaitpid(pid_t Pid, int *Status, int Options) {
  for (;;) {
    pid_t R = ::waitpid(Pid, Status, Options);
    if (R >= 0 || errno != EINTR)
      return R;
  }
}

int retryOpen(const char *Path, int Flags, mode_t Mode) {
  for (;;) {
    int Fd = ::open(Path, Flags, Mode);
    if (Fd >= 0 || errno != EINTR)
      return Fd;
  }
}

void closeQuietly(int Fd) {
  if (Fd >= 0)
    ::close(Fd);
}

} // namespace support
} // namespace locus
