//===- Posix.h - EINTR-safe syscall wrappers ---------------------*- C++ -*-===//
///
/// \file
/// Retry wrappers for the blocking POSIX calls the rest of the codebase
/// issues. The tuning service makes interrupted syscalls routine — worker
/// heartbeat timers, SIGTERM graceful-shutdown handlers and SIGCHLD all
/// land while a read/poll/flock/waitpid is parked — so every blocking call
/// must treat EINTR as "try again", not as an error. Centralizing the loops
/// here keeps RecordLog and Subprocess free of hand-rolled variants.
///
/// All wrappers preserve the underlying call's return-value contract; only
/// EINTR is absorbed. Timeouts (retryPoll) are re-armed against a monotonic
/// deadline so a signal storm cannot extend the wait.
///
//===----------------------------------------------------------------------===//
#ifndef LOCUS_SUPPORT_POSIX_H
#define LOCUS_SUPPORT_POSIX_H

#include <poll.h>
#include <string>
#include <sys/types.h>

namespace locus {
namespace support {

/// read(2) retried on EINTR. Returns the read count, 0 at EOF, or -1 with
/// errno set (never EINTR).
ssize_t retryRead(int Fd, void *Buf, size_t Len);

/// Writes the whole buffer, retrying on EINTR and short writes. Returns
/// true when every byte reached the fd; on failure *Written (optional)
/// holds the byte count that did land, so callers can amputate a torn
/// record.
bool retryWriteAll(int Fd, const char *Data, size_t Len,
                   size_t *Written = nullptr);

/// Reads the fd to EOF into Out (appending), retrying on EINTR. Returns
/// false on a read error.
bool retryReadToEnd(int Fd, std::string &Out);

/// poll(2) retried on EINTR with the timeout re-armed against a monotonic
/// deadline (a negative timeout waits forever). Returns poll's result.
int retryPoll(struct pollfd *Fds, nfds_t NFds, int TimeoutMs);

/// flock(2) retried on EINTR. A negative fd returns 0 (callers treat a
/// missing lock file as "nothing to lock").
int retryFlock(int Fd, int Operation);

/// waitpid(2) retried on EINTR. Without the retry a signal delivered while
/// the parent blocks leaves the child unreaped and the status word
/// uninitialized.
pid_t retryWaitpid(pid_t Pid, int *Status, int Options);

/// open(2) retried on EINTR (open can be interrupted on slow devices and
/// when O_CREAT contends).
int retryOpen(const char *Path, int Flags, mode_t Mode = 0);

/// close(2), EINTR-tolerant: POSIX leaves the fd state unspecified after
/// EINTR, and retrying risks closing a recycled descriptor, so the wrapper
/// closes once and ignores EINTR (Linux semantics: the fd is released).
void closeQuietly(int Fd);

} // namespace support
} // namespace locus

#endif // LOCUS_SUPPORT_POSIX_H
