//===- Subprocess.h - Sandboxed subprocess execution ------------*- C++ -*-===//
///
/// \file
/// A POSIX fork/exec runner for compile-and-run evaluation. The empirical
/// search materializes arbitrary program variants and executes them; a
/// variant that hangs, fork-bombs, or allocates without bound must not take
/// the autotuning run down with it. Every native measurement therefore goes
/// through this sandbox:
///
///  - argv-vector invocation (execvp, never a shell): paths with spaces or
///    metacharacters cannot change the command;
///  - stdout/stderr captured through pipes with a per-stream size cap (the
///    child is drained past the cap so it never blocks on a full pipe);
///  - a wall-clock deadline enforced by the poll-loop watchdog: on expiry
///    the whole process *group* receives SIGTERM, and SIGKILL after a grace
///    period if anything survives — compiler or variant children included;
///  - setrlimit caps in the child (RLIMIT_CPU, RLIMIT_AS, RLIMIT_FSIZE) and
///    core dumps disabled unconditionally;
///  - classified exits: normal exit code, terminating signal (with its
///    name), deadline expiry, or spawn failure, so callers can map each
///    mode onto the search-layer failure taxonomy.
///
/// Hermetic per-evaluation working directories are provided by TempDir, an
/// mkdtemp + recursive-remove RAII wrapper, so concurrent evaluations never
/// collide on fixed /tmp paths.
///
//===----------------------------------------------------------------------===//
#ifndef LOCUS_SUPPORT_SUBPROCESS_H
#define LOCUS_SUPPORT_SUBPROCESS_H

#include "src/support/Error.h"

#include <cstdint>
#include <string>
#include <sys/types.h>
#include <vector>

namespace locus {
namespace support {

/// Resource caps applied to one spawned process (and, for the wall-clock
/// deadline, its whole process group). Zero means "no cap" everywhere.
struct SubprocessLimits {
  /// Wall-clock deadline in seconds; on expiry the process group is sent
  /// SIGTERM, then SIGKILL after TermGraceSeconds.
  double WallClockSeconds = 0;
  /// Grace period between SIGTERM and SIGKILL escalation.
  double TermGraceSeconds = 2.0;
  /// RLIMIT_CPU (seconds of CPU time; the kernel delivers SIGXCPU).
  long CpuSeconds = 0;
  /// RLIMIT_AS (bytes of address space; allocations beyond it fail).
  long AddressSpaceBytes = 0;
  /// RLIMIT_FSIZE (bytes per written file; the kernel delivers SIGXFSZ).
  long FileSizeBytes = 0;
  /// Per-stream capture cap; output beyond it is drained and discarded,
  /// with the Truncated flag set on the result.
  size_t MaxCaptureBytes = 1 << 20;
};

/// How the child left.
enum class SpawnExit : uint8_t {
  Exited,      ///< normal termination; ExitCode is valid
  Signaled,    ///< killed by a signal; Signal is valid
  TimedOut,    ///< watchdog deadline expired and the sandbox killed it
  SpawnFailed, ///< fork/exec itself failed; SpawnError is valid
};

struct SubprocessResult {
  SpawnExit Exit = SpawnExit::SpawnFailed;
  int ExitCode = -1; ///< valid when Exit == Exited
  int Signal = 0;    ///< terminating signal (Signaled, and TimedOut when the
                     ///< kernel reported one)
  /// The SIGTERM grace expired and SIGKILL was required.
  bool TermEscalated = false;
  bool StdoutTruncated = false;
  bool StderrTruncated = false;
  std::string Stdout;
  std::string Stderr;
  std::string SpawnError; ///< valid when Exit == SpawnFailed
  double ElapsedSeconds = 0;

  bool ok() const { return Exit == SpawnExit::Exited && ExitCode == 0; }
  /// Human-readable one-liner: "exited 0", "killed by SIGSEGV",
  /// "timed out after 2.50s (SIGTERM escalated to SIGKILL)", ...
  std::string describe() const;
};

struct SubprocessOptions {
  /// Argv[0] is the program (resolved through PATH); never a shell string.
  std::vector<std::string> Argv;
  /// Child working directory; empty inherits the parent's.
  std::string WorkDir;
  SubprocessLimits Limits;
};

/// Spawns, supervises, and reaps one sandboxed subprocess. Blocks until the
/// child (and, on timeout, its process group) is gone; never throws.
SubprocessResult runSubprocess(const SubprocessOptions &Opts);

/// Stable name of a signal number ("SIGSEGV", "SIGKILL", ...); "signal N"
/// for numbers without a well-known name.
std::string signalName(int Sig);

/// Spawn options for a supervised (non-blocking) child; see ChildProcess.
struct ChildProcessOptions {
  /// Argv[0] resolved through PATH; never a shell string.
  std::vector<std::string> Argv;
  /// Child working directory; empty inherits the parent's.
  std::string WorkDir;
  /// File receiving the child's stdout+stderr (opened O_APPEND so respawns
  /// of the same worker slot share one log); empty inherits the parent's
  /// streams.
  std::string OutputPath;
  /// Linux: arm PR_SET_PDEATHSIG so the kernel SIGKILLs the child the
  /// moment this process dies. Workers run in their own process groups (so
  /// a watchdog group-kill cannot miss their descendants), which also means
  /// a SIGKILLed coordinator would orphan them — the death signal is what
  /// guarantees the crash-torture suite never leaks a worker fleet.
  bool KillOnParentDeath = true;
};

/// A long-lived supervised child, the asynchronous sibling of
/// runSubprocess: spawn returns immediately and the owner polls running()
/// from its supervision loop. Exec failures are still reported
/// synchronously through the CLOEXEC status pipe. The destructor SIGKILLs
/// the child's whole process group and reaps it, so a ChildProcess can
/// never leak a running worker. Movable, not copyable.
class ChildProcess {
public:
  ChildProcess() = default;
  ~ChildProcess();
  ChildProcess(ChildProcess &&Other) noexcept;
  ChildProcess &operator=(ChildProcess &&Other) noexcept;
  ChildProcess(const ChildProcess &) = delete;
  ChildProcess &operator=(const ChildProcess &) = delete;

  /// Forks and execs; the child gets its own process group. Fails only for
  /// fork/pipe/exec-level problems (a child that starts and then dies is a
  /// *death*, observed via running(), not a spawn failure).
  static Expected<ChildProcess> spawn(const ChildProcessOptions &Opts);

  bool valid() const { return Pid > 0; }
  pid_t pid() const { return Pid; }
  /// Non-blocking liveness probe; reaps and caches the exit when the child
  /// is gone.
  bool running();
  /// True once the child has been reaped (running() returned false).
  bool exited() const { return Pid > 0 && Reaped; }
  /// Exit code when the child exited normally, else -1.
  int exitCode() const;
  /// Terminating signal when the child was killed, else 0.
  int signal() const;
  /// "exited 0", "killed by SIGKILL", "still running", ...
  std::string describeExit() const;
  /// Signals the child's whole process group (child alone if the group is
  /// already gone).
  void signalGroup(int Sig);
  /// Waits up to TimeoutSeconds for the child to exit; true when reaped.
  bool waitExit(double TimeoutSeconds);
  /// SIGKILLs the group and reaps; idempotent.
  void kill();

private:
  pid_t Pid = -1;
  bool Reaped = false;
  int WaitStatus = 0;
};

/// True when setrlimit is usable on this host (the sandbox degrades to
/// timeout-only supervision when it is not).
bool rlimitsSupported();

/// Hermetic working directory: mkdtemp on construction, recursive removal
/// on destruction unless release()d. Movable, not copyable.
class TempDir {
public:
  /// Creates "<Base>/<Prefix>XXXXXX"; Base defaults to $TMPDIR or /tmp.
  explicit TempDir(const std::string &Prefix = "locus-",
                   const std::string &Base = "");
  ~TempDir();
  TempDir(TempDir &&Other) noexcept;
  TempDir &operator=(TempDir &&Other) noexcept;
  TempDir(const TempDir &) = delete;
  TempDir &operator=(const TempDir &) = delete;

  /// Empty when creation failed.
  const std::string &path() const { return Path; }
  bool valid() const { return !Path.empty(); }
  /// Keeps the directory on disk (e.g. --keep-workdirs) and returns its
  /// path; the destructor becomes a no-op.
  std::string release();

private:
  std::string Path;
};

} // namespace support
} // namespace locus

#endif // LOCUS_SUPPORT_SUBPROCESS_H
