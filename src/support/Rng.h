//===- Rng.h - Deterministic random number generation ----------*- C++ -*-===//
///
/// \file
/// A small, fast, deterministic RNG (xoshiro256**) so search results are
/// reproducible across platforms and standard-library implementations.
///
//===----------------------------------------------------------------------===//
#ifndef LOCUS_SUPPORT_RNG_H
#define LOCUS_SUPPORT_RNG_H

#include <cassert>
#include <cstdint>
#include <vector>

namespace locus {

/// Deterministic pseudo-random generator with helpers for ranges, doubles,
/// shuffles and categorical picks.
class Rng {
public:
  explicit Rng(uint64_t Seed = 0x9e3779b97f4a7c15ULL) { reseed(Seed); }

  void reseed(uint64_t Seed) {
    // SplitMix64 expansion of the seed into the xoshiro state.
    uint64_t X = Seed;
    for (auto &Word : State) {
      X += 0x9e3779b97f4a7c15ULL;
      uint64_t Z = X;
      Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
      Word = Z ^ (Z >> 31);
    }
  }

  /// Next raw 64-bit value.
  uint64_t next() {
    uint64_t Result = rotl(State[1] * 5, 7) * 9;
    uint64_t T = State[1] << 17;
    State[2] ^= State[0];
    State[3] ^= State[1];
    State[1] ^= State[2];
    State[0] ^= State[3];
    State[2] ^= T;
    State[3] = rotl(State[3], 45);
    return Result;
  }

  /// Uniform integer in [0, Span). Lemire's multiply-and-shift with
  /// rejection: `next() % Span` is biased toward small values (by up to
  /// Span/2^64 per value, which is material for large spans), so the raw
  /// draw is rejected while it falls in the unrepresentative low fringe.
  uint64_t bounded(uint64_t Span) {
    assert(Span > 0 && "bounded() with empty span");
    unsigned __int128 M = static_cast<unsigned __int128>(next()) * Span;
    uint64_t Lo = static_cast<uint64_t>(M);
    if (Lo < Span) {
      uint64_t Threshold = (0 - Span) % Span;
      while (Lo < Threshold) {
        M = static_cast<unsigned __int128>(next()) * Span;
        Lo = static_cast<uint64_t>(M);
      }
    }
    return static_cast<uint64_t>(M >> 64);
  }

  /// Uniform integer in [Lo, Hi] inclusive.
  int64_t range(int64_t Lo, int64_t Hi) {
    assert(Lo <= Hi && "empty range");
    // Unsigned arithmetic: Hi - Lo overflows int64 for huge ranges (and the
    // offset below can exceed INT64_MAX), but wraps to the right value here.
    uint64_t Span = static_cast<uint64_t>(Hi) - static_cast<uint64_t>(Lo) + 1;
    if (Span == 0) // the full 2^64 range: every raw draw is uniform
      return static_cast<int64_t>(next());
    return static_cast<int64_t>(static_cast<uint64_t>(Lo) + bounded(Span));
  }

  /// Uniform double in [0, 1).
  double uniform() { return (next() >> 11) * (1.0 / 9007199254740992.0); }

  /// Approximate standard normal via sum of uniforms (Irwin-Hall).
  double normal() {
    double Sum = 0;
    for (int I = 0; I < 12; ++I)
      Sum += uniform();
    return Sum - 6.0;
  }

  /// Bernoulli trial.
  bool chance(double P) { return uniform() < P; }

  /// Uniform index into a container of the given size.
  size_t index(size_t Size) {
    assert(Size > 0 && "index() into empty container");
    return static_cast<size_t>(bounded(Size));
  }

  /// Fisher-Yates shuffle.
  template <typename T> void shuffle(std::vector<T> &Items) {
    for (size_t I = Items.size(); I > 1; --I)
      std::swap(Items[I - 1], Items[index(I)]);
  }

private:
  static uint64_t rotl(uint64_t X, int K) { return (X << K) | (X >> (64 - K)); }

  uint64_t State[4] = {};
};

} // namespace locus

#endif // LOCUS_SUPPORT_RNG_H
