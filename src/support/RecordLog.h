//===- RecordLog.h - Crash-safe append-only record file ---------*- C++ -*-===//
///
/// \file
/// The durable-state substrate shared by the search journal and the
/// persistent evaluation cache. Long tuning runs die mid-write — machines
/// reboot, jobs hit walltime, disks fill — and both stateful components need
/// the same guarantees, so they are built on one primitive:
///
///  - an append-only file of length-prefixed records, each protected by a
///    CRC32C so a flipped bit anywhere is detected, never silently replayed;
///  - a versioned magic header with an application payload (space
///    fingerprints, config digests) that is itself CRC-protected;
///  - recovery on open: the file is scanned record by record and any torn
///    or corrupt *tail* (the frame a crashed writer was in the middle of)
///    is truncated away with a warning; corruption *before* the tail is an
///    error that names the byte offset;
///  - atomic-rename compaction: a rewritten copy is fsynced, renamed over
///    the live file, and the directory entry fsynced, so a crash leaves
///    either the old or the new file, never a mix;
///  - flock-based multi-process exclusion through a sidecar ".lock" file
///    (exclusive for writers and compaction, shared for readers). The lock
///    lives on a file that is never renamed, so compaction cannot orphan a
///    waiter's lock; appenders re-stat the path after locking and reopen
///    when a compaction swapped the inode underneath them.
///
/// On-disk layout (all integers little-endian):
///
///   +--------------------------------------------------------------+
///   | magic "LOCRLOG1" (8) | hdr len u32 | hdr crc32c u32 | header |
///   +--------------------------------------------------------------+
///   | rec len u32 | rec crc32c u32 | payload bytes | ...           |
///   +--------------------------------------------------------------+
///
/// Writes are raw fd writes (no stdio buffer): a completed append has
/// reached the kernel, so it survives a process crash; FsyncEachRecord
/// additionally forces it to stable storage per record.
///
//===----------------------------------------------------------------------===//
#ifndef LOCUS_SUPPORT_RECORDLOG_H
#define LOCUS_SUPPORT_RECORDLOG_H

#include "src/support/Error.h"

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace locus {
namespace support {

/// CRC-32C (Castagnoli, the iSCSI/ext4 polynomial) over a byte sequence.
/// Table-driven software implementation; stable across platforms.
uint32_t crc32c(std::string_view Data, uint32_t Seed = 0);

/// Result of scanning a record file.
struct RecordLogScan {
  std::string Header;               ///< application header payload
  std::vector<std::string> Records; ///< every intact record, in file order
  /// Offset one past the last intact record: the recovery truncation point.
  uint64_t GoodBytes = 0;
  /// True when a torn or corrupt tail was found (and excluded from Records).
  bool TornTail = false;
  /// True when the damage is a *complete* frame whose CRC fails (or an
  /// implausible length field with data after it) — bit rot or an external
  /// edit, not the tearing a crashed writer leaves. Callers that must not
  /// silently drop history (the journal under --resume) treat this as a
  /// hard error; the cache salvages the intact prefix either way.
  bool MidFileCorruption = false;
  /// Byte offset of the damage when TornTail; human-readable reason in Why.
  uint64_t TornOffset = 0;
  std::string Why;
};

/// Options for opening a RecordLog writer.
struct RecordLogOptions {
  /// Application header payload written on create and compared on reopen
  /// (empty disables the comparison; the on-disk header still loads into
  /// scan results).
  std::string Header;
  /// When false (default) a reopened file whose header differs from
  /// \p Header is an error; set to skip the comparison (readers that accept
  /// any compatible header).
  bool RequireHeaderMatch = true;
  /// fsync after every appended record (machine-crash durability). Off, a
  /// completed append still reaches the kernel (process-crash durability).
  bool FsyncEachRecord = false;
};

/// An open append-only record file. Thread-safe: concurrent append() calls
/// from one process are serialized internally; cross-process writers are
/// serialized by the sidecar flock. Movable, not copyable.
class RecordLog {
public:
  RecordLog() = default;
  ~RecordLog();
  RecordLog(RecordLog &&Other) noexcept;
  RecordLog &operator=(RecordLog &&Other) noexcept;
  RecordLog(const RecordLog &) = delete;
  RecordLog &operator=(const RecordLog &) = delete;

  /// Opens \p Path for appending, creating it (magic + header) when absent
  /// or empty. An existing file is verified (magic, version, header CRC,
  /// header payload when RequireHeaderMatch) and recovered: a torn or
  /// corrupt tail is truncated away, reported through \p Recovery when
  /// non-null. Corruption that is not a tail is NOT an error here — every
  /// record after the damage is unreachable, so it is treated as the torn
  /// tail and truncated; callers that must distinguish (the journal) scan
  /// first and decide. A leftover compaction temp file from a crashed
  /// compactor is removed.
  static Expected<RecordLog> open(const std::string &Path,
                                  const RecordLogOptions &Opts = {},
                                  RecordLogScan *Recovery = nullptr);

  /// Appends one record under the cross-process lock. If a compaction
  /// replaced the file since open, the writer transparently reopens the new
  /// inode first. Returns an error on I/O failure (e.g. disk full); the log
  /// stays usable for later attempts.
  Status append(std::string_view Payload);

  /// Rewrites the file to contain exactly \p Records (same header) via
  /// write-temp / fsync / atomic rename / fsync-directory, holding the
  /// exclusive lock so no appender interleaves. On success the writer
  /// continues on the new file.
  Status compact(const std::vector<std::string> &Records);

  bool isOpen() const { return Fd >= 0; }
  void close();
  const std::string &path() const { return Path; }

  /// Reads and verifies \p Path without opening it for writing, under the
  /// shared lock. A missing file yields an empty scan. Never truncates.
  static Expected<RecordLogScan> scan(const std::string &Path);

  /// Encodes one record frame (length + CRC + payload), exposed for tests
  /// that construct corrupt files byte by byte.
  static std::string encodeFrame(std::string_view Payload);

  /// Serializes the magic + header block.
  static std::string encodeHeaderBlock(std::string_view Header);

  /// Size of the fixed file prologue for a given header payload.
  static uint64_t headerBlockSize(uint64_t HeaderBytes);

private:
  Status reopenIfReplaced();
  Status writeFrame(std::string_view Frame);

  std::string Path;
  std::string Header;
  bool FsyncEachRecord = false;
  int Fd = -1;     ///< the log file, O_APPEND
  int LockFd = -1; ///< the sidecar ".lock" file
  /// Serializes append()/compact() within the process (flock is
  /// per-process-per-fd, not per-thread).
  std::shared_ptr<std::mutex> Mutex = std::make_shared<std::mutex>();
};

} // namespace support
} // namespace locus

#endif // LOCUS_SUPPORT_RECORDLOG_H
