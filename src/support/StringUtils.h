//===- StringUtils.h - Small string helpers --------------------*- C++ -*-===//
///
/// \file
/// String splitting, trimming and joining helpers shared by the front ends.
///
//===----------------------------------------------------------------------===//
#ifndef LOCUS_SUPPORT_STRINGUTILS_H
#define LOCUS_SUPPORT_STRINGUTILS_H

#include <string>
#include <string_view>
#include <vector>

namespace locus {

/// Splits \p Text on \p Sep; empty pieces are kept.
std::vector<std::string> splitString(std::string_view Text, char Sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view trimString(std::string_view Text);

/// Joins \p Parts with \p Sep between consecutive elements.
std::string joinStrings(const std::vector<std::string> &Parts,
                        std::string_view Sep);

/// Returns true if \p Text begins with \p Prefix.
bool startsWith(std::string_view Text, std::string_view Prefix);

/// Returns true if \p Text ends with \p Suffix.
bool endsWith(std::string_view Text, std::string_view Suffix);

} // namespace locus

#endif // LOCUS_SUPPORT_STRINGUTILS_H
