//===- Signals.h - Graceful-shutdown signal flag -----------------*- C++ -*-===//
///
/// \file
/// Cooperative SIGTERM/SIGINT handling for long-running search and service
/// processes. The handler does the only async-signal-safe thing possible —
/// it sets a process-wide atomic flag — and every loop that matters
/// (EvalDriver::budgetLeft, the coordinator's supervision thread, the
/// worker's claim loop) polls it between iterations. Stopping between
/// iterations means the journal's last record is complete and fsynced and
/// every flock is released by the normal destructors: a clean partial
/// result instead of a torn append.
///
/// Handlers are installed without SA_RESTART so a parked read/poll/flock
/// returns EINTR and the loop notices the flag promptly; the EINTR-retry
/// wrappers in Posix.h keep that interruption harmless everywhere else.
///
//===----------------------------------------------------------------------===//
#ifndef LOCUS_SUPPORT_SIGNALS_H
#define LOCUS_SUPPORT_SIGNALS_H

#include <atomic>

namespace locus {
namespace support {

/// Installs SIGTERM + SIGINT handlers that set the shutdown flag. Safe to
/// call more than once. The second delivery of the same signal falls back
/// to the default disposition, so a stuck process can still be killed with
/// a repeated Ctrl-C.
void installShutdownFlag();

/// The flag the handlers set; pass into SearchOptions::StopFlag /
/// CoordinatorOptions::StopFlag.
const std::atomic<bool> *shutdownFlag();

/// True once SIGTERM or SIGINT was delivered (or requestShutdown ran).
bool shutdownRequested();

/// Sets the flag programmatically (tests, embedders).
void requestShutdown();

} // namespace support
} // namespace locus

#endif // LOCUS_SUPPORT_SIGNALS_H
