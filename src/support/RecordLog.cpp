//===- RecordLog.cpp - Crash-safe append-only record file -----------------===//

#include "src/support/RecordLog.h"

#include "src/support/Posix.h"

#include <array>
#include <atomic>
#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include <fcntl.h>
#include <sys/file.h>
#include <sys/stat.h>
#include <unistd.h>

namespace locus {
namespace support {

namespace {

constexpr char Magic[8] = {'L', 'O', 'C', 'R', 'L', 'O', 'G', '1'};
constexpr uint64_t MagicSize = sizeof(Magic);
/// Records larger than this are implausible for any Locus payload; a length
/// field claiming more is treated as corruption, not a giant record.
constexpr uint32_t MaxRecordBytes = 1u << 30;
constexpr const char *CompactTmpSuffix = ".compact-tmp";

void putU32(std::string &Out, uint32_t V) {
  Out.push_back(static_cast<char>(V & 0xff));
  Out.push_back(static_cast<char>((V >> 8) & 0xff));
  Out.push_back(static_cast<char>((V >> 16) & 0xff));
  Out.push_back(static_cast<char>((V >> 24) & 0xff));
}

uint32_t getU32(std::string_view Data, uint64_t Pos) {
  return static_cast<uint32_t>(static_cast<unsigned char>(Data[Pos])) |
         static_cast<uint32_t>(static_cast<unsigned char>(Data[Pos + 1])) << 8 |
         static_cast<uint32_t>(static_cast<unsigned char>(Data[Pos + 2]))
             << 16 |
         static_cast<uint32_t>(static_cast<unsigned char>(Data[Pos + 3]))
             << 24;
}

std::string dirnameOf(const std::string &Path) {
  size_t Slash = Path.find_last_of('/');
  if (Slash == std::string::npos)
    return ".";
  if (Slash == 0)
    return "/";
  return Path.substr(0, Slash);
}

Status errnoStatus(const std::string &What, const std::string &Path) {
  return Status::error(What + " " + Path + ": " + std::strerror(errno));
}

int openLockFile(const std::string &Path) {
  return retryOpen((Path + ".lock").c_str(), O_RDWR | O_CREAT | O_CLOEXEC,
                   0644);
}

/// Blocking flock via the shared EINTR-safe wrapper; Fd < 0 is tolerated
/// (lockless degradation for readers on unwritable directories).
void flockRetry(int Fd, int Op) { (void)retryFlock(Fd, Op); }

bool writeAll(int Fd, const char *Data, size_t Size, size_t *Written) {
  return retryWriteAll(Fd, Data, Size, Written);
}

bool readWholeFd(int Fd, std::string &Out) {
  Out.clear();
  return retryReadToEnd(Fd, Out);
}

Status fsyncDirOf(const std::string &Path) {
  int Fd = retryOpen(dirnameOf(Path).c_str(), O_RDONLY | O_CLOEXEC);
  if (Fd < 0)
    return errnoStatus("cannot open directory of", Path);
  int Rc = ::fsync(Fd);
  ::close(Fd);
  if (Rc != 0)
    return errnoStatus("cannot fsync directory of", Path);
  return Status::success();
}

/// Crash-injection hook for the torture harness: LOCUS_RECORDLOG_CRASH_AT
/// = "N" or "N:B" SIGKILLs the process on the Nth append (0-based, counted
/// process-wide) after writing only B bytes of the frame (default: half),
/// simulating a machine dying mid-write at a chosen point. Parsed once; a
/// no-op when unset, so production runs pay one atomic increment.
struct CrashInjector {
  bool Armed = false;
  long AtAppend = -1;
  long PartialBytes = -1;
  std::atomic<long> Appends{0};

  CrashInjector() {
    const char *Spec = std::getenv("LOCUS_RECORDLOG_CRASH_AT");
    if (!Spec || !*Spec)
      return;
    char *End = nullptr;
    AtAppend = std::strtol(Spec, &End, 10);
    if (End && *End == ':')
      PartialBytes = std::strtol(End + 1, nullptr, 10);
    Armed = AtAppend >= 0;
  }

  /// Returns the number of frame bytes to write before dying, or -1 to
  /// proceed normally.
  long partialBytesForThisAppend(size_t FrameSize) {
    if (!Armed)
      return -1;
    long Index = Appends.fetch_add(1, std::memory_order_relaxed);
    if (Index != AtAppend)
      return -1;
    long Partial = PartialBytes >= 0 ? PartialBytes
                                     : static_cast<long>(FrameSize / 2);
    if (Partial > static_cast<long>(FrameSize))
      Partial = static_cast<long>(FrameSize);
    return Partial;
  }
};

CrashInjector &crashInjector() {
  static CrashInjector Injector;
  return Injector;
}

/// Parses a whole file image. Returns an error only for "this is not a
/// record log at all" (bad magic) and mid-prologue damage that cannot be
/// told apart from a foreign file; torn/corrupt data after a valid header
/// lands in the scan flags instead.
Expected<RecordLogScan> parseImage(const std::string &Data) {
  RecordLogScan Scan;
  if (Data.empty()) {
    Scan.TornTail = true; // an empty file has not even a header: rewrite it
    Scan.Why = "empty file";
    return Scan;
  }
  uint64_t Prefix = Data.size() < MagicSize ? Data.size() : MagicSize;
  if (std::memcmp(Data.data(), Magic, Prefix) != 0)
    return Expected<RecordLogScan>::error(
        "bad magic at byte 0: not a Locus record log (or an unsupported "
        "version)");
  if (Data.size() < MagicSize + 8) {
    // Crashed during the initial header write: recoverable by rewriting.
    Scan.TornTail = true;
    Scan.TornOffset = Data.size();
    Scan.Why = "torn header (file ends at byte " +
               std::to_string(Data.size()) + " inside the header block)";
    return Scan;
  }
  uint32_t HdrLen = getU32(Data, MagicSize);
  uint32_t HdrCrc = getU32(Data, MagicSize + 4);
  if (HdrLen > MaxRecordBytes)
    return Expected<RecordLogScan>::error(
        "header length field at byte " + std::to_string(MagicSize) +
        " is implausible (" + std::to_string(HdrLen) + " bytes)");
  uint64_t HdrEnd = MagicSize + 8 + HdrLen;
  if (Data.size() < HdrEnd) {
    Scan.TornTail = true;
    Scan.TornOffset = Data.size();
    Scan.Why = "torn header (file ends at byte " +
               std::to_string(Data.size()) + " inside the header payload)";
    return Scan;
  }
  std::string_view HdrPayload(Data.data() + MagicSize + 8, HdrLen);
  if (crc32c(HdrPayload) != HdrCrc)
    return Expected<RecordLogScan>::error(
        "header CRC mismatch at byte " + std::to_string(MagicSize + 8) +
        ": the header payload is damaged");
  Scan.Header = std::string(HdrPayload);
  Scan.GoodBytes = HdrEnd;

  uint64_t Pos = HdrEnd;
  while (Pos < Data.size()) {
    if (Data.size() - Pos < 8) {
      Scan.TornTail = true;
      Scan.TornOffset = Pos;
      Scan.Why = "torn record frame at byte " + std::to_string(Pos) +
                 " (file ends inside the length prefix)";
      break;
    }
    uint32_t Len = getU32(Data, Pos);
    uint32_t Crc = getU32(Data, Pos + 4);
    if (Len > MaxRecordBytes) {
      Scan.TornTail = true;
      Scan.MidFileCorruption = true;
      Scan.TornOffset = Pos;
      Scan.Why = "record length field at byte " + std::to_string(Pos) +
                 " is implausible (" + std::to_string(Len) + " bytes)";
      break;
    }
    if (Data.size() - Pos - 8 < Len) {
      Scan.TornTail = true;
      Scan.TornOffset = Pos;
      Scan.Why = "torn record at byte " + std::to_string(Pos) +
                 " (frame claims " + std::to_string(Len) +
                 " payload bytes, file ends first)";
      break;
    }
    std::string_view Payload(Data.data() + Pos + 8, Len);
    if (crc32c(Payload) != Crc) {
      Scan.TornTail = true;
      // A complete frame whose checksum fails is damage, not a torn write.
      Scan.MidFileCorruption = Pos + 8 + Len < Data.size();
      Scan.TornOffset = Pos;
      Scan.Why = "record CRC mismatch at byte " + std::to_string(Pos) +
                 (Scan.MidFileCorruption ? " (mid-file corruption)"
                                         : " (corrupt final record)");
      break;
    }
    Scan.Records.emplace_back(Payload);
    Pos += 8 + Len;
    Scan.GoodBytes = Pos;
  }
  return Scan;
}

} // namespace

uint32_t crc32c(std::string_view Data, uint32_t Seed) {
  // Reflected Castagnoli polynomial, one-byte-at-a-time table.
  static const auto Table = [] {
    std::array<uint32_t, 256> T{};
    for (uint32_t I = 0; I < 256; ++I) {
      uint32_t C = I;
      for (int K = 0; K < 8; ++K)
        C = (C & 1) ? 0x82f63b78u ^ (C >> 1) : C >> 1;
      T[I] = C;
    }
    return T;
  }();
  uint32_t Crc = ~Seed;
  for (unsigned char B : Data)
    Crc = Table[(Crc ^ B) & 0xff] ^ (Crc >> 8);
  return ~Crc;
}

std::string RecordLog::encodeFrame(std::string_view Payload) {
  std::string Frame;
  Frame.reserve(Payload.size() + 8);
  putU32(Frame, static_cast<uint32_t>(Payload.size()));
  putU32(Frame, crc32c(Payload));
  Frame.append(Payload);
  return Frame;
}

std::string RecordLog::encodeHeaderBlock(std::string_view Header) {
  std::string Block(Magic, MagicSize);
  putU32(Block, static_cast<uint32_t>(Header.size()));
  putU32(Block, crc32c(Header));
  Block.append(Header);
  return Block;
}

uint64_t RecordLog::headerBlockSize(uint64_t HeaderBytes) {
  return MagicSize + 8 + HeaderBytes;
}

RecordLog::~RecordLog() { close(); }

RecordLog::RecordLog(RecordLog &&Other) noexcept
    : Path(std::move(Other.Path)), Header(std::move(Other.Header)),
      FsyncEachRecord(Other.FsyncEachRecord), Fd(Other.Fd),
      LockFd(Other.LockFd), Mutex(std::move(Other.Mutex)) {
  Other.Fd = -1;
  Other.LockFd = -1;
}

RecordLog &RecordLog::operator=(RecordLog &&Other) noexcept {
  if (this != &Other) {
    close();
    Path = std::move(Other.Path);
    Header = std::move(Other.Header);
    FsyncEachRecord = Other.FsyncEachRecord;
    Fd = Other.Fd;
    LockFd = Other.LockFd;
    Mutex = std::move(Other.Mutex);
    Other.Fd = -1;
    Other.LockFd = -1;
  }
  return *this;
}

void RecordLog::close() {
  if (Fd >= 0) {
    ::close(Fd);
    Fd = -1;
  }
  if (LockFd >= 0) {
    ::close(LockFd);
    LockFd = -1;
  }
}

Expected<RecordLog> RecordLog::open(const std::string &Path,
                                    const RecordLogOptions &Opts,
                                    RecordLogScan *Recovery) {
  RecordLog Log;
  Log.Path = Path;
  Log.Header = Opts.Header;
  Log.FsyncEachRecord = Opts.FsyncEachRecord;

  Log.LockFd = openLockFile(Path);
  if (Log.LockFd < 0)
    return Expected<RecordLog>::error("cannot create lock file " + Path +
                                      ".lock: " + std::strerror(errno));
  flockRetry(Log.LockFd, LOCK_EX);
  // Everything below runs under the exclusive lock; release on every exit.
  auto Fail = [&](std::string Msg) {
    flockRetry(Log.LockFd, LOCK_UN);
    Log.close();
    return Expected<RecordLog>::error(std::move(Msg));
  };

  // A leftover temp file means a compactor crashed before its rename; the
  // live file is still authoritative, the temp is garbage.
  ::unlink((Path + CompactTmpSuffix).c_str());

  Log.Fd = retryOpen(Path.c_str(), O_RDWR | O_CREAT | O_APPEND | O_CLOEXEC,
                     0644);
  if (Log.Fd < 0)
    return Fail("cannot open " + Path + " for append: " +
                std::strerror(errno));

  std::string Image;
  if (::lseek(Log.Fd, 0, SEEK_SET) < 0 || !readWholeFd(Log.Fd, Image))
    return Fail("cannot read " + Path + ": " + std::strerror(errno));

  if (Image.empty()) {
    std::string Block = encodeHeaderBlock(Opts.Header);
    if (!writeAll(Log.Fd, Block.data(), Block.size(), nullptr))
      return Fail(errnoStatus("cannot write header to", Path).message());
    // The header anchors every future recovery; force it down once.
    (void)::fsync(Log.Fd);
  } else {
    Expected<RecordLogScan> Scan = parseImage(Image);
    if (!Scan.ok())
      return Fail(Path + ": " + Scan.message());
    if (Scan->TornTail) {
      // Recovery: drop the torn/corrupt tail. When even the header is torn
      // (GoodBytes == 0) the file is rebuilt from the magic up.
      if (::ftruncate(Log.Fd, static_cast<off_t>(Scan->GoodBytes)) != 0)
        return Fail(errnoStatus("cannot truncate torn tail of", Path)
                        .message());
      if (Scan->GoodBytes == 0) {
        std::string Block = encodeHeaderBlock(Opts.Header);
        if (!writeAll(Log.Fd, Block.data(), Block.size(), nullptr))
          return Fail(errnoStatus("cannot rewrite header of", Path)
                          .message());
        Scan->Header = Opts.Header;
      }
      (void)::fsync(Log.Fd);
    }
    if (Opts.RequireHeaderMatch && Scan->Header != Opts.Header)
      return Fail(Path + ": header mismatch (the file was written with a "
                         "different header payload)");
    if (Recovery)
      *Recovery = std::move(*Scan);
  }
  flockRetry(Log.LockFd, LOCK_UN);
  return Log;
}

Status RecordLog::reopenIfReplaced() {
  struct stat OnDisk, Ours;
  if (::stat(Path.c_str(), &OnDisk) != 0)
    return errnoStatus("log file vanished:", Path);
  if (::fstat(Fd, &Ours) != 0)
    return errnoStatus("cannot fstat", Path);
  if (OnDisk.st_ino == Ours.st_ino && OnDisk.st_dev == Ours.st_dev)
    return Status::success();
  // A compaction renamed a new file over the path; appending to the old
  // unlinked inode would lose the record. Switch to the new one.
  int NewFd = retryOpen(Path.c_str(), O_RDWR | O_APPEND | O_CLOEXEC);
  if (NewFd < 0)
    return errnoStatus("cannot reopen compacted", Path);
  ::close(Fd);
  Fd = NewFd;
  return Status::success();
}

Status RecordLog::writeFrame(std::string_view Frame) {
  if (long Partial = crashInjector().partialBytesForThisAppend(Frame.size());
      Partial >= 0) {
    // Torture mode: persist a prefix of the frame, then die as abruptly as
    // the kernel allows. The fsync makes the torn bytes real on disk.
    size_t Written = 0;
    (void)writeAll(Fd, Frame.data(), static_cast<size_t>(Partial), &Written);
    (void)::fsync(Fd);
    ::raise(SIGKILL);
  }

  struct stat Before;
  bool HaveBefore = ::fstat(Fd, &Before) == 0;
  size_t Written = 0;
  if (!writeAll(Fd, Frame.data(), Frame.size(), &Written)) {
    // A partial frame (disk full, RLIMIT_FSIZE with SIGXFSZ ignored) would
    // read as a torn tail forever; amputate it now so the log stays clean
    // and later appends can succeed if space frees up.
    if (HaveBefore && Written > 0)
      (void)::ftruncate(Fd, Before.st_size);
    return errnoStatus("short write to", Path);
  }
  if (FsyncEachRecord && ::fsync(Fd) != 0)
    return errnoStatus("cannot fsync", Path);
  return Status::success();
}

Status RecordLog::append(std::string_view Payload) {
  std::lock_guard<std::mutex> Guard(*Mutex);
  if (Fd < 0)
    return Status::error("record log is not open");
  flockRetry(LockFd, LOCK_EX);
  Status S = reopenIfReplaced();
  if (S.ok())
    S = writeFrame(RecordLog::encodeFrame(Payload));
  flockRetry(LockFd, LOCK_UN);
  return S;
}

Status RecordLog::compact(const std::vector<std::string> &Records) {
  std::lock_guard<std::mutex> Guard(*Mutex);
  if (Fd < 0)
    return Status::error("record log is not open");
  flockRetry(LockFd, LOCK_EX);
  auto Done = [&](Status S) {
    flockRetry(LockFd, LOCK_UN);
    return S;
  };

  std::string Tmp = Path + CompactTmpSuffix;
  int TmpFd =
      retryOpen(Tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (TmpFd < 0)
    return Done(errnoStatus("cannot create compaction file", Tmp));
  std::string Image = encodeHeaderBlock(Header);
  for (const std::string &R : Records)
    Image += encodeFrame(R);
  bool Ok = writeAll(TmpFd, Image.data(), Image.size(), nullptr) &&
            ::fsync(TmpFd) == 0;
  ::close(TmpFd);
  if (!Ok) {
    ::unlink(Tmp.c_str());
    return Done(errnoStatus("cannot write compaction file", Tmp));
  }
  if (::rename(Tmp.c_str(), Path.c_str()) != 0) {
    ::unlink(Tmp.c_str());
    return Done(errnoStatus("cannot rename compaction file over", Path));
  }
  // Make the rename itself durable before anyone appends to the new file.
  if (Status S = fsyncDirOf(Path); !S.ok())
    return Done(S);
  int NewFd = retryOpen(Path.c_str(), O_RDWR | O_APPEND | O_CLOEXEC);
  if (NewFd < 0)
    return Done(errnoStatus("cannot reopen compacted", Path));
  ::close(Fd);
  Fd = NewFd;
  return Done(Status::success());
}

Expected<RecordLogScan> RecordLog::scan(const std::string &Path) {
  int Fd = retryOpen(Path.c_str(), O_RDONLY | O_CLOEXEC);
  if (Fd < 0) {
    if (errno == ENOENT)
      return RecordLogScan{}; // a missing log is an empty log
    return Expected<RecordLogScan>::error("cannot open " + Path + ": " +
                                          std::strerror(errno));
  }
  // Shared lock so a concurrent writer's frame is never read half-written.
  // On unwritable directories the lock file may be uncreatable; degrade to
  // a lockless read (writers there are impossible anyway).
  int LockFd = openLockFile(Path);
  flockRetry(LockFd, LOCK_SH);
  std::string Image;
  bool ReadOk = readWholeFd(Fd, Image);
  flockRetry(LockFd, LOCK_UN);
  if (LockFd >= 0)
    ::close(LockFd);
  ::close(Fd);
  if (!ReadOk)
    return Expected<RecordLogScan>::error("cannot read " + Path + ": " +
                                          std::strerror(errno));
  Expected<RecordLogScan> Scan = parseImage(Image);
  if (!Scan.ok())
    return Expected<RecordLogScan>::error(Path + ": " + Scan.message());
  return Scan;
}

} // namespace support
} // namespace locus
