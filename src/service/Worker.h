//===- Worker.h - Tuning-service worker loop ---------------------*- C++ -*-===//
///
/// \file
/// The worker side of the tuning service: claim -> evaluate -> result ->
/// repeat, heartbeating while an evaluation runs so the coordinator can
/// tell "slow" from "dead". A worker holds no state the queue does not —
/// killing one at any instruction loses at most the evaluation in flight,
/// which the lease machinery reassigns.
///
//===----------------------------------------------------------------------===//
#ifndef LOCUS_SERVICE_WORKER_H
#define LOCUS_SERVICE_WORKER_H

#include "src/search/Search.h"
#include "src/service/TaskQueue.h"
#include "src/support/Error.h"

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>

namespace locus {
namespace service {

struct WorkerOptions {
  std::string QueueDir;
  std::string WorkerId = "worker";
  /// When nonzero, refuse a queue whose header pins a different space
  /// fingerprint (located diagnostic instead of garbage evaluations).
  uint64_t SpaceFingerprint = 0;
  /// Heartbeat period while an evaluation runs.
  double HeartbeatSeconds = 0.5;
  /// Idle poll period while waiting for claimable tasks.
  double PollSeconds = 0.02;
  /// Exit after this many evaluated tasks; 0 = until shutdown record.
  uint64_t MaxTasks = 0;
  /// Test hook: stop heartbeating after this many beats per task (>= 0)
  /// to simulate a worker that stalls mid-evaluation; -1 = unlimited.
  int MaxHeartbeatsPerTask = -1;
  /// Cooperative stop (support::shutdownFlag()).
  const std::atomic<bool> *StopFlag = nullptr;
  /// Test hook invoked after a claim is won, before evaluation.
  std::function<void(uint64_t TaskId)> OnClaim;
};

struct WorkerStats {
  uint64_t TasksEvaluated = 0;
  uint64_t ClaimsLost = 0; ///< optimistic claims beaten by another worker
  uint64_t Heartbeats = 0;
};

/// Runs the worker loop until the queue's shutdown record, StopFlag, or
/// MaxTasks. Obj must be the same deterministic objective the in-process
/// run would use — that equivalence is what makes serve-mode trajectories
/// bit-identical to local ones.
Expected<WorkerStats> runWorker(const search::Space &Space,
                                search::Objective &Obj,
                                const WorkerOptions &Opts);

} // namespace service
} // namespace locus

#endif // LOCUS_SERVICE_WORKER_H
