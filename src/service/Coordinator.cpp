//===- Coordinator.cpp - Tuning-service coordinator -----------------------===//

#include "src/service/Coordinator.h"

#include "src/search/PointCodec.h"
#include "src/support/Hashing.h"
#include "src/support/Posix.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstring>
#include <ctime>
#include <fcntl.h>
#include <sys/file.h>
#include <sys/stat.h>

namespace locus {
namespace service {

namespace {

double monotonicSeconds() {
  struct timespec Ts;
  clock_gettime(CLOCK_MONOTONIC, &Ts);
  return static_cast<double>(Ts.tv_sec) +
         1e-9 * static_cast<double>(Ts.tv_nsec);
}

} // namespace

Coordinator::Coordinator(CoordinatorOptions Opts) : Opts(std::move(Opts)) {
  if (this->Opts.DegradeGraceSeconds < 0)
    this->Opts.DegradeGraceSeconds = this->Opts.LeaseTimeoutSeconds;
}

Expected<std::unique_ptr<Coordinator>>
Coordinator::start(CoordinatorOptions Opts) {
  std::unique_ptr<Coordinator> C(new Coordinator(std::move(Opts)));
  if (Status S = C->init(); !S.ok())
    return Expected<std::unique_ptr<Coordinator>>::error(S.message());
  return C;
}

Status Coordinator::init() {
  if (Opts.QueueDir.empty())
    return Status::error("coordinator requires a queue directory");
  // Best-effort dir creation; open failures below carry the diagnostics.
  ::mkdir(Opts.QueueDir.c_str(), 0755);

  // Single-coordinator exclusion: one authority per queue dir, enforced at
  // the kernel. The lock rides the open fd, so any coordinator death —
  // including SIGKILL — releases it.
  std::string LockPath = Opts.QueueDir + "/coordinator.lock";
  LockFd = support::retryOpen(LockPath.c_str(),
                              O_RDWR | O_CREAT | O_CLOEXEC, 0644);
  if (LockFd < 0)
    return Status::error("cannot create coordinator lock " + LockPath + ": " +
                         std::strerror(errno));
  if (support::retryFlock(LockFd, LOCK_EX | LOCK_NB) != 0) {
    support::closeQuietly(LockFd);
    LockFd = -1;
    return Status::error(
        "queue dir " + Opts.QueueDir +
        " is already served by a live coordinator (flock held on " + LockPath +
        "); two coordinators must not share one queue");
  }

  TaskQueueOptions QOpts;
  QOpts.Dir = Opts.QueueDir;
  QOpts.Header = makeQueueHeader(Opts.SpaceFingerprint, Opts.ConfigDigest);
  QOpts.RequireHeaderMatch = true;
  QOpts.FsyncEachRecord = Opts.FsyncEachRecord;
  auto Q = TaskQueue::open(QOpts);
  if (!Q.ok())
    return Status::error(Q.message());
  Queue = std::move(*Q);

  // Fold whatever a previous coordinator left behind. A shutdown record
  // from a *completed* run is compacted away first so workers don't retire
  // on sight; its tasks and results survive as the recovered store.
  auto Folded = Queue.poll(State);
  if (!Folded.ok())
    return Status::error(Folded.message());
  if (State.ShutdownSeen) {
    if (Status S = Queue.compactDropShutdown(); !S.ok())
      return S;
    State = QueueState{};
    if (auto Refolded = Queue.poll(State); !Refolded.ok())
      return Status::error(Refolded.message());
  }
  for (const auto &[Id, T] : State.Tasks) {
    NextTaskId = std::max(NextTaskId, Id + 1);
    if (T.Done)
      Recovered.emplace(T.PointText, T.Out);
  }
  {
    std::lock_guard<std::mutex> L(M);
    Stats.StaleResultsDiscarded = State.StaleResultsDiscarded;
  }

  StartTime = LastQueueActivity = monotonicSeconds();
  // Leases inherited from a crashed predecessor start their liveness clock
  // now: our own children died with the predecessor (parent-death signal),
  // but an *external* worker may still be heartbeating, so expiry waits
  // out a full timeout rather than firing blind.
  for (const auto &[Id, T] : State.Tasks)
    if (!T.Done && !T.LeaseWorker.empty())
      LeaseActivity[Id] = StartTime;

  if (Opts.WorkerArgv)
    Slots.resize(static_cast<size_t>(std::max(0, Opts.Workers)));

  Supervisor = std::thread([this] { superviseLoop(); });
  return Status::success();
}

Coordinator::~Coordinator() {
  shutdown();
  if (LockFd >= 0) {
    support::closeQuietly(LockFd); // closing drops the flock
    LockFd = -1;
  }
}

ServiceStats Coordinator::stats() const {
  std::lock_guard<std::mutex> L(M);
  return Stats;
}

search::EvalOutcome Coordinator::assess(const search::Point &P,
                                        search::Objective &Fallback) {
  std::string Text = search::serializePoint(P);
  uint64_t Id = 0;
  {
    std::lock_guard<std::mutex> L(M);
    ++Stats.TasksSubmitted;
    auto It = Recovered.find(Text);
    if (It != Recovered.end()) {
      ++Stats.RecoveredResults;
      return It->second;
    }
    if (ShuttingDown.load() || DegradedFlag.load() || stopRequested()) {
      ++Stats.LocalFallbackEvals;
      Id = 0;
    } else {
      Id = NextTaskId++;
      Pending.try_emplace(Id);
    }
  }
  if (Id == 0)
    return Fallback.assess(P);

  Status S = Queue.announceTask(Id, Text, fnv1a(Text));
  if (!S.ok()) {
    // An unwritable queue must never stall the search; evaluate here.
    std::lock_guard<std::mutex> L(M);
    Pending.erase(Id);
    ++Stats.LocalFallbackEvals;
    return Fallback.assess(P);
  }

  std::unique_lock<std::mutex> L(M);
  PendingTask &PT = Pending[Id];
  Cv.wait(L, [&] {
    return PT.Done || DegradedFlag.load() || ShuttingDown.load() ||
           stopRequested();
  });
  if (PT.Done) {
    search::EvalOutcome Out = PT.Out;
    Pending.erase(Id);
    return Out;
  }
  // Degraded / stopping: the task stays on the queue (a late worker result
  // is harmless — the fold accepts it, nobody waits), we evaluate locally.
  Pending.erase(Id);
  ++Stats.LocalFallbackEvals;
  L.unlock();
  return Fallback.assess(P);
}

void Coordinator::shutdown() {
  bool WasShuttingDown = ShuttingDown.exchange(true);
  if (WasShuttingDown) {
    if (Supervisor.joinable())
      Supervisor.join();
    return;
  }
  (void)Queue.announceShutdown();
  Cv.notify_all();
  if (Supervisor.joinable())
    Supervisor.join();
  // Wind the fleet down: the shutdown record retires polite workers, the
  // SIGTERM reaches ones parked mid-evaluation, the ChildProcess destructor
  // SIGKILLs whatever is left.
  for (Slot &S : Slots)
    if (S.Spawned && S.Proc.running())
      S.Proc.signalGroup(SIGTERM);
  for (Slot &S : Slots)
    if (S.Spawned)
      (void)S.Proc.waitExit(2.0);
  Slots.clear();
}

void Coordinator::superviseLoop() {
  while (!ShuttingDown.load()) {
    pollQueue();
    sweepFulfill();
    double Now = monotonicSeconds();
    superviseLeases(Now);
    superviseSlots(Now);
    maybeDegrade(Now);
    if (stopRequested())
      Cv.notify_all(); // unblock waiters promptly on Ctrl-C/SIGTERM
    std::unique_lock<std::mutex> L(M);
    if (ShuttingDown.load())
      break;
    Cv.wait_for(L, std::chrono::duration<double>(Opts.PollSeconds),
                [this] { return ShuttingDown.load(); });
  }
  // Final fold so stats reflect the last records (and late results land in
  // the fulfillment map for any still-blocked waiter).
  pollQueue();
  sweepFulfill();
  Cv.notify_all();
}

void Coordinator::pollQueue() {
  double Now = monotonicSeconds();
  auto Applied = Queue.poll(State, [&](const QueueRecord &R) {
    switch (R.K) {
    case QueueRecord::Kind::Lease: {
      LastQueueActivity = Now;
      const TaskState *T = State.find(R.Id);
      if (T && !T->Done && T->Epoch == R.Epoch && T->LeaseWorker == R.Worker) {
        LeaseActivity[R.Id] = Now;
        // A lease appended by a worker we already watched die (the claim
        // raced our death observation) is dead on arrival: reassign now
        // instead of waiting out the timeout, and charge the death set.
        if (DeadWorkerIds.count(R.Worker))
          attributeDeath(R.Id, R.Worker);
      }
      return;
    }
    case QueueRecord::Kind::Heartbeat: {
      LastQueueActivity = Now;
      const TaskState *T = State.find(R.Id);
      if (T && !T->Done && T->Epoch == R.Epoch && T->LeaseWorker == R.Worker)
        LeaseActivity[R.Id] = Now;
      return;
    }
    case QueueRecord::Kind::Result: {
      LastQueueActivity = Now;
      // An accepted result vouches for its worker: reset the owning slot's
      // death streak so one bad variant doesn't retire a healthy slot.
      for (Slot &S : Slots)
        if (S.Spawned && S.WorkerId == R.Worker)
          S.ConsecutiveDeaths = 0;
      return;
    }
    default:
      return;
    }
  });
  (void)Applied; // queue read errors are transient; the next tick retries
  std::lock_guard<std::mutex> L(M);
  Stats.StaleResultsDiscarded = State.StaleResultsDiscarded;
}

void Coordinator::sweepFulfill() {
  std::lock_guard<std::mutex> L(M);
  bool Woke = false;
  for (auto &[Id, PT] : Pending) {
    if (PT.Done)
      continue;
    const TaskState *T = State.find(Id);
    if (!T || !T->Done)
      continue;
    PT.Done = true;
    PT.Out = T->Out;
    if (T->Quarantined)
      ++Stats.QuarantinedTasks;
    else
      ++Stats.WorkerResults;
    Woke = true;
  }
  if (Woke)
    Cv.notify_all();
}

void Coordinator::superviseLeases(double Now) {
  for (const auto &[Id, T] : State.Tasks) {
    if (T.Done || T.LeaseWorker.empty())
      continue;
    auto It = LeaseActivity.find(Id);
    double Last = It != LeaseActivity.end() ? It->second : StartTime;
    if (Now - Last < Opts.LeaseTimeoutSeconds)
      continue;
    if (!ExpireInFlight.insert({Id, T.Epoch}).second)
      continue; // expiry already on the wire for this epoch
    if (Queue.expire(Id, T.Epoch).ok()) {
      std::lock_guard<std::mutex> L(M);
      ++Stats.LeaseExpiries;
    }
  }
}

void Coordinator::attributeDeath(uint64_t TaskId,
                                 const std::string &WorkerId) {
  const TaskState *T = State.find(TaskId);
  if (!T || T->Done)
    return;
  std::set<std::string> &DS = DeathSets[TaskId];
  DS.insert(WorkerId);
  if (static_cast<int>(DS.size()) >= std::max(1, Opts.PoisonWorkerDeaths)) {
    if (!QuarantineInFlight.insert(TaskId).second)
      return;
    std::string Detail = "task quarantined: " + std::to_string(DS.size()) +
                         " distinct workers died evaluating it (";
    bool First = true;
    for (const std::string &W : DS) {
      if (!First)
        Detail += ", ";
      Detail += W;
      First = false;
    }
    Detail += ")";
    (void)Queue.quarantine(TaskId, Detail);
    return;
  }
  if (ExpireInFlight.insert({TaskId, T->Epoch}).second &&
      Queue.expire(TaskId, T->Epoch).ok()) {
    std::lock_guard<std::mutex> L(M);
    ++Stats.LeaseExpiries;
  }
}

void Coordinator::superviseSlots(double Now) {
  for (size_t I = 0; I < Slots.size(); ++I) {
    Slot &S = Slots[I];
    if (S.Spawned && !S.Proc.running()) {
      // Any exit outside shutdown is a death: a healthy worker only leaves
      // when told to.
      S.Spawned = false;
      DeadWorkerIds.insert(S.WorkerId);
      {
        std::lock_guard<std::mutex> L(M);
        ++Stats.WorkerDeaths;
      }
      for (const auto &[Id, T] : State.Tasks)
        if (!T.Done && T.LeaseWorker == S.WorkerId)
          attributeDeath(Id, S.WorkerId);
      ++S.ConsecutiveDeaths;
      if (S.ConsecutiveDeaths > Opts.MaxRespawnsPerSlot) {
        S.Retired = true;
      } else {
        double Backoff = Opts.RespawnBackoffSeconds *
                         static_cast<double>(1u << std::min(
                             S.ConsecutiveDeaths - 1, 16));
        S.NextSpawnAt =
            Now + std::min(Backoff, Opts.RespawnBackoffCapSeconds);
      }
    }
    if (!S.Spawned && !S.Retired && Now >= S.NextSpawnAt && Opts.WorkerArgv &&
        !ShuttingDown.load() && !stopRequested()) {
      S.WorkerId = "w" + std::to_string(I) + "." + std::to_string(S.Attempts);
      support::ChildProcessOptions CPOpts;
      CPOpts.Argv = Opts.WorkerArgv(static_cast<int>(I), S.Attempts);
      CPOpts.Argv.push_back("--worker-id");
      CPOpts.Argv.push_back(S.WorkerId);
      CPOpts.OutputPath =
          Opts.QueueDir + "/worker-" + std::to_string(I) + ".log";
      auto CP = support::ChildProcess::spawn(CPOpts);
      ++S.Attempts;
      if (!CP.ok()) {
        // Spawn failure counts as an instant death (backoff applies).
        ++S.ConsecutiveDeaths;
        if (S.ConsecutiveDeaths > Opts.MaxRespawnsPerSlot)
          S.Retired = true;
        S.NextSpawnAt = Now + Opts.RespawnBackoffSeconds;
        continue;
      }
      S.Proc = std::move(*CP);
      S.Spawned = true;
      std::lock_guard<std::mutex> L(M);
      ++Stats.WorkersSpawned;
      if (S.Attempts > 1)
        ++Stats.WorkerRespawns;
    }
  }
}

void Coordinator::maybeDegrade(double Now) {
  if (DegradedFlag.load())
    return;
  {
    std::lock_guard<std::mutex> L(M);
    bool AnyOpen = false;
    for (const auto &[Id, PT] : Pending)
      if (!PT.Done) {
        AnyOpen = true;
        break;
      }
    if (!AnyOpen)
      return;
  }
  // Managed slots that are alive — or merely backing off — can still serve.
  for (const Slot &S : Slots)
    if (!S.Retired)
      return;
  // No managed capacity. External workers get a grace window measured from
  // the last queue activity before the search falls back in-process.
  double Quiet = Now - std::max(LastQueueActivity, StartTime);
  if (Quiet < Opts.DegradeGraceSeconds)
    return;
  DegradedFlag.store(true);
  std::lock_guard<std::mutex> L(M);
  Stats.Degraded = true;
  Cv.notify_all();
}

} // namespace service
} // namespace locus
