//===- TaskQueue.cpp - Durable lease-based evaluation task queue ----------===//

#include "src/service/TaskQueue.h"

#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <vector>

namespace locus {
namespace service {

namespace {

constexpr const char *QueueFileName = "queue.rlog";
constexpr const char *HeaderMagic = "locus-queue v1";

/// Worker ids are single space-free tokens in the record grammar; anything
/// else would shift fields on parse.
std::string sanitizeToken(const std::string &S) {
  std::string Out = S.empty() ? std::string("anon") : S;
  for (char &C : Out)
    if (C == ' ' || C == '\n' || C == '\t' || C == '\r')
      C = '_';
  return Out;
}

std::string formatMetric(const search::EvalOutcome &Out) {
  // Journal convention: failures carry no meaningful metric; encode 0 and
  // restore infinity on decode. Successful metrics round-trip exactly via
  // %.17g.
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.17g", Out.ok() ? Out.Metric : 0.0);
  return Buf;
}

bool parseU64(const std::string &Tok, uint64_t &V) {
  if (Tok.empty())
    return false;
  char *End = nullptr;
  errno = 0;
  V = std::strtoull(Tok.c_str(), &End, 10);
  return End && *End == '\0' && errno == 0;
}

bool parseHex64(const std::string &Tok, uint64_t &V) {
  if (Tok.empty())
    return false;
  char *End = nullptr;
  errno = 0;
  V = std::strtoull(Tok.c_str(), &End, 16);
  return End && *End == '\0' && errno == 0;
}

std::vector<std::string> splitFields(const std::string &Line) {
  std::vector<std::string> Fields;
  size_t Pos = 0;
  while (Pos < Line.size()) {
    size_t Space = Line.find(' ', Pos);
    if (Space == std::string::npos) {
      Fields.push_back(Line.substr(Pos));
      break;
    }
    Fields.push_back(Line.substr(Pos, Space - Pos));
    Pos = Space + 1;
  }
  return Fields;
}

} // namespace

const char *queueRecordKindName(QueueRecord::Kind K) {
  switch (K) {
  case QueueRecord::Kind::Task:
    return "task";
  case QueueRecord::Kind::Lease:
    return "lease";
  case QueueRecord::Kind::Heartbeat:
    return "hb";
  case QueueRecord::Kind::Expire:
    return "expire";
  case QueueRecord::Kind::Result:
    return "result";
  case QueueRecord::Kind::Quarantine:
    return "quarantine";
  case QueueRecord::Kind::Shutdown:
    return "shutdown";
  }
  return "unknown";
}

std::string encodeQueueRecord(const QueueRecord &R) {
  char Buf[96];
  std::string Out;
  switch (R.K) {
  case QueueRecord::Kind::Task:
    std::snprintf(Buf, sizeof(Buf), "task %" PRIu64 " %016" PRIx64, R.Id,
                  R.Digest);
    Out = Buf;
    Out += '\n';
    Out += R.Body;
    return Out;
  case QueueRecord::Kind::Lease:
  case QueueRecord::Kind::Heartbeat:
    std::snprintf(Buf, sizeof(Buf), "%s %" PRIu64 " %" PRIu64 " ",
                  queueRecordKindName(R.K), R.Id, R.Epoch);
    Out = Buf;
    Out += sanitizeToken(R.Worker);
    return Out;
  case QueueRecord::Kind::Expire:
    std::snprintf(Buf, sizeof(Buf), "expire %" PRIu64 " %" PRIu64, R.Id,
                  R.Epoch);
    return Buf;
  case QueueRecord::Kind::Result:
    std::snprintf(Buf, sizeof(Buf), "result %" PRIu64 " %" PRIu64 " ", R.Id,
                  R.Epoch);
    Out = Buf;
    Out += sanitizeToken(R.Worker);
    Out += ' ';
    Out += search::failureKindName(R.Out.Failure);
    Out += ' ';
    Out += formatMetric(R.Out);
    Out += '\n';
    Out += R.Out.Detail;
    return Out;
  case QueueRecord::Kind::Quarantine:
    std::snprintf(Buf, sizeof(Buf), "quarantine %" PRIu64, R.Id);
    Out = Buf;
    Out += '\n';
    Out += R.Body;
    return Out;
  case QueueRecord::Kind::Shutdown:
    return "shutdown";
  }
  return "";
}

Expected<QueueRecord> parseQueueRecord(const std::string &Payload) {
  using E = Expected<QueueRecord>;
  size_t Newline = Payload.find('\n');
  std::string Line =
      Newline == std::string::npos ? Payload : Payload.substr(0, Newline);
  std::string Body =
      Newline == std::string::npos ? std::string() : Payload.substr(Newline + 1);
  std::vector<std::string> F = splitFields(Line);
  if (F.empty())
    return E::error("empty queue record");

  QueueRecord R;
  const std::string &Kind = F[0];
  auto WantFields = [&](size_t N) {
    return F.size() == N
               ? Status::success()
               : Status::error("queue record '" + Kind + "' has " +
                               std::to_string(F.size() - 1) + " field(s), want " +
                               std::to_string(N - 1));
  };

  if (Kind == "task") {
    if (Status S = WantFields(3); !S.ok())
      return E::error(S.message());
    R.K = QueueRecord::Kind::Task;
    if (!parseU64(F[1], R.Id) || !parseHex64(F[2], R.Digest))
      return E::error("malformed task record fields");
    R.Body = std::move(Body);
    return R;
  }
  if (Kind == "lease" || Kind == "hb") {
    if (Status S = WantFields(4); !S.ok())
      return E::error(S.message());
    R.K = Kind == "lease" ? QueueRecord::Kind::Lease
                          : QueueRecord::Kind::Heartbeat;
    if (!parseU64(F[1], R.Id) || !parseU64(F[2], R.Epoch))
      return E::error("malformed " + Kind + " record fields");
    R.Worker = F[3];
    return R;
  }
  if (Kind == "expire") {
    if (Status S = WantFields(3); !S.ok())
      return E::error(S.message());
    R.K = QueueRecord::Kind::Expire;
    if (!parseU64(F[1], R.Id) || !parseU64(F[2], R.Epoch))
      return E::error("malformed expire record fields");
    return R;
  }
  if (Kind == "result") {
    if (Status S = WantFields(6); !S.ok())
      return E::error(S.message());
    R.K = QueueRecord::Kind::Result;
    if (!parseU64(F[1], R.Id) || !parseU64(F[2], R.Epoch))
      return E::error("malformed result record fields");
    R.Worker = F[3];
    bool KindOk = false;
    R.Out.Failure = search::parseFailureKind(F[4], KindOk);
    if (!KindOk)
      return E::error("unknown failure kind '" + F[4] + "' in result record");
    char *End = nullptr;
    double Metric = std::strtod(F[5].c_str(), &End);
    if (!End || *End != '\0')
      return E::error("malformed metric '" + F[5] + "' in result record");
    R.Out.Metric = R.Out.ok() ? Metric
                              : std::numeric_limits<double>::infinity();
    R.Out.Detail = Body;
    R.Body = std::move(Body);
    return R;
  }
  if (Kind == "quarantine") {
    if (Status S = WantFields(2); !S.ok())
      return E::error(S.message());
    R.K = QueueRecord::Kind::Quarantine;
    if (!parseU64(F[1], R.Id))
      return E::error("malformed quarantine record fields");
    R.Body = std::move(Body);
    return R;
  }
  if (Kind == "shutdown") {
    R.K = QueueRecord::Kind::Shutdown;
    return R;
  }
  return E::error("unknown queue record kind '" + Kind + "'");
}

//===----------------------------------------------------------------------===//
// QueueState
//===----------------------------------------------------------------------===//

void QueueState::apply(const QueueRecord &R) {
  ++AppliedRecords;
  switch (R.K) {
  case QueueRecord::Kind::Task: {
    auto [It, Inserted] = Tasks.try_emplace(R.Id);
    if (Inserted) {
      It->second.Id = R.Id;
      It->second.PointText = R.Body;
      It->second.Digest = R.Digest;
    }
    // A duplicate task id (a coordinator resumed past its own announcement)
    // keeps the first announcement; the point text is identical by
    // construction (id assignment is monotonic per queue).
    return;
  }
  case QueueRecord::Kind::Lease: {
    auto It = Tasks.find(R.Id);
    if (It == Tasks.end())
      return;
    TaskState &T = It->second;
    // First lease of the current epoch wins; anything else lost the race
    // or arrived from a past epoch and is void.
    if (!T.Done && R.Epoch == T.Epoch && T.LeaseWorker.empty())
      T.LeaseWorker = R.Worker;
    return;
  }
  case QueueRecord::Kind::Heartbeat:
    // Liveness is judged by the *observer's* arrival clock (no in-file
    // timestamps, hence no cross-host clock skew); the fold itself is
    // heartbeat-blind.
    return;
  case QueueRecord::Kind::Expire: {
    auto It = Tasks.find(R.Id);
    if (It == Tasks.end())
      return;
    TaskState &T = It->second;
    if (!T.Done && R.Epoch == T.Epoch) {
      ++T.Epoch;
      T.LeaseWorker.clear();
    }
    return;
  }
  case QueueRecord::Kind::Result: {
    auto It = Tasks.find(R.Id);
    if (It == Tasks.end()) {
      ++StaleResultsDiscarded;
      return;
    }
    TaskState &T = It->second;
    // First-writer-wins: accepted iff the task is open and the result
    // carries the winning lease of the *current* epoch. A revived worker's
    // post-expiry result fails the epoch match and is discarded + counted.
    if (!T.Done && R.Epoch == T.Epoch && !T.LeaseWorker.empty() &&
        R.Worker == T.LeaseWorker) {
      T.Done = true;
      T.Out = R.Out;
      T.DoneWorker = R.Worker;
    } else {
      ++T.StaleResults;
      ++StaleResultsDiscarded;
    }
    return;
  }
  case QueueRecord::Kind::Quarantine: {
    auto It = Tasks.find(R.Id);
    if (It == Tasks.end())
      return;
    TaskState &T = It->second;
    if (!T.Done) {
      T.Done = true;
      T.Quarantined = true;
      T.Out = search::EvalOutcome::fail(search::FailureKind::RuntimeTrap,
                                        R.Body);
      T.LeaseWorker.clear();
    }
    return;
  }
  case QueueRecord::Kind::Shutdown:
    ShutdownSeen = true;
    return;
  }
}

const TaskState *QueueState::find(uint64_t Id) const {
  auto It = Tasks.find(Id);
  return It == Tasks.end() ? nullptr : &It->second;
}

const TaskState *QueueState::firstClaimable() const {
  for (const auto &[Id, T] : Tasks)
    if (T.claimable())
      return &T;
  return nullptr;
}

//===----------------------------------------------------------------------===//
// TaskQueue
//===----------------------------------------------------------------------===//

std::string makeQueueHeader(uint64_t SpaceFingerprint, uint64_t ConfigDigest) {
  char Buf[96];
  std::snprintf(Buf, sizeof(Buf), "%s\nspace=%016" PRIx64 "\nconfig=%016" PRIx64,
                HeaderMagic, SpaceFingerprint, ConfigDigest);
  return Buf;
}

Expected<QueueHeaderInfo> parseQueueHeader(const std::string &Header) {
  using E = Expected<QueueHeaderInfo>;
  QueueHeaderInfo Info;
  size_t FirstNl = Header.find('\n');
  if (Header.compare(0, std::strlen(HeaderMagic), HeaderMagic) != 0 ||
      FirstNl == std::string::npos)
    return E::error("not a locus-queue v1 header");
  size_t SecondNl = Header.find('\n', FirstNl + 1);
  if (SecondNl == std::string::npos)
    return E::error("queue header is missing its config line");
  std::string SpaceLine = Header.substr(FirstNl + 1, SecondNl - FirstNl - 1);
  std::string ConfigLine = Header.substr(SecondNl + 1);
  if (SpaceLine.compare(0, 6, "space=") != 0 ||
      !parseHex64(SpaceLine.substr(6), Info.SpaceFingerprint))
    return E::error("queue header has a malformed space fingerprint");
  if (ConfigLine.compare(0, 7, "config=") != 0 ||
      !parseHex64(ConfigLine.substr(7), Info.ConfigDigest))
    return E::error("queue header has a malformed config digest");
  return Info;
}

std::string TaskQueue::queueFilePath(const std::string &Dir) {
  return Dir + "/" + QueueFileName;
}

Expected<TaskQueue> TaskQueue::open(const TaskQueueOptions &Opts) {
  TaskQueue Q;
  Q.Path = queueFilePath(Opts.Dir);
  support::RecordLogOptions LOpts;
  LOpts.Header = Opts.Header;
  LOpts.RequireHeaderMatch = Opts.RequireHeaderMatch;
  LOpts.FsyncEachRecord = Opts.FsyncEachRecord;
  support::RecordLogScan Recovery;
  auto Log = support::RecordLog::open(Q.Path, LOpts, &Recovery);
  if (!Log.ok())
    return Expected<TaskQueue>::error(Log.message());
  Q.Log = std::move(*Log);
  Q.Header = Recovery.Header.empty() ? Opts.Header : Recovery.Header;
  return Q;
}

Status TaskQueue::announceTask(uint64_t Id, const std::string &PointText,
                               uint64_t Digest) {
  QueueRecord R;
  R.K = QueueRecord::Kind::Task;
  R.Id = Id;
  R.Digest = Digest;
  R.Body = PointText;
  return Log.append(encodeQueueRecord(R));
}

Status TaskQueue::claim(uint64_t Id, uint64_t Epoch,
                        const std::string &Worker) {
  QueueRecord R;
  R.K = QueueRecord::Kind::Lease;
  R.Id = Id;
  R.Epoch = Epoch;
  R.Worker = Worker;
  return Log.append(encodeQueueRecord(R));
}

Status TaskQueue::heartbeat(uint64_t Id, uint64_t Epoch,
                            const std::string &Worker) {
  QueueRecord R;
  R.K = QueueRecord::Kind::Heartbeat;
  R.Id = Id;
  R.Epoch = Epoch;
  R.Worker = Worker;
  return Log.append(encodeQueueRecord(R));
}

Status TaskQueue::postResult(uint64_t Id, uint64_t Epoch,
                             const std::string &Worker,
                             const search::EvalOutcome &Out) {
  QueueRecord R;
  R.K = QueueRecord::Kind::Result;
  R.Id = Id;
  R.Epoch = Epoch;
  R.Worker = Worker;
  R.Out = Out;
  return Log.append(encodeQueueRecord(R));
}

Status TaskQueue::expire(uint64_t Id, uint64_t Epoch) {
  QueueRecord R;
  R.K = QueueRecord::Kind::Expire;
  R.Id = Id;
  R.Epoch = Epoch;
  return Log.append(encodeQueueRecord(R));
}

Status TaskQueue::quarantine(uint64_t Id, const std::string &Detail) {
  QueueRecord R;
  R.K = QueueRecord::Kind::Quarantine;
  R.Id = Id;
  R.Body = Detail;
  return Log.append(encodeQueueRecord(R));
}

Status TaskQueue::announceShutdown() {
  QueueRecord R;
  R.K = QueueRecord::Kind::Shutdown;
  return Log.append(encodeQueueRecord(R));
}

Status TaskQueue::compactDropShutdown() {
  auto Scan = support::RecordLog::scan(Path);
  if (!Scan.ok())
    return Status::error(Scan.message());
  std::vector<std::string> Kept;
  Kept.reserve(Scan->Records.size());
  for (std::string &Payload : Scan->Records) {
    auto R = parseQueueRecord(Payload);
    if (R.ok() && R->K == QueueRecord::Kind::Shutdown)
      continue;
    Kept.push_back(std::move(Payload));
  }
  return Log.compact(Kept);
}

Expected<uint64_t>
TaskQueue::poll(QueueState &State,
                const std::function<void(const QueueRecord &)> &OnRecord) {
  auto Scan = support::RecordLog::scan(Path);
  if (!Scan.ok())
    return Expected<uint64_t>::error(Scan.message());
  // A torn tail here is a writer that crashed mid-append; the complete
  // prefix is still authoritative and the next RecordLog::open amputates
  // the damage, so the fold simply ignores the flags.
  uint64_t Applied = 0;
  for (uint64_t I = State.AppliedRecords; I < Scan->Records.size(); ++I) {
    auto R = parseQueueRecord(Scan->Records[I]);
    if (!R.ok())
      return Expected<uint64_t>::error(
          Path + ": record " + std::to_string(I) + ": " + R.message());
    State.apply(*R);
    if (OnRecord)
      OnRecord(*R);
    ++Applied;
  }
  return Applied;
}

} // namespace service
} // namespace locus
