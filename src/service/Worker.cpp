//===- Worker.cpp - Tuning-service worker loop ----------------------------===//

#include "src/service/Worker.h"

#include "src/search/PointCodec.h"

#include <atomic>
#include <chrono>
#include <ctime>
#include <sstream>
#include <sys/stat.h>
#include <thread>

namespace locus {
namespace service {

namespace {

double monotonicSeconds() {
  struct timespec Ts;
  clock_gettime(CLOCK_MONOTONIC, &Ts);
  return static_cast<double>(Ts.tv_sec) +
         1e-9 * static_cast<double>(Ts.tv_nsec);
}

bool stopRequested(const WorkerOptions &Opts) {
  return Opts.StopFlag && Opts.StopFlag->load(std::memory_order_relaxed);
}

void sleepSeconds(double S) {
  std::this_thread::sleep_for(std::chrono::duration<double>(S));
}

/// Heartbeats Task/Epoch every HeartbeatSeconds until told to stop, in
/// 10 ms slices so joining is prompt once the evaluation finishes.
class HeartbeatPump {
public:
  HeartbeatPump(TaskQueue &Q, uint64_t Id, uint64_t Epoch,
                const WorkerOptions &Opts, uint64_t &Beats)
      : T([&Q, Id, Epoch, &Opts, &Beats, this] {
          double Last = monotonicSeconds();
          uint64_t Sent = 0;
          while (!Stop.load(std::memory_order_relaxed)) {
            sleepSeconds(0.01);
            double Now = monotonicSeconds();
            if (Now - Last < Opts.HeartbeatSeconds)
              continue;
            if (Opts.MaxHeartbeatsPerTask >= 0 &&
                Sent >= static_cast<uint64_t>(Opts.MaxHeartbeatsPerTask))
              continue; // simulated stall: lease goes silent
            if (Q.heartbeat(Id, Epoch, Opts.WorkerId).ok()) {
              ++Sent;
              ++Beats;
            }
            Last = Now;
          }
        }) {}
  ~HeartbeatPump() {
    Stop.store(true);
    if (T.joinable())
      T.join();
  }

private:
  std::atomic<bool> Stop{false};
  std::thread T;
};

} // namespace

Expected<WorkerStats> runWorker(const search::Space &Space,
                                search::Objective &Obj,
                                const WorkerOptions &Opts) {
  using Ret = Expected<WorkerStats>;
  if (Opts.QueueDir.empty())
    return Ret::error("worker requires --queue-dir");

  // The coordinator creates the log; wait for it rather than racing to
  // write a header of our own.
  std::string LogPath = TaskQueue::queueFilePath(Opts.QueueDir);
  for (;;) {
    struct stat St;
    if (::stat(LogPath.c_str(), &St) == 0)
      break;
    if (stopRequested(Opts))
      return Ret::error("worker stopped before queue " + LogPath + " existed");
    sleepSeconds(Opts.PollSeconds);
  }

  TaskQueueOptions QOpts;
  QOpts.Dir = Opts.QueueDir;
  QOpts.RequireHeaderMatch = false;
  auto Q = TaskQueue::open(QOpts);
  if (!Q.ok())
    return Ret::error(Q.message());
  TaskQueue Queue = std::move(*Q);

  auto Header = parseQueueHeader(Queue.header());
  if (!Header.ok())
    return Ret::error("queue " + LogPath +
                      " has no valid service header: " + Header.message());
  if (Opts.SpaceFingerprint != 0 &&
      Header->SpaceFingerprint != Opts.SpaceFingerprint) {
    std::ostringstream Os;
    Os << "queue " << LogPath << " was written for space fingerprint "
       << std::hex << Header->SpaceFingerprint << " but this worker built "
       << Opts.SpaceFingerprint << "; refusing to evaluate foreign points";
    return Ret::error(Os.str());
  }

  WorkerStats Stats;
  QueueState State;
  while (true) {
    if (stopRequested(Opts))
      break;
    if (auto Folded = Queue.poll(State); !Folded.ok())
      return Ret::error(Folded.message());
    if (State.ShutdownSeen)
      break;
    const TaskState *T = State.firstClaimable();
    if (!T) {
      sleepSeconds(Opts.PollSeconds);
      continue;
    }

    uint64_t Id = T->Id;
    uint64_t Epoch = T->Epoch;
    std::string PointText = T->PointText;
    if (Status S = Queue.claim(Id, Epoch, Opts.WorkerId); !S.ok())
      return Ret::error(S.message());
    if (auto Folded = Queue.poll(State); !Folded.ok())
      return Ret::error(Folded.message());
    T = State.find(Id);
    if (!T || T->Done || T->Epoch != Epoch ||
        T->LeaseWorker != Opts.WorkerId) {
      ++Stats.ClaimsLost; // someone else's lease landed first
      continue;
    }

    if (Opts.OnClaim)
      Opts.OnClaim(Id);

    search::EvalOutcome Out;
    {
      HeartbeatPump Pump(Queue, Id, Epoch, Opts, Stats.Heartbeats);
      auto P = search::deserializePoint(PointText, Space);
      if (!P.ok())
        Out = search::EvalOutcome::fail(search::FailureKind::InvalidPoint,
                                        "worker could not decode point: " +
                                            P.message());
      else
        Out = Obj.assess(*P);
    }
    if (Status S = Queue.postResult(Id, Epoch, Opts.WorkerId, Out); !S.ok())
      return Ret::error(S.message());
    ++Stats.TasksEvaluated;
    if (Opts.MaxTasks != 0 && Stats.TasksEvaluated >= Opts.MaxTasks)
      break;
  }
  return Stats;
}

} // namespace service
} // namespace locus
