//===- Coordinator.h - Tuning-service coordinator ----------------*- C++ -*-===//
///
/// \file
/// The coordinator side of the sharded tuning service. The searcher loop
/// runs unchanged in the coordinator process; every point the evaluation
/// pool would have assessed in-process is instead announced on the durable
/// TaskQueue, evaluated by a supervised worker process, and the result
/// folded back — in proposal order, because the pool already commits in
/// proposal order. Workers evaluate the same deterministic objective the
/// in-process run would, so `--serve --workers N` replays the bit-identical
/// trajectory (points, metrics, best, journal bytes) of `--jobs 1`.
///
/// Robustness model: every worker is treated as about to die.
///  - Leases expire when their worker stops appending heartbeats; expiry is
///    judged by the coordinator's *local monotonic arrival clock* (no
///    timestamps in the file, so worker clock skew cannot matter), and the
///    task is reassigned — a SIGKILLed, hung, or OOM'd worker loses time,
///    never work.
///  - Worker processes are spawned through ChildProcess (own process group,
///    parent-death SIGKILL) and respawned with exponential backoff; a slot
///    that keeps dying is eventually retired.
///  - A task on which PoisonWorkerDeaths *distinct* workers died is
///    quarantined: it completes as a RuntimeTrap failure in the normal
///    failure taxonomy instead of hanging the search.
///  - When no worker survives (all slots retired, no external activity),
///    the coordinator degrades to in-process evaluation on the waiting
///    pool threads — the search always finishes.
///  - A coordinator crash loses nothing: at start the existing queue is
///    folded and every accepted result becomes a recovered outcome served
///    without re-evaluation.
///
/// One coordinator per queue directory, enforced with a non-blocking flock
/// on <dir>/coordinator.lock; a second coordinator is refused with a
/// located diagnostic.
///
//===----------------------------------------------------------------------===//
#ifndef LOCUS_SERVICE_COORDINATOR_H
#define LOCUS_SERVICE_COORDINATOR_H

#include "src/search/Search.h"
#include "src/service/TaskQueue.h"
#include "src/support/Error.h"
#include "src/support/Subprocess.h"

#include <atomic>
#include <condition_variable>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

namespace locus {
namespace service {

struct CoordinatorOptions {
  /// Queue directory (created if missing): queue.rlog, coordinator.lock,
  /// worker-<slot>.log.
  std::string QueueDir;
  /// Pin the queue to one space + search config (mirrors the journal
  /// header); a queue dir written under a different pair is refused.
  uint64_t SpaceFingerprint = 0;
  uint64_t ConfigDigest = 0;
  /// Worker processes to spawn and supervise. 0 spawns none: external
  /// workers (`locus_cli --worker`) may serve the queue instead.
  int Workers = 0;
  /// Argv factory for slot spawns (coordinator appends
  /// `--worker-id w<slot>.<attempt>` itself). Attempt counts respawns, so a
  /// crash-injection flag can be limited to a slot's first incarnation.
  /// Empty means no managed workers regardless of Workers.
  std::function<std::vector<std::string>(int Slot, int Attempt)> WorkerArgv;
  /// A claimed task whose lease shows no lease/heartbeat arrival for this
  /// long is expired and reassigned.
  double LeaseTimeoutSeconds = 10.0;
  /// Supervision loop period (queue poll, liveness checks).
  double PollSeconds = 0.02;
  /// Quarantine a task after this many distinct workers died holding it.
  int PoisonWorkerDeaths = 3;
  /// Consecutive deaths after which a slot is retired for good.
  int MaxRespawnsPerSlot = 4;
  /// Respawn backoff: Base * 2^(consecutive deaths - 1), capped.
  double RespawnBackoffSeconds = 0.25;
  double RespawnBackoffCapSeconds = 4.0;
  /// With no live or respawnable managed worker and no external queue
  /// activity for this long, degrade to in-process evaluation; negative
  /// uses LeaseTimeoutSeconds.
  double DegradeGraceSeconds = -1;
  /// Cooperative stop (support::shutdownFlag()): waiting assessments fall
  /// back to local evaluation so a Ctrl-C never hangs on a dead fleet.
  const std::atomic<bool> *StopFlag = nullptr;
  /// fsync the queue per append (see TaskQueueOptions::FsyncEachRecord).
  bool FsyncEachRecord = false;
};

/// Counters surfaced into SearchWorkflowResult and the CLI summary.
struct ServiceStats {
  uint64_t TasksSubmitted = 0;      ///< assess() calls entering the service
  uint64_t WorkerResults = 0;       ///< outcomes accepted from workers
  uint64_t RecoveredResults = 0;    ///< served from the pre-crash queue fold
  uint64_t LocalFallbackEvals = 0;  ///< evaluated in-process (degraded/stop)
  uint64_t LeaseExpiries = 0;       ///< leases expired or death-reassigned
  uint64_t StaleResultsDiscarded = 0; ///< first-writer-wins losers
  uint64_t WorkerDeaths = 0;
  uint64_t WorkerRespawns = 0;
  uint64_t QuarantinedTasks = 0;
  int WorkersSpawned = 0; ///< total spawns including respawns
  bool Degraded = false;
};

class Coordinator {
public:
  /// Acquires the coordinator lock, opens (or recovers) the queue, folds
  /// existing results into the recovered store, and starts the supervision
  /// thread. Heap-allocated because the thread captures `this`.
  static Expected<std::unique_ptr<Coordinator>> start(CoordinatorOptions Opts);
  ~Coordinator();
  Coordinator(const Coordinator &) = delete;
  Coordinator &operator=(const Coordinator &) = delete;

  /// Evaluates one point through the service: recovered result if the
  /// pre-crash queue already holds it, otherwise announce + block until a
  /// worker's accepted result arrives. Falls back to evaluating on the
  /// calling thread via Fallback when the service is degraded, stopping,
  /// or the queue is unwritable. Thread-safe; called concurrently by the
  /// evaluation pool.
  search::EvalOutcome assess(const search::Point &P,
                             search::Objective &Fallback);

  /// Appends the shutdown record, stops the supervision thread, and winds
  /// down managed workers (SIGTERM, grace, SIGKILL). Idempotent; also run
  /// by the destructor.
  void shutdown();

  ServiceStats stats() const;
  const CoordinatorOptions &options() const { return Opts; }

private:
  explicit Coordinator(CoordinatorOptions Opts);
  Status init();
  void superviseLoop();
  void pollQueue();
  void sweepFulfill();
  void superviseLeases(double Now);
  void superviseSlots(double Now);
  void maybeDegrade(double Now);
  void attributeDeath(uint64_t TaskId, const std::string &WorkerId);
  bool stopRequested() const {
    return Opts.StopFlag && Opts.StopFlag->load(std::memory_order_relaxed);
  }

  struct PendingTask {
    bool Done = false;
    search::EvalOutcome Out;
  };

  struct Slot {
    support::ChildProcess Proc;
    bool Spawned = false;
    int Attempts = 0;          ///< spawns so far
    int ConsecutiveDeaths = 0; ///< reset by an accepted result
    double NextSpawnAt = 0;
    bool Retired = false;
    std::string WorkerId; ///< current incarnation ("w<slot>.<attempt>")
  };

  CoordinatorOptions Opts;
  int LockFd = -1;
  TaskQueue Queue;

  // Guarded by M: the waiting-assessment rendezvous and the stats.
  mutable std::mutex M;
  std::condition_variable Cv;
  std::map<uint64_t, PendingTask> Pending;
  uint64_t NextTaskId = 1;
  ServiceStats Stats;

  /// Point text -> accepted outcome folded from a pre-existing queue;
  /// immutable after init() (crash-proof work reassignment: finished but
  /// unjournaled evaluations are never redone).
  std::map<std::string, search::EvalOutcome> Recovered;

  std::atomic<bool> ShuttingDown{false};
  std::atomic<bool> DegradedFlag{false};

  // Supervision-thread state (owned by superviseLoop after init).
  QueueState State;
  std::map<uint64_t, double> LeaseActivity; ///< task -> arrival clock
  std::map<uint64_t, std::set<std::string>> DeathSets;
  std::set<std::string> DeadWorkerIds;
  std::set<std::pair<uint64_t, uint64_t>> ExpireInFlight;
  std::set<uint64_t> QuarantineInFlight;
  std::vector<Slot> Slots;
  double StartTime = 0;
  double LastQueueActivity = 0;
  std::thread Supervisor;
};

/// The search-side adapter: a concurrency-safe BatchObjective whose assess
/// dispatches to the coordinator, with the in-process objective as the
/// degradation fallback. Wrap it in GuardedObjective exactly like the local
/// objective — identical outcomes mean identical guard decisions, which is
/// the whole determinism argument.
class DistributedObjective : public search::BatchObjective {
public:
  DistributedObjective(Coordinator &C, search::Objective &Fallback)
      : C(C), Fallback(Fallback) {}
  search::EvalOutcome assess(const search::Point &P) override {
    return C.assess(P, Fallback);
  }

private:
  Coordinator &C;
  search::Objective &Fallback;
};

} // namespace service
} // namespace locus

#endif // LOCUS_SERVICE_COORDINATOR_H
