//===- TaskQueue.h - Durable lease-based evaluation task queue ---*- C++ -*-===//
///
/// \file
/// The durable heart of the tuning service: an append-only event log of
/// evaluation tasks, leases, heartbeats and results on support::RecordLog.
/// Coordinator and workers share one `queue.rlog` file; flock-serialized
/// CRC-framed appends give every record a total order, and *the folded log
/// is the state* — there is no other source of truth, which is exactly what
/// makes a SIGKILL at any byte recoverable: reopen, re-fold, continue.
///
/// Record grammar (text payloads; first line is space-separated fields,
/// the remainder — after the first '\n' — is a free-form body):
///
///   task <id> <digest16>        body = serialized point
///   lease <id> <epoch> <worker>
///   hb <id> <epoch> <worker>
///   expire <id> <epoch>
///   result <id> <epoch> <worker> <failure-kind> <metric>   body = detail
///   quarantine <id>             body = detail
///   shutdown
///
/// Lease state machine (per task):
///
///   open --lease--> claimed --result--> done
///     ^                |
///     |             expire (coordinator judged the lease dead)
///     +----------------+         ...and a quarantine record finishes a
///                                task no worker survives (done, failed).
///
/// Claims are optimistic, first-writer-wins: a worker appends a lease
/// carrying the task's current epoch, re-folds, and owns the task iff its
/// record is the *first* lease of that epoch. Every expiry bumps the epoch,
/// so a revived worker holding a stale lease can still append its result —
/// the fold discards it (epoch/worker mismatch) and counts it, never
/// double-committing a task. Since evaluation is deterministic, whichever
/// single result is accepted is THE result, which is what keeps the
/// coordinator's trajectory bit-identical to the single-process run.
///
//===----------------------------------------------------------------------===//
#ifndef LOCUS_SERVICE_TASKQUEUE_H
#define LOCUS_SERVICE_TASKQUEUE_H

#include "src/search/Search.h"
#include "src/support/Error.h"
#include "src/support/RecordLog.h"

#include <cstdint>
#include <functional>
#include <map>
#include <string>

namespace locus {
namespace service {

/// One decoded queue record.
struct QueueRecord {
  enum class Kind : uint8_t {
    Task,
    Lease,
    Heartbeat,
    Expire,
    Result,
    Quarantine,
    Shutdown,
  };
  Kind K = Kind::Task;
  uint64_t Id = 0;
  uint64_t Epoch = 0;
  uint64_t Digest = 0;     ///< Task: fnv1a of the serialized point
  std::string Worker;      ///< Lease/Heartbeat/Result
  std::string Body;        ///< Task: point text; Result/Quarantine: detail
  search::EvalOutcome Out; ///< Result: decoded outcome (Detail == Body)
};

/// Stable name of a record kind ("task", "lease", ...).
const char *queueRecordKindName(QueueRecord::Kind K);

/// Encodes a record as a RecordLog payload.
std::string encodeQueueRecord(const QueueRecord &R);

/// Decodes a payload; rejects malformed records with a reason (a corrupt
/// frame cannot pass the RecordLog CRC, so a parse failure here means a
/// foreign or newer-version writer).
Expected<QueueRecord> parseQueueRecord(const std::string &Payload);

/// Per-task view after folding the log.
struct TaskState {
  uint64_t Id = 0;
  std::string PointText;
  uint64_t Digest = 0;
  /// Number of expiries so far; leases and results must match it.
  uint64_t Epoch = 0;
  /// Winning (first) lease holder of the current epoch; empty = unclaimed.
  std::string LeaseWorker;
  bool Done = false;
  bool Quarantined = false;
  search::EvalOutcome Out; ///< valid once Done
  std::string DoneWorker;  ///< who produced the accepted result
  /// Results for this task that lost first-writer-wins (stale epoch, wrong
  /// worker, or task already done) and were discarded.
  uint64_t StaleResults = 0;

  bool claimable() const { return !Done && LeaseWorker.empty(); }
};

/// The deterministic fold over the record sequence. Coordinator and workers
/// run the same reducer, so every process that has read the same prefix of
/// the log agrees on ownership and outcomes.
struct QueueState {
  std::map<uint64_t, TaskState> Tasks;
  bool ShutdownSeen = false;
  uint64_t StaleResultsDiscarded = 0;
  /// Records folded so far (poll() resumes from here).
  uint64_t AppliedRecords = 0;

  void apply(const QueueRecord &R);
  const TaskState *find(uint64_t Id) const;
  /// Lowest-id claimable task, or nullptr.
  const TaskState *firstClaimable() const;
};

struct TaskQueueOptions {
  /// Queue directory; the log lives at <Dir>/queue.rlog.
  std::string Dir;
  /// Header payload pinning the queue to one space + search config (see
  /// makeQueueHeader). The opener that creates the file writes it.
  std::string Header;
  /// Refuse a queue written under a different header (coordinator). Workers
  /// open with false and diff the parsed header themselves for a located
  /// diagnostic.
  bool RequireHeaderMatch = true;
  /// fsync per append. The queue is coordination state — a *machine* crash
  /// may lose tail records, which only costs re-evaluation time — so the
  /// default trades durability for heartbeat latency. The journal, which
  /// owns history, keeps its own Full sync.
  bool FsyncEachRecord = false;
};

/// Queue header payload: "locus-queue v1\nspace=<hex16>\nconfig=<hex16>".
std::string makeQueueHeader(uint64_t SpaceFingerprint, uint64_t ConfigDigest);

/// Parses a queue header; Ok=false when it is not a v1 queue header.
struct QueueHeaderInfo {
  uint64_t SpaceFingerprint = 0;
  uint64_t ConfigDigest = 0;
};
Expected<QueueHeaderInfo> parseQueueHeader(const std::string &Header);

/// Shared handle on the queue log: append typed records, re-fold on poll.
/// Appends are thread-safe (RecordLog's internal mutex + flock); poll takes
/// a caller-owned QueueState so each thread folds its own view.
class TaskQueue {
public:
  static Expected<TaskQueue> open(const TaskQueueOptions &Opts);

  Status announceTask(uint64_t Id, const std::string &PointText,
                      uint64_t Digest);
  Status claim(uint64_t Id, uint64_t Epoch, const std::string &Worker);
  Status heartbeat(uint64_t Id, uint64_t Epoch, const std::string &Worker);
  Status postResult(uint64_t Id, uint64_t Epoch, const std::string &Worker,
                    const search::EvalOutcome &Out);
  Status expire(uint64_t Id, uint64_t Epoch);
  Status quarantine(uint64_t Id, const std::string &Detail);
  Status announceShutdown();

  /// Rewrites the log without its shutdown record(s): a completed run's
  /// queue dir can be served again, with every prior task/result surviving
  /// as the warm recovered-result store. Callers must reset and re-fold
  /// their QueueState afterwards.
  Status compactDropShutdown();

  /// Re-scans the log and folds every record beyond State.AppliedRecords
  /// into State, invoking OnRecord (when given) for each *after* it was
  /// applied. Returns the number of new records.
  Expected<uint64_t>
  poll(QueueState &State,
       const std::function<void(const QueueRecord &)> &OnRecord = nullptr);

  const std::string &path() const { return Path; }
  /// The header actually found in (or written to) the file.
  const std::string &header() const { return Header; }

  static std::string queueFilePath(const std::string &Dir);

private:
  std::string Path;
  std::string Header;
  support::RecordLog Log;
};

} // namespace service
} // namespace locus

#endif // LOCUS_SERVICE_TASKQUEUE_H
