//===- Orchestrator.h - The Locus system driver ------------------*- C++ -*-===//
///
/// \file
/// Ties the whole system together, implementing the two workflows of Fig. 2:
///
///  direct:  Locus program (no search constructs) -> transformed variant
///  search:  extract space -> search module proposes points -> each point is
///           materialized as a variant, evaluated on the machine model, the
///           metric steers the search -> best variant (or the baseline, the
///           system being non-prescriptive) plus a reusable pinned point
///           (the exported "direct program" of Section II).
///
/// The driver also performs the region-hash coherence check of Section II.
///
//===----------------------------------------------------------------------===//
#ifndef LOCUS_DRIVER_ORCHESTRATOR_H
#define LOCUS_DRIVER_ORCHESTRATOR_H

#include "src/cir/Ast.h"
#include "src/eval/Evaluator.h"
#include "src/eval/NativeEvaluator.h"
#include "src/locus/Interpreter.h"
#include "src/locus/LocusAst.h"
#include "src/locus/Optimizer.h"
#include "src/search/EvalCache.h"
#include "src/search/FaultTolerance.h"
#include "src/search/Journal.h"
#include "src/search/Search.h"
#include "src/service/Coordinator.h"
#include "src/service/Worker.h"

#include <cstdlib>
#include <functional>
#include <map>
#include <memory>
#include <string>

namespace locus {
namespace driver {

struct OrchestratorOptions {
  /// Search module to use ("bandit"/"opentuner", "tpe"/"hyperopt",
  /// "random", "hillclimb", "de", "exhaustive").
  std::string SearcherName = "bandit";
  /// Variant-assessment budget (the paper caps DGEMM at 1,000 and each
  /// extracted loop nest at 500).
  int MaxEvaluations = 100;
  uint64_t Seed = 42;
  /// Concurrent evaluation workers (the CLI's --jobs). Population searchers
  /// (de, exhaustive, random) evaluate whole proposal batches across this
  /// many std::jthread workers, each materializing its variant with its own
  /// interpreter/evaluator; results commit in proposal order, so the
  /// trajectory and best point are identical to the Jobs=1 run. When > 1,
  /// InitHook must tolerate concurrent calls (one per in-flight variant).
  int Jobs = 1;
  /// Content-addressed evaluation cache: outcomes are keyed by the hash of
  /// the *transformed* variant, so distinct points that materialize to the
  /// same code (clamped tile sizes, no-op unroll factors) are evaluated
  /// once. Never changes results — the simulator metric of a variant is
  /// deterministic — only skips repeat simulation cost. Counters are
  /// surfaced in SearchResult::CacheHits / CacheMisses / CacheDedupSaves.
  bool UseEvalCache = true;
  /// Directory of the durable evaluation-cache store shared across runs and
  /// processes (the CLI's --cache-dir); empty keeps the cache in-memory
  /// only. Outcomes persist in <dir>/evalcache.rlog (crash-safe, flock
  /// shared); any store problem degrades to in-memory with a warning,
  /// never failing the search. Requires UseEvalCache.
  std::string CacheDir;
  /// Consume the shared store without growing it (--cache-readonly).
  bool CacheReadOnly = false;
  /// Machine model and evaluation options.
  eval::EvalOptions Eval;
  /// Refuse transformations when dependences are unavailable.
  bool RequireDeps = false;
  /// Attach `omp parallel for` even to loops the parallel-safety analyzer
  /// proves racy, and let the simulator model their parallel speedup
  /// anyway (the --trust-parallel escape hatch; checksum validation still
  /// guards such variants). Propagated into Eval.TrustParallel.
  bool TrustParallel = false;
  /// Let BuiltIn.Altdesc resolve unregistered snippet names as filesystem
  /// paths. Off by default so search runs never read surprise files; the
  /// CLI enables it for the paper's external snippet-file workflow.
  bool AllowSnippetFiles = false;
  /// Apply the Section IV-C Locus-program optimizations (query
  /// pre-execution, constant folding, dead-branch elimination) before
  /// interpretation. The direct program is re-interpreted per assessed
  /// variant, so this pays off across the whole search.
  bool OptimizeProgram = true;
  /// Named snippets for BuiltIn.Altdesc.
  std::map<std::string, std::string> Snippets;
  /// Hook to initialize evaluator inputs (index arrays, scalars) before
  /// each run; may be empty.
  std::function<void(eval::ProgramEvaluator &)> InitHook;
  /// Per-variant deadline: abort a variant (BudgetExceeded) once it runs
  /// more than this factor times the baseline's loop iterations, instead of
  /// letting a pathological variant burn the global iteration budget. 0
  /// disables; ignored when the baseline is not executable. Under
  /// NativeMetric the same factor applies to the baseline's native
  /// wall-clock time instead, bounding each sandboxed run.
  double VariantDeadlineFactor = 8.0;
  /// Measure every variant by compiling and running it natively in the
  /// subprocess sandbox (the paper's buildcmd/runcmd loop) instead of on
  /// the simulator. Fails up front with a clear diagnostic when the host
  /// has no usable compiler; callers wanting a fallback rerun with this
  /// off. The native objective is concurrency-safe (hermetic per-run
  /// workdirs), so --jobs N drives concurrent sandboxed measurements.
  bool NativeMetric = false;
  /// Compiler, flags and sandbox limits for native measurement (both
  /// NativeMetric and the CLI's post-search --native timing).
  /// Native.RunTimeoutSeconds acts as the ceiling on the derived
  /// per-variant deadline (the CLI's --native-timeout).
  eval::NativeOptions Native;
  /// Relative tolerance for checksum validation of a variant against the
  /// baseline reference (simulator or native); the CLI's --checksum-rtol.
  double ChecksumRtol = 1e-6;
  /// Guard policy: bounded retries for unstable metrics and quarantining of
  /// repeat-offender points.
  search::GuardOptions Guard;
  /// Path of the crash-safe search journal (CRC-framed records with a
  /// space-fingerprint header; see search::SearchJournal); empty disables
  /// journaling. Every fresh evaluation is appended and pushed toward
  /// stable storage per JournalSyncMode.
  std::string JournalPath;
  /// Durability of each journal append (see search::JournalSync): Full
  /// fsyncs per record (machine-crash safe, the default), Flush reaches the
  /// kernel only, None leaves records buffered.
  search::JournalSync JournalSyncMode = search::JournalSync::Full;
  /// When the journal file already exists, reload it and resume the
  /// interrupted search: journaled evaluations replay into the searcher's
  /// dedup/history state and count toward MaxEvaluations, so the run
  /// finishes the remaining budget exactly as the uninterrupted run would.
  bool ResumeFromJournal = false;
  /// Classify points against the static legality oracle before materializing
  /// a variant: provably-invalid points (dependent-range violations,
  /// replayed-illegal transformations) are counted in
  /// SearchResult::PrunedStatic and never reach the evaluator. Never changes
  /// which best point a search finds, only how much it costs.
  bool StaticPrune = true;
  /// Run the CIR verifier after every applied transformation during concrete
  /// interpretation; a variant that fails verification is rejected as an
  /// illegal transform. Defaults on when LOCUS_VERIFY_EACH is set in the
  /// environment (the sanitizer test presets set it).
  bool VerifyEach = std::getenv("LOCUS_VERIFY_EACH") != nullptr;
  /// Tuning-service coordinator configuration (the CLI's --serve). Serve
  /// mode is on when Serve.QueueDir is non-empty: each proposal batch is
  /// dispatched to worker processes through the durable queue instead of
  /// in-process pool threads. runSearch fills Serve.SpaceFingerprint,
  /// Serve.ConfigDigest and Serve.StopFlag itself.
  service::CoordinatorOptions Serve;
  /// Cooperative stop flag (support::shutdownFlag()), threaded into
  /// SearchOptions::StopFlag and the coordinator for graceful
  /// SIGTERM/SIGINT shutdown with partial results.
  const std::atomic<bool> *StopFlag = nullptr;
};

/// Result of the direct workflow.
struct DirectResult {
  std::unique_ptr<cir::Program> Variant;
  eval::RunResult Run;
  lang::ExecOutcome Exec;
};

/// Result of the search workflow.
struct SearchWorkflowResult {
  search::Space Space;
  search::SearchResult Search;
  double BaselineCycles = 0;
  double BestCycles = 0;
  /// BaselineCycles / BestCycles for the winning variant (>= 1 by the
  /// non-prescriptive rule).
  double Speedup = 1.0;
  /// True when no variant beat the baseline and the baseline was kept.
  bool BaselineChosen = false;
  std::unique_ptr<cir::Program> BestProgram;
  eval::RunResult BestRun;
  /// Guard activity during the search (retries, quarantines).
  search::GuardStats Guard;
  /// Tuning-service activity (valid when Served).
  service::ServiceStats Service;
  bool Served = false;
};

class Orchestrator {
public:
  Orchestrator(const lang::LocusProgram &LProg, const cir::Program &Baseline,
               OrchestratorOptions Opts);

  /// Runs the direct workflow (Fig. 2 left).
  Expected<DirectResult> runDirect();

  /// Runs the search workflow (Fig. 2 right).
  Expected<SearchWorkflowResult> runSearch();

  /// Applies one pinned point (re-running an exported direct recipe).
  Expected<DirectResult> runPoint(const search::Point &Point);

  /// Runs the worker side of the tuning service: builds the exact
  /// deterministic objective the in-process search would use (same space,
  /// baseline reference, deadline, and evaluation cache) and serves queue
  /// tasks with it until the shutdown record. WOpts.SpaceFingerprint is
  /// filled from the extracted space when zero.
  Expected<service::WorkerStats> runWorker(service::WorkerOptions WOpts);

  /// Evaluates the unmodified baseline.
  Expected<eval::RunResult> evaluateBaseline();

  /// Region-name -> content-hash of the baseline (Section II coherence
  /// keys; compare against stored hashes to detect source drift).
  std::map<std::string, uint64_t> regionHashes() const;

  /// Statistics from the Section IV-C program optimizer (populated after
  /// the first workflow call when OptimizeProgram is on).
  const lang::OptimizeStats &optimizeStats() const { return OptStats; }

private:
  Expected<eval::RunResult> evaluate(const cir::Program &P);
  /// The (possibly optimized) program used for interpretation.
  const lang::LocusProgram &program();
  /// Everything runSearch and runWorker share: extracted space, baseline
  /// reference, per-variant deadline, evaluation cache, and the
  /// deterministic variant objective built on them.
  struct PreparedSearch;
  Expected<std::unique_ptr<PreparedSearch>> prepareSearch();

  const lang::LocusProgram &LProg;
  const cir::Program &Baseline;
  OrchestratorOptions Opts;
  lang::ModuleRegistry Registry;
  std::unique_ptr<lang::LocusProgram> OptimizedProg;
  lang::OptimizeStats OptStats;
};

/// Serializes a point as "id=value" lines (the shippable pinned recipe).
/// Forwards to search::serializePoint (src/search/PointCodec.h).
std::string serializePoint(const search::Point &P);

/// Parses a serialized point back; validated, never throws.
Expected<search::Point> deserializePoint(const std::string &Text,
                                         const search::Space &Space);

} // namespace driver
} // namespace locus

#endif // LOCUS_DRIVER_ORCHESTRATOR_H
