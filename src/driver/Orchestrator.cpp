//===- Orchestrator.cpp - The Locus system driver ------------------------------===//

#include "src/driver/Orchestrator.h"

#include "src/locus/Optimizer.h"

#include "src/analysis/LegalityOracle.h"
#include "src/analysis/TransformPlan.h"
#include "src/cir/AstUtils.h"
#include "src/cir/Printer.h"
#include "src/search/Journal.h"
#include "src/search/PersistentEvalCache.h"
#include "src/search/PointCodec.h"
#include "src/support/Hashing.h"
#include "src/support/StringUtils.h"

#include <cmath>
#include <cstdio>
#include <limits>
#include <optional>

namespace locus {
namespace driver {

Orchestrator::Orchestrator(const lang::LocusProgram &LProg,
                           const cir::Program &Baseline,
                           OrchestratorOptions Opts)
    : LProg(LProg), Baseline(Baseline), Opts(std::move(Opts)),
      Registry(lang::ModuleRegistry::standard()) {
  // A trusted-parallel run must also trust the evaluator's schedule model:
  // racy-but-forced variants are modeled (and checksum-verified) instead of
  // silently serialized.
  if (this->Opts.TrustParallel)
    this->Opts.Eval.TrustParallel = true;
}

Expected<eval::RunResult> Orchestrator::evaluate(const cir::Program &P) {
  eval::ProgramEvaluator Eval(P, Opts.Eval);
  Status S = Eval.prepare();
  if (!S.ok())
    return Expected<eval::RunResult>::error(S.message());
  if (Opts.InitHook)
    Opts.InitHook(Eval);
  eval::RunResult R = Eval.run();
  if (!R.Ok)
    return Expected<eval::RunResult>::error(R.Error);
  return R;
}

Expected<eval::RunResult> Orchestrator::evaluateBaseline() {
  return evaluate(Baseline);
}

const lang::LocusProgram &Orchestrator::program() {
  if (!Opts.OptimizeProgram)
    return LProg;
  if (!OptimizedProg) {
    std::unique_ptr<cir::Program> Clone = Baseline.clone();
    transform::TransformContext TCtx;
    TCtx.RequireDeps = Opts.RequireDeps;
    TCtx.Prog = Clone.get();
    TCtx.Snippets = Opts.Snippets;
    TCtx.TrustParallel = Opts.TrustParallel;
    TCtx.AllowSnippetFiles = Opts.AllowSnippetFiles;
    OptimizedProg =
        lang::optimizeLocusProgram(LProg, *Clone, Registry, TCtx, &OptStats);
  }
  return *OptimizedProg;
}

std::map<std::string, uint64_t> Orchestrator::regionHashes() const {
  std::map<std::string, uint64_t> Hashes;
  for (const std::string &Name : Baseline.regionNames())
    for (const cir::Block *Region : Baseline.findRegions(Name))
      Hashes[Name] = cir::hashRegion(*Region);
  return Hashes;
}

Expected<DirectResult> Orchestrator::runDirect() {
  return runPoint(search::Point{});
}

Expected<DirectResult> Orchestrator::runPoint(const search::Point &Point) {
  DirectResult Result;
  Result.Variant = Baseline.clone();
  transform::TransformContext TCtx;
  TCtx.RequireDeps = Opts.RequireDeps;
  TCtx.Prog = Result.Variant.get();
  TCtx.Snippets = Opts.Snippets;
  TCtx.VerifyEach = Opts.VerifyEach;
  TCtx.TrustParallel = Opts.TrustParallel;
  TCtx.AllowSnippetFiles = Opts.AllowSnippetFiles;

  lang::LocusInterpreter Interp(program(), Registry);
  Result.Exec = Interp.applyPoint(*Result.Variant, Point, TCtx);
  if (!Result.Exec.Ok)
    return Expected<DirectResult>::error(Result.Exec.Error);
  if (Result.Exec.InvalidPoint)
    return Expected<DirectResult>::error("invalid variant: " +
                                         Result.Exec.InvalidReason);
  Expected<eval::RunResult> Run = evaluate(*Result.Variant);
  if (!Run.ok())
    return Expected<DirectResult>::error(Run.message());
  Result.Run = *Run;
  return Result;
}

namespace {

/// The Objective plugged into the search module: materialize the variant for
/// a point, measure it on the machine model, and classify every failure
/// mode so the searchers can count them per kind.
///
/// A BatchObjective: every call builds its own variant clone, interpreter
/// and evaluator, and touches no mutable member except the (thread-safe)
/// EvalCache, so the evaluation pool may assess distinct points
/// concurrently.
class VariantObjective : public search::BatchObjective {
public:
  VariantObjective(const lang::LocusProgram &LProg,
                   const lang::ModuleRegistry &Registry,
                   const cir::Program &Baseline,
                   const OrchestratorOptions &Opts, double BaselineChecksum,
                   uint64_t DeadlineIterations, double NativeTimeoutSeconds,
                   search::VariantOutcomeCache *Cache)
      : LProg(LProg), Registry(Registry), Baseline(Baseline), Opts(Opts),
        BaselineChecksum(BaselineChecksum),
        DeadlineIterations(DeadlineIterations),
        NativeTimeoutSeconds(NativeTimeoutSeconds), Cache(Cache) {}

  search::EvalOutcome assess(const search::Point &P) override {
    using search::EvalOutcome;
    using search::FailureKind;
    std::unique_ptr<cir::Program> Variant = Baseline.clone();
    transform::TransformContext TCtx;
    TCtx.RequireDeps = Opts.RequireDeps;
    TCtx.Prog = Variant.get();
    TCtx.Snippets = Opts.Snippets;
    TCtx.VerifyEach = Opts.VerifyEach;
    TCtx.TrustParallel = Opts.TrustParallel;
    TCtx.AllowSnippetFiles = Opts.AllowSnippetFiles;
    lang::LocusInterpreter Interp(LProg, Registry);
    lang::ExecOutcome Exec = Interp.applyPoint(*Variant, P, TCtx);
    if (!Exec.Ok)
      return EvalOutcome::fail(FailureKind::TransformIllegal, Exec.Error);
    if (Exec.InvalidPoint)
      return EvalOutcome::fail(Exec.IllegalTransform
                                   ? FailureKind::TransformIllegal
                                   : FailureKind::InvalidPoint,
                               Exec.InvalidReason);

    // Content-addressed cache: distinct points frequently materialize to
    // the same transformed program (clamped tile sizes, no-op unrolls);
    // the simulator metric of a variant is deterministic, so one
    // evaluation serves every structurally-identical materialization.
    search::CacheKey VariantKey;
    if (Cache) {
      VariantKey = search::makeCacheKey(cir::printProgram(*Variant));
      if (std::optional<EvalOutcome> Hit = Cache->lookup(VariantKey, P.key()))
        return *Hit;
    }

    EvalOutcome Out = evaluateVariant(*Variant);
    // MetricUnstable is never cached: the guard's bounded retries must
    // re-measure, not be served the same flaky reading back.
    if (Cache && Out.Failure != FailureKind::MetricUnstable)
      Cache->insert(VariantKey, P.key(), Out);
    return Out;
  }

private:
  search::EvalOutcome evaluateVariant(const cir::Program &Variant) const {
    using search::EvalOutcome;
    using search::FailureKind;
    if (Opts.NativeMetric)
      return evaluateVariantNative(Variant);
    // Deadline guard: a variant that runs vastly longer than the baseline
    // cannot win the non-prescriptive selection anyway; cut it off instead
    // of running to the evaluator's global runaway budget.
    eval::EvalOptions EOpts = Opts.Eval;
    if (DeadlineIterations > 0)
      EOpts.MaxIterations = std::min(EOpts.MaxIterations, DeadlineIterations);

    eval::ProgramEvaluator Eval(Variant, EOpts);
    Status Prep = Eval.prepare();
    if (!Prep.ok())
      return EvalOutcome::fail(FailureKind::PrepareFailed, Prep.message());
    if (Opts.InitHook)
      Opts.InitHook(Eval);
    eval::RunResult Run = Eval.run();
    if (!Run.Ok) {
      bool DeadlineHit =
          Run.Error.find("iteration budget exceeded") != std::string::npos;
      return EvalOutcome::fail(DeadlineHit ? FailureKind::BudgetExceeded
                                           : FailureKind::RuntimeTrap,
                               Run.Error);
    }
    if (!std::isfinite(Run.Cycles))
      return EvalOutcome::fail(FailureKind::MetricUnstable,
                               "non-finite cycle metric");
    // A variant that computes different results is an illegal rewrite the
    // legality machinery missed (or a forced transformation); reject it so
    // the search cannot exploit broken code. Skipped when the baseline is a
    // non-executable skeleton (NaN reference).
    if (!std::isnan(BaselineChecksum)) {
      double Tol = Opts.ChecksumRtol * std::max(1.0, std::abs(BaselineChecksum));
      if (std::isnan(Run.Checksum) ||
          std::abs(Run.Checksum - BaselineChecksum) > Tol)
        return EvalOutcome::fail(FailureKind::ChecksumMismatch,
                                 "checksum " + std::to_string(Run.Checksum) +
                                     " vs baseline " +
                                     std::to_string(BaselineChecksum));
    }
    return EvalOutcome::success(Run.Cycles);
  }

  /// The paper's buildcmd/runcmd loop, sandboxed: unparse, compile and run
  /// the variant in its own mkdtemp workdir with deadline + rlimit caps.
  /// Thread-safe by construction (no shared mutable state), so the pool may
  /// run several sandboxed measurements concurrently.
  search::EvalOutcome evaluateVariantNative(const cir::Program &Variant) const {
    using search::EvalOutcome;
    using search::FailureKind;
    eval::NativeOptions NOpts = Opts.Native;
    if (NativeTimeoutSeconds > 0)
      NOpts.RunTimeoutSeconds = NativeTimeoutSeconds;
    eval::NativeResult NR = eval::evaluateNative(Variant, NOpts);
    if (!NR.Ok)
      return eval::toEvalOutcome(NR);
    if (!std::isnan(BaselineChecksum)) {
      double Tol = Opts.ChecksumRtol * std::max(1.0, std::abs(BaselineChecksum));
      if (std::isnan(NR.Checksum) ||
          std::abs(NR.Checksum - BaselineChecksum) > Tol)
        return EvalOutcome::fail(FailureKind::ChecksumMismatch,
                                 "native checksum " +
                                     std::to_string(NR.Checksum) +
                                     " vs baseline " +
                                     std::to_string(BaselineChecksum));
    }
    return EvalOutcome::success(NR.Seconds);
  }

  const lang::LocusProgram &LProg;
  const lang::ModuleRegistry &Registry;
  const cir::Program &Baseline;
  const OrchestratorOptions &Opts;
  double BaselineChecksum;
  uint64_t DeadlineIterations;
  /// Per-run wall-clock deadline under NativeMetric (derived from the
  /// baseline's native time); 0 keeps the configured default.
  double NativeTimeoutSeconds;
  search::VariantOutcomeCache *Cache;
};

/// Converts a fully resolved PlanArg back into a module-call Value for
/// oracle replay. Params never reach the invoker (the oracle resolves them
/// against the point first).
lang::Value planArgToValue(const analysis::PlanArg &A) {
  using analysis::PlanArg;
  switch (A.K) {
  case PlanArg::Kind::Int:
    return lang::Value(A.Int);
  case PlanArg::Kind::Float:
    return lang::Value(A.Float);
  case PlanArg::Kind::Str:
    return lang::Value(A.Str);
  case PlanArg::Kind::List: {
    std::vector<lang::Value> Items;
    for (const PlanArg &I : A.List)
      Items.push_back(planArgToValue(I));
    return lang::Value::list(std::move(Items));
  }
  default:
    return lang::Value::none();
  }
}

bool fileExists(const std::string &Path) {
  if (std::FILE *F = std::fopen(Path.c_str(), "rb")) {
    std::fclose(F);
    return true;
  }
  return false;
}

} // namespace

struct Orchestrator::PreparedSearch {
  search::Space Space;
  analysis::TransformPlan Plan;
  std::optional<eval::RunResult> BaseRun;
  bool BaselineRunnable = false;
  double BaselineCycles = 0;
  double BaselineChecksum = std::numeric_limits<double>::quiet_NaN();
  uint64_t DeadlineIterations = 0;
  double NativeTimeoutSeconds = 0;
  search::EvalCache MemCache;
  std::unique_ptr<search::PersistentEvalCache> DiskCache;
  search::VariantOutcomeCache *Cache = nullptr;
  std::unique_ptr<VariantObjective> Objective;
};

Expected<std::unique_ptr<Orchestrator::PreparedSearch>>
Orchestrator::prepareSearch() {
  using Ret = Expected<std::unique_ptr<PreparedSearch>>;
  auto Prep = std::make_unique<PreparedSearch>();

  // Convert the optimization space (Section IV-B).
  std::unique_ptr<cir::Program> ExtractTarget = Baseline.clone();
  transform::TransformContext TCtx;
  TCtx.RequireDeps = Opts.RequireDeps;
  TCtx.Prog = ExtractTarget.get();
  TCtx.Snippets = Opts.Snippets;
  TCtx.TrustParallel = Opts.TrustParallel;
  TCtx.AllowSnippetFiles = Opts.AllowSnippetFiles;
  lang::LocusInterpreter Interp(program(), Registry);
  lang::ExecOutcome Extract =
      Interp.extractSpace(*ExtractTarget, Prep->Space, TCtx,
                          Opts.StaticPrune ? &Prep->Plan : nullptr);
  if (!Extract.Ok)
    return Ret::error("space extraction failed: " + Extract.Error);

  // Baseline metric (also the non-prescriptive fallback). Some baselines
  // are skeletons that only become executable once the optimization program
  // fills them in (the Kripke kernels with their address_calc placeholder);
  // those get an infinite baseline metric and no checksum reference.
  Expected<eval::RunResult> BaseRun = evaluateBaseline();
  Prep->BaselineRunnable = BaseRun.ok();
  if (BaseRun.ok())
    Prep->BaseRun = *BaseRun;
  if (Opts.NativeMetric) {
    // Native measurement: the baseline is compiled and run in the sandbox;
    // its wall-clock time is the reference metric, its checksum the
    // correctness reference, and VariantDeadlineFactor times its duration
    // the per-variant deadline (capped by the configured --native-timeout).
    if (!eval::nativeCompilerAvailable(Opts.Native.Compiler))
      return Ret::error(
          "native metric requested but compiler '" + Opts.Native.Compiler +
          "' is not available on this host; rerun without --native-metric "
          "to use the simulator");
    eval::NativeResult NBase = eval::evaluateNative(Baseline, Opts.Native);
    if (!NBase.Ok)
      return Ret::error("native baseline evaluation failed (" +
                        std::string(search::failureKindName(NBase.Failure)) +
                        "): " + NBase.Error);
    Prep->BaselineRunnable = true;
    Prep->BaselineCycles = NBase.Seconds;
    Prep->BaselineChecksum = NBase.Checksum;
    Prep->NativeTimeoutSeconds = Opts.Native.RunTimeoutSeconds;
    if (Opts.VariantDeadlineFactor > 0) {
      double Derived =
          std::max(0.1, Opts.VariantDeadlineFactor * NBase.Seconds);
      Prep->NativeTimeoutSeconds =
          Prep->NativeTimeoutSeconds > 0
              ? std::min(Prep->NativeTimeoutSeconds, Derived)
              : Derived;
    }
  } else if (Prep->BaselineRunnable) {
    Prep->BaselineCycles = BaseRun->Cycles;
    Prep->BaselineChecksum = BaseRun->Checksum;
  } else {
    Prep->BaselineCycles = std::numeric_limits<double>::infinity();
  }

  // Per-variant deadline derived from the baseline run (guard 1).
  if (!Opts.NativeMetric && Prep->BaselineRunnable && BaseRun.ok() &&
      Opts.VariantDeadlineFactor > 0 && BaseRun->LoopIterations > 0) {
    double Budget = Opts.VariantDeadlineFactor *
                    static_cast<double>(BaseRun->LoopIterations);
    Prep->DeadlineIterations = Budget >= static_cast<double>(UINT64_MAX)
                                   ? UINT64_MAX
                                   : static_cast<uint64_t>(Budget);
  }

  // Cache selection: plain in-memory, or the durable store when a cache
  // directory is configured. The persistent cache never fails construction
  // (any store problem degrades it to in-memory with a warning), so the
  // search proceeds either way. Workers share the same store through
  // --cache-dir, which is how a respawned worker starts warm.
  if (Opts.UseEvalCache) {
    if (!Opts.CacheDir.empty()) {
      search::PersistentCacheOptions PCOpts;
      PCOpts.Dir = Opts.CacheDir;
      PCOpts.ReadOnly = Opts.CacheReadOnly;
      Prep->DiskCache = std::make_unique<search::PersistentEvalCache>(PCOpts);
      Prep->Cache = Prep->DiskCache.get();
    } else {
      Prep->Cache = &Prep->MemCache;
    }
  }
  Prep->Objective = std::make_unique<VariantObjective>(
      program(), Registry, Baseline, Opts, Prep->BaselineChecksum,
      Prep->DeadlineIterations, Prep->NativeTimeoutSeconds, Prep->Cache);
  return Prep;
}

Expected<service::WorkerStats>
Orchestrator::runWorker(service::WorkerOptions WOpts) {
  auto Prep = prepareSearch();
  if (!Prep.ok())
    return Expected<service::WorkerStats>::error(Prep.message());
  if (WOpts.SpaceFingerprint == 0)
    WOpts.SpaceFingerprint = (*Prep)->Space.fingerprint();
  return service::runWorker((*Prep)->Space, *(*Prep)->Objective, WOpts);
}

Expected<SearchWorkflowResult> Orchestrator::runSearch() {
  SearchWorkflowResult Result;

  auto PrepOr = prepareSearch();
  if (!PrepOr.ok())
    return Expected<SearchWorkflowResult>::error(PrepOr.message());
  PreparedSearch &Prep = **PrepOr;
  Result.Space = Prep.Space;
  Result.BaselineCycles = Prep.BaselineCycles;
  bool BaselineRunnable = Prep.BaselineRunnable;
  std::optional<eval::RunResult> &BaseRun = Prep.BaseRun;

  // Drive the search module.
  std::unique_ptr<search::Searcher> Searcher =
      search::makeSearcher(Opts.SearcherName);
  if (!Searcher)
    return Expected<SearchWorkflowResult>::error("unknown search module: " +
                                                 Opts.SearcherName);

  // Serve mode: stand up the coordinator and dispatch assessments through
  // the durable queue. The local objective stays alive as the degradation
  // fallback, so the search finishes even if every worker dies.
  std::unique_ptr<service::Coordinator> Coord;
  std::unique_ptr<service::DistributedObjective> Dist;
  bool ServeMode = !Opts.Serve.QueueDir.empty();
  if (ServeMode) {
    service::CoordinatorOptions COpts = Opts.Serve;
    COpts.SpaceFingerprint = Result.Space.fingerprint();
    COpts.ConfigDigest =
        search::journalConfigDigest(Opts.SearcherName, Opts.Seed);
    COpts.StopFlag = Opts.StopFlag;
    auto C = service::Coordinator::start(std::move(COpts));
    if (!C.ok())
      return Expected<SearchWorkflowResult>::error(C.message());
    Coord = std::move(*C);
    Dist = std::make_unique<service::DistributedObjective>(*Coord,
                                                           *Prep.Objective);
    Result.Served = true;
  }
  search::Objective &Inner = Dist ? static_cast<search::Objective &>(*Dist)
                                  : *Prep.Objective;
  // Guards 2+3: bounded retry of unstable metrics, quarantine of repeat
  // offenders. Wrapping the *distributed* objective keeps guard decisions
  // on the coordinator, fed by the same outcomes the local run would see.
  search::GuardedObjective Guarded(Inner, Opts.Guard);
  search::SearchOptions SOpts;
  SOpts.MaxEvaluations = Opts.MaxEvaluations;
  SOpts.Seed = Opts.Seed;
  // Serve mode needs enough pool threads to keep a whole speculative batch
  // in flight across the workers; batch widths (and thus the trajectory)
  // are fixed per searcher, independent of Jobs.
  SOpts.Jobs = ServeMode
                   ? std::max(1, std::max(Opts.Jobs, Opts.Serve.Workers))
                   : Opts.Jobs;
  SOpts.StopFlag = Opts.StopFlag;

  // Static legality oracle: classify points against the recorded plan
  // before a variant is materialized. Replay goes through the same module
  // registry the interpreter uses, so a replayed Illegal is exactly the
  // failure the concrete run would have produced.
  std::optional<analysis::LegalityOracle> Oracle;
  if (Opts.StaticPrune) {
    analysis::ModuleInvoker Invoker =
        [this](const std::string &Module, const std::string &Member,
               const std::map<std::string, analysis::PlanArg> &Args,
               cir::Block &Region,
               cir::Program &Prog) -> transform::TransformResult {
      const lang::ModuleMember *M = Registry.find(Module, Member);
      if (!M)
        return transform::TransformResult::error("unknown module member " +
                                                 Module + "." + Member);
      transform::TransformContext ReplayCtx;
      ReplayCtx.RequireDeps = Opts.RequireDeps;
      ReplayCtx.Prog = &Prog;
      ReplayCtx.Snippets = Opts.Snippets;
      // Must match the concrete-interpretation context exactly: a replayed
      // classification that diverges from the concrete run would change the
      // search trajectory.
      ReplayCtx.TrustParallel = Opts.TrustParallel;
      ReplayCtx.AllowSnippetFiles = Opts.AllowSnippetFiles;
      lang::ModuleArgs MArgs;
      for (const auto &[Key, Arg] : Args)
        MArgs[Key] = planArgToValue(Arg);
      lang::ModuleCallContext Ctx{&Region, &Prog, &ReplayCtx};
      return M->Fn(MArgs, Ctx).Result;
    };
    Oracle.emplace(Baseline, Result.Space, std::move(Prep.Plan),
                   std::move(Invoker));
    SOpts.StaticFilter = [&Oracle](const search::Point &P) {
      return Oracle->classify(P);
    };
  }

  // Crash-safe journal: reload an interrupted run, then append every fresh
  // evaluation.
  search::SearchJournal Journal;
  if (!Opts.JournalPath.empty()) {
    // The header pins the journal to this space + searcher config; a
    // mismatched journal is refused with a located diagnostic instead of
    // replaying another run's points into the wrong space.
    search::JournalHeader Header;
    Header.SpaceFingerprint = Result.Space.fingerprint();
    Header.ConfigDigest =
        search::journalConfigDigest(Opts.SearcherName, Opts.Seed);
    bool LoadedLegacy = false;
    if (Opts.ResumeFromJournal && fileExists(Opts.JournalPath)) {
      auto Loaded = search::SearchJournal::load(Opts.JournalPath, Result.Space,
                                                &Header);
      if (!Loaded.ok())
        return Expected<SearchWorkflowResult>::error(
            "cannot resume from journal " + Opts.JournalPath + ": " +
            Loaded.message());
      if (!Loaded->Warning.empty())
        std::fprintf(stderr, "warning: %s\n", Loaded->Warning.c_str());
      SOpts.Replay = std::move(Loaded->Records);
      LoadedLegacy = Loaded->Legacy;
    }
    auto J = search::SearchJournal::open(Opts.JournalPath, Opts.JournalSyncMode,
                                         Header,
                                         LoadedLegacy ? &SOpts.Replay
                                                      : nullptr);
    if (!J.ok())
      return Expected<SearchWorkflowResult>::error(J.message());
    Journal = std::move(*J);
    SOpts.OnFreshEval = [&Journal](const search::EvalRecord &Rec) {
      (void)Journal.append(Rec);
    };
  }

  Result.Search = Searcher->search(Result.Space, Guarded, SOpts);
  Result.Guard = Guarded.stats();
  if (Oracle)
    Result.Search.PrunedStaticByRange = Oracle->rangePrunedCount();
  if (Coord) {
    // Append the shutdown record and wind the fleet down before reading
    // final stats; the queue dir stays behind as the recoverable record.
    Coord->shutdown();
    Result.Service = Coord->stats();
  }
  if (Prep.Cache) {
    search::EvalCacheStats CStats = Prep.Cache->stats();
    Result.Search.CacheHits = CStats.Hits;
    Result.Search.CacheMisses = CStats.Misses;
    Result.Search.CacheDedupSaves = CStats.DedupSaves;
  }
  if (Prep.DiskCache) {
    search::PersistentCacheStats PStats = Prep.DiskCache->persistentStats();
    Result.Search.CacheLoadedPersistent = PStats.LoadedEntries;
    Result.Search.CachePersistedAppends = PStats.AppendedEntries;
    Result.Search.CacheWarnings = PStats.Warnings;
    Result.Search.CacheDegraded = PStats.Degraded;
  }

  // Non-prescriptive selection (Section II): keep the baseline when no
  // variant improves on it.
  if (!Result.Search.Found ||
      Result.Search.BestMetric >= Result.BaselineCycles) {
    if (!BaselineRunnable)
      return Expected<SearchWorkflowResult>::error(
          "no valid variant found and the baseline is not executable");
    Result.BaselineChosen = true;
    Result.BestProgram = Baseline.clone();
    Result.BestCycles = Result.BaselineCycles;
    if (BaseRun) // under NativeMetric the simulator run may be absent
      Result.BestRun = *BaseRun;
    Result.Speedup = 1.0;
    return Result;
  }

  Expected<DirectResult> Best = runPoint(Result.Search.Best);
  if (!Best.ok())
    return Expected<SearchWorkflowResult>::error(
        "re-materializing the best variant failed: " + Best.message());
  Result.BestProgram = std::move(Best->Variant);
  Result.BestRun = Best->Run;
  // Under NativeMetric the winning metric is the measured native seconds;
  // the re-materialized simulator run above only provides the variant/IR.
  Result.BestCycles =
      Opts.NativeMetric ? Result.Search.BestMetric : Best->Run.Cycles;
  Result.Speedup = Result.BaselineCycles / Result.BestCycles;
  return Result;
}

std::string serializePoint(const search::Point &P) {
  return search::serializePoint(P);
}

Expected<search::Point> deserializePoint(const std::string &Text,
                                         const search::Space &Space) {
  return search::deserializePoint(Text, Space);
}

} // namespace driver
} // namespace locus
