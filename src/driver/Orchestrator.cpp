//===- Orchestrator.cpp - The Locus system driver ------------------------------===//

#include "src/driver/Orchestrator.h"

#include "src/locus/Optimizer.h"

#include "src/cir/AstUtils.h"
#include "src/support/StringUtils.h"

#include <cmath>
#include <limits>
#include <sstream>

namespace locus {
namespace driver {

Orchestrator::Orchestrator(const lang::LocusProgram &LProg,
                           const cir::Program &Baseline,
                           OrchestratorOptions Opts)
    : LProg(LProg), Baseline(Baseline), Opts(std::move(Opts)),
      Registry(lang::ModuleRegistry::standard()) {}

Expected<eval::RunResult> Orchestrator::evaluate(const cir::Program &P) {
  eval::ProgramEvaluator Eval(P, Opts.Eval);
  Status S = Eval.prepare();
  if (!S.ok())
    return Expected<eval::RunResult>::error(S.message());
  if (Opts.InitHook)
    Opts.InitHook(Eval);
  eval::RunResult R = Eval.run();
  if (!R.Ok)
    return Expected<eval::RunResult>::error(R.Error);
  return R;
}

Expected<eval::RunResult> Orchestrator::evaluateBaseline() {
  return evaluate(Baseline);
}

const lang::LocusProgram &Orchestrator::program() {
  if (!Opts.OptimizeProgram)
    return LProg;
  if (!OptimizedProg) {
    std::unique_ptr<cir::Program> Clone = Baseline.clone();
    transform::TransformContext TCtx;
    TCtx.RequireDeps = Opts.RequireDeps;
    TCtx.Prog = Clone.get();
    TCtx.Snippets = Opts.Snippets;
    OptimizedProg =
        lang::optimizeLocusProgram(LProg, *Clone, Registry, TCtx, &OptStats);
  }
  return *OptimizedProg;
}

std::map<std::string, uint64_t> Orchestrator::regionHashes() const {
  std::map<std::string, uint64_t> Hashes;
  auto &Mutable = const_cast<cir::Program &>(Baseline);
  for (const std::string &Name : Baseline.regionNames())
    for (cir::Block *Region : Mutable.findRegions(Name))
      Hashes[Name] = cir::hashRegion(*Region);
  return Hashes;
}

Expected<DirectResult> Orchestrator::runDirect() {
  return runPoint(search::Point{});
}

Expected<DirectResult> Orchestrator::runPoint(const search::Point &Point) {
  DirectResult Result;
  Result.Variant = Baseline.clone();
  transform::TransformContext TCtx;
  TCtx.RequireDeps = Opts.RequireDeps;
  TCtx.Prog = Result.Variant.get();
  TCtx.Snippets = Opts.Snippets;

  lang::LocusInterpreter Interp(program(), Registry);
  Result.Exec = Interp.applyPoint(*Result.Variant, Point, TCtx);
  if (!Result.Exec.Ok)
    return Expected<DirectResult>::error(Result.Exec.Error);
  if (Result.Exec.InvalidPoint)
    return Expected<DirectResult>::error("invalid variant: " +
                                         Result.Exec.InvalidReason);
  Expected<eval::RunResult> Run = evaluate(*Result.Variant);
  if (!Run.ok())
    return Expected<DirectResult>::error(Run.message());
  Result.Run = *Run;
  return Result;
}

namespace {

/// The Objective plugged into the search module: materialize the variant for
/// a point and measure it on the machine model.
class VariantObjective : public search::Objective {
public:
  VariantObjective(const lang::LocusProgram &LProg,
                   const lang::ModuleRegistry &Registry,
                   const cir::Program &Baseline,
                   const OrchestratorOptions &Opts, double BaselineChecksum)
      : LProg(LProg), Registry(Registry), Baseline(Baseline), Opts(Opts),
        BaselineChecksum(BaselineChecksum) {}

  double evaluate(const search::Point &P, bool &Valid) override {
    Valid = false;
    std::unique_ptr<cir::Program> Variant = Baseline.clone();
    transform::TransformContext TCtx;
    TCtx.RequireDeps = Opts.RequireDeps;
    TCtx.Prog = Variant.get();
    TCtx.Snippets = Opts.Snippets;
    lang::LocusInterpreter Interp(LProg, Registry);
    lang::ExecOutcome Exec = Interp.applyPoint(*Variant, P, TCtx);
    if (!Exec.Ok || Exec.InvalidPoint)
      return 0;

    eval::ProgramEvaluator Eval(*Variant, Opts.Eval);
    if (!Eval.prepare().ok())
      return 0;
    if (Opts.InitHook)
      Opts.InitHook(Eval);
    eval::RunResult Run = Eval.run();
    if (!Run.Ok)
      return 0;
    // A variant that computes different results is an illegal rewrite the
    // legality machinery missed (or a forced transformation); reject it so
    // the search cannot exploit broken code. Skipped when the baseline is a
    // non-executable skeleton (NaN reference).
    if (!std::isnan(BaselineChecksum)) {
      double Tol = 1e-6 * std::max(1.0, std::abs(BaselineChecksum));
      if (std::abs(Run.Checksum - BaselineChecksum) > Tol)
        return 0;
    }
    Valid = true;
    return Run.Cycles;
  }

private:
  const lang::LocusProgram &LProg;
  const lang::ModuleRegistry &Registry;
  const cir::Program &Baseline;
  const OrchestratorOptions &Opts;
  double BaselineChecksum;
};

} // namespace

Expected<SearchWorkflowResult> Orchestrator::runSearch() {
  SearchWorkflowResult Result;

  // Convert the optimization space (Section IV-B).
  std::unique_ptr<cir::Program> ExtractTarget = Baseline.clone();
  transform::TransformContext TCtx;
  TCtx.RequireDeps = Opts.RequireDeps;
  TCtx.Prog = ExtractTarget.get();
  TCtx.Snippets = Opts.Snippets;
  lang::LocusInterpreter Interp(program(), Registry);
  lang::ExecOutcome Extract =
      Interp.extractSpace(*ExtractTarget, Result.Space, TCtx);
  if (!Extract.Ok)
    return Expected<SearchWorkflowResult>::error("space extraction failed: " +
                                                 Extract.Error);

  // Baseline metric (also the non-prescriptive fallback). Some baselines
  // are skeletons that only become executable once the optimization program
  // fills them in (the Kripke kernels with their address_calc placeholder);
  // those get an infinite baseline metric and no checksum reference.
  Expected<eval::RunResult> BaseRun = evaluateBaseline();
  bool BaselineRunnable = BaseRun.ok();
  double BaselineChecksum = std::numeric_limits<double>::quiet_NaN();
  if (BaselineRunnable) {
    Result.BaselineCycles = BaseRun->Cycles;
    BaselineChecksum = BaseRun->Checksum;
  } else {
    Result.BaselineCycles = std::numeric_limits<double>::infinity();
  }

  // Drive the search module.
  std::unique_ptr<search::Searcher> Searcher =
      search::makeSearcher(Opts.SearcherName);
  if (!Searcher)
    return Expected<SearchWorkflowResult>::error("unknown search module: " +
                                                 Opts.SearcherName);
  VariantObjective Obj(program(), Registry, Baseline, Opts, BaselineChecksum);
  search::SearchOptions SOpts;
  SOpts.MaxEvaluations = Opts.MaxEvaluations;
  SOpts.Seed = Opts.Seed;
  Result.Search = Searcher->search(Result.Space, Obj, SOpts);

  // Non-prescriptive selection (Section II): keep the baseline when no
  // variant improves on it.
  if (!Result.Search.Found ||
      Result.Search.BestMetric >= Result.BaselineCycles) {
    if (!BaselineRunnable)
      return Expected<SearchWorkflowResult>::error(
          "no valid variant found and the baseline is not executable");
    Result.BaselineChosen = true;
    Result.BestProgram = Baseline.clone();
    Result.BestCycles = Result.BaselineCycles;
    Result.BestRun = *BaseRun;
    Result.Speedup = 1.0;
    return Result;
  }

  Expected<DirectResult> Best = runPoint(Result.Search.Best);
  if (!Best.ok())
    return Expected<SearchWorkflowResult>::error(
        "re-materializing the best variant failed: " + Best.message());
  Result.BestProgram = std::move(Best->Variant);
  Result.BestRun = Best->Run;
  Result.BestCycles = Best->Run.Cycles;
  Result.Speedup = Result.BaselineCycles / Result.BestCycles;
  return Result;
}

std::string serializePoint(const search::Point &P) {
  std::ostringstream Out;
  for (const auto &[Id, V] : P.Values) {
    Out << Id << " = ";
    if (const auto *I = std::get_if<int64_t>(&V))
      Out << "i:" << *I;
    else if (const auto *D = std::get_if<double>(&V))
      Out << "f:" << *D;
    else if (const auto *S = std::get_if<std::string>(&V))
      Out << "s:" << *S;
    else if (const auto *Perm = std::get_if<std::vector<int>>(&V)) {
      Out << "p:";
      for (size_t I = 0; I < Perm->size(); ++I)
        Out << (I ? "," : "") << (*Perm)[I];
    }
    Out << "\n";
  }
  return Out.str();
}

Expected<search::Point> deserializePoint(const std::string &Text,
                                         const search::Space &Space) {
  search::Point P;
  for (const std::string &Line : splitString(Text, '\n')) {
    std::string_view Trimmed = trimString(Line);
    if (Trimmed.empty())
      continue;
    size_t Eq = Trimmed.find(" = ");
    if (Eq == std::string_view::npos)
      return Expected<search::Point>::error("malformed point line: " + Line);
    std::string Id(Trimmed.substr(0, Eq));
    std::string_view Rest = Trimmed.substr(Eq + 3);
    if (Rest.size() < 2 || Rest[1] != ':')
      return Expected<search::Point>::error("malformed point value: " + Line);
    char Tag = Rest[0];
    std::string Body(Rest.substr(2));
    if (Tag == 'i')
      P.Values[Id] = static_cast<int64_t>(std::stoll(Body));
    else if (Tag == 'f')
      P.Values[Id] = std::stod(Body);
    else if (Tag == 's')
      P.Values[Id] = Body;
    else if (Tag == 'p') {
      std::vector<int> Perm;
      for (const std::string &Part : splitString(Body, ','))
        if (!Part.empty())
          Perm.push_back(std::atoi(Part.c_str()));
      P.Values[Id] = std::move(Perm);
    } else {
      return Expected<search::Point>::error("unknown point value tag: " + Line);
    }
  }
  // Sanity: every space parameter should be pinned.
  for (const search::ParamDef &Def : Space.Params)
    if (!P.Values.count(Def.Id))
      return Expected<search::Point>::error("point does not pin " + Def.Id);
  return P;
}

} // namespace driver
} // namespace locus
