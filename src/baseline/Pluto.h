//===- Pluto.h - Fixed-heuristic restructurer baseline ----------*- C++ -*-===//
///
/// \file
/// A stand-in for the Pluto polyhedral compiler as used in the paper's
/// comparisons (flags -tile, -l2tile, -parallel, -prevector): a one-shot,
/// model-based restructurer with *no parameter tuning*. It applies the same
/// transformations Locus searches over — rectangular tiling with the default
/// 32 tile size (plus an optional second level), time-skewed tiling for
/// stencils, outermost parallelization, innermost prevectorization — but
/// picks every parameter from a fixed heuristic. Like Pluto, it only
/// transforms affine (polyhedral-representable) nests; candidates whose
/// legality cannot be proven are optionally validated by a caller-provided
/// semantic check and dropped when it fails.
///
//===----------------------------------------------------------------------===//
#ifndef LOCUS_BASELINE_PLUTO_H
#define LOCUS_BASELINE_PLUTO_H

#include "src/cir/Ast.h"

#include <functional>
#include <memory>
#include <string>

namespace locus {
namespace baseline {

struct PlutoOptions {
  int TileSize = 32;      ///< Pluto's default tile size
  bool L2Tile = false;    ///< -l2tile: second tiling level (factor 8 tiles)
  bool Parallel = true;   ///< -parallel: OpenMP on the outermost loop
  bool Prevector = true;  ///< -prevector: ivdep/vector on innermost loops
  bool TrySkewedTiling = true; ///< time-tile stencil-shaped nests
};

struct PlutoOutcome {
  bool Transformed = false;
  std::unique_ptr<cir::Program> Program; ///< always set (baseline when not transformed)
  std::string Summary;
};

/// Semantic validation callback: returns true when the candidate variant is
/// acceptable (e.g. equal checksums with the baseline).
using ValidateFn = std::function<bool(const cir::Program &)>;

/// Runs the heuristic on the region \p RegionName of \p Baseline.
/// \p Validate may be empty, in which case only provably legal candidates
/// are produced.
PlutoOutcome runPluto(const cir::Program &Baseline,
                      const std::string &RegionName, const PlutoOptions &Opts,
                      const ValidateFn &Validate = {});

/// A hand-tuned blocked, parallel, vectorized DGEMM written directly in
/// MiniC: the vendor-library (Intel MKL) stand-in of Fig. 6.
std::string tunedDgemmSource(int M, int N, int K, int Block);

} // namespace baseline
} // namespace locus

#endif // LOCUS_BASELINE_PLUTO_H
