//===- Pluto.cpp - Fixed-heuristic restructurer baseline -----------------------===//

#include "src/baseline/Pluto.h"

#include "src/analysis/Affine.h"
#include "src/analysis/Dependence.h"
#include "src/cir/AstUtils.h"
#include "src/cir/PathIndex.h"
#include "src/transform/AltdescPragmas.h"
#include "src/transform/GenericTiling.h"
#include "src/transform/Interchange.h"
#include "src/transform/Tiling.h"

#include <algorithm>
#include <numeric>
#include <sstream>

namespace locus {
namespace baseline {

using namespace cir;
using namespace transform;

namespace {

/// Attaches ivdep/vector pragmas to every innermost loop.
void prevectorize(Block &Region, TransformContext &Ctx) {
  for (const LoopEntry &E : listInnerLoops(Region)) {
    PragmaArgs P;
    P.LoopPath = E.Path;
    P.Text = "ivdep";
    applyPragma(Region, P, Ctx);
    P.Text = "vector always";
    applyPragma(Region, P, Ctx);
  }
}

/// Model-based loop ordering, as a polyhedral scheduler would choose it:
/// among the legal permutations of the perfect nest, pick the one whose
/// innermost loop maximizes unit-stride / invariant array accesses.
void orderForLocality(Block &Region, const LoopEntry &Outer,
                      const analysis::DependenceInfo &Deps,
                      TransformContext &Ctx, std::ostringstream &Summary) {
  std::vector<ForStmt *> Nest = perfectNest(*Outer.Loop);
  size_t K = Nest.size();
  if (K < 2 || K > 5)
    return;

  auto ScoreInnermost = [&](const std::string &Var) {
    double Score = 0;
    forEachStmt(*Nest.back()->Body, [&](Stmt &S) {
      forEachExpr(S, [&](ExprPtr &E) {
        const std::function<void(const Expr &)> Scan = [&](const Expr &Sub) {
          if (const auto *A = dyn_cast<ArrayRef>(&Sub)) {
            bool UsesVar = false;
            for (size_t I = 0; I < A->Indices.size(); ++I) {
              std::optional<analysis::AffineExpr> Aff =
                  analysis::toAffine(*A->Indices[I]);
              int64_t Coeff = Aff ? Aff->coeff(Var) : 0;
              if (Coeff != 0)
                UsesVar = true;
              if (I + 1 == A->Indices.size() && Coeff == 1)
                Score += 2; // unit stride
              else if (Coeff != 0)
                Score -= 1; // strided
            }
            if (!UsesVar)
              Score += 1; // register-resident across the loop
            for (const auto &I : A->Indices)
              Scan(*I);
            return;
          }
          if (const auto *B = dyn_cast<BinaryExpr>(&Sub)) {
            Scan(*B->Lhs);
            Scan(*B->Rhs);
          } else if (const auto *U = dyn_cast<UnaryExpr>(&Sub)) {
            Scan(*U->Operand);
          } else if (const auto *C = dyn_cast<CallExpr>(&Sub)) {
            for (const auto &Arg : C->Args)
              Scan(*Arg);
          }
        };
        Scan(*E);
      });
    });
    return Score;
  };

  std::vector<int> Best(K);
  std::iota(Best.begin(), Best.end(), 0);
  double BestScore = ScoreInnermost(Nest[K - 1]->Var);
  std::vector<int> Perm = Best;
  while (std::next_permutation(Perm.begin(), Perm.end())) {
    if (!Deps.interchangeLegal(Perm))
      continue;
    double Score = ScoreInnermost(Nest[static_cast<size_t>(Perm[K - 1])]->Var);
    if (Score > BestScore) {
      BestScore = Score;
      Best = Perm;
    }
  }
  bool Identity = std::is_sorted(Best.begin(), Best.end());
  if (Identity)
    return;
  InterchangeArgs Args;
  Args.LoopPath = Outer.Path;
  Args.Order = Best;
  if (applyInterchange(Region, Args, Ctx).succeeded())
    Summary << "interchange ";
}

/// True when loop 0 of the nest carries no dependence (safe to parallelize).
bool outerParallelizable(const analysis::DependenceInfo &Deps) {
  for (const analysis::Dependence &D : Deps.deps())
    if (D.mayBeCarriedBy(0))
      return false;
  return true;
}

struct Candidate {
  std::unique_ptr<cir::Program> Program;
  std::string Summary;
  bool NeedsValidation = false;
};

/// Builds the rectangular-tiling candidate; null when inapplicable.
std::unique_ptr<Candidate> rectCandidate(const cir::Program &Baseline,
                                         const std::string &RegionName,
                                         const PlutoOptions &Opts) {
  auto Cand = std::make_unique<Candidate>();
  Cand->Program = Baseline.clone();
  TransformContext Ctx;
  Ctx.Prog = Cand->Program.get();
  Ctx.RequireDeps = true; // Pluto is polyhedral-only
  std::vector<Block *> Regions = Cand->Program->findRegions(RegionName);
  if (Regions.empty())
    return nullptr;
  std::ostringstream Summary;
  bool DidAnything = false;

  for (Block *Region : Regions) {
    std::vector<LoopEntry> Outer = listOuterLoops(*Region);
    if (Outer.empty())
      return nullptr;
    ForStmt *Root = Outer[0].Loop;
    std::optional<analysis::DependenceInfo> Deps =
        analysis::DependenceInfo::compute(*Root);
    if (!Deps)
      return nullptr; // outside the polyhedral model

    orderForLocality(*Region, Outer[0], *Deps, Ctx, Summary);
    Root = listOuterLoops(*Region)[0].Loop;
    Deps = analysis::DependenceInfo::compute(*Root);
    if (!Deps)
      return nullptr;

    std::vector<ForStmt *> Nest = perfectNest(*Root);
    size_t Depth = Nest.size();
    bool Tiled = false;
    if (Depth >= 2 && Deps->tilingLegal(0, Depth - 1)) {
      TilingArgs T;
      T.LoopPath = Outer[0].Path;
      T.Factors.assign(Depth, Opts.TileSize);
      if (applyTiling(*Region, T, Ctx).succeeded()) {
        Tiled = true;
        DidAnything = true;
        Summary << "tile" << Depth << "x" << Opts.TileSize << " ";
        if (Opts.L2Tile) {
          TilingArgs T2;
          // Intra-tile loops start right below the tile band.
          std::string Path = Outer[0].Path;
          for (size_t I = 0; I < Depth; ++I)
            Path += ".0";
          T2.LoopPath = Path;
          T2.Factors.assign(Depth, std::max(2, Opts.TileSize / 4));
          if (applyTiling(*Region, T2, Ctx).succeeded())
            Summary << "l2tile ";
        }
      }
    }

    if (Opts.Parallel && outerParallelizable(*Deps)) {
      OmpForArgs Omp;
      Omp.LoopPath = Outer[0].Path;
      if (applyOmpFor(*Region, Omp, Ctx).succeeded()) {
        DidAnything = true;
        Summary << "parallel ";
      }
    }
    if (Opts.Prevector) {
      // Prevectorization alone is not a restructuring: without tiling or
      // parallelization this candidate yields to the skewed-tiling attempt.
      prevectorize(*Region, Ctx);
      Summary << "prevector ";
    }
    (void)Tiled;
  }
  if (!DidAnything)
    return nullptr;
  Cand->Summary = Summary.str();
  return Cand;
}

/// Builds the skewed-tiling candidate for stencil-shaped nests (depth 2-3,
/// dependences not affinely analyzable due to modulo time buffers). Needs
/// semantic validation.
std::unique_ptr<Candidate> skewCandidate(const cir::Program &Baseline,
                                         const std::string &RegionName,
                                         const PlutoOptions &Opts) {
  auto Cand = std::make_unique<Candidate>();
  Cand->Program = Baseline.clone();
  Cand->NeedsValidation = true;
  TransformContext Ctx;
  Ctx.Prog = Cand->Program.get();
  std::vector<Block *> Regions = Cand->Program->findRegions(RegionName);
  if (Regions.empty())
    return nullptr;
  for (Block *Region : Regions) {
    std::vector<LoopEntry> Outer = listOuterLoops(*Region);
    if (Outer.empty())
      return nullptr;
    ForStmt *Root = Outer[0].Loop;
    size_t Depth = perfectNest(*Root).size();
    if (Depth < 2 || Depth > 3)
      return nullptr;
    GenericTilingArgs G;
    G.LoopPath = Outer[0].Path;
    int64_t S = Opts.TileSize;
    if (Depth == 2)
      G.Matrix = {{S, 0}, {-S, S}};
    else
      G.Matrix = {{S, 0, 0}, {-S, S, 0}, {-S, 0, S}};
    if (!applyGenericTiling(*Region, G, Ctx).succeeded())
      return nullptr;
    if (Opts.Prevector)
      prevectorize(*Region, Ctx);
  }
  Cand->Summary = "skewed-tile" + std::to_string(Opts.TileSize) + " prevector";
  return Cand;
}

} // namespace

PlutoOutcome runPluto(const cir::Program &Baseline,
                      const std::string &RegionName, const PlutoOptions &Opts,
                      const ValidateFn &Validate) {
  PlutoOutcome Out;

  if (auto Cand = rectCandidate(Baseline, RegionName, Opts)) {
    if (!Cand->NeedsValidation || (Validate && Validate(*Cand->Program))) {
      Out.Transformed = true;
      Out.Program = std::move(Cand->Program);
      Out.Summary = Cand->Summary;
      return Out;
    }
  }
  if (Opts.TrySkewedTiling) {
    if (auto Cand = skewCandidate(Baseline, RegionName, Opts)) {
      if (Validate && Validate(*Cand->Program)) {
        Out.Transformed = true;
        Out.Program = std::move(Cand->Program);
        Out.Summary = Cand->Summary;
        return Out;
      }
    }
  }
  Out.Transformed = false;
  Out.Program = Baseline.clone();
  Out.Summary = "baseline (outside the polyhedral model or validation failed)";
  return Out;
}

std::string tunedDgemmSource(int M, int N, int K, int Block) {
  std::ostringstream Out;
  Out << "#define M " << M << "\n#define N " << N << "\n#define K " << K
      << "\n#define BS " << Block << "\n";
  Out << R"(
double A[M][K];
double B[K][N];
double C[M][N];
double alpha;
double beta;

int main()
{
  int it, kt, jt, i, j, k;
#pragma omp parallel for
  for (it = 0; it < M; it += BS)
    for (kt = 0; kt < K; kt += BS)
      for (jt = 0; jt < N; jt += BS)
        for (i = it; i < min(M, it + BS); i++)
          for (k = kt; k < min(K, kt + BS); k++) {
            double a = alpha * A[i][k];
#pragma ivdep
#pragma vector always
            for (j = jt; j < min(N, jt + BS); j++)
              C[i][j] = beta * C[i][j] + a * B[k][j];
          }
  return 0;
}
)";
  return Out.str();
}

} // namespace baseline
} // namespace locus
