//===- FusionDistribution.cpp - Loop fusion and distribution ----------------===//

#include "src/transform/FusionDistribution.h"

#include "src/analysis/Dependence.h"
#include "src/cir/AstUtils.h"
#include "src/cir/PathIndex.h"

#include <algorithm>
#include <functional>

namespace locus {
namespace transform {

using namespace cir;

TransformResult applyFusion(Block &Region, const FusionArgs &Args,
                            const TransformContext &Ctx) {
  Expected<StmtLocation> Loc = resolvePath(Region, Args.LoopPath);
  if (!Loc.ok())
    return TransformResult::error(Loc.message());
  auto *First = dyn_cast<ForStmt>(Loc->get());
  if (!First)
    return TransformResult::error("fusion path does not address a loop");
  if (Loc->Index + 1 >= Loc->Parent->Stmts.size())
    return TransformResult::error("no following sibling loop to fuse with");
  auto *Second = dyn_cast<ForStmt>(Loc->Parent->Stmts[Loc->Index + 1].get());
  if (!Second)
    return TransformResult::error("fusion sibling is not a loop");

  if (First->Var != Second->Var || First->Op != Second->Op ||
      First->Step != Second->Step || !exprEquals(*First->Init, *Second->Init) ||
      !exprEquals(*First->Bound, *Second->Bound))
    return TransformResult::illegal("loop headers differ; cannot fuse");

  // Build the fused candidate and test it: any dependence from a statement
  // of the second body to a statement of the first body reverses the
  // original execution order and prevents fusion.
  auto Fused = std::unique_ptr<ForStmt>(cast<ForStmt>(First->clone().release()));
  size_t FirstLeafCount = 0;
  forEachStmt(*First, [&](Stmt &S) {
    if (isa<AssignStmt>(&S) || isa<DeclStmt>(&S) || isa<CallStmt>(&S))
      ++FirstLeafCount;
  });
  for (const auto &S : Second->Body->Stmts)
    Fused->Body->Stmts.push_back(S->clone());

  std::optional<analysis::DependenceInfo> Deps =
      analysis::DependenceInfo::compute(*Fused);
  if (!Deps) {
    if (Ctx.RequireDeps)
      return TransformResult::illegal("dependences unavailable; refusing fusion");
  } else {
    for (const analysis::Dependence &D : Deps->deps())
      if (static_cast<size_t>(D.SrcStmt) >= FirstLeafCount &&
          static_cast<size_t>(D.DstStmt) < FirstLeafCount)
        return TransformResult::illegal(
            "fusion-preventing dependence on " + D.Array);
  }

  // Commit: splice second body into the first, drop the second loop.
  for (auto &S : Second->Body->Stmts)
    First->Body->Stmts.push_back(std::move(S));
  Loc->Parent->Stmts.erase(Loc->Parent->Stmts.begin() +
                           static_cast<long>(Loc->Index + 1));
  return TransformResult::success();
}

namespace {

/// Tarjan strongly connected components over a small adjacency list.
/// Returns a component id per node; ids are not ordered.
std::vector<int> tarjanScc(const std::vector<std::vector<int>> &Graph,
                           int &ComponentCount) {
  size_t N = Graph.size();
  std::vector<int> Index(N, -1), Low(N, 0), Component(N, -1);
  std::vector<bool> OnStack(N, false);
  std::vector<int> Stack;
  int NextIndex = 0;
  ComponentCount = 0;

  std::function<void(int)> Strongconnect = [&](int V) {
    Index[static_cast<size_t>(V)] = Low[static_cast<size_t>(V)] = NextIndex++;
    Stack.push_back(V);
    OnStack[static_cast<size_t>(V)] = true;
    for (int W : Graph[static_cast<size_t>(V)]) {
      if (Index[static_cast<size_t>(W)] < 0) {
        Strongconnect(W);
        Low[static_cast<size_t>(V)] =
            std::min(Low[static_cast<size_t>(V)], Low[static_cast<size_t>(W)]);
      } else if (OnStack[static_cast<size_t>(W)]) {
        Low[static_cast<size_t>(V)] = std::min(Low[static_cast<size_t>(V)],
                                               Index[static_cast<size_t>(W)]);
      }
    }
    if (Low[static_cast<size_t>(V)] == Index[static_cast<size_t>(V)]) {
      while (true) {
        int W = Stack.back();
        Stack.pop_back();
        OnStack[static_cast<size_t>(W)] = false;
        Component[static_cast<size_t>(W)] = ComponentCount;
        if (W == V)
          break;
      }
      ++ComponentCount;
    }
  };
  for (size_t V = 0; V < N; ++V)
    if (Index[V] < 0)
      Strongconnect(static_cast<int>(V));
  return Component;
}

} // namespace

TransformResult applyDistribution(Block &Region, const DistributionArgs &Args,
                                  const TransformContext &Ctx) {
  Expected<StmtLocation> Loc = resolvePath(Region, Args.LoopPath);
  if (!Loc.ok())
    return TransformResult::error(Loc.message());
  auto *Loop = dyn_cast<ForStmt>(Loc->get());
  if (!Loop)
    return TransformResult::error("distribution path does not address a loop");
  size_t N = Loop->Body->Stmts.size();
  if (N < 2)
    return TransformResult::noop("single-statement body");

  std::optional<analysis::DependenceInfo> Deps =
      analysis::DependenceInfo::compute(*Loop);
  if (!Deps) {
    if (Ctx.RequireDeps)
      return TransformResult::illegal(
          "dependences unavailable; refusing distribution");
    // Without dependence information every statement might interact:
    // distribution would be a blind guess, so refuse regardless.
    return TransformResult::illegal(
        "dependences unavailable; distribution cannot prove groups");
  }

  std::vector<std::vector<int>> Graph = Deps->stmtGraph(*Loop);
  int ComponentCount = 0;
  std::vector<int> Component = tarjanScc(Graph, ComponentCount);
  if (ComponentCount <= 1)
    return TransformResult::noop("all statements form one dependence cycle");

  // Topologically order components, breaking ties by smallest original
  // statement index so the result stays close to source order.
  std::vector<int> MinIndex(static_cast<size_t>(ComponentCount), 1 << 30);
  for (size_t I = 0; I < N; ++I)
    MinIndex[static_cast<size_t>(Component[I])] =
        std::min(MinIndex[static_cast<size_t>(Component[I])],
                 static_cast<int>(I));
  std::vector<std::vector<int>> CompEdges(static_cast<size_t>(ComponentCount));
  std::vector<int> InDegree(static_cast<size_t>(ComponentCount), 0);
  for (size_t V = 0; V < N; ++V)
    for (int W : Graph[V]) {
      int CV = Component[V], CW = Component[static_cast<size_t>(W)];
      if (CV == CW)
        continue;
      auto &Edges = CompEdges[static_cast<size_t>(CV)];
      if (std::find(Edges.begin(), Edges.end(), CW) == Edges.end()) {
        Edges.push_back(CW);
        ++InDegree[static_cast<size_t>(CW)];
      }
    }
  std::vector<int> Order;
  std::vector<int> Ready;
  for (int C = 0; C < ComponentCount; ++C)
    if (InDegree[static_cast<size_t>(C)] == 0)
      Ready.push_back(C);
  while (!Ready.empty()) {
    auto Best = std::min_element(Ready.begin(), Ready.end(), [&](int A, int B) {
      return MinIndex[static_cast<size_t>(A)] < MinIndex[static_cast<size_t>(B)];
    });
    int C = *Best;
    Ready.erase(Best);
    Order.push_back(C);
    for (int W : CompEdges[static_cast<size_t>(C)])
      if (--InDegree[static_cast<size_t>(W)] == 0)
        Ready.push_back(W);
  }
  assert(Order.size() == static_cast<size_t>(ComponentCount) &&
         "condensation must be acyclic");

  // Emit one loop per component, in topological order.
  auto Out = std::make_unique<Block>();
  for (int C : Order) {
    auto NewBody = std::make_unique<Block>();
    for (size_t I = 0; I < N; ++I)
      if (Component[I] == C)
        NewBody->Stmts.push_back(Loop->Body->Stmts[I]->clone());
    auto NewLoop = std::make_unique<ForStmt>(
        Loop->Var, Loop->Init->clone(), Loop->Op, Loop->Bound->clone(),
        Loop->Step, std::move(NewBody));
    Out->Stmts.push_back(std::move(NewLoop));
  }
  Loc->replace(std::move(Out));
  return TransformResult::success();
}

} // namespace transform
} // namespace locus
