//===- Interchange.h - Loop interchange ------------------------*- C++ -*-===//
///
/// \file
/// RoseLocus.Interchange: permutes the loops of a perfect nest. Matches the
/// paper's usage "Interchange(order=[0,2,1])" where order[p] names the
/// original position of the loop placed at position p.
///
//===----------------------------------------------------------------------===//
#ifndef LOCUS_TRANSFORM_INTERCHANGE_H
#define LOCUS_TRANSFORM_INTERCHANGE_H

#include "src/transform/Transform.h"

#include <string>
#include <vector>

namespace locus {
namespace transform {

struct InterchangeArgs {
  /// Path of the nest's outermost loop inside the region ("0" by default).
  std::string LoopPath = "0";
  /// Permutation: Order[p] = original index of the loop placed at p.
  std::vector<int> Order;
};

/// Permutes the perfect nest headers. Structural legality (loop bounds may
/// only reference induction variables of loops placed further out) is always
/// enforced; dependence legality is enforced when dependences are available.
TransformResult applyInterchange(cir::Block &Region,
                                 const InterchangeArgs &Args,
                                 const TransformContext &Ctx);

} // namespace transform
} // namespace locus

#endif // LOCUS_TRANSFORM_INTERCHANGE_H
