//===- Transform.cpp - Transformation module shared helpers ----------------===//

#include "src/transform/Transform.h"

#include "src/cir/AstUtils.h"

#include <set>

namespace locus {
namespace transform {

std::string freshName(const cir::Block &Scope, const std::string &Base) {
  std::set<std::string> Used;
  cir::forEachStmt(const_cast<cir::Block &>(Scope), [&](cir::Stmt &S) {
    if (auto *For = cir::dyn_cast<cir::ForStmt>(&S))
      Used.insert(For->Var);
    if (auto *Decl = cir::dyn_cast<cir::DeclStmt>(&S))
      Used.insert(Decl->Name);
    cir::forEachExpr(S, [&](cir::ExprPtr &E) {
      std::set<std::string> Vars;
      cir::collectVars(*E, Vars);
      Used.insert(Vars.begin(), Vars.end());
      std::set<std::string> Arrays;
      cir::collectArrays(*E, Arrays);
      Used.insert(Arrays.begin(), Arrays.end());
    });
  });
  if (!Used.count(Base))
    return Base;
  for (int Suffix = 2;; ++Suffix) {
    std::string Candidate = Base + "_" + std::to_string(Suffix);
    if (!Used.count(Candidate))
      return Candidate;
  }
}

std::map<std::string, cir::ElemType> collectDeclTypes(const cir::Program &P) {
  std::map<std::string, cir::ElemType> Types;
  for (const auto &G : P.Globals)
    Types[G->Name] = G->Elem;
  cir::forEachStmt(*const_cast<cir::Block *>(P.Body.get()),
                   [&](cir::Stmt &S) {
                     if (auto *D = cir::dyn_cast<cir::DeclStmt>(&S))
                       Types[D->Name] = D->Elem;
                   });
  return Types;
}

cir::ElemType inferElemType(const cir::Expr &E,
                            const std::map<std::string, cir::ElemType> &Types) {
  using namespace cir;
  switch (E.kind()) {
  case ExprKind::IntLit:
    return ElemType::Int;
  case ExprKind::FloatLit:
    return ElemType::Double;
  case ExprKind::VarRef: {
    auto It = Types.find(cast<VarRef>(&E)->Name);
    return It != Types.end() ? It->second : ElemType::Double;
  }
  case ExprKind::ArrayRef: {
    auto It = Types.find(cast<ArrayRef>(&E)->Name);
    return It != Types.end() ? It->second : ElemType::Double;
  }
  case ExprKind::Binary: {
    const auto *B = cast<BinaryExpr>(&E);
    if (inferElemType(*B->Lhs, Types) == ElemType::Double ||
        inferElemType(*B->Rhs, Types) == ElemType::Double)
      return ElemType::Double;
    return ElemType::Int;
  }
  case ExprKind::Unary:
    return inferElemType(*cast<UnaryExpr>(&E)->Operand, Types);
  case ExprKind::Call: {
    const auto *C = cast<CallExpr>(&E);
    for (const auto &A : C->Args)
      if (inferElemType(*A, Types) == ElemType::Double)
        return ElemType::Double;
    return ElemType::Int;
  }
  }
  return ElemType::Double;
}

} // namespace transform
} // namespace locus
