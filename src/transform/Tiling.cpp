//===- Tiling.cpp - Rectangular loop tiling ---------------------------------===//

#include "src/transform/Tiling.h"

#include "src/analysis/Dependence.h"
#include "src/cir/AstUtils.h"
#include "src/cir/PathIndex.h"

#include <set>

namespace locus {
namespace transform {

using namespace cir;

namespace {

/// A detached loop header used while rebuilding nests.
struct Header {
  std::string Var;
  ExprPtr Init;
  BoundOp Op;
  ExprPtr Bound;
  int64_t Step;
};

/// Builds a chain of loops from \p Headers whose innermost body is \p Body
/// and returns the outermost loop.
StmtPtr buildChain(std::vector<Header> Headers, std::unique_ptr<Block> Body) {
  assert(!Headers.empty() && "cannot build an empty chain");
  // Build inside out.
  std::unique_ptr<Block> Current = std::move(Body);
  for (size_t I = Headers.size(); I-- > 0;) {
    Header &H = Headers[I];
    auto Loop =
        std::make_unique<ForStmt>(H.Var, std::move(H.Init), H.Op,
                                  std::move(H.Bound), H.Step, std::move(Current));
    Current = std::make_unique<Block>();
    Current->Stmts.push_back(std::move(Loop));
  }
  StmtPtr Result = std::move(Current->Stmts.front());
  return Result;
}

/// Intra-tile upper bound: min(OrigBound, TileVar + Factor [- 1]).
ExprPtr clampedBound(const ForStmt &Orig, const std::string &TileVar,
                     int64_t Factor) {
  int64_t Extent = Orig.Op == BoundOp::Lt ? Factor : Factor - 1;
  ExprPtr TileEnd =
      makeBin(BinOp::Add, makeVar(TileVar), makeInt(Extent * Orig.Step));
  return foldExpr(makeMin(Orig.Bound->clone(), std::move(TileEnd)));
}

/// Checks the band's bounds do not reference intra-band induction variables
/// (rectangular band requirement).
bool bandIsRectangular(const std::vector<ForStmt *> &Nest, size_t K,
                       std::string &Offender) {
  for (size_t I = 0; I < K; ++I) {
    std::set<std::string> BoundVars;
    collectVars(*Nest[I]->Init, BoundVars);
    collectVars(*Nest[I]->Bound, BoundVars);
    for (size_t Outer = 0; Outer < I; ++Outer)
      if (BoundVars.count(Nest[Outer]->Var)) {
        Offender = Nest[I]->Var;
        return false;
      }
  }
  return true;
}

TransformResult applyBandTiling(Block &Region, StmtLocation Loc,
                                const TilingArgs &Args,
                                const TransformContext &Ctx) {
  auto *Root = cast<ForStmt>(Loc.get());
  std::vector<ForStmt *> Nest = perfectNest(*Root);
  size_t K = Args.Factors.size();
  if (K == 0)
    return TransformResult::error("tiling requires at least one factor");
  if (K > Nest.size())
    return TransformResult::error(
        "tiling factor list names " + std::to_string(K) +
        " loops but the perfect nest has depth " + std::to_string(Nest.size()));
  for (int64_t F : Args.Factors)
    if (F < 1)
      return TransformResult::error("tile factors must be positive");

  std::string Offender;
  if (!bandIsRectangular(Nest, K, Offender))
    return TransformResult::error("loop " + Offender +
                                  " has band-dependent bounds; "
                                  "non-rectangular tiling is unsupported");

  // Legality: the tiled band must be fully permutable (or all dependences
  // satisfied outside it).
  std::optional<analysis::DependenceInfo> Deps =
      analysis::DependenceInfo::compute(*Root);
  if (!Deps) {
    if (Ctx.RequireDeps)
      return TransformResult::illegal("dependences unavailable; refusing tiling");
  } else if (!Deps->tilingLegal(0, K - 1)) {
    return TransformResult::illegal("tiled band is not fully permutable");
  }

  // Assemble headers: tile loops for every factor > 1, then intra-tile
  // loops for all K band members.
  std::vector<Header> Headers;
  std::vector<std::string> TileVars(K);
  for (size_t I = 0; I < K; ++I) {
    if (Args.Factors[I] == 1)
      continue;
    ForStmt *L = Nest[I];
    TileVars[I] = freshName(Region, L->Var + "t");
    Headers.push_back(Header{TileVars[I], L->Init->clone(), L->Op,
                             L->Bound->clone(),
                             Args.Factors[I] * L->Step});
    // Declare the tile variable so downstream passes see it.
  }
  for (size_t I = 0; I < K; ++I) {
    ForStmt *L = Nest[I];
    if (Args.Factors[I] == 1) {
      Headers.push_back(
          Header{L->Var, L->Init->clone(), L->Op, L->Bound->clone(), L->Step});
      continue;
    }
    Headers.push_back(Header{L->Var, makeVar(TileVars[I]), L->Op,
                             clampedBound(*L, TileVars[I], Args.Factors[I]),
                             L->Step});
  }
  if (Headers.size() == K)
    return TransformResult::noop("all tile factors are 1");

  // Headers for the untouched remainder of the nest below the band.
  for (size_t I = K; I < Nest.size(); ++I) {
    ForStmt *L = Nest[I];
    Headers.push_back(
        Header{L->Var, std::move(L->Init), L->Op, std::move(L->Bound), L->Step});
  }

  std::unique_ptr<Block> InnerBody = std::move(Nest.back()->Body);
  Loc.replace(buildChain(std::move(Headers), std::move(InnerBody)));
  return TransformResult::success();
}

TransformResult applySingleLoopTiling(Block &Region, StmtLocation Loc,
                                      const TilingArgs &Args,
                                      const TransformContext &Ctx) {
  auto *Root = cast<ForStmt>(Loc.get());
  std::vector<ForStmt *> Nest = perfectNest(*Root);
  if (Args.Factors.size() != 1)
    return TransformResult::error(
        "single-loop tiling takes exactly one factor");
  int64_t Factor = Args.Factors[0];
  if (Factor < 2)
    return TransformResult::noop("tile factor below 2");
  size_t Depth = static_cast<size_t>(Args.SingleLoopDepth);
  if (Depth < 1 || Depth > Nest.size())
    return TransformResult::error(
        "loop depth " + std::to_string(Args.SingleLoopDepth) +
        " outside nest of depth " + std::to_string(Nest.size()));
  ForStmt *Target = Nest[Depth - 1];

  // Structural: the target loop's bounds must be hoistable to the outermost
  // position, so they may not reference enclosing band variables.
  std::set<std::string> BoundVars;
  collectVars(*Target->Init, BoundVars);
  collectVars(*Target->Bound, BoundVars);
  for (size_t I = 0; I + 1 < Depth; ++I)
    if (BoundVars.count(Nest[I]->Var))
      return TransformResult::error(
          "loop " + Target->Var +
          " has outer-variable-dependent bounds; cannot hoist its tile loop");

  // Legality: hoisting the tile loop over loops 0..Depth-1 requires that
  // band to be permutable.
  std::optional<analysis::DependenceInfo> Deps =
      analysis::DependenceInfo::compute(*Root);
  if (!Deps) {
    if (Ctx.RequireDeps)
      return TransformResult::illegal("dependences unavailable; refusing tiling");
  } else if (!Deps->tilingLegal(0, Depth - 1)) {
    return TransformResult::illegal(
        "band above the tiled loop is not permutable");
  }

  std::string TileVar = freshName(Region, Target->Var + "t");
  std::vector<Header> Headers;
  Headers.push_back(Header{TileVar, Target->Init->clone(), Target->Op,
                           Target->Bound->clone(), Factor * Target->Step});
  for (size_t I = 0; I < Nest.size(); ++I) {
    ForStmt *L = Nest[I];
    if (I == Depth - 1) {
      Headers.push_back(Header{L->Var, makeVar(TileVar), L->Op,
                               clampedBound(*L, TileVar, Factor), L->Step});
    } else {
      Headers.push_back(Header{L->Var, std::move(L->Init), L->Op,
                               std::move(L->Bound), L->Step});
    }
  }
  std::unique_ptr<Block> InnerBody = std::move(Nest.back()->Body);
  Loc.replace(buildChain(std::move(Headers), std::move(InnerBody)));
  return TransformResult::success();
}

} // namespace

TransformResult applyTiling(Block &Region, const TilingArgs &Args,
                            const TransformContext &Ctx) {
  Expected<StmtLocation> Loc = resolvePath(Region, Args.LoopPath);
  if (!Loc.ok())
    return TransformResult::error(Loc.message());
  auto *Root = dyn_cast<ForStmt>(Loc->get());
  if (!Root)
    return TransformResult::error("tiling path does not address a loop");

  if (Args.SingleLoopDepth >= 1)
    return applySingleLoopTiling(Region, *Loc, Args, Ctx);
  return applyBandTiling(Region, *Loc, Args, Ctx);
}

} // namespace transform
} // namespace locus
