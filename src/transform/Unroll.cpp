//===- Unroll.cpp - Loop unrolling and unroll-and-jam -----------------------===//

#include "src/transform/Unroll.h"

#include "src/analysis/Dependence.h"
#include "src/cir/AstUtils.h"
#include "src/cir/PathIndex.h"
#include "src/cir/Printer.h"

namespace locus {
namespace transform {

using namespace cir;

namespace {

/// Clones \p Body substituting the induction variable by Var + Offset
/// (Offset = 0 keeps plain Var).
std::unique_ptr<Block> cloneWithOffset(const Block &Body,
                                       const std::string &Var,
                                       int64_t Offset) {
  auto Copy = std::unique_ptr<Block>(cast<Block>(Body.clone().release()));
  if (Offset != 0) {
    ExprPtr Repl = foldExpr(makeBin(BinOp::Add, makeVar(Var), makeInt(Offset)));
    substituteVarInStmt(*Copy, Var, *Repl);
  }
  return Copy;
}

/// Clones \p Body substituting the induction variable by a constant value.
std::unique_ptr<Block> cloneWithConst(const Block &Body,
                                      const std::string &Var, int64_t Value) {
  auto Copy = std::unique_ptr<Block>(cast<Block>(Body.clone().release()));
  IntLit Lit(Value);
  substituteVarInStmt(*Copy, Var, Lit);
  return Copy;
}

/// Exclusive upper bound expression of a loop (Bound, or Bound + 1 for <=).
ExprPtr exclusiveBound(const ForStmt &Loop) {
  if (Loop.Op == BoundOp::Lt)
    return Loop.Bound->clone();
  return foldExpr(makeBin(BinOp::Add, Loop.Bound->clone(), makeInt(1)));
}

/// Tries to compute the constant trip count of a unit-lower-structure loop.
std::optional<int64_t> constTripCount(const ForStmt &Loop) {
  std::optional<int64_t> Lo = evalConstInt(*Loop.Init);
  std::optional<int64_t> Hi = evalConstInt(*Loop.Bound);
  if (!Lo || !Hi)
    return std::nullopt;
  int64_t Excl = Loop.Op == BoundOp::Lt ? *Hi : *Hi + 1;
  if (Excl <= *Lo)
    return 0;
  return (Excl - *Lo + Loop.Step - 1) / Loop.Step;
}

/// Fuses copies of a loop body back together where possible: when every copy
/// consists of a single loop with an identical header, the copies' bodies
/// are jammed recursively inside one loop. Otherwise the copies are simply
/// concatenated.
std::unique_ptr<Block> jamCopies(std::vector<std::unique_ptr<Block>> Copies) {
  assert(!Copies.empty());
  bool Jammable = true;
  for (const auto &C : Copies) {
    if (C->Stmts.size() != 1 || !isa<ForStmt>(C->Stmts.front().get())) {
      Jammable = false;
      break;
    }
  }
  if (Jammable) {
    const auto *First = cast<ForStmt>(Copies.front()->Stmts.front().get());
    for (const auto &C : Copies) {
      const auto *L = cast<ForStmt>(C->Stmts.front().get());
      if (L->Var != First->Var || L->Op != First->Op ||
          L->Step != First->Step || !exprEquals(*L->Init, *First->Init) ||
          !exprEquals(*L->Bound, *First->Bound)) {
        Jammable = false;
        break;
      }
    }
    if (Jammable) {
      std::vector<std::unique_ptr<Block>> Inner;
      Inner.reserve(Copies.size());
      for (auto &C : Copies) {
        auto *L = cast<ForStmt>(C->Stmts.front().get());
        Inner.push_back(std::move(L->Body));
      }
      auto *First2 = cast<ForStmt>(Copies.front()->Stmts.front().get());
      auto Fused = std::make_unique<ForStmt>(
          First2->Var, std::move(First2->Init), First2->Op,
          std::move(First2->Bound), First2->Step, jamCopies(std::move(Inner)));
      auto Result = std::make_unique<Block>();
      Result->Stmts.push_back(std::move(Fused));
      return Result;
    }
  }
  auto Result = std::make_unique<Block>();
  for (auto &C : Copies)
    for (auto &S : C->Stmts)
      Result->Stmts.push_back(std::move(S));
  return Result;
}

/// Shared unrolling engine. \p Jam selects unroll-and-jam body construction.
TransformResult unrollLoop(StmtLocation Loc, int64_t Factor, bool Jam) {
  auto *Loop = cast<ForStmt>(Loc.get());
  if (Factor < 2)
    return TransformResult::noop("unroll factor below 2");
  int64_t Step = Loop->Step;

  auto MakeCopies = [&](int64_t Count) {
    std::vector<std::unique_ptr<Block>> Copies;
    for (int64_t C = 0; C < Count; ++C)
      Copies.push_back(cloneWithOffset(*Loop->Body, Loop->Var, C * Step));
    return Copies;
  };
  auto BuildBody = [&](int64_t Count) -> std::unique_ptr<Block> {
    std::vector<std::unique_ptr<Block>> Copies = MakeCopies(Count);
    if (Jam)
      return jamCopies(std::move(Copies));
    auto Body = std::make_unique<Block>();
    for (auto &C : Copies)
      for (auto &S : C->Stmts)
        Body->Stmts.push_back(std::move(S));
    return Body;
  };

  std::optional<int64_t> Trip = constTripCount(*Loop);
  if (Trip) {
    int64_t Lo = *evalConstInt(*Loop->Init);
    if (*Trip == 0)
      return TransformResult::noop("loop has zero iterations");
    if (*Trip <= Factor && !Jam) {
      // Full unroll.
      auto Out = std::make_unique<Block>();
      for (int64_t C = 0; C < *Trip; ++C) {
        auto Copy = cloneWithConst(*Loop->Body, Loop->Var, Lo + C * Step);
        for (auto &S : Copy->Stmts)
          Out->Stmts.push_back(std::move(S));
      }
      Loc.replace(std::move(Out));
      return TransformResult::success();
    }
    int64_t MainTrips = (*Trip / Factor) * Factor;
    int64_t MainEnd = Lo + MainTrips * Step; // exclusive
    auto Main = std::make_unique<ForStmt>(
        Loop->Var, Loop->Init->clone(), BoundOp::Lt, makeInt(MainEnd),
        Factor * Step, BuildBody(Factor));
    Main->Pragmas = Loop->Pragmas;
    auto Out = std::make_unique<Block>();
    Out->Stmts.push_back(std::move(Main));
    // Remainder iterations fully unrolled with constant indices.
    for (int64_t C = MainTrips; C < *Trip; ++C) {
      auto Copy = cloneWithConst(*Loop->Body, Loop->Var, Lo + C * Step);
      for (auto &S : Copy->Stmts)
        Out->Stmts.push_back(std::move(S));
    }
    Loc.replace(std::move(Out));
    return TransformResult::success();
  }

  // Symbolic bounds: supported for unit-step loops.
  if (Step != 1)
    return TransformResult::error(
        "symbolic-bound unrolling requires a unit-step loop");
  ExprPtr Excl = exclusiveBound(*Loop);
  // Main loop: for (v = L; v < U - (F-1); v += F)
  ExprPtr MainBound = foldExpr(
      makeBin(BinOp::Sub, Excl->clone(), makeInt(Factor - 1)));
  auto Main = std::make_unique<ForStmt>(Loop->Var, Loop->Init->clone(),
                                        BoundOp::Lt, std::move(MainBound),
                                        Factor, BuildBody(Factor));
  Main->Pragmas = Loop->Pragmas;
  // Remainder loop: for (v = L + ((U - L) / F) * F; v < U; v++) body
  ExprPtr Span = makeBin(BinOp::Sub, Excl->clone(), Loop->Init->clone());
  ExprPtr RemStart = foldExpr(makeBin(
      BinOp::Add, Loop->Init->clone(),
      makeBin(BinOp::Mul, makeBin(BinOp::Div, std::move(Span), makeInt(Factor)),
              makeInt(Factor))));
  auto RemBody =
      std::unique_ptr<Block>(cast<Block>(Loop->Body->clone().release()));
  auto Rem = std::make_unique<ForStmt>(Loop->Var, std::move(RemStart),
                                       BoundOp::Lt, std::move(Excl), 1,
                                       std::move(RemBody));
  auto Out = std::make_unique<Block>();
  Out->Stmts.push_back(std::move(Main));
  Out->Stmts.push_back(std::move(Rem));
  Loc.replace(std::move(Out));
  return TransformResult::success();
}

} // namespace

TransformResult applyUnroll(Block &Region, const UnrollArgs &Args,
                            const TransformContext &Ctx) {
  (void)Ctx; // unrolling is unconditionally legal
  Expected<StmtLocation> Loc = resolvePath(Region, Args.LoopPath);
  if (!Loc.ok())
    return TransformResult::error(Loc.message());
  if (!isa<ForStmt>(Loc->get()))
    return TransformResult::error("unroll path does not address a loop");
  return unrollLoop(*Loc, Args.Factor, /*Jam=*/false);
}

TransformResult applyUnrollAndJam(Block &Region, const UnrollAndJamArgs &Args,
                                  const TransformContext &Ctx) {
  Expected<StmtLocation> RootLoc = resolvePath(Region, Args.LoopPath);
  if (!RootLoc.ok())
    return TransformResult::error(RootLoc.message());
  auto *Root = dyn_cast<ForStmt>(RootLoc->get());
  if (!Root)
    return TransformResult::error("unroll-and-jam path does not address a loop");

  std::vector<ForStmt *> Nest = perfectNest(*Root);
  size_t Depth = static_cast<size_t>(Args.Depth);
  if (Args.Depth < 1 || Depth > Nest.size())
    return TransformResult::error("unroll-and-jam depth out of range");

  std::optional<analysis::DependenceInfo> Deps =
      analysis::DependenceInfo::compute(*Root);
  if (!Deps) {
    if (Ctx.RequireDeps)
      return TransformResult::illegal(
          "dependences unavailable; refusing unroll-and-jam");
  } else if (!Deps->unrollAndJamLegal(Depth - 1)) {
    return TransformResult::illegal("unroll-and-jam violates a dependence");
  }

  // The jammed loop is addressed relative to the region; find its location.
  ForStmt *Target = Nest[Depth - 1];
  if (Target == Root)
    return unrollLoop(*RootLoc, Args.Factor, /*Jam=*/true);
  // Parent is the body of the loop above; the perfect nest guarantees it is
  // that body's only statement.
  ForStmt *Parent = Nest[Depth - 2];
  StmtLocation Loc{Parent->Body.get(), 0};
  assert(Loc.get() == Target && "perfect nest invariant violated");
  return unrollLoop(Loc, Args.Factor, /*Jam=*/true);
}

} // namespace transform
} // namespace locus
