//===- Transform.h - Transformation module interface -----------*- C++ -*-===//
///
/// \file
/// Shared types of the transformation modules. The paper (Section II,
/// Section IV-A) requires every integrated module to report an exit status
/// (successful / error / illegal) through its wrapper function; this is that
/// status protocol. Each module checks legality with the dependence analyzer
/// when dependences are computable; when they are not, the module proceeds
/// (the paper lets programmers enforce transformations they know are legal)
/// unless TransformOptions::RequireDeps is set.
///
//===----------------------------------------------------------------------===//
#ifndef LOCUS_TRANSFORM_TRANSFORM_H
#define LOCUS_TRANSFORM_TRANSFORM_H

#include "src/cir/Ast.h"

#include <map>
#include <string>

namespace locus {
namespace transform {

/// Module exit status, mirroring the wrapper-function protocol of Section II.
enum class TransformStatus {
  Success, ///< the region was rewritten
  NoOp,    ///< nothing to do (e.g. distribution of a single statement)
  Illegal, ///< the dependence analyzer proved the rewrite unsafe
  Error    ///< malformed arguments or unsupported code shape
};

/// Result of invoking one transformation module.
struct TransformResult {
  TransformStatus Status = TransformStatus::Success;
  std::string Message;

  /// Name of the code region the module was applied to; filled by the module
  /// registry layer so every Illegal/Error diagnostic carries its region.
  std::string Region;

  /// Source location of the region (or failing construct) the status refers
  /// to; filled alongside Region.
  support::SrcLoc Loc;

  static TransformResult make(TransformStatus S, std::string Why) {
    TransformResult R;
    R.Status = S;
    R.Message = std::move(Why);
    return R;
  }
  static TransformResult success() {
    return make(TransformStatus::Success, "");
  }
  static TransformResult noop(std::string Why = "") {
    return make(TransformStatus::NoOp, std::move(Why));
  }
  static TransformResult illegal(std::string Why) {
    return make(TransformStatus::Illegal, std::move(Why));
  }
  static TransformResult error(std::string Why) {
    return make(TransformStatus::Error, std::move(Why));
  }

  bool succeeded() const { return Status == TransformStatus::Success; }
  bool applied() const {
    return Status == TransformStatus::Success || Status == TransformStatus::NoOp;
  }
};

/// Options and shared state threaded through module invocations.
struct TransformContext {
  /// When true, modules refuse to transform code whose dependences cannot be
  /// computed (instead of trusting the programmer).
  bool RequireDeps = false;

  /// The enclosing program; used to look up declared element types when
  /// synthesizing temporaries (LICM, scalar replacement). May be null, in
  /// which case temporaries default to double.
  const cir::Program *Prog = nullptr;

  /// Named code snippets for BuiltIn.Altdesc; stands in for the external
  /// snippet files of Fig. 11 (scatter_DZG.txt, ...).
  std::map<std::string, std::string> Snippets;

  /// When true, the interpreter runs the CIR verifier after every mutating
  /// module call (LLVM's -verify-each discipline); a transformation that
  /// produces invalid IR fails at the rewrite that introduced it.
  bool VerifyEach = false;

  /// When true, Pragma.OMPFor attaches `omp parallel for` even to loops the
  /// parallel-safety analyzer proves racy (the programmer-knows-best escape
  /// hatch; the checksum validator still guards such variants). Default off:
  /// proven races are rejected with their witness.
  bool TrustParallel = false;

  /// When true, BuiltIn.Altdesc may resolve a snippet argument that is not a
  /// registered snippet name by reading it as a filesystem path. Off by
  /// default so search-driven module replay never touches the filesystem;
  /// the CLI turns it on (the paper's external snippet files, Fig. 11).
  bool AllowSnippetFiles = false;
};

/// Collects declared element types (globals plus every local declaration).
std::map<std::string, cir::ElemType> collectDeclTypes(const cir::Program &P);

/// Infers the element type of \p E: double when any referenced name is
/// declared double or a float literal appears, int otherwise.
cir::ElemType inferElemType(const cir::Expr &E,
                            const std::map<std::string, cir::ElemType> &Types);

/// Returns a variable name starting with \p Base that is not yet used
/// anywhere in \p Scope (appends _2, _3, ... on collision).
std::string freshName(const cir::Block &Scope, const std::string &Base);

} // namespace transform
} // namespace locus

#endif // LOCUS_TRANSFORM_TRANSFORM_H
