//===- AltdescPragmas.cpp - Altdesc and pragma modules ----------------------===//

#include "src/transform/AltdescPragmas.h"

#include "src/analysis/ParallelSafety.h"
#include "src/cir/Parser.h"
#include "src/cir/PathIndex.h"

#include <fstream>
#include <sstream>

namespace locus {
namespace transform {

using namespace cir;

TransformResult applyAltdesc(Block &Region, const AltdescArgs &Args,
                             const TransformContext &Ctx) {
  // Resolve the snippet text: registry first, then (only when the context
  // explicitly allows filesystem snippets) a file path, then treat the
  // string itself as inline code. Search-driven replay runs with
  // AllowSnippetFiles off so a snippet argument can never trigger
  // surprising filesystem reads in sandboxed runs.
  std::string Text;
  auto It = Ctx.Snippets.find(Args.Source);
  if (It != Ctx.Snippets.end()) {
    Text = It->second;
  } else {
    Text = Args.Source;
    if (Ctx.AllowSnippetFiles) {
      std::ifstream File(Args.Source);
      if (File) {
        std::ostringstream Buf;
        Buf << File.rdbuf();
        Text = Buf.str();
      }
    }
  }

  Expected<std::vector<StmtPtr>> Snippet = parseStatements(Text);
  if (!Snippet.ok())
    return TransformResult::error("Altdesc snippet does not parse: " +
                                  Snippet.message());

  if (Args.StmtPath.empty()) {
    Region.Stmts.clear();
    for (auto &S : *Snippet)
      Region.Stmts.push_back(std::move(S));
    return TransformResult::success();
  }

  Expected<StmtLocation> Loc = resolvePath(Region, Args.StmtPath);
  if (!Loc.ok())
    return TransformResult::error(Loc.message());
  // Replace the addressed statement with the snippet statements.
  Block *Parent = Loc->Parent;
  size_t Index = Loc->Index;
  Parent->Stmts.erase(Parent->Stmts.begin() + static_cast<long>(Index));
  for (size_t I = 0; I < Snippet->size(); ++I)
    Parent->Stmts.insert(Parent->Stmts.begin() + static_cast<long>(Index + I),
                         std::move((*Snippet)[I]));
  return TransformResult::success();
}

TransformResult applyPragma(Block &Region, const PragmaArgs &Args,
                            const TransformContext &Ctx) {
  (void)Ctx;
  if (Args.Text.empty())
    return TransformResult::error("empty pragma text");
  // Pragmas target loops; use the loop-wise path interpretation so paths
  // keep resolving after LICM hoisted statements between nest levels.
  Expected<ForStmt *> Loop = resolveLoopPathLoopwise(Region, Args.LoopPath);
  if (!Loop.ok())
    return TransformResult::error(Loop.message());
  Stmt *S = *Loop;
  for (const std::string &Existing : S->Pragmas)
    if (Existing == Args.Text)
      return TransformResult::noop("pragma already present");
  S->Pragmas.push_back(Args.Text);
  return TransformResult::success();
}

TransformResult applyOmpFor(Block &Region, const OmpForArgs &Args,
                            const TransformContext &Ctx) {
  if (!Args.Schedule.empty() && Args.Schedule != "static" &&
      Args.Schedule != "dynamic")
    return TransformResult::error("unsupported OpenMP schedule: " +
                                  Args.Schedule);

  // Parallel-safety gate: refuse to parallelize a loop with a proven
  // loop-carried dependence (the race witness travels in the message).
  // Unprovable loops proceed unless RequireDeps — the paper lets
  // programmers enforce transformations they know are legal — and
  // TrustParallel skips the gate entirely.
  Expected<ForStmt *> Loop = resolveLoopPathLoopwise(Region, Args.LoopPath);
  if (!Loop.ok())
    return TransformResult::error(Loop.message());
  if (!Ctx.TrustParallel) {
    analysis::ParallelSafetyReport Rep = analysis::analyzeParallelLoop(**Loop);
    if (Rep.Verdict == analysis::ParallelVerdict::Racy) {
      TransformResult R = TransformResult::illegal(
          "parallelizing loop '" + (*Loop)->Var + "' is racy: " +
          (Rep.Witnesses.empty() ? std::string("conflict detected")
                                 : Rep.Witnesses.front().render()));
      R.Loc = (*Loop)->Loc;
      return R;
    }
    if (Rep.Verdict == analysis::ParallelVerdict::Unknown && Ctx.RequireDeps) {
      TransformResult R = TransformResult::illegal(
          "cannot prove loop '" + (*Loop)->Var +
          "' safe to parallelize: " + Rep.WhyUnknown);
      R.Loc = (*Loop)->Loc;
      return R;
    }
  }

  std::string Text = "omp parallel for";
  if (!Args.Schedule.empty()) {
    Text += " schedule(" + Args.Schedule;
    if (Args.Chunk > 0)
      Text += "," + std::to_string(Args.Chunk);
    Text += ")";
  }
  PragmaArgs P;
  P.LoopPath = Args.LoopPath;
  P.Text = Text;
  return applyPragma(Region, P, Ctx);
}

} // namespace transform
} // namespace locus
