//===- Unroll.h - Loop unrolling and unroll-and-jam ------------*- C++ -*-===//
///
/// \file
/// RoseLocus.Unroll and RoseLocus.UnrollAndJam / Pips unroll-and-jam.
/// Unrolling replicates a loop body Factor times (with a remainder loop for
/// trip counts that do not divide); unroll-and-jam unrolls an outer loop and
/// fuses ("jams") the copies of its inner loops back together.
///
//===----------------------------------------------------------------------===//
#ifndef LOCUS_TRANSFORM_UNROLL_H
#define LOCUS_TRANSFORM_UNROLL_H

#include "src/transform/Transform.h"

#include <cstdint>
#include <string>

namespace locus {
namespace transform {

struct UnrollArgs {
  /// Path of the loop to unroll. The module layer expands the paper's
  /// "loop=innermost" and list-of-paths forms into repeated calls.
  std::string LoopPath = "0";
  int64_t Factor = 2;
};

TransformResult applyUnroll(cir::Block &Region, const UnrollArgs &Args,
                            const TransformContext &Ctx);

struct UnrollAndJamArgs {
  /// Path of the nest's outermost loop.
  std::string LoopPath = "0";
  /// 1-based depth of the loop to unroll-and-jam within the perfect nest
  /// (Fig. 13 passes this as an integer search variable).
  int Depth = 1;
  int64_t Factor = 2;
};

TransformResult applyUnrollAndJam(cir::Block &Region,
                                  const UnrollAndJamArgs &Args,
                                  const TransformContext &Ctx);

} // namespace transform
} // namespace locus

#endif // LOCUS_TRANSFORM_UNROLL_H
