//===- AltdescPragmas.h - Altdesc and pragma modules ------------*- C++ -*-===//
///
/// \file
/// BuiltIn.Altdesc splices an external code snippet into a region (used by
/// the Kripke experiment of Fig. 11 to insert per-layout address
/// computations). The Pragma modules attach compiler pragmas: ivdep and
/// vector always for vectorization, and omp parallel for with optional
/// schedule/chunk for parallel execution.
///
//===----------------------------------------------------------------------===//
#ifndef LOCUS_TRANSFORM_ALTDESCPRAGMAS_H
#define LOCUS_TRANSFORM_ALTDESCPRAGMAS_H

#include "src/transform/Transform.h"

#include <cstdint>
#include <string>

namespace locus {
namespace transform {

struct AltdescArgs {
  /// When non-empty, the path of the statement to replace; otherwise the
  /// whole region body is replaced.
  std::string StmtPath;
  /// Snippet source: looked up in TransformContext::Snippets first; when
  /// absent there, treated as inline MiniC statements.
  std::string Source;
};

TransformResult applyAltdesc(cir::Block &Region, const AltdescArgs &Args,
                             const TransformContext &Ctx);

struct PragmaArgs {
  std::string LoopPath = "0";
  /// The pragma text to attach, e.g. "ivdep" or "omp parallel for".
  std::string Text;
};

/// Attaches \p Args.Text as a pragma on the loop at the path.
TransformResult applyPragma(cir::Block &Region, const PragmaArgs &Args,
                            const TransformContext &Ctx);

struct OmpForArgs {
  std::string LoopPath = "0";
  /// "static", "dynamic" or empty (compiler default).
  std::string Schedule;
  /// Chunk size; <= 0 means unspecified.
  int64_t Chunk = 0;
};

/// Attaches "omp parallel for [schedule(...)]" to the loop at the path.
TransformResult applyOmpFor(cir::Block &Region, const OmpForArgs &Args,
                            const TransformContext &Ctx);

} // namespace transform
} // namespace locus

#endif // LOCUS_TRANSFORM_ALTDESCPRAGMAS_H
