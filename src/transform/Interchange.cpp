//===- Interchange.cpp - Loop interchange ----------------------------------===//

#include "src/transform/Interchange.h"

#include "src/analysis/Dependence.h"
#include "src/cir/AstUtils.h"
#include "src/cir/PathIndex.h"

#include <algorithm>
#include <set>

namespace locus {
namespace transform {

using namespace cir;

TransformResult applyInterchange(Block &Region, const InterchangeArgs &Args,
                                 const TransformContext &Ctx) {
  Expected<ForStmt *> Root = resolveLoopPath(Region, Args.LoopPath);
  if (!Root.ok())
    return TransformResult::error(Root.message());

  std::vector<ForStmt *> Nest = perfectNest(**Root);
  const std::vector<int> &Order = Args.Order;
  if (Order.empty())
    return TransformResult::error("interchange requires an order argument");
  if (Order.size() > Nest.size())
    return TransformResult::error(
        "interchange order names " + std::to_string(Order.size()) +
        " loops but the perfect nest has depth " + std::to_string(Nest.size()));

  // Order must be a permutation of 0..k-1.
  std::vector<int> Sorted = Order;
  std::sort(Sorted.begin(), Sorted.end());
  for (size_t I = 0; I < Sorted.size(); ++I)
    if (Sorted[I] != static_cast<int>(I))
      return TransformResult::error("interchange order is not a permutation");

  if (std::is_sorted(Order.begin(), Order.end()))
    return TransformResult::noop("identity permutation");

  // Structural legality: the bounds of the loop placed at position p may only
  // reference induction variables of loops placed before p.
  for (size_t P = 0; P < Order.size(); ++P) {
    const ForStmt *Moved = Nest[static_cast<size_t>(Order[P])];
    std::set<std::string> BoundVars;
    collectVars(*Moved->Init, BoundVars);
    collectVars(*Moved->Bound, BoundVars);
    for (size_t Later = P; Later < Order.size(); ++Later) {
      const ForStmt *Inner = Nest[static_cast<size_t>(Order[Later])];
      if (Later > P && BoundVars.count(Inner->Var))
        return TransformResult::illegal(
            "loop " + Moved->Var + " has bounds depending on " + Inner->Var +
            " which would move inside it");
    }
    // Bounds must also not reference variables of loops that the permutation
    // pushes deeper than the moved loop (loops after the permuted band keep
    // their position, so only the band matters).
  }

  // Dependence legality.
  std::optional<analysis::DependenceInfo> Deps =
      analysis::DependenceInfo::compute(**Root);
  if (!Deps) {
    if (Ctx.RequireDeps)
      return TransformResult::illegal(
          "dependences unavailable; refusing interchange");
  } else if (!Deps->interchangeLegal(Order)) {
    return TransformResult::illegal("interchange violates a dependence");
  }

  // Permute the headers, leaving bodies in place.
  struct Header {
    std::string Var;
    ExprPtr Init;
    BoundOp Op;
    ExprPtr Bound;
    int64_t Step;
  };
  std::vector<Header> Headers;
  Headers.reserve(Order.size());
  for (size_t P = 0; P < Order.size(); ++P) {
    ForStmt *Src = Nest[static_cast<size_t>(Order[P])];
    Headers.push_back(Header{Src->Var, Src->Init->clone(), Src->Op,
                             Src->Bound->clone(), Src->Step});
  }
  for (size_t P = 0; P < Order.size(); ++P) {
    ForStmt *Dst = Nest[P];
    Dst->Var = Headers[P].Var;
    Dst->Init = std::move(Headers[P].Init);
    Dst->Op = Headers[P].Op;
    Dst->Bound = std::move(Headers[P].Bound);
    Dst->Step = Headers[P].Step;
  }
  return TransformResult::success();
}

} // namespace transform
} // namespace locus
