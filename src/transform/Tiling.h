//===- Tiling.h - Rectangular loop tiling ----------------------*- C++ -*-===//
///
/// \file
/// Loop tiling in two forms, matching the paper's two call shapes:
///  - Band form (Pips.Tiling / RoseLocus.Tiling with a factor list):
///    "Tiling(loop="0", factor=[tileI, tileK, tileJ])" tiles the first k
///    loops of the perfect nest at the path with the given tile sizes,
///    producing k tile-controlling loops followed by k intra-tile loops.
///  - Single-loop form (RoseLocus.Tiling with an integer loop index, as in
///    Fig. 13): "Tiling(loop=d, factor=f)" strip-mines the d-th loop
///    (1-based) and hoists its tile-controlling loop outermost.
///
//===----------------------------------------------------------------------===//
#ifndef LOCUS_TRANSFORM_TILING_H
#define LOCUS_TRANSFORM_TILING_H

#include "src/transform/Transform.h"

#include <cstdint>
#include <string>
#include <vector>

namespace locus {
namespace transform {

struct TilingArgs {
  /// Path of the nest's outermost loop (band form).
  std::string LoopPath = "0";
  /// Tile sizes for the band form; one per tiled loop, outermost first.
  /// A factor of 1 leaves that loop untiled.
  std::vector<int64_t> Factors;
  /// When >= 1, single-loop form: the 1-based depth of the loop to tile;
  /// Factors must then hold exactly one tile size.
  int SingleLoopDepth = -1;
};

TransformResult applyTiling(cir::Block &Region, const TilingArgs &Args,
                            const TransformContext &Ctx);

} // namespace transform
} // namespace locus

#endif // LOCUS_TRANSFORM_TILING_H
