//===- LicmScalarRepl.h - LICM and scalar replacement ----------*- C++ -*-===//
///
/// \file
/// RoseLocus.LICM hoists loop-invariant statements and subexpressions to the
/// most efficient level of the nest (processing loops from the innermost
/// outward so hoists cascade upward, as used on Kripke in Fig. 11).
/// RoseLocus.ScalarRepl replaces array references whose subscripts are
/// invariant in the innermost loop with scalar temporaries (the classic
/// register-promotion of the C[i][j] reduction in matmul).
///
//===----------------------------------------------------------------------===//
#ifndef LOCUS_TRANSFORM_LICMSCALARREPL_H
#define LOCUS_TRANSFORM_LICMSCALARREPL_H

#include "src/transform/Transform.h"

namespace locus {
namespace transform {

struct LicmArgs {
  /// Minimum operation count for a hoisted subexpression (whole-statement
  /// hoists ignore this).
  int MinOps = 1;
};

TransformResult applyLicm(cir::Block &Region, const LicmArgs &Args,
                          const TransformContext &Ctx);

struct ScalarReplArgs {};

TransformResult applyScalarRepl(cir::Block &Region, const ScalarReplArgs &Args,
                                const TransformContext &Ctx);

} // namespace transform
} // namespace locus

#endif // LOCUS_TRANSFORM_LICMSCALARREPL_H
