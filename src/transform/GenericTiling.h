//===- GenericTiling.h - Skewed (time) tiling -------------------*- C++ -*-===//
///
/// \file
/// Pips.GenericTiling: tiling driven by a transformation matrix, as used for
/// the stencil experiments (Fig. 9). The matrix's diagonal holds the tile
/// sizes; a negative entry M[r][c] = -k * M[r][r] skews loop r by factor k
/// with respect to loop c before tiling ("Skewing-1" uses factor 1 against
/// the time loop). The generated code enumerates tiles lexicographically and
/// clamps intra-tile bounds with min/max, the classic skewed-tiling shape.
///
/// Like Pips, the module trusts the user-provided matrix when dependences
/// cannot be computed (stencils with modulo-indexed time buffers); semantic
/// equivalence is validated by the test suite instead.
///
//===----------------------------------------------------------------------===//
#ifndef LOCUS_TRANSFORM_GENERICTILING_H
#define LOCUS_TRANSFORM_GENERICTILING_H

#include "src/transform/Transform.h"

#include <cstdint>
#include <string>
#include <vector>

namespace locus {
namespace transform {

struct GenericTilingArgs {
  std::string LoopPath = "0";
  /// Square lower-triangular matrix; Matrix[r][r] > 0 is loop r's tile size,
  /// Matrix[r][c] (c < r) is -skew * Matrix[r][r].
  std::vector<std::vector<int64_t>> Matrix;
};

TransformResult applyGenericTiling(cir::Block &Region,
                                   const GenericTilingArgs &Args,
                                   const TransformContext &Ctx);

} // namespace transform
} // namespace locus

#endif // LOCUS_TRANSFORM_GENERICTILING_H
