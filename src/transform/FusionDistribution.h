//===- FusionDistribution.h - Loop fusion and distribution -----*- C++ -*-===//
///
/// \file
/// Pips.Fusion merges two adjacent loops with identical headers;
/// RoseLocus.Distribute splits a loop's body statements into separate loops
/// (grouped by dependence SCCs so cyclically dependent statements stay
/// together, and scalar-linked statements are never separated).
///
//===----------------------------------------------------------------------===//
#ifndef LOCUS_TRANSFORM_FUSIONDISTRIBUTION_H
#define LOCUS_TRANSFORM_FUSIONDISTRIBUTION_H

#include "src/transform/Transform.h"

#include <string>

namespace locus {
namespace transform {

struct FusionArgs {
  /// Path of the first loop; it fuses with its immediately following sibling.
  std::string LoopPath = "0";
};

TransformResult applyFusion(cir::Block &Region, const FusionArgs &Args,
                            const TransformContext &Ctx);

struct DistributionArgs {
  /// Path of the loop whose body is distributed.
  std::string LoopPath = "0";
};

TransformResult applyDistribution(cir::Block &Region,
                                  const DistributionArgs &Args,
                                  const TransformContext &Ctx);

} // namespace transform
} // namespace locus

#endif // LOCUS_TRANSFORM_FUSIONDISTRIBUTION_H
