//===- LicmScalarRepl.cpp - LICM and scalar replacement ---------------------===//

#include "src/transform/LicmScalarRepl.h"

#include "src/cir/AstUtils.h"
#include "src/cir/PathIndex.h"
#include "src/cir/Printer.h"

#include <algorithm>
#include <map>
#include <set>

namespace locus {
namespace transform {

using namespace cir;

namespace {

/// Names that vary inside a loop: its induction variable, every nested
/// loop's induction variable, and every scalar assigned in the body.
struct LoopVariance {
  std::set<std::string> VariantScalars;
  std::set<std::string> WrittenArrays;

  explicit LoopVariance(ForStmt &Loop) {
    VariantScalars.insert(Loop.Var);
    forEachStmt(*Loop.Body, [&](Stmt &S) {
      if (auto *For = dyn_cast<ForStmt>(&S))
        VariantScalars.insert(For->Var);
      if (auto *D = dyn_cast<DeclStmt>(&S))
        VariantScalars.insert(D->Name);
      if (auto *A = dyn_cast<AssignStmt>(&S)) {
        if (auto *V = dyn_cast<VarRef>(A->Lhs.get()))
          VariantScalars.insert(V->Name);
        if (auto *Arr = dyn_cast<ArrayRef>(A->Lhs.get()))
          WrittenArrays.insert(Arr->Name);
      }
    });
  }

  bool isInvariant(const Expr &E) const {
    std::set<std::string> Vars, Arrays;
    collectVars(E, Vars);
    collectArrays(E, Arrays);
    for (const std::string &V : Vars)
      if (VariantScalars.count(V))
        return false;
    for (const std::string &A : Arrays)
      if (WrittenArrays.count(A))
        return false;
    // Unknown calls are not movable.
    bool HasUnknownCall = false;
    const std::function<void(const Expr &)> Scan = [&](const Expr &Sub) {
      if (const auto *C = dyn_cast<CallExpr>(&Sub)) {
        if (C->Callee != "min" && C->Callee != "max")
          HasUnknownCall = true;
        for (const auto &Arg : C->Args)
          Scan(*Arg);
      } else if (const auto *B = dyn_cast<BinaryExpr>(&Sub)) {
        Scan(*B->Lhs);
        Scan(*B->Rhs);
      } else if (const auto *U = dyn_cast<UnaryExpr>(&Sub)) {
        Scan(*U->Operand);
      } else if (const auto *Arr = dyn_cast<ArrayRef>(&Sub)) {
        for (const auto &I : Arr->Indices)
          Scan(*I);
      }
    };
    Scan(E);
    return !HasUnknownCall;
  }
};

/// Counts arithmetic operations in an expression.
int opCount(const Expr &E) {
  switch (E.kind()) {
  case ExprKind::Binary:
    return 1 + opCount(*cast<BinaryExpr>(&E)->Lhs) +
           opCount(*cast<BinaryExpr>(&E)->Rhs);
  case ExprKind::Unary:
    return 1 + opCount(*cast<UnaryExpr>(&E)->Operand);
  case ExprKind::Call: {
    int N = 1;
    for (const auto &A : cast<CallExpr>(&E)->Args)
      N += opCount(*A);
    return N;
  }
  default:
    return 0;
  }
}

/// Counts assignments to scalar \p Name in the loop body.
int scalarAssignCount(ForStmt &Loop, const std::string &Name) {
  int Count = 0;
  forEachStmt(*Loop.Body, [&](Stmt &S) {
    if (auto *A = dyn_cast<AssignStmt>(&S))
      if (auto *V = dyn_cast<VarRef>(A->Lhs.get()))
        if (V->Name == Name)
          ++Count;
    if (auto *D = dyn_cast<DeclStmt>(&S))
      if (D->Name == Name && D->Init)
        ++Count;
  });
  return Count;
}

/// One LICM pass over a single loop; returns the number of hoists.
int hoistFromLoop(Block &Region, ForStmt &Loop, int MinOps,
                  const std::map<std::string, ElemType> &Types) {
  std::optional<StmtLocation> Loc = locateStmt(Region, &Loop);
  if (!Loc)
    return 0;
  int Hoists = 0;

  // Phase 1: whole-statement hoisting of invariant scalar definitions that
  // sit directly in the loop body.
  for (size_t I = 0; I < Loop.Body->Stmts.size();) {
    Stmt *S = Loop.Body->Stmts[I].get();
    std::string DefName;
    const Expr *Rhs = nullptr;
    if (auto *A = dyn_cast<AssignStmt>(S)) {
      if (A->Op == AssignOp::Set)
        if (auto *V = dyn_cast<VarRef>(A->Lhs.get())) {
          DefName = V->Name;
          Rhs = A->Rhs.get();
        }
    } else if (auto *D = dyn_cast<DeclStmt>(S)) {
      if (D->Init && !D->isArray()) {
        DefName = D->Name;
        Rhs = D->Init.get();
      }
    }
    bool Hoist = false;
    if (Rhs && !DefName.empty()) {
      LoopVariance Variance(Loop);
      // The defined name itself is variant (it is assigned); temporarily
      // treat it as hoistable when this is its only definition.
      if (scalarAssignCount(Loop, DefName) == 1) {
        Variance.VariantScalars.erase(DefName);
        Hoist = Variance.isInvariant(*Rhs) && !referencesVar(*Rhs, DefName);
      }
    }
    if (Hoist) {
      StmtPtr Moved = std::move(Loop.Body->Stmts[I]);
      Loop.Body->Stmts.erase(Loop.Body->Stmts.begin() + static_cast<long>(I));
      Loc->Parent->Stmts.insert(Loc->Parent->Stmts.begin() +
                                    static_cast<long>(Loc->Index),
                                std::move(Moved));
      ++Loc->Index;
      ++Hoists;
      continue;
    }
    ++I;
  }
  if (Loop.Body->Stmts.empty())
    return Hoists;

  // Phase 2: hoist maximal invariant subexpressions into fresh temporaries.
  LoopVariance Variance(Loop);
  std::vector<ExprPtr> Candidates;
  auto HasUnsafeDiv = [](const Expr &E) {
    bool Unsafe = false;
    const std::function<void(const Expr &)> Scan = [&](const Expr &Sub) {
      if (const auto *B = dyn_cast<BinaryExpr>(&Sub)) {
        if ((B->Op == BinOp::Div || B->Op == BinOp::Mod) &&
            !evalConstInt(*B->Rhs))
          Unsafe = true;
        Scan(*B->Lhs);
        Scan(*B->Rhs);
      } else if (const auto *U = dyn_cast<UnaryExpr>(&Sub)) {
        Scan(*U->Operand);
      } else if (const auto *C = dyn_cast<CallExpr>(&Sub)) {
        for (const auto &A : C->Args)
          Scan(*A);
      } else if (const auto *A = dyn_cast<ArrayRef>(&Sub)) {
        for (const auto &I : A->Indices)
          Scan(*I);
      }
    };
    Scan(E);
    return Unsafe;
  };
  auto Consider = [&](const Expr &E) {
    if (opCount(E) < std::max(MinOps, 1))
      return false;
    if (!Variance.isInvariant(E))
      return false;
    // Speculative hoisting must not introduce a division fault.
    if (HasUnsafeDiv(E))
      return false;
    for (const auto &C : Candidates)
      if (exprEquals(*C, E))
        return true; // already collected
    Candidates.push_back(E.clone());
    return true;
  };
  // Find maximal invariant subtrees.
  const std::function<void(const Expr &)> Scan = [&](const Expr &E) {
    if (Consider(E))
      return; // maximal: do not descend
    switch (E.kind()) {
    case ExprKind::Binary:
      Scan(*cast<BinaryExpr>(&E)->Lhs);
      Scan(*cast<BinaryExpr>(&E)->Rhs);
      return;
    case ExprKind::Unary:
      Scan(*cast<UnaryExpr>(&E)->Operand);
      return;
    case ExprKind::Call:
      for (const auto &A : cast<CallExpr>(&E)->Args)
        Scan(*A);
      return;
    case ExprKind::ArrayRef:
      for (const auto &I : cast<ArrayRef>(&E)->Indices)
        Scan(*I);
      return;
    default:
      return;
    }
  };
  forEachStmt(*Loop.Body, [&](Stmt &S) {
    // Loop headers of nested loops are scanned too (their bounds repeat).
    if (auto *A = dyn_cast<AssignStmt>(&S)) {
      Scan(*A->Rhs);
      if (auto *Arr = dyn_cast<ArrayRef>(A->Lhs.get()))
        for (const auto &I : Arr->Indices)
          Scan(*I);
    } else if (auto *D = dyn_cast<DeclStmt>(&S)) {
      if (D->Init)
        Scan(*D->Init);
    }
  });

  for (ExprPtr &Candidate : Candidates) {
    std::string Temp = freshName(Region, "licm");
    ElemType Elem = inferElemType(*Candidate, Types);
    auto Decl = std::make_unique<DeclStmt>(Elem, Temp, std::vector<int64_t>{},
                                           Candidate->clone());
    Loc->Parent->Stmts.insert(Loc->Parent->Stmts.begin() +
                                  static_cast<long>(Loc->Index),
                              std::move(Decl));
    ++Loc->Index;
    // Replace every occurrence inside the loop body.
    VarRef Repl(Temp);
    forEachStmt(*Loop.Body, [&](Stmt &S) {
      forEachExpr(S, [&](ExprPtr &E) {
        const std::function<ExprPtr(ExprPtr)> Rewrite =
            [&](ExprPtr Sub) -> ExprPtr {
          if (exprEquals(*Sub, *Candidate))
            return Repl.clone();
          switch (Sub->kind()) {
          case ExprKind::Binary: {
            auto *B = cast<BinaryExpr>(Sub.get());
            B->Lhs = Rewrite(std::move(B->Lhs));
            B->Rhs = Rewrite(std::move(B->Rhs));
            return Sub;
          }
          case ExprKind::Unary: {
            auto *U = cast<UnaryExpr>(Sub.get());
            U->Operand = Rewrite(std::move(U->Operand));
            return Sub;
          }
          case ExprKind::Call: {
            auto *C = cast<CallExpr>(Sub.get());
            for (auto &A : C->Args)
              A = Rewrite(std::move(A));
            return Sub;
          }
          case ExprKind::ArrayRef: {
            auto *A = cast<ArrayRef>(Sub.get());
            for (auto &I : A->Indices)
              I = Rewrite(std::move(I));
            return Sub;
          }
          default:
            return Sub;
          }
        };
        E = Rewrite(std::move(E));
      });
    });
    ++Hoists;
  }
  return Hoists;
}

} // namespace

TransformResult applyLicm(Block &Region, const LicmArgs &Args,
                          const TransformContext &Ctx) {
  std::map<std::string, ElemType> Types;
  if (Ctx.Prog)
    Types = collectDeclTypes(*Ctx.Prog);

  int TotalHoists = 0;
  // Iterate to a fixpoint so hoists cascade from inner loops to outer ones.
  for (int Pass = 0; Pass < 8; ++Pass) {
    // Deepest loops first.
    std::vector<LoopEntry> Loops = listLoops(Region);
    std::stable_sort(Loops.begin(), Loops.end(),
                     [](const LoopEntry &A, const LoopEntry &B) {
                       return A.Path.size() > B.Path.size();
                     });
    int Hoists = 0;
    for (LoopEntry &L : Loops)
      Hoists += hoistFromLoop(Region, *L.Loop, Args.MinOps, Types);
    TotalHoists += Hoists;
    if (Hoists == 0)
      break;
  }
  if (TotalHoists == 0)
    return TransformResult::noop("no loop-invariant code found");
  return TransformResult::success();
}

TransformResult applyScalarRepl(Block &Region, const ScalarReplArgs &Args,
                                const TransformContext &Ctx) {
  (void)Args;
  std::map<std::string, ElemType> Types;
  if (Ctx.Prog)
    Types = collectDeclTypes(*Ctx.Prog);

  int Replacements = 0;
  for (int Pass = 0; Pass < 4; ++Pass) {
    std::vector<LoopEntry> Inner = listInnerLoops(Region);
    int PassReplacements = 0;
    for (LoopEntry &Entry : Inner) {
      ForStmt &Loop = *Entry.Loop;
      std::optional<StmtLocation> Loc = locateStmt(Region, &Loop);
      if (!Loc)
        continue;

      // Group references per array; only arrays whose every reference in the
      // loop has identical, loop-invariant subscripts are replaceable.
      struct Group {
        const ArrayRef *Representative = nullptr;
        bool Written = false;
        bool Uniform = true;
      };
      std::map<std::string, Group> Groups;
      LoopVariance Variance(Loop);
      forEachStmt(*Loop.Body, [&](Stmt &S) {
        forEachExpr(S, [&](ExprPtr &E) {
          const std::function<void(const Expr &, bool)> Visit =
              [&](const Expr &Sub, bool IsLhs) {
                if (const auto *A = dyn_cast<ArrayRef>(&Sub)) {
                  Group &G = Groups[A->Name];
                  if (!G.Representative)
                    G.Representative = A;
                  else if (!exprEquals(*G.Representative, *A))
                    G.Uniform = false;
                  if (IsLhs)
                    G.Written = true;
                  for (const auto &I : A->Indices)
                    Visit(*I, false);
                  return;
                }
                if (const auto *B = dyn_cast<BinaryExpr>(&Sub)) {
                  Visit(*B->Lhs, false);
                  Visit(*B->Rhs, false);
                } else if (const auto *U = dyn_cast<UnaryExpr>(&Sub)) {
                  Visit(*U->Operand, false);
                } else if (const auto *C = dyn_cast<CallExpr>(&Sub)) {
                  for (const auto &Arg : C->Args)
                    Visit(*Arg, false);
                }
              };
          bool IsLhsExpr = false;
          if (auto *A = dyn_cast<AssignStmt>(&S))
            IsLhsExpr = (A->Lhs == E);
          Visit(*E, IsLhsExpr);
        });
      });

      for (auto &[Name, G] : Groups) {
        if (!G.Uniform || !G.Representative)
          continue;
        // Subscripts must be invariant in this loop.
        bool Invariant = true;
        for (const auto &I : G.Representative->Indices)
          if (!Variance.isInvariant(*I))
            Invariant = false;
        if (!Invariant || G.Representative->Indices.empty())
          continue;

        std::string Temp = freshName(Region, "sr");
        ElemType Elem = Types.count(Name) ? Types.at(Name) : ElemType::Double;
        ExprPtr RefClone = G.Representative->clone();
        auto Preload = std::make_unique<DeclStmt>(
            Elem, Temp, std::vector<int64_t>{}, RefClone->clone());
        bool Written = G.Written;

        // Replace all matching references by the temporary.
        VarRef Repl(Temp);
        const Expr &Pattern = *RefClone;
        forEachStmt(*Loop.Body, [&](Stmt &S) {
          forEachExpr(S, [&](ExprPtr &E) {
            const std::function<ExprPtr(ExprPtr)> Rewrite =
                [&](ExprPtr Sub) -> ExprPtr {
              if (exprEquals(*Sub, Pattern))
                return Repl.clone();
              switch (Sub->kind()) {
              case ExprKind::Binary: {
                auto *B = cast<BinaryExpr>(Sub.get());
                B->Lhs = Rewrite(std::move(B->Lhs));
                B->Rhs = Rewrite(std::move(B->Rhs));
                return Sub;
              }
              case ExprKind::Unary: {
                auto *U = cast<UnaryExpr>(Sub.get());
                U->Operand = Rewrite(std::move(U->Operand));
                return Sub;
              }
              case ExprKind::Call: {
                auto *C = cast<CallExpr>(Sub.get());
                for (auto &A : C->Args)
                  A = Rewrite(std::move(A));
                return Sub;
              }
              case ExprKind::ArrayRef: {
                auto *A = cast<ArrayRef>(Sub.get());
                for (auto &I : A->Indices)
                  I = Rewrite(std::move(I));
                return Sub;
              }
              default:
                return Sub;
              }
            };
            E = Rewrite(std::move(E));
          });
        });

        Loc->Parent->Stmts.insert(Loc->Parent->Stmts.begin() +
                                      static_cast<long>(Loc->Index),
                                  std::move(Preload));
        ++Loc->Index;
        if (Written) {
          auto Store = std::make_unique<AssignStmt>(
              RefClone->clone(), AssignOp::Set, Repl.clone());
          Loc->Parent->Stmts.insert(Loc->Parent->Stmts.begin() +
                                        static_cast<long>(Loc->Index + 1),
                                    std::move(Store));
        }
        ++PassReplacements;
        break; // indices shifted; redo discovery in the next pass
      }
    }
    Replacements += PassReplacements;
    if (PassReplacements == 0)
      break;
  }
  if (Replacements == 0)
    return TransformResult::noop("no scalar-replaceable references");
  return TransformResult::success();
}

} // namespace transform
} // namespace locus
