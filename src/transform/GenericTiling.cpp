//===- GenericTiling.cpp - Skewed (time) tiling ------------------------------===//

#include "src/transform/GenericTiling.h"

#include "src/analysis/Dependence.h"
#include "src/cir/AstUtils.h"
#include "src/cir/PathIndex.h"

#include <set>

namespace locus {
namespace transform {

using namespace cir;

namespace {

ExprPtr exclusiveBound(const ForStmt &Loop) {
  if (Loop.Op == BoundOp::Lt)
    return Loop.Bound->clone();
  return foldExpr(makeBin(BinOp::Add, Loop.Bound->clone(), makeInt(1)));
}

} // namespace

TransformResult applyGenericTiling(Block &Region,
                                   const GenericTilingArgs &Args,
                                   const TransformContext &Ctx) {
  Expected<StmtLocation> Loc = resolvePath(Region, Args.LoopPath);
  if (!Loc.ok())
    return TransformResult::error(Loc.message());
  auto *Root = dyn_cast<ForStmt>(Loc->get());
  if (!Root)
    return TransformResult::error("generic tiling path does not address a loop");

  const auto &M = Args.Matrix;
  size_t K = M.size();
  if (K == 0)
    return TransformResult::error("generic tiling requires a matrix");
  for (const auto &Row : M)
    if (Row.size() != K)
      return TransformResult::error("generic tiling matrix must be square");

  std::vector<ForStmt *> Nest = perfectNest(*Root);
  if (K > Nest.size())
    return TransformResult::error(
        "matrix rank " + std::to_string(K) + " exceeds perfect nest depth " +
        std::to_string(Nest.size()));
  for (size_t R = 0; R < K; ++R)
    if (Nest[R]->Step != 1)
      return TransformResult::error("generic tiling requires unit-step loops");

  // Decode tile sizes and skew factors.
  std::vector<int64_t> Tile(K);
  std::vector<std::vector<int64_t>> Skew(K, std::vector<int64_t>(K, 0));
  for (size_t R = 0; R < K; ++R) {
    if (M[R][R] <= 0)
      return TransformResult::error("matrix diagonal must be positive");
    Tile[R] = M[R][R];
    for (size_t C = 0; C < K; ++C) {
      if (C == R)
        continue;
      if (C > R) {
        if (M[R][C] != 0)
          return TransformResult::error(
              "generic tiling matrix must be lower triangular");
        continue;
      }
      if (M[R][C] > 0 || (-M[R][C]) % M[R][R] != 0)
        return TransformResult::error(
            "off-diagonal entries must be non-positive multiples of the "
            "diagonal");
      Skew[R][C] = -M[R][C] / M[R][R];
    }
  }

  // Band bounds must not reference band induction variables (the skewed tile
  // space is enumerated rectangularly).
  std::set<std::string> BandVars;
  for (size_t R = 0; R < K; ++R)
    BandVars.insert(Nest[R]->Var);
  for (size_t R = 0; R < K; ++R) {
    std::set<std::string> BoundVars;
    collectVars(*Nest[R]->Init, BoundVars);
    collectVars(*Nest[R]->Bound, BoundVars);
    for (const std::string &V : BoundVars)
      if (BandVars.count(V))
        return TransformResult::error(
            "band loop bounds must be band-invariant for generic tiling");
  }

  // When dependences are computable and no skewing is requested, fall back
  // to the rectangular permutability check.
  bool AnySkew = false;
  for (size_t R = 0; R < K; ++R)
    for (size_t C = 0; C < K; ++C)
      if (Skew[R][C] != 0)
        AnySkew = true;
  std::optional<analysis::DependenceInfo> Deps =
      analysis::DependenceInfo::compute(*Root);
  if (Deps && !AnySkew && !Deps->tilingLegal(0, K - 1))
    return TransformResult::illegal("tiled band is not fully permutable");
  if (!Deps && Ctx.RequireDeps)
    return TransformResult::illegal(
        "dependences unavailable; refusing generic tiling");

  // Original bound expressions (exclusive) and lower bounds per band loop.
  std::vector<ExprPtr> Lower(K), Upper(K);
  for (size_t R = 0; R < K; ++R) {
    Lower[R] = Nest[R]->Init->clone();
    Upper[R] = exclusiveBound(*Nest[R]);
  }

  // Substitution of original induction variables by their skewed
  // reconstruction: v_r = vS_r - sum_c Skew[r][c] * subst(v_c).
  std::vector<std::string> IntraVar(K); // name used inside generated code
  std::vector<ExprPtr> Reconstruct(K);  // expression giving original v_r
  for (size_t R = 0; R < K; ++R) {
    bool Skewed = false;
    for (size_t C = 0; C < R; ++C)
      if (Skew[R][C] != 0)
        Skewed = true;
    if (!Skewed) {
      IntraVar[R] = Nest[R]->Var;
      Reconstruct[R] = makeVar(Nest[R]->Var);
      continue;
    }
    IntraVar[R] = freshName(Region, Nest[R]->Var + "s");
    ExprPtr Expr = makeVar(IntraVar[R]);
    for (size_t C = 0; C < R; ++C) {
      if (Skew[R][C] == 0)
        continue;
      Expr = makeBin(BinOp::Sub, std::move(Expr),
                     makeBin(BinOp::Mul, makeInt(Skew[R][C]),
                             Reconstruct[C]->clone()));
    }
    Reconstruct[R] = foldExpr(std::move(Expr));
  }

  // Skew offset expressions in terms of generated intra variables:
  // off_r = sum_c Skew[r][c] * Reconstruct[c].
  auto SkewOffset = [&](size_t R) -> ExprPtr {
    ExprPtr Off = makeInt(0);
    for (size_t C = 0; C < R; ++C) {
      if (Skew[R][C] == 0)
        continue;
      Off = makeBin(BinOp::Add, std::move(Off),
                    makeBin(BinOp::Mul, makeInt(Skew[R][C]),
                            Reconstruct[C]->clone()));
    }
    return foldExpr(std::move(Off));
  };
  // Constant-direction extreme of the skew offset over the whole space,
  // using the band lower/upper bounds (for tile-loop ranges).
  auto SkewExtreme = [&](size_t R, bool Max) -> ExprPtr {
    ExprPtr Off = makeInt(0);
    for (size_t C = 0; C < R; ++C) {
      if (Skew[R][C] == 0)
        continue;
      // Skew factors are non-negative, so the extreme follows the loop's.
      ExprPtr Extent =
          Max ? foldExpr(makeBin(BinOp::Sub, Upper[C]->clone(), makeInt(1)))
              : Lower[C]->clone();
      Off = makeBin(BinOp::Add, std::move(Off),
                    makeBin(BinOp::Mul, makeInt(Skew[R][C]),
                            std::move(Extent)));
    }
    return foldExpr(std::move(Off));
  };

  // Build the loop structure: K tile loops then K intra-tile loops.
  struct Header {
    std::string Var;
    ExprPtr Init;
    ExprPtr BoundExcl;
    int64_t Step;
  };
  std::vector<Header> Headers;
  std::vector<std::string> TileVars(K);
  for (size_t R = 0; R < K; ++R) {
    TileVars[R] = freshName(Region, Nest[R]->Var + "t");
    ExprPtr Lo = foldExpr(
        makeBin(BinOp::Add, Lower[R]->clone(), SkewExtreme(R, /*Max=*/false)));
    ExprPtr Hi = foldExpr(
        makeBin(BinOp::Add, Upper[R]->clone(), SkewExtreme(R, /*Max=*/true)));
    Headers.push_back(Header{TileVars[R], std::move(Lo), std::move(Hi),
                             Tile[R]});
  }
  for (size_t R = 0; R < K; ++R) {
    ExprPtr Off = SkewOffset(R);
    ExprPtr Lo = foldExpr(makeMax(
        foldExpr(makeBin(BinOp::Add, Lower[R]->clone(), Off->clone())),
        makeVar(TileVars[R])));
    ExprPtr Hi = foldExpr(makeMin(
        foldExpr(makeBin(BinOp::Add, Upper[R]->clone(), Off->clone())),
        makeBin(BinOp::Add, makeVar(TileVars[R]), makeInt(Tile[R]))));
    Headers.push_back(Header{IntraVar[R], std::move(Lo), std::move(Hi), 1});
  }

  // Remaining (untiled) nest levels keep their headers, with band variables
  // rewritten to their reconstructions.
  std::vector<Header> Tail;
  for (size_t R = K; R < Nest.size(); ++R) {
    ExprPtr Init = Nest[R]->Init->clone();
    ExprPtr Bound = exclusiveBound(*Nest[R]);
    for (size_t C = 0; C < K; ++C) {
      if (IntraVar[C] == Nest[C]->Var)
        continue;
      Init = substituteVar(std::move(Init), Nest[C]->Var, *Reconstruct[C]);
      Bound = substituteVar(std::move(Bound), Nest[C]->Var, *Reconstruct[C]);
    }
    Tail.push_back(Header{Nest[R]->Var, foldExpr(std::move(Init)),
                          foldExpr(std::move(Bound)), Nest[R]->Step});
  }

  // Innermost body with band variables reconstructed.
  std::unique_ptr<Block> Body = std::move(Nest.back()->Body);
  for (size_t C = 0; C < K; ++C) {
    if (IntraVar[C] == Nest[C]->Var)
      continue;
    substituteVarInStmt(*Body, Nest[C]->Var, *Reconstruct[C]);
  }
  forEachStmt(*Body, [](Stmt &S) {
    forEachExpr(S, [](ExprPtr &E) { E = foldExpr(std::move(E)); });
  });

  // Assemble inside out.
  std::unique_ptr<Block> Current = std::move(Body);
  auto Wrap = [&](Header &H) {
    auto Loop = std::make_unique<ForStmt>(H.Var, std::move(H.Init),
                                          BoundOp::Lt, std::move(H.BoundExcl),
                                          H.Step, std::move(Current));
    Current = std::make_unique<Block>();
    Current->Stmts.push_back(std::move(Loop));
  };
  for (size_t I = Tail.size(); I-- > 0;)
    Wrap(Tail[I]);
  for (size_t I = Headers.size(); I-- > 0;)
    Wrap(Headers[I]);

  Loc->replace(std::move(Current->Stmts.front()));
  return TransformResult::success();
}

} // namespace transform
} // namespace locus
