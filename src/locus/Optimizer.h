//===- Optimizer.h - Optimizations on Locus programs ------------*- C++ -*-===//
///
/// \file
/// Section IV-C: optimizations applied to the Locus program itself to cut
/// the system's execution time — in the search workflow the direct program
/// is re-interpreted for every variant evaluated, so shrinking it pays off
/// on every assessment. The pass performs:
///
///  - Query pre-execution: deterministic Query operations (LoopNestDepth,
///    IsPerfectLoopNest, IsDepAvailable, ...) run once against the code
///    region and their calls are replaced by literal results.
///  - Constant propagation and folding over straight-line assignments.
///  - Dead-code elimination: conditionals with now-constant conditions are
///    replaced by the taken branch, removing entire sub-spaces (the paper's
///    example: nests of depth 1 drop every construct guarded by depth > 1).
///
//===----------------------------------------------------------------------===//
#ifndef LOCUS_LOCUS_OPTIMIZER_H
#define LOCUS_LOCUS_OPTIMIZER_H

#include "src/cir/Ast.h"
#include "src/locus/LocusAst.h"
#include "src/locus/Modules.h"
#include "src/transform/Transform.h"

#include <memory>

namespace locus {
namespace lang {

struct OptimizeStats {
  int QueriesSubstituted = 0;
  int ConstantsFolded = 0;
  int BranchesPruned = 0;
  int StmtsRemoved = 0;
};

/// Optimizes \p Prog against the regions of \p Target. Queries are executed
/// on the first region matching each CodeReg (they are assumed deterministic
/// throughout the search, per the paper). Returns the optimized clone.
std::unique_ptr<LocusProgram>
optimizeLocusProgram(const LocusProgram &Prog, cir::Program &Target,
                     const ModuleRegistry &Registry,
                     transform::TransformContext &TCtx,
                     OptimizeStats *Stats = nullptr);

} // namespace lang
} // namespace locus

#endif // LOCUS_LOCUS_OPTIMIZER_H
