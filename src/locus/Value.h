//===- Value.h - Locus dynamic values ---------------------------*- C++ -*-===//
///
/// \file
/// The dynamically typed values of the Locus language (Section III): None,
/// numbers (integer / float), strings, mutable lists, immutable tuples and
/// mutable dictionaries. Lists and dictionaries have reference semantics
/// (shared across copies), tuples and scalars value semantics, matching the
/// Python-like behavior the paper describes.
///
//===----------------------------------------------------------------------===//
#ifndef LOCUS_LOCUS_VALUE_H
#define LOCUS_LOCUS_VALUE_H

#include "src/support/Error.h"

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <variant>
#include <vector>

namespace locus {
namespace lang {

class Value;

using ListRef = std::shared_ptr<std::vector<Value>>;
using DictRef = std::shared_ptr<std::map<std::string, Value>>;

/// A dynamically typed Locus value.
class Value {
public:
  /// Param values exist only during space extraction: a reference to a
  /// registered search parameter whose concrete value is not yet known.
  enum class Kind { None, Int, Float, String, List, Tuple, Dict, Param };

  Value() : Data(std::monostate{}) {}
  Value(int64_t V) : Data(V) {}
  Value(double V) : Data(V) {}
  Value(std::string V) : Data(std::move(V)) {}

  static Value none() { return Value(); }
  static Value boolean(bool B) { return Value(static_cast<int64_t>(B)); }
  static Value param(std::string Id) {
    Value V;
    V.Data = ParamBox{std::move(Id)};
    return V;
  }
  static Value list(std::vector<Value> Items) {
    Value V;
    V.Data = std::make_shared<std::vector<Value>>(std::move(Items));
    return V;
  }
  static Value tuple(std::vector<Value> Items);
  static Value dict() {
    Value V;
    V.Data = std::make_shared<std::map<std::string, Value>>();
    return V;
  }

  Kind kind() const;
  bool isNone() const { return kind() == Kind::None; }
  bool isInt() const { return kind() == Kind::Int; }
  bool isFloat() const { return kind() == Kind::Float; }
  bool isNumber() const { return isInt() || isFloat(); }
  bool isString() const { return kind() == Kind::String; }
  bool isList() const { return kind() == Kind::List; }
  bool isTuple() const { return kind() == Kind::Tuple; }
  bool isDict() const { return kind() == Kind::Dict; }
  bool isParam() const { return kind() == Kind::Param; }

  /// True when this value transitively contains a Param (lists/tuples of
  /// search variables taint the containing value).
  bool containsParam() const;

  const std::string &paramId() const;

  int64_t asInt() const;
  double asFloat() const;
  const std::string &asString() const;
  /// Shared list storage (mutations visible through every reference).
  ListRef asList() const;
  /// Tuple elements (immutable).
  const std::vector<Value> &asTuple() const;
  DictRef asDict() const;

  /// Python-like truthiness: None/0/0.0/""/empty containers are false.
  bool truthy() const;

  /// Structural equality (== in the language).
  bool equals(const Value &Other) const;

  /// Human-readable rendering (used by print and diagnostics).
  std::string str() const;

private:
  struct TupleBox {
    std::vector<Value> Items;
  };
  using TupleRef = std::shared_ptr<const TupleBox>;
  struct ParamBox {
    std::string Id;
  };

  std::variant<std::monostate, int64_t, double, std::string, ListRef, TupleRef,
               DictRef, ParamBox>
      Data;
};

/// Arithmetic and comparison on values; errors on type mismatches.
Expected<Value> valueAdd(const Value &A, const Value &B);
Expected<Value> valueSub(const Value &A, const Value &B);
Expected<Value> valueMul(const Value &A, const Value &B);
Expected<Value> valueDiv(const Value &A, const Value &B);
Expected<Value> valueMod(const Value &A, const Value &B);
Expected<Value> valuePow(const Value &A, const Value &B);
Expected<Value> valueCompare(const std::string &Op, const Value &A,
                             const Value &B);

} // namespace lang
} // namespace locus

#endif // LOCUS_LOCUS_VALUE_H
