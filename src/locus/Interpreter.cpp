//===- Interpreter.cpp - Locus program interpreter -----------------------------===//

#include "src/locus/Interpreter.h"

#include "src/analysis/Verifier.h"
#include "src/support/Diag.h"

#include <algorithm>
#include <cassert>
#include <set>

namespace locus {
namespace lang {

namespace {

/// Exponent helpers for poweroftwo parameters.
bool isPow2(int64_t X) { return X > 0 && (X & (X - 1)) == 0; }

/// Modules that must preserve the number of executed assignment instances
/// (the verifier's statement-instance accounting only applies to these;
/// LICM/ScalarRepl/Altdesc legitimately change the count).
bool preservesInstanceCounts(const std::string &Member) {
  static const std::set<std::string> Preserving = {
      "Tiling", "GenericTiling", "Interchange", "Unroll",
      "UnrollAndJam", "Fusion", "Distribute"};
  return Preserving.count(Member) != 0;
}

/// Converts a Locus value into a symbolic plan argument; Unknown for value
/// kinds the oracle cannot replay (dicts, None).
analysis::PlanArg planArgFromValue(const Value &V) {
  using analysis::PlanArg;
  switch (V.kind()) {
  case Value::Kind::Int:
    return PlanArg::ofInt(V.asInt());
  case Value::Kind::Float:
    return PlanArg::ofFloat(V.asFloat());
  case Value::Kind::String:
    return PlanArg::ofStr(V.asString());
  case Value::Kind::Param:
    return PlanArg::ofParam(V.paramId());
  case Value::Kind::List:
  case Value::Kind::Tuple: {
    std::vector<Value> Copy;
    const std::vector<Value> *Items;
    if (V.isList()) {
      Copy = *V.asList();
      Items = &Copy;
    } else {
      Items = &V.asTuple();
    }
    std::vector<PlanArg> Out;
    for (const Value &I : *Items) {
      PlanArg A = planArgFromValue(I);
      if (!A.resolvable())
        return PlanArg::unknown();
      Out.push_back(std::move(A));
    }
    return PlanArg::ofList(std::move(Out));
  }
  default:
    return PlanArg::unknown();
  }
}

//===----------------------------------------------------------------------===//
// Execution engine
//===----------------------------------------------------------------------===//

enum class Mode { Extract, Concrete };

enum class Flow { Normal, Return };

class Engine {
public:
  Engine(const LocusProgram &LProg, const ModuleRegistry &Registry, Mode M,
         search::Space *SpaceOut, const search::Point *Point,
         cir::Program *Target, transform::TransformContext *TCtx,
         analysis::TransformPlan *Plan = nullptr)
      : LProg(LProg), Registry(Registry), M(M), SpaceOut(SpaceOut),
        Point(Point), Target(Target), TCtx(TCtx), Plan(Plan) {}

  ExecOutcome run() {
    Outcome = ExecOutcome::ok();
    GlobalScope.clear();
    GlobalScope["innermost"] = Value(std::string("innermost"));
    GlobalScope["outermost"] = Value(std::string("outermost"));
    GlobalScope["True"] = Value::boolean(true);
    GlobalScope["False"] = Value::boolean(false);

    // Global-scope statements run first (e.g. Fig. 11's datalayout enum).
    PathStack.assign(1, "global");
    {
      Value Ret;
      execBlock(LProg.GlobalStmts, GlobalScope, Ret);
    }
    if (halted()) {
      Outcome.Ok = Err.empty();
      Outcome.Error = Err;
      return Outcome;
    }

    for (const auto &[Name, Body] : LProg.CodeRegs) {
      std::vector<cir::Block *> Regions = Target->findRegions(Name);
      if (Regions.empty()) {
        Outcome.Log.push_back("warning: no code region named '" + Name + "'");
        continue;
      }
      if (Plan && M == Mode::Extract)
        Plan->CodeRegOrder.push_back(Name);
      size_t Count = M == Mode::Extract ? 1 : Regions.size();
      for (size_t R = 0; R < Count && !halted(); ++R) {
        Region = Regions[R];
        CurCodeReg = Name;
        PathStack.assign(1, Name);
        std::map<std::string, Value> Locals = GlobalScope;
        Value Ret;
        execBlock(Body, Locals, Ret);
        GlobalScope = std::move(Locals); // Section III scope rules: CodeReg
                                         // bodies see and update globals
      }
      Region = nullptr;
      CurCodeReg.clear();
      if (halted())
        break;
    }
    Outcome.Ok = Err.empty();
    Outcome.Error = Err;
    return Outcome;
  }

private:
  bool halted() const { return !Err.empty() || Outcome.InvalidPoint; }

  void fail(int Line, const std::string &Message) {
    if (Err.empty())
      Err = "locus line " + std::to_string(Line) + ": " + Message;
  }

  void invalidate(const std::string &Reason, bool IllegalTransform = false) {
    if (!Outcome.InvalidPoint) {
      Outcome.InvalidPoint = true;
      Outcome.InvalidReason = Reason;
      Outcome.IllegalTransform = IllegalTransform;
    }
  }

  //===--------------------------------------------------------------------===//
  // Parameter identity
  //===--------------------------------------------------------------------===//

  std::string paramId(int NodeId) const {
    std::string Id;
    for (const std::string &P : PathStack)
      Id += P + "/";
    Id += "#" + std::to_string(NodeId);
    return Id;
  }

  search::ParamDef *registerParam(search::ParamDef Def) {
    assert(SpaceOut && "registerParam outside extract mode");
    for (search::ParamDef &P : SpaceOut->Params)
      if (P.Id == Def.Id)
        return &P;
    SpaceOut->Params.push_back(std::move(Def));
    return &SpaceOut->Params.back();
  }

  const search::ParamDef *findParam(const std::string &Id) const {
    if (SpaceOut)
      return SpaceOut->find(Id);
    return nullptr;
  }

  //===--------------------------------------------------------------------===//
  // Statements
  //===--------------------------------------------------------------------===//

  Flow execBlock(const LBlock &Block, std::map<std::string, Value> &Env,
                 Value &Ret) {
    for (const LStmtPtr &S : Block.Stmts) {
      if (halted())
        return Flow::Normal;
      Flow F = execStmt(*S, Env, Ret);
      if (F == Flow::Return)
        return F;
    }
    return Flow::Normal;
  }

  Flow execStmt(const LStmt &S, std::map<std::string, Value> &Env, Value &Ret) {
    switch (S.Kind) {
    case LStmtKind::Block:
      return execBlock(S.Blocks[0], Env, Ret);

    case LStmtKind::OrBlocks: {
      std::string Id = paramId(S.NodeId);
      if (M == Mode::Extract) {
        search::ParamDef Def;
        Def.Id = Id;
        Def.Label = "or:line" + std::to_string(S.Line);
        Def.Kind = search::ParamKind::Enum;
        for (size_t I = 0; I < S.Blocks.size(); ++I)
          Def.Options.push_back("alt" + std::to_string(I));
        registerParam(std::move(Def));
        // Walk every alternative to collect nested constructs.
        for (size_t I = 0; I < S.Blocks.size(); ++I) {
          PathStack.push_back("alt" + std::to_string(I));
          GuardStack.push_back({Id, static_cast<int64_t>(I)});
          Value Ignored;
          execBlock(S.Blocks[I], Env, Ignored);
          GuardStack.pop_back();
          PathStack.pop_back();
          if (halted())
            break;
        }
        return Flow::Normal;
      }
      auto It = Point->Values.find(Id);
      if (It == Point->Values.end()) {
        fail(S.Line, "point does not pin OR block " + Id);
        return Flow::Normal;
      }
      size_t Choice = static_cast<size_t>(std::get<int64_t>(It->second));
      if (Choice >= S.Blocks.size()) {
        fail(S.Line, "OR block selector out of range");
        return Flow::Normal;
      }
      PathStack.push_back("alt" + std::to_string(Choice));
      Flow F = execBlock(S.Blocks[Choice], Env, Ret);
      PathStack.pop_back();
      return F;
    }

    case LStmtKind::ExprStmt: {
      if (S.Optional) {
        std::string Id = paramId(S.NodeId);
        if (M == Mode::Extract) {
          search::ParamDef Def;
          Def.Id = Id;
          Def.Label = "opt:line" + std::to_string(S.Line);
          Def.Kind = search::ParamKind::Bool;
          registerParam(std::move(Def));
          GuardStack.push_back({Id, 1}); // executes only when pinned on
          evalExpr(*S.Expr, Env);        // walk for nested constructs
          GuardStack.pop_back();
          return Flow::Normal;
        }
        auto It = Point->Values.find(Id);
        if (It == Point->Values.end()) {
          fail(S.Line, "point does not pin optional statement " + Id);
          return Flow::Normal;
        }
        if (std::get<int64_t>(It->second) == 0)
          return Flow::Normal; // the None alternative
      }
      evalExpr(*S.Expr, Env);
      return Flow::Normal;
    }

    case LStmtKind::Assign: {
      CurrentTarget = S.Targets.size() == 1 ? S.Targets[0] : "";
      bool Track = Plan && M == Mode::Extract;
      std::pair<bool, bool> Saved;
      if (Track)
        Saved = beginTaintScope();
      Value V = evalExpr(*S.Rhs, Env);
      bool RhsDiverges = Track && endTaintScope(Saved);
      CurrentTarget.clear();
      if (halted())
        return Flow::Normal;
      if (Track) {
        // The variable's symbolic value is trusted only when the RHS cannot
        // diverge between extraction and a concrete run.
        bool Unusable = RhsDiverges || UnknownDepth > 0 ||
                        !resolvePlanArg(*S.Rhs, V).resolvable();
        for (const std::string &T : S.Targets)
          VarCtx[T] = VarInfo{GuardStack, Unusable};
      }
      if (S.Targets.size() == 1) {
        Env[S.Targets[0]] = std::move(V);
        return Flow::Normal;
      }
      // Tuple unpacking.
      const std::vector<Value> *Items = nullptr;
      std::vector<Value> ListCopy;
      if (V.isTuple())
        Items = &V.asTuple();
      else if (V.isList()) {
        ListCopy = *V.asList();
        Items = &ListCopy;
      }
      if (!Items || Items->size() != S.Targets.size()) {
        fail(S.Line, "cannot unpack value into " +
                         std::to_string(S.Targets.size()) + " targets");
        return Flow::Normal;
      }
      for (size_t I = 0; I < S.Targets.size(); ++I)
        Env[S.Targets[I]] = (*Items)[I];
      return Flow::Normal;
    }

    case LStmtKind::If: {
      for (size_t I = 0; I < S.Conds.size(); ++I) {
        Value C = evalCond(*S.Conds[I], Env);
        if (halted())
          return Flow::Normal;
        if (C.isParam() || C.containsParam()) {
          // Conditional space: in extract mode walk every arm; a concrete
          // run can never see a param value.
          if (M != Mode::Extract) {
            fail(S.Line, "unresolved search value in condition");
            return Flow::Normal;
          }
          ++UnknownDepth;
          for (size_t J = I; J < S.Conds.size(); ++J) {
            Value Ignored;
            execBlock(S.Blocks[J], Env, Ignored);
            if (J + 1 < S.Conds.size())
              evalCond(*S.Conds[J + 1], Env);
          }
          if (S.HasElse) {
            Value Ignored;
            execBlock(S.ElseBlock, Env, Ignored);
          }
          --UnknownDepth;
          return Flow::Normal;
        }
        if (C.truthy())
          return execBlock(S.Blocks[I], Env, Ret);
      }
      if (S.HasElse)
        return execBlock(S.ElseBlock, Env, Ret);
      return Flow::Normal;
    }

    case LStmtKind::While: {
      int Guard = 0;
      while (true) {
        Value C = evalCond(*S.Conds[0], Env);
        if (halted())
          return Flow::Normal;
        if (C.isParam() || C.containsParam()) {
          if (M != Mode::Extract) {
            fail(S.Line, "unresolved search value in while condition");
            return Flow::Normal;
          }
          Value Ignored;
          ++UnknownDepth;
          execBlock(S.Blocks[0], Env, Ignored);
          --UnknownDepth;
          return Flow::Normal;
        }
        if (!C.truthy())
          return Flow::Normal;
        PathStack.push_back("w" + std::to_string(Guard));
        Flow F = execBlock(S.Blocks[0], Env, Ret);
        PathStack.pop_back();
        if (F == Flow::Return)
          return F;
        if (++Guard > 100000) {
          fail(S.Line, "while loop exceeded the iteration guard");
          return Flow::Normal;
        }
      }
    }

    case LStmtKind::For: {
      Value Ignored;
      execStmt(*S.ForInit, Env, Ignored);
      int Guard = 0;
      while (true) {
        if (halted())
          return Flow::Normal;
        Value C = evalCond(*S.Conds[0], Env);
        if (halted())
          return Flow::Normal;
        if (C.isParam() || C.containsParam()) {
          if (M != Mode::Extract) {
            fail(S.Line, "unresolved search value in for condition");
            return Flow::Normal;
          }
          ++UnknownDepth;
          execBlock(S.Blocks[0], Env, Ignored);
          --UnknownDepth;
          return Flow::Normal;
        }
        if (!C.truthy())
          return Flow::Normal;
        PathStack.push_back("i" + std::to_string(Guard));
        Flow F = execBlock(S.Blocks[0], Env, Ret);
        PathStack.pop_back();
        if (F == Flow::Return)
          return F;
        execStmt(*S.ForStep, Env, Ignored);
        if (++Guard > 100000) {
          fail(S.Line, "for loop exceeded the iteration guard");
          return Flow::Normal;
        }
      }
    }

    case LStmtKind::Return: {
      Ret = S.Expr ? evalExpr(*S.Expr, Env) : Value::none();
      return Flow::Return;
    }

    case LStmtKind::Print: {
      Value V = evalExpr(*S.Expr, Env);
      if (!halted())
        Outcome.Log.push_back(V.str());
      return Flow::Normal;
    }
    }
    return Flow::Normal;
  }

  //===--------------------------------------------------------------------===//
  // Expressions
  //===--------------------------------------------------------------------===//

  Value evalExpr(const LExpr &E, std::map<std::string, Value> &Env) {
    switch (E.Kind) {
    case LExprKind::Lit:
      return E.Literal;

    case LExprKind::Name: {
      auto It = Env.find(E.Name);
      if (It != Env.end()) {
        if (Plan && M == Mode::Extract && !nameUsable(E.Name))
          TaintedEval = true;
        return It->second;
      }
      if (Registry.hasModule(E.Name) || LProg.findOptSeq(E.Name) ||
          LProg.findDef(E.Name) || LProg.findQuery(E.Name))
        return Value(E.Name); // resolves at the call site
      fail(E.Line, "undefined name '" + E.Name + "'");
      return Value::none();
    }

    case LExprKind::Attr:
      // Only meaningful as a call target; represent as "Module.Member".
      if (E.Base->Kind == LExprKind::Name &&
          Registry.hasModule(E.Base->Name))
        return Value(E.Base->Name + "." + E.Name);
      fail(E.Line, "unknown module '" +
                       (E.Base->Kind == LExprKind::Name ? E.Base->Name : "?") +
                       "'");
      return Value::none();

    case LExprKind::Call:
      return evalCall(E, Env);

    case LExprKind::Index: {
      Value Base = evalExpr(*E.Base, Env);
      Value Sub = evalExpr(*E.Sub, Env);
      if (halted())
        return Value::none();
      if (Base.containsParam() || Sub.containsParam())
        return Base.containsParam() ? Base : Sub;
      if (Base.isList() || Base.isTuple()) {
        const std::vector<Value> &Items =
            Base.isList() ? *Base.asList() : Base.asTuple();
        if (!Sub.isInt() || Sub.asInt() < 0 ||
            static_cast<size_t>(Sub.asInt()) >= Items.size()) {
          fail(E.Line, "index out of range");
          return Value::none();
        }
        return Items[static_cast<size_t>(Sub.asInt())];
      }
      if (Base.isDict()) {
        auto It = Base.asDict()->find(Sub.str());
        if (It == Base.asDict()->end()) {
          fail(E.Line, "missing dictionary key: " + Sub.str());
          return Value::none();
        }
        return It->second;
      }
      fail(E.Line, "value is not subscriptable");
      return Value::none();
    }

    case LExprKind::Binary: {
      bool TrackShort =
          Plan && M == Mode::Extract && (E.Op == "&&" || E.Op == "||");
      std::pair<bool, bool> SavedShort;
      if (TrackShort)
        SavedShort = beginTaintScope();
      Value L = evalExpr(*E.Lhs, Env);
      bool LDiverges = TrackShort && endTaintScope(SavedShort);
      if (halted())
        return Value::none();
      // Short-circuit logic.
      if (E.Op == "&&" || E.Op == "||") {
        if (L.isParam() || L.containsParam()) {
          // The right operand is not walked, but a concrete run evaluates
          // it; a call hiding there could mutate state the plan misses.
          if (recordingPlan() && exprContainsCall(*E.Rhs))
            PlanBarrier = true;
          return L;
        }
        if (E.Op == "&&" && !L.truthy()) {
          // Short-circuiting on a possibly-diverging value: the concrete
          // run may evaluate the right operand this walk skips.
          if (recordingPlan() && LDiverges && exprContainsCall(*E.Rhs))
            PlanBarrier = true;
          return Value::boolean(false);
        }
        if (E.Op == "||" && L.truthy()) {
          if (recordingPlan() && LDiverges && exprContainsCall(*E.Rhs))
            PlanBarrier = true;
          return Value::boolean(true);
        }
        Value R = evalExpr(*E.Rhs, Env);
        if (R.isParam() || R.containsParam())
          return R;
        return Value::boolean(R.truthy());
      }
      Value R = evalExpr(*E.Rhs, Env);
      if (halted())
        return Value::none();
      Expected<Value> Result = Value::none();
      if (E.Op == "+")
        Result = valueAdd(L, R);
      else if (E.Op == "-")
        Result = valueSub(L, R);
      else if (E.Op == "*")
        Result = valueMul(L, R);
      else if (E.Op == "/")
        Result = valueDiv(L, R);
      else if (E.Op == "%")
        Result = valueMod(L, R);
      else if (E.Op == "**")
        Result = valuePow(L, R);
      else
        Result = valueCompare(E.Op, L, R);
      if (!Result.ok()) {
        fail(E.Line, Result.message());
        return Value::none();
      }
      return *Result;
    }

    case LExprKind::Unary: {
      Value V = evalExpr(*E.Lhs, Env);
      if (halted())
        return Value::none();
      if (V.isParam() || V.containsParam())
        return V;
      if (E.Op == "-") {
        if (V.isInt())
          return Value(-V.asInt());
        if (V.isFloat())
          return Value(-V.asFloat());
        fail(E.Line, "cannot negate " + V.str());
        return Value::none();
      }
      return Value::boolean(!V.truthy());
    }

    case LExprKind::ListMaker: {
      std::vector<Value> Items;
      for (const LExprPtr &I : E.Items) {
        Items.push_back(evalExpr(*I, Env));
        if (halted())
          return Value::none();
      }
      return Value::list(std::move(Items));
    }

    case LExprKind::TupleMaker: {
      std::vector<Value> Items;
      for (const LExprPtr &I : E.Items) {
        Items.push_back(evalExpr(*I, Env));
        if (halted())
          return Value::none();
      }
      return Value::tuple(std::move(Items));
    }

    case LExprKind::DictMaker:
      return Value::dict();

    case LExprKind::Range: {
      // A bare range evaluates to the (lo, hi[, step]) tuple; search calls
      // interpret their range arguments directly.
      std::vector<Value> Items;
      Items.push_back(evalExpr(*E.RangeLo, Env));
      Items.push_back(evalExpr(*E.RangeHi, Env));
      if (E.RangeStep)
        Items.push_back(evalExpr(*E.RangeStep, Env));
      return Value::tuple(std::move(Items));
    }

    case LExprKind::OrExpr:
      return evalOrExpr(E, Env);

    case LExprKind::SearchCall:
      return evalSearchCall(E, Env);
    }
    return Value::none();
  }

  Value evalOrExpr(const LExpr &E, std::map<std::string, Value> &Env) {
    std::string Id = paramId(E.NodeId);
    if (M == Mode::Extract) {
      search::ParamDef Def;
      Def.Id = Id;
      Def.Label = (CurrentTarget.empty() ? "or" : CurrentTarget) + ":line" +
                  std::to_string(E.Line);
      if (!CurrentTarget.empty())
        Def.Label = "or:" + CurrentTarget;
      Def.Kind = search::ParamKind::Enum;
      for (size_t I = 0; I < E.Items.size(); ++I)
        Def.Options.push_back("alt" + std::to_string(I));
      registerParam(std::move(Def));
      std::vector<analysis::PlanArg> AltValues;
      bool AltsResolved = Plan != nullptr;
      for (size_t I = 0; I < E.Items.size(); ++I) {
        PathStack.push_back("alt" + std::to_string(I));
        GuardStack.push_back({Id, static_cast<int64_t>(I)});
        std::pair<bool, bool> Saved;
        if (Plan)
          Saved = beginTaintScope();
        Value V = evalExpr(*E.Items[I], Env);
        if (Plan) {
          bool Diverges = endTaintScope(Saved);
          analysis::PlanArg A = Diverges ? analysis::PlanArg::unknown()
                                         : resolvePlanArg(*E.Items[I], V);
          if (A.resolvable())
            AltValues.push_back(std::move(A));
          else
            AltsResolved = false;
        }
        GuardStack.pop_back();
        PathStack.pop_back();
        if (halted())
          break;
      }
      if (AltsResolved && AltValues.size() == E.Items.size())
        Plan->EnumValues[Id] = std::move(AltValues);
      return Value::param(Id);
    }
    auto It = Point->Values.find(Id);
    if (It == Point->Values.end()) {
      fail(E.Line, "point does not pin OR statement " + Id);
      return Value::none();
    }
    size_t Choice = static_cast<size_t>(std::get<int64_t>(It->second));
    if (Choice >= E.Items.size()) {
      fail(E.Line, "OR selector out of range");
      return Value::none();
    }
    PathStack.push_back("alt" + std::to_string(Choice));
    Value V = evalExpr(*E.Items[Choice], Env);
    PathStack.pop_back();
    return V;
  }

  /// Resolves a range bound during extraction: a concrete integer, or the
  /// extreme of a referenced parameter (dependent bounds, Section IV-B).
  bool resolveBound(const Value &V, bool IsMax, int64_t &Out,
                    std::string &DependsOn, int Line) {
    if (V.isInt()) {
      Out = V.asInt();
      return true;
    }
    if (V.isParam()) {
      const search::ParamDef *Dep = findParam(V.paramId());
      if (!Dep) {
        fail(Line, "search variable used before definition");
        return false;
      }
      Out = IsMax ? Dep->Max : Dep->Min;
      DependsOn = V.paramId();
      return true;
    }
    fail(Line, "range bound must be an integer or a search variable");
    return false;
  }

  Value evalSearchCall(const LExpr &E, std::map<std::string, Value> &Env) {
    std::string Id = paramId(E.NodeId);
    std::string Label = CurrentTarget.empty()
                            ? E.Name + ":line" + std::to_string(E.Line)
                            : CurrentTarget;

    // Evaluate the arguments (ranges arrive as Range nodes).
    if (E.Args.empty()) {
      fail(E.Line, E.Name + " requires arguments");
      return Value::none();
    }

    switch (E.SKind) {
    case SearchKind::Enum: {
      bool Track = Plan && M == Mode::Extract;
      std::pair<bool, bool> Saved;
      if (Track)
        Saved = beginTaintScope();
      std::vector<Value> Options;
      for (const LArg &A : E.Args) {
        Options.push_back(evalExpr(*A.Expr, Env));
        if (halted())
          return Value::none();
        if (Options.back().containsParam()) {
          fail(E.Line, "enum options must be concrete values");
          return Value::none();
        }
      }
      bool OptsDiverge = Track && endTaintScope(Saved);
      if (M == Mode::Extract) {
        search::ParamDef Def;
        Def.Id = Id;
        Def.Label = Label;
        Def.Kind = search::ParamKind::Enum;
        for (const Value &O : Options)
          Def.Options.push_back(O.str());
        registerParam(std::move(Def));
        if (Track && !OptsDiverge) {
          // ParamDef::Options only keeps the stringified rendering; the
          // oracle needs the typed values to resolve Param arguments.
          std::vector<analysis::PlanArg> Vals;
          bool AllOk = true;
          for (size_t I = 0; I < Options.size() && AllOk; ++I) {
            analysis::PlanArg A = resolvePlanArg(*E.Args[I].Expr, Options[I]);
            AllOk = A.resolvable();
            Vals.push_back(std::move(A));
          }
          if (AllOk)
            Plan->EnumValues[Id] = std::move(Vals);
        }
        return Value::param(Id);
      }
      auto It = Point->Values.find(Id);
      if (It == Point->Values.end()) {
        fail(E.Line, "point does not pin enum " + Id);
        return Value::none();
      }
      size_t Choice = static_cast<size_t>(std::get<int64_t>(It->second));
      if (Choice >= Options.size()) {
        fail(E.Line, "enum selector out of range");
        return Value::none();
      }
      return Options[Choice];
    }

    case SearchKind::Permutation: {
      bool Track = Plan && M == Mode::Extract;
      std::pair<bool, bool> Saved;
      if (Track)
        Saved = beginTaintScope();
      Value Arg = evalExpr(*E.Args[0].Expr, Env);
      bool ArgDiverges = Track && endTaintScope(Saved);
      if (halted())
        return Value::none();
      std::vector<Value> Items;
      if (Arg.isList())
        Items = *Arg.asList();
      else if (Arg.isTuple())
        Items = Arg.asTuple();
      else {
        fail(E.Line, "permutation requires a list argument");
        return Value::none();
      }
      if (M == Mode::Extract) {
        search::ParamDef Def;
        Def.Id = Id;
        Def.Label = Label;
        Def.Kind = search::ParamKind::Permutation;
        Def.PermSize = static_cast<int>(Items.size());
        registerParam(std::move(Def));
        if (Track && !ArgDiverges) {
          // The concrete point only stores the index permutation; the
          // oracle needs the base items to reconstruct the permuted list.
          analysis::PlanArg A = resolvePlanArg(*E.Args[0].Expr, Arg);
          if (A.resolvable() && A.K == analysis::PlanArg::Kind::List)
            Plan->PermItems[Id] = std::move(A.List);
        }
        return Value::param(Id);
      }
      auto It = Point->Values.find(Id);
      if (It == Point->Values.end()) {
        fail(E.Line, "point does not pin permutation " + Id);
        return Value::none();
      }
      const auto &Perm = std::get<std::vector<int>>(It->second);
      if (Perm.size() != Items.size()) {
        invalidate("permutation size mismatch for " + Id);
        return Value::none();
      }
      std::vector<Value> Result;
      for (int I : Perm) {
        if (I < 0 || static_cast<size_t>(I) >= Items.size()) {
          invalidate("permutation index out of range for " + Id);
          return Value::none();
        }
        Result.push_back(Items[static_cast<size_t>(I)]);
      }
      return Value::list(std::move(Result));
    }

    case SearchKind::Integer:
    case SearchKind::Pow2:
    case SearchKind::LogInt:
    case SearchKind::Float:
    case SearchKind::LogFloat: {
      const LExpr *RangeE = E.Args[0].Expr.get();
      if (RangeE->Kind != LExprKind::Range) {
        fail(E.Line, E.Name + " requires a lo..hi range argument");
        return Value::none();
      }
      bool Track = Plan && M == Mode::Extract;
      std::pair<bool, bool> Saved;
      if (Track)
        Saved = beginTaintScope();
      Value Lo = evalExpr(*RangeE->RangeLo, Env);
      Value Hi = evalExpr(*RangeE->RangeHi, Env);
      bool BoundsDiverge = Track && endTaintScope(Saved);
      if (halted())
        return Value::none();

      bool IsFloat =
          E.SKind == SearchKind::Float || E.SKind == SearchKind::LogFloat;
      if (M == Mode::Extract) {
        search::ParamDef Def;
        Def.Id = Id;
        Def.Label = Label;
        if (IsFloat) {
          if (!Lo.isNumber() || !Hi.isNumber()) {
            fail(E.Line, "float range bounds must be numbers");
            return Value::none();
          }
          Def.Kind = E.SKind == SearchKind::Float ? search::ParamKind::FloatRange
                                                  : search::ParamKind::LogFloat;
          Def.FMin = Lo.asFloat();
          Def.FMax = Hi.asFloat();
        } else {
          Def.Kind = E.SKind == SearchKind::Integer ? search::ParamKind::IntRange
                     : E.SKind == SearchKind::Pow2  ? search::ParamKind::Pow2
                                                    : search::ParamKind::LogInt;
          if (!resolveBound(Lo, /*IsMax=*/false, Def.Min, Def.DependsOnMinParam,
                            E.Line) ||
              !resolveBound(Hi, /*IsMax=*/true, Def.Max, Def.DependsOnMaxParam,
                            E.Line))
            return Value::none();
        }
        bool Dependent = !Def.DependsOnMinParam.empty() ||
                         !Def.DependsOnMaxParam.empty();
        registerParam(std::move(Def));
        // Record the dynamic dependent-range validation the concrete run
        // will perform (static bounds are honored by every sampler, so only
        // dependent ranges can reject a point).
        if (recordingPlan() && !IsFloat && Dependent && !BoundsDiverge) {
          analysis::PlanEntry PE;
          PE.K = analysis::PlanEntry::Kind::RangeCheck;
          PE.Guards = GuardStack;
          PE.UnderUnknownCond = UnknownDepth > 0;
          PE.ParamId = Id;
          PE.Region = CurCodeReg;
          PE.IsPow2 = E.SKind == SearchKind::Pow2;
          PE.Lo = resolvePlanArg(*RangeE->RangeLo, Lo);
          PE.Hi = resolvePlanArg(*RangeE->RangeHi, Hi);
          if (PE.Lo.resolvable() && PE.Hi.resolvable())
            Plan->Entries.push_back(std::move(PE));
        }
        return Value::param(Id);
      }

      auto It = Point->Values.find(Id);
      if (It == Point->Values.end()) {
        fail(E.Line, "point does not pin " + E.Name + " " + Id);
        return Value::none();
      }
      if (IsFloat) {
        double V = std::holds_alternative<double>(It->second)
                       ? std::get<double>(It->second)
                       : static_cast<double>(std::get<int64_t>(It->second));
        if (Lo.isNumber() && Hi.isNumber() &&
            (V < Lo.asFloat() || V > Hi.asFloat())) {
          invalidate(Id + " outside its dynamic range");
          return Value::none();
        }
        return Value(V);
      }
      int64_t V = std::get<int64_t>(It->second);
      // Dependent-range validity check (Section IV-B): the dynamic bounds
      // are concrete now.
      if (!Lo.isInt() || !Hi.isInt()) {
        fail(E.Line, "range bounds did not resolve to integers");
        return Value::none();
      }
      if (V < Lo.asInt() || V > Hi.asInt()) {
        invalidate(Id + "=" + std::to_string(V) + " violates range " +
                   std::to_string(Lo.asInt()) + ".." +
                   std::to_string(Hi.asInt()));
        return Value::none();
      }
      if (E.SKind == SearchKind::Pow2 && !isPow2(V)) {
        invalidate(Id + "=" + std::to_string(V) + " is not a power of two");
        return Value::none();
      }
      return Value(V);
    }
    }
    return Value::none();
  }

  //===--------------------------------------------------------------------===//
  // Calls
  //===--------------------------------------------------------------------===//

  Value evalCall(const LExpr &E, std::map<std::string, Value> &Env) {
    // Module member call: Base is an Attr over a module name.
    if (E.Base->Kind == LExprKind::Attr &&
        E.Base->Base->Kind == LExprKind::Name &&
        Registry.hasModule(E.Base->Base->Name))
      return evalModuleCall(E, E.Base->Base->Name, E.Base->Name, Env);

    if (E.Base->Kind != LExprKind::Name) {
      fail(E.Line, "call target is not callable");
      return Value::none();
    }
    const std::string &Name = E.Base->Name;

    // Global built-in helpers.
    if (Name == "seq")
      return evalSeq(E, Env);
    if (Name == "len") {
      if (E.Args.size() != 1) {
        fail(E.Line, "len takes one argument");
        return Value::none();
      }
      Value V = evalExpr(*E.Args[0].Expr, Env);
      if (V.containsParam())
        return V;
      if (V.isList())
        return Value(static_cast<int64_t>(V.asList()->size()));
      if (V.isTuple())
        return Value(static_cast<int64_t>(V.asTuple().size()));
      if (V.isString())
        return Value(static_cast<int64_t>(V.asString().size()));
      fail(E.Line, "len requires a container or string");
      return Value::none();
    }
    if (Name == "str") {
      if (E.Args.size() != 1) {
        fail(E.Line, "str takes one argument");
        return Value::none();
      }
      Value V = evalExpr(*E.Args[0].Expr, Env);
      if (V.containsParam())
        return V;
      return Value(V.str());
    }

    // User functions: OptSeq, Query, def.
    if (const LFunction *F = LProg.findOptSeq(Name))
      return callFunction(*F, E, Env, /*AllowModules=*/true);
    if (const LFunction *F = LProg.findQuery(Name))
      return callFunction(*F, E, Env, /*AllowModules=*/true);
    if (const LFunction *F = LProg.findDef(Name))
      return callFunction(*F, E, Env, /*AllowModules=*/false);

    fail(E.Line, "unknown function '" + Name + "'");
    return Value::none();
  }

  Value evalSeq(const LExpr &E, std::map<std::string, Value> &Env) {
    if (E.Args.size() != 2) {
      fail(E.Line, "seq takes (first, limit)");
      return Value::none();
    }
    Value Lo = evalExpr(*E.Args[0].Expr, Env);
    Value Hi = evalExpr(*E.Args[1].Expr, Env);
    if (Lo.containsParam() || Hi.containsParam())
      return Lo.containsParam() ? Lo : Hi;
    if (!Lo.isInt() || !Hi.isInt()) {
      fail(E.Line, "seq requires integer bounds");
      return Value::none();
    }
    std::vector<Value> Items;
    for (int64_t I = Lo.asInt(); I < Hi.asInt(); ++I)
      Items.push_back(Value(I));
    return Value::list(std::move(Items));
  }

  Value callFunction(const LFunction &F, const LExpr &E,
                     std::map<std::string, Value> &Env, bool AllowModules) {
    if (E.Args.size() != F.Params.size()) {
      fail(E.Line, F.Name + " expects " + std::to_string(F.Params.size()) +
                       " arguments, got " + std::to_string(E.Args.size()));
      return Value::none();
    }
    std::map<std::string, Value> Frame = GlobalScope;
    Frame["innermost"] = Value(std::string("innermost"));
    bool Track = Plan && M == Mode::Extract;
    std::map<std::string, VarInfo> SavedVarCtx;
    if (Track)
      SavedVarCtx = VarCtx;
    for (size_t I = 0; I < E.Args.size(); ++I) {
      std::pair<bool, bool> Saved;
      if (Track)
        Saved = beginTaintScope();
      Value V = evalExpr(*E.Args[I].Expr, Env);
      if (Track) {
        bool ArgDiverges = endTaintScope(Saved);
        // Parameters shadow outer bindings for the duration of the call.
        VarCtx[F.Params[I]] =
            VarInfo{GuardStack,
                    ArgDiverges || UnknownDepth > 0 ||
                        !resolvePlanArg(*E.Args[I].Expr, V).resolvable()};
      }
      if (halted())
        return Value::none();
      Frame[F.Params[I]] = std::move(V);
    }
    bool SavedAllow = ModulesAllowed;
    ModulesAllowed = AllowModules;
    PathStack.push_back("c" + std::to_string(E.NodeId));
    Value Ret;
    execBlock(F.Body, Frame, Ret);
    PathStack.pop_back();
    ModulesAllowed = SavedAllow;
    if (Track)
      VarCtx = std::move(SavedVarCtx);
    return Ret;
  }

  Value evalModuleCall(const LExpr &E, const std::string &Module,
                       const std::string &Member,
                       std::map<std::string, Value> &Env) {
    const ModuleMember *M2 = Registry.find(Module, Member);
    if (!M2) {
      fail(E.Line, "module " + Module + " has no member " + Member);
      return Value::none();
    }
    if (!ModulesAllowed) {
      fail(E.Line, "def methods cannot invoke optimization or query calls");
      return Value::none();
    }
    if (!Region) {
      fail(E.Line, Module + "." + Member +
                       " invoked outside a CodeReg/OptSeq context");
      return Value::none();
    }

    bool Track = Plan && M == Mode::Extract;
    ModuleArgs Args;
    bool HasParamArg = false;
    bool AnyArgDiverges = false;
    std::vector<std::string> Keys(E.Args.size());
    std::map<std::string, bool> ArgDiverges;
    for (size_t I = 0; I < E.Args.size(); ++I) {
      const LArg &A = E.Args[I];
      std::pair<bool, bool> Saved;
      if (Track)
        Saved = beginTaintScope();
      Value V = evalExpr(*A.Expr, Env);
      std::string Key = A.Keyword.empty() ? "arg" + std::to_string(I) : A.Keyword;
      Keys[I] = Key;
      if (Track) {
        bool D = endTaintScope(Saved);
        ArgDiverges[Key] = D;
        AnyArgDiverges = AnyArgDiverges || D;
      }
      if (halted())
        return Value::none();
      if (V.containsParam())
        HasParamArg = true;
      Args[Key] = std::move(V);
    }

    if (M == Mode::Extract) {
      if (M2->IsQuery && !HasParamArg) {
        // Queries execute eagerly during space conversion (Section IV-C).
        // The result is stale for the oracle once any transformation has
        // been recorded: a concrete run executes the query against the
        // mutated region this walk never sees.
        if (Track && (AnyMutationRecorded || AnyArgDiverges))
          OpaqueEval = true;
        ModuleCallContext Ctx{Region, Target, TCtx};
        ModuleOutcome O = M2->Fn(Args, Ctx);
        if (!O.Result.applied()) {
          fail(E.Line, Module + "." + Member + ": " + O.Result.Message);
          return Value::none();
        }
        return O.Ret;
      }
      // Transformations are not applied while the space is being defined;
      // record them (symbolically) so the oracle can replay them.
      if (Track && !M2->IsQuery) {
        if (!PlanBarrier) {
          analysis::PlanEntry PE;
          PE.K = analysis::PlanEntry::Kind::ModuleCall;
          PE.Guards = GuardStack;
          PE.UnderUnknownCond = UnknownDepth > 0;
          PE.Module = Module;
          PE.Member = Member;
          PE.Region = CurCodeReg;
          PE.Line = E.Line;
          for (size_t I = 0; I < E.Args.size(); ++I)
            PE.Args[Keys[I]] = ArgDiverges[Keys[I]]
                                   ? analysis::PlanArg::unknown()
                                   : resolvePlanArg(*E.Args[I].Expr,
                                                    Args[Keys[I]]);
          Plan->Entries.push_back(std::move(PE));
        }
        AnyMutationRecorded = true;
      }
      if (Track)
        OpaqueEval = true; // placeholder result; concrete mode differs
      return Value::none();
    }

    ModuleCallContext Ctx{Region, Target, TCtx};
    bool DoVerify = TCtx && TCtx->VerifyEach && !M2->IsQuery;
    std::unique_ptr<cir::Stmt> Before;
    if (DoVerify)
      Before = Region->clone();
    ModuleOutcome O = M2->Fn(Args, Ctx);
    switch (O.Result.Status) {
    case transform::TransformStatus::Success:
      if (!M2->IsQuery) {
        if (DoVerify) {
          support::DiagEngine Diags;
          if (!analysis::verifyAfterTransform(
                  *Target, *Region, cir::cast<cir::Block>(Before.get()),
                  preservesInstanceCounts(Member), Diags)) {
            invalidate(Module + "." + Member + " failed IR verification: " +
                           Diags.firstError().render(),
                       /*IllegalTransform=*/true);
            return Value::none();
          }
        }
        ++Outcome.TransformsApplied;
      }
      return O.Ret;
    case transform::TransformStatus::NoOp:
      return O.Ret;
    case transform::TransformStatus::Illegal:
      invalidate(Module + "." + Member + " illegal: " + O.Result.Message,
                 /*IllegalTransform=*/true);
      return Value::none();
    case transform::TransformStatus::Error:
      invalidate(Module + "." + Member + " error: " + O.Result.Message);
      return Value::none();
    }
    return Value::none();
  }

  //===--------------------------------------------------------------------===//

  const LocusProgram &LProg;
  const ModuleRegistry &Registry;
  Mode M;
  search::Space *SpaceOut;
  const search::Point *Point;
  cir::Program *Target;
  transform::TransformContext *TCtx;
  analysis::TransformPlan *Plan;

  cir::Block *Region = nullptr;
  std::vector<std::string> PathStack;
  std::map<std::string, Value> GlobalScope;
  std::string CurrentTarget;
  bool ModulesAllowed = true;
  std::string Err;
  ExecOutcome Outcome;

  //===--------------------------------------------------------------------===//
  // Plan recording state (extract mode with Plan only)
  //===--------------------------------------------------------------------===//

  /// Selector guards (OR alternatives, optional statements) currently being
  /// walked; recorded on every plan entry.
  std::vector<analysis::PlanGuard> GuardStack;
  /// > 0 while walking the arms of a conditional whose outcome depends on a
  /// search value; entries recorded there may or may not execute.
  int UnknownDepth = 0;
  /// Once set, no further entries are recorded: execution past this point
  /// may diverge between extraction and a concrete run (a conditional on a
  /// value the extractor could not model took a definite branch).
  bool PlanBarrier = false;
  /// Set during an expression evaluation that produced or consumed a value
  /// whose concrete-mode counterpart may differ (module-call placeholders,
  /// queries on mutated regions).
  bool OpaqueEval = false;
  /// Set when a name lookup hit a variable recorded as unusable.
  bool TaintedEval = false;
  /// True once any mutating module call was recorded; eager queries after
  /// that point see pristine state the concrete run will have mutated.
  bool AnyMutationRecorded = false;
  /// CodeReg currently being walked ("" in global scope).
  std::string CurCodeReg;

  /// Usability of a Locus variable for symbolic argument resolution: the
  /// guard stack at assignment must be a prefix of the use-site stack (the
  /// extractor walks every OR alternative, so a binding made in one
  /// alternative leaks into the walk of its siblings and past the OR).
  struct VarInfo {
    std::vector<analysis::PlanGuard> Guards;
    bool Unusable = false;
  };
  std::map<std::string, VarInfo> VarCtx;

  bool nameUsable(const std::string &Name) const {
    auto It = VarCtx.find(Name);
    if (It == VarCtx.end())
      return true; // bound outside any recorded construct
    const VarInfo &V = It->second;
    if (V.Unusable || V.Guards.size() > GuardStack.size())
      return false;
    for (size_t I = 0; I < V.Guards.size(); ++I)
      if (V.Guards[I].ParamId != GuardStack[I].ParamId ||
          V.Guards[I].Alt != GuardStack[I].Alt)
        return false;
    return true;
  }

  /// Symbolic form of an evaluated expression. Purely structural: dynamic
  /// divergence (tainted names) is detected by the TaintedEval/OpaqueEval
  /// flags during evaluation, which the call sites consult separately.
  /// The default case guards against Value's param-collapsing arithmetic
  /// (valueAdd(param, x) returns the param operand, so a computed value that
  /// still contains a param is NOT the concrete result).
  analysis::PlanArg resolvePlanArg(const LExpr &E, const Value &V) {
    using analysis::PlanArg;
    switch (E.Kind) {
    case LExprKind::Lit:
    case LExprKind::Name:
    case LExprKind::SearchCall:
    case LExprKind::OrExpr:
      return planArgFromValue(V);
    case LExprKind::ListMaker:
    case LExprKind::TupleMaker: {
      std::vector<Value> Copy;
      const std::vector<Value> *Items = nullptr;
      if (V.isList()) {
        Copy = *V.asList();
        Items = &Copy;
      } else if (V.isTuple()) {
        Items = &V.asTuple();
      }
      if (!Items || Items->size() != E.Items.size())
        return PlanArg::unknown();
      std::vector<PlanArg> Out;
      for (size_t I = 0; I < E.Items.size(); ++I) {
        PlanArg A = resolvePlanArg(*E.Items[I], (*Items)[I]);
        if (!A.resolvable())
          return PlanArg::unknown();
        Out.push_back(std::move(A));
      }
      return PlanArg::ofList(std::move(Out));
    }
    default:
      if (V.containsParam())
        return PlanArg::unknown();
      return planArgFromValue(V);
    }
  }

  /// RAII-less taint scope: call before evaluating an expression whose
  /// divergence matters, then taintedSince() afterwards.
  std::pair<bool, bool> beginTaintScope() {
    std::pair<bool, bool> Saved{TaintedEval, OpaqueEval};
    TaintedEval = OpaqueEval = false;
    return Saved;
  }
  bool endTaintScope(std::pair<bool, bool> Saved) {
    bool Fired = TaintedEval || OpaqueEval;
    TaintedEval = TaintedEval || Saved.first;
    OpaqueEval = OpaqueEval || Saved.second;
    return Fired;
  }

  bool recordingPlan() const {
    return Plan != nullptr && M == Mode::Extract && !PlanBarrier;
  }

  /// Evaluates a control-flow condition. In plan-recording mode a condition
  /// whose extraction-time value may diverge from its concrete-mode value
  /// (and is not a search value, for which every arm is walked) takes a
  /// definite branch here that the concrete run may not take: recording must
  /// stop at that point (the entries so far remain a valid prefix).
  Value evalCond(const LExpr &E, std::map<std::string, Value> &Env) {
    if (!(Plan && M == Mode::Extract))
      return evalExpr(E, Env);
    std::pair<bool, bool> Saved = beginTaintScope();
    Value C = evalExpr(E, Env);
    bool Diverges = endTaintScope(Saved);
    if (Diverges && !C.isParam() && !C.containsParam())
      PlanBarrier = true;
    return C;
  }

  /// Whether any Call/SearchCall node appears in \p E. Used when a
  /// short-circuit operator skips its right operand during extraction: the
  /// concrete run may still evaluate it, so an unwalked operand that could
  /// apply a transformation (or register a construct) bars further
  /// recording.
  static bool exprContainsCall(const LExpr &E) {
    if (E.Kind == LExprKind::Call || E.Kind == LExprKind::SearchCall)
      return true;
    auto Check = [](const LExprPtr &P) {
      return P && exprContainsCall(*P);
    };
    if (Check(E.Base) || Check(E.Sub) || Check(E.Lhs) || Check(E.Rhs) ||
        Check(E.RangeLo) || Check(E.RangeHi) || Check(E.RangeStep))
      return true;
    for (const LExprPtr &I : E.Items)
      if (Check(I))
        return true;
    for (const LArg &A : E.Args)
      if (Check(A.Expr))
        return true;
    return false;
  }
};

} // namespace

LocusInterpreter::LocusInterpreter(const LocusProgram &LProg,
                                   const ModuleRegistry &Registry)
    : LProg(LProg), Registry(Registry) {}

ExecOutcome LocusInterpreter::extractSpace(cir::Program &Target,
                                           search::Space &SpaceOut,
                                           transform::TransformContext &TCtx) {
  return extractSpace(Target, SpaceOut, TCtx, nullptr);
}

ExecOutcome LocusInterpreter::extractSpace(cir::Program &Target,
                                           search::Space &SpaceOut,
                                           transform::TransformContext &TCtx,
                                           analysis::TransformPlan *PlanOut) {
  Engine E(LProg, Registry, Mode::Extract, &SpaceOut, nullptr, &Target, &TCtx,
           PlanOut);
  return E.run();
}

ExecOutcome LocusInterpreter::applyPoint(cir::Program &Target,
                                         const search::Point &Point,
                                         transform::TransformContext &TCtx) {
  Engine E(LProg, Registry, Mode::Concrete, nullptr, &Point, &Target, &TCtx);
  return E.run();
}

ExecOutcome LocusInterpreter::applyDirect(cir::Program &Target,
                                          transform::TransformContext &TCtx) {
  search::Point Empty;
  return applyPoint(Target, Empty, TCtx);
}

Expected<SearchSettings> LocusInterpreter::searchSettings() const {
  SearchSettings Settings;
  if (!LProg.HasSearchBlock)
    return Settings;
  for (const LStmtPtr &S : LProg.SearchBlock.Stmts) {
    if (S->Kind != LStmtKind::Assign || S->Targets.size() != 1)
      continue;
    // Only literal assignments are interpreted here.
    if (S->Rhs->Kind == LExprKind::Lit)
      Settings.Values[S->Targets[0]] = S->Rhs->Literal;
  }
  return Settings;
}

} // namespace lang
} // namespace locus
