//===- Interpreter.h - Locus program interpreter ----------------*- C++ -*-===//
///
/// \file
/// Interprets Locus optimization programs in the two workflows of Fig. 2:
///
///  - Extract mode implements convertOptUniverse (Section IV-B): the program
///    is walked symbolically; every search construct (OR blocks/statements,
///    optional statements, enum/integer/float/permutation/poweroftwo/
///    loginteger/logfloat) registers a parameter in a search::Space. Query
///    operations execute eagerly against the code region (Section IV-C);
///    conditionals whose outcome is already known prune the walked branches,
///    others contribute the constructs of every branch (conditional spaces).
///    Numeric ranges bounded by other search variables are resolved through
///    the registered parameter's extremes and recorded as dependent ranges.
///
///  - Concrete mode pins every construct to the values of a search::Point
///    and actually applies the transformation modules to the code regions,
///    producing one program variant. Points violating a dependent-range
///    constraint, or driving a module into an Illegal/Error exit status,
///    invalidate the variant (the search then moves on, as in the paper).
///
/// Direct programs (no search constructs) run through Concrete mode with an
/// empty point.
///
//===----------------------------------------------------------------------===//
#ifndef LOCUS_LOCUS_INTERPRETER_H
#define LOCUS_LOCUS_INTERPRETER_H

#include "src/analysis/TransformPlan.h"
#include "src/cir/Ast.h"
#include "src/locus/LocusAst.h"
#include "src/locus/Modules.h"
#include "src/search/Space.h"
#include "src/transform/Transform.h"

#include <map>
#include <string>
#include <vector>

namespace locus {
namespace lang {

/// The result of one interpretation run.
struct ExecOutcome {
  bool Ok = false;
  std::string Error;

  /// The point was structurally valid Locus but violated a dependent-range
  /// constraint or a module reported Illegal; the variant must be skipped.
  bool InvalidPoint = false;
  std::string InvalidReason;

  /// The invalidation came from a transformation module reporting Illegal
  /// (failed legality check) rather than from a constraint on the point.
  bool IllegalTransform = false;

  /// print output, in order.
  std::vector<std::string> Log;

  /// Count of transformation module calls that reported Success.
  int TransformsApplied = 0;

  static ExecOutcome ok() {
    ExecOutcome O;
    O.Ok = true;
    return O;
  }
};

/// Settings parsed from the Search { ... } block (buildcmd, runcmd, ...).
struct SearchSettings {
  std::map<std::string, Value> Values;

  std::string getString(const std::string &Key,
                        const std::string &Default = "") const {
    auto It = Values.find(Key);
    return It != Values.end() && It->second.isString() ? It->second.asString()
                                                       : Default;
  }
};

/// Interprets one Locus program against one MiniC program.
class LocusInterpreter {
public:
  LocusInterpreter(const LocusProgram &LProg, const ModuleRegistry &Registry);

  /// Extract mode: builds the optimization space. Queries run against the
  /// first region matching each CodeReg.
  ExecOutcome extractSpace(cir::Program &Target, search::Space &SpaceOut,
                           transform::TransformContext &TCtx);

  /// Extract mode that additionally records a TransformPlan: the sequence of
  /// dependent-range checks and mutating module calls (with symbolically
  /// resolved arguments) the concrete runs will perform, for the static
  /// legality oracle. Recording is conservative: any value whose
  /// extraction-time state may diverge from its concrete-mode state degrades
  /// to Unknown rather than being recorded wrongly.
  ExecOutcome extractSpace(cir::Program &Target, search::Space &SpaceOut,
                           transform::TransformContext &TCtx,
                           analysis::TransformPlan *PlanOut);

  /// Concrete mode: applies the program under \p Point to every matching
  /// region of \p Target (mutating it in place).
  ExecOutcome applyPoint(cir::Program &Target, const search::Point &Point,
                         transform::TransformContext &TCtx);

  /// Runs a direct program (no search constructs).
  ExecOutcome applyDirect(cir::Program &Target,
                          transform::TransformContext &TCtx);

  /// Interprets the Search block's assignments.
  Expected<SearchSettings> searchSettings() const;

private:
  const LocusProgram &LProg;
  const ModuleRegistry &Registry;
};

} // namespace lang
} // namespace locus

#endif // LOCUS_LOCUS_INTERPRETER_H
