//===- LocusLexer.cpp - Locus language lexer -----------------------------------===//

#include "src/locus/LocusLexer.h"

#include <cctype>
#include <cstdlib>

namespace locus {
namespace lang {

LocusLexer::LocusLexer(std::string Source) : Source(std::move(Source)) {}

char LocusLexer::peek(int Ahead) const {
  size_t P = Pos + static_cast<size_t>(Ahead);
  return P < Source.size() ? Source[P] : '\0';
}

char LocusLexer::advance() {
  char C = Source[Pos++];
  if (C == '\n')
    ++Line;
  return C;
}

void LocusLexer::skipTrivia() {
  while (!atEnd()) {
    char C = peek();
    if (std::isspace(static_cast<unsigned char>(C))) {
      advance();
      continue;
    }
    if (C == '#' || (C == '/' && peek(1) == '/')) {
      while (!atEnd() && peek() != '\n')
        advance();
      continue;
    }
    if (C == '/' && peek(1) == '*') {
      advance();
      advance();
      while (!atEnd() && !(peek() == '*' && peek(1) == '/'))
        advance();
      if (!atEnd()) {
        advance();
        advance();
      }
      continue;
    }
    break;
  }
}

std::vector<LTok> LocusLexer::lexAll() {
  std::vector<LTok> Tokens;
  while (true) {
    LTok T = lexToken();
    bool IsEof = T.is(LTokKind::Eof);
    Tokens.push_back(std::move(T));
    if (IsEof)
      break;
  }
  return Tokens;
}

LTok LocusLexer::lexToken() {
  skipTrivia();
  LTok T;
  T.Line = Line;
  if (atEnd() || hadError())
    return T;

  char C = peek();

  if (std::isalpha(static_cast<unsigned char>(C)) || C == '_') {
    std::string Ident;
    while (!atEnd() && (std::isalnum(static_cast<unsigned char>(peek())) ||
                        peek() == '_'))
      Ident += advance();
    T.Kind = LTokKind::Ident;
    T.Text = std::move(Ident);
    return T;
  }

  if (std::isdigit(static_cast<unsigned char>(C))) {
    std::string Num;
    bool IsFloat = false;
    while (!atEnd()) {
      char N = peek();
      if (std::isdigit(static_cast<unsigned char>(N))) {
        Num += advance();
      } else if (N == '.' && !IsFloat && peek(1) != '.') {
        // "2..32" must lex as 2 .. 32, so a '.' followed by '.' ends the
        // number.
        IsFloat = true;
        Num += advance();
      } else if ((N == 'e' || N == 'E') &&
                 (std::isdigit(static_cast<unsigned char>(peek(1))) ||
                  ((peek(1) == '+' || peek(1) == '-') &&
                   std::isdigit(static_cast<unsigned char>(peek(2)))))) {
        IsFloat = true;
        Num += advance();
        if (peek() == '+' || peek() == '-')
          Num += advance();
      } else {
        break;
      }
    }
    if (IsFloat) {
      T.Kind = LTokKind::FloatLit;
      T.FloatValue = std::strtod(Num.c_str(), nullptr);
    } else {
      T.Kind = LTokKind::IntLit;
      T.IntValue = std::strtoll(Num.c_str(), nullptr, 10);
    }
    T.Text = std::move(Num);
    return T;
  }

  if (C == '"') {
    advance();
    std::string Str;
    while (!atEnd() && peek() != '"') {
      char S = advance();
      if (S == '\\' && !atEnd()) {
        char E = advance();
        switch (E) {
        case 'n':
          S = '\n';
          break;
        case 't':
          S = '\t';
          break;
        default:
          S = E;
          break;
        }
      }
      Str += S;
    }
    if (atEnd()) {
      ErrorMessage = "line " + std::to_string(T.Line) + ": unterminated string";
      T.Kind = LTokKind::Eof;
      return T;
    }
    advance();
    T.Kind = LTokKind::StrLit;
    T.Text = std::move(Str);
    return T;
  }

  static const char *MultiOps[] = {"..", "**", "<=", ">=", "==",
                                   "!=", "&&", "||"};
  for (const char *Op : MultiOps) {
    if (C == Op[0] && peek(1) == Op[1]) {
      advance();
      advance();
      T.Kind = LTokKind::Punct;
      T.Text = Op;
      return T;
    }
  }

  static const std::string SingleChars = "()[]{};,<>=+-*/%.!";
  if (SingleChars.find(C) != std::string::npos) {
    advance();
    T.Kind = LTokKind::Punct;
    T.Text = std::string(1, C);
    return T;
  }

  ErrorMessage = "line " + std::to_string(Line) + ": unexpected character '" +
                 std::string(1, C) + "'";
  return T;
}

} // namespace lang
} // namespace locus
