//===- Modules.cpp - Transformation/query module registry ---------------------===//

#include "src/locus/Modules.h"

#include "src/analysis/Dependence.h"
#include "src/cir/AstUtils.h"
#include "src/cir/PathIndex.h"
#include "src/transform/AltdescPragmas.h"
#include "src/transform/FusionDistribution.h"
#include "src/transform/GenericTiling.h"
#include "src/transform/Interchange.h"
#include "src/transform/LicmScalarRepl.h"
#include "src/transform/Tiling.h"
#include "src/transform/Unroll.h"

#include <algorithm>

namespace locus {
namespace lang {

using transform::TransformResult;

namespace {

//===----------------------------------------------------------------------===//
// Argument conversion helpers
//===----------------------------------------------------------------------===//

const Value *findArg(const ModuleArgs &Args, const std::string &Name) {
  auto It = Args.find(Name);
  return It == Args.end() ? nullptr : &It->second;
}

Expected<std::string> argString(const ModuleArgs &Args, const std::string &Name,
                                const std::string &Default) {
  const Value *V = findArg(Args, Name);
  if (!V)
    return Default;
  if (V->isString())
    return V->asString();
  if (V->isInt())
    return std::to_string(V->asInt());
  return Expected<std::string>::error("argument '" + Name +
                                      "' must be a string");
}

Expected<int64_t> argInt(const ModuleArgs &Args, const std::string &Name,
                         int64_t Default) {
  const Value *V = findArg(Args, Name);
  if (!V)
    return Default;
  if (V->isInt())
    return V->asInt();
  return Expected<int64_t>::error("argument '" + Name + "' must be an integer");
}

Expected<std::vector<int64_t>> argIntList(const Value &V,
                                          const std::string &Name) {
  std::vector<int64_t> Out;
  if (V.isInt()) {
    Out.push_back(V.asInt());
    return Out;
  }
  const std::vector<Value> *Items = nullptr;
  std::vector<Value> TupleCopy;
  if (V.isList())
    Items = V.asList().get();
  else if (V.isTuple()) {
    TupleCopy = V.asTuple();
    Items = &TupleCopy;
  }
  if (!Items)
    return Expected<std::vector<int64_t>>::error(
        "argument '" + Name + "' must be an integer or list of integers");
  for (const Value &I : *Items) {
    if (!I.isInt())
      return Expected<std::vector<int64_t>>::error(
          "argument '" + Name + "' must contain integers");
    Out.push_back(I.asInt());
  }
  return Out;
}

/// Expands the "loop" argument into a list of loop paths. Accepts a path
/// string, the special string "innermost", or a list of path strings.
Expected<std::vector<std::string>> loopPaths(const ModuleArgs &Args,
                                             ModuleCallContext &Ctx,
                                             const std::string &Default) {
  const Value *V = findArg(Args, "loop");
  std::vector<std::string> Out;
  auto FromString = [&](const std::string &S) {
    if (S == "innermost") {
      for (const cir::LoopEntry &E : cir::listInnerLoops(*Ctx.Region))
        Out.push_back(E.Path);
    } else if (S == "outermost") {
      for (const cir::LoopEntry &E : cir::listOuterLoops(*Ctx.Region))
        Out.push_back(E.Path);
    } else {
      Out.push_back(S);
    }
  };
  if (!V) {
    FromString(Default);
    return Out;
  }
  if (V->isString()) {
    FromString(V->asString());
    return Out;
  }
  if (V->isList()) {
    for (const Value &I : *V->asList()) {
      if (!I.isString())
        return Expected<std::vector<std::string>>::error(
            "'loop' list must contain path strings");
      FromString(I.asString());
    }
    return Out;
  }
  return Expected<std::vector<std::string>>::error(
      "'loop' must be a path string or a list of paths");
}

ModuleOutcome argError(const std::string &Message) {
  return ModuleOutcome::from(TransformResult::error(Message));
}

//===----------------------------------------------------------------------===//
// Transformation members
//===----------------------------------------------------------------------===//

ModuleOutcome runTiling(const ModuleArgs &Args, ModuleCallContext &Ctx) {
  const Value *Factor = findArg(Args, "factor");
  if (!Factor)
    return argError("Tiling requires a 'factor' argument");
  Expected<std::vector<int64_t>> Factors = argIntList(*Factor, "factor");
  if (!Factors.ok())
    return argError(Factors.message());

  transform::TilingArgs T;
  const Value *Loop = findArg(Args, "loop");
  if (Loop && Loop->isInt()) {
    // Fig. 13 form: the loop is named by its 1-based depth in the nest.
    T.SingleLoopDepth = static_cast<int>(Loop->asInt());
    T.LoopPath = "0";
    if (Factors->size() != 1)
      return argError("depth-indexed Tiling takes a single factor");
  } else {
    Expected<std::string> Path = argString(Args, "loop", "0");
    if (!Path.ok())
      return argError(Path.message());
    T.LoopPath = *Path;
  }
  T.Factors = *Factors;
  return ModuleOutcome::from(transform::applyTiling(*Ctx.Region, T, *Ctx.TCtx));
}

ModuleOutcome runGenericTiling(const ModuleArgs &Args, ModuleCallContext &Ctx) {
  const Value *Factor = findArg(Args, "factor");
  if (!Factor || !Factor->isList())
    return argError("GenericTiling requires a matrix 'factor' argument");
  transform::GenericTilingArgs G;
  Expected<std::string> Path = argString(Args, "loop", "0");
  if (!Path.ok())
    return argError(Path.message());
  G.LoopPath = *Path;
  for (const Value &Row : *Factor->asList()) {
    Expected<std::vector<int64_t>> R = argIntList(Row, "factor");
    if (!R.ok())
      return argError(R.message());
    G.Matrix.push_back(*R);
  }
  return ModuleOutcome::from(
      transform::applyGenericTiling(*Ctx.Region, G, *Ctx.TCtx));
}

ModuleOutcome runInterchange(const ModuleArgs &Args, ModuleCallContext &Ctx) {
  const Value *Order = findArg(Args, "order");
  if (!Order)
    return argError("Interchange requires an 'order' argument");
  Expected<std::vector<int64_t>> O = argIntList(*Order, "order");
  if (!O.ok())
    return argError(O.message());
  transform::InterchangeArgs I;
  Expected<std::string> Path = argString(Args, "loop", "0");
  if (!Path.ok())
    return argError(Path.message());
  I.LoopPath = *Path;
  for (int64_t X : *O)
    I.Order.push_back(static_cast<int>(X));
  return ModuleOutcome::from(
      transform::applyInterchange(*Ctx.Region, I, *Ctx.TCtx));
}

ModuleOutcome runUnroll(const ModuleArgs &Args, ModuleCallContext &Ctx) {
  Expected<int64_t> Factor = argInt(Args, "factor", 2);
  if (!Factor.ok())
    return argError(Factor.message());
  Expected<std::vector<std::string>> Paths = loopPaths(Args, Ctx, "innermost");
  if (!Paths.ok())
    return argError(Paths.message());
  if (Paths->empty())
    return ModuleOutcome::from(TransformResult::noop("no loops to unroll"));
  TransformResult Last = TransformResult::noop();
  bool AnySuccess = false;
  for (const std::string &Path : *Paths) {
    transform::UnrollArgs U;
    U.LoopPath = Path;
    U.Factor = *Factor;
    Last = transform::applyUnroll(*Ctx.Region, U, *Ctx.TCtx);
    if (Last.Status == transform::TransformStatus::Error ||
        Last.Status == transform::TransformStatus::Illegal)
      return ModuleOutcome::from(Last);
    AnySuccess |= Last.succeeded();
  }
  return ModuleOutcome::from(AnySuccess ? TransformResult::success() : Last);
}

ModuleOutcome runUnrollAndJam(const ModuleArgs &Args, ModuleCallContext &Ctx) {
  Expected<int64_t> Factor = argInt(Args, "factor", 2);
  if (!Factor.ok())
    return argError(Factor.message());
  transform::UnrollAndJamArgs U;
  const Value *Loop = findArg(Args, "loop");
  if (Loop && Loop->isInt()) {
    U.Depth = static_cast<int>(Loop->asInt());
    U.LoopPath = "0";
  } else {
    Expected<std::string> Path = argString(Args, "loop", "0");
    if (!Path.ok())
      return argError(Path.message());
    U.LoopPath = *Path;
    U.Depth = 1;
  }
  U.Factor = *Factor;
  return ModuleOutcome::from(
      transform::applyUnrollAndJam(*Ctx.Region, U, *Ctx.TCtx));
}

ModuleOutcome runDistribute(const ModuleArgs &Args, ModuleCallContext &Ctx) {
  Expected<std::vector<std::string>> Paths = loopPaths(Args, Ctx, "innermost");
  if (!Paths.ok())
    return argError(Paths.message());
  TransformResult Last = TransformResult::noop();
  bool AnySuccess = false;
  for (const std::string &Path : *Paths) {
    transform::DistributionArgs D;
    D.LoopPath = Path;
    Last = transform::applyDistribution(*Ctx.Region, D, *Ctx.TCtx);
    if (Last.Status == transform::TransformStatus::Error)
      return ModuleOutcome::from(Last);
    AnySuccess |= Last.succeeded();
  }
  return ModuleOutcome::from(AnySuccess ? TransformResult::success() : Last);
}

ModuleOutcome runFusion(const ModuleArgs &Args, ModuleCallContext &Ctx) {
  transform::FusionArgs F;
  Expected<std::string> Path = argString(Args, "loop", "0");
  if (!Path.ok())
    return argError(Path.message());
  F.LoopPath = *Path;
  return ModuleOutcome::from(transform::applyFusion(*Ctx.Region, F, *Ctx.TCtx));
}

ModuleOutcome runLicm(const ModuleArgs &Args, ModuleCallContext &Ctx) {
  (void)Args;
  transform::LicmArgs L;
  return ModuleOutcome::from(transform::applyLicm(*Ctx.Region, L, *Ctx.TCtx));
}

ModuleOutcome runScalarRepl(const ModuleArgs &Args, ModuleCallContext &Ctx) {
  (void)Args;
  transform::ScalarReplArgs S;
  return ModuleOutcome::from(
      transform::applyScalarRepl(*Ctx.Region, S, *Ctx.TCtx));
}

ModuleOutcome runAltdesc(const ModuleArgs &Args, ModuleCallContext &Ctx) {
  transform::AltdescArgs A;
  Expected<std::string> Stmt = argString(Args, "stmt", "");
  Expected<std::string> Source = argString(Args, "source", "");
  if (!Stmt.ok())
    return argError(Stmt.message());
  if (!Source.ok())
    return argError(Source.message());
  if (Source->empty())
    return argError("Altdesc requires a 'source' argument");
  A.StmtPath = *Stmt;
  A.Source = *Source;
  return ModuleOutcome::from(
      transform::applyAltdesc(*Ctx.Region, A, *Ctx.TCtx));
}

ModuleOutcome runSimplePragma(const char *Text, const ModuleArgs &Args,
                              ModuleCallContext &Ctx) {
  transform::PragmaArgs P;
  Expected<std::string> Path = argString(Args, "loop", "0");
  if (!Path.ok())
    return argError(Path.message());
  P.LoopPath = *Path;
  P.Text = Text;
  return ModuleOutcome::from(transform::applyPragma(*Ctx.Region, P, *Ctx.TCtx));
}

ModuleOutcome runOmpFor(const ModuleArgs &Args, ModuleCallContext &Ctx) {
  transform::OmpForArgs O;
  Expected<std::string> Path = argString(Args, "loop", "0");
  Expected<std::string> Schedule = argString(Args, "schedule", "");
  Expected<int64_t> Chunk = argInt(Args, "chunk", 0);
  if (!Path.ok())
    return argError(Path.message());
  if (!Schedule.ok())
    return argError(Schedule.message());
  if (!Chunk.ok())
    return argError(Chunk.message());
  O.LoopPath = *Path;
  O.Schedule = *Schedule;
  O.Chunk = *Chunk;
  return ModuleOutcome::from(transform::applyOmpFor(*Ctx.Region, O, *Ctx.TCtx));
}

//===----------------------------------------------------------------------===//
// Query members
//===----------------------------------------------------------------------===//

/// The first outermost loop of the region, or null.
cir::ForStmt *firstOuterLoop(cir::Block &Region) {
  std::vector<cir::LoopEntry> Outer = cir::listOuterLoops(Region);
  return Outer.empty() ? nullptr : Outer[0].Loop;
}

ModuleOutcome queryIsDepAvailable(const ModuleArgs &Args,
                                  ModuleCallContext &Ctx) {
  (void)Args;
  std::vector<cir::LoopEntry> Outer = cir::listOuterLoops(*Ctx.Region);
  if (Outer.empty())
    return ModuleOutcome::ok(Value::boolean(false));
  for (const cir::LoopEntry &E : Outer)
    if (!analysis::DependenceInfo::compute(*E.Loop))
      return ModuleOutcome::ok(Value::boolean(false));
  return ModuleOutcome::ok(Value::boolean(true));
}

ModuleOutcome queryIsPerfect(const ModuleArgs &Args, ModuleCallContext &Ctx) {
  (void)Args;
  cir::ForStmt *Loop = firstOuterLoop(*Ctx.Region);
  if (!Loop)
    return ModuleOutcome::ok(Value::boolean(false));
  return ModuleOutcome::ok(Value::boolean(cir::isPerfectNest(*Loop)));
}

ModuleOutcome queryDepth(const ModuleArgs &Args, ModuleCallContext &Ctx) {
  (void)Args;
  cir::ForStmt *Loop = firstOuterLoop(*Ctx.Region);
  if (!Loop)
    return ModuleOutcome::ok(Value(static_cast<int64_t>(0)));
  return ModuleOutcome::ok(
      Value(static_cast<int64_t>(cir::loopNestDepth(*Loop))));
}

ModuleOutcome queryInnerLoops(const ModuleArgs &Args, ModuleCallContext &Ctx) {
  (void)Args;
  std::vector<Value> Paths;
  for (const cir::LoopEntry &E : cir::listInnerLoops(*Ctx.Region))
    Paths.push_back(Value(E.Path));
  return ModuleOutcome::ok(Value::list(std::move(Paths)));
}

ModuleOutcome queryOuterLoops(const ModuleArgs &Args, ModuleCallContext &Ctx) {
  (void)Args;
  std::vector<Value> Paths;
  for (const cir::LoopEntry &E : cir::listOuterLoops(*Ctx.Region))
    Paths.push_back(Value(E.Path));
  return ModuleOutcome::ok(Value::list(std::move(Paths)));
}

} // namespace

namespace {

/// The region's own source location, falling back to its first statement's.
support::SrcLoc regionLoc(const cir::Block &Region) {
  if (Region.Loc.valid())
    return Region.Loc;
  for (const auto &S : Region.Stmts)
    if (S->Loc.valid())
      return S->Loc;
  return support::SrcLoc{};
}

} // namespace

void ModuleRegistry::add(const std::string &Module, const std::string &Member,
                         ModuleMember M) {
  // Decorate every Illegal/Error result with the region name and source
  // location at this single choke point, so no individual wrapper can emit
  // a bare reason string.
  ModuleFn Inner = std::move(M.Fn);
  M.Fn = [Inner](const ModuleArgs &Args, ModuleCallContext &Ctx) {
    ModuleOutcome O = Inner(Args, Ctx);
    transform::TransformResult &R = O.Result;
    bool Failed = R.Status == transform::TransformStatus::Illegal ||
                  R.Status == transform::TransformStatus::Error;
    if (Failed && Ctx.Region) {
      if (R.Region.empty())
        R.Region = Ctx.Region->RegionName;
      if (!R.Loc.valid())
        R.Loc = regionLoc(*Ctx.Region);
      if (!R.Region.empty())
        R.Message =
            "region '" + R.Region + "' (" + R.Loc.str() + "): " + R.Message;
    }
    return O;
  };
  Collections[Module][Member] = std::move(M);
}

const ModuleMember *ModuleRegistry::find(const std::string &Module,
                                         const std::string &Member) const {
  auto MIt = Collections.find(Module);
  if (MIt == Collections.end())
    return nullptr;
  auto It = MIt->second.find(Member);
  return It == MIt->second.end() ? nullptr : &It->second;
}

ModuleRegistry ModuleRegistry::standard() {
  ModuleRegistry R;

  // RoseLocus: the annotation-based transformations of Section IV-A.2.
  R.add("RoseLocus", "Tiling", ModuleMember{runTiling, false});
  R.add("RoseLocus", "Interchange", ModuleMember{runInterchange, false});
  R.add("RoseLocus", "Unroll", ModuleMember{runUnroll, false});
  R.add("RoseLocus", "UnrollAndJam", ModuleMember{runUnrollAndJam, false});
  R.add("RoseLocus", "LICM", ModuleMember{runLicm, false});
  R.add("RoseLocus", "ScalarRepl", ModuleMember{runScalarRepl, false});
  R.add("RoseLocus", "Distribute", ModuleMember{runDistribute, false});
  R.add("RoseLocus", "IsDepAvailable", ModuleMember{queryIsDepAvailable, true});

  // Pips: Section IV-A.1 (unrolling, GenericTiling, fusion, unroll-and-jam).
  R.add("Pips", "Unroll", ModuleMember{runUnroll, false});
  R.add("Pips", "Tiling", ModuleMember{runTiling, false});
  R.add("Pips", "GenericTiling", ModuleMember{runGenericTiling, false});
  R.add("Pips", "Fusion", ModuleMember{runFusion, false});
  R.add("Pips", "UnrollAndJam", ModuleMember{runUnrollAndJam, false});

  // Pragma: Section IV-A.3.
  R.add("Pragma", "Ivdep", ModuleMember{
                               [](const ModuleArgs &A, ModuleCallContext &C) {
                                 return runSimplePragma("ivdep", A, C);
                               },
                               false});
  R.add("Pragma", "Vector", ModuleMember{
                                [](const ModuleArgs &A, ModuleCallContext &C) {
                                  return runSimplePragma("vector always", A, C);
                                },
                                false});
  R.add("Pragma", "OMPFor", ModuleMember{runOmpFor, false});

  // BuiltIn: Section IV-A.4.
  R.add("BuiltIn", "ListInnerLoops", ModuleMember{queryInnerLoops, true});
  R.add("BuiltIn", "ListOuterLoops", ModuleMember{queryOuterLoops, true});
  R.add("BuiltIn", "IsPerfectLoopNest", ModuleMember{queryIsPerfect, true});
  R.add("BuiltIn", "LoopNestDepth", ModuleMember{queryDepth, true});
  R.add("BuiltIn", "Altdesc", ModuleMember{runAltdesc, false});
  return R;
}

} // namespace lang
} // namespace locus
