//===- LocusPrinter.h - Locus program unparser ------------------*- C++ -*-===//
///
/// \file
/// Renders Locus ASTs back to source text, and exports *direct programs*:
/// the paper (Section II) says the search's result "is a Locus direct
/// program that can be shipped with the baseline source code to be reused
/// for machines with similar environments". exportDirectProgram pins every
/// search construct of a program to the values of a Point — OR blocks and
/// OR statements collapse to the chosen alternative, optional statements are
/// kept or dropped, and the search data types become literals.
///
//===----------------------------------------------------------------------===//
#ifndef LOCUS_LOCUS_LOCUSPRINTER_H
#define LOCUS_LOCUS_LOCUSPRINTER_H

#include "src/locus/LocusAst.h"
#include "src/search/Space.h"
#include "src/support/Error.h"

#include <string>

namespace locus {
namespace lang {

/// Renders the program as Locus source text (parseable round trip).
std::string printLocusProgram(const LocusProgram &Prog);

/// Renders one expression.
std::string printLocusExpr(const LExpr &E);

/// Pins every search construct of \p Prog to \p Point (whose keys use the
/// extractor's path#NodeId identities) and returns the resulting direct
/// program. Constructs inside OptSeqs invoked from several call sites keep
/// their per-callsite identities, so the OptSeq is specialized per use.
Expected<std::unique_ptr<LocusProgram>>
exportDirectProgram(const LocusProgram &Prog, const search::Point &Point);

} // namespace lang
} // namespace locus

#endif // LOCUS_LOCUS_LOCUSPRINTER_H
