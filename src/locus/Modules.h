//===- Modules.h - Transformation/query module registry ---------*- C++ -*-===//
///
/// \file
/// The module integration layer of Section IV-A. Modules are grouped into
/// the four collections the paper ships — Pips, RoseLocus, Pragma and
/// BuiltIn — each exposing named members the Locus interpreter can invoke
/// ("RoseLocus.Tiling(...)"). Every member is a wrapper function that
/// translates dynamically typed Locus arguments into the native
/// transformation's argument struct and reports the module exit status back
/// (successful / illegal / error), matching the wrapper protocol of
/// Section II. Query members (IsDepAvailable, ListInnerLoops, ...) return
/// values and never mutate the region.
///
//===----------------------------------------------------------------------===//
#ifndef LOCUS_LOCUS_MODULES_H
#define LOCUS_LOCUS_MODULES_H

#include "src/locus/Value.h"
#include "src/transform/Transform.h"

#include <functional>
#include <map>
#include <string>

namespace locus {
namespace lang {

/// Context handed to module member invocations.
struct ModuleCallContext {
  cir::Block *Region = nullptr;
  cir::Program *Program = nullptr;
  transform::TransformContext *TCtx = nullptr;
};

/// Result of a module member call: native status plus a return value
/// (meaningful for queries).
struct ModuleOutcome {
  transform::TransformResult Result;
  Value Ret;

  static ModuleOutcome ok(Value V = Value::none()) {
    return ModuleOutcome{transform::TransformResult::success(), std::move(V)};
  }
  static ModuleOutcome from(transform::TransformResult R) {
    return ModuleOutcome{std::move(R), Value::none()};
  }
};

using ModuleArgs = std::map<std::string, Value>;
using ModuleFn = std::function<ModuleOutcome(const ModuleArgs &, ModuleCallContext &)>;

/// One callable module member.
struct ModuleMember {
  ModuleFn Fn;
  /// Queries are executed eagerly before space conversion (Section IV-C)
  /// and may run during extraction; transformations may not.
  bool IsQuery = false;
};

/// All module collections known to the system.
class ModuleRegistry {
public:
  /// Builds the standard registry with the four collections of the paper.
  static ModuleRegistry standard();

  /// Registers (or replaces) a member.
  void add(const std::string &Module, const std::string &Member,
           ModuleMember M);

  /// Looks up Module.Member; null when unknown.
  const ModuleMember *find(const std::string &Module,
                           const std::string &Member) const;

  /// True when the collection name exists at all.
  bool hasModule(const std::string &Module) const {
    return Collections.count(Module) != 0;
  }

private:
  std::map<std::string, std::map<std::string, ModuleMember>> Collections;
};

} // namespace lang
} // namespace locus

#endif // LOCUS_LOCUS_MODULES_H
