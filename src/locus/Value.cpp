//===- Value.cpp - Locus dynamic values ---------------------------------------===//

#include "src/locus/Value.h"

#include <cassert>
#include <cmath>
#include <sstream>

namespace locus {
namespace lang {

Value Value::tuple(std::vector<Value> Items) {
  Value V;
  auto Box = std::make_shared<TupleBox>();
  Box->Items = std::move(Items);
  V.Data = TupleRef(std::move(Box));
  return V;
}

Value::Kind Value::kind() const {
  switch (Data.index()) {
  case 0:
    return Kind::None;
  case 1:
    return Kind::Int;
  case 2:
    return Kind::Float;
  case 3:
    return Kind::String;
  case 4:
    return Kind::List;
  case 5:
    return Kind::Tuple;
  case 6:
    return Kind::Dict;
  case 7:
    return Kind::Param;
  }
  return Kind::None;
}

const std::string &Value::paramId() const {
  assert(isParam() && "paramId on non-param");
  return std::get<ParamBox>(Data).Id;
}

bool Value::containsParam() const {
  switch (kind()) {
  case Kind::Param:
    return true;
  case Kind::List:
    for (const Value &V : *asList())
      if (V.containsParam())
        return true;
    return false;
  case Kind::Tuple:
    for (const Value &V : asTuple())
      if (V.containsParam())
        return true;
    return false;
  case Kind::Dict:
    for (const auto &[K, V] : *asDict()) {
      (void)K;
      if (V.containsParam())
        return true;
    }
    return false;
  default:
    return false;
  }
}

int64_t Value::asInt() const {
  if (const auto *I = std::get_if<int64_t>(&Data))
    return *I;
  if (const auto *D = std::get_if<double>(&Data))
    return static_cast<int64_t>(*D);
  assert(false && "asInt on non-number");
  return 0;
}

double Value::asFloat() const {
  if (const auto *I = std::get_if<int64_t>(&Data))
    return static_cast<double>(*I);
  if (const auto *D = std::get_if<double>(&Data))
    return *D;
  assert(false && "asFloat on non-number");
  return 0;
}

const std::string &Value::asString() const {
  assert(isString() && "asString on non-string");
  return std::get<std::string>(Data);
}

ListRef Value::asList() const {
  assert(isList() && "asList on non-list");
  return std::get<ListRef>(Data);
}

const std::vector<Value> &Value::asTuple() const {
  assert(isTuple() && "asTuple on non-tuple");
  return std::get<TupleRef>(Data)->Items;
}

DictRef Value::asDict() const {
  assert(isDict() && "asDict on non-dict");
  return std::get<DictRef>(Data);
}

bool Value::truthy() const {
  switch (kind()) {
  case Kind::None:
    return false;
  case Kind::Int:
    return std::get<int64_t>(Data) != 0;
  case Kind::Float:
    return std::get<double>(Data) != 0.0;
  case Kind::String:
    return !std::get<std::string>(Data).empty();
  case Kind::List:
    return !asList()->empty();
  case Kind::Tuple:
    return !asTuple().empty();
  case Kind::Dict:
    return !asDict()->empty();
  case Kind::Param:
    return true; // interpreters must test isParam() before truthiness
  }
  return false;
}

bool Value::equals(const Value &Other) const {
  if (isNumber() && Other.isNumber())
    return asFloat() == Other.asFloat();
  if (kind() != Other.kind())
    return false;
  switch (kind()) {
  case Kind::None:
    return true;
  case Kind::String:
    return asString() == Other.asString();
  case Kind::List: {
    const auto &A = *asList();
    const auto &B = *Other.asList();
    if (A.size() != B.size())
      return false;
    for (size_t I = 0; I < A.size(); ++I)
      if (!A[I].equals(B[I]))
        return false;
    return true;
  }
  case Kind::Tuple: {
    const auto &A = asTuple();
    const auto &B = Other.asTuple();
    if (A.size() != B.size())
      return false;
    for (size_t I = 0; I < A.size(); ++I)
      if (!A[I].equals(B[I]))
        return false;
    return true;
  }
  case Kind::Dict: {
    const auto &A = *asDict();
    const auto &B = *Other.asDict();
    if (A.size() != B.size())
      return false;
    for (const auto &[K, V] : A) {
      auto It = B.find(K);
      if (It == B.end() || !V.equals(It->second))
        return false;
    }
    return true;
  }
  default:
    return false;
  }
}

std::string Value::str() const {
  std::ostringstream Out;
  switch (kind()) {
  case Kind::None:
    return "None";
  case Kind::Int:
    Out << std::get<int64_t>(Data);
    return Out.str();
  case Kind::Float:
    Out << std::get<double>(Data);
    return Out.str();
  case Kind::String:
    return std::get<std::string>(Data);
  case Kind::List: {
    Out << '[';
    const auto &Items = *asList();
    for (size_t I = 0; I < Items.size(); ++I)
      Out << (I ? ", " : "") << Items[I].str();
    Out << ']';
    return Out.str();
  }
  case Kind::Tuple: {
    Out << '(';
    const auto &Items = asTuple();
    for (size_t I = 0; I < Items.size(); ++I)
      Out << (I ? ", " : "") << Items[I].str();
    Out << ')';
    return Out.str();
  }
  case Kind::Dict: {
    Out << '{';
    bool First = true;
    for (const auto &[K, V] : *asDict()) {
      if (!First)
        Out << ", ";
      First = false;
      Out << K << ": " << V.str();
    }
    Out << '}';
    return Out.str();
  }
  case Kind::Param:
    return "<search:" + std::get<ParamBox>(Data).Id + ">";
  }
  return "";
}

namespace {

bool bothNumbers(const Value &A, const Value &B) {
  return A.isNumber() && B.isNumber();
}

bool anyFloat(const Value &A, const Value &B) {
  return A.isFloat() || B.isFloat();
}

} // namespace

Expected<Value> valueAdd(const Value &A, const Value &B) {
  if (A.isParam() || A.containsParam())
    return A;
  if (B.isParam() || B.containsParam())
    return B;
  if (bothNumbers(A, B)) {
    if (anyFloat(A, B))
      return Value(A.asFloat() + B.asFloat());
    return Value(A.asInt() + B.asInt());
  }
  if (A.isString()) {
    // String concatenation coerces the right operand, as in the paper's
    // examples ("scatter_" + datalayout, "Tiling selected: " + type).
    return Value(A.asString() + B.str());
  }
  if (A.isList() && B.isList()) {
    std::vector<Value> Items = *A.asList();
    for (const Value &V : *B.asList())
      Items.push_back(V);
    return Value::list(std::move(Items));
  }
  return Expected<Value>::error("cannot add " + A.str() + " and " + B.str());
}

Expected<Value> valueSub(const Value &A, const Value &B) {
  if (A.isParam() || A.containsParam())
    return A;
  if (B.isParam() || B.containsParam())
    return B;
  if (!bothNumbers(A, B))
    return Expected<Value>::error("cannot subtract non-numbers");
  if (anyFloat(A, B))
    return Value(A.asFloat() - B.asFloat());
  return Value(A.asInt() - B.asInt());
}

Expected<Value> valueMul(const Value &A, const Value &B) {
  if (A.isParam() || A.containsParam())
    return A;
  if (B.isParam() || B.containsParam())
    return B;
  if (!bothNumbers(A, B))
    return Expected<Value>::error("cannot multiply non-numbers");
  if (anyFloat(A, B))
    return Value(A.asFloat() * B.asFloat());
  return Value(A.asInt() * B.asInt());
}

Expected<Value> valueDiv(const Value &A, const Value &B) {
  if (A.isParam() || A.containsParam())
    return A;
  if (B.isParam() || B.containsParam())
    return B;
  if (!bothNumbers(A, B))
    return Expected<Value>::error("cannot divide non-numbers");
  if (anyFloat(A, B)) {
    if (B.asFloat() == 0.0)
      return Expected<Value>::error("division by zero");
    return Value(A.asFloat() / B.asFloat());
  }
  if (B.asInt() == 0)
    return Expected<Value>::error("division by zero");
  return Value(A.asInt() / B.asInt());
}

Expected<Value> valueMod(const Value &A, const Value &B) {
  if (A.isParam() || A.containsParam())
    return A;
  if (B.isParam() || B.containsParam())
    return B;
  if (!A.isInt() || !B.isInt())
    return Expected<Value>::error("modulo requires integers");
  if (B.asInt() == 0)
    return Expected<Value>::error("modulo by zero");
  return Value(A.asInt() % B.asInt());
}

Expected<Value> valuePow(const Value &A, const Value &B) {
  if (A.isParam() || A.containsParam())
    return A;
  if (B.isParam() || B.containsParam())
    return B;
  if (!bothNumbers(A, B))
    return Expected<Value>::error("power requires numbers");
  if (!anyFloat(A, B) && B.asInt() >= 0) {
    int64_t Result = 1;
    for (int64_t I = 0; I < B.asInt(); ++I)
      Result *= A.asInt();
    return Value(Result);
  }
  return Value(std::pow(A.asFloat(), B.asFloat()));
}

Expected<Value> valueCompare(const std::string &Op, const Value &A,
                             const Value &B) {
  if (A.isParam() || A.containsParam())
    return A;
  if (B.isParam() || B.containsParam())
    return B;
  if (Op == "==")
    return Value::boolean(A.equals(B));
  if (Op == "!=")
    return Value::boolean(!A.equals(B));
  if (bothNumbers(A, B)) {
    double X = A.asFloat(), Y = B.asFloat();
    if (Op == "<")
      return Value::boolean(X < Y);
    if (Op == "<=")
      return Value::boolean(X <= Y);
    if (Op == ">")
      return Value::boolean(X > Y);
    if (Op == ">=")
      return Value::boolean(X >= Y);
  }
  if (A.isString() && B.isString()) {
    int C = A.asString().compare(B.asString());
    if (Op == "<")
      return Value::boolean(C < 0);
    if (Op == "<=")
      return Value::boolean(C <= 0);
    if (Op == ">")
      return Value::boolean(C > 0);
    if (Op == ">=")
      return Value::boolean(C >= 0);
  }
  return Expected<Value>::error("cannot compare " + A.str() + " " + Op + " " +
                                B.str());
}

} // namespace lang
} // namespace locus
