//===- LocusParser.cpp - Locus language parser ---------------------------------===//

#include "src/locus/LocusParser.h"

#include "src/locus/LocusLexer.h"

#include <cassert>

namespace locus {
namespace lang {

namespace {

class Parser {
public:
  explicit Parser(std::vector<LTok> Tokens) : Tokens(std::move(Tokens)) {}

  Expected<std::unique_ptr<LocusProgram>> parse() {
    auto Prog = std::make_unique<LocusProgram>();
    while (!peek().is(LTokKind::Eof) && Error.empty()) {
      if (peek().isIdent("import")) {
        advance();
        if (!peek().is(LTokKind::StrLit)) {
          fail("import expects a string");
          break;
        }
        Prog->Imports.push_back(advance().Text);
        expect(";");
      } else if (peek().isIdent("extern")) {
        advance();
        parseExpr(); // accepted and ignored
        expect(";");
      } else if (peek().isIdent("CodeReg")) {
        advance();
        std::string Name = expectIdent("CodeReg name");
        LBlock Body = parseBlock();
        Prog->CodeRegs.emplace_back(std::move(Name), std::move(Body));
      } else if (peek().isIdent("OptSeq")) {
        Prog->OptSeqs.push_back(parseFunction("OptSeq"));
      } else if (peek().isIdent("Query")) {
        Prog->Queries.push_back(parseFunction("Query"));
      } else if (peek().isIdent("def")) {
        Prog->Defs.push_back(parseFunction("def"));
      } else if (peek().isIdent("Module")) {
        advance();
        std::string Name = expectIdent("Module name");
        parseBlock(); // declaration body; implementations are native
        Prog->Modules.push_back(std::move(Name));
      } else if (peek().isIdent("Search")) {
        advance();
        Prog->SearchBlock = parseBlock();
        Prog->HasSearchBlock = true;
      } else {
        // Top-level statement (global scope), e.g. Fig. 11's
        // datalayout = enum("DZG", ...);
        LStmtPtr S = parseStmt();
        if (!S)
          break;
        Prog->GlobalStmts.Stmts.push_back(std::move(S));
      }
    }
    if (!Error.empty())
      return Expected<std::unique_ptr<LocusProgram>>::error(Error);
    return Expected<std::unique_ptr<LocusProgram>>(std::move(Prog));
  }

private:
  const LTok &peek(int Ahead = 0) const {
    size_t P = Pos + static_cast<size_t>(Ahead);
    if (P >= Tokens.size())
      P = Tokens.size() - 1;
    return Tokens[P];
  }
  const LTok &advance() {
    const LTok &T = Tokens[Pos];
    if (Pos + 1 < Tokens.size())
      ++Pos;
    return T;
  }
  bool match(const char *P) {
    if (peek().isPunct(P)) {
      advance();
      return true;
    }
    return false;
  }
  void expect(const char *P) {
    if (!match(P))
      fail(std::string("expected '") + P + "' but found '" + peek().Text + "'");
  }
  std::string expectIdent(const char *What) {
    if (!peek().is(LTokKind::Ident)) {
      fail(std::string("expected ") + What);
      return "";
    }
    return advance().Text;
  }
  void fail(const std::string &Message) {
    if (Error.empty())
      Error = "line " + std::to_string(peek().Line) + ": " + Message;
    Pos = Tokens.size() - 1;
  }

  LExprPtr newExpr(LExprKind Kind) {
    auto E = std::make_unique<LExpr>();
    E->Kind = Kind;
    E->NodeId = NextId++;
    E->Line = peek().Line;
    return E;
  }
  LStmtPtr newStmt(LStmtKind Kind) {
    auto S = std::make_unique<LStmt>();
    S->Kind = Kind;
    S->NodeId = NextId++;
    S->Line = peek().Line;
    return S;
  }

  LFunction parseFunction(const char *Keyword) {
    advance(); // keyword
    LFunction F;
    F.Line = peek().Line;
    F.Name = expectIdent((std::string(Keyword) + " name").c_str());
    expect("(");
    if (!peek().isPunct(")")) {
      while (true) {
        F.Params.push_back(expectIdent("parameter name"));
        if (!match(","))
          break;
      }
    }
    expect(")");
    F.Body = parseBlock();
    return F;
  }

  LBlock parseBlock() {
    LBlock Block;
    expect("{");
    while (!peek().isPunct("}") && !peek().is(LTokKind::Eof) && Error.empty()) {
      LStmtPtr S = parseStmt();
      if (!S)
        break;
      Block.Stmts.push_back(std::move(S));
    }
    expect("}");
    return Block;
  }

  LStmtPtr parseStmt() {
    // Block or OR-blocks group.
    if (peek().isPunct("{")) {
      LStmtPtr S = newStmt(LStmtKind::Block);
      S->Blocks.push_back(parseBlock());
      while (peek().isIdent("OR")) {
        advance();
        S->Kind = LStmtKind::OrBlocks;
        S->Blocks.push_back(parseBlock());
      }
      return S;
    }
    if (peek().isIdent("if"))
      return parseIf();
    if (peek().isIdent("for"))
      return parseFor();
    if (peek().isIdent("while")) {
      LStmtPtr S = newStmt(LStmtKind::While);
      advance();
      S->Conds.push_back(parseExpr());
      S->Blocks.push_back(parseBlock());
      return S;
    }
    if (peek().isIdent("return")) {
      LStmtPtr S = newStmt(LStmtKind::Return);
      advance();
      if (!peek().isPunct(";"))
        S->Expr = parseExpr();
      expect(";");
      return S;
    }
    if (peek().isIdent("print")) {
      LStmtPtr S = newStmt(LStmtKind::Print);
      advance();
      S->Expr = parseExpr();
      expect(";");
      return S;
    }
    LStmtPtr S = parseSmallStmt();
    expect(";");
    return S;
  }

  LStmtPtr parseIf() {
    LStmtPtr S = newStmt(LStmtKind::If);
    advance(); // if
    S->Conds.push_back(parseExpr());
    S->Blocks.push_back(parseBlock());
    while (peek().isIdent("elif")) {
      advance();
      S->Conds.push_back(parseExpr());
      S->Blocks.push_back(parseBlock());
    }
    if (peek().isIdent("else")) {
      advance();
      S->ElseBlock = parseBlock();
      S->HasElse = true;
    }
    return S;
  }

  LStmtPtr parseFor() {
    LStmtPtr S = newStmt(LStmtKind::For);
    advance(); // for
    expect("(");
    S->ForInit = parseSmallStmt();
    expect(";");
    S->Conds.push_back(parseExpr());
    expect(";");
    S->ForStep = parseSmallStmt();
    expect(")");
    S->Blocks.push_back(parseBlock());
    return S;
  }

  /// smallstmt := '*'? orexpr | NAME (',' NAME)* '=' orexpr
  LStmtPtr parseSmallStmt() {
    bool Optional = false;
    if (peek().isPunct("*")) {
      advance();
      Optional = true;
    }

    // Assignment lookahead: IDENT (',' IDENT)* '='.
    if (!Optional && peek().is(LTokKind::Ident)) {
      size_t Scan = Pos;
      bool IsAssign = false;
      while (Scan < Tokens.size() && Tokens[Scan].is(LTokKind::Ident)) {
        ++Scan;
        if (Scan < Tokens.size() && Tokens[Scan].isPunct(",")) {
          ++Scan;
          continue;
        }
        if (Scan < Tokens.size() && Tokens[Scan].isPunct("="))
          IsAssign = true;
        break;
      }
      if (IsAssign) {
        LStmtPtr S = newStmt(LStmtKind::Assign);
        while (true) {
          S->Targets.push_back(expectIdent("assignment target"));
          if (!match(","))
            break;
        }
        expect("=");
        S->Rhs = parseOrExpr();
        return S;
      }
    }

    LStmtPtr S = newStmt(LStmtKind::ExprStmt);
    S->Optional = Optional;
    S->Expr = parseOrExpr();
    return S;
  }

  /// orexpr := test ('OR' test)*
  LExprPtr parseOrExpr() {
    LExprPtr First = parseExpr();
    if (!peek().isIdent("OR"))
      return First;
    LExprPtr Or = newExpr(LExprKind::OrExpr);
    Or->Items.push_back(std::move(First));
    while (peek().isIdent("OR")) {
      advance();
      Or->Items.push_back(parseExpr());
    }
    return Or;
  }

  /// test with optional range suffix: a '..' b ['..' c]
  LExprPtr parseExpr() {
    LExprPtr E = parseLogicalOr();
    if (peek().isPunct("..")) {
      LExprPtr R = newExpr(LExprKind::Range);
      R->RangeLo = std::move(E);
      advance();
      R->RangeHi = parseLogicalOr();
      if (match(".."))
        R->RangeStep = parseLogicalOr();
      return R;
    }
    return E;
  }

  LExprPtr binary(const char *Op, LExprPtr L, LExprPtr R) {
    LExprPtr E = newExpr(LExprKind::Binary);
    E->Op = Op;
    E->Lhs = std::move(L);
    E->Rhs = std::move(R);
    return E;
  }

  LExprPtr parseLogicalOr() {
    LExprPtr E = parseLogicalAnd();
    while (peek().isPunct("||")) {
      advance();
      E = binary("||", std::move(E), parseLogicalAnd());
    }
    return E;
  }

  LExprPtr parseLogicalAnd() {
    LExprPtr E = parseNot();
    while (peek().isPunct("&&")) {
      advance();
      E = binary("&&", std::move(E), parseNot());
    }
    return E;
  }

  LExprPtr parseNot() {
    if (peek().isIdent("not")) {
      advance();
      LExprPtr E = newExpr(LExprKind::Unary);
      E->Op = "not";
      E->Lhs = parseNot();
      return E;
    }
    return parseComparison();
  }

  LExprPtr parseComparison() {
    LExprPtr E = parseAdditive();
    while (peek().isPunct("<") || peek().isPunct(">") || peek().isPunct("==") ||
           peek().isPunct("!=") || peek().isPunct("<=") ||
           peek().isPunct(">=")) {
      std::string Op = advance().Text;
      E = binary(Op.c_str(), std::move(E), parseAdditive());
    }
    return E;
  }

  LExprPtr parseAdditive() {
    LExprPtr E = parseMultiplicative();
    while (peek().isPunct("+") || peek().isPunct("-")) {
      std::string Op = advance().Text;
      E = binary(Op.c_str(), std::move(E), parseMultiplicative());
    }
    return E;
  }

  LExprPtr parseMultiplicative() {
    LExprPtr E = parsePower();
    while (peek().isPunct("*") || peek().isPunct("/") || peek().isPunct("%")) {
      std::string Op = advance().Text;
      E = binary(Op.c_str(), std::move(E), parsePower());
    }
    return E;
  }

  LExprPtr parsePower() {
    LExprPtr E = parseUnary();
    if (peek().isPunct("**")) {
      advance();
      return binary("**", std::move(E), parsePower());
    }
    return E;
  }

  LExprPtr parseUnary() {
    if (peek().isPunct("-")) {
      advance();
      LExprPtr E = newExpr(LExprKind::Unary);
      E->Op = "-";
      E->Lhs = parseUnary();
      return E;
    }
    if (peek().isPunct("!")) {
      advance();
      LExprPtr E = newExpr(LExprKind::Unary);
      E->Op = "not";
      E->Lhs = parseUnary();
      return E;
    }
    return parsePostfix();
  }

  static SearchKind searchKindFor(const std::string &Name, bool &Found) {
    Found = true;
    if (Name == "enum")
      return SearchKind::Enum;
    if (Name == "integer")
      return SearchKind::Integer;
    if (Name == "float")
      return SearchKind::Float;
    if (Name == "permutation")
      return SearchKind::Permutation;
    if (Name == "poweroftwo")
      return SearchKind::Pow2;
    if (Name == "loginteger")
      return SearchKind::LogInt;
    if (Name == "logfloat")
      return SearchKind::LogFloat;
    Found = false;
    return SearchKind::Enum;
  }

  std::vector<LArg> parseCallArgs() {
    std::vector<LArg> Args;
    expect("(");
    if (!peek().isPunct(")")) {
      while (true) {
        LArg A;
        // Keyword argument lookahead: IDENT '=' (not '==').
        if (peek().is(LTokKind::Ident) && peek(1).isPunct("=")) {
          A.Keyword = advance().Text;
          advance(); // '='
        }
        A.Expr = parseExpr();
        Args.push_back(std::move(A));
        if (!match(","))
          break;
      }
    }
    expect(")");
    return Args;
  }

  LExprPtr parsePostfix() {
    LExprPtr E = parseAtom();
    while (true) {
      if (peek().isPunct("(")) {
        // Search data types become SearchCall nodes.
        if (E && E->Kind == LExprKind::Name) {
          bool IsSearch = false;
          SearchKind SK = searchKindFor(E->Name, IsSearch);
          if (IsSearch) {
            LExprPtr S = newExpr(LExprKind::SearchCall);
            S->SKind = SK;
            S->Name = E->Name;
            S->Args = parseCallArgs();
            E = std::move(S);
            continue;
          }
          if (E->Name == "dict") {
            LExprPtr D = newExpr(LExprKind::DictMaker);
            D->Args = parseCallArgs();
            E = std::move(D);
            continue;
          }
        }
        LExprPtr C = newExpr(LExprKind::Call);
        C->Base = std::move(E);
        C->Args = parseCallArgs();
        E = std::move(C);
      } else if (peek().isPunct(".") && !peek().isPunct("..")) {
        advance();
        LExprPtr A = newExpr(LExprKind::Attr);
        A->Base = std::move(E);
        A->Name = expectIdent("attribute name");
        E = std::move(A);
      } else if (peek().isPunct("[")) {
        advance();
        LExprPtr I = newExpr(LExprKind::Index);
        I->Base = std::move(E);
        I->Sub = parseExpr();
        expect("]");
        E = std::move(I);
      } else {
        return E;
      }
    }
  }

  LExprPtr parseAtom() {
    const LTok &T = peek();
    if (T.is(LTokKind::IntLit)) {
      LExprPtr E = newExpr(LExprKind::Lit);
      E->Literal = Value(advance().IntValue);
      return E;
    }
    if (T.is(LTokKind::FloatLit)) {
      LExprPtr E = newExpr(LExprKind::Lit);
      E->Literal = Value(advance().FloatValue);
      return E;
    }
    if (T.is(LTokKind::StrLit)) {
      LExprPtr E = newExpr(LExprKind::Lit);
      E->Literal = Value(advance().Text);
      return E;
    }
    if (T.isIdent("None")) {
      advance();
      LExprPtr E = newExpr(LExprKind::Lit);
      E->Literal = Value::none();
      return E;
    }
    if (T.is(LTokKind::Ident)) {
      LExprPtr E = newExpr(LExprKind::Name);
      E->Name = advance().Text;
      return E;
    }
    if (T.isPunct("[")) {
      advance();
      LExprPtr E = newExpr(LExprKind::ListMaker);
      if (!peek().isPunct("]")) {
        while (true) {
          E->Items.push_back(parseExpr());
          if (!match(","))
            break;
        }
      }
      expect("]");
      return E;
    }
    if (T.isPunct("(")) {
      advance();
      LExprPtr First = parseExpr();
      if (match(")"))
        return First; // parenthesized expression
      // Tuple maker.
      LExprPtr E = newExpr(LExprKind::TupleMaker);
      E->Items.push_back(std::move(First));
      while (match(","))
        if (!peek().isPunct(")"))
          E->Items.push_back(parseExpr());
      expect(")");
      return E;
    }
    fail("unexpected token '" + T.Text + "' in expression");
    return nullptr;
  }

  std::vector<LTok> Tokens;
  size_t Pos = 0;
  std::string Error;
  int NextId = 1;
};

} // namespace

Expected<std::unique_ptr<LocusProgram>>
parseLocusProgram(const std::string &Source) {
  LocusLexer Lex(Source);
  std::vector<LTok> Tokens = Lex.lexAll();
  if (Lex.hadError())
    return Expected<std::unique_ptr<LocusProgram>>::error(Lex.error());
  Parser P(std::move(Tokens));
  return P.parse();
}

} // namespace lang
} // namespace locus
