//===- LocusAst.h - Locus optimization-language AST -------------*- C++ -*-===//
///
/// \file
/// AST of the Locus optimization language (the EBNF of Fig. 4). Every node
/// carries a NodeId assigned in parse order; search constructs derive their
/// stable parameter identities from these ids so that space extraction and
/// concrete execution agree on which parameter is which.
///
//===----------------------------------------------------------------------===//
#ifndef LOCUS_LOCUS_LOCUSAST_H
#define LOCUS_LOCUS_LOCUSAST_H

#include "src/locus/Value.h"

#include <memory>
#include <string>
#include <vector>

namespace locus {
namespace lang {

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

enum class LExprKind {
  Lit,        ///< number / string / None literal
  Name,
  Attr,       ///< Base.Member (module member access)
  Call,       ///< Callee(args...), with keyword arguments
  Index,      ///< Base[Sub]
  Binary,
  Unary,
  ListMaker,  ///< [a, b, c]
  TupleMaker, ///< (a, b)
  DictMaker,  ///< dict()
  Range,      ///< lo .. hi [.. step]
  OrExpr,     ///< a OR b OR c (search alternative)
  SearchCall, ///< enum/integer/float/permutation/poweroftwo/loginteger/logfloat
};

/// The search data types of Section III.
enum class SearchKind { Enum, Integer, Float, Permutation, Pow2, LogInt, LogFloat };

struct LExpr;
using LExprPtr = std::unique_ptr<LExpr>;

/// One call argument, optionally keyword-named (factor=[a,b]).
struct LArg {
  std::string Keyword; ///< empty for positional
  LExprPtr Expr;
};

struct LExpr {
  LExprKind Kind = LExprKind::Lit;
  int NodeId = 0;
  int Line = 0;

  Value Literal;                 // Lit
  std::string Name;              // Name / Attr member
  LExprPtr Base;                 // Attr / Call callee / Index base
  std::vector<LArg> Args;        // Call / SearchCall
  LExprPtr Sub;                  // Index subscript
  std::string Op;                // Binary / Unary
  LExprPtr Lhs, Rhs;             // Binary; Unary uses Lhs
  std::vector<LExprPtr> Items;   // ListMaker / TupleMaker / OrExpr options
  LExprPtr RangeLo, RangeHi, RangeStep; // Range
  SearchKind SKind = SearchKind::Enum;  // SearchCall

  LExprPtr clone() const;
};

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

enum class LStmtKind {
  ExprStmt, ///< expression evaluated for effect; may be optional (*) and may
            ///< be an OrExpr (OR statement)
  Assign,
  If,
  For,
  While,
  Return,
  Print,
  OrBlocks, ///< { ... } OR { ... } alternatives
  Block,    ///< plain nested block
};

struct LStmt;
using LStmtPtr = std::unique_ptr<LStmt>;

struct LBlock {
  std::vector<LStmtPtr> Stmts;

  LBlock clone() const;
};

struct LStmt {
  LStmtKind Kind = LStmtKind::ExprStmt;
  int NodeId = 0;
  int Line = 0;

  // ExprStmt
  LExprPtr Expr;
  bool Optional = false; ///< preceded by '*'

  // Assign
  std::vector<std::string> Targets;
  LExprPtr Rhs;

  // If: Conds[i] guards Blocks[i]; ElseBlock may be empty
  std::vector<LExprPtr> Conds;
  std::vector<LBlock> Blocks; ///< If arms / For-While body at [0] / OrBlocks
  LBlock ElseBlock;
  bool HasElse = false;

  // For
  LStmtPtr ForInit;
  LStmtPtr ForStep;

  LStmtPtr clone() const;
};

//===----------------------------------------------------------------------===//
// Declarations and program
//===----------------------------------------------------------------------===//

struct LFunction {
  std::string Name;
  std::vector<std::string> Params;
  LBlock Body;
  int Line = 0;
};

/// A parsed Locus optimization program.
struct LocusProgram {
  std::vector<std::string> Imports;

  /// Top-level statements (global-scope assignments such as Fig. 11's
  /// "datalayout = enum(...)"); executed before any CodeReg body.
  LBlock GlobalStmts;

  /// CodeReg NAME { ... } — region-targeted sequences, in source order.
  std::vector<std::pair<std::string, LBlock>> CodeRegs;

  /// OptSeq NAME(params) { ... } — reusable transformation sequences.
  std::vector<LFunction> OptSeqs;

  /// Query NAME(params) { ... } — user-defined queries.
  std::vector<LFunction> Queries;

  /// def NAME(params) { ... } — plain methods (no optimization calls).
  std::vector<LFunction> Defs;

  /// Module NAME { ... } declarations (accepted and recorded; the native
  /// module registry provides the implementations).
  std::vector<std::string> Modules;

  /// The Search { ... } block (build/run commands, metric settings).
  LBlock SearchBlock;
  bool HasSearchBlock = false;

  const LFunction *findOptSeq(const std::string &Name) const;
  const LFunction *findQuery(const std::string &Name) const;
  const LFunction *findDef(const std::string &Name) const;

  std::unique_ptr<LocusProgram> clone() const;
};

} // namespace lang
} // namespace locus

#endif // LOCUS_LOCUS_LOCUSAST_H
