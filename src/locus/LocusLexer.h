//===- LocusLexer.h - Locus language lexer ----------------------*- C++ -*-===//
///
/// \file
/// Tokenizer for the Locus optimization language. Comments start with '#' or
/// "//" and run to end of line. ".." (range) is a distinct token and is kept
/// separate from floating literals ("2..32" lexes as 2, .., 32).
///
//===----------------------------------------------------------------------===//
#ifndef LOCUS_LOCUS_LOCUSLEXER_H
#define LOCUS_LOCUS_LOCUSLEXER_H

#include <cstdint>
#include <string>
#include <vector>

namespace locus {
namespace lang {

enum class LTokKind { Eof, Ident, IntLit, FloatLit, StrLit, Punct };

struct LTok {
  LTokKind Kind = LTokKind::Eof;
  std::string Text;
  int64_t IntValue = 0;
  double FloatValue = 0;
  int Line = 0;

  bool is(LTokKind K) const { return Kind == K; }
  bool isPunct(const char *P) const {
    return Kind == LTokKind::Punct && Text == P;
  }
  bool isIdent(const char *Name) const {
    return Kind == LTokKind::Ident && Text == Name;
  }
};

/// Tokenizes Locus source; on error the token stream ends early and error()
/// is non-empty.
class LocusLexer {
public:
  explicit LocusLexer(std::string Source);

  std::vector<LTok> lexAll();
  const std::string &error() const { return ErrorMessage; }
  bool hadError() const { return !ErrorMessage.empty(); }

private:
  LTok lexToken();
  void skipTrivia();
  char peek(int Ahead = 0) const;
  char advance();
  bool atEnd() const { return Pos >= Source.size(); }

  std::string Source;
  size_t Pos = 0;
  int Line = 1;
  std::string ErrorMessage;
};

} // namespace lang
} // namespace locus

#endif // LOCUS_LOCUS_LOCUSLEXER_H
