//===- Optimizer.cpp - Optimizations on Locus programs -------------------------===//

#include "src/locus/Optimizer.h"

#include <map>
#include <set>

namespace locus {
namespace lang {

namespace {

/// Optimization context for one CodeReg body.
class BodyOptimizer {
public:
  BodyOptimizer(const ModuleRegistry &Registry, cir::Block *Region,
                cir::Program *Target, transform::TransformContext *TCtx,
                OptimizeStats &Stats)
      : Registry(Registry), Region(Region), Target(Target), TCtx(TCtx),
        Stats(Stats) {}

  void optimizeBlock(LBlock &Block) {
    std::vector<LStmtPtr> Out;
    for (LStmtPtr &S : Block.Stmts) {
      if (!S)
        continue;
      optimizeStmt(S, Out);
    }
    Block.Stmts = std::move(Out);
  }

private:
  /// Collects every assignment target in a subtree (for invalidation).
  static void collectTargets(const LBlock &Block, std::set<std::string> &Out) {
    for (const LStmtPtr &S : Block.Stmts) {
      if (!S)
        continue;
      for (const std::string &T : S->Targets)
        Out.insert(T);
      for (const LBlock &B : S->Blocks)
        collectTargets(B, Out);
      collectTargets(S->ElseBlock, Out);
      if (S->ForInit)
        for (const std::string &T : S->ForInit->Targets)
          Out.insert(T);
      if (S->ForStep)
        for (const std::string &T : S->ForStep->Targets)
          Out.insert(T);
    }
  }

  void invalidateAssigned(const LBlock &Block) {
    std::set<std::string> Targets;
    collectTargets(Block, Targets);
    for (const std::string &T : Targets)
      Env.erase(T);
  }

  /// True when \p V is a plain literal we can propagate.
  static bool isLiteral(const Value &V) {
    switch (V.kind()) {
    case Value::Kind::None:
    case Value::Kind::Int:
    case Value::Kind::Float:
    case Value::Kind::String:
      return true;
    default:
      return false;
    }
  }

  /// Tries to fold \p E to a literal; rewrites subexpressions in place.
  /// Returns the literal when fully folded.
  std::optional<Value> foldExpr(LExprPtr &E) {
    if (!E)
      return std::nullopt;
    switch (E->Kind) {
    case LExprKind::Lit:
      if (isLiteral(E->Literal))
        return E->Literal;
      return std::nullopt;
    case LExprKind::Name: {
      auto It = Env.find(E->Name);
      if (It == Env.end())
        return std::nullopt;
      replaceWithLiteral(E, It->second);
      ++Stats.ConstantsFolded;
      return It->second;
    }
    case LExprKind::Binary: {
      std::optional<Value> L = foldExpr(E->Lhs);
      std::optional<Value> R = foldExpr(E->Rhs);
      if (!L || !R)
        return std::nullopt;
      Expected<Value> V = Value::none();
      const std::string &Op = E->Op;
      if (Op == "+")
        V = valueAdd(*L, *R);
      else if (Op == "-")
        V = valueSub(*L, *R);
      else if (Op == "*")
        V = valueMul(*L, *R);
      else if (Op == "/")
        V = valueDiv(*L, *R);
      else if (Op == "%")
        V = valueMod(*L, *R);
      else if (Op == "**")
        V = valuePow(*L, *R);
      else if (Op == "&&")
        return foldLogic(E, *L, *R, /*IsAnd=*/true);
      else if (Op == "||")
        return foldLogic(E, *L, *R, /*IsAnd=*/false);
      else
        V = valueCompare(Op, *L, *R);
      if (!V.ok() || !isLiteral(*V))
        return std::nullopt;
      replaceWithLiteral(E, *V);
      ++Stats.ConstantsFolded;
      return *V;
    }
    case LExprKind::Unary: {
      std::optional<Value> L = foldExpr(E->Lhs);
      if (!L)
        return std::nullopt;
      Value V;
      if (E->Op == "-") {
        if (L->isInt())
          V = Value(-L->asInt());
        else if (L->isFloat())
          V = Value(-L->asFloat());
        else
          return std::nullopt;
      } else {
        V = Value::boolean(!L->truthy());
      }
      replaceWithLiteral(E, V);
      ++Stats.ConstantsFolded;
      return V;
    }
    case LExprKind::Call: {
      // Query pre-execution: Module.Member(...) with literal arguments.
      if (Region && E->Base && E->Base->Kind == LExprKind::Attr &&
          E->Base->Base && E->Base->Base->Kind == LExprKind::Name) {
        const ModuleMember *M =
            Registry.find(E->Base->Base->Name, E->Base->Name);
        if (M && M->IsQuery) {
          ModuleArgs Args;
          bool AllLiteral = true;
          for (size_t I = 0; I < E->Args.size(); ++I) {
            std::optional<Value> V = foldExpr(E->Args[I].Expr);
            if (!V) {
              AllLiteral = false;
              break;
            }
            Args[E->Args[I].Keyword.empty() ? "arg" + std::to_string(I)
                                            : E->Args[I].Keyword] = *V;
          }
          if (AllLiteral) {
            ModuleCallContext Ctx{Region, Target, TCtx};
            ModuleOutcome O = M->Fn(Args, Ctx);
            if (O.Result.applied() && isLiteral(O.Ret)) {
              replaceWithLiteral(E, O.Ret);
              ++Stats.QueriesSubstituted;
              return O.Ret;
            }
          }
          return std::nullopt;
        }
      }
      // Other calls: fold the arguments only.
      for (LArg &A : E->Args)
        foldExpr(A.Expr);
      return std::nullopt;
    }
    case LExprKind::Index: {
      foldExpr(E->Base);
      foldExpr(E->Sub);
      return std::nullopt;
    }
    case LExprKind::ListMaker:
    case LExprKind::TupleMaker:
      for (LExprPtr &I : E->Items)
        foldExpr(I);
      return std::nullopt;
    case LExprKind::OrExpr:
      for (LExprPtr &I : E->Items)
        foldExpr(I);
      return std::nullopt;
    case LExprKind::Range:
      foldExpr(E->RangeLo);
      foldExpr(E->RangeHi);
      if (E->RangeStep)
        foldExpr(E->RangeStep);
      return std::nullopt;
    case LExprKind::SearchCall:
      for (LArg &A : E->Args)
        foldExpr(A.Expr);
      return std::nullopt;
    case LExprKind::DictMaker:
      return std::nullopt;
    case LExprKind::Attr:
      return std::nullopt;
    }
    return std::nullopt;
  }

  std::optional<Value> foldLogic(LExprPtr &E, const Value &L, const Value &R,
                                 bool IsAnd) {
    Value V = Value::boolean(IsAnd ? (L.truthy() && R.truthy())
                                   : (L.truthy() || R.truthy()));
    replaceWithLiteral(E, V);
    ++Stats.ConstantsFolded;
    return V;
  }

  void replaceWithLiteral(LExprPtr &E, const Value &V) {
    auto Lit = std::make_unique<LExpr>();
    Lit->Kind = LExprKind::Lit;
    Lit->NodeId = E->NodeId;
    Lit->Line = E->Line;
    Lit->Literal = V;
    E = std::move(Lit);
  }

  static int countStmts(const LBlock &Block) {
    int N = 0;
    for (const LStmtPtr &S : Block.Stmts) {
      if (!S)
        continue;
      ++N;
      for (const LBlock &B : S->Blocks)
        N += countStmts(B);
      N += countStmts(S->ElseBlock);
    }
    return N;
  }

  void optimizeStmt(LStmtPtr &S, std::vector<LStmtPtr> &Out) {
    switch (S->Kind) {
    case LStmtKind::Assign: {
      std::optional<Value> V = foldExpr(S->Rhs);
      if (V && S->Targets.size() == 1)
        Env[S->Targets[0]] = *V;
      else
        for (const std::string &T : S->Targets)
          Env.erase(T);
      Out.push_back(std::move(S));
      return;
    }
    case LStmtKind::If: {
      // Fold conditions in order; a constant-true one replaces the whole
      // statement by its branch, constant-false arms are dropped.
      std::vector<LExprPtr> Conds;
      std::vector<LBlock> Blocks;
      for (size_t I = 0; I < S->Conds.size(); ++I) {
        std::optional<Value> C = foldExpr(S->Conds[I]);
        if (C && !C->truthy()) {
          Stats.StmtsRemoved += countStmts(S->Blocks[I]);
          ++Stats.BranchesPruned;
          continue; // dead arm
        }
        if (C && C->truthy()) {
          if (Conds.empty()) {
            // Unconditionally taken: inline the branch.
            ++Stats.BranchesPruned;
            for (size_t J = I + 1; J < S->Conds.size(); ++J)
              Stats.StmtsRemoved += countStmts(S->Blocks[J]);
            if (S->HasElse)
              Stats.StmtsRemoved += countStmts(S->ElseBlock);
            optimizeBlock(S->Blocks[I]);
            for (LStmtPtr &Sub : S->Blocks[I].Stmts)
              Out.push_back(std::move(Sub));
            return;
          }
          // Becomes the else of the surviving arms.
          S->ElseBlock = std::move(S->Blocks[I]);
          S->HasElse = true;
          for (size_t J = I + 1; J < S->Conds.size(); ++J)
            Stats.StmtsRemoved += countStmts(S->Blocks[J]);
          break;
        }
        Conds.push_back(std::move(S->Conds[I]));
        Blocks.push_back(std::move(S->Blocks[I]));
      }
      if (Conds.empty()) {
        // Every arm was dropped; only the else (if any) survives.
        if (S->HasElse) {
          optimizeBlock(S->ElseBlock);
          for (LStmtPtr &Sub : S->ElseBlock.Stmts)
            Out.push_back(std::move(Sub));
        }
        return;
      }
      S->Conds = std::move(Conds);
      S->Blocks = std::move(Blocks);
      // Non-constant branches: optimize each with an isolated environment.
      std::map<std::string, Value> Saved = Env;
      for (LBlock &B : S->Blocks) {
        Env = Saved;
        optimizeBlock(B);
      }
      if (S->HasElse) {
        Env = Saved;
        optimizeBlock(S->ElseBlock);
      }
      Env = Saved;
      invalidateAssigned(S->Blocks[0]);
      for (size_t I = 1; I < S->Blocks.size(); ++I)
        invalidateAssigned(S->Blocks[I]);
      if (S->HasElse)
        invalidateAssigned(S->ElseBlock);
      Out.push_back(std::move(S));
      return;
    }
    case LStmtKind::While:
    case LStmtKind::For: {
      // Loop bodies re-execute: invalidate everything they assign, then
      // fold inside with that reduced environment.
      invalidateAssigned(S->Blocks[0]);
      if (S->ForInit)
        for (const std::string &T : S->ForInit->Targets)
          Env.erase(T);
      foldExpr(S->Conds[0]);
      std::map<std::string, Value> Saved = Env;
      optimizeBlock(S->Blocks[0]);
      Env = Saved;
      Out.push_back(std::move(S));
      return;
    }
    case LStmtKind::OrBlocks: {
      std::map<std::string, Value> Saved = Env;
      for (LBlock &B : S->Blocks) {
        Env = Saved;
        optimizeBlock(B);
      }
      Env = Saved;
      for (LBlock &B : S->Blocks)
        invalidateAssigned(B);
      Out.push_back(std::move(S));
      return;
    }
    case LStmtKind::Block:
      optimizeBlock(S->Blocks[0]);
      Out.push_back(std::move(S));
      return;
    case LStmtKind::ExprStmt:
    case LStmtKind::Return:
    case LStmtKind::Print:
      foldExpr(S->Expr);
      Out.push_back(std::move(S));
      return;
    }
  }

  const ModuleRegistry &Registry;
  cir::Block *Region;
  cir::Program *Target;
  transform::TransformContext *TCtx;
  OptimizeStats &Stats;
  std::map<std::string, Value> Env;
};

} // namespace

std::unique_ptr<LocusProgram>
optimizeLocusProgram(const LocusProgram &Prog, cir::Program &Target,
                     const ModuleRegistry &Registry,
                     transform::TransformContext &TCtx,
                     OptimizeStats *Stats) {
  std::unique_ptr<LocusProgram> Out = Prog.clone();
  OptimizeStats Local;
  OptimizeStats &S = Stats ? *Stats : Local;

  // Global statements (no region context, no query execution).
  {
    BodyOptimizer Opt(Registry, nullptr, &Target, &TCtx, S);
    Opt.optimizeBlock(Out->GlobalStmts);
  }
  // OptSeq/Query/def bodies: folding only (no region to query against).
  for (auto *Group : {&Out->OptSeqs, &Out->Queries, &Out->Defs})
    for (LFunction &F : *Group) {
      BodyOptimizer Opt(Registry, nullptr, &Target, &TCtx, S);
      Opt.optimizeBlock(F.Body);
    }
  // CodeReg bodies with query pre-execution against the first region.
  for (auto &[Name, Body] : Out->CodeRegs) {
    std::vector<cir::Block *> Regions = Target.findRegions(Name);
    cir::Block *Region = Regions.empty() ? nullptr : Regions[0];
    BodyOptimizer Opt(Registry, Region, &Target, &TCtx, S);
    Opt.optimizeBlock(Body);
  }
  return Out;
}

} // namespace lang
} // namespace locus
