//===- LocusPrinter.cpp - Locus program unparser -------------------------------===//

#include "src/locus/LocusPrinter.h"

#include <set>
#include <sstream>

namespace locus {
namespace lang {

namespace {

class Printer {
public:
  void expr(const LExpr &E) {
    switch (E.Kind) {
    case LExprKind::Lit: {
      if (E.Literal.isString()) {
        Out << '"' << E.Literal.asString() << '"';
        return;
      }
      Out << E.Literal.str();
      return;
    }
    case LExprKind::Name:
      Out << E.Name;
      return;
    case LExprKind::Attr:
      expr(*E.Base);
      Out << '.' << E.Name;
      return;
    case LExprKind::Call: {
      expr(*E.Base);
      args(E.Args);
      return;
    }
    case LExprKind::SearchCall: {
      Out << E.Name;
      args(E.Args);
      return;
    }
    case LExprKind::DictMaker:
      Out << "dict()";
      return;
    case LExprKind::Index:
      expr(*E.Base);
      Out << '[';
      expr(*E.Sub);
      Out << ']';
      return;
    case LExprKind::Binary:
      Out << '(';
      expr(*E.Lhs);
      Out << ' ' << E.Op << ' ';
      expr(*E.Rhs);
      Out << ')';
      return;
    case LExprKind::Unary:
      Out << (E.Op == "not" ? "not " : E.Op.c_str());
      expr(*E.Lhs);
      return;
    case LExprKind::ListMaker: {
      Out << '[';
      for (size_t I = 0; I < E.Items.size(); ++I) {
        if (I)
          Out << ", ";
        expr(*E.Items[I]);
      }
      Out << ']';
      return;
    }
    case LExprKind::TupleMaker: {
      Out << '(';
      for (size_t I = 0; I < E.Items.size(); ++I) {
        if (I)
          Out << ", ";
        expr(*E.Items[I]);
      }
      Out << ')';
      return;
    }
    case LExprKind::Range:
      expr(*E.RangeLo);
      Out << "..";
      expr(*E.RangeHi);
      if (E.RangeStep) {
        Out << "..";
        expr(*E.RangeStep);
      }
      return;
    case LExprKind::OrExpr: {
      for (size_t I = 0; I < E.Items.size(); ++I) {
        if (I)
          Out << " OR ";
        expr(*E.Items[I]);
      }
      return;
    }
    }
  }

  void block(const LBlock &B, int Indent) {
    Out << "{\n";
    for (const LStmtPtr &S : B.Stmts)
      stmt(*S, Indent + 1);
    pad(Indent);
    Out << "}";
  }

  void stmt(const LStmt &S, int Indent) {
    switch (S.Kind) {
    case LStmtKind::ExprStmt:
      pad(Indent);
      if (S.Optional)
        Out << '*';
      expr(*S.Expr);
      Out << ";\n";
      return;
    case LStmtKind::Assign: {
      pad(Indent);
      for (size_t I = 0; I < S.Targets.size(); ++I) {
        if (I)
          Out << ", ";
        Out << S.Targets[I];
      }
      Out << " = ";
      expr(*S.Rhs);
      Out << ";\n";
      return;
    }
    case LStmtKind::If: {
      for (size_t I = 0; I < S.Conds.size(); ++I) {
        if (I == 0) {
          pad(Indent);
          Out << "if ";
        } else {
          Out << " elif ";
        }
        expr(*S.Conds[I]);
        Out << ' ';
        block(S.Blocks[I], Indent);
      }
      if (S.HasElse) {
        Out << " else ";
        block(S.ElseBlock, Indent);
      }
      Out << "\n";
      return;
    }
    case LStmtKind::For: {
      pad(Indent);
      Out << "for (";
      inlineSmall(*S.ForInit);
      Out << "; ";
      expr(*S.Conds[0]);
      Out << "; ";
      inlineSmall(*S.ForStep);
      Out << ") ";
      block(S.Blocks[0], Indent);
      Out << "\n";
      return;
    }
    case LStmtKind::While:
      pad(Indent);
      Out << "while ";
      expr(*S.Conds[0]);
      Out << ' ';
      block(S.Blocks[0], Indent);
      Out << "\n";
      return;
    case LStmtKind::Return:
      pad(Indent);
      Out << "return";
      if (S.Expr) {
        Out << ' ';
        expr(*S.Expr);
      }
      Out << ";\n";
      return;
    case LStmtKind::Print:
      pad(Indent);
      Out << "print ";
      expr(*S.Expr);
      Out << ";\n";
      return;
    case LStmtKind::OrBlocks: {
      pad(Indent);
      for (size_t I = 0; I < S.Blocks.size(); ++I) {
        if (I)
          Out << " OR ";
        block(S.Blocks[I], Indent);
      }
      Out << "\n";
      return;
    }
    case LStmtKind::Block:
      pad(Indent);
      block(S.Blocks[0], Indent);
      Out << "\n";
      return;
    }
  }

  void inlineSmall(const LStmt &S) {
    if (S.Kind == LStmtKind::Assign) {
      for (size_t I = 0; I < S.Targets.size(); ++I) {
        if (I)
          Out << ", ";
        Out << S.Targets[I];
      }
      Out << " = ";
      expr(*S.Rhs);
    } else if (S.Expr) {
      expr(*S.Expr);
    }
  }

  void function(const char *Keyword, const LFunction &F) {
    Out << Keyword << ' ' << F.Name << '(';
    for (size_t I = 0; I < F.Params.size(); ++I) {
      if (I)
        Out << ", ";
      Out << F.Params[I];
    }
    Out << ") ";
    block(F.Body, 0);
    Out << "\n\n";
  }

  std::string take() { return Out.str(); }

  void pad(int Indent) {
    for (int I = 0; I < Indent * 2; ++I)
      Out << ' ';
  }

  std::ostringstream Out;

private:
  void args(const std::vector<LArg> &Args) {
    Out << '(';
    for (size_t I = 0; I < Args.size(); ++I) {
      if (I)
        Out << ", ";
      if (!Args[I].Keyword.empty())
        Out << Args[I].Keyword << '=';
      expr(*Args[I].Expr);
    }
    Out << ')';
  }
};

} // namespace

std::string printLocusExpr(const LExpr &E) {
  Printer P;
  P.expr(E);
  return P.take();
}

std::string printLocusProgram(const LocusProgram &Prog) {
  Printer P;
  for (const std::string &Import : Prog.Imports)
    P.Out << "import \"" << Import << "\";\n";
  if (!Prog.Imports.empty())
    P.Out << "\n";
  for (const LStmtPtr &S : Prog.GlobalStmts.Stmts)
    P.stmt(*S, 0);
  if (!Prog.GlobalStmts.Stmts.empty())
    P.Out << "\n";
  if (Prog.HasSearchBlock) {
    P.Out << "Search ";
    P.block(Prog.SearchBlock, 0);
    P.Out << "\n\n";
  }
  for (const LFunction &F : Prog.Defs)
    P.function("def", F);
  for (const LFunction &F : Prog.Queries)
    P.function("Query", F);
  for (const LFunction &F : Prog.OptSeqs)
    P.function("OptSeq", F);
  for (const auto &[Name, Body] : Prog.CodeRegs) {
    P.Out << "CodeReg " << Name << ' ';
    P.block(Body, 0);
    P.Out << "\n\n";
  }
  return P.take();
}

//===----------------------------------------------------------------------===//
// Direct-program export
//===----------------------------------------------------------------------===//

namespace {

/// Mirrors the interpreter's path bookkeeping to pin constructs in place.
class Pinner {
public:
  Pinner(LocusProgram &Prog, const search::Point &Point)
      : Prog(Prog), Point(Point) {}

  Status run() {
    for (LStmtPtr &S : Prog.GlobalStmts.Stmts) {
      PathStack.assign(1, "global");
      pinStmt(S);
    }
    for (auto &[Name, Body] : Prog.CodeRegs) {
      PathStack.assign(1, Name);
      pinBlock(Body);
    }
    return Err.empty() ? Status::success() : Status::error(Err);
  }

private:
  std::string paramId(int NodeId) const {
    std::string Id;
    for (const std::string &P : PathStack)
      Id += P + "/";
    return Id + "#" + std::to_string(NodeId);
  }

  const search::PointValue *lookup(int NodeId) const {
    auto It = Point.Values.find(paramId(NodeId));
    return It == Point.Values.end() ? nullptr : &It->second;
  }

  LExprPtr literal(Value V, int Line) {
    auto E = std::make_unique<LExpr>();
    E->Kind = LExprKind::Lit;
    E->Line = Line;
    E->Literal = std::move(V);
    return E;
  }

  void pinBlock(LBlock &B) {
    std::vector<LStmtPtr> Out;
    for (LStmtPtr &S : B.Stmts) {
      if (!pinStmt(S))
        continue; // dropped optional statement
      if (Inline) {
        for (LStmtPtr &Sub : Inline->Stmts)
          Out.push_back(std::move(Sub));
        Inline.reset();
        continue;
      }
      Out.push_back(std::move(S));
    }
    B.Stmts = std::move(Out);
  }

  /// Pins one statement in place. Returns false when the statement must be
  /// dropped (optional pinned off). Sets Inline when the statement expands
  /// to a block's contents (a pinned OR block).
  bool pinStmt(LStmtPtr &S) {
    switch (S->Kind) {
    case LStmtKind::OrBlocks: {
      if (const search::PointValue *V = lookup(S->NodeId)) {
        size_t Choice = static_cast<size_t>(std::get<int64_t>(*V));
        if (Choice >= S->Blocks.size()) {
          fail("OR selector out of range");
          return true;
        }
        PathStack.push_back("alt" + std::to_string(Choice));
        pinBlock(S->Blocks[Choice]);
        PathStack.pop_back();
        Inline = std::make_unique<LBlock>(std::move(S->Blocks[Choice]));
        return true;
      }
      for (size_t I = 0; I < S->Blocks.size(); ++I) {
        PathStack.push_back("alt" + std::to_string(I));
        pinBlock(S->Blocks[I]);
        PathStack.pop_back();
      }
      return true;
    }
    case LStmtKind::ExprStmt: {
      if (S->Optional) {
        if (const search::PointValue *V = lookup(S->NodeId)) {
          if (std::get<int64_t>(*V) == 0)
            return false; // the None alternative: drop
          S->Optional = false;
        }
      }
      pinExpr(S->Expr);
      return true;
    }
    case LStmtKind::Assign:
      pinExpr(S->Rhs);
      return true;
    case LStmtKind::If: {
      for (auto &C : S->Conds)
        pinExpr(C);
      for (auto &B : S->Blocks)
        pinBlock(B);
      if (S->HasElse)
        pinBlock(S->ElseBlock);
      return true;
    }
    case LStmtKind::For:
    case LStmtKind::While: {
      if (S->Conds.size() == 1)
        pinExpr(S->Conds[0]);
      pinBlock(S->Blocks[0]);
      return true;
    }
    case LStmtKind::Block:
      pinBlock(S->Blocks[0]);
      return true;
    case LStmtKind::Return:
    case LStmtKind::Print:
      if (S->Expr)
        pinExpr(S->Expr);
      return true;
    }
    return true;
  }

  void pinExpr(LExprPtr &E) {
    if (!E)
      return;
    switch (E->Kind) {
    case LExprKind::SearchCall: {
      const search::PointValue *V = lookup(E->NodeId);
      if (!V) {
        // Recurse so nested constructs (dependent ranges) still pin.
        for (LArg &A : E->Args)
          pinExpr(A.Expr);
        return;
      }
      if (E->SKind == SearchKind::Enum) {
        size_t Choice = static_cast<size_t>(std::get<int64_t>(*V));
        if (Choice < E->Args.size()) {
          LExprPtr Chosen = std::move(E->Args[Choice].Expr);
          pinExpr(Chosen);
          E = std::move(Chosen);
          return;
        }
        fail("enum selector out of range");
        return;
      }
      if (E->SKind == SearchKind::Permutation) {
        // Represent the chosen permutation as a literal index list applied
        // to the original argument via list indexing is overkill: the
        // common argument is seq(0, n), so the permutation itself is the
        // value.
        const auto &Perm = std::get<std::vector<int>>(*V);
        auto List = std::make_unique<LExpr>();
        List->Kind = LExprKind::ListMaker;
        List->Line = E->Line;
        for (int I : Perm)
          List->Items.push_back(literal(Value(static_cast<int64_t>(I)), E->Line));
        E = std::move(List);
        return;
      }
      if (const auto *I = std::get_if<int64_t>(V)) {
        E = literal(Value(*I), E->Line);
        return;
      }
      if (const auto *D = std::get_if<double>(V)) {
        E = literal(Value(*D), E->Line);
        return;
      }
      fail("unsupported pinned value kind");
      return;
    }
    case LExprKind::OrExpr: {
      if (const search::PointValue *V = lookup(E->NodeId)) {
        size_t Choice = static_cast<size_t>(std::get<int64_t>(*V));
        if (Choice < E->Items.size()) {
          PathStack.push_back("alt" + std::to_string(Choice));
          LExprPtr Chosen = std::move(E->Items[Choice]);
          pinExpr(Chosen);
          PathStack.pop_back();
          E = std::move(Chosen);
          return;
        }
        fail("OR selector out of range");
        return;
      }
      for (size_t I = 0; I < E->Items.size(); ++I) {
        PathStack.push_back("alt" + std::to_string(I));
        pinExpr(E->Items[I]);
        PathStack.pop_back();
      }
      return;
    }
    case LExprKind::Call: {
      // Calls to OptSeqs establish a callsite frame; specialize the OptSeq
      // body per call site by pinning through it with the extended path.
      if (E->Base && E->Base->Kind == LExprKind::Name) {
        for (LFunction &F : Prog.OptSeqs) {
          if (F.Name != E->Base->Name)
            continue;
          // Specialize: clone under a unique name for this callsite.
          std::string Special = F.Name + "_c" + std::to_string(E->NodeId);
          LFunction Copy{Special, F.Params, F.Body.clone(), F.Line};
          PathStack.push_back("c" + std::to_string(E->NodeId));
          pinBlock(Copy.Body);
          PathStack.pop_back();
          Specialized.push_back(std::move(Copy));
          E->Base->Name = Special;
          break;
        }
      }
      pinExpr(E->Base);
      for (LArg &A : E->Args)
        pinExpr(A.Expr);
      return;
    }
    case LExprKind::Attr:
      pinExpr(E->Base);
      return;
    case LExprKind::Index:
      pinExpr(E->Base);
      pinExpr(E->Sub);
      return;
    case LExprKind::Binary:
      pinExpr(E->Lhs);
      pinExpr(E->Rhs);
      return;
    case LExprKind::Unary:
      pinExpr(E->Lhs);
      return;
    case LExprKind::ListMaker:
    case LExprKind::TupleMaker:
      for (LExprPtr &I : E->Items)
        pinExpr(I);
      return;
    case LExprKind::Range:
      pinExpr(E->RangeLo);
      pinExpr(E->RangeHi);
      if (E->RangeStep)
        pinExpr(E->RangeStep);
      return;
    default:
      return;
    }
  }

  void fail(const std::string &Message) {
    if (Err.empty())
      Err = Message;
  }

public:
  std::vector<LFunction> Specialized;

private:
  LocusProgram &Prog;
  const search::Point &Point;
  std::vector<std::string> PathStack;
  std::unique_ptr<LBlock> Inline;
  std::string Err;
};

} // namespace

namespace {

void collectCalledNames(const LExpr &E, std::set<std::string> &Out);

void collectCalledNames(const LBlock &B, std::set<std::string> &Out) {
  for (const LStmtPtr &S : B.Stmts) {
    if (S->Expr)
      collectCalledNames(*S->Expr, Out);
    if (S->Rhs)
      collectCalledNames(*S->Rhs, Out);
    for (const LExprPtr &C : S->Conds)
      collectCalledNames(*C, Out);
    for (const LBlock &Sub : S->Blocks)
      collectCalledNames(Sub, Out);
    collectCalledNames(S->ElseBlock, Out);
    if (S->ForInit && S->ForInit->Rhs)
      collectCalledNames(*S->ForInit->Rhs, Out);
    if (S->ForStep && S->ForStep->Rhs)
      collectCalledNames(*S->ForStep->Rhs, Out);
  }
}

void collectCalledNames(const LExpr &E, std::set<std::string> &Out) {
  if (E.Kind == LExprKind::Call && E.Base &&
      E.Base->Kind == LExprKind::Name)
    Out.insert(E.Base->Name);
  if (E.Base)
    collectCalledNames(*E.Base, Out);
  if (E.Sub)
    collectCalledNames(*E.Sub, Out);
  if (E.Lhs)
    collectCalledNames(*E.Lhs, Out);
  if (E.Rhs)
    collectCalledNames(*E.Rhs, Out);
  for (const LArg &A : E.Args)
    if (A.Expr)
      collectCalledNames(*A.Expr, Out);
  for (const LExprPtr &I : E.Items)
    collectCalledNames(*I, Out);
  if (E.RangeLo)
    collectCalledNames(*E.RangeLo, Out);
  if (E.RangeHi)
    collectCalledNames(*E.RangeHi, Out);
  if (E.RangeStep)
    collectCalledNames(*E.RangeStep, Out);
}

} // namespace

Expected<std::unique_ptr<LocusProgram>>
exportDirectProgram(const LocusProgram &Prog, const search::Point &Point) {
  std::unique_ptr<LocusProgram> Out = Prog.clone();
  Pinner P(*Out, Point);
  Status S = P.run();
  if (!S.ok())
    return Expected<std::unique_ptr<LocusProgram>>::error(S.message());
  for (LFunction &F : P.Specialized)
    Out->OptSeqs.push_back(std::move(F));

  // Pinning specializes OptSeqs per call site; drop the now-unreferenced
  // originals (which still contain search constructs) to a fixpoint.
  while (true) {
    std::set<std::string> Referenced;
    for (const auto &[Name, Body] : Out->CodeRegs)
      collectCalledNames(Body, Referenced);
    collectCalledNames(Out->GlobalStmts, Referenced);
    for (const LFunction &F : Out->OptSeqs)
      collectCalledNames(F.Body, Referenced);
    for (const LFunction &F : Out->Defs)
      collectCalledNames(F.Body, Referenced);
    size_t Before = Out->OptSeqs.size();
    // A simple mark pass keeps transitive references alive because OptSeq
    // bodies above contributed their callees; iterate until stable.
    std::vector<LFunction> Kept;
    for (LFunction &F : Out->OptSeqs)
      if (Referenced.count(F.Name))
        Kept.push_back(std::move(F));
    Out->OptSeqs = std::move(Kept);
    if (Out->OptSeqs.size() == Before)
      break;
  }
  return Expected<std::unique_ptr<LocusProgram>>(std::move(Out));
}

} // namespace lang
} // namespace locus
