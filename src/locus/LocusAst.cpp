//===- LocusAst.cpp - Locus AST out-of-line pieces -----------------------------===//

#include "src/locus/LocusAst.h"

namespace locus {
namespace lang {

LExprPtr LExpr::clone() const {
  auto Copy = std::make_unique<LExpr>();
  Copy->Kind = Kind;
  Copy->NodeId = NodeId;
  Copy->Line = Line;
  Copy->Literal = Literal;
  Copy->Name = Name;
  if (Base)
    Copy->Base = Base->clone();
  for (const LArg &A : Args)
    Copy->Args.push_back(LArg{A.Keyword, A.Expr ? A.Expr->clone() : nullptr});
  if (Sub)
    Copy->Sub = Sub->clone();
  Copy->Op = Op;
  if (Lhs)
    Copy->Lhs = Lhs->clone();
  if (Rhs)
    Copy->Rhs = Rhs->clone();
  for (const LExprPtr &I : Items)
    Copy->Items.push_back(I->clone());
  if (RangeLo)
    Copy->RangeLo = RangeLo->clone();
  if (RangeHi)
    Copy->RangeHi = RangeHi->clone();
  if (RangeStep)
    Copy->RangeStep = RangeStep->clone();
  Copy->SKind = SKind;
  return Copy;
}

LBlock LBlock::clone() const {
  LBlock Copy;
  for (const LStmtPtr &S : Stmts)
    Copy.Stmts.push_back(S->clone());
  return Copy;
}

LStmtPtr LStmt::clone() const {
  auto Copy = std::make_unique<LStmt>();
  Copy->Kind = Kind;
  Copy->NodeId = NodeId;
  Copy->Line = Line;
  if (Expr)
    Copy->Expr = Expr->clone();
  Copy->Optional = Optional;
  Copy->Targets = Targets;
  if (Rhs)
    Copy->Rhs = Rhs->clone();
  for (const LExprPtr &C : Conds)
    Copy->Conds.push_back(C->clone());
  for (const LBlock &B : Blocks)
    Copy->Blocks.push_back(B.clone());
  Copy->ElseBlock = ElseBlock.clone();
  Copy->HasElse = HasElse;
  if (ForInit)
    Copy->ForInit = ForInit->clone();
  if (ForStep)
    Copy->ForStep = ForStep->clone();
  return Copy;
}

const LFunction *LocusProgram::findOptSeq(const std::string &Name) const {
  for (const LFunction &F : OptSeqs)
    if (F.Name == Name)
      return &F;
  return nullptr;
}

const LFunction *LocusProgram::findQuery(const std::string &Name) const {
  for (const LFunction &F : Queries)
    if (F.Name == Name)
      return &F;
  return nullptr;
}

const LFunction *LocusProgram::findDef(const std::string &Name) const {
  for (const LFunction &F : Defs)
    if (F.Name == Name)
      return &F;
  return nullptr;
}

std::unique_ptr<LocusProgram> LocusProgram::clone() const {
  auto Copy = std::make_unique<LocusProgram>();
  Copy->Imports = Imports;
  Copy->GlobalStmts = GlobalStmts.clone();
  for (const auto &[Name, Block] : CodeRegs)
    Copy->CodeRegs.emplace_back(Name, Block.clone());
  for (const LFunction &F : OptSeqs)
    Copy->OptSeqs.push_back(LFunction{F.Name, F.Params, F.Body.clone(), F.Line});
  for (const LFunction &F : Queries)
    Copy->Queries.push_back(LFunction{F.Name, F.Params, F.Body.clone(), F.Line});
  for (const LFunction &F : Defs)
    Copy->Defs.push_back(LFunction{F.Name, F.Params, F.Body.clone(), F.Line});
  Copy->Modules = Modules;
  Copy->SearchBlock = SearchBlock.clone();
  Copy->HasSearchBlock = HasSearchBlock;
  return Copy;
}

} // namespace lang
} // namespace locus
