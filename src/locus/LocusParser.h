//===- LocusParser.h - Locus language parser --------------------*- C++ -*-===//
///
/// \file
/// Recursive-descent parser for the Locus optimization language (Fig. 4).
///
//===----------------------------------------------------------------------===//
#ifndef LOCUS_LOCUS_LOCUSPARSER_H
#define LOCUS_LOCUS_LOCUSPARSER_H

#include "src/locus/LocusAst.h"
#include "src/support/Error.h"

#include <memory>
#include <string>

namespace locus {
namespace lang {

/// Parses a Locus optimization program.
Expected<std::unique_ptr<LocusProgram>>
parseLocusProgram(const std::string &Source);

} // namespace lang
} // namespace locus

#endif // LOCUS_LOCUS_LOCUSPARSER_H
