//===- NativeEvaluator.h - Compile-and-run evaluation -----------*- C++ -*-===//
///
/// \file
/// The paper's actual evaluation loop: unparse the variant to C, build it
/// with the system compiler (the Search block's buildcmd), run it (runcmd)
/// and use wall-clock time as the metric. The emitted harness initializes
/// arrays with the same deterministic patterns as the simulator, times the
/// program body, and prints a checksum so native results can be validated
/// against the machine-model evaluator.
///
/// The simulator remains the default metric (deterministic, portable); this
/// evaluator exists for hosts with a C compiler where real measurements are
/// wanted.
///
//===----------------------------------------------------------------------===//
#ifndef LOCUS_EVAL_NATIVEEVALUATOR_H
#define LOCUS_EVAL_NATIVEEVALUATOR_H

#include "src/cir/Ast.h"
#include "src/support/Error.h"

#include <string>
#include <vector>

namespace locus {
namespace eval {

struct NativeOptions {
  std::string Compiler = "cc";
  std::vector<std::string> Flags = {"-O2"};
  /// Directory for generated sources and binaries.
  std::string WorkDir = "/tmp";
  /// Timing repetitions; the minimum is reported.
  int Repeats = 3;
};

struct NativeResult {
  bool Ok = false;
  std::string Error;
  double Seconds = 0;
  double Checksum = 0;
};

/// Emits a self-contained compilable C file for \p P: includes, min/max
/// helpers, deterministically initialized globals, a timed main and a
/// checksum print.
std::string emitNativeC(const cir::Program &P);

/// True when \p Compiler can be invoked on this host.
bool nativeCompilerAvailable(const std::string &Compiler);

/// Builds and runs \p P natively.
NativeResult evaluateNative(const cir::Program &P,
                            const NativeOptions &Opts = NativeOptions());

} // namespace eval
} // namespace locus

#endif // LOCUS_EVAL_NATIVEEVALUATOR_H
