//===- NativeEvaluator.h - Sandboxed compile-and-run evaluation -*- C++ -*-===//
///
/// \file
/// The paper's actual evaluation loop: unparse the variant to C, build it
/// with the system compiler (the Search block's buildcmd), run it (runcmd)
/// and use wall-clock time as the metric. The emitted harness initializes
/// arrays with the same deterministic patterns as the simulator, times the
/// program body, and prints a checksum so native results can be validated
/// against the machine-model evaluator.
///
/// Every compile and every run happens inside support::Subprocess — argv
/// invocation (no shell), a wall-clock watchdog with SIGTERM -> SIGKILL
/// escalation, rlimit caps, and process-group cleanup — in a hermetic
/// mkdtemp working directory that is removed on every exit path (kept on
/// request for debugging). Failures are classified into the search layer's
/// FailureKind taxonomy: compile failure -> PrepareFailed, crash signal ->
/// RuntimeTrap (with the signal named), deadline -> BudgetExceeded, garbage
/// or non-reproducible output -> MetricUnstable. That makes native
/// measurement a first-class citizen of the fault-tolerant search loop: a
/// hanging or fork-bombing variant costs its deadline and one counter
/// increment, never the autotuning run.
///
/// The simulator remains the default metric (deterministic, portable); this
/// evaluator exists for hosts with a C compiler where real measurements are
/// wanted.
///
//===----------------------------------------------------------------------===//
#ifndef LOCUS_EVAL_NATIVEEVALUATOR_H
#define LOCUS_EVAL_NATIVEEVALUATOR_H

#include "src/cir/Ast.h"
#include "src/search/Search.h"
#include "src/support/Error.h"
#include "src/support/Subprocess.h"

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace locus {
namespace eval {

struct NativeOptions {
  std::string Compiler = "cc";
  std::vector<std::string> Flags = {"-O2"};
  /// Base directory under which each evaluation creates its own mkdtemp
  /// working directory (never a shared fixed path); empty means $TMPDIR or
  /// /tmp. The unique directory is removed when the evaluation finishes
  /// unless KeepWorkDir is set.
  std::string WorkDir = "";
  /// Timing repetitions; the minimum is reported.
  int Repeats = 3;
  /// Wall-clock deadline for the compiler invocation.
  double CompileTimeoutSeconds = 60.0;
  /// Wall-clock deadline per run of the variant binary; <= 0 disables.
  /// The orchestrator derives this from the baseline's native time the same
  /// way simulator variants get iteration deadlines.
  double RunTimeoutSeconds = 10.0;
  /// RLIMIT_AS for the variant binary (not the compiler); <= 0 disables.
  long MemoryLimitBytes = 1L << 31; // 2 GiB
  /// Per-stream stdout/stderr capture cap for both phases.
  size_t MaxCaptureBytes = 1 << 16;
  /// Keep the working directory (sources, binary, outputs) on disk and
  /// report it in NativeResult::WorkDir — the CLI's --keep-workdirs.
  bool KeepWorkDir = false;
  /// Bounded re-runs of the measurement phase when it classifies
  /// MetricUnstable (garbage output, checksum varying across repeats) — the
  /// transient failure mode of a loaded host. Other failures (crash,
  /// deadline, compile error) are never retried. 0 disables.
  int MaxUnstableRetries = 2;
  /// Capped exponential backoff between those retries: attempt K sleeps
  /// roughly Base * 2^K seconds, scaled by a jitter factor derived purely
  /// from (seed, attempt) — deterministic, so --jobs 1 and --jobs N runs
  /// retry on an identical schedule. <= 0 disables the sleep (retries still
  /// happen back to back).
  double RetryBackoffBaseSeconds = 0.05;
  /// Ceiling on a single backoff sleep.
  double RetryBackoffCapSeconds = 1.0;
};

struct NativeResult {
  bool Ok = false;
  /// Human-readable failure description; for compile failures it carries
  /// the captured compiler stderr.
  std::string Error;
  /// Classification of the failure in the search taxonomy; None when Ok.
  search::FailureKind Failure = search::FailureKind::None;
  double Seconds = 0;
  double Checksum = 0;
  /// Path of the retained working directory when KeepWorkDir was set
  /// (empty otherwise — the directory is already gone).
  std::string WorkDir;
};

/// Emits a self-contained compilable C file for \p P: includes, min/max
/// helpers, deterministically initialized globals, a timed main and a
/// checksum print.
std::string emitNativeC(const cir::Program &P);

/// True when \p Compiler can be invoked on this host (probed with a
/// sandboxed `--version` run, not a shell).
bool nativeCompilerAvailable(const std::string &Compiler);

/// Strictly parses the harness's "LOCUS_TIME x / LOCUS_CHECKSUM y" stdout
/// with std::from_chars. Any unexpected line, missing field, trailing
/// garbage after a number, or non-finite/negative time is an error — a
/// variant that prints garbage must classify as MetricUnstable, never as a
/// silently wrong metric.
Status parseNativeOutput(std::string_view Output, double &Seconds,
                         double &Checksum);

/// Classifies one finished run-phase subprocess into a NativeResult:
/// deadline -> BudgetExceeded, terminating signal -> RuntimeTrap (signal
/// named in the detail), nonzero exit -> RuntimeTrap, unparseable stdout ->
/// MetricUnstable, clean exit + valid output -> Ok. Exposed so the
/// fault-injection tests can drive real crashing/hanging binaries through
/// the exact classification path the evaluator uses.
NativeResult classifyNativeRun(const support::SubprocessResult &R);

/// Maps a NativeResult onto the search-layer outcome (success(Seconds) or
/// fail(Failure, Error)).
search::EvalOutcome toEvalOutcome(const NativeResult &R);

/// The backoff before retry number \p Attempt (0-based): a pure function of
/// its arguments — capped exponential growth from \p BaseSeconds with a
/// multiplicative jitter in [0.5, 1.0] derived from (Seed, Attempt), no
/// global RNG — so every process and worker retrying the same variant
/// computes the same schedule and parallel runs stay reproducible.
double nativeBackoffSeconds(uint64_t Seed, int Attempt, double BaseSeconds,
                            double CapSeconds);

/// Retry policy driver: invokes \p RunOnce (argument: 0-based attempt
/// number) until it returns Ok or a failure other than MetricUnstable, up
/// to \p MaxRetries re-runs, sleeping nativeBackoffSeconds() via \p Sleep
/// between attempts. Returns the final attempt's result, its Error
/// annotated with the retry count when instability persisted. Exposed with
/// injectable callables so tests exercise the policy without a compiler.
NativeResult
retryUnstable(const std::function<NativeResult(int)> &RunOnce,
              const std::function<void(double)> &Sleep, uint64_t Seed,
              int MaxRetries, double BaseSeconds, double CapSeconds);

/// Builds and runs \p P natively inside the sandbox.
NativeResult evaluateNative(const cir::Program &P,
                            const NativeOptions &Opts = NativeOptions());

} // namespace eval
} // namespace locus

#endif // LOCUS_EVAL_NATIVEEVALUATOR_H
