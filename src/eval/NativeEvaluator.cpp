//===- NativeEvaluator.cpp - Compile-and-run evaluation -----------------------===//

#include "src/eval/NativeEvaluator.h"

#include "src/cir/AstUtils.h"
#include "src/cir/Printer.h"
#include "src/support/Hashing.h"

#include <cstdio>
#include <cstdlib>
#include <set>
#include <sstream>

namespace locus {
namespace eval {

using namespace cir;

namespace {

/// Splices declaration-only blocks ("int i, j, k;" parses into a block of
/// three declarations) into their parent so the declared names stay in
/// scope for the sibling statements when emitted as C.
void flattenDeclGroups(Block &B) {
  std::vector<StmtPtr> Out;
  for (StmtPtr &S : B.Stmts) {
    // Harness-only calls have no native equivalent.
    if (auto *C = dyn_cast<CallStmt>(S.get())) {
      const auto *Call = cast<CallExpr>(C->Call.get());
      if (Call->Callee == "printf" || Call->Callee == "init_array" ||
          Call->Callee == "print_array" || Call->Callee == "free")
        continue;
    }
    if (auto *Sub = dyn_cast<Block>(S.get())) {
      bool AllDecls = !Sub->Stmts.empty() && Sub->RegionName.empty();
      for (const auto &Child : Sub->Stmts)
        if (!isa<DeclStmt>(Child.get()))
          AllDecls = false;
      if (AllDecls) {
        for (StmtPtr &Child : Sub->Stmts)
          Out.push_back(std::move(Child));
        continue;
      }
    }
    forEachStmt(*S, [](Stmt &Inner) {
      if (auto *F = dyn_cast<ForStmt>(&Inner))
        flattenDeclGroups(*F->Body);
      else if (auto *I = dyn_cast<IfStmt>(&Inner)) {
        flattenDeclGroups(*I->Then);
        if (I->Else)
          flattenDeclGroups(*I->Else);
      }
    });
    if (auto *Sub = dyn_cast<Block>(S.get()))
      flattenDeclGroups(*Sub);
    Out.push_back(std::move(S));
  }
  B.Stmts = std::move(Out);
}

} // namespace

std::string emitNativeC(const Program &OrigP) {
  std::unique_ptr<Program> Cloned = OrigP.clone();
  flattenDeclGroups(*Cloned->Body);
  const Program &P = *Cloned;
  std::ostringstream Out;
  Out << "#include <stdio.h>\n#include <stdlib.h>\n#include <time.h>\n";
  Out << "static long long locus_min(long long a, long long b) { return a < b ? a : b; }\n";
  Out << "static long long locus_max(long long a, long long b) { return a > b ? a : b; }\n";
  Out << "#define min(a, b) locus_min(a, b)\n#define max(a, b) locus_max(a, b)\n\n";

  // Globals, with the simulator's deterministic initialization.
  std::ostringstream Init;
  for (const auto &G : P.Globals) {
    Out << "static " << (G->Elem == ElemType::Int ? "long long " : "double ")
        << G->Name;
    int64_t Total = 1;
    for (int64_t D : G->Dims) {
      Out << '[' << D << ']';
      Total *= D;
    }
    Out << ";\n";
    if (G->isArray()) {
      const char *Elem = G->Elem == ElemType::Int ? "long long" : "double";
      Init << "  { " << Elem << " *p = &" << G->Name;
      for (size_t I = 0; I < G->Dims.size(); ++I)
        Init << "[0]";
      Init << "; for (long long i = 0; i < " << Total << "; i++) ";
      if (G->Elem == ElemType::Double)
        Init << "p[i] = (double)((i * 7 + 3) % 1021) / 1021.0; }\n";
      else
        Init << "p[i] = i % 13; }\n";
    } else if (G->Init) {
      Init << "  " << G->Name << " = " << printExpr(*G->Init) << ";\n";
    } else if (G->Elem == ElemType::Double) {
      uint64_t H = fnv1a(G->Name);
      Init << "  " << G->Name << " = "
           << (0.5 + static_cast<double>(H % 1000) / 1000.0) << ";\n";
    }
  }

  // Scalars introduced by transformations (tile-loop variables) may lack
  // declarations: collect every name used as a loop variable or assignment
  // target that is not declared anywhere.
  std::set<std::string> Declared;
  for (const auto &G : P.Globals)
    Declared.insert(G->Name);
  forEachStmt(*P.Body, [&](Stmt &S) {
    if (auto *D = dyn_cast<DeclStmt>(&S))
      Declared.insert(D->Name);
  });
  std::set<std::string> Needed;
  forEachStmt(*P.Body, [&](Stmt &S) {
    if (auto *F = dyn_cast<ForStmt>(&S))
      if (!Declared.count(F->Var))
        Needed.insert(F->Var);
    if (auto *A = dyn_cast<AssignStmt>(&S))
      if (auto *V = dyn_cast<VarRef>(A->Lhs.get()))
        if (!Declared.count(V->Name))
          Needed.insert(V->Name);
  });

  Out << "\nstatic double locus_checksum(void) {\n  double s = 0;\n";
  for (const auto &G : P.Globals) {
    if (!G->isArray())
      continue;
    int64_t Total = 1;
    for (int64_t D : G->Dims)
      Total *= D;
    const char *Elem = G->Elem == ElemType::Int ? "long long" : "double";
    Out << "  { " << Elem << " *p = &" << G->Name;
    for (size_t I = 0; I < G->Dims.size(); ++I)
      Out << "[0]";
    Out << "; for (long long i = 0; i < " << Total
        << "; i++) s += (double)p[i]; }\n";
  }
  Out << "  return s;\n}\n\n";

  Out << "int main(void) {\n";
  for (const std::string &Name : Needed)
    Out << "  long long " << Name << " = 0; (void)" << Name << ";\n";
  Out << Init.str();
  Out << "  struct timespec t0, t1;\n";
  Out << "  clock_gettime(CLOCK_MONOTONIC, &t0);\n";

  // The program body, minus region markers, translating ICC pragmas. The
  // harness intrinsics (init_array etc.) become no-ops.
  PrintOptions Opts;
  Opts.EmitRegionPragmas = false;
  std::string Body;
  for (const auto &S : P.Body->Stmts)
    Body += printStmt(*S, Opts, 1);
  // Pragma translation for portable compilers.
  auto ReplaceAll = [](std::string &Text, const std::string &From,
                       const std::string &To) {
    size_t Pos = 0;
    while ((Pos = Text.find(From, Pos)) != std::string::npos) {
      Text.replace(Pos, From.size(), To);
      Pos += To.size();
    }
  };
  ReplaceAll(Body, "#pragma ivdep", "#pragma GCC ivdep");
  ReplaceAll(Body, "#pragma vector always", "/* vector always */");
  // Harness calls the MiniC evaluator ignores.
  for (const char *Noop : {"init_array();", "print_array();", "rtclock()"})
    ReplaceAll(Body, Noop, Noop[0] == 'r' ? "0.0" : ";");
  Out << Body;

  Out << "  clock_gettime(CLOCK_MONOTONIC, &t1);\n";
  Out << "  double secs = (t1.tv_sec - t0.tv_sec) + 1e-9 * (t1.tv_nsec - t0.tv_nsec);\n";
  Out << "  printf(\"LOCUS_TIME %.9f\\nLOCUS_CHECKSUM %.9f\\n\", secs, locus_checksum());\n";
  Out << "  return 0;\n}\n";
  return Out.str();
}

bool nativeCompilerAvailable(const std::string &Compiler) {
  std::string Cmd = "command -v " + Compiler + " >/dev/null 2>&1";
  return std::system(Cmd.c_str()) == 0;
}

NativeResult evaluateNative(const Program &P, const NativeOptions &Opts) {
  NativeResult R;
  if (!nativeCompilerAvailable(Opts.Compiler)) {
    R.Error = "compiler not available: " + Opts.Compiler;
    return R;
  }
  std::string Source = emitNativeC(P);
  uint64_t Tag = fnv1a(Source);
  std::string Base = Opts.WorkDir + "/locus_native_" + std::to_string(Tag);
  std::string CFile = Base + ".c";
  std::string Bin = Base + ".bin";
  std::string Log = Base + ".out";
  {
    FILE *F = std::fopen(CFile.c_str(), "w");
    if (!F) {
      R.Error = "cannot write " + CFile;
      return R;
    }
    std::fputs(Source.c_str(), F);
    std::fclose(F);
  }
  std::string Build = Opts.Compiler;
  for (const std::string &Flag : Opts.Flags)
    Build += " " + Flag;
  Build += " -o " + Bin + " " + CFile + " 2> " + Log;
  if (std::system(Build.c_str()) != 0) {
    R.Error = "build failed: " + Build;
    return R;
  }

  double BestSecs = 0;
  for (int Rep = 0; Rep < std::max(1, Opts.Repeats); ++Rep) {
    std::string Run = Bin + " > " + Log + " 2>&1";
    if (std::system(Run.c_str()) != 0) {
      R.Error = "run failed";
      return R;
    }
    FILE *F = std::fopen(Log.c_str(), "r");
    if (!F) {
      R.Error = "cannot read run output";
      return R;
    }
    double Secs = 0, Sum = 0;
    if (std::fscanf(F, "LOCUS_TIME %lf\nLOCUS_CHECKSUM %lf", &Secs, &Sum) != 2) {
      std::fclose(F);
      R.Error = "malformed run output";
      return R;
    }
    std::fclose(F);
    if (Rep == 0 || Secs < BestSecs)
      BestSecs = Secs;
    R.Checksum = Sum;
  }
  R.Ok = true;
  R.Seconds = BestSecs;
  std::remove(CFile.c_str());
  std::remove(Bin.c_str());
  std::remove(Log.c_str());
  return R;
}

} // namespace eval
} // namespace locus
