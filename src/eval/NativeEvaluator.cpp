//===- NativeEvaluator.cpp - Compile-and-run evaluation -----------------------===//

#include "src/eval/NativeEvaluator.h"

#include "src/analysis/ParallelSafety.h"
#include "src/cir/AstUtils.h"
#include "src/cir/Printer.h"
#include "src/support/Hashing.h"
#include "src/support/StringUtils.h"

#include <charconv>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <set>
#include <sstream>
#include <thread>

namespace locus {
namespace eval {

using namespace cir;

namespace {

/// Splices declaration-only blocks ("int i, j, k;" parses into a block of
/// three declarations) into their parent so the declared names stay in
/// scope for the sibling statements when emitted as C.
void flattenDeclGroups(Block &B) {
  std::vector<StmtPtr> Out;
  for (StmtPtr &S : B.Stmts) {
    // Harness-only calls have no native equivalent.
    if (auto *C = dyn_cast<CallStmt>(S.get())) {
      const auto *Call = cast<CallExpr>(C->Call.get());
      if (Call->Callee == "printf" || Call->Callee == "init_array" ||
          Call->Callee == "print_array" || Call->Callee == "free")
        continue;
    }
    if (auto *Sub = dyn_cast<Block>(S.get())) {
      bool AllDecls = !Sub->Stmts.empty() && Sub->RegionName.empty();
      for (const auto &Child : Sub->Stmts)
        if (!isa<DeclStmt>(Child.get()))
          AllDecls = false;
      if (AllDecls) {
        for (StmtPtr &Child : Sub->Stmts)
          Out.push_back(std::move(Child));
        continue;
      }
    }
    forEachStmt(*S, [](Stmt &Inner) {
      if (auto *F = dyn_cast<ForStmt>(&Inner))
        flattenDeclGroups(*F->Body);
      else if (auto *I = dyn_cast<IfStmt>(&Inner)) {
        flattenDeclGroups(*I->Then);
        if (I->Else)
          flattenDeclGroups(*I->Else);
      }
    });
    if (auto *Sub = dyn_cast<Block>(S.get()))
      flattenDeclGroups(*Sub);
    Out.push_back(std::move(S));
  }
  B.Stmts = std::move(Out);
}

} // namespace

std::string emitNativeC(const Program &OrigP) {
  std::unique_ptr<Program> Cloned = OrigP.clone();
  flattenDeclGroups(*Cloned->Body);
  // Proven-safe `omp parallel for` loops get their data-sharing clauses
  // (private inner indices, firstprivate scalars, reductions) so the emitted
  // C is correct when built with -fopenmp, not just when the pragma is
  // ignored. Unproven loops keep their bare pragma; the checksum validation
  // against the simulator reference catches a miscompiled race.
  analysis::annotateOmpClauses(*Cloned);
  const Program &P = *Cloned;
  std::ostringstream Out;
  Out << "#include <stdio.h>\n#include <stdlib.h>\n#include <time.h>\n";
  Out << "static long long locus_min(long long a, long long b) { return a < b ? a : b; }\n";
  Out << "static long long locus_max(long long a, long long b) { return a > b ? a : b; }\n";
  Out << "#define min(a, b) locus_min(a, b)\n#define max(a, b) locus_max(a, b)\n\n";

  // Globals, with the simulator's deterministic initialization.
  std::ostringstream Init;
  for (const auto &G : P.Globals) {
    Out << "static " << (G->Elem == ElemType::Int ? "long long " : "double ")
        << G->Name;
    int64_t Total = 1;
    for (int64_t D : G->Dims) {
      Out << '[' << D << ']';
      Total *= D;
    }
    Out << ";\n";
    if (G->isArray()) {
      const char *Elem = G->Elem == ElemType::Int ? "long long" : "double";
      Init << "  { " << Elem << " *p = &" << G->Name;
      for (size_t I = 0; I < G->Dims.size(); ++I)
        Init << "[0]";
      Init << "; for (long long i = 0; i < " << Total << "; i++) ";
      if (G->Elem == ElemType::Double)
        Init << "p[i] = (double)((i * 7 + 3) % 1021) / 1021.0; }\n";
      else
        Init << "p[i] = i % 13; }\n";
    } else if (G->Init) {
      Init << "  " << G->Name << " = " << printExpr(*G->Init) << ";\n";
    } else if (G->Elem == ElemType::Double) {
      uint64_t H = fnv1a(G->Name);
      Init << "  " << G->Name << " = "
           << (0.5 + static_cast<double>(H % 1000) / 1000.0) << ";\n";
    }
  }

  // Scalars introduced by transformations (tile-loop variables) may lack
  // declarations: collect every name used as a loop variable or assignment
  // target that is not declared anywhere.
  std::set<std::string> Declared;
  for (const auto &G : P.Globals)
    Declared.insert(G->Name);
  forEachStmt(*P.Body, [&](Stmt &S) {
    if (auto *D = dyn_cast<DeclStmt>(&S))
      Declared.insert(D->Name);
  });
  std::set<std::string> Needed;
  forEachStmt(*P.Body, [&](Stmt &S) {
    if (auto *F = dyn_cast<ForStmt>(&S))
      if (!Declared.count(F->Var))
        Needed.insert(F->Var);
    if (auto *A = dyn_cast<AssignStmt>(&S))
      if (auto *V = dyn_cast<VarRef>(A->Lhs.get()))
        if (!Declared.count(V->Name))
          Needed.insert(V->Name);
  });

  Out << "\nstatic double locus_checksum(void) {\n  double s = 0;\n";
  for (const auto &G : P.Globals) {
    if (!G->isArray())
      continue;
    int64_t Total = 1;
    for (int64_t D : G->Dims)
      Total *= D;
    const char *Elem = G->Elem == ElemType::Int ? "long long" : "double";
    Out << "  { " << Elem << " *p = &" << G->Name;
    for (size_t I = 0; I < G->Dims.size(); ++I)
      Out << "[0]";
    Out << "; for (long long i = 0; i < " << Total
        << "; i++) s += (double)p[i]; }\n";
  }
  Out << "  return s;\n}\n\n";

  Out << "int main(void) {\n";
  for (const std::string &Name : Needed)
    Out << "  long long " << Name << " = 0; (void)" << Name << ";\n";
  Out << Init.str();
  Out << "  struct timespec t0, t1;\n";
  Out << "  clock_gettime(CLOCK_MONOTONIC, &t0);\n";

  // The program body, minus region markers, translating ICC pragmas. The
  // harness intrinsics (init_array etc.) become no-ops.
  PrintOptions Opts;
  Opts.EmitRegionPragmas = false;
  std::string Body;
  for (const auto &S : P.Body->Stmts)
    Body += printStmt(*S, Opts, 1);
  // Pragma translation for portable compilers.
  auto ReplaceAll = [](std::string &Text, const std::string &From,
                       const std::string &To) {
    size_t Pos = 0;
    while ((Pos = Text.find(From, Pos)) != std::string::npos) {
      Text.replace(Pos, From.size(), To);
      Pos += To.size();
    }
  };
  ReplaceAll(Body, "#pragma ivdep", "#pragma GCC ivdep");
  ReplaceAll(Body, "#pragma vector always", "/* vector always */");
  // Harness calls the MiniC evaluator ignores.
  for (const char *Noop : {"init_array();", "print_array();", "rtclock()"})
    ReplaceAll(Body, Noop, Noop[0] == 'r' ? "0.0" : ";");
  Out << Body;

  Out << "  clock_gettime(CLOCK_MONOTONIC, &t1);\n";
  Out << "  double secs = (t1.tv_sec - t0.tv_sec) + 1e-9 * (t1.tv_nsec - t0.tv_nsec);\n";
  Out << "  printf(\"LOCUS_TIME %.9f\\nLOCUS_CHECKSUM %.9f\\n\", secs, locus_checksum());\n";
  Out << "  return 0;\n}\n";
  return Out.str();
}

bool nativeCompilerAvailable(const std::string &Compiler) {
  support::SubprocessOptions SOpts;
  SOpts.Argv = {Compiler, "--version"};
  SOpts.Limits.WallClockSeconds = 10;
  SOpts.Limits.MaxCaptureBytes = 4096;
  return runSubprocess(SOpts).ok();
}

namespace {

/// First non-empty line of captured stderr, for compact diagnostics; the
/// full text stays in NativeResult::Error when short enough.
std::string summarizeStderr(const std::string &Err) {
  std::string_view Text = trimString(Err);
  if (Text.empty())
    return "";
  if (Text.size() <= 512)
    return std::string(Text);
  return std::string(Text.substr(0, 512)) + " ...";
}

/// Strict full-token double parse via std::from_chars.
bool parseDoubleToken(std::string_view Token, double &Out) {
  Token = trimString(Token);
  if (Token.empty())
    return false;
  const char *First = Token.data();
  const char *Last = Token.data() + Token.size();
  auto [Ptr, Ec] = std::from_chars(First, Last, Out);
  return Ec == std::errc() && Ptr == Last;
}

} // namespace

Status parseNativeOutput(std::string_view Output, double &Seconds,
                         double &Checksum) {
  bool HaveTime = false, HaveSum = false;
  for (std::string_view Line : splitString(Output, '\n')) {
    Line = trimString(Line);
    if (Line.empty())
      continue;
    constexpr std::string_view TimeTag = "LOCUS_TIME ";
    constexpr std::string_view SumTag = "LOCUS_CHECKSUM ";
    if (startsWith(Line, TimeTag)) {
      if (HaveTime)
        return Status::error("duplicate LOCUS_TIME line");
      if (!parseDoubleToken(Line.substr(TimeTag.size()), Seconds))
        return Status::error("unparseable LOCUS_TIME value: '" +
                             std::string(Line) + "'");
      HaveTime = true;
    } else if (startsWith(Line, SumTag)) {
      if (HaveSum)
        return Status::error("duplicate LOCUS_CHECKSUM line");
      if (!parseDoubleToken(Line.substr(SumTag.size()), Checksum))
        return Status::error("unparseable LOCUS_CHECKSUM value: '" +
                             std::string(Line) + "'");
      HaveSum = true;
    } else {
      return Status::error("unexpected output line: '" + std::string(Line) +
                           "'");
    }
  }
  if (!HaveTime || !HaveSum)
    return Status::error(std::string("missing ") +
                         (HaveTime ? "LOCUS_CHECKSUM" : "LOCUS_TIME") +
                         " line");
  if (!std::isfinite(Seconds) || Seconds < 0)
    return Status::error("non-finite or negative LOCUS_TIME");
  if (!std::isfinite(Checksum))
    return Status::error("non-finite LOCUS_CHECKSUM");
  return Status::success();
}

NativeResult classifyNativeRun(const support::SubprocessResult &R) {
  using search::FailureKind;
  NativeResult N;
  switch (R.Exit) {
  case support::SpawnExit::SpawnFailed:
    N.Failure = FailureKind::PrepareFailed;
    N.Error = "cannot execute variant: " + R.SpawnError;
    return N;
  case support::SpawnExit::TimedOut:
    N.Failure = FailureKind::BudgetExceeded;
    N.Error = "native run " + R.describe();
    return N;
  case support::SpawnExit::Signaled:
    N.Failure = FailureKind::RuntimeTrap;
    N.Error = "variant killed by " + support::signalName(R.Signal);
    if (std::string S = summarizeStderr(R.Stderr); !S.empty())
      N.Error += ": " + S;
    return N;
  case support::SpawnExit::Exited:
    break;
  }
  if (R.ExitCode != 0) {
    N.Failure = FailureKind::RuntimeTrap;
    N.Error = "variant exited with status " + std::to_string(R.ExitCode);
    if (std::string S = summarizeStderr(R.Stderr); !S.empty())
      N.Error += ": " + S;
    return N;
  }
  if (R.StdoutTruncated) {
    N.Failure = FailureKind::MetricUnstable;
    N.Error = "variant output exceeded the capture cap";
    return N;
  }
  double Secs = 0, Sum = 0;
  if (Status S = parseNativeOutput(R.Stdout, Secs, Sum); !S.ok()) {
    N.Failure = FailureKind::MetricUnstable;
    N.Error = "malformed run output: " + S.message();
    return N;
  }
  N.Ok = true;
  N.Seconds = Secs;
  N.Checksum = Sum;
  return N;
}

search::EvalOutcome toEvalOutcome(const NativeResult &R) {
  return R.Ok ? search::EvalOutcome::success(R.Seconds)
              : search::EvalOutcome::fail(R.Failure, R.Error);
}

double nativeBackoffSeconds(uint64_t Seed, int Attempt, double BaseSeconds,
                            double CapSeconds) {
  if (BaseSeconds <= 0 || Attempt < 0)
    return 0;
  int Exp = Attempt < 20 ? Attempt : 20; // 2^20 * base already dwarfs any cap
  double Delay = BaseSeconds * static_cast<double>(1ULL << Exp);
  uint64_t H = hashCombine(Seed, static_cast<uint64_t>(Attempt) + 1);
  double Jitter = 0.5 + 0.5 * (static_cast<double>(H % 1024) / 1023.0);
  Delay *= Jitter;
  if (CapSeconds > 0 && Delay > CapSeconds)
    Delay = CapSeconds;
  return Delay;
}

NativeResult
retryUnstable(const std::function<NativeResult(int)> &RunOnce,
              const std::function<void(double)> &Sleep, uint64_t Seed,
              int MaxRetries, double BaseSeconds, double CapSeconds) {
  NativeResult R;
  int Attempts = 1 + std::max(0, MaxRetries);
  for (int Attempt = 0; Attempt < Attempts; ++Attempt) {
    if (Attempt > 0 && Sleep)
      Sleep(nativeBackoffSeconds(Seed, Attempt - 1, BaseSeconds, CapSeconds));
    R = RunOnce(Attempt);
    // Only the transient classification is worth re-measuring; a crash or a
    // deadline will reproduce, and retrying it would just burn budget.
    if (R.Ok || R.Failure != search::FailureKind::MetricUnstable)
      return R;
  }
  if (Attempts > 1)
    R.Error += " (persisted across " + std::to_string(Attempts - 1) +
               " backoff retries)";
  return R;
}

NativeResult evaluateNative(const Program &P, const NativeOptions &Opts) {
  using search::FailureKind;
  NativeResult R;
  std::string Source = emitNativeC(P);

  support::TempDir Work("locus-native-", Opts.WorkDir);
  if (!Work.valid()) {
    R.Failure = FailureKind::PrepareFailed;
    R.Error = "cannot create working directory under " +
              (Opts.WorkDir.empty() ? std::string("$TMPDIR") : Opts.WorkDir);
    return R;
  }
  // Every return path below goes through this finalizer.
  auto Finish = [&](NativeResult N) {
    if (Opts.KeepWorkDir)
      N.WorkDir = Work.release();
    return N;
  };

  std::string CFile = Work.path() + "/variant.c";
  std::string Bin = Work.path() + "/variant.bin";
  {
    FILE *F = std::fopen(CFile.c_str(), "w");
    if (!F) {
      R.Failure = FailureKind::PrepareFailed;
      R.Error = "cannot write " + CFile;
      return Finish(R);
    }
    std::fputs(Source.c_str(), F);
    std::fclose(F);
  }

  // Compile phase: argv invocation, deadline, captured stderr. No RLIMIT_AS
  // here — compilers legitimately map large address spaces.
  support::SubprocessOptions Build;
  Build.Argv.push_back(Opts.Compiler);
  for (const std::string &Flag : Opts.Flags)
    Build.Argv.push_back(Flag);
  Build.Argv.insert(Build.Argv.end(), {"-o", Bin, CFile});
  Build.WorkDir = Work.path();
  Build.Limits.WallClockSeconds = Opts.CompileTimeoutSeconds;
  Build.Limits.MaxCaptureBytes = Opts.MaxCaptureBytes;
  support::SubprocessResult BuildRes = runSubprocess(Build);
  if (!BuildRes.ok()) {
    if (BuildRes.Exit == support::SpawnExit::SpawnFailed &&
        !nativeCompilerAvailable(Opts.Compiler))
      R.Error = "compiler not available: " + Opts.Compiler;
    else {
      R.Error = "native build failed (" + BuildRes.describe() + ")";
      if (std::string S = summarizeStderr(BuildRes.Stderr); !S.empty())
        R.Error += ": " + S;
    }
    R.Failure = BuildRes.Exit == support::SpawnExit::TimedOut
                    ? FailureKind::BudgetExceeded
                    : FailureKind::PrepareFailed;
    return Finish(R);
  }

  // Run phase: deadline + rlimits; minimum time over repeats; the checksum
  // must reproduce across repeats or the measurement is unstable.
  auto RunPhase = [&](int /*Attempt*/) -> NativeResult {
    NativeResult Phase;
    double BestSecs = 0, FirstSum = 0;
    for (int Rep = 0; Rep < std::max(1, Opts.Repeats); ++Rep) {
      support::SubprocessOptions Run;
      Run.Argv = {Bin};
      Run.WorkDir = Work.path();
      Run.Limits.WallClockSeconds = Opts.RunTimeoutSeconds;
      Run.Limits.MaxCaptureBytes = Opts.MaxCaptureBytes;
      if (Opts.RunTimeoutSeconds > 0)
        Run.Limits.CpuSeconds =
            static_cast<long>(Opts.RunTimeoutSeconds) + 1;
      Run.Limits.AddressSpaceBytes = Opts.MemoryLimitBytes;
      Run.Limits.FileSizeBytes = 1L << 26; // a variant has no business writing
      NativeResult Attempt = classifyNativeRun(runSubprocess(Run));
      if (!Attempt.Ok)
        return Attempt;
      if (Rep == 0) {
        FirstSum = Attempt.Checksum;
      } else {
        double Tol = 1e-9 * std::max(1.0, std::abs(FirstSum));
        if (std::abs(Attempt.Checksum - FirstSum) > Tol) {
          Phase.Failure = FailureKind::MetricUnstable;
          Phase.Error = "checksum varies across repeats: " +
                        std::to_string(FirstSum) + " vs " +
                        std::to_string(Attempt.Checksum);
          return Phase;
        }
      }
      if (Rep == 0 || Attempt.Seconds < BestSecs)
        BestSecs = Attempt.Seconds;
    }
    Phase.Ok = true;
    Phase.Failure = FailureKind::None;
    Phase.Seconds = BestSecs;
    Phase.Checksum = FirstSum;
    return Phase;
  };

  // Transient instability (noisy neighbor, paging storm) is re-measured on
  // a deterministic backoff schedule. Seeding from the variant's source
  // keeps the schedule a pure function of the variant: --jobs N workers and
  // separate processes retry identically, preserving trajectory parity.
  return Finish(retryUnstable(
      RunPhase,
      [](double Secs) {
        if (Secs > 0)
          std::this_thread::sleep_for(std::chrono::duration<double>(Secs));
      },
      fnv1a(Source), Opts.MaxUnstableRetries, Opts.RetryBackoffBaseSeconds,
      Opts.RetryBackoffCapSeconds));
}

} // namespace eval
} // namespace locus
