//===- Evaluator.h - MiniC execution and cost evaluation --------*- C++ -*-===//
///
/// \file
/// Executes a MiniC program and measures its cost on a simulated machine.
/// This replaces the paper's "buildcmd/runcmd + wall clock on a Xeon"
/// evaluation loop: the program's semantics run for real (so transformation
/// correctness is checkable via array checksums), while every array access
/// flows through the cache simulator and pragma-annotated loops go through
/// OpenMP-schedule and SIMD models. The returned cycle count is the metric
/// the search modules minimize.
///
/// The evaluator first compiles the AST to an internal typed tree with
/// resolved variable slots so repeated variant evaluations are fast.
///
//===----------------------------------------------------------------------===//
#ifndef LOCUS_EVAL_EVALUATOR_H
#define LOCUS_EVAL_EVALUATOR_H

#include "src/cir/Ast.h"
#include "src/machine/CacheSim.h"
#include "src/support/Error.h"

#include <map>
#include <memory>
#include <string>
#include <vector>

namespace locus {
namespace eval {

/// Evaluation options.
struct EvalOptions {
  /// When false, skips all cost accounting (cache simulation, schedules);
  /// used by pure-semantics correctness tests.
  bool CountCost = true;
  machine::MachineConfig Machine = machine::MachineConfig::xeonE5v3();
  /// Abort evaluation after this many loop iterations (runaway guard).
  uint64_t MaxIterations = 1ull << 33;
  /// Model OpenMP speedup even for loops the parallel-safety analyzer
  /// cannot prove race-free. Off by default: an unproven `omp parallel for`
  /// executes (and is costed) sequentially, with a warning in
  /// RunResult::Warnings, so the search cannot be steered by a speedup the
  /// real machine would only reach through a data race.
  bool TrustParallel = false;
};

/// The outcome of one program execution.
struct RunResult {
  bool Ok = false;
  std::string Error;
  double Cycles = 0;            ///< simulated execution time
  uint64_t ArithOps = 0;        ///< floating-point operations executed
  uint64_t MemReads = 0;
  uint64_t MemWrites = 0;
  uint64_t LoopIterations = 0;
  std::vector<machine::CacheLevelStats> Cache;
  double Checksum = 0; ///< sum over all arrays; equal checksums across
                       ///< variants indicate semantic equivalence
  /// Non-fatal model notes, e.g. an `omp parallel for` whose speedup was
  /// not modeled because the loop's parallel safety is unproven.
  std::vector<std::string> Warnings;
};

namespace detail {
struct CompiledProgram;
}

/// Compiles and executes MiniC programs.
class ProgramEvaluator {
public:
  ProgramEvaluator(const cir::Program &P, EvalOptions Opts = EvalOptions());
  ~ProgramEvaluator();

  ProgramEvaluator(const ProgramEvaluator &) = delete;
  ProgramEvaluator &operator=(const ProgramEvaluator &) = delete;

  /// Compiles the program; must succeed before run().
  Status prepare();

  /// Overrides the deterministic default initialization of an array.
  /// Effective on subsequent run() calls. Must be called after prepare().
  Status setDoubleArray(const std::string &Name, std::vector<double> Values);
  Status setIntArray(const std::string &Name, std::vector<int64_t> Values);

  /// Overrides a scalar's initial value.
  Status setScalar(const std::string &Name, double Value);

  /// Executes the program from its initial state.
  RunResult run();

  /// Reads back a double array's contents after run().
  Expected<std::vector<double>> doubleArray(const std::string &Name) const;

private:
  const cir::Program &Prog;
  EvalOptions Opts;
  std::unique_ptr<detail::CompiledProgram> Compiled;
};

/// Convenience helper: evaluates a program once with default inputs.
RunResult evaluateProgram(const cir::Program &P,
                          const EvalOptions &Opts = EvalOptions());

} // namespace eval
} // namespace locus

#endif // LOCUS_EVAL_EVALUATOR_H
