//===- Evaluator.cpp - MiniC execution and cost evaluation -------------------===//

#include "src/eval/Evaluator.h"

#include "src/analysis/Affine.h"
#include "src/analysis/Dependence.h"
#include "src/analysis/ParallelSafety.h"
#include "src/cir/AstUtils.h"
#include "src/support/Hashing.h"
#include "src/support/StringUtils.h"

#include <algorithm>
#include <cassert>
#include <queue>

namespace locus {
namespace eval {

using namespace cir;

namespace detail {

//===----------------------------------------------------------------------===//
// Compiled representation
//===----------------------------------------------------------------------===//

enum class EK : uint8_t {
  ConstI,
  ConstD,
  VarI,
  VarD,
  LoadI,   ///< int array element
  LoadD,   ///< double array element
  BinI,    ///< both operands int, result int
  BinD,    ///< double arithmetic/comparison (comparison yields 0/1 as double)
  CmpD,    ///< double comparison, result int
  NegI,
  NegD,
  NotI,
  CastID,  ///< int operand used in a double context
  MinI,
  MaxI,
  MinD,
  MaxD,
  Rtclock, ///< harness intrinsic; evaluates to 0.0
};

struct CE {
  EK Kind = EK::ConstI;
  BinOp Op = BinOp::Add;
  int64_t ConstInt = 0;
  double ConstDouble = 0;
  int Slot = -1; ///< scalar slot or array id
  std::vector<CE> Kids;

  bool isDouble() const {
    switch (Kind) {
    case EK::ConstD:
    case EK::VarD:
    case EK::LoadD:
    case EK::BinD:
    case EK::NegD:
    case EK::CastID:
    case EK::MinD:
    case EK::MaxD:
    case EK::Rtclock:
      return true;
    default:
      return false;
    }
  }
};

enum class SK : uint8_t { Block, For, If, AssignScalar, AssignArray, Nop };

/// OpenMP schedule kinds recognized on loops.
enum class Sched : uint8_t { None, Default, Static, Dynamic };

struct CS {
  SK Kind = SK::Nop;

  // For
  int Slot = -1;
  CE Init;
  CE BoundExcl; ///< exclusive upper bound (Le bounds get +1 at compile time)
  int64_t Step = 1;
  std::vector<CS> Body;
  Sched Par = Sched::None;
  int Chunk = 0;
  double VecScale = 1.0; ///< <1 when a SIMD pragma applies

  // If
  CE Cond;
  std::vector<CS> Else;

  // Assign
  cir::AssignOp Op = cir::AssignOp::Set;
  bool TargetDouble = false;
  std::vector<CE> Indices;
  CE Rhs;
};

struct ArrayInfo {
  std::string Name;
  ElemType Elem = ElemType::Double;
  std::vector<int64_t> Dims;
  std::vector<int64_t> Strides;
  int64_t TotalElems = 0;
  uint64_t Base = 0;
};

struct CompiledProgram {
  const cir::Program *Prog = nullptr;
  EvalOptions Opts;

  // Symbols.
  std::map<std::string, int> ScalarSlots;
  std::vector<ElemType> SlotTypes;
  std::map<std::string, int> ArrayIds;
  std::vector<ArrayInfo> Arrays;

  // Initial state.
  std::vector<std::vector<double>> InitDouble; ///< per array (doubles)
  std::vector<std::vector<int64_t>> InitInt;   ///< per array (ints)
  std::vector<double> InitScalarD;
  std::vector<int64_t> InitScalarI;

  std::vector<CS> Body;
  std::string CompileError;
  /// Compile-time model notes surfaced on every RunResult (e.g. OpenMP
  /// speedup not modeled because the loop's safety is unproven).
  std::vector<std::string> Warnings;

  // ---- execution state ----
  std::vector<double> ScalarD;
  std::vector<int64_t> ScalarI;
  std::vector<std::vector<double>> DataD;
  std::vector<std::vector<int64_t>> DataI;
  std::unique_ptr<machine::CacheSim> Cache;
  double Cycles = 0;
  double ArithScale = 1.0;
  int L1HitLatency = 4;
  bool InParallel = false;
  uint64_t Iterations = 0;
  uint64_t ArithOps = 0, MemReads = 0, MemWrites = 0;
  bool Failed = false;
  std::string RunError;

  //===--------------------------------------------------------------------===//
  // Compilation
  //===--------------------------------------------------------------------===//

  void fail(const std::string &Message) {
    if (CompileError.empty())
      CompileError = Message;
  }

  int scalarSlot(const std::string &Name, ElemType Elem, bool Declare) {
    auto It = ScalarSlots.find(Name);
    if (It != ScalarSlots.end())
      return It->second;
    if (!Declare) {
      // Implicitly declared (e.g. a loop variable with no decl): int.
      Elem = ElemType::Int;
    }
    int Slot = static_cast<int>(SlotTypes.size());
    ScalarSlots[Name] = Slot;
    SlotTypes.push_back(Elem);
    return Slot;
  }

  void declareArray(const DeclStmt &D) {
    if (ArrayIds.count(D.Name)) {
      fail("array redeclared: " + D.Name);
      return;
    }
    ArrayInfo Info;
    Info.Name = D.Name;
    Info.Elem = D.Elem;
    Info.Dims = D.Dims;
    Info.Strides.assign(D.Dims.size(), 1);
    int64_t Total = 1;
    for (size_t I = D.Dims.size(); I-- > 0;) {
      Info.Strides[I] = Total;
      Total *= D.Dims[I];
    }
    Info.TotalElems = Total;
    int Id = static_cast<int>(Arrays.size());
    ArrayIds[D.Name] = Id;
    Arrays.push_back(std::move(Info));
  }

  /// Deterministic default contents so checksums are reproducible.
  void buildInitialData() {
    uint64_t Base = 4096;
    InitDouble.resize(Arrays.size());
    InitInt.resize(Arrays.size());
    for (size_t Id = 0; Id < Arrays.size(); ++Id) {
      ArrayInfo &A = Arrays[Id];
      A.Base = Base;
      Base += static_cast<uint64_t>(A.TotalElems) * 8 + 128;
      Base = (Base + 63) & ~63ULL;
      if (A.Elem == ElemType::Double) {
        auto &V = InitDouble[Id];
        V.resize(static_cast<size_t>(A.TotalElems));
        for (size_t I = 0; I < V.size(); ++I)
          V[I] = static_cast<double>((I * 7 + 3) % 1021) / 1021.0;
      } else {
        auto &V = InitInt[Id];
        V.resize(static_cast<size_t>(A.TotalElems));
        for (size_t I = 0; I < V.size(); ++I)
          V[I] = static_cast<int64_t>(I % 13);
      }
    }
    InitScalarD.assign(SlotTypes.size(), 0.0);
    InitScalarI.assign(SlotTypes.size(), 0);
    // Named scalars get stable, nonzero defaults derived from their names so
    // kernels multiplying by alpha/beta do not collapse to zero.
    for (const auto &[Name, Slot] : ScalarSlots) {
      uint64_t H = fnv1a(Name);
      if (SlotTypes[static_cast<size_t>(Slot)] == ElemType::Double)
        InitScalarD[static_cast<size_t>(Slot)] =
            0.5 + static_cast<double>(H % 1000) / 1000.0;
    }
  }

  CE compileExpr(const Expr &E) {
    CE Out;
    switch (E.kind()) {
    case ExprKind::IntLit:
      Out.Kind = EK::ConstI;
      Out.ConstInt = cast<IntLit>(&E)->Value;
      return Out;
    case ExprKind::FloatLit:
      Out.Kind = EK::ConstD;
      Out.ConstDouble = cast<FloatLit>(&E)->Value;
      return Out;
    case ExprKind::VarRef: {
      const std::string &Name = cast<VarRef>(&E)->Name;
      if (ArrayIds.count(Name)) {
        fail("array " + Name + " used without subscripts");
        return Out;
      }
      int Slot = scalarSlot(Name, ElemType::Int, /*Declare=*/false);
      Out.Slot = Slot;
      Out.Kind = SlotTypes[static_cast<size_t>(Slot)] == ElemType::Double
                     ? EK::VarD
                     : EK::VarI;
      return Out;
    }
    case ExprKind::ArrayRef: {
      const auto *A = cast<ArrayRef>(&E);
      auto It = ArrayIds.find(A->Name);
      if (It == ArrayIds.end()) {
        fail("unknown array: " + A->Name);
        return Out;
      }
      const ArrayInfo &Info = Arrays[static_cast<size_t>(It->second)];
      if (A->Indices.size() != Info.Dims.size()) {
        fail("array " + A->Name + " has " + std::to_string(Info.Dims.size()) +
             " dimensions but is subscripted with " +
             std::to_string(A->Indices.size()));
        return Out;
      }
      Out.Kind = Info.Elem == ElemType::Double ? EK::LoadD : EK::LoadI;
      Out.Slot = It->second;
      for (const auto &I : A->Indices) {
        CE Idx = compileExpr(*I);
        if (Idx.isDouble()) {
          fail("array subscript of " + A->Name + " has floating type");
          return Out;
        }
        Out.Kids.push_back(std::move(Idx));
      }
      return Out;
    }
    case ExprKind::Unary: {
      const auto *U = cast<UnaryExpr>(&E);
      CE Operand = compileExpr(*U->Operand);
      if (U->Op == UnOp::Not) {
        if (Operand.isDouble()) {
          fail("logical not applied to a floating value");
          return Out;
        }
        Out.Kind = EK::NotI;
      } else {
        Out.Kind = Operand.isDouble() ? EK::NegD : EK::NegI;
      }
      Out.Kids.push_back(std::move(Operand));
      return Out;
    }
    case ExprKind::Binary: {
      const auto *B = cast<BinaryExpr>(&E);
      CE L = compileExpr(*B->Lhs);
      CE R = compileExpr(*B->Rhs);
      bool AnyDouble = L.isDouble() || R.isDouble();
      bool IsCompare = B->Op == BinOp::Lt || B->Op == BinOp::Le ||
                       B->Op == BinOp::Gt || B->Op == BinOp::Ge ||
                       B->Op == BinOp::Eq || B->Op == BinOp::Ne;
      bool IsLogic = B->Op == BinOp::And || B->Op == BinOp::Or;
      if (B->Op == BinOp::Mod && AnyDouble) {
        fail("modulo on floating values");
        return Out;
      }
      if (AnyDouble && !IsLogic) {
        if (!L.isDouble()) {
          CE C;
          C.Kind = EK::CastID;
          C.Kids.push_back(std::move(L));
          L = std::move(C);
        }
        if (!R.isDouble()) {
          CE C;
          C.Kind = EK::CastID;
          C.Kids.push_back(std::move(R));
          R = std::move(C);
        }
        Out.Kind = IsCompare ? EK::CmpD : EK::BinD;
      } else {
        if (IsLogic && (L.isDouble() || R.isDouble())) {
          fail("logical operator on floating values");
          return Out;
        }
        Out.Kind = EK::BinI;
      }
      Out.Op = B->Op;
      Out.Kids.push_back(std::move(L));
      Out.Kids.push_back(std::move(R));
      return Out;
    }
    case ExprKind::Call: {
      const auto *C = cast<CallExpr>(&E);
      if ((C->Callee == "min" || C->Callee == "max") && C->Args.size() == 2) {
        CE L = compileExpr(*C->Args[0]);
        CE R = compileExpr(*C->Args[1]);
        bool AnyDouble = L.isDouble() || R.isDouble();
        if (AnyDouble) {
          if (!L.isDouble()) {
            CE Cast;
            Cast.Kind = EK::CastID;
            Cast.Kids.push_back(std::move(L));
            L = std::move(Cast);
          }
          if (!R.isDouble()) {
            CE Cast;
            Cast.Kind = EK::CastID;
            Cast.Kids.push_back(std::move(R));
            R = std::move(Cast);
          }
        }
        Out.Kind = C->Callee == "min" ? (AnyDouble ? EK::MinD : EK::MinI)
                                      : (AnyDouble ? EK::MaxD : EK::MaxI);
        Out.Kids.push_back(std::move(L));
        Out.Kids.push_back(std::move(R));
        return Out;
      }
      if (C->Callee == "rtclock" && C->Args.empty()) {
        Out.Kind = EK::Rtclock;
        return Out;
      }
      fail("unknown function in expression: " + C->Callee);
      return Out;
    }
    }
    return Out;
  }

  /// Parses OpenMP / vectorization pragmas attached to a loop.
  void compileLoopPragmas(const ForStmt &For, CS &Out) {
    bool Vector = false;
    for (const std::string &P : For.Pragmas) {
      std::string_view Text = trimString(P);
      if (startsWith(Text, "omp parallel for")) {
        Out.Par = Sched::Default;
        size_t SchedPos = Text.find("schedule(");
        if (SchedPos != std::string_view::npos) {
          std::string_view Spec = Text.substr(SchedPos + 9);
          size_t Close = Spec.find(')');
          if (Close != std::string_view::npos)
            Spec = Spec.substr(0, Close);
          std::vector<std::string> Parts = splitString(std::string(Spec), ',');
          std::string Kind(trimString(Parts[0]));
          if (Kind == "dynamic")
            Out.Par = Sched::Dynamic;
          else
            Out.Par = Sched::Static;
          if (Parts.size() > 1)
            Out.Chunk = std::atoi(std::string(trimString(Parts[1])).c_str());
        }
      } else if (startsWith(Text, "ivdep") || startsWith(Text, "vector")) {
        Vector = true;
      }
    }
    if (!Opts.CountCost)
      return;
    // OpenMP schedule model gate: only loops the parallel-safety analyzer
    // proves race-free get modeled speedup. Unproven or racy loops still
    // execute (sequentially, so checksums stay exact) but are costed
    // sequentially with a warning — a racy parallelization must not be
    // rewarded by the model. TrustParallel restores the old behavior.
    if (Out.Par != Sched::None && !Opts.TrustParallel) {
      analysis::ParallelSafetyReport Rep = analysis::analyzeParallelLoop(For);
      if (Rep.Verdict != analysis::ParallelVerdict::Safe) {
        Out.Par = Sched::None;
        Out.Chunk = 0;
        Warnings.push_back("not modeling parallel speedup for loop '" +
                           For.Var + "': " + Rep.summary());
      }
    }
    // SIMD model, mirroring an optimizing compiler (the paper's ICC -O3):
    //  - only innermost loops vectorize;
    //  - a loop with a *proven* carried dependence never vectorizes, even
    //    under ivdep;
    //  - a loop whose independence is proven auto-vectorizes without any
    //    pragma;
    //  - an unanalyzable loop vectorizes only when the programmer asserts
    //    independence with ivdep / vector always.
    bool HasInnerLoop = false;
    forEachStmt(*const_cast<Block *>(For.Body.get()), [&](Stmt &S) {
      if (isa<ForStmt>(&S))
        HasInnerLoop = true;
    });
    if (HasInnerLoop)
      return;
    std::optional<analysis::DependenceInfo> Deps =
        analysis::DependenceInfo::compute(For);
    if (Deps) {
      for (const analysis::Dependence &D : Deps->deps())
        if (D.mayBeCarriedBy(0))
          return; // proven carried dependence: no SIMD
      // Proven independent: auto-vectorize.
    } else if (!Vector) {
      return; // unprovable and no ivdep: the compiler stays scalar
    }
    bool AllUnitStride = true;
    forEachStmt(*const_cast<Block *>(For.Body.get()), [&](Stmt &S) {
      forEachExpr(S, [&](ExprPtr &E) {
        const std::function<void(const Expr &)> Scan = [&](const Expr &Sub) {
          if (const auto *A = dyn_cast<ArrayRef>(&Sub)) {
            for (size_t I = 0; I < A->Indices.size(); ++I) {
              std::optional<analysis::AffineExpr> Aff =
                  analysis::toAffine(*A->Indices[I]);
              int64_t Coeff = Aff ? Aff->coeff(For.Var) : 1;
              if (!Aff && referencesVar(*A->Indices[I], For.Var))
                AllUnitStride = false;
              else if (I + 1 == A->Indices.size()) {
                if (Coeff != 0 && Coeff != 1)
                  AllUnitStride = false;
              } else if (Coeff != 0) {
                AllUnitStride = false;
              }
            }
          } else if (const auto *B = dyn_cast<BinaryExpr>(&Sub)) {
            Scan(*B->Lhs);
            Scan(*B->Rhs);
          } else if (const auto *U = dyn_cast<UnaryExpr>(&Sub)) {
            Scan(*U->Operand);
          } else if (const auto *C = dyn_cast<CallExpr>(&Sub)) {
            for (const auto &Arg : C->Args)
              Scan(*Arg);
          }
        };
        Scan(*E);
      });
    });
    double W = static_cast<double>(Opts.Machine.VectorWidthDoubles);
    Out.VecScale = AllUnitStride ? 1.0 / W : 2.0 / W;
    if (Out.VecScale > 1.0)
      Out.VecScale = 1.0;
  }

  void compileStmt(const Stmt &S, std::vector<CS> &Out) {
    switch (S.kind()) {
    case StmtKind::Block:
      for (const auto &Sub : cast<Block>(&S)->Stmts)
        compileStmt(*Sub, Out);
      return;
    case StmtKind::Decl: {
      const auto *D = cast<DeclStmt>(&S);
      if (D->isArray()) {
        declareArray(*D);
        return;
      }
      int Slot = scalarSlot(D->Name, D->Elem, /*Declare=*/true);
      if (D->Init) {
        CS A;
        A.Kind = SK::AssignScalar;
        A.Slot = Slot;
        A.Op = AssignOp::Set;
        A.TargetDouble = SlotTypes[static_cast<size_t>(Slot)] == ElemType::Double;
        A.Rhs = compileExpr(*D->Init);
        Out.push_back(std::move(A));
      }
      return;
    }
    case StmtKind::For: {
      const auto *F = cast<ForStmt>(&S);
      CS L;
      L.Kind = SK::For;
      L.Slot = scalarSlot(F->Var, ElemType::Int, /*Declare=*/false);
      if (SlotTypes[static_cast<size_t>(L.Slot)] != ElemType::Int) {
        fail("loop variable " + F->Var + " must be an int");
        return;
      }
      L.Init = compileExpr(*F->Init);
      CE Bound = compileExpr(*F->Bound);
      if (L.Init.isDouble() || Bound.isDouble()) {
        fail("loop bounds of " + F->Var + " must be integers");
        return;
      }
      if (F->Op == BoundOp::Le) {
        CE Plus;
        Plus.Kind = EK::BinI;
        Plus.Op = BinOp::Add;
        Plus.Kids.push_back(std::move(Bound));
        CE One;
        One.Kind = EK::ConstI;
        One.ConstInt = 1;
        Plus.Kids.push_back(std::move(One));
        Bound = std::move(Plus);
      }
      L.BoundExcl = std::move(Bound);
      L.Step = F->Step;
      compileLoopPragmas(*F, L);
      for (const auto &Sub : F->Body->Stmts)
        compileStmt(*Sub, L.Body);
      Out.push_back(std::move(L));
      return;
    }
    case StmtKind::If: {
      const auto *I = cast<IfStmt>(&S);
      CS C;
      C.Kind = SK::If;
      C.Cond = compileExpr(*I->Cond);
      if (C.Cond.isDouble()) {
        CE Cmp;
        Cmp.Kind = EK::CmpD;
        Cmp.Op = BinOp::Ne;
        Cmp.Kids.push_back(std::move(C.Cond));
        CE Zero;
        Zero.Kind = EK::ConstD;
        Cmp.Kids.push_back(std::move(Zero));
        C.Cond = std::move(Cmp);
      }
      for (const auto &Sub : I->Then->Stmts)
        compileStmt(*Sub, C.Body);
      if (I->Else)
        for (const auto &Sub : I->Else->Stmts)
          compileStmt(*Sub, C.Else);
      Out.push_back(std::move(C));
      return;
    }
    case StmtKind::Assign: {
      const auto *A = cast<AssignStmt>(&S);
      CS C;
      C.Op = A->Op;
      C.Rhs = compileExpr(*A->Rhs);
      if (const auto *V = dyn_cast<VarRef>(A->Lhs.get())) {
        C.Kind = SK::AssignScalar;
        // The first assignment of an undeclared scalar fixes its type from
        // the RHS (harness temporaries like t_start).
        bool Known = ScalarSlots.count(V->Name) != 0;
        C.Slot = scalarSlot(
            V->Name, C.Rhs.isDouble() ? ElemType::Double : ElemType::Int,
            /*Declare=*/!Known);
        C.TargetDouble =
            SlotTypes[static_cast<size_t>(C.Slot)] == ElemType::Double;
      } else if (const auto *Arr = dyn_cast<ArrayRef>(A->Lhs.get())) {
        auto It = ArrayIds.find(Arr->Name);
        if (It == ArrayIds.end()) {
          fail("unknown array: " + Arr->Name);
          return;
        }
        const ArrayInfo &Info = Arrays[static_cast<size_t>(It->second)];
        if (Arr->Indices.size() != Info.Dims.size()) {
          fail("array " + Arr->Name + " subscript arity mismatch");
          return;
        }
        C.Kind = SK::AssignArray;
        C.Slot = It->second;
        C.TargetDouble = Info.Elem == ElemType::Double;
        for (const auto &I : Arr->Indices) {
          CE Idx = compileExpr(*I);
          if (Idx.isDouble()) {
            fail("array subscript of " + Arr->Name + " has floating type");
            return;
          }
          C.Indices.push_back(std::move(Idx));
        }
      } else {
        fail("unsupported assignment target");
        return;
      }
      Out.push_back(std::move(C));
      return;
    }
    case StmtKind::CallStmt: {
      const auto *C = cast<CallStmt>(&S);
      const auto *Call = cast<CallExpr>(C->Call.get());
      static const char *Harness[] = {"init_array", "print_array", "printf",
                                      "rtclock", "free"};
      for (const char *H : Harness)
        if (Call->Callee == H)
          return; // no-op
      fail("unknown call statement: " + Call->Callee +
           " (was a placeholder left unexpanded?)");
      return;
    }
    }
  }

  Status compile(const cir::Program &P) {
    Prog = &P;
    std::vector<CS> GlobalInit;
    for (const auto &G : P.Globals) {
      if (G->isArray())
        declareArray(*G);
      else {
        int Slot = scalarSlot(G->Name, G->Elem, /*Declare=*/true);
        if (G->Init) {
          CS A;
          A.Kind = SK::AssignScalar;
          A.Slot = Slot;
          A.Op = AssignOp::Set;
          A.TargetDouble =
              SlotTypes[static_cast<size_t>(Slot)] == ElemType::Double;
          A.Rhs = compileExpr(*G->Init);
          GlobalInit.push_back(std::move(A));
        }
      }
    }
    std::vector<CS> MainBody;
    for (const auto &S : P.Body->Stmts)
      compileStmt(*S, MainBody);
    Body = std::move(GlobalInit);
    for (auto &S : MainBody)
      Body.push_back(std::move(S));
    if (!CompileError.empty())
      return Status::error(CompileError);
    buildInitialData();
    L1HitLatency =
        Opts.Machine.Levels.empty() ? 0 : Opts.Machine.Levels[0].HitLatency;
    return Status::success();
  }

  //===--------------------------------------------------------------------===//
  // Execution
  //===--------------------------------------------------------------------===//

  void runtimeFail(const std::string &Message) {
    if (!Failed) {
      Failed = true;
      RunError = Message;
    }
  }

  int64_t flatIndex(const CS &S) {
    const ArrayInfo &A = Arrays[static_cast<size_t>(S.Slot)];
    int64_t Flat = 0;
    for (size_t I = 0; I < S.Indices.size(); ++I) {
      int64_t Idx = evalI(S.Indices[I]);
      if (Idx < 0 || Idx >= A.Dims[I]) {
        runtimeFail("index " + std::to_string(Idx) + " out of bounds for " +
                    A.Name + " dim " + std::to_string(I) + " (size " +
                    std::to_string(A.Dims[I]) + ")");
        return 0;
      }
      Flat += Idx * A.Strides[I];
    }
    return Flat;
  }

  int64_t flatIndexCE(const CE &E) {
    const ArrayInfo &A = Arrays[static_cast<size_t>(E.Slot)];
    int64_t Flat = 0;
    for (size_t I = 0; I < E.Kids.size(); ++I) {
      int64_t Idx = evalI(E.Kids[I]);
      if (Idx < 0 || Idx >= A.Dims[I]) {
        runtimeFail("index " + std::to_string(Idx) + " out of bounds for " +
                    A.Name + " dim " + std::to_string(I) + " (size " +
                    std::to_string(A.Dims[I]) + ")");
        return 0;
      }
      Flat += Idx * A.Strides[I];
    }
    return Flat;
  }

  void chargeMemory(int ArrayId, int64_t Flat, bool IsWrite) {
    if (IsWrite)
      ++MemWrites;
    else
      ++MemReads;
    if (!Cache)
      return;
    const ArrayInfo &A = Arrays[static_cast<size_t>(ArrayId)];
    uint64_t Address = A.Base + static_cast<uint64_t>(Flat) * 8;
    int Latency = Cache->access(Address, IsWrite);
    // Vectorization hides latency only for cache-resident data.
    if (Latency <= L1HitLatency)
      Cycles += Latency * ArithScale;
    else
      Cycles += Latency;
  }

  void chargeArith(bool IsDouble) {
    if (IsDouble)
      ++ArithOps;
    if (Cache) // CountCost proxy: Cache is only created when counting
      Cycles += (IsDouble ? Opts.Machine.ArithCost
                          : Opts.Machine.ArithCost * 0.5) *
                ArithScale;
  }

  int64_t evalI(const CE &E) {
    switch (E.Kind) {
    case EK::ConstI:
      return E.ConstInt;
    case EK::VarI:
      return ScalarI[static_cast<size_t>(E.Slot)];
    case EK::LoadI: {
      int64_t Flat = flatIndexCE(E);
      if (Failed)
        return 0;
      chargeMemory(E.Slot, Flat, /*IsWrite=*/false);
      return DataI[static_cast<size_t>(E.Slot)][static_cast<size_t>(Flat)];
    }
    case EK::BinI: {
      // Short-circuit logic first.
      if (E.Op == BinOp::And) {
        if (evalI(E.Kids[0]) == 0)
          return 0;
        return evalI(E.Kids[1]) != 0;
      }
      if (E.Op == BinOp::Or) {
        if (evalI(E.Kids[0]) != 0)
          return 1;
        return evalI(E.Kids[1]) != 0;
      }
      int64_t L = evalI(E.Kids[0]);
      int64_t R = evalI(E.Kids[1]);
      chargeArith(false);
      switch (E.Op) {
      case BinOp::Add:
        return L + R;
      case BinOp::Sub:
        return L - R;
      case BinOp::Mul:
        return L * R;
      case BinOp::Div:
        if (R == 0) {
          runtimeFail("integer division by zero");
          return 0;
        }
        return L / R;
      case BinOp::Mod:
        if (R == 0) {
          runtimeFail("integer modulo by zero");
          return 0;
        }
        return L % R;
      case BinOp::Lt:
        return L < R;
      case BinOp::Le:
        return L <= R;
      case BinOp::Gt:
        return L > R;
      case BinOp::Ge:
        return L >= R;
      case BinOp::Eq:
        return L == R;
      case BinOp::Ne:
        return L != R;
      default:
        return 0;
      }
    }
    case EK::CmpD: {
      double L = evalD(E.Kids[0]);
      double R = evalD(E.Kids[1]);
      chargeArith(true);
      switch (E.Op) {
      case BinOp::Lt:
        return L < R;
      case BinOp::Le:
        return L <= R;
      case BinOp::Gt:
        return L > R;
      case BinOp::Ge:
        return L >= R;
      case BinOp::Eq:
        return L == R;
      case BinOp::Ne:
        return L != R;
      default:
        return 0;
      }
    }
    case EK::NegI:
      chargeArith(false);
      return -evalI(E.Kids[0]);
    case EK::NotI:
      return evalI(E.Kids[0]) == 0;
    case EK::MinI: {
      int64_t L = evalI(E.Kids[0]);
      int64_t R = evalI(E.Kids[1]);
      chargeArith(false);
      return std::min(L, R);
    }
    case EK::MaxI: {
      int64_t L = evalI(E.Kids[0]);
      int64_t R = evalI(E.Kids[1]);
      chargeArith(false);
      return std::max(L, R);
    }
    default:
      runtimeFail("internal: double expression in int context");
      return 0;
    }
  }

  double evalD(const CE &E) {
    switch (E.Kind) {
    case EK::ConstD:
      return E.ConstDouble;
    case EK::VarD:
      return ScalarD[static_cast<size_t>(E.Slot)];
    case EK::LoadD: {
      int64_t Flat = flatIndexCE(E);
      if (Failed)
        return 0;
      chargeMemory(E.Slot, Flat, /*IsWrite=*/false);
      return DataD[static_cast<size_t>(E.Slot)][static_cast<size_t>(Flat)];
    }
    case EK::BinD: {
      double L = evalD(E.Kids[0]);
      double R = evalD(E.Kids[1]);
      chargeArith(true);
      switch (E.Op) {
      case BinOp::Add:
        return L + R;
      case BinOp::Sub:
        return L - R;
      case BinOp::Mul:
        return L * R;
      case BinOp::Div:
        return L / R;
      default:
        return 0;
      }
    }
    case EK::NegD:
      chargeArith(true);
      return -evalD(E.Kids[0]);
    case EK::CastID:
      return static_cast<double>(evalI(E.Kids[0]));
    case EK::MinD: {
      double L = evalD(E.Kids[0]);
      double R = evalD(E.Kids[1]);
      chargeArith(true);
      return std::min(L, R);
    }
    case EK::MaxD: {
      double L = evalD(E.Kids[0]);
      double R = evalD(E.Kids[1]);
      chargeArith(true);
      return std::max(L, R);
    }
    case EK::Rtclock:
      return 0.0;
    default:
      return static_cast<double>(evalI(E));
    }
  }

  /// Models the parallel execution time of a loop from per-iteration costs.
  double scheduleTime(const std::vector<double> &IterCosts, Sched Par,
                      int Chunk) {
    int Cores = std::max(1, Opts.Machine.Cores);
    size_t N = IterCosts.size();
    if (N == 0)
      return 0;
    if (Cores == 1) {
      double Sum = 0;
      for (double C : IterCosts)
        Sum += C;
      return Sum;
    }
    if (Par == Sched::Dynamic) {
      int C = Chunk > 0 ? Chunk : 1;
      // Greedy list scheduling: each core takes the next chunk when free.
      std::priority_queue<double, std::vector<double>, std::greater<double>>
          CoreTimes;
      for (int I = 0; I < Cores; ++I)
        CoreTimes.push(0.0);
      for (size_t Begin = 0; Begin < N; Begin += static_cast<size_t>(C)) {
        double ChunkCost = Opts.Machine.DynamicChunkOverhead;
        for (size_t I = Begin; I < std::min(N, Begin + static_cast<size_t>(C));
             ++I)
          ChunkCost += IterCosts[I];
        double T = CoreTimes.top();
        CoreTimes.pop();
        CoreTimes.push(T + ChunkCost);
      }
      double Max = 0;
      while (!CoreTimes.empty()) {
        Max = std::max(Max, CoreTimes.top());
        CoreTimes.pop();
      }
      return Max;
    }
    // Static: chunked round-robin; default schedule = one contiguous block
    // per core.
    size_t C = Chunk > 0 ? static_cast<size_t>(Chunk)
                         : (N + static_cast<size_t>(Cores) - 1) /
                               static_cast<size_t>(Cores);
    std::vector<double> CoreSums(static_cast<size_t>(Cores), 0.0);
    size_t Core = 0;
    for (size_t Begin = 0; Begin < N; Begin += C) {
      for (size_t I = Begin; I < std::min(N, Begin + C); ++I)
        CoreSums[Core] += IterCosts[I];
      Core = (Core + 1) % static_cast<size_t>(Cores);
    }
    double Max = 0;
    for (double T : CoreSums)
      Max = std::max(Max, T);
    return Max;
  }

  void execBlock(const std::vector<CS> &Stmts) {
    for (const CS &S : Stmts) {
      if (Failed)
        return;
      execStmt(S);
    }
  }

  void execStmt(const CS &S) {
    switch (S.Kind) {
    case SK::Nop:
      return;
    case SK::Block:
      execBlock(S.Body);
      return;
    case SK::If:
      if (evalI(S.Cond) != 0)
        execBlock(S.Body);
      else
        execBlock(S.Else);
      return;
    case SK::AssignScalar: {
      if (S.TargetDouble) {
        double V = evalD(S.Rhs);
        double &Slot = ScalarD[static_cast<size_t>(S.Slot)];
        switch (S.Op) {
        case AssignOp::Set:
          Slot = V;
          break;
        case AssignOp::Add:
          chargeArith(true);
          Slot += V;
          break;
        case AssignOp::Sub:
          chargeArith(true);
          Slot -= V;
          break;
        case AssignOp::Mul:
          chargeArith(true);
          Slot *= V;
          break;
        }
      } else {
        if (S.Rhs.isDouble()) {
          runtimeFail("assigning a floating value to int scalar");
          return;
        }
        int64_t V = evalI(S.Rhs);
        int64_t &Slot = ScalarI[static_cast<size_t>(S.Slot)];
        switch (S.Op) {
        case AssignOp::Set:
          Slot = V;
          break;
        case AssignOp::Add:
          chargeArith(false);
          Slot += V;
          break;
        case AssignOp::Sub:
          chargeArith(false);
          Slot -= V;
          break;
        case AssignOp::Mul:
          chargeArith(false);
          Slot *= V;
          break;
        }
      }
      return;
    }
    case SK::AssignArray: {
      int64_t Flat = flatIndex(S);
      if (Failed)
        return;
      if (S.TargetDouble) {
        double V = evalD(S.Rhs);
        if (Failed)
          return;
        double &Elem =
            DataD[static_cast<size_t>(S.Slot)][static_cast<size_t>(Flat)];
        if (S.Op != AssignOp::Set) {
          chargeMemory(S.Slot, Flat, /*IsWrite=*/false);
          chargeArith(true);
        }
        switch (S.Op) {
        case AssignOp::Set:
          Elem = V;
          break;
        case AssignOp::Add:
          Elem += V;
          break;
        case AssignOp::Sub:
          Elem -= V;
          break;
        case AssignOp::Mul:
          Elem *= V;
          break;
        }
        chargeMemory(S.Slot, Flat, /*IsWrite=*/true);
      } else {
        if (S.Rhs.isDouble()) {
          runtimeFail("assigning a floating value to int array");
          return;
        }
        int64_t V = evalI(S.Rhs);
        if (Failed)
          return;
        int64_t &Elem =
            DataI[static_cast<size_t>(S.Slot)][static_cast<size_t>(Flat)];
        if (S.Op != AssignOp::Set) {
          chargeMemory(S.Slot, Flat, /*IsWrite=*/false);
          chargeArith(false);
        }
        switch (S.Op) {
        case AssignOp::Set:
          Elem = V;
          break;
        case AssignOp::Add:
          Elem += V;
          break;
        case AssignOp::Sub:
          Elem -= V;
          break;
        case AssignOp::Mul:
          Elem *= V;
          break;
        }
        chargeMemory(S.Slot, Flat, /*IsWrite=*/true);
      }
      return;
    }
    case SK::For: {
      int64_t Lo = evalI(S.Init);
      int64_t Hi = evalI(S.BoundExcl);
      if (Failed)
        return;
      bool Parallel = S.Par != Sched::None && Cache && !InParallel;
      bool Vector = S.VecScale < 1.0 && Cache;
      double SavedScale = ArithScale;
      if (Vector)
        ArithScale *= S.VecScale;

      if (!Parallel) {
        for (int64_t V = Lo; V < Hi; V += S.Step) {
          ScalarI[static_cast<size_t>(S.Slot)] = V;
          if (++Iterations > Opts.MaxIterations) {
            runtimeFail("iteration budget exceeded");
            break;
          }
          if (Cache)
            Cycles += Opts.Machine.LoopOverhead * ArithScale;
          execBlock(S.Body);
          if (Failed)
            break;
        }
        ArithScale = SavedScale;
        return;
      }

      // Parallel loop: execute sequentially, recording per-iteration cost,
      // then rewind the clock to the modeled parallel time.
      InParallel = true;
      double LoopStart = Cycles;
      std::vector<double> IterCosts;
      for (int64_t V = Lo; V < Hi; V += S.Step) {
        ScalarI[static_cast<size_t>(S.Slot)] = V;
        if (++Iterations > Opts.MaxIterations) {
          runtimeFail("iteration budget exceeded");
          break;
        }
        double Mark = Cycles;
        Cycles += Opts.Machine.LoopOverhead * ArithScale;
        execBlock(S.Body);
        IterCosts.push_back(Cycles - Mark);
        if (Failed)
          break;
      }
      InParallel = false;
      ArithScale = SavedScale;
      if (Failed)
        return;
      double ParTime = scheduleTime(IterCosts, S.Par, S.Chunk) +
                       Opts.Machine.ParallelSpawnOverhead;
      Cycles = LoopStart + ParTime;
      return;
    }
    }
  }

  RunResult run() {
    // Reset state.
    ScalarD = InitScalarD;
    ScalarI = InitScalarI;
    DataD = InitDouble;
    DataI = InitInt;
    Cycles = 0;
    ArithScale = 1.0;
    InParallel = false;
    Iterations = ArithOps = MemReads = MemWrites = 0;
    Failed = false;
    RunError.clear();
    if (Opts.CountCost) {
      Cache = std::make_unique<machine::CacheSim>(Opts.Machine);
    } else {
      Cache.reset();
    }

    execBlock(Body);

    RunResult R;
    R.Ok = !Failed;
    R.Error = RunError;
    R.Cycles = Cycles;
    R.ArithOps = ArithOps;
    R.MemReads = MemReads;
    R.MemWrites = MemWrites;
    R.LoopIterations = Iterations;
    if (Cache)
      R.Cache = Cache->stats();
    double Sum = 0;
    for (const auto &V : DataD)
      for (double X : V)
        Sum += X;
    for (const auto &V : DataI)
      for (int64_t X : V)
        Sum += static_cast<double>(X);
    R.Checksum = Sum;
    R.Warnings = Warnings;
    return R;
  }
};

} // namespace detail

//===----------------------------------------------------------------------===//
// Public interface
//===----------------------------------------------------------------------===//

ProgramEvaluator::ProgramEvaluator(const cir::Program &P, EvalOptions Opts)
    : Prog(P), Opts(std::move(Opts)) {}

ProgramEvaluator::~ProgramEvaluator() = default;

Status ProgramEvaluator::prepare() {
  Compiled = std::make_unique<detail::CompiledProgram>();
  Compiled->Opts = Opts;
  return Compiled->compile(Prog);
}

Status ProgramEvaluator::setDoubleArray(const std::string &Name,
                                        std::vector<double> Values) {
  assert(Compiled && "prepare() must run first");
  auto It = Compiled->ArrayIds.find(Name);
  if (It == Compiled->ArrayIds.end())
    return Status::error("unknown array: " + Name);
  auto &Init = Compiled->InitDouble[static_cast<size_t>(It->second)];
  if (Values.size() != Init.size())
    return Status::error("size mismatch for array " + Name);
  Init = std::move(Values);
  return Status::success();
}

Status ProgramEvaluator::setIntArray(const std::string &Name,
                                     std::vector<int64_t> Values) {
  assert(Compiled && "prepare() must run first");
  auto It = Compiled->ArrayIds.find(Name);
  if (It == Compiled->ArrayIds.end())
    return Status::error("unknown array: " + Name);
  auto &Init = Compiled->InitInt[static_cast<size_t>(It->second)];
  if (Values.size() != Init.size())
    return Status::error("size mismatch for array " + Name);
  Init = std::move(Values);
  return Status::success();
}

Status ProgramEvaluator::setScalar(const std::string &Name, double Value) {
  assert(Compiled && "prepare() must run first");
  auto It = Compiled->ScalarSlots.find(Name);
  if (It == Compiled->ScalarSlots.end())
    return Status::error("unknown scalar: " + Name);
  size_t Slot = static_cast<size_t>(It->second);
  if (Compiled->SlotTypes[Slot] == cir::ElemType::Double)
    Compiled->InitScalarD[Slot] = Value;
  else
    Compiled->InitScalarI[Slot] = static_cast<int64_t>(Value);
  return Status::success();
}

RunResult ProgramEvaluator::run() {
  assert(Compiled && "prepare() must run first");
  return Compiled->run();
}

Expected<std::vector<double>>
ProgramEvaluator::doubleArray(const std::string &Name) const {
  assert(Compiled && "prepare() must run first");
  auto It = Compiled->ArrayIds.find(Name);
  if (It == Compiled->ArrayIds.end())
    return Expected<std::vector<double>>::error("unknown array: " + Name);
  size_t Id = static_cast<size_t>(It->second);
  if (Id >= Compiled->DataD.size() || Compiled->DataD[Id].empty())
    return Expected<std::vector<double>>::error(Name + " is not a double array");
  return Compiled->DataD[Id];
}

RunResult evaluateProgram(const cir::Program &P, const EvalOptions &Opts) {
  ProgramEvaluator Eval(P, Opts);
  Status S = Eval.prepare();
  if (!S.ok()) {
    RunResult R;
    R.Error = S.message();
    return R;
  }
  return Eval.run();
}

} // namespace eval
} // namespace locus
