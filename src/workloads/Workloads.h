//===- Workloads.h - Paper workloads and Locus programs ---------*- C++ -*-===//
///
/// \file
/// The baseline kernels and optimization programs of the paper's evaluation
/// (Section V), parameterized by problem size so tests run tiny instances
/// and benchmarks run large ones:
///
///  - DGEMM (Fig. 3) with the Fig. 5 tiling-choice program and the Fig. 7
///    two-level-tiling + OpenMP search program,
///  - six stencils (Jacobi/Heat/Seidel x 1D/2D, Fig. 8) with the Fig. 9
///    skewed-tiling program,
///  - a Kripke proxy (Scattering, LTimes, LPlusTimes, Source, Sweep
///    skeletons; Fig. 10) with the Fig. 11 layout-selection program and the
///    per-layout address-computation snippets,
///  - the Fig. 13 generic loop-nest program and a synthetic loop-nest corpus
///    standing in for the paper's 856 extracted nests (Table I).
///
//===----------------------------------------------------------------------===//
#ifndef LOCUS_WORKLOADS_WORKLOADS_H
#define LOCUS_WORKLOADS_WORKLOADS_H

#include "src/eval/Evaluator.h"

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace locus {
namespace workloads {

//===----------------------------------------------------------------------===//
// DGEMM
//===----------------------------------------------------------------------===//

/// The Fig. 3 baseline: naive triple loop, region "matmul".
std::string dgemmSource(int M, int N, int K);

/// The Fig. 5 program: Tiling2D OR Tiling3D with a conditional unroll.
std::string dgemmLocusFig5();

/// The Fig. 7 program: interchange + two-level hierarchical tiling with
/// dependent pow2 ranges + an OR block over OpenMP schedules. \p MaxTile
/// bounds the first-level tile range (512 in the paper).
std::string dgemmLocusFig7(int MaxTile);

//===----------------------------------------------------------------------===//
// Stencils
//===----------------------------------------------------------------------===//

enum class StencilKind { Jacobi1D, Jacobi2D, Heat1D, Heat2D, Seidel1D, Seidel2D };

const char *stencilName(StencilKind K);

/// Baseline stencil source (region "stencil"); T time steps, N points per
/// spatial dimension.
std::string stencilSource(StencilKind K, int T, int N);

/// The Fig. 9 program generalized over nest depth: Skewing-1 GenericTiling
/// with skew factor poweroftwo(MinSkew..MaxSkew) plus ivdep/vector on the
/// innermost loop.
std::string stencilLocusFig9(int MinSkew, int MaxSkew);

//===----------------------------------------------------------------------===//
// Kripke proxy
//===----------------------------------------------------------------------===//

struct KripkeConfig {
  int NumMoments = 4;
  int NumGroups = 6;
  int NumZones = 48;
  int MaxMixed = 3;  ///< max mixture entries per zone
  int NumMaterials = 3;
  int NumCoeffs = 4; ///< legendre coefficients (moment_to_coeff range)
  int NumDirections = 8;
  uint64_t Seed = 7;
};

/// The six data layouts (permutations of D, G, Z).
const std::vector<std::string> &kripkeLayouts();

/// Kripke kernel names: Scattering, LTimes, LPlusTimes, Source, Sweep.
const std::vector<std::string> &kripkeKernels();

/// The Fig. 10 skeleton for one kernel (region named after the kernel),
/// with an address_calc() placeholder where Altdesc splices the layout's
/// address computation.
std::string kripkeKernelSource(const KripkeConfig &C,
                               const std::string &Kernel);

/// The Fig. 11 program for one kernel: layout enum -> Altdesc snippet +
/// interchange + LICM + scalar replacement + OMP.
std::string kripkeLocusFig11(const std::string &Kernel);

/// The per-layout address snippets ("scatter_DGZ.txt", ...) for a kernel,
/// keyed by "<kernel>_<layout>".
std::map<std::string, std::string> kripkeSnippets(const KripkeConfig &C,
                                                  const std::string &Kernel);

/// The hand-optimized variant of a kernel for one layout (the comparison
/// target of Fig. 12).
std::string kripkeHandOptimizedSource(const KripkeConfig &C,
                                      const std::string &Kernel,
                                      const std::string &Layout);

/// Initializes the index arrays (zones_mixed, num_mixed, mixed_material,
/// moment_to_coeff) deterministically; call via OrchestratorOptions::InitHook.
void initKripkeArrays(eval::ProgramEvaluator &Eval, const KripkeConfig &C);

//===----------------------------------------------------------------------===//
// Loop-nest corpus (Table I)
//===----------------------------------------------------------------------===//

struct CorpusEntry {
  std::string Suite; ///< one of the 16 benchmark-suite names of Table I
  std::string Name;
  std::string Source; ///< MiniC with region "scop"
};

/// The 16 suite names of Table I with the paper's loop-nest counts.
const std::vector<std::pair<std::string, int>> &corpusSuites();

/// Generates a deterministic synthetic corpus. \p Scale scales the paper's
/// per-suite nest counts (1.0 reproduces all 856; benches default lower).
std::vector<CorpusEntry> loopCorpus(double Scale, uint64_t Seed);

/// The Fig. 13 generic optimization program for arbitrary loop nests.
std::string fig13GenericProgram();

//===----------------------------------------------------------------------===//
// Unannotated PolyBench-style kernels (region-discovery inputs)
//===----------------------------------------------------------------------===//

/// Names of the unannotated PolyBench-style kernels: "gemver", "atax",
/// "bicg", "mvt", "syrk", "gesummv", "trmm", "2mm". Unlike every other
/// workload these carry no `#pragma @Locus` markers — they are the inputs
/// region discovery must find nests in by itself (`locus_cli --discover`),
/// and the corpus the static bounds verifier proves in bounds
/// (`locus_cli --bounds-check`); trmm's triangular inner loop (`k < i`)
/// is the dependent-range proof case.
const std::vector<std::string> &polybenchKernels();

/// Pragma-free MiniC source of PolyBench kernel \p Name at problem size
/// \p N (all arrays N or NxN, dgemm-style init_array/rtclock/print_array
/// harness). Asserts on unknown names.
std::string polybenchSource(const std::string &Name, int N);

} // namespace workloads
} // namespace locus

#endif // LOCUS_WORKLOADS_WORKLOADS_H
