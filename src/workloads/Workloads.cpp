//===- Workloads.cpp - Paper workloads and Locus programs ----------------------===//

#include "src/workloads/Workloads.h"

#include "src/analysis/RegionDiscovery.h"

#include "src/support/Rng.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <sstream>

namespace locus {
namespace workloads {

//===----------------------------------------------------------------------===//
// DGEMM
//===----------------------------------------------------------------------===//

std::string dgemmSource(int M, int N, int K) {
  std::ostringstream Out;
  Out << "#define M " << M << "\n#define N " << N << "\n#define K " << K
      << "\n";
  Out << R"(
double A[M][K];
double B[K][N];
double C[M][N];
double alpha;
double beta;

int main()
{
  int i, j, k;
  double t_start, t_end;
  init_array();
  t_start = rtclock();
#pragma @Locus loop=matmul
  for (i = 0; i < M; i++)
    for (j = 0; j < N; j++)
      for (k = 0; k < K; k++)
        C[i][j] = beta * C[i][j] + alpha * A[i][k] * B[k][j];
  t_end = rtclock();
  print_array();
  return 0;
}
)";
  return Out.str();
}

std::string dgemmLocusFig5() {
  return R"(
import "RoseLocus";

def printstatus(type) {
  print "Tiling selected: " + type;
}

OptSeq Tiling2D() {
  tileI = poweroftwo(2..32);
  tileJ = poweroftwo(2..32);
  RoseLocus.Tiling(loop="0", factor=[tileI, tileJ]);
  return "2D";
}

OptSeq Tiling3D() {
  RoseLocus.Tiling(loop="0", factor=[4, 4, 8]);
  return "3D";
}

CodeReg matmul {
  tiledim = 4;
  tiletype = Tiling2D() OR Tiling3D();
  printstatus(tiletype);
  if (tiletype == "2D") {
    RoseLocus.Unroll(loop=innermost, factor=tiledim);
  }
}
)";
}

std::string dgemmLocusFig7(int MaxTile) {
  std::ostringstream Out;
  Out << R"(
Search {
  buildcmd = "make clean; make";
  runcmd = "./matmul";
}

CodeReg matmul {
  RoseLocus.Interchange(order=[0, 2, 1]);
)";
  Out << "  tileI = poweroftwo(2.." << MaxTile << ");\n"
      << "  tileK = poweroftwo(2.." << MaxTile << ");\n"
      << "  tileJ = poweroftwo(2.." << MaxTile << ");\n";
  Out << R"(  Pips.Tiling(loop="0", factor=[tileI, tileK, tileJ]);
  tileI_2 = poweroftwo(2..tileI);
  tileK_2 = poweroftwo(2..tileK);
  tileJ_2 = poweroftwo(2..tileJ);
  Pips.Tiling(loop="0.0.0.0", factor=[tileI_2, tileK_2, tileJ_2]);
  {
    Pragma.OMPFor(loop="0");
  } OR {
    Pragma.OMPFor(loop="0",
                  schedule=enum("static", "dynamic"),
                  chunk=integer(1..32));
  }
}
)";
  return Out.str();
}

//===----------------------------------------------------------------------===//
// Stencils
//===----------------------------------------------------------------------===//

const char *stencilName(StencilKind K) {
  switch (K) {
  case StencilKind::Jacobi1D:
    return "jacobi-1d";
  case StencilKind::Jacobi2D:
    return "jacobi-2d";
  case StencilKind::Heat1D:
    return "heat-1d";
  case StencilKind::Heat2D:
    return "heat-2d";
  case StencilKind::Seidel1D:
    return "seidel-1d";
  case StencilKind::Seidel2D:
    return "seidel-2d";
  }
  return "?";
}

std::string stencilSource(StencilKind K, int T, int N) {
  std::ostringstream Out;
  Out << "#define T " << T << "\n#define N " << N << "\n";
  switch (K) {
  case StencilKind::Jacobi1D:
    Out << R"(
double A[2][N + 2];
int main() {
  int t, i;
#pragma @Locus loop=stencil
  for (t = 0; t < T; t++)
    for (i = 1; i < N + 1; i++)
      A[(t + 1) % 2][i] = 0.33333 * (A[t % 2][i - 1] + A[t % 2][i] + A[t % 2][i + 1]);
  return 0;
}
)";
    break;
  case StencilKind::Heat1D:
    Out << R"(
double A[2][N + 2];
int main() {
  int t, i;
#pragma @Locus loop=stencil
  for (t = 0; t < T; t++)
    for (i = 1; i < N + 1; i++)
      A[(t + 1) % 2][i] = 0.125 * (A[t % 2][i + 1] - 2.0 * A[t % 2][i] + A[t % 2][i - 1]) + A[t % 2][i];
  return 0;
}
)";
    break;
  case StencilKind::Seidel1D:
    Out << R"(
double A[N + 2];
int main() {
  int t, i;
#pragma @Locus loop=stencil
  for (t = 0; t < T; t++)
    for (i = 1; i < N + 1; i++)
      A[i] = (A[i - 1] + A[i] + A[i + 1]) / 3.0;
  return 0;
}
)";
    break;
  case StencilKind::Jacobi2D:
    Out << R"(
double A[2][N + 2][N + 2];
int main() {
  int t, i, j;
#pragma @Locus loop=stencil
  for (t = 0; t < T; t++)
    for (i = 1; i < N + 1; i++)
      for (j = 1; j < N + 1; j++)
        A[(t + 1) % 2][i][j] = 0.2 * (A[t % 2][i][j] + A[t % 2][i - 1][j] + A[t % 2][i + 1][j] + A[t % 2][i][j - 1] + A[t % 2][i][j + 1]);
  return 0;
}
)";
    break;
  case StencilKind::Heat2D:
    Out << R"(
double A[2][N + 2][N + 2];
int main() {
  int t, i, j;
#pragma @Locus loop=stencil
  for (t = 0; t < T; t++)
    for (i = 1; i < N + 1; i++)
      for (j = 1; j < N + 1; j++)
        A[(t + 1) % 2][i][j] = 0.125 * (A[t % 2][i + 1][j] - 2.0 * A[t % 2][i][j] + A[t % 2][i - 1][j])
          + 0.125 * (A[t % 2][i][j + 1] - 2.0 * A[t % 2][i][j] + A[t % 2][i][j - 1])
          + A[t % 2][i][j];
  return 0;
}
)";
    break;
  case StencilKind::Seidel2D:
    Out << R"(
double A[N + 2][N + 2];
int main() {
  int t, i, j;
#pragma @Locus loop=stencil
  for (t = 0; t < T; t++)
    for (i = 1; i < N + 1; i++)
      for (j = 1; j < N + 1; j++)
        A[i][j] = (A[i - 1][j] + A[i][j - 1] + A[i][j] + A[i][j + 1] + A[i + 1][j]) / 5.0;
  return 0;
}
)";
    break;
  }
  return Out.str();
}

std::string stencilLocusFig9(int MinSkew, int MaxSkew) {
  std::ostringstream Out;
  Out << R"(
Search {
  buildcmd = "make clean; make";
  runcmd = "./stencil";
}

CodeReg stencil {
)";
  Out << "  skew1 = poweroftwo(" << MinSkew << ".." << MaxSkew << ");\n";
  Out << R"(  depth = BuiltIn.LoopNestDepth();
  if (depth == 2) {
    tmat = [[ skew1, 0],
            [-skew1, skew1]];
  } else {
    tmat = [[ skew1, 0, 0],
            [-skew1, skew1, 0],
            [-skew1, 0, skew1]];
  }
  Pips.GenericTiling(loop="0", factor=tmat);
  innerloops = BuiltIn.ListInnerLoops();
  Pragma.Ivdep(loop=innerloops[0]);
  Pragma.Vector(loop=innerloops[0]);
}
)";
  return Out.str();
}

//===----------------------------------------------------------------------===//
// Kripke proxy
//===----------------------------------------------------------------------===//

const std::vector<std::string> &kripkeLayouts() {
  static const std::vector<std::string> Layouts = {"DGZ", "DZG", "GDZ",
                                                   "GZD", "ZDG", "ZGD"};
  return Layouts;
}

const std::vector<std::string> &kripkeKernels() {
  static const std::vector<std::string> Kernels = {
      "Scattering", "LTimes", "LPlusTimes", "Source", "Sweep"};
  return Kernels;
}

namespace {

/// Linearized index expression for a 3D quantity stored in layout order.
/// \p First names the non-group non-zone axis variable ("nm" or "d") with
/// extent \p FirstN; G has extent NG and variable \p GVar; Z has extent NZ
/// and variable \p ZVar.
std::string layoutIndex(const std::string &Layout, const std::string &FirstVar,
                        int FirstN, const std::string &GVar, int NG,
                        const std::string &ZVar, int NZ) {
  struct Axis {
    std::string Var;
    int Extent;
  };
  std::map<char, Axis> Axes = {{'D', {FirstVar, FirstN}},
                               {'G', {GVar, NG}},
                               {'Z', {ZVar, NZ}}};
  // linear = ((a0 * n1) + a1) * n2 + a2
  const Axis &A0 = Axes[Layout[0]];
  const Axis &A1 = Axes[Layout[1]];
  const Axis &A2 = Axes[Layout[2]];
  std::ostringstream Out;
  Out << "(" << A0.Var << " * " << A1.Extent << " + " << A1.Var << ") * "
      << A2.Extent << " + " << A2.Var;
  return Out.str();
}

/// Loop descriptors per kernel, in skeleton order. Role: 'D' (direction or
/// moment axis), 'G' (group), 'Z' (zone), or a tied follower (lower case)
/// that must stay glued after the previous loop.
struct KernelShape {
  std::vector<std::pair<std::string, char>> Loops; // (var, role)
  char ParallelRole;                               // role to OMP-parallelize
  std::string AltdescPath; ///< hierarchical path of the placeholder
};

KernelShape kernelShape(const std::string &Kernel) {
  if (Kernel == "Scattering")
    return KernelShape{
        {{"nm", 'D'}, {"g", 'G'}, {"gp", 'g'}, {"zone", 'Z'}, {"mix", 'z'}},
        'Z',
        "0.0.0.0.0.3"};
  if (Kernel == "LTimes")
    return KernelShape{{{"nm", 'D'}, {"d", 'd'}, {"g", 'G'}, {"zone", 'Z'}},
                       'Z',
                       "0.0.0.0.0"};
  if (Kernel == "LPlusTimes")
    return KernelShape{{{"d", 'D'}, {"nm", 'd'}, {"g", 'G'}, {"zone", 'Z'}},
                       'Z',
                       "0.0.0.0.0"};
  if (Kernel == "Source")
    return KernelShape{{{"g", 'G'}, {"zone", 'Z'}, {"mix", 'z'}}, 'Z',
                       "0.0.0.1"};
  assert(Kernel == "Sweep" && "unknown Kripke kernel");
  return KernelShape{{{"d", 'D'}, {"g", 'G'}, {"zone", 'Z'}}, 'D', "0.0.0.0"};
}

/// Computes the interchange order placing loops according to the layout's
/// axis order, keeping tied followers glued behind their leaders.
std::vector<int> layoutOrder(const KernelShape &Shape,
                             const std::string &Layout) {
  // Position of each role letter in the layout.
  auto RolePos = [&](char Role) -> int {
    char Axis = Role == 'd' ? 'D' : (Role == 'g' ? 'G' : (Role == 'z' ? 'Z' : Role));
    for (size_t I = 0; I < Layout.size(); ++I)
      if (Layout[I] == Axis)
        return static_cast<int>(I);
    return 3;
  };
  // Build groups: a leader plus its glued followers.
  std::vector<std::vector<int>> Groups;
  for (size_t I = 0; I < Shape.Loops.size(); ++I) {
    char Role = Shape.Loops[I].second;
    bool Follower = Role == 'g' || Role == 'z' || Role == 'd';
    if (Follower && !Groups.empty())
      Groups.back().push_back(static_cast<int>(I));
    else
      Groups.push_back({static_cast<int>(I)});
  }
  std::stable_sort(Groups.begin(), Groups.end(),
                   [&](const std::vector<int> &A, const std::vector<int> &B) {
                     char RA = Shape.Loops[static_cast<size_t>(A[0])].second;
                     char RB = Shape.Loops[static_cast<size_t>(B[0])].second;
                     return RolePos(RA) < RolePos(RB);
                   });
  std::vector<int> Order;
  for (const auto &G : Groups)
    for (int I : G)
      Order.push_back(I);
  return Order;
}

/// The path "0.0...0" with \p Depth components.
std::string pathOfDepth(int Depth) {
  std::string P = "0";
  for (int I = 1; I < Depth; ++I)
    P += ".0";
  return P;
}

/// Position (depth) of the loop with the parallel role after interchange.
int parallelDepth(const KernelShape &Shape, const std::vector<int> &Order) {
  for (size_t P = 0; P < Order.size(); ++P) {
    char Role = Shape.Loops[static_cast<size_t>(Order[P])].second;
    char Axis = Role == 'd' ? 'D' : (Role == 'g' ? 'G' : (Role == 'z' ? 'Z' : Role));
    if (Axis == Shape.ParallelRole)
      return static_cast<int>(P) + 1;
  }
  return 1;
}

} // namespace

std::string kripkeKernelSource(const KripkeConfig &C,
                               const std::string &Kernel) {
  std::ostringstream Out;
  int NM = C.NumMoments, NG = C.NumGroups, NZ = C.NumZones, ND = C.NumDirections;
  int NMIX = NZ * C.MaxMixed;
  Out << "#define NM " << NM << "\n#define NG " << NG << "\n#define NZ " << NZ
      << "\n#define ND " << ND << "\n#define NMAT " << C.NumMaterials
      << "\n#define NCOEF " << C.NumCoeffs << "\n#define NMIX " << NMIX
      << "\n";

  if (Kernel == "Scattering") {
    Out << R"(
double phi[NM * NG * NZ];
double phi_out[NM * NG * NZ];
double sigs[NMAT * NCOEF * NG * NG];
int zones_mixed[NZ];
int num_mixed[NZ];
int mixed_material[NMIX];
double mixed_fraction[NMIX];
int moment_to_coeff[NM];
int main() {
  int nm, g, gp, zone, mix;
#pragma @Locus loop=Scattering
  for (nm = 0; nm < NM; nm++)
    for (g = 0; g < NG; g++)
      for (gp = 0; gp < NG; gp++)
        for (zone = 0; zone < NZ; zone++)
          for (mix = zones_mixed[zone]; mix < zones_mixed[zone] + num_mixed[zone]; mix++) {
            int material = mixed_material[mix];
            double fraction = mixed_fraction[mix];
            int n = moment_to_coeff[nm];
            address_calc();
            phi_out[idx_out] += sigs[idx_sigs] * phi[idx_phi] * fraction;
          }
  return 0;
}
)";
    return Out.str();
  }

  if (Kernel == "LTimes") {
    Out << R"(
double phi[NM * NG * NZ];
double psi[ND * NG * NZ];
double ell[NM * ND];
int main() {
  int nm, d, g, zone;
#pragma @Locus loop=LTimes
  for (nm = 0; nm < NM; nm++)
    for (d = 0; d < ND; d++)
      for (g = 0; g < NG; g++)
        for (zone = 0; zone < NZ; zone++) {
          address_calc();
          phi[idx_phi] += ell[nm * ND + d] * psi[idx_psi];
        }
  return 0;
}
)";
    return Out.str();
  }

  if (Kernel == "LPlusTimes") {
    Out << R"(
double rhs[ND * NG * NZ];
double phi_out[NM * NG * NZ];
double ell_plus[ND * NM];
int main() {
  int d, nm, g, zone;
#pragma @Locus loop=LPlusTimes
  for (d = 0; d < ND; d++)
    for (nm = 0; nm < NM; nm++)
      for (g = 0; g < NG; g++)
        for (zone = 0; zone < NZ; zone++) {
          address_calc();
          rhs[idx_rhs] += ell_plus[d * NM + nm] * phi_out[idx_phi];
        }
  return 0;
}
)";
    return Out.str();
  }

  if (Kernel == "Source") {
    Out << R"(
double phi_out[NM * NG * NZ];
int zones_mixed[NZ];
int num_mixed[NZ];
double mixed_fraction[NMIX];
int main() {
  int g, zone, mix;
#pragma @Locus loop=Source
  for (g = 0; g < NG; g++)
    for (zone = 0; zone < NZ; zone++)
      for (mix = zones_mixed[zone]; mix < zones_mixed[zone] + num_mixed[zone]; mix++) {
        double fraction = mixed_fraction[mix];
        address_calc();
        phi_out[idx_phi] += 0.5 * fraction;
      }
  return 0;
}
)";
    return Out.str();
  }

  assert(Kernel == "Sweep" && "unknown Kripke kernel");
  Out << R"(
double psi[ND * NG * NZ];
double rhs[ND * NG * NZ];
double sigt[NZ];
int main() {
  int d, g, zone;
#pragma @Locus loop=Sweep
  for (d = 0; d < ND; d++)
    for (g = 0; g < NG; g++)
      for (zone = 1; zone < NZ; zone++) {
        address_calc();
        psi[idx_psi] = (rhs[idx_rhs] + 2.0 * psi[idx_prev]) / (1.0 + sigt[zone]);
      }
  return 0;
}
)";
  return Out.str();
}

std::map<std::string, std::string> kripkeSnippets(const KripkeConfig &C,
                                                  const std::string &Kernel) {
  std::map<std::string, std::string> Snips;
  int NM = C.NumMoments, NG = C.NumGroups, NZ = C.NumZones, ND = C.NumDirections;
  for (const std::string &L : kripkeLayouts()) {
    std::ostringstream S;
    if (Kernel == "Scattering") {
      S << "int idx_out = " << layoutIndex(L, "nm", NM, "g", NG, "zone", NZ)
        << ";\n";
      S << "int idx_phi = " << layoutIndex(L, "nm", NM, "gp", NG, "zone", NZ)
        << ";\n";
      S << "int idx_sigs = material * " << C.NumCoeffs * NG * NG << " + n * "
        << NG * NG << " + g * " << NG << " + gp;\n";
    } else if (Kernel == "LTimes") {
      S << "int idx_phi = " << layoutIndex(L, "nm", NM, "g", NG, "zone", NZ)
        << ";\n";
      S << "int idx_psi = " << layoutIndex(L, "d", ND, "g", NG, "zone", NZ)
        << ";\n";
    } else if (Kernel == "LPlusTimes") {
      S << "int idx_rhs = " << layoutIndex(L, "d", ND, "g", NG, "zone", NZ)
        << ";\n";
      S << "int idx_phi = " << layoutIndex(L, "nm", NM, "g", NG, "zone", NZ)
        << ";\n";
    } else if (Kernel == "Source") {
      S << "int idx_phi = " << layoutIndex(L, "0", NM, "g", NG, "zone", NZ)
        << ";\n";
    } else if (Kernel == "Sweep") {
      S << "int idx_psi = " << layoutIndex(L, "d", ND, "g", NG, "zone", NZ)
        << ";\n";
      S << "int idx_rhs = " << layoutIndex(L, "d", ND, "g", NG, "zone", NZ)
        << ";\n";
      S << "int idx_prev = "
        << layoutIndex(L, "d", ND, "g", NG, "(zone - 1)", NZ) << ";\n";
    }
    Snips[Kernel + "_" + L] = S.str();
  }
  return Snips;
}

std::string kripkeLocusFig11(const std::string &Kernel) {
  KernelShape Shape = kernelShape(Kernel);
  std::ostringstream Out;
  Out << "datalayout = enum(";
  const auto &Layouts = kripkeLayouts();
  for (size_t I = 0; I < Layouts.size(); ++I)
    Out << (I ? ", " : "") << '"' << Layouts[I] << '"';
  Out << ");\n\n";
  Out << "CodeReg " << Kernel << " {\n";
  for (size_t I = 0; I < Layouts.size(); ++I) {
    std::vector<int> Order = layoutOrder(Shape, Layouts[I]);
    int ParDepth = parallelDepth(Shape, Order);
    Out << "  " << (I == 0 ? "if" : "} elif") << " (datalayout == \""
        << Layouts[I] << "\") {\n";
    Out << "    looporder = [";
    for (size_t J = 0; J < Order.size(); ++J)
      Out << (J ? ", " : "") << Order[J];
    Out << "];\n";
    Out << "    omploop = \"" << pathOfDepth(ParDepth) << "\";\n";
  }
  Out << "  }\n";
  Out << "  sourcepath = \"" << Kernel << "_\" + datalayout;\n";
  Out << "  BuiltIn.Altdesc(stmt=\"" << Shape.AltdescPath
      << "\", source=sourcepath);\n";
  Out << "  RoseLocus.Interchange(order=looporder);\n";
  Out << "  RoseLocus.LICM();\n";
  Out << "  RoseLocus.ScalarRepl();\n";
  Out << "  Pragma.OMPFor(loop=omploop);\n";
  Out << "}\n";
  return Out.str();
}

std::string kripkeHandOptimizedSource(const KripkeConfig &C,
                                      const std::string &Kernel,
                                      const std::string &Layout) {
  // Build the hand-tuned version: loops in layout order, address computation
  // inlined, OpenMP on the parallel loop. This is what the paper's six
  // per-layout source versions look like.
  KernelShape Shape = kernelShape(Kernel);
  std::vector<int> Order = layoutOrder(Shape, Layout);
  int ParDepth = parallelDepth(Shape, Order);
  int NM = C.NumMoments, NG = C.NumGroups, NZ = C.NumZones, ND = C.NumDirections;
  int NMIX = NZ * C.MaxMixed;

  std::ostringstream Out;
  Out << "#define NM " << NM << "\n#define NG " << NG << "\n#define NZ " << NZ
      << "\n#define ND " << ND << "\n#define NMAT " << C.NumMaterials
      << "\n#define NCOEF " << C.NumCoeffs << "\n#define NMIX " << NMIX
      << "\n";

  // Declarations per kernel.
  if (Kernel == "Scattering")
    Out << "double phi[NM * NG * NZ];\ndouble phi_out[NM * NG * NZ];\n"
           "double sigs[NMAT * NCOEF * NG * NG];\nint zones_mixed[NZ];\n"
           "int num_mixed[NZ];\nint mixed_material[NMIX];\n"
           "double mixed_fraction[NMIX];\nint moment_to_coeff[NM];\n";
  else if (Kernel == "LTimes")
    Out << "double phi[NM * NG * NZ];\ndouble psi[ND * NG * NZ];\n"
           "double ell[NM * ND];\n";
  else if (Kernel == "LPlusTimes")
    Out << "double rhs[ND * NG * NZ];\ndouble phi_out[NM * NG * NZ];\n"
           "double ell_plus[ND * NM];\n";
  else if (Kernel == "Source")
    Out << "double phi_out[NM * NG * NZ];\nint zones_mixed[NZ];\n"
           "int num_mixed[NZ];\ndouble mixed_fraction[NMIX];\n";
  else
    Out << "double psi[ND * NG * NZ];\ndouble rhs[ND * NG * NZ];\n"
           "double sigt[NZ];\n";

  Out << "int main() {\n  int nm, d, g, gp, zone, mix;\n";

  // Loop headers in interchanged order.
  struct Bound {
    std::string Lo, Hi;
  };
  std::map<std::string, Bound> Bounds = {
      {"nm", {"0", "NM"}},
      {"d", {"0", "ND"}},
      {"g", {"0", "NG"}},
      {"gp", {"0", "NG"}},
      {"zone", {Kernel == "Sweep" ? "1" : "0", "NZ"}},
      {"mix", {"zones_mixed[zone]", "zones_mixed[zone] + num_mixed[zone]"}},
  };
  int Indent = 2;
  for (size_t P = 0; P < Order.size(); ++P) {
    const std::string &Var = Shape.Loops[static_cast<size_t>(Order[P])].first;
    const Bound &B = Bounds[Var];
    if (static_cast<int>(P) + 1 == ParDepth)
      Out << std::string(static_cast<size_t>(Indent), ' ')
          << "#pragma omp parallel for\n";
    Out << std::string(static_cast<size_t>(Indent), ' ') << "for (" << Var
        << " = " << B.Lo << "; " << Var << " < " << B.Hi << "; " << Var
        << "++)\n";
    Indent += 2;
  }
  std::string Pad(static_cast<size_t>(Indent), ' ');
  Out << std::string(static_cast<size_t>(Indent - 2), ' ') << "{\n";

  // Body with inlined addresses.
  auto Idx = [&](const std::string &First, int FirstN, const std::string &GV,
                 const std::string &ZV) {
    return layoutIndex(Layout, First, FirstN, GV, NG, ZV, NZ);
  };
  if (Kernel == "Scattering") {
    Out << Pad << "int material = mixed_material[mix];\n";
    Out << Pad << "double fraction = mixed_fraction[mix];\n";
    Out << Pad << "int n = moment_to_coeff[nm];\n";
    Out << Pad << "phi_out[" << Idx("nm", NM, "g", "zone") << "] += sigs[material * "
        << C.NumCoeffs * NG * NG << " + n * " << NG * NG << " + g * " << NG
        << " + gp] * phi[" << Idx("nm", NM, "gp", "zone")
        << "] * fraction;\n";
  } else if (Kernel == "LTimes") {
    Out << Pad << "phi[" << Idx("nm", NM, "g", "zone")
        << "] += ell[nm * ND + d] * psi[" << Idx("d", ND, "g", "zone")
        << "];\n";
  } else if (Kernel == "LPlusTimes") {
    Out << Pad << "rhs[" << Idx("d", ND, "g", "zone")
        << "] += ell_plus[d * NM + nm] * phi_out[" << Idx("nm", NM, "g", "zone")
        << "];\n";
  } else if (Kernel == "Source") {
    Out << Pad << "double fraction = mixed_fraction[mix];\n";
    Out << Pad << "phi_out[" << Idx("0", NM, "g", "zone")
        << "] += 0.5 * fraction;\n";
  } else {
    Out << Pad << "psi[" << Idx("d", ND, "g", "zone") << "] = (rhs["
        << Idx("d", ND, "g", "zone") << "] + 2.0 * psi["
        << Idx("d", ND, "g", "(zone - 1)") << "]) / (1.0 + sigt[zone]);\n";
  }
  Out << std::string(static_cast<size_t>(Indent - 2), ' ') << "}\n";
  Out << "  return 0;\n}\n";
  return Out.str();
}

void initKripkeArrays(eval::ProgramEvaluator &Eval, const KripkeConfig &C) {
  Rng R(C.Seed);
  int NZ = C.NumZones;
  std::vector<int64_t> ZonesMixed(static_cast<size_t>(NZ));
  std::vector<int64_t> NumMixed(static_cast<size_t>(NZ));
  int64_t Offset = 0;
  for (int Z = 0; Z < NZ; ++Z) {
    int64_t Count = R.range(1, C.MaxMixed);
    ZonesMixed[static_cast<size_t>(Z)] = Offset;
    NumMixed[static_cast<size_t>(Z)] = Count;
    Offset += Count;
  }
  size_t NMIX = static_cast<size_t>(NZ * C.MaxMixed);
  std::vector<int64_t> Material(NMIX, 0);
  std::vector<double> Fraction(NMIX, 0.0);
  for (size_t I = 0; I < static_cast<size_t>(Offset); ++I) {
    Material[I] = R.range(0, C.NumMaterials - 1);
    Fraction[I] = 0.2 + 0.8 * R.uniform();
  }
  std::vector<int64_t> MomentToCoeff(static_cast<size_t>(C.NumMoments));
  for (int M = 0; M < C.NumMoments; ++M)
    MomentToCoeff[static_cast<size_t>(M)] = M % C.NumCoeffs;

  // Arrays absent from a particular kernel are silently skipped.
  (void)Eval.setIntArray("zones_mixed", ZonesMixed);
  (void)Eval.setIntArray("num_mixed", NumMixed);
  (void)Eval.setIntArray("mixed_material", Material);
  (void)Eval.setDoubleArray("mixed_fraction", Fraction);
  (void)Eval.setIntArray("moment_to_coeff", MomentToCoeff);
}

//===----------------------------------------------------------------------===//
// Loop-nest corpus (Table I)
//===----------------------------------------------------------------------===//

const std::vector<std::pair<std::string, int>> &corpusSuites() {
  static const std::vector<std::pair<std::string, int>> Suites = {
      {"ALPBench", 13},      {"ASC-Sequoia", 1},
      {"Cortexsuite", 47},   {"FreeBench", 30},
      {"PRK", 37},           {"LivermoreLoops", 11},
      {"MediaBench", 39},    {"Netlib", 18},
      {"NPB", 208},          {"Polybench", 93},
      {"Scimark2", 4},       {"SPEC2000", 71},
      {"SPEC2006", 50},      {"TSVC", 156},
      {"Libraries", 61},     {"NeuralNetKernels", 17},
  };
  return Suites;
}

namespace {

/// One synthetic loop-nest pattern; sizes are drawn per instance.
std::string corpusPattern(int Pattern, Rng &R) {
  int N = static_cast<int>(R.range(24, 64));
  int M = static_cast<int>(R.range(16, 48));
  int K = static_cast<int>(R.range(8, 32));
  std::ostringstream Out;
  Out << "#define N " << N << "\n#define M " << M << "\n#define K " << K
      << "\n";
  switch (Pattern) {
  case 0: // matmul-like 3-deep perfect nest
    Out << R"(
double A[N][K];
double B[K][M];
double C[N][M];
int main() {
  int i, j, k;
#pragma @Locus loop=scop
  for (i = 0; i < N; i++)
    for (j = 0; j < M; j++)
      for (k = 0; k < K; k++)
        C[i][j] = C[i][j] + A[i][k] * B[k][j];
}
)";
    break;
  case 1: // transposed copy: interchange-sensitive
    Out << R"(
double A[N][N];
double B[N][N];
int main() {
  int i, j;
#pragma @Locus loop=scop
  for (i = 0; i < N; i++)
    for (j = 0; j < N; j++)
      B[j][i] = A[i][j] * 2.0;
}
)";
    break;
  case 2: // 2D stencil-like with a carried dependence
    Out << R"(
double A[N][N];
int main() {
  int i, j;
#pragma @Locus loop=scop
  for (i = 1; i < N; i++)
    for (j = 1; j < N - 1; j++)
      A[i][j] = 0.25 * (A[i - 1][j] + A[i - 1][j + 1] + A[i - 1][j - 1] + A[i][j]);
}
)";
    break;
  case 3: // reduction
    Out << R"(
double A[N][M];
double s[1];
int main() {
  int i, j;
#pragma @Locus loop=scop
  for (i = 0; i < N; i++)
    for (j = 0; j < M; j++)
      s[0] = s[0] + A[i][j] * A[i][j];
}
)";
    break;
  case 4: // imperfect nest: init + inner accumulation
    Out << R"(
double A[N][M];
double y[N];
double x[M];
int main() {
  int i, j;
#pragma @Locus loop=scop
  for (i = 0; i < N; i++) {
    y[i] = 0.0;
    for (j = 0; j < M; j++)
      y[i] = y[i] + A[i][j] * x[j];
  }
}
)";
    break;
  case 5: // indirect access: dependences unavailable
    Out << R"(
double A[N];
double B[N];
int idx[N];
int main() {
  int i;
#pragma @Locus loop=scop
  for (i = 0; i < N; i++)
    A[idx[i]] = A[idx[i]] + B[i];
}
)";
    break;
  case 6: // 1-deep streaming saxpy
    Out << R"(
double x[N];
double y[N];
double a;
int main() {
  int i;
#pragma @Locus loop=scop
  for (i = 0; i < N; i++)
    y[i] = y[i] + a * x[i];
}
)";
    break;
  case 7: // triangular nest (non-rectangular)
    Out << R"(
double A[N][N];
double b[N];
int main() {
  int i, j;
#pragma @Locus loop=scop
  for (i = 0; i < N; i++)
    for (j = i; j < N; j++)
      A[i][j] = A[i][j] + b[i] * b[j];
}
)";
    break;
  case 8: // multi-statement distributable body
    Out << R"(
double A[N];
double B[N];
double C[N];
double D[N];
int main() {
  int i;
#pragma @Locus loop=scop
  for (i = 0; i < N; i++) {
    A[i] = C[i] * 1.5;
    B[i] = D[i] + 2.0;
  }
}
)";
    break;
  default: // 4-deep perfect nest (tensor-contraction flavor)
    Out << R"(
double A[K][K][K][K];
double B[K][K][K][K];
int main() {
  int i, j, k, l;
#pragma @Locus loop=scop
  for (i = 1; i < K; i++)
    for (j = 0; j < K; j++)
      for (k = 0; k < K; k++)
        for (l = 0; l < K; l++)
          B[i][j][k][l] = A[i - 1][j][k][l] + A[i][j][k][l] * 0.5;
}
)";
    break;
  }
  return Out.str();
}

} // namespace

std::vector<CorpusEntry> loopCorpus(double Scale, uint64_t Seed) {
  std::vector<CorpusEntry> Corpus;
  Rng R(Seed);
  const int NumPatterns = 10;
  int PatternCursor = 0;
  for (const auto &[Suite, PaperCount] : corpusSuites()) {
    int Count = std::max(1, static_cast<int>(PaperCount * Scale + 0.5));
    for (int I = 0; I < Count; ++I) {
      CorpusEntry E;
      E.Suite = Suite;
      E.Name = Suite + "-" + std::to_string(I);
      E.Source = corpusPattern(PatternCursor % NumPatterns, R);
      ++PatternCursor;
      Corpus.push_back(std::move(E));
    }
  }
  return Corpus;
}

std::string fig13GenericProgram() {
  // The canonical text lives with the discovery subsystem so hand-annotated
  // and auto-discovered regions tune under byte-identical programs.
  return analysis::genericLocusProgram("scop");
}

const std::vector<std::string> &polybenchKernels() {
  static const std::vector<std::string> Names = {
      "gemver", "atax", "bicg", "mvt", "syrk", "gesummv", "trmm", "2mm"};
  return Names;
}

std::string polybenchSource(const std::string &Name, int N) {
  std::ostringstream Out;
  Out << "#define N " << N << "\n";
  if (Name == "gemver") {
    Out << R"(
double A[N][N];
double u1[N];
double v1[N];
double u2[N];
double v2[N];
double w[N];
double x[N];
double y[N];
double z[N];
double alpha;
double beta;

int main()
{
  int i, j;
  double t_start, t_end;
  init_array();
  t_start = rtclock();
  for (i = 0; i < N; i++)
    for (j = 0; j < N; j++)
      A[i][j] = A[i][j] + u1[i] * v1[j] + u2[i] * v2[j];
  for (i = 0; i < N; i++)
    for (j = 0; j < N; j++)
      x[i] = x[i] + beta * A[j][i] * y[j];
  for (i = 0; i < N; i++)
    x[i] = x[i] + z[i];
  for (i = 0; i < N; i++)
    for (j = 0; j < N; j++)
      w[i] = w[i] + alpha * A[i][j] * x[j];
  t_end = rtclock();
  print_array();
  return 0;
}
)";
  } else if (Name == "atax") {
    Out << R"(
double A[N][N];
double x[N];
double y[N];
double tmp[N];

int main()
{
  int i, j;
  double t_start, t_end;
  init_array();
  t_start = rtclock();
  for (i = 0; i < N; i++)
    y[i] = 0.0;
  for (i = 0; i < N; i++) {
    tmp[i] = 0.0;
    for (j = 0; j < N; j++)
      tmp[i] = tmp[i] + A[i][j] * x[j];
    for (j = 0; j < N; j++)
      y[j] = y[j] + A[i][j] * tmp[i];
  }
  t_end = rtclock();
  print_array();
  return 0;
}
)";
  } else if (Name == "bicg") {
    Out << R"(
double A[N][N];
double s[N];
double q[N];
double p[N];
double r[N];

int main()
{
  int i, j;
  double t_start, t_end;
  init_array();
  t_start = rtclock();
  for (i = 0; i < N; i++)
    s[i] = 0.0;
  for (i = 0; i < N; i++) {
    q[i] = 0.0;
    for (j = 0; j < N; j++) {
      s[j] = s[j] + r[i] * A[i][j];
      q[i] = q[i] + A[i][j] * p[j];
    }
  }
  t_end = rtclock();
  print_array();
  return 0;
}
)";
  } else if (Name == "mvt") {
    Out << R"(
double A[N][N];
double x1[N];
double x2[N];
double y1[N];
double y2[N];

int main()
{
  int i, j;
  double t_start, t_end;
  init_array();
  t_start = rtclock();
  for (i = 0; i < N; i++)
    for (j = 0; j < N; j++)
      x1[i] = x1[i] + A[i][j] * y1[j];
  for (i = 0; i < N; i++)
    for (j = 0; j < N; j++)
      x2[i] = x2[i] + A[j][i] * y2[j];
  t_end = rtclock();
  print_array();
  return 0;
}
)";
  } else if (Name == "syrk") {
    Out << R"(
double A[N][N];
double C[N][N];
double alpha;
double beta;

int main()
{
  int i, j, k;
  double t_start, t_end;
  init_array();
  t_start = rtclock();
  for (i = 0; i < N; i++)
    for (j = 0; j < N; j++)
      C[i][j] = C[i][j] * beta;
  for (i = 0; i < N; i++)
    for (j = 0; j < N; j++)
      for (k = 0; k < N; k++)
        C[i][j] = C[i][j] + alpha * A[i][k] * A[j][k];
  t_end = rtclock();
  print_array();
  return 0;
}
)";
  } else if (Name == "gesummv") {
    Out << R"(
double A[N][N];
double B[N][N];
double tmp[N];
double x[N];
double y[N];
double alpha;
double beta;

int main()
{
  int i, j;
  double t_start, t_end;
  init_array();
  t_start = rtclock();
  for (i = 0; i < N; i++) {
    tmp[i] = 0.0;
    y[i] = 0.0;
    for (j = 0; j < N; j++) {
      tmp[i] = A[i][j] * x[j] + tmp[i];
      y[i] = B[i][j] * x[j] + y[i];
    }
    y[i] = alpha * tmp[i] + beta * y[i];
  }
  t_end = rtclock();
  print_array();
  return 0;
}
)";
  } else if (Name == "trmm") {
    // Triangular bound: the inner loop runs k in [0, i-1], a dependent
    // range only symbolic range analysis can prove within extents.
    Out << R"(
double A[N][N];
double B[N][N];
double alpha;

int main()
{
  int i, j, k;
  double t_start, t_end;
  init_array();
  t_start = rtclock();
  for (i = 1; i < N; i++)
    for (j = 0; j < N; j++)
      for (k = 0; k < i; k++)
        B[i][j] = B[i][j] + alpha * A[i][k] * B[j][k];
  t_end = rtclock();
  print_array();
  return 0;
}
)";
  } else if (Name == "2mm") {
    Out << R"(
double A[N][N];
double B[N][N];
double C[N][N];
double D[N][N];
double tmp[N][N];
double alpha;
double beta;

int main()
{
  int i, j, k;
  double t_start, t_end;
  init_array();
  t_start = rtclock();
  for (i = 0; i < N; i++)
    for (j = 0; j < N; j++) {
      tmp[i][j] = 0.0;
      for (k = 0; k < N; k++)
        tmp[i][j] = tmp[i][j] + alpha * A[i][k] * B[k][j];
    }
  for (i = 0; i < N; i++)
    for (j = 0; j < N; j++) {
      D[i][j] = D[i][j] * beta;
      for (k = 0; k < N; k++)
        D[i][j] = D[i][j] + tmp[i][k] * C[k][j];
    }
  t_end = rtclock();
  print_array();
  return 0;
}
)";
  } else {
    assert(false && "unknown polybench kernel");
  }
  return Out.str();
}

} // namespace workloads
} // namespace locus
