//===- CacheSim.h - Multi-level cache simulator -----------------*- C++ -*-===//
///
/// \file
/// A set-associative, LRU, multi-level cache hierarchy simulator. This is
/// the performance substrate that replaces the paper's Xeon testbed: the
/// evaluator feeds it every array access of a program variant, and the
/// returned latencies make locality transformations (tiling, interchange,
/// layout selection) measurably change a variant's cost, which is what the
/// empirical search needs.
///
//===----------------------------------------------------------------------===//
#ifndef LOCUS_MACHINE_CACHESIM_H
#define LOCUS_MACHINE_CACHESIM_H

#include <cstdint>
#include <string>
#include <vector>

namespace locus {
namespace machine {

/// Configuration of one cache level.
struct CacheLevelConfig {
  std::string Name;
  uint64_t SizeBytes = 32 * 1024;
  int Assoc = 8;
  int LineBytes = 64;
  int HitLatency = 4; ///< cycles
};

/// Whole-machine description.
struct MachineConfig {
  std::vector<CacheLevelConfig> Levels;
  int MemLatency = 200;          ///< cycles for a miss in the last level
  int Cores = 10;                ///< physical cores available to OpenMP
  int VectorWidthDoubles = 4;    ///< AVX2: 4 doubles
  double ArithCost = 1.0;        ///< cycles per scalar arithmetic op
  double LoopOverhead = 2.0;     ///< cycles per loop iteration (inc+branch)
  double ParallelSpawnOverhead = 3000.0; ///< cycles to fork/join a region
  double DynamicChunkOverhead = 150.0;   ///< cycles to grab one dynamic chunk

  /// The evaluation machine of the paper: 10-core Xeon E5-2660 v3
  /// (32 KB L1d, 256 KB L2 private, 25 MB L3 shared).
  static MachineConfig xeonE5v3();

  /// The Xeon with caches scaled down by \p Factor. Benchmarks use this to
  /// run the paper's experiments on reduced problem sizes while keeping the
  /// same cache-pressure regime (working set : cache ratio).
  static MachineConfig xeonE5v3Scaled(int Factor);

  /// A small machine for fast unit tests (tiny caches so locality effects
  /// show up at tiny problem sizes).
  static MachineConfig tiny();
};

/// Per-level hit/miss counters.
struct CacheLevelStats {
  uint64_t Hits = 0;
  uint64_t Misses = 0;
};

/// The cache hierarchy. Levels are checked in order; a miss in level i
/// consults level i+1; a miss everywhere costs MemLatency. All levels are
/// filled on the way back (inclusive hierarchy).
class CacheSim {
public:
  explicit CacheSim(const MachineConfig &Config);

  /// Simulates one access; returns its latency in cycles.
  int access(uint64_t Address, bool IsWrite);

  /// Drops all cached lines and statistics.
  void reset();

  const std::vector<CacheLevelStats> &stats() const { return Stats; }

private:
  struct Level {
    int LineShift = 6;
    uint64_t NumSets = 1;
    int Assoc = 8;
    int HitLatency = 4;
    /// Tags, NumSets x Assoc; 0 means empty (tag values are offset by 1).
    std::vector<uint64_t> Tags;
    /// LRU stamps parallel to Tags.
    std::vector<uint64_t> Stamps;
  };

  std::vector<Level> Levels;
  std::vector<CacheLevelStats> Stats;
  int MemLatency;
  uint64_t Clock = 0;
};

} // namespace machine
} // namespace locus

#endif // LOCUS_MACHINE_CACHESIM_H
