//===- CacheSim.cpp - Multi-level cache simulator ----------------------------===//

#include "src/machine/CacheSim.h"

#include <algorithm>

#include <cassert>

namespace locus {
namespace machine {

MachineConfig MachineConfig::xeonE5v3() {
  MachineConfig M;
  M.Levels = {
      CacheLevelConfig{"L1d", 32 * 1024, 8, 64, 4},
      CacheLevelConfig{"L2", 256 * 1024, 8, 64, 12},
      CacheLevelConfig{"L3", 25 * 1024 * 1024, 20, 64, 36},
  };
  M.MemLatency = 220;
  M.Cores = 10;
  M.VectorWidthDoubles = 4;
  return M;
}

MachineConfig MachineConfig::xeonE5v3Scaled(int Factor) {
  MachineConfig M = xeonE5v3();
  for (CacheLevelConfig &L : M.Levels) {
    L.SizeBytes = std::max<uint64_t>(512, L.SizeBytes / static_cast<uint64_t>(Factor));
    L.Assoc = std::max(2, L.Assoc / 2);
  }
  return M;
}

MachineConfig MachineConfig::tiny() {
  MachineConfig M;
  M.Levels = {
      CacheLevelConfig{"L1d", 1024, 2, 64, 2},
      CacheLevelConfig{"L2", 8 * 1024, 4, 64, 10},
  };
  M.MemLatency = 100;
  M.Cores = 4;
  M.VectorWidthDoubles = 4;
  M.ParallelSpawnOverhead = 500.0;
  return M;
}

namespace {

int log2Floor(uint64_t X) {
  int L = 0;
  while (X > 1) {
    X >>= 1;
    ++L;
  }
  return L;
}

} // namespace

CacheSim::CacheSim(const MachineConfig &Config) : MemLatency(Config.MemLatency) {
  for (const CacheLevelConfig &LC : Config.Levels) {
    Level L;
    L.LineShift = log2Floor(static_cast<uint64_t>(LC.LineBytes));
    uint64_t Lines = LC.SizeBytes / static_cast<uint64_t>(LC.LineBytes);
    uint64_t Sets = Lines / static_cast<uint64_t>(LC.Assoc);
    if (Sets == 0)
      Sets = 1;
    // Round down to a power of two for cheap indexing.
    uint64_t Pow2 = 1;
    while (Pow2 * 2 <= Sets)
      Pow2 *= 2;
    L.NumSets = Pow2;
    L.Assoc = LC.Assoc;
    L.HitLatency = LC.HitLatency;
    L.Tags.assign(L.NumSets * static_cast<uint64_t>(L.Assoc), 0);
    L.Stamps.assign(L.NumSets * static_cast<uint64_t>(L.Assoc), 0);
    Levels.push_back(std::move(L));
  }
  Stats.assign(Levels.size(), CacheLevelStats{});
}

int CacheSim::access(uint64_t Address, bool IsWrite) {
  (void)IsWrite; // write-allocate, write-back: same path as reads
  ++Clock;
  int Latency = 0;
  bool Hit = false;
  size_t HitLevel = Levels.size();
  for (size_t I = 0; I < Levels.size(); ++I) {
    Level &L = Levels[I];
    uint64_t Line = Address >> L.LineShift;
    uint64_t Set = Line & (L.NumSets - 1);
    uint64_t Tag = Line + 1; // offset so 0 means empty
    uint64_t BaseIdx = Set * static_cast<uint64_t>(L.Assoc);
    Latency += L.HitLatency;
    for (int W = 0; W < L.Assoc; ++W) {
      if (L.Tags[BaseIdx + static_cast<uint64_t>(W)] == Tag) {
        L.Stamps[BaseIdx + static_cast<uint64_t>(W)] = Clock;
        ++Stats[I].Hits;
        Hit = true;
        HitLevel = I;
        break;
      }
    }
    if (Hit)
      break;
    ++Stats[I].Misses;
  }
  if (!Hit)
    Latency += MemLatency;

  // Fill all levels above (and including) the miss point.
  size_t FillUpTo = Hit ? HitLevel : Levels.size();
  for (size_t I = 0; I < FillUpTo; ++I) {
    Level &L = Levels[I];
    uint64_t Line = Address >> L.LineShift;
    uint64_t Set = Line & (L.NumSets - 1);
    uint64_t Tag = Line + 1;
    uint64_t BaseIdx = Set * static_cast<uint64_t>(L.Assoc);
    // Find an empty way or the LRU victim.
    uint64_t VictimIdx = BaseIdx;
    uint64_t OldestStamp = ~0ULL;
    for (int W = 0; W < L.Assoc; ++W) {
      uint64_t Idx = BaseIdx + static_cast<uint64_t>(W);
      if (L.Tags[Idx] == 0) {
        VictimIdx = Idx;
        break;
      }
      if (L.Stamps[Idx] < OldestStamp) {
        OldestStamp = L.Stamps[Idx];
        VictimIdx = Idx;
      }
    }
    L.Tags[VictimIdx] = Tag;
    L.Stamps[VictimIdx] = Clock;
  }
  return Latency;
}

void CacheSim::reset() {
  for (Level &L : Levels) {
    std::fill(L.Tags.begin(), L.Tags.end(), 0);
    std::fill(L.Stamps.begin(), L.Stamps.end(), 0);
  }
  for (CacheLevelStats &S : Stats)
    S = CacheLevelStats{};
  Clock = 0;
}

} // namespace machine
} // namespace locus
