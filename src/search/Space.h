//===- Space.h - Optimization search space ----------------------*- C++ -*-===//
///
/// \file
/// The search-space representation every search module consumes. The Locus
/// space extractor (convertOptUniverse in the paper's Section IV-B) converts
/// OR blocks/statements, optional statements and the search data types
/// (enum, integer, float, permutation, poweroftwo, loginteger, logfloat)
/// into ParamDefs. Numeric parameters whose bounds reference other search
/// variables carry DependsOn* links: the space is defined with the maximal
/// bounds (computed by use-def bounds analysis) and points violating the
/// dynamic constraint are invalidated at evaluation time, exactly as
/// described for the OpenTuner integration.
///
//===----------------------------------------------------------------------===//
#ifndef LOCUS_SEARCH_SPACE_H
#define LOCUS_SEARCH_SPACE_H

#include <cstdint>
#include <map>
#include <string>
#include <variant>
#include <vector>

namespace locus {
namespace search {

enum class ParamKind {
  Enum,        ///< one of a list of strings (also OR selectors)
  Bool,        ///< optional statements
  IntRange,    ///< integer(min..max)
  Pow2,        ///< poweroftwo(min..max): values are the powers of two
  LogInt,      ///< loginteger(min..max): log-spaced integer candidates
  FloatRange,  ///< float(min..max)
  LogFloat,    ///< logfloat(min..max)
  Permutation, ///< permutation of 0..N-1
};

/// One dimension of the optimization space.
struct ParamDef {
  std::string Id;    ///< stable identity across extraction and execution
  std::string Label; ///< human-readable name (the Locus variable name)
  ParamKind Kind = ParamKind::Enum;

  std::vector<std::string> Options; ///< Enum
  int64_t Min = 0, Max = 0;         ///< integer kinds
  double FMin = 0, FMax = 0;        ///< float kinds
  int PermSize = 0;                 ///< Permutation

  /// When set, the effective max/min of this parameter at a concrete point
  /// is the value of the referenced parameter (dependent ranges).
  std::string DependsOnMaxParam;
  std::string DependsOnMinParam;

  /// Number of distinct values (1 for empty/degenerate, saturates at
  /// INT64_MAX). Float ranges report a nominal discretization of 1000.
  uint64_t cardinality() const;
};

/// A concrete value assigned to one parameter.
using PointValue = std::variant<int64_t, double, std::string, std::vector<int>>;

/// A point in the space: every parameter pinned to a value.
struct Point {
  std::map<std::string, PointValue> Values;

  int64_t getInt(const std::string &Id) const;
  double getFloat(const std::string &Id) const;
  const std::string &getString(const std::string &Id) const;
  const std::vector<int> &getPerm(const std::string &Id) const;

  /// Canonical text form, used for deduplicating evaluated variants.
  std::string key() const;
};

/// The whole space.
struct Space {
  std::vector<ParamDef> Params;

  const ParamDef *find(const std::string &Id) const;

  /// Cross-product of all parameter cardinalities (saturating).
  uint64_t fullSize() const;

  /// Product over value parameters only (excluding OR selectors and
  /// optional booleans) — the convention under which the paper reports the
  /// 34,012,224-variant space of Fig. 7. Selector parameters carry Labels
  /// beginning with "or:" / "opt:".
  uint64_t valueSize() const;

  /// Renders a human-readable summary.
  std::string describe() const;

  /// Canonical 64-bit fingerprint of the space definition: every ParamDef
  /// field, in declaration order, feeds the hash. Two extractions of the
  /// same program produce the same fingerprint; any structural change —
  /// parameter added, bound widened, option renamed — changes it. Stored in
  /// journal headers so --resume can refuse a journal from another space.
  uint64_t fingerprint() const;
};

} // namespace search
} // namespace locus

#endif // LOCUS_SEARCH_SPACE_H
