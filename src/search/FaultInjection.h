//===- FaultInjection.h - Fault-injection harness ---------------*- C++ -*-===//
///
/// \file
/// A decorator that injects classified failures into an Objective with a
/// configurable probability, kind mix, and deterministic seed. The fault
/// decision is a pure function of (point key, seed), so the clean subspace
/// is stable across runs and across independently-constructed injectors —
/// tests can compute the known-best clean point exactly and assert the
/// searchers still find it while a third of the space is on fire.
///
/// MetricUnstable is special: it models flakiness, not a broken variant, so
/// an unstable point recovers (returns the clean metric) after
/// UnstableAttempts failed assessments. This is what the retry guard in
/// GuardedObjective is tested against.
///
//===----------------------------------------------------------------------===//
#ifndef LOCUS_SEARCH_FAULTINJECTION_H
#define LOCUS_SEARCH_FAULTINJECTION_H

#include "src/search/Search.h"

#include <map>
#include <utility>
#include <vector>

namespace locus {
namespace search {

struct FaultInjectionOptions {
  /// Probability that a point is selected for failure injection.
  double FailureProbability = 0.3;
  /// Deterministic seed; same seed + same point => same injected kind.
  uint64_t Seed = 0x10c05;
  /// Relative weights of the injected kinds; empty means an equal mix of
  /// all seven failure kinds. Entries with kind None are ignored.
  std::vector<std::pair<FailureKind, double>> KindMix;
  /// Injected MetricUnstable failures clear after this many assessments of
  /// the point (the measurement "stabilizes"); <= 0 makes them permanent.
  int UnstableAttempts = 1;
};

class FaultInjectingObjective : public Objective {
public:
  FaultInjectingObjective(Objective &Inner, FaultInjectionOptions Opts = {});

  /// The deterministic per-point fault decision (None = clean). Stateless:
  /// it does not consume randomness or record anything.
  FailureKind classify(const Point &P) const;

  EvalOutcome assess(const Point &P) override;

  /// Per-kind counts of failures actually injected.
  const std::array<int, NumFailureKinds> &injectedCounts() const {
    return Injected;
  }
  /// Number of assessments passed through to the inner objective.
  int cleanCalls() const { return Clean; }

private:
  Objective &Inner;
  FaultInjectionOptions Opts;
  std::vector<std::pair<FailureKind, double>> Mix; ///< normalized KindMix
  double TotalWeight = 0;
  std::map<std::string, int> UnstableSeen;
  std::array<int, NumFailureKinds> Injected{};
  int Clean = 0;
};

} // namespace search
} // namespace locus

#endif // LOCUS_SEARCH_FAULTINJECTION_H
