//===- EvalPool.h - Worker pool for parallel point evaluation ---*- C++ -*-===//
///
/// \file
/// A fixed-size std::jthread worker pool that evaluates batches of search
/// points concurrently. Population searchers (DE generations, exhaustive /
/// random sweeps) propose data-independent points; evaluating them serially
/// leaves all but one core idle during the most expensive part of the search
/// (variant materialization + simulation). The pool runs an index-parallel
/// job over a batch; the caller commits results back in proposal order, so
/// a seeded search trajectory is bit-identical to the serial run.
///
/// Every Objective evaluated through the pool with more than one worker must
/// be safe to call concurrently (see Objective::concurrencySafe): each
/// worker must build its own interpreter/evaluator state rather than
/// mutating shared CIR.
///
//===----------------------------------------------------------------------===//
#ifndef LOCUS_SEARCH_EVALPOOL_H
#define LOCUS_SEARCH_EVALPOOL_H

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace locus {
namespace search {

/// Fixed-size worker pool running index-parallel jobs.
class EvalPool {
public:
  /// Creates a pool with \p Jobs workers. Jobs <= 1 creates no threads;
  /// run() then executes inline on the caller.
  explicit EvalPool(int Jobs);
  ~EvalPool();

  EvalPool(const EvalPool &) = delete;
  EvalPool &operator=(const EvalPool &) = delete;

  /// Runs Fn(I) for every I in [0, N), distributing indices across the
  /// workers (plus the calling thread), and blocks until all are done. Fn
  /// must not throw. Reentrant calls from inside Fn are not supported.
  void run(size_t N, const std::function<void(size_t)> &Fn);

  /// Number of concurrent evaluations run() can sustain (>= 1).
  int jobs() const { return JobCount; }

private:
  void workerLoop(std::stop_token Stop);

  int JobCount = 1;

  std::mutex M;
  std::condition_variable_any WorkCv; ///< _any: waits against a stop_token
  std::condition_variable DoneCv;
  const std::function<void(size_t)> *Fn = nullptr; ///< current job, if any
  size_t JobSize = 0;   ///< N of the current job
  size_t NextIndex = 0; ///< next index to claim
  size_t Remaining = 0; ///< indices not yet completed

  /// Declared last: the jthreads stop-and-join in their destructor, which
  /// must run while the mutex and condition variables above are still alive
  /// (members destruct in reverse declaration order).
  std::vector<std::jthread> Workers;
};

} // namespace search
} // namespace locus

#endif // LOCUS_SEARCH_EVALPOOL_H
