//===- FaultInjection.cpp - Fault-injection harness -----------------------===//

#include "src/search/FaultInjection.h"

#include "src/support/Hashing.h"

#include <cmath>
#include <limits>

namespace locus {
namespace search {

namespace {

/// Maps 64 hash bits to [0, 1).
double hashToUnit(uint64_t H) {
  return static_cast<double>(H >> 11) * 0x1p-53;
}

} // namespace

FaultInjectingObjective::FaultInjectingObjective(Objective &Inner,
                                                 FaultInjectionOptions Opts)
    : Inner(Inner), Opts(std::move(Opts)) {
  if (this->Opts.KindMix.empty()) {
    for (int I = 1; I < NumFailureKinds; ++I)
      Mix.emplace_back(static_cast<FailureKind>(I), 1.0);
  } else {
    for (const auto &[K, W] : this->Opts.KindMix)
      if (K != FailureKind::None && W > 0)
        Mix.emplace_back(K, W);
  }
  for (const auto &[K, W] : Mix)
    TotalWeight += W;
}

FailureKind FaultInjectingObjective::classify(const Point &P) const {
  if (Mix.empty() || Opts.FailureProbability <= 0)
    return FailureKind::None;
  uint64_t H = fnv1a(P.key(), hashCombine(0xcbf29ce484222325ULL, Opts.Seed));
  if (hashToUnit(H) >= Opts.FailureProbability)
    return FailureKind::None;
  double Draw = hashToUnit(hashCombine(H, 0x51ab1e5eedULL)) * TotalWeight;
  for (const auto &[K, W] : Mix) {
    Draw -= W;
    if (Draw < 0)
      return K;
  }
  return Mix.back().first;
}

EvalOutcome FaultInjectingObjective::assess(const Point &P) {
  FailureKind K = classify(P);
  if (K == FailureKind::None) {
    ++Clean;
    return Inner.assess(P);
  }
  if (K == FailureKind::MetricUnstable && Opts.UnstableAttempts > 0) {
    int &SeenCount = UnstableSeen[P.key()];
    if (SeenCount >= Opts.UnstableAttempts) {
      // The measurement has stabilized; pass through.
      ++Clean;
      return Inner.assess(P);
    }
    ++SeenCount;
    ++Injected[static_cast<size_t>(K)];
    EvalOutcome O =
        EvalOutcome::fail(K, "injected unstable metric");
    O.Metric = std::numeric_limits<double>::quiet_NaN();
    return O;
  }
  ++Injected[static_cast<size_t>(K)];
  return EvalOutcome::fail(K, std::string("injected ") + failureKindName(K));
}

} // namespace search
} // namespace locus
