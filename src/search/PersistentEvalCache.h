//===- PersistentEvalCache.h - Durable shared evaluation cache --*- C++ -*-===//
///
/// \file
/// The on-disk promotion of EvalCache: evaluation outcomes keyed by the
/// 128-bit content hash of the unparsed variant text, persisted to a
/// crash-safe RecordLog inside a cache directory that may be shared across
/// runs, processes, and tenants. A variant simulated for one search is free
/// for every later search that materializes the same program — which is
/// what makes repeat tuning of similar kernels cheap (the MetaSchedule
/// database idea, applied to our content-addressed cache).
///
/// Operational contract:
///
///  - startup loads every intact entry from <dir>/evalcache.rlog into the
///    in-memory EvalCache; lookups are pure memory operations afterwards;
///  - committed outcomes (never MetricUnstable — a flaky reading must be
///    re-measured, not immortalized) are appended as CRC-framed records,
///    safe under --jobs N (internal mutex) and under concurrent processes
///    sharing the directory (RecordLog's flock protocol);
///  - the store is advisory, never load-bearing: any I/O or corruption
///    error — unreadable directory, torn file, disk full, read-only mount —
///    emits one warning through the sink and degrades to plain in-memory
///    behavior. A broken cache can cost re-evaluations, never the search;
///  - duplicate entries (two processes racing on the same variant) are
///    tolerated on disk — first-loaded wins in memory — and compacted away
///    with an atomic rename when they outnumber useful entries.
///
//===----------------------------------------------------------------------===//
#ifndef LOCUS_SEARCH_PERSISTENTEVALCACHE_H
#define LOCUS_SEARCH_PERSISTENTEVALCACHE_H

#include "src/search/EvalCache.h"
#include "src/support/RecordLog.h"

#include <functional>
#include <string>

namespace locus {
namespace search {

struct PersistentCacheOptions {
  /// Directory holding the store ("<dir>/evalcache.rlog"); created when
  /// absent. Empty is invalid (callers wanting no persistence use
  /// EvalCache directly).
  std::string Dir;
  /// Load and serve entries but never write: for tenants that may consume
  /// a shared store but not grow it (the CLI's --cache-readonly).
  bool ReadOnly = false;
  /// fsync per appended entry. Off by default: a lost cache entry costs one
  /// re-evaluation, so kernel-level durability is the right trade.
  bool FsyncEachRecord = false;
};

struct PersistentCacheStats {
  uint64_t LoadedEntries = 0;   ///< intact entries preloaded at startup
  uint64_t AppendedEntries = 0; ///< entries this process appended
  uint64_t Warnings = 0;        ///< I/O or format problems surfaced
  bool Degraded = false;        ///< persistence off after an error
  bool RecoveredTornTail = false; ///< startup truncated a torn/corrupt tail
  bool Compacted = false;         ///< startup rewrote the store
};

/// Durable VariantOutcomeCache. Construction never fails: every error path
/// lands in a warning plus in-memory degradation.
class PersistentEvalCache : public VariantOutcomeCache {
public:
  using WarnSink = std::function<void(const std::string &)>;

  /// Opens (or creates) the store and preloads it. \p Warn receives
  /// human-readable degradation/recovery messages; null means stderr.
  explicit PersistentEvalCache(PersistentCacheOptions Opts,
                               WarnSink Warn = nullptr);

  std::optional<EvalOutcome> lookup(const CacheKey &Key,
                                    const std::string &PointKey) override;
  void insert(const CacheKey &Key, const std::string &PointKey,
              const EvalOutcome &Outcome) override;
  EvalCacheStats stats() const override;

  PersistentCacheStats persistentStats() const;

  /// Encodes one store entry (tab-separated, escaped; exposed for tests).
  static std::string encodeEntry(const CacheKey &Key,
                                 const std::string &PointKey,
                                 const EvalOutcome &Outcome);
  /// Strict inverse of encodeEntry; false on any malformed field.
  static bool decodeEntry(const std::string &Record, CacheKey &Key,
                          std::string &PointKey, EvalOutcome &Outcome);

  /// The store file inside a cache directory.
  static std::string storePath(const std::string &Dir);

private:
  void warn(const std::string &Msg);
  void degrade(const std::string &Why);

  PersistentCacheOptions Opts;
  WarnSink Warn;
  EvalCache Mem;
  support::RecordLog Log; ///< open iff writing is possible and not degraded
  mutable std::mutex M;   ///< guards Pers and Log state transitions
  PersistentCacheStats Pers;
};

} // namespace search
} // namespace locus

#endif // LOCUS_SEARCH_PERSISTENTEVALCACHE_H
