//===- Journal.cpp - Crash-safe search journal ----------------------------===//

#include "src/search/Journal.h"

#include "src/search/PointCodec.h"
#include "src/support/Hashing.h"

#include <cctype>
#include <cerrno>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <limits>
#include <sstream>

#include <fcntl.h>
#include <unistd.h>

namespace locus {
namespace search {

namespace {

void appendEscaped(std::string &Out, std::string_view S) {
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\r':
      Out += "\\r";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
}

/// Parses a JSON string starting at Text[Pos] (which must be '"'); advances
/// Pos past the closing quote.
bool parseJsonString(std::string_view Text, size_t &Pos, std::string &Out) {
  if (Pos >= Text.size() || Text[Pos] != '"')
    return false;
  ++Pos;
  Out.clear();
  while (Pos < Text.size()) {
    char C = Text[Pos];
    if (C == '"') {
      ++Pos;
      return true;
    }
    if (C == '\\') {
      if (Pos + 1 >= Text.size())
        return false;
      char E = Text[Pos + 1];
      Pos += 2;
      switch (E) {
      case '"':
        Out += '"';
        break;
      case '\\':
        Out += '\\';
        break;
      case '/':
        Out += '/';
        break;
      case 'n':
        Out += '\n';
        break;
      case 'r':
        Out += '\r';
        break;
      case 't':
        Out += '\t';
        break;
      case 'u': {
        if (Pos + 4 > Text.size())
          return false;
        unsigned Code = 0;
        auto R = std::from_chars(Text.data() + Pos, Text.data() + Pos + 4,
                                 Code, 16);
        if (R.ec != std::errc() || R.ptr != Text.data() + Pos + 4)
          return false;
        Pos += 4;
        // Journal strings only escape control bytes this way.
        Out += static_cast<char>(Code);
        break;
      }
      default:
        return false;
      }
      continue;
    }
    Out += C;
    ++Pos;
  }
  return false; // unterminated
}

void skipSpace(std::string_view Text, size_t &Pos) {
  while (Pos < Text.size() && (Text[Pos] == ' ' || Text[Pos] == '\t'))
    ++Pos;
}

bool expectChar(std::string_view Text, size_t &Pos, char C) {
  skipSpace(Text, Pos);
  if (Pos >= Text.size() || Text[Pos] != C)
    return false;
  ++Pos;
  return true;
}

bool parseJsonNumber(std::string_view Text, size_t &Pos, double &Out) {
  skipSpace(Text, Pos);
  size_t End = Pos;
  while (End < Text.size() &&
         (std::isdigit(static_cast<unsigned char>(Text[End])) ||
          Text[End] == '-' || Text[End] == '+' || Text[End] == '.' ||
          Text[End] == 'e' || Text[End] == 'E'))
    ++End;
  if (End == Pos)
    return false;
  auto R = std::from_chars(Text.data() + Pos, Text.data() + End, Out);
  if (R.ec != std::errc() || R.ptr != Text.data() + End)
    return false;
  Pos = End;
  return true;
}

constexpr const char *HeaderTag = "locus-journal v2";

std::string hex16(uint64_t V) {
  char Buf[24];
  std::snprintf(Buf, sizeof(Buf), "%016llx",
                static_cast<unsigned long long>(V));
  return Buf;
}

/// What the file is, judged by its first bytes.
enum class FileFormat {
  Missing,   ///< ENOENT or empty
  RecordLog, ///< starts with the RecordLog magic
  LegacyJsonl, ///< starts with '{' — a v1 journal line
  Unknown,
};

FileFormat sniffFormat(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return FileFormat::Missing;
  char Buf[8] = {};
  In.read(Buf, sizeof(Buf));
  std::streamsize N = In.gcount();
  if (N <= 0)
    return FileFormat::Missing;
  // A short prefix of the magic is still "record log" (a torn header file
  // that RecordLog::open knows how to rebuild).
  if (std::memcmp(Buf, "LOCRLOG1", static_cast<size_t>(N) < 8
                                       ? static_cast<size_t>(N)
                                       : 8) == 0)
    return FileFormat::RecordLog;
  if (Buf[0] == '{')
    return FileFormat::LegacyJsonl;
  return FileFormat::Unknown;
}

/// Atomically replaces \p Path with \p Image: temp file in the same
/// directory, fsync, rename, fsync the directory. Used by the one-time
/// v1 -> v2 migration so a crash leaves either the old journal or the new.
Status writeFileAtomic(const std::string &Path, const std::string &Image) {
  std::string Tmp = Path + ".migrate-tmp";
  int Fd = ::open(Tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (Fd < 0)
    return Status::error("cannot create " + Tmp + ": " + std::strerror(errno));
  size_t Done = 0;
  while (Done < Image.size()) {
    ssize_t N = ::write(Fd, Image.data() + Done, Image.size() - Done);
    if (N < 0 && errno == EINTR)
      continue;
    if (N <= 0)
      break;
    Done += static_cast<size_t>(N);
  }
  bool Ok = Done == Image.size() && ::fsync(Fd) == 0;
  ::close(Fd);
  if (!Ok) {
    ::unlink(Tmp.c_str());
    return Status::error("cannot write " + Tmp + ": " + std::strerror(errno));
  }
  if (::rename(Tmp.c_str(), Path.c_str()) != 0) {
    ::unlink(Tmp.c_str());
    return Status::error("cannot rename " + Tmp + " over " + Path + ": " +
                         std::strerror(errno));
  }
  size_t Slash = Path.find_last_of('/');
  std::string Dir = Slash == std::string::npos
                        ? "."
                        : (Slash == 0 ? "/" : Path.substr(0, Slash));
  int DirFd = ::open(Dir.c_str(), O_RDONLY | O_CLOEXEC);
  if (DirFd >= 0) {
    (void)::fsync(DirFd);
    ::close(DirFd);
  }
  return Status::success();
}

/// Builds the single actionable --resume refusal for a header that does not
/// match the current run. The header payload starts at byte 16 (magic 8 +
/// length 4 + CRC 4) of the journal file.
std::string headerMismatchError(const std::string &Path,
                                const JournalHeader &OnDisk,
                                const JournalHeader &Expect) {
  if (OnDisk.SpaceFingerprint != Expect.SpaceFingerprint)
    return "journal " + Path +
           " was written for a different search space (journal header at "
           "byte 16 has space fingerprint 0x" +
           hex16(OnDisk.SpaceFingerprint) + ", this run's space is 0x" +
           hex16(Expect.SpaceFingerprint) +
           "): resuming would replay points into the wrong space; remove "
           "the journal or rerun with the original program";
  return "journal " + Path +
         " was written by a different search configuration (journal header "
         "at byte 16 has config digest 0x" +
         hex16(OnDisk.ConfigDigest) + ", this run's is 0x" +
         hex16(Expect.ConfigDigest) +
         "): searcher or seed changed since the journal was written; remove "
         "the journal or rerun with the original --searcher/--seed";
}

} // namespace

JournalSync parseJournalSync(std::string_view Name, bool &Ok) {
  Ok = true;
  if (Name == "none")
    return JournalSync::None;
  if (Name == "flush")
    return JournalSync::Flush;
  if (Name == "full")
    return JournalSync::Full;
  Ok = false;
  return JournalSync::Full;
}

uint64_t journalConfigDigest(std::string_view SearcherName, uint64_t Seed) {
  return hashCombine(fnv1a(SearcherName), Seed);
}

std::string SearchJournal::encodeHeader(const JournalHeader &H) {
  std::string Out = HeaderTag;
  Out += "\nspace=";
  Out += hex16(H.SpaceFingerprint);
  Out += "\nconfig=";
  Out += hex16(H.ConfigDigest);
  Out += '\n';
  return Out;
}

bool SearchJournal::parseHeader(std::string_view Text, JournalHeader &H) {
  H = JournalHeader{};
  auto TakeLine = [&Text]() -> std::string_view {
    size_t Nl = Text.find('\n');
    std::string_view Line = Text.substr(0, Nl);
    Text = Nl == std::string_view::npos ? std::string_view()
                                        : Text.substr(Nl + 1);
    return Line;
  };
  if (TakeLine() != HeaderTag)
    return false;
  auto ParseField = [&TakeLine](std::string_view Name, uint64_t &Out) {
    std::string_view Line = TakeLine();
    if (Line.substr(0, Name.size()) != Name)
      return false;
    std::string_view Hex = Line.substr(Name.size());
    auto [Ptr, Ec] = std::from_chars(Hex.data(), Hex.data() + Hex.size(), Out,
                                     16);
    return Ec == std::errc() && Ptr == Hex.data() + Hex.size();
  };
  return ParseField("space=", H.SpaceFingerprint) &&
         ParseField("config=", H.ConfigDigest);
}

Expected<SearchJournal>
SearchJournal::open(const std::string &Path, JournalSync Sync,
                    const JournalHeader &Header,
                    const std::vector<EvalRecord> *MigrateRecords) {
  FileFormat Format = sniffFormat(Path);
  if (Format == FileFormat::LegacyJsonl) {
    if (!MigrateRecords)
      return Expected<SearchJournal>::error(
          "journal " + Path +
          " is in the legacy v1 (JSONL) format; resume from it (which "
          "migrates it to the checksummed v2 format) or remove it");
    // One-time migration: rewrite the whole journal in v2 framing with the
    // records the caller already loaded, atomically.
    std::string Image =
        support::RecordLog::encodeHeaderBlock(encodeHeader(Header));
    for (const EvalRecord &R : *MigrateRecords)
      Image += support::RecordLog::encodeFrame(encodeLine(R));
    if (Status S = writeFileAtomic(Path, Image); !S.ok())
      return Expected<SearchJournal>::error("cannot migrate legacy journal: " +
                                            S.message());
  }

  support::RecordLogOptions Opts;
  Opts.Header = encodeHeader(Header);
  // Compared structurally below for located diagnostics, not byte-wise.
  Opts.RequireHeaderMatch = false;
  Opts.FsyncEachRecord = Sync == JournalSync::Full;
  support::RecordLogScan Recovery;
  Expected<support::RecordLog> Log =
      support::RecordLog::open(Path, Opts, &Recovery);
  if (!Log.ok())
    return Expected<SearchJournal>::error("cannot open journal: " +
                                          Log.message());
  if (!Recovery.Header.empty()) {
    JournalHeader OnDisk;
    if (!SearchJournal::parseHeader(Recovery.Header, OnDisk))
      return Expected<SearchJournal>::error(
          "journal " + Path +
          " has an unrecognized header (written by an incompatible "
          "version?); remove it to start fresh");
    if (!(OnDisk == Header))
      return Expected<SearchJournal>::error(
          headerMismatchError(Path, OnDisk, Header));
  }
  SearchJournal J;
  J.Log = std::move(*Log);
  return J;
}

Status SearchJournal::append(const EvalRecord &R) {
  if (!Log.isOpen())
    return Status::error("journal is not open");
  return Log.append(encodeLine(R));
}

std::string SearchJournal::encodeLine(const EvalRecord &R) {
  std::string Out = "{\"point\":\"";
  appendEscaped(Out, serializePoint(R.P));
  Out += "\",\"metric\":";
  // Failed records carry an infinite sentinel metric that JSON cannot
  // express; the metric is recomputed from the failure kind on replay.
  double Metric = std::isfinite(R.Metric) ? R.Metric : 0;
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.17g", Metric);
  Out += Buf;
  Out += ",\"failure\":\"";
  appendEscaped(Out, failureKindName(R.Failure));
  Out += "\",\"detail\":\"";
  appendEscaped(Out, R.Detail);
  Out += "\"}";
  return Out;
}

Expected<EvalRecord> SearchJournal::decodeLine(const std::string &Line,
                                               const Space &S) {
  std::string_view Text = Line;
  size_t Pos = 0;
  if (!expectChar(Text, Pos, '{'))
    return Expected<EvalRecord>::error("journal line is not a JSON object");

  std::string PointText, FailureName, Detail;
  bool HavePoint = false, HaveMetric = false, HaveFailure = false;
  double Metric = 0;

  while (true) {
    skipSpace(Text, Pos);
    std::string Key;
    if (!parseJsonString(Text, Pos, Key))
      return Expected<EvalRecord>::error("malformed journal key");
    if (!expectChar(Text, Pos, ':'))
      return Expected<EvalRecord>::error("missing ':' in journal line");
    skipSpace(Text, Pos);
    if (Key == "metric") {
      if (!parseJsonNumber(Text, Pos, Metric))
        return Expected<EvalRecord>::error("malformed journal metric");
      HaveMetric = true;
    } else {
      std::string Value;
      if (!parseJsonString(Text, Pos, Value))
        return Expected<EvalRecord>::error("malformed journal value for " +
                                           Key);
      if (Key == "point") {
        PointText = std::move(Value);
        HavePoint = true;
      } else if (Key == "failure") {
        FailureName = std::move(Value);
        HaveFailure = true;
      } else if (Key == "detail") {
        Detail = std::move(Value);
      }
      // Unknown string keys are ignored (forward compatibility).
    }
    skipSpace(Text, Pos);
    if (Pos < Text.size() && Text[Pos] == ',') {
      ++Pos;
      continue;
    }
    break;
  }
  if (!expectChar(Text, Pos, '}'))
    return Expected<EvalRecord>::error("unterminated journal line");
  if (!HavePoint || !HaveMetric || !HaveFailure)
    return Expected<EvalRecord>::error("journal line misses a required key");

  bool KindOk = false;
  FailureKind Kind = parseFailureKind(FailureName, KindOk);
  if (!KindOk)
    return Expected<EvalRecord>::error("unknown failure kind: " + FailureName);

  Expected<Point> P = deserializePoint(PointText, S);
  if (!P.ok())
    return Expected<EvalRecord>::error("journal point does not match space: " +
                                       P.message());

  EvalRecord R;
  R.P = std::move(*P);
  R.Failure = Kind;
  R.Valid = Kind == FailureKind::None;
  R.Metric = R.Valid ? Metric : std::numeric_limits<double>::infinity();
  R.Detail = std::move(Detail);
  return R;
}

Expected<SearchJournal::LoadResult>
SearchJournal::load(const std::string &Path, const Space &S,
                    const JournalHeader *Expect) {
  LoadResult Result;
  FileFormat Format = sniffFormat(Path);
  if (Format == FileFormat::Missing)
    return Result; // a missing journal is an empty journal

  if (Format == FileFormat::Unknown)
    return Expected<LoadResult>::error(
        "journal " + Path +
        ": bad magic at byte 0 — neither a v2 record log nor a v1 JSONL "
        "journal; was the path overwritten by another tool?");

  if (Format == FileFormat::RecordLog) {
    Expected<support::RecordLogScan> ScanOr = support::RecordLog::scan(Path);
    if (!ScanOr.ok())
      return Expected<LoadResult>::error("cannot load journal: " +
                                         ScanOr.message());
    support::RecordLogScan Scan = std::move(*ScanOr);
    if (Scan.MidFileCorruption)
      // Damage with intact records after it: silently resuming from the
      // prefix would replay a different (shorter) history than the run that
      // wrote the journal actually took. Refuse, with the location.
      return Expected<LoadResult>::error(
          "corrupt journal " + Path + ": " + Scan.Why +
          "; records after the damage cannot be trusted — remove the "
          "journal (or restore it from a copy) to proceed");
    if (!Scan.Header.empty()) {
      if (!parseHeader(Scan.Header, Result.Header))
        return Expected<LoadResult>::error(
            "journal " + Path +
            " has an unrecognized header (written by an incompatible "
            "version?); remove it to start fresh");
      if (Expect && !(Result.Header == *Expect))
        return Expected<LoadResult>::error(
            headerMismatchError(Path, Result.Header, *Expect));
    } else if (!Scan.TornTail) {
      return Expected<LoadResult>::error(
          "journal " + Path + " has an empty header; remove it to start "
          "fresh");
    }
    if (Scan.TornTail) {
      Result.DroppedTailLines = 1;
      Result.Warning = "recovered journal " + Path + ": " + Scan.Why +
                       "; dropped the record being written when the run "
                       "died and kept " +
                       std::to_string(Scan.Records.size()) +
                       " intact records";
    }
    for (size_t I = 0; I < Scan.Records.size(); ++I) {
      Expected<EvalRecord> R = decodeLine(Scan.Records[I], S);
      if (!R.ok())
        // The frame's CRC is intact, so this is not disk damage: the
        // journal belongs to another space or another version.
        return Expected<LoadResult>::error(
            "corrupt journal line: record " + std::to_string(I + 1) + " of " +
            Path + ": " + R.message());
      Result.Records.push_back(std::move(*R));
    }
    return Result;
  }

  // Legacy v1: plain JSONL, no header, no checksums. Loaded for migration;
  // the space-membership validation in decodeLine is the only check.
  Result.Legacy = true;
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return Expected<LoadResult>::error("cannot read journal " + Path);
  std::ostringstream Buf;
  Buf << In.rdbuf();
  std::string Text = Buf.str();

  size_t Pos = 0;
  while (Pos < Text.size()) {
    size_t Nl = Text.find('\n', Pos);
    bool TornTail = Nl == std::string::npos;
    std::string Line =
        Text.substr(Pos, TornTail ? std::string::npos : Nl - Pos);
    Pos = TornTail ? Text.size() : Nl + 1;
    if (Line.empty())
      continue;
    Expected<EvalRecord> R = decodeLine(Line, S);
    if (!R.ok()) {
      // A line missing its terminating newline is the one the crashed
      // writer was in the middle of; discard it. Undecodable but complete
      // lines (including points from a different space) are real errors.
      if (TornTail) {
        Result.DroppedTailLines = 1;
        Result.Warning = "recovered legacy journal " + Path +
                         ": dropped a torn final line";
        break;
      }
      return Expected<LoadResult>::error("corrupt journal line: " +
                                         R.message());
    }
    Result.Records.push_back(std::move(*R));
  }
  return Result;
}

} // namespace search
} // namespace locus
