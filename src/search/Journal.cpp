//===- Journal.cpp - Crash-safe search journal ----------------------------===//

#include "src/search/Journal.h"

#include "src/search/PointCodec.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>

#if __has_include(<unistd.h>)
#include <unistd.h>
#define LOCUS_HAVE_FSYNC 1
#endif

namespace locus {
namespace search {

namespace {

void appendEscaped(std::string &Out, std::string_view S) {
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\r':
      Out += "\\r";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
}

/// Parses a JSON string starting at Text[Pos] (which must be '"'); advances
/// Pos past the closing quote.
bool parseJsonString(std::string_view Text, size_t &Pos, std::string &Out) {
  if (Pos >= Text.size() || Text[Pos] != '"')
    return false;
  ++Pos;
  Out.clear();
  while (Pos < Text.size()) {
    char C = Text[Pos];
    if (C == '"') {
      ++Pos;
      return true;
    }
    if (C == '\\') {
      if (Pos + 1 >= Text.size())
        return false;
      char E = Text[Pos + 1];
      Pos += 2;
      switch (E) {
      case '"':
        Out += '"';
        break;
      case '\\':
        Out += '\\';
        break;
      case '/':
        Out += '/';
        break;
      case 'n':
        Out += '\n';
        break;
      case 'r':
        Out += '\r';
        break;
      case 't':
        Out += '\t';
        break;
      case 'u': {
        if (Pos + 4 > Text.size())
          return false;
        unsigned Code = 0;
        auto R = std::from_chars(Text.data() + Pos, Text.data() + Pos + 4,
                                 Code, 16);
        if (R.ec != std::errc() || R.ptr != Text.data() + Pos + 4)
          return false;
        Pos += 4;
        // Journal strings only escape control bytes this way.
        Out += static_cast<char>(Code);
        break;
      }
      default:
        return false;
      }
      continue;
    }
    Out += C;
    ++Pos;
  }
  return false; // unterminated
}

void skipSpace(std::string_view Text, size_t &Pos) {
  while (Pos < Text.size() && (Text[Pos] == ' ' || Text[Pos] == '\t'))
    ++Pos;
}

bool expectChar(std::string_view Text, size_t &Pos, char C) {
  skipSpace(Text, Pos);
  if (Pos >= Text.size() || Text[Pos] != C)
    return false;
  ++Pos;
  return true;
}

bool parseJsonNumber(std::string_view Text, size_t &Pos, double &Out) {
  skipSpace(Text, Pos);
  size_t End = Pos;
  while (End < Text.size() &&
         (std::isdigit(static_cast<unsigned char>(Text[End])) ||
          Text[End] == '-' || Text[End] == '+' || Text[End] == '.' ||
          Text[End] == 'e' || Text[End] == 'E'))
    ++End;
  if (End == Pos)
    return false;
  auto R = std::from_chars(Text.data() + Pos, Text.data() + End, Out);
  if (R.ec != std::errc() || R.ptr != Text.data() + End)
    return false;
  Pos = End;
  return true;
}

} // namespace

JournalSync parseJournalSync(std::string_view Name, bool &Ok) {
  Ok = true;
  if (Name == "none")
    return JournalSync::None;
  if (Name == "flush")
    return JournalSync::Flush;
  if (Name == "full")
    return JournalSync::Full;
  Ok = false;
  return JournalSync::Full;
}

Expected<SearchJournal> SearchJournal::open(const std::string &Path,
                                            JournalSync Sync) {
  std::FILE *F = std::fopen(Path.c_str(), "ab");
  if (!F)
    return Expected<SearchJournal>::error("cannot open journal for append: " +
                                          Path);
  SearchJournal J;
  J.Stream = F;
  J.Sync = Sync;
  return J;
}

void SearchJournal::close() {
  if (Stream) {
    std::fclose(Stream);
    Stream = nullptr;
  }
}

Status SearchJournal::append(const EvalRecord &R) {
  std::string Line = encodeLine(R);
  Line += '\n';
  std::lock_guard<std::mutex> Lock(*AppendMutex);
  if (!Stream)
    return Status::error("journal is not open");
  if (std::fwrite(Line.data(), 1, Line.size(), Stream) != Line.size())
    return Status::error("short write to journal");
  if (Sync == JournalSync::None)
    return Status::success();
  if (std::fflush(Stream) != 0)
    return Status::error("cannot flush journal");
  if (Sync == JournalSync::Full) {
#if LOCUS_HAVE_FSYNC
    // Crash safety: fflush only moves the record into the kernel's page
    // cache — a machine crash between flush and writeback can still tear
    // the tail. fd-level fsync forces the record to stable storage before
    // the search spends more budget on its successors.
    if (fsync(fileno(Stream)) != 0)
      return Status::error("cannot fsync journal");
#endif
  }
  return Status::success();
}

std::string SearchJournal::encodeLine(const EvalRecord &R) {
  std::string Out = "{\"point\":\"";
  appendEscaped(Out, serializePoint(R.P));
  Out += "\",\"metric\":";
  // Failed records carry an infinite sentinel metric that JSON cannot
  // express; the metric is recomputed from the failure kind on replay.
  double Metric = std::isfinite(R.Metric) ? R.Metric : 0;
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.17g", Metric);
  Out += Buf;
  Out += ",\"failure\":\"";
  appendEscaped(Out, failureKindName(R.Failure));
  Out += "\",\"detail\":\"";
  appendEscaped(Out, R.Detail);
  Out += "\"}";
  return Out;
}

Expected<EvalRecord> SearchJournal::decodeLine(const std::string &Line,
                                               const Space &S) {
  std::string_view Text = Line;
  size_t Pos = 0;
  if (!expectChar(Text, Pos, '{'))
    return Expected<EvalRecord>::error("journal line is not a JSON object");

  std::string PointText, FailureName, Detail;
  bool HavePoint = false, HaveMetric = false, HaveFailure = false;
  double Metric = 0;

  while (true) {
    skipSpace(Text, Pos);
    std::string Key;
    if (!parseJsonString(Text, Pos, Key))
      return Expected<EvalRecord>::error("malformed journal key");
    if (!expectChar(Text, Pos, ':'))
      return Expected<EvalRecord>::error("missing ':' in journal line");
    skipSpace(Text, Pos);
    if (Key == "metric") {
      if (!parseJsonNumber(Text, Pos, Metric))
        return Expected<EvalRecord>::error("malformed journal metric");
      HaveMetric = true;
    } else {
      std::string Value;
      if (!parseJsonString(Text, Pos, Value))
        return Expected<EvalRecord>::error("malformed journal value for " +
                                           Key);
      if (Key == "point") {
        PointText = std::move(Value);
        HavePoint = true;
      } else if (Key == "failure") {
        FailureName = std::move(Value);
        HaveFailure = true;
      } else if (Key == "detail") {
        Detail = std::move(Value);
      }
      // Unknown string keys are ignored (forward compatibility).
    }
    skipSpace(Text, Pos);
    if (Pos < Text.size() && Text[Pos] == ',') {
      ++Pos;
      continue;
    }
    break;
  }
  if (!expectChar(Text, Pos, '}'))
    return Expected<EvalRecord>::error("unterminated journal line");
  if (!HavePoint || !HaveMetric || !HaveFailure)
    return Expected<EvalRecord>::error("journal line misses a required key");

  bool KindOk = false;
  FailureKind Kind = parseFailureKind(FailureName, KindOk);
  if (!KindOk)
    return Expected<EvalRecord>::error("unknown failure kind: " + FailureName);

  Expected<Point> P = deserializePoint(PointText, S);
  if (!P.ok())
    return Expected<EvalRecord>::error("journal point does not match space: " +
                                       P.message());

  EvalRecord R;
  R.P = std::move(*P);
  R.Failure = Kind;
  R.Valid = Kind == FailureKind::None;
  R.Metric = R.Valid ? Metric : std::numeric_limits<double>::infinity();
  R.Detail = std::move(Detail);
  return R;
}

Expected<SearchJournal::LoadResult>
SearchJournal::load(const std::string &Path, const Space &S) {
  LoadResult Result;
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return Result; // a missing journal is an empty journal
  std::ostringstream Buf;
  Buf << In.rdbuf();
  std::string Text = Buf.str();

  size_t Pos = 0;
  while (Pos < Text.size()) {
    size_t Nl = Text.find('\n', Pos);
    bool TornTail = Nl == std::string::npos;
    std::string Line =
        Text.substr(Pos, TornTail ? std::string::npos : Nl - Pos);
    Pos = TornTail ? Text.size() : Nl + 1;
    if (Line.empty())
      continue;
    Expected<EvalRecord> R = decodeLine(Line, S);
    if (!R.ok()) {
      // A line missing its terminating newline is the one the crashed
      // writer was in the middle of; discard it. Undecodable but complete
      // lines (including points from a different space) are real errors.
      if (TornTail) {
        Result.DroppedTailLines = 1;
        break;
      }
      return Expected<LoadResult>::error("corrupt journal line: " +
                                         R.message());
    }
    Result.Records.push_back(std::move(*R));
  }
  return Result;
}

} // namespace search
} // namespace locus
