//===- FaultTolerance.cpp - Evaluation guards -----------------------------===//

#include "src/search/FaultTolerance.h"

namespace locus {
namespace search {

EvalOutcome GuardedObjective::assess(const Point &P) {
  std::string Key = P.key();
  {
    std::lock_guard<std::mutex> L(M);
    auto QIt = QuarantineReason.find(Key);
    if (QIt != QuarantineReason.end()) {
      ++Stats.QuarantineRejects;
      return QIt->second;
    }
  }

  // The inner objective runs outside the lock: concurrent pool workers
  // assess distinct points in parallel and only serialize on the guard's
  // bookkeeping.
  EvalOutcome Out = Inner.assess(P);
  for (int Attempt = 0;
       Out.Failure == FailureKind::MetricUnstable &&
       Attempt < Opts.MaxUnstableRetries;
       ++Attempt) {
    {
      std::lock_guard<std::mutex> L(M);
      ++Stats.UnstableRetries;
    }
    Out = Inner.assess(P);
    if (Out.ok()) {
      std::lock_guard<std::mutex> L(M);
      ++Stats.UnstableRecovered;
    }
  }

  std::lock_guard<std::mutex> L(M);
  if (Out.ok()) {
    FailStreak.erase(Key);
    return Out;
  }

  if (Opts.QuarantineThreshold > 0 &&
      ++FailStreak[Key] >= Opts.QuarantineThreshold) {
    ++Stats.QuarantinedPoints;
    Quarantined.insert(Key);
    EvalOutcome Cached = Out;
    Cached.Detail += " [quarantined]";
    QuarantineReason.emplace(Key, std::move(Cached));
    FailStreak.erase(Key);
  }
  return Out;
}

} // namespace search
} // namespace locus
