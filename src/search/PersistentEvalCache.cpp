//===- PersistentEvalCache.cpp - Durable shared evaluation cache ----------===//

#include "src/search/PersistentEvalCache.h"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <limits>
#include <set>

#include <sys/stat.h>

namespace locus {
namespace search {

namespace {

constexpr const char *StoreHeader = "locus-evalcache v1";
constexpr const char *StoreFile = "evalcache.rlog";

/// Escapes the record separators (tab, newline, backslash) so point keys
/// and failure details survive the tab-separated framing.
void appendEscaped(std::string &Out, std::string_view S) {
  for (char C : S) {
    switch (C) {
    case '\\':
      Out += "\\\\";
      break;
    case '\t':
      Out += "\\t";
      break;
    case '\n':
      Out += "\\n";
      break;
    default:
      Out += C;
    }
  }
}

bool unescape(std::string_view S, std::string &Out) {
  Out.clear();
  for (size_t I = 0; I < S.size(); ++I) {
    if (S[I] != '\\') {
      Out += S[I];
      continue;
    }
    if (++I >= S.size())
      return false;
    switch (S[I]) {
    case '\\':
      Out += '\\';
      break;
    case 't':
      Out += '\t';
      break;
    case 'n':
      Out += '\n';
      break;
    default:
      return false;
    }
  }
  return true;
}

bool parseHexU64(std::string_view S, uint64_t &Out) {
  if (S.empty())
    return false;
  auto [Ptr, Ec] = std::from_chars(S.data(), S.data() + S.size(), Out, 16);
  return Ec == std::errc() && Ptr == S.data() + S.size();
}

std::vector<std::string_view> splitTabs(std::string_view S) {
  std::vector<std::string_view> Fields;
  size_t Pos = 0;
  while (true) {
    size_t Tab = S.find('\t', Pos);
    if (Tab == std::string_view::npos) {
      Fields.push_back(S.substr(Pos));
      return Fields;
    }
    Fields.push_back(S.substr(Pos, Tab - Pos));
    Pos = Tab + 1;
  }
}

} // namespace

std::string PersistentEvalCache::storePath(const std::string &Dir) {
  return Dir + "/" + StoreFile;
}

std::string PersistentEvalCache::encodeEntry(const CacheKey &Key,
                                             const std::string &PointKey,
                                             const EvalOutcome &Outcome) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%016llx\t%016llx\t",
                static_cast<unsigned long long>(Key.Lo),
                static_cast<unsigned long long>(Key.Hi));
  std::string Out = Buf;
  Out += failureKindName(Outcome.Failure);
  Out += '\t';
  // Failed outcomes carry an infinite sentinel metric; store 0 and let the
  // decoder recompute it from the failure kind, exactly like the journal.
  double Metric = std::isfinite(Outcome.Metric) ? Outcome.Metric : 0;
  std::snprintf(Buf, sizeof(Buf), "%.17g", Metric);
  Out += Buf;
  Out += '\t';
  appendEscaped(Out, PointKey);
  Out += '\t';
  appendEscaped(Out, Outcome.Detail);
  return Out;
}

bool PersistentEvalCache::decodeEntry(const std::string &Record, CacheKey &Key,
                                      std::string &PointKey,
                                      EvalOutcome &Outcome) {
  std::vector<std::string_view> F = splitTabs(Record);
  if (F.size() != 6)
    return false;
  if (!parseHexU64(F[0], Key.Lo) || !parseHexU64(F[1], Key.Hi))
    return false;
  bool KindOk = false;
  Outcome.Failure = parseFailureKind(std::string(F[2]), KindOk);
  if (!KindOk)
    return false;
  double Metric = 0;
  {
    auto [Ptr, Ec] = std::from_chars(F[3].data(), F[3].data() + F[3].size(),
                                     Metric);
    if (Ec != std::errc() || Ptr != F[3].data() + F[3].size())
      return false;
  }
  Outcome.Metric = Outcome.Failure == FailureKind::None
                       ? Metric
                       : std::numeric_limits<double>::infinity();
  if (!unescape(F[4], PointKey))
    return false;
  return unescape(F[5], Outcome.Detail);
}

PersistentEvalCache::PersistentEvalCache(PersistentCacheOptions Opts,
                                         WarnSink Warn)
    : Opts(std::move(Opts)), Warn(std::move(Warn)) {
  if (this->Opts.Dir.empty()) {
    degrade("no cache directory configured");
    return;
  }
  // mkdir best-effort: an existing directory is fine, anything else is a
  // degradation the open below will also notice.
  ::mkdir(this->Opts.Dir.c_str(), 0755);
  std::string Path = storePath(this->Opts.Dir);

  support::RecordLogScan Scan;
  if (this->Opts.ReadOnly) {
    Expected<support::RecordLogScan> S = support::RecordLog::scan(Path);
    if (!S.ok()) {
      degrade("cannot read cache store: " + S.message());
      return;
    }
    Scan = std::move(*S);
    if (!Scan.Header.empty() && Scan.Header != StoreHeader) {
      degrade("cache store " + Path + " has an unrecognized header '" +
              Scan.Header + "'");
      return;
    }
  } else {
    support::RecordLogOptions LogOpts;
    LogOpts.Header = StoreHeader;
    LogOpts.FsyncEachRecord = this->Opts.FsyncEachRecord;
    Expected<support::RecordLog> L =
        support::RecordLog::open(Path, LogOpts, &Scan);
    if (!L.ok()) {
      degrade("cannot open cache store: " + L.message());
      return;
    }
    Log = std::move(*L);
  }
  if (Scan.TornTail && Scan.TornOffset != 0) {
    Pers.RecoveredTornTail = true;
    warn("cache store " + Path + ": " + Scan.Why +
         "; dropped the damaged tail and kept " +
         std::to_string(Scan.Records.size()) + " intact entries");
  }

  // Preload. First-loaded wins so every process sharing the store resolves
  // duplicate keys identically (append order is the tiebreak).
  uint64_t Malformed = 0;
  for (const std::string &R : Scan.Records) {
    CacheKey Key;
    std::string PointKey;
    EvalOutcome Outcome;
    if (!decodeEntry(R, Key, PointKey, Outcome)) {
      ++Malformed;
      continue;
    }
    if (Mem.insertIfAbsent(Key, PointKey, Outcome))
      ++Pers.LoadedEntries;
  }
  if (Malformed)
    warn("cache store " + Path + ": skipped " + std::to_string(Malformed) +
         " malformed entries (version drift?)");

  // Housekeeping: when racing processes have piled up duplicates, rewrite
  // the store down to the surviving entries with an atomic rename.
  if (!this->Opts.ReadOnly && Log.isOpen() && Scan.Records.size() > 64 &&
      Pers.LoadedEntries * 4 < Scan.Records.size() * 3) {
    std::vector<std::string> Unique;
    std::set<std::pair<uint64_t, uint64_t>> Seen;
    for (const std::string &R : Scan.Records) {
      CacheKey Key;
      std::string PointKey;
      EvalOutcome Outcome;
      if (decodeEntry(R, Key, PointKey, Outcome) &&
          Seen.insert({Key.Lo, Key.Hi}).second)
        Unique.push_back(R);
    }
    if (Status S = Log.compact(Unique); S.ok())
      Pers.Compacted = true;
    else
      warn("cache store compaction failed (continuing uncompacted): " +
           S.message());
  }
}

void PersistentEvalCache::warn(const std::string &Msg) {
  {
    std::lock_guard<std::mutex> L(M);
    ++Pers.Warnings;
  }
  if (Warn)
    Warn(Msg);
  else
    std::fprintf(stderr, "warning: %s\n", Msg.c_str());
}

void PersistentEvalCache::degrade(const std::string &Why) {
  warn("persistent eval cache degraded to in-memory only: " + Why);
  std::lock_guard<std::mutex> L(M);
  Pers.Degraded = true;
  Log.close();
}

std::optional<EvalOutcome>
PersistentEvalCache::lookup(const CacheKey &Key, const std::string &PointKey) {
  return Mem.lookup(Key, PointKey);
}

void PersistentEvalCache::insert(const CacheKey &Key,
                                 const std::string &PointKey,
                                 const EvalOutcome &Outcome) {
  // Unstable measurements are never cached anywhere: the guard's bounded
  // retries must re-measure, and a persisted flaky reading would poison
  // every future tenant.
  if (Outcome.Failure == FailureKind::MetricUnstable)
    return;
  if (!Mem.insertIfAbsent(Key, PointKey, Outcome))
    return; // lost the race; the winner's outcome is already served
  bool DoAppend;
  {
    std::lock_guard<std::mutex> L(M);
    DoAppend = !Opts.ReadOnly && !Pers.Degraded && Log.isOpen();
  }
  if (!DoAppend)
    return;
  Status S = Log.append(encodeEntry(Key, PointKey, Outcome));
  if (!S.ok()) {
    // Disk full, revoked mount, ... — keep searching on memory alone.
    degrade("append failed: " + S.message());
    return;
  }
  std::lock_guard<std::mutex> L(M);
  ++Pers.AppendedEntries;
}

EvalCacheStats PersistentEvalCache::stats() const { return Mem.stats(); }

PersistentCacheStats PersistentEvalCache::persistentStats() const {
  std::lock_guard<std::mutex> L(M);
  return Pers;
}

} // namespace search
} // namespace locus
