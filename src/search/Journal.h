//===- Journal.h - Crash-safe search journal --------------------*- C++ -*-===//
///
/// \file
/// An append-only JSONL journal of evaluation records. Long tuning runs die
/// — machines reboot, jobs hit walltime, evaluators wedge — and without a
/// journal every assessed variant is lost with them. Each fresh evaluation
/// is appended as one JSON line and pushed toward stable storage per the
/// configurable JournalSync policy (fflush + fd-level fsync by default), so
/// at most the line being written when the process died is lost.
/// SearchJournal::load tolerates exactly that: a torn final line (no
/// terminating newline) is discarded and the resume continues from the
/// intact prefix; corruption anywhere else is an error.
///
/// Line schema (one EvalRecord):
///   {"point":"<serialized point>","metric":<double>,
///    "failure":"<FailureKind name>","detail":"<string>"}
///
/// Loaded records feed SearchOptions::Replay, which replays the interrupted
/// run's trajectory through the searcher before fresh evaluations resume.
///
//===----------------------------------------------------------------------===//
#ifndef LOCUS_SEARCH_JOURNAL_H
#define LOCUS_SEARCH_JOURNAL_H

#include "src/search/Search.h"
#include "src/support/Error.h"

#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace locus {
namespace search {

/// How far append() pushes each record toward stable storage before
/// returning. Durability and throughput trade off: Full survives a machine
/// crash (power loss, kernel panic) at one fsync per record; Flush survives
/// a process crash (the libc buffer reaches the kernel, writeback is
/// asynchronous); None leaves records in the stdio buffer until it fills.
enum class JournalSync : uint8_t {
  None,  ///< buffered writes only (fastest; testing / throwaway runs)
  Flush, ///< fflush to the kernel per record (process-crash safe)
  Full,  ///< fflush + fsync per record (machine-crash safe; the default)
};

/// Parses a sync-mode name ("none", "flush", "full"); sets Ok=false (and
/// returns Full) on unknown names.
JournalSync parseJournalSync(std::string_view Name, bool &Ok);

class SearchJournal {
public:
  SearchJournal() = default;
  ~SearchJournal() { close(); }
  SearchJournal(SearchJournal &&Other) noexcept
      : Stream(Other.Stream), Sync(Other.Sync) {
    Other.Stream = nullptr;
  }
  SearchJournal &operator=(SearchJournal &&Other) noexcept {
    if (this != &Other) {
      close();
      Stream = Other.Stream;
      Sync = Other.Sync;
      Other.Stream = nullptr;
    }
    return *this;
  }
  SearchJournal(const SearchJournal &) = delete;
  SearchJournal &operator=(const SearchJournal &) = delete;

  /// Opens \p Path for appending, creating it when absent.
  static Expected<SearchJournal> open(const std::string &Path,
                                      JournalSync Sync = JournalSync::Full);

  /// Appends one record as a JSON line and pushes it toward stable storage
  /// per the configured JournalSync. Internally serialized: concurrent
  /// callers append whole lines in call order (the search loop commits
  /// batch results in proposal order, so journal order equals trajectory
  /// order even with a parallel evaluation pool).
  Status append(const EvalRecord &R);

  bool isOpen() const { return Stream != nullptr; }
  void close();

  struct LoadResult {
    std::vector<EvalRecord> Records;
    /// Number of discarded torn tail lines (0 or 1): the line the crashed
    /// writer was in the middle of.
    int DroppedTailLines = 0;
  };

  /// Loads a journal and validates every point against \p Space. A missing
  /// file or an empty file loads as zero records. A record whose point does
  /// not pin the space (a journal written for a different space) is an
  /// error, as is corruption anywhere but the final line.
  static Expected<LoadResult> load(const std::string &Path, const Space &S);

  /// Encodes one record as a JSON line (no trailing newline).
  static std::string encodeLine(const EvalRecord &R);

  /// Decodes one JSON line; the point is validated against \p Space.
  static Expected<EvalRecord> decodeLine(const std::string &Line,
                                         const Space &S);

private:
  std::FILE *Stream = nullptr;
  JournalSync Sync = JournalSync::Full;
  /// Serializes append(); shared_ptr keeps the journal movable.
  std::shared_ptr<std::mutex> AppendMutex = std::make_shared<std::mutex>();
};

} // namespace search
} // namespace locus

#endif // LOCUS_SEARCH_JOURNAL_H
