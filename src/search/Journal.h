//===- Journal.h - Crash-safe search journal --------------------*- C++ -*-===//
///
/// \file
/// An append-only journal of evaluation records. Long tuning runs die —
/// machines reboot, jobs hit walltime, evaluators wedge — and without a
/// journal every assessed variant is lost with them. Each fresh evaluation
/// is appended as one JSON payload inside a CRC32C-framed record
/// (support::RecordLog) and pushed toward stable storage per the
/// configurable JournalSync policy, so at most the record being written
/// when the process died is lost.
///
/// The v2 format puts a header in front of the records carrying a
/// fingerprint of the search space and a digest of the search configuration
/// (searcher name + seed). --resume refuses a journal whose header does not
/// match the current run with a located diagnostic, instead of silently
/// replaying an unrelated run's history into the wrong space. Integrity is
/// checked per record: a torn *tail* (the frame a crashed writer was in the
/// middle of) is discarded with a warning and the resume continues from the
/// intact prefix; a CRC mismatch anywhere earlier is damage and a hard
/// error naming the byte offset. v1 journals (plain JSONL, no header, no
/// checksums) are still loaded, and an open() over one migrates it to v2
/// with an atomic rewrite.
///
/// Record payload schema (one EvalRecord, unchanged from v1):
///   {"point":"<serialized point>","metric":<double>,
///    "failure":"<FailureKind name>","detail":"<string>"}
///
/// Loaded records feed SearchOptions::Replay, which replays the interrupted
/// run's trajectory through the searcher before fresh evaluations resume.
///
//===----------------------------------------------------------------------===//
#ifndef LOCUS_SEARCH_JOURNAL_H
#define LOCUS_SEARCH_JOURNAL_H

#include "src/search/Search.h"
#include "src/support/Error.h"
#include "src/support/RecordLog.h"

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace locus {
namespace search {

/// How far append() pushes each record toward stable storage before
/// returning. Appends are unbuffered fd writes, so None and Flush both
/// reach the kernel per record (process-crash safe); Full additionally
/// fsyncs per record and survives a machine crash (power loss, panic).
enum class JournalSync : uint8_t {
  None,  ///< kernel-buffered writes (process-crash safe)
  Flush, ///< same as None in the fd-backed v2 format (kept for the CLI)
  Full,  ///< fsync per record (machine-crash safe; the default)
};

/// Parses a sync-mode name ("none", "flush", "full"); sets Ok=false (and
/// returns Full) on unknown names.
JournalSync parseJournalSync(std::string_view Name, bool &Ok);

/// Identity of the run a journal belongs to, stored in the v2 header.
struct JournalHeader {
  /// search::Space::fingerprint() of the space the journaled points pin.
  uint64_t SpaceFingerprint = 0;
  /// journalConfigDigest() of the searcher configuration.
  uint64_t ConfigDigest = 0;

  bool operator==(const JournalHeader &O) const {
    return SpaceFingerprint == O.SpaceFingerprint &&
           ConfigDigest == O.ConfigDigest;
  }
};

/// Digest of the search configuration knobs that determine a trajectory.
/// Budget and --jobs are deliberately excluded: a resume legitimately runs
/// with a larger budget, and N-job runs are trajectory-identical to serial
/// ones, so neither invalidates a journal.
uint64_t journalConfigDigest(std::string_view SearcherName, uint64_t Seed);

class SearchJournal {
public:
  SearchJournal() = default;
  SearchJournal(SearchJournal &&) noexcept = default;
  SearchJournal &operator=(SearchJournal &&) noexcept = default;
  SearchJournal(const SearchJournal &) = delete;
  SearchJournal &operator=(const SearchJournal &) = delete;

  /// Opens \p Path for appending, creating it (with \p Header) when absent.
  /// An existing v2 journal is verified — magic, CRCs, header equality with
  /// \p Header — and a torn tail is truncated away. An existing v1 (plain
  /// JSONL) journal is migrated to v2 via an atomic rewrite when
  /// \p MigrateRecords carries its already-loaded records (pass the result
  /// of load()); without them, a v1 file is an error directing the caller
  /// to --resume or remove it.
  static Expected<SearchJournal>
  open(const std::string &Path, JournalSync Sync = JournalSync::Full,
       const JournalHeader &Header = {},
       const std::vector<EvalRecord> *MigrateRecords = nullptr);

  /// Appends one record and pushes it toward stable storage per the
  /// configured JournalSync. Internally serialized: concurrent callers
  /// append whole records in call order (the search loop commits batch
  /// results in proposal order, so journal order equals trajectory order
  /// even with a parallel evaluation pool).
  Status append(const EvalRecord &R);

  bool isOpen() const { return Log.isOpen(); }
  void close() { Log.close(); }

  struct LoadResult {
    std::vector<EvalRecord> Records;
    /// Number of discarded torn tail records (0 or 1): the record the
    /// crashed writer was in the middle of.
    int DroppedTailLines = 0;
    /// Human-readable description of the recovery when DroppedTailLines.
    std::string Warning;
    /// Header of a v2 journal; zeroed for legacy files.
    JournalHeader Header;
    /// True when the file was a v1 plain-JSONL journal.
    bool Legacy = false;
  };

  /// Loads a journal and validates every point against \p Space. A missing
  /// file loads as zero records. Refused with a located, actionable error:
  /// bad magic, a CRC mismatch before the tail, an undecodable record, a
  /// point from another space, or (when \p Expect is non-null) a header
  /// whose fingerprint/digest differs from the current run.
  static Expected<LoadResult> load(const std::string &Path, const Space &S,
                                   const JournalHeader *Expect = nullptr);

  /// Encodes one record as a JSON payload (no framing, no newline).
  static std::string encodeLine(const EvalRecord &R);

  /// Decodes one JSON payload; the point is validated against \p Space.
  static Expected<EvalRecord> decodeLine(const std::string &Line,
                                         const Space &S);

  /// (De)serializes the v2 header payload ("locus-journal v2\nspace=...").
  static std::string encodeHeader(const JournalHeader &H);
  static bool parseHeader(std::string_view Text, JournalHeader &H);

private:
  support::RecordLog Log;
};

} // namespace search
} // namespace locus

#endif // LOCUS_SEARCH_JOURNAL_H
