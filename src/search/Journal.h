//===- Journal.h - Crash-safe search journal --------------------*- C++ -*-===//
///
/// \file
/// An append-only JSONL journal of evaluation records. Long tuning runs die
/// — machines reboot, jobs hit walltime, evaluators wedge — and without a
/// journal every assessed variant is lost with them. Each fresh evaluation
/// is appended as one JSON line and flushed (fflush + fsync) before the
/// search continues, so at most the line being written when the process
/// died is lost. SearchJournal::load tolerates exactly that: a torn final
/// line is discarded; corruption anywhere else is an error.
///
/// Line schema (one EvalRecord):
///   {"point":"<serialized point>","metric":<double>,
///    "failure":"<FailureKind name>","detail":"<string>"}
///
/// Loaded records feed SearchOptions::Replay, which replays the interrupted
/// run's trajectory through the searcher before fresh evaluations resume.
///
//===----------------------------------------------------------------------===//
#ifndef LOCUS_SEARCH_JOURNAL_H
#define LOCUS_SEARCH_JOURNAL_H

#include "src/search/Search.h"
#include "src/support/Error.h"

#include <cstdio>
#include <string>
#include <vector>

namespace locus {
namespace search {

class SearchJournal {
public:
  SearchJournal() = default;
  ~SearchJournal() { close(); }
  SearchJournal(SearchJournal &&Other) noexcept : Stream(Other.Stream) {
    Other.Stream = nullptr;
  }
  SearchJournal &operator=(SearchJournal &&Other) noexcept {
    if (this != &Other) {
      close();
      Stream = Other.Stream;
      Other.Stream = nullptr;
    }
    return *this;
  }
  SearchJournal(const SearchJournal &) = delete;
  SearchJournal &operator=(const SearchJournal &) = delete;

  /// Opens \p Path for appending, creating it when absent.
  static Expected<SearchJournal> open(const std::string &Path);

  /// Appends one record as a JSON line and forces it to stable storage.
  Status append(const EvalRecord &R);

  bool isOpen() const { return Stream != nullptr; }
  void close();

  struct LoadResult {
    std::vector<EvalRecord> Records;
    /// Number of discarded torn tail lines (0 or 1): the line the crashed
    /// writer was in the middle of.
    int DroppedTailLines = 0;
  };

  /// Loads a journal and validates every point against \p Space. A missing
  /// file or an empty file loads as zero records. A record whose point does
  /// not pin the space (a journal written for a different space) is an
  /// error, as is corruption anywhere but the final line.
  static Expected<LoadResult> load(const std::string &Path, const Space &S);

  /// Encodes one record as a JSON line (no trailing newline).
  static std::string encodeLine(const EvalRecord &R);

  /// Decodes one JSON line; the point is validated against \p Space.
  static Expected<EvalRecord> decodeLine(const std::string &Line,
                                         const Space &S);

private:
  std::FILE *Stream = nullptr;
};

} // namespace search
} // namespace locus

#endif // LOCUS_SEARCH_JOURNAL_H
