//===- PointCodec.cpp - Point (de)serialization ---------------------------===//

#include "src/search/PointCodec.h"

#include "src/support/StringUtils.h"

#include <charconv>
#include <sstream>

namespace locus {
namespace search {

namespace {

/// Full-consumption integer parse; rejects empty and trailing garbage.
bool parseInt64(std::string_view S, int64_t &Out) {
  if (S.empty())
    return false;
  const char *Begin = S.data(), *End = S.data() + S.size();
  auto R = std::from_chars(Begin, End, Out);
  return R.ec == std::errc() && R.ptr == End;
}

bool parseDouble(std::string_view S, double &Out) {
  if (S.empty())
    return false;
  const char *Begin = S.data(), *End = S.data() + S.size();
  auto R = std::from_chars(Begin, End, Out);
  return R.ec == std::errc() && R.ptr == End;
}

} // namespace

std::string serializePoint(const Point &P) {
  std::ostringstream Out;
  for (const auto &[Id, V] : P.Values) {
    Out << Id << " = ";
    if (const auto *I = std::get_if<int64_t>(&V))
      Out << "i:" << *I;
    else if (const auto *D = std::get_if<double>(&V))
      Out << "f:" << *D;
    else if (const auto *S = std::get_if<std::string>(&V))
      Out << "s:" << *S;
    else if (const auto *Perm = std::get_if<std::vector<int>>(&V)) {
      Out << "p:";
      for (size_t I = 0; I < Perm->size(); ++I)
        Out << (I ? "," : "") << (*Perm)[I];
    }
    Out << "\n";
  }
  return Out.str();
}

Expected<Point> deserializePoint(const std::string &Text, const Space &Space) {
  Point P;
  for (const std::string &Line : splitString(Text, '\n')) {
    std::string_view Trimmed = trimString(Line);
    if (Trimmed.empty())
      continue;
    size_t Eq = Trimmed.find(" = ");
    if (Eq == std::string_view::npos)
      return Expected<Point>::error("malformed point line: " + Line);
    std::string Id(Trimmed.substr(0, Eq));
    std::string_view Rest = Trimmed.substr(Eq + 3);
    if (Rest.size() < 2 || Rest[1] != ':')
      return Expected<Point>::error("malformed point value: " + Line);
    char Tag = Rest[0];
    std::string_view Body = Rest.substr(2);
    if (Tag == 'i') {
      int64_t I = 0;
      if (!parseInt64(Body, I))
        return Expected<Point>::error("malformed integer value: " + Line);
      P.Values[Id] = I;
    } else if (Tag == 'f') {
      double D = 0;
      if (!parseDouble(Body, D))
        return Expected<Point>::error("malformed float value: " + Line);
      P.Values[Id] = D;
    } else if (Tag == 's') {
      P.Values[Id] = std::string(Body);
    } else if (Tag == 'p') {
      std::vector<int> Perm;
      for (const std::string &Part : splitString(Body, ',')) {
        if (Part.empty())
          continue;
        int64_t Entry = 0;
        if (!parseInt64(Part, Entry))
          return Expected<Point>::error("malformed permutation entry '" +
                                        Part + "': " + Line);
        Perm.push_back(static_cast<int>(Entry));
      }
      P.Values[Id] = std::move(Perm);
    } else {
      return Expected<Point>::error("unknown point value tag: " + Line);
    }
  }
  // Sanity: every space parameter should be pinned.
  for (const ParamDef &Def : Space.Params)
    if (!P.Values.count(Def.Id))
      return Expected<Point>::error("point does not pin " + Def.Id);
  return P;
}

} // namespace search
} // namespace locus
