//===- EvalPool.cpp - Worker pool for parallel point evaluation -----------===//

#include "src/search/EvalPool.h"

#include <algorithm>

namespace locus {
namespace search {

EvalPool::EvalPool(int Jobs) : JobCount(std::max(1, Jobs)) {
  // The caller participates in run(), so a pool of N jobs needs N-1 threads.
  for (int I = 0; I + 1 < JobCount; ++I)
    Workers.emplace_back([this](std::stop_token Stop) { workerLoop(Stop); });
}

EvalPool::~EvalPool() = default; // jthread requests stop and joins

void EvalPool::run(size_t N, const std::function<void(size_t)> &Job) {
  if (N == 0)
    return;
  if (Workers.empty()) {
    for (size_t I = 0; I < N; ++I)
      Job(I);
    return;
  }
  {
    std::unique_lock<std::mutex> L(M);
    Fn = &Job;
    JobSize = N;
    NextIndex = 0;
    Remaining = N;
  }
  WorkCv.notify_all();

  // Claim indices alongside the workers.
  for (;;) {
    size_t I;
    {
      std::unique_lock<std::mutex> L(M);
      if (NextIndex >= JobSize)
        break;
      I = NextIndex++;
    }
    Job(I);
    std::unique_lock<std::mutex> L(M);
    if (--Remaining == 0)
      DoneCv.notify_all();
  }

  std::unique_lock<std::mutex> L(M);
  DoneCv.wait(L, [&] { return Remaining == 0; });
  Fn = nullptr;
}

void EvalPool::workerLoop(std::stop_token Stop) {
  std::unique_lock<std::mutex> L(M);
  for (;;) {
    if (!WorkCv.wait(L, Stop, [&] { return Fn && NextIndex < JobSize; }))
      return; // stop requested during shutdown
    while (Fn && NextIndex < JobSize) {
      size_t I = NextIndex++;
      const std::function<void(size_t)> *Job = Fn;
      L.unlock();
      (*Job)(I);
      L.lock();
      if (--Remaining == 0)
        DoneCv.notify_all();
    }
  }
}

} // namespace search
} // namespace locus
