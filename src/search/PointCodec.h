//===- PointCodec.h - Point (de)serialization -------------------*- C++ -*-===//
///
/// \file
/// Textual encoding of search points: one "id = tag:body" line per pinned
/// parameter (i: int64, f: double, s: string, p: comma-separated
/// permutation). This is the shippable pinned-recipe format of Section II
/// and the point payload inside journal lines. Parsing is strict — every
/// numeric body must consume fully via std::from_chars; malformed input
/// yields an error instead of a silently-wrong point.
///
//===----------------------------------------------------------------------===//
#ifndef LOCUS_SEARCH_POINTCODEC_H
#define LOCUS_SEARCH_POINTCODEC_H

#include "src/search/Space.h"
#include "src/support/Error.h"

#include <string>

namespace locus {
namespace search {

/// Serializes a point as "id = tag:body" lines.
std::string serializePoint(const Point &P);

/// Parses a serialized point back and checks that every parameter of
/// \p Space is pinned. Extra ids are preserved (a point may pin more than
/// the space being validated against, e.g. an empty probe space).
Expected<Point> deserializePoint(const std::string &Text, const Space &Space);

} // namespace search
} // namespace locus

#endif // LOCUS_SEARCH_POINTCODEC_H
