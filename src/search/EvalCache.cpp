//===- EvalCache.cpp - Content-addressed evaluation cache -----------------===//

#include "src/search/EvalCache.h"

#include "src/support/Hashing.h"

namespace locus {
namespace search {

CacheKey makeCacheKey(std::string_view VariantText) {
  CacheKey Key;
  Key.Lo = fnv1a(VariantText);
  // Distinct offset basis (FNV-1a 64 offset with flipped low bits) gives an
  // independent second stream over the same bytes; length-mixing separates
  // prefix-related texts even if both streams ever coincided.
  Key.Hi = hashCombine(fnv1a(VariantText, 0x84222325cbf29ce4ULL),
                       static_cast<uint64_t>(VariantText.size()));
  return Key;
}

std::optional<EvalOutcome> EvalCache::lookup(const CacheKey &Key,
                                             const std::string &PointKey) {
  std::lock_guard<std::mutex> L(M);
  auto It = Map.find(Key);
  if (It == Map.end()) {
    ++Stats.Misses;
    return std::nullopt;
  }
  ++Stats.Hits;
  if (It->second.FirstPointKey != PointKey)
    ++Stats.DedupSaves;
  return It->second.Outcome;
}

void EvalCache::insert(const CacheKey &Key, const std::string &PointKey,
                       const EvalOutcome &Outcome) {
  (void)insertIfAbsent(Key, PointKey, Outcome);
}

bool EvalCache::insertIfAbsent(const CacheKey &Key, const std::string &PointKey,
                               const EvalOutcome &Outcome) {
  std::lock_guard<std::mutex> L(M);
  auto [It, Inserted] = Map.try_emplace(Key, Entry{Outcome, PointKey});
  (void)It;
  if (Inserted)
    ++Stats.Entries;
  return Inserted;
}

EvalCacheStats EvalCache::stats() const {
  std::lock_guard<std::mutex> L(M);
  return Stats;
}

} // namespace search
} // namespace locus
