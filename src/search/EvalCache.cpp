//===- EvalCache.cpp - Content-addressed evaluation cache -----------------===//

#include "src/search/EvalCache.h"

namespace locus {
namespace search {

std::optional<EvalOutcome> EvalCache::lookup(uint64_t VariantHash,
                                             const std::string &PointKey) {
  std::lock_guard<std::mutex> L(M);
  auto It = Map.find(VariantHash);
  if (It == Map.end()) {
    ++Stats.Misses;
    return std::nullopt;
  }
  ++Stats.Hits;
  if (It->second.FirstPointKey != PointKey)
    ++Stats.DedupSaves;
  return It->second.Outcome;
}

void EvalCache::insert(uint64_t VariantHash, const std::string &PointKey,
                       const EvalOutcome &Outcome) {
  std::lock_guard<std::mutex> L(M);
  auto [It, Inserted] = Map.try_emplace(VariantHash, Entry{Outcome, PointKey});
  (void)It;
  if (Inserted)
    ++Stats.Entries;
}

EvalCacheStats EvalCache::stats() const {
  std::lock_guard<std::mutex> L(M);
  return Stats;
}

} // namespace search
} // namespace locus
