//===- EvalCache.h - Content-addressed evaluation cache ---------*- C++ -*-===//
///
/// \file
/// A thread-safe cache of evaluation outcomes keyed by the content hash of
/// the *transformed* variant, not by the proposed point. Distinct points
/// frequently materialize to the same variant — a tile size clamped to the
/// loop extent, an unroll factor that degenerates to a no-op, an OR arm
/// whose parameters are dead in the chosen branch — and the simulator metric
/// of a given variant is deterministic, so evaluating the variant once and
/// serving every later structurally-identical materialization from the
/// cache changes nothing about the search trajectory while skipping the
/// most expensive stage (compile + simulate). Point-level duplicate
/// memoization falls out for free: a duplicate point hashes to the same
/// variant by construction.
///
/// Keys are 128 bits — two independently-seeded FNV-1a halves, the second
/// additionally mixed with the program-text length. A single 64-bit hash is
/// fine for one run's few thousand variants, but entries now persist across
/// runs and tenants (see PersistentEvalCache): at hundreds of millions of
/// accumulated variants the 64-bit birthday bound makes a silent collision
/// — one program served another's metric — a real event, while 128 bits
/// keep it vanishingly improbable at any plausible store size.
///
/// The cache stores the first point key evaluated for each variant hash, so
/// hits can be classified as same-point duplicates vs. genuine cross-point
/// dedup saves.
///
//===----------------------------------------------------------------------===//
#ifndef LOCUS_SEARCH_EVALCACHE_H
#define LOCUS_SEARCH_EVALCACHE_H

#include "src/search/Search.h"

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>

namespace locus {
namespace search {

/// 128-bit content key of a materialized variant.
struct CacheKey {
  uint64_t Lo = 0;
  uint64_t Hi = 0;
  bool operator==(const CacheKey &O) const { return Lo == O.Lo && Hi == O.Hi; }
  bool operator!=(const CacheKey &O) const { return !(*this == O); }
};

/// Derives the 128-bit key from the unparsed variant text: two FNV-1a
/// passes with distinct offset bases, the high half mixed with the text
/// length so even a (hypothetical) simultaneous collision of both streams
/// still separates different-sized programs.
CacheKey makeCacheKey(std::string_view VariantText);

struct CacheKeyHash {
  size_t operator()(const CacheKey &K) const {
    // Lo is already a high-quality 64-bit hash; fold in Hi cheaply.
    return static_cast<size_t>(K.Lo ^ (K.Hi * 0x9e3779b97f4a7c15ULL));
  }
};

/// Observability counters for the cache (all monotonic).
struct EvalCacheStats {
  uint64_t Hits = 0;       ///< lookups served from the cache
  uint64_t Misses = 0;     ///< lookups that had to evaluate
  uint64_t DedupSaves = 0; ///< of Hits, those whose point key differed from
                           ///< the point that populated the entry (distinct
                           ///< points, same materialized variant)
  uint64_t Entries = 0;    ///< variants currently cached
};

/// The interface the driver's objective talks to: the plain in-memory cache
/// and the persistent on-disk cache are interchangeable behind it.
class VariantOutcomeCache {
public:
  virtual ~VariantOutcomeCache() = default;

  /// Returns the cached outcome for a variant key, or nullopt on a miss.
  /// \p PointKey (the canonical key of the point being assessed) is used
  /// only to classify a hit as a cross-point dedup save.
  virtual std::optional<EvalOutcome> lookup(const CacheKey &Key,
                                            const std::string &PointKey) = 0;

  /// Records the outcome for a variant key. The first writer wins; a
  /// concurrent duplicate insert (two workers racing on the same variant)
  /// is dropped, keeping served outcomes consistent.
  virtual void insert(const CacheKey &Key, const std::string &PointKey,
                      const EvalOutcome &Outcome) = 0;

  virtual EvalCacheStats stats() const = 0;
};

/// Thread-safe content-addressed outcome cache (process-local).
class EvalCache : public VariantOutcomeCache {
public:
  std::optional<EvalOutcome> lookup(const CacheKey &Key,
                                    const std::string &PointKey) override;

  void insert(const CacheKey &Key, const std::string &PointKey,
              const EvalOutcome &Outcome) override;

  /// insert() that reports whether the entry was new — the persistent layer
  /// uses this to append exactly the entries that won the race.
  bool insertIfAbsent(const CacheKey &Key, const std::string &PointKey,
                      const EvalOutcome &Outcome);

  EvalCacheStats stats() const override;

private:
  struct Entry {
    EvalOutcome Outcome;
    std::string FirstPointKey;
  };
  mutable std::mutex M;
  std::unordered_map<CacheKey, Entry, CacheKeyHash> Map;
  EvalCacheStats Stats;
};

} // namespace search
} // namespace locus

#endif // LOCUS_SEARCH_EVALCACHE_H
