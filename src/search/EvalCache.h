//===- EvalCache.h - Content-addressed evaluation cache ---------*- C++ -*-===//
///
/// \file
/// A thread-safe cache of evaluation outcomes keyed by the content hash of
/// the *transformed* variant, not by the proposed point. Distinct points
/// frequently materialize to the same variant — a tile size clamped to the
/// loop extent, an unroll factor that degenerates to a no-op, an OR arm
/// whose parameters are dead in the chosen branch — and the simulator metric
/// of a given variant is deterministic, so evaluating the variant once and
/// serving every later structurally-identical materialization from the
/// cache changes nothing about the search trajectory while skipping the
/// most expensive stage (compile + simulate). Point-level duplicate
/// memoization falls out for free: a duplicate point hashes to the same
/// variant by construction.
///
/// The cache stores the first point key evaluated for each variant hash, so
/// hits can be classified as same-point duplicates vs. genuine cross-point
/// dedup saves.
///
//===----------------------------------------------------------------------===//
#ifndef LOCUS_SEARCH_EVALCACHE_H
#define LOCUS_SEARCH_EVALCACHE_H

#include "src/search/Search.h"

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

namespace locus {
namespace search {

/// Observability counters for the cache (all monotonic).
struct EvalCacheStats {
  uint64_t Hits = 0;       ///< lookups served from the cache
  uint64_t Misses = 0;     ///< lookups that had to evaluate
  uint64_t DedupSaves = 0; ///< of Hits, those whose point key differed from
                           ///< the point that populated the entry (distinct
                           ///< points, same materialized variant)
  uint64_t Entries = 0;    ///< variants currently cached
};

/// Thread-safe content-addressed outcome cache.
class EvalCache {
public:
  /// Returns the cached outcome for a variant hash, or nullopt on a miss.
  /// \p PointKey (the canonical key of the point being assessed) is used
  /// only to classify a hit as a cross-point dedup save.
  std::optional<EvalOutcome> lookup(uint64_t VariantHash,
                                    const std::string &PointKey);

  /// Records the outcome for a variant hash. The first writer wins; a
  /// concurrent duplicate insert (two workers racing on the same variant)
  /// is dropped, keeping served outcomes consistent.
  void insert(uint64_t VariantHash, const std::string &PointKey,
              const EvalOutcome &Outcome);

  EvalCacheStats stats() const;

private:
  struct Entry {
    EvalOutcome Outcome;
    std::string FirstPointKey;
  };
  mutable std::mutex M;
  std::unordered_map<uint64_t, Entry> Map;
  EvalCacheStats Stats;
};

} // namespace search
} // namespace locus

#endif // LOCUS_SEARCH_EVALCACHE_H
