//===- Space.cpp - Optimization search space ----------------------------------===//

#include "src/search/Space.h"

#include "src/support/Hashing.h"
#include "src/support/StringUtils.h"

#include <cassert>
#include <limits>
#include <sstream>

namespace locus {
namespace search {

namespace {

uint64_t saturatingMul(uint64_t A, uint64_t B) {
  if (A == 0 || B == 0)
    return 0;
  if (A > std::numeric_limits<uint64_t>::max() / B)
    return std::numeric_limits<uint64_t>::max();
  return A * B;
}

uint64_t factorial(int N) {
  uint64_t F = 1;
  for (int I = 2; I <= N; ++I)
    F = saturatingMul(F, static_cast<uint64_t>(I));
  return F;
}

int log2FloorPositive(int64_t X) {
  int L = 0;
  while (X > 1) {
    X >>= 1;
    ++L;
  }
  return L;
}

} // namespace

uint64_t ParamDef::cardinality() const {
  switch (Kind) {
  case ParamKind::Enum:
    return Options.empty() ? 1 : Options.size();
  case ParamKind::Bool:
    return 2;
  case ParamKind::IntRange:
    return Max < Min ? 1 : static_cast<uint64_t>(Max - Min + 1);
  case ParamKind::Pow2: {
    if (Max < Min || Min < 1)
      return 1;
    return static_cast<uint64_t>(log2FloorPositive(Max) -
                                 log2FloorPositive(Min) + 1);
  }
  case ParamKind::LogInt: {
    // Log-spaced candidates: powers-of-two density approximation.
    if (Max < Min || Min < 1)
      return 1;
    return static_cast<uint64_t>(log2FloorPositive(Max) -
                                 log2FloorPositive(Min) + 1) *
           2;
  }
  case ParamKind::FloatRange:
  case ParamKind::LogFloat:
    return 1000; // nominal discretization
  case ParamKind::Permutation:
    return factorial(PermSize);
  }
  return 1;
}

int64_t Point::getInt(const std::string &Id) const {
  auto It = Values.find(Id);
  assert(It != Values.end() && "parameter missing from point");
  return std::get<int64_t>(It->second);
}

double Point::getFloat(const std::string &Id) const {
  auto It = Values.find(Id);
  assert(It != Values.end() && "parameter missing from point");
  if (const auto *I = std::get_if<int64_t>(&It->second))
    return static_cast<double>(*I);
  return std::get<double>(It->second);
}

const std::string &Point::getString(const std::string &Id) const {
  auto It = Values.find(Id);
  assert(It != Values.end() && "parameter missing from point");
  return std::get<std::string>(It->second);
}

const std::vector<int> &Point::getPerm(const std::string &Id) const {
  auto It = Values.find(Id);
  assert(It != Values.end() && "parameter missing from point");
  return std::get<std::vector<int>>(It->second);
}

std::string Point::key() const {
  std::ostringstream Out;
  for (const auto &[Id, V] : Values) {
    Out << Id << '=';
    if (const auto *I = std::get_if<int64_t>(&V))
      Out << *I;
    else if (const auto *D = std::get_if<double>(&V))
      Out << *D;
    else if (const auto *S = std::get_if<std::string>(&V))
      Out << *S;
    else if (const auto *P = std::get_if<std::vector<int>>(&V)) {
      for (int X : *P)
        Out << X << ',';
    }
    Out << ';';
  }
  return Out.str();
}

const ParamDef *Space::find(const std::string &Id) const {
  for (const ParamDef &P : Params)
    if (P.Id == Id)
      return &P;
  return nullptr;
}

uint64_t Space::fullSize() const {
  uint64_t Size = 1;
  for (const ParamDef &P : Params)
    Size = saturatingMul(Size, P.cardinality());
  return Size;
}

uint64_t Space::valueSize() const {
  uint64_t Size = 1;
  for (const ParamDef &P : Params) {
    if (startsWith(P.Label, "or:") || startsWith(P.Label, "opt:"))
      continue;
    Size = saturatingMul(Size, P.cardinality());
  }
  return Size;
}

uint64_t Space::fingerprint() const {
  // Field separators (the 0x1f units below) keep adjacent strings from
  // concatenating into the same byte stream ("ab","c" vs "a","bc").
  uint64_t H = fnv1a("locus-space-v1");
  auto MixStr = [&H](const std::string &S) {
    H = hashCombine(H, fnv1a(S));
    H = hashCombine(H, 0x1f);
  };
  auto MixInt = [&H](uint64_t V) { H = hashCombine(H, V); };
  MixInt(Params.size());
  for (const ParamDef &P : Params) {
    MixStr(P.Id);
    MixStr(P.Label);
    MixInt(static_cast<uint64_t>(P.Kind));
    MixInt(P.Options.size());
    for (const std::string &O : P.Options)
      MixStr(O);
    MixInt(static_cast<uint64_t>(P.Min));
    MixInt(static_cast<uint64_t>(P.Max));
    MixInt(fnv1a(std::to_string(P.FMin)));
    MixInt(fnv1a(std::to_string(P.FMax)));
    MixInt(static_cast<uint64_t>(P.PermSize));
    MixStr(P.DependsOnMaxParam);
    MixStr(P.DependsOnMinParam);
  }
  return H;
}

std::string Space::describe() const {
  std::ostringstream Out;
  for (const ParamDef &P : Params) {
    Out << "  " << P.Id << " (" << P.Label << "): ";
    switch (P.Kind) {
    case ParamKind::Enum: {
      Out << "enum{";
      for (size_t I = 0; I < P.Options.size(); ++I)
        Out << (I ? "," : "") << P.Options[I];
      Out << "}";
      break;
    }
    case ParamKind::Bool:
      Out << "bool";
      break;
    case ParamKind::IntRange:
      Out << "integer(" << P.Min << ".." << P.Max << ")";
      break;
    case ParamKind::Pow2:
      Out << "poweroftwo(" << P.Min << ".." << P.Max << ")";
      break;
    case ParamKind::LogInt:
      Out << "loginteger(" << P.Min << ".." << P.Max << ")";
      break;
    case ParamKind::FloatRange:
      Out << "float(" << P.FMin << ".." << P.FMax << ")";
      break;
    case ParamKind::LogFloat:
      Out << "logfloat(" << P.FMin << ".." << P.FMax << ")";
      break;
    case ParamKind::Permutation:
      Out << "permutation(" << P.PermSize << ")";
      break;
    }
    if (!P.DependsOnMaxParam.empty())
      Out << " [max <= " << P.DependsOnMaxParam << "]";
    Out << " |" << P.cardinality() << "|\n";
  }
  return Out.str();
}

} // namespace search
} // namespace locus
