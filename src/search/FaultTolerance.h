//===- FaultTolerance.h - Evaluation guards ---------------------*- C++ -*-===//
///
/// \file
/// Guard policy around an Objective. Empirical tuning objectives misbehave
/// in two ways the searchers themselves should not have to know about:
///
///  - flaky measurements (MetricUnstable): worth a bounded number of
///    retries before the point is written off;
///  - repeat offenders: a point that keeps failing is quarantined so no
///    future proposal spends evaluator time on it again.
///
/// GuardedObjective decorates any Objective with both policies and keeps
/// counters for reporting. Per-variant deadlines — the third guard — live
/// in the driver's VariantObjective, which derives an iteration budget from
/// the baseline run (see OrchestratorOptions::VariantDeadlineFactor).
///
//===----------------------------------------------------------------------===//
#ifndef LOCUS_SEARCH_FAULTTOLERANCE_H
#define LOCUS_SEARCH_FAULTTOLERANCE_H

#include "src/search/Search.h"

#include <map>
#include <mutex>
#include <set>
#include <string>

namespace locus {
namespace search {

struct GuardOptions {
  /// Extra assessments attempted when a result is MetricUnstable before the
  /// failure is accepted.
  int MaxUnstableRetries = 2;
  /// Number of failed assessments of the same point before it is
  /// quarantined (served a cached failure without re-evaluating); 0
  /// disables quarantining.
  int QuarantineThreshold = 3;
};

struct GuardStats {
  int UnstableRetries = 0;   ///< retry attempts issued
  int UnstableRecovered = 0; ///< retries that produced a clean result
  int QuarantinedPoints = 0; ///< distinct points placed in quarantine
  int QuarantineRejects = 0; ///< assessments served from quarantine
};

/// Guard state (streaks, quarantine, counters) is protected by an internal
/// mutex, so the guard is safe under the evaluation pool's concurrent
/// assessments as long as the inner objective is; the inner objective runs
/// outside the lock. Concurrency-safety is forwarded from the inner
/// objective, making the guard transparent to the pool.
class GuardedObjective : public Objective {
public:
  explicit GuardedObjective(Objective &Inner, GuardOptions Opts = {})
      : Inner(Inner), Opts(Opts) {}

  EvalOutcome assess(const Point &P) override;
  bool concurrencySafe() const override { return Inner.concurrencySafe(); }

  GuardStats stats() const {
    std::lock_guard<std::mutex> L(M);
    return Stats;
  }
  bool isQuarantined(const Point &P) const {
    std::lock_guard<std::mutex> L(M);
    return Quarantined.count(P.key()) != 0;
  }

private:
  Objective &Inner;
  GuardOptions Opts;
  mutable std::mutex M; ///< guards every member below
  GuardStats Stats;
  /// Failure streak per point key; cleared on success.
  std::map<std::string, int> FailStreak;
  /// Quarantined point keys with the failure that put them there.
  std::map<std::string, EvalOutcome> QuarantineReason;
  std::set<std::string> Quarantined;
};

} // namespace search
} // namespace locus

#endif // LOCUS_SEARCH_FAULTTOLERANCE_H
