//===- Searchers.cpp - Built-in search modules --------------------------------===//

#include "src/search/Search.h"

#include "src/search/EvalPool.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>

namespace locus {
namespace search {

const char *failureKindName(FailureKind K) {
  switch (K) {
  case FailureKind::None:
    return "None";
  case FailureKind::TransformIllegal:
    return "TransformIllegal";
  case FailureKind::InvalidPoint:
    return "InvalidPoint";
  case FailureKind::PrepareFailed:
    return "PrepareFailed";
  case FailureKind::RuntimeTrap:
    return "RuntimeTrap";
  case FailureKind::BudgetExceeded:
    return "BudgetExceeded";
  case FailureKind::ChecksumMismatch:
    return "ChecksumMismatch";
  case FailureKind::MetricUnstable:
    return "MetricUnstable";
  }
  return "None";
}

FailureKind parseFailureKind(std::string_view Name, bool &Ok) {
  Ok = true;
  for (int I = 0; I < NumFailureKinds; ++I) {
    FailureKind K = static_cast<FailureKind>(I);
    if (Name == failureKindName(K))
      return K;
  }
  Ok = false;
  return FailureKind::None;
}

namespace {

//===----------------------------------------------------------------------===//
// Value enumeration / sampling
//===----------------------------------------------------------------------===//

std::vector<int64_t> pow2Values(int64_t Min, int64_t Max) {
  std::vector<int64_t> Values;
  int64_t V = 1;
  while (V < Min)
    V <<= 1;
  for (; V <= Max; V <<= 1)
    Values.push_back(V);
  if (Values.empty())
    Values.push_back(std::max<int64_t>(1, Min));
  return Values;
}

std::vector<int64_t> logIntValues(int64_t Min, int64_t Max) {
  // Geometric grid with ratio ~1.5, deduplicated.
  std::vector<int64_t> Values;
  double V = static_cast<double>(std::max<int64_t>(1, Min));
  while (static_cast<int64_t>(V) <= Max) {
    int64_t I = static_cast<int64_t>(V);
    if (Values.empty() || Values.back() != I)
      Values.push_back(I);
    V *= 1.5;
    if (V < static_cast<double>(Values.back()) + 1)
      V = static_cast<double>(Values.back()) + 1;
  }
  if (Values.empty())
    Values.push_back(Min);
  return Values;
}

} // namespace

std::vector<PointValue> enumerateValues(const ParamDef &P) {
  std::vector<PointValue> Out;
  switch (P.Kind) {
  case ParamKind::Enum:
    for (size_t I = 0; I < std::max<size_t>(1, P.Options.size()); ++I)
      Out.push_back(static_cast<int64_t>(I));
    return Out;
  case ParamKind::Bool:
    Out.push_back(static_cast<int64_t>(0));
    Out.push_back(static_cast<int64_t>(1));
    return Out;
  case ParamKind::IntRange:
    for (int64_t V = P.Min; V <= P.Max; ++V)
      Out.push_back(V);
    if (Out.empty())
      Out.push_back(P.Min);
    return Out;
  case ParamKind::Pow2:
    for (int64_t V : pow2Values(P.Min, P.Max))
      Out.push_back(V);
    return Out;
  case ParamKind::LogInt:
    for (int64_t V : logIntValues(P.Min, P.Max))
      Out.push_back(V);
    return Out;
  case ParamKind::FloatRange:
  case ParamKind::LogFloat: {
    const int Steps = 16;
    for (int I = 0; I < Steps; ++I) {
      double T = static_cast<double>(I) / (Steps - 1);
      if (P.Kind == ParamKind::LogFloat && P.FMin > 0) {
        Out.push_back(P.FMin * std::pow(P.FMax / P.FMin, T));
      } else {
        Out.push_back(P.FMin + T * (P.FMax - P.FMin));
      }
    }
    return Out;
  }
  case ParamKind::Permutation: {
    // Enumerate permutations lexicographically (callers cap the count).
    std::vector<int> Perm(static_cast<size_t>(P.PermSize));
    for (int I = 0; I < P.PermSize; ++I)
      Perm[static_cast<size_t>(I)] = I;
    do {
      Out.push_back(Perm);
    } while (std::next_permutation(Perm.begin(), Perm.end()) &&
             Out.size() < 5041);
    return Out;
  }
  }
  return Out;
}

PointValue sampleValue(const ParamDef &P, Rng &R) {
  if (P.Kind == ParamKind::Permutation) {
    std::vector<int> Perm(static_cast<size_t>(P.PermSize));
    for (int I = 0; I < P.PermSize; ++I)
      Perm[static_cast<size_t>(I)] = I;
    R.shuffle(Perm);
    return Perm;
  }
  if (P.Kind == ParamKind::FloatRange)
    return P.FMin + R.uniform() * (P.FMax - P.FMin);
  if (P.Kind == ParamKind::LogFloat && P.FMin > 0)
    return P.FMin * std::pow(P.FMax / P.FMin, R.uniform());
  std::vector<PointValue> Values = enumerateValues(P);
  return Values[R.index(Values.size())];
}

Point samplePoint(const Space &S, Rng &R) {
  Point P;
  for (const ParamDef &Def : S.Params)
    P.Values[Def.Id] = sampleValue(Def, R);
  return P;
}

namespace {

//===----------------------------------------------------------------------===//
// Shared evaluation driver: deduplication, replay, static pruning, and the
// parallel evaluation pool
//===----------------------------------------------------------------------===//

/// Fixed speculative batch width for searchers whose proposal stream does
/// not depend on pending outcomes (exhaustive, random, and DE inside one
/// generation). Deliberately independent of SearchOptions::Jobs: the batch
/// boundaries (and therefore the stale/budget bookkeeping) must not move
/// with the worker count, or trajectories would differ between Jobs
/// settings. The pool simply splits whatever batch it is handed across its
/// workers.
constexpr size_t SpeculativeBatch = 8;

/// Per-point result of a batch evaluation, in proposal order.
struct BatchItem {
  double Metric = std::numeric_limits<double>::infinity();
  bool Valid = false;
  /// A (fresh, replayed, or pruned) evaluation happened for this proposal;
  /// false for duplicates served from the memo and for proposals dropped at
  /// the budget boundary.
  bool Fresh = false;
  /// The proposal produced a usable outcome (evaluated or served from the
  /// memo); false only for budget-dropped tail entries.
  bool Assessed = false;
};

class EvalDriver {
public:
  EvalDriver(Objective &Obj, const SearchOptions &Opts, SearchResult &Result)
      : Obj(Obj), Opts(Opts), Result(Result),
        Pool(Obj.concurrencySafe() ? Opts.Jobs : 1) {
    for (const EvalRecord &R : Opts.Replay)
      ReplayCache.emplace(R.P.key(), R);
    Result.PoolJobs = Pool.jobs();
  }

  bool budgetLeft() const {
    // Cooperative shutdown reads as budget exhaustion: every searcher loop
    // already terminates cleanly on a spent budget, so one check here stops
    // all of them between iterations with the journal intact.
    if (Opts.StopFlag && Opts.StopFlag->load(std::memory_order_relaxed)) {
      Result.Stopped = true;
      return false;
    }
    return Result.Evaluations < Opts.MaxEvaluations;
  }

  /// Evaluates a batch of proposals. Duplicates (of earlier evaluations or
  /// of earlier entries in the same batch) are served from the memo;
  /// journal-replayed and statically-pruned points consume their cached /
  /// proven outcome; everything else is dispatched to the objective — in
  /// parallel across the pool's workers when it has more than one. Results
  /// are committed back in proposal order, so the searcher (and the
  /// journal) observe exactly the serial trajectory. Proposals past the
  /// evaluation budget are dropped (Assessed = false).
  std::vector<BatchItem> evaluateBatch(const std::vector<Point> &Batch) {
    enum class Kind : uint8_t { Dup, Replay, Pruned, Pending, Dropped };
    struct Slot {
      std::string Key;
      Kind K = Kind::Dropped;
      EvalOutcome Out;
    };
    std::vector<Slot> Slots(Batch.size());
    std::vector<size_t> Pending;
    std::set<std::string> BatchKeys;
    int BudgetUsed = 0;

    // Classification pass, in proposal order on the search thread (replay
    // consumption and StaticFilter calls keep their serial order).
    for (size_t I = 0; I < Batch.size(); ++I) {
      Slot &S = Slots[I];
      S.Key = Batch[I].key();
      if (Seen.count(S.Key) || BatchKeys.count(S.Key)) {
        S.K = Kind::Dup;
        continue;
      }
      if (Result.Evaluations + BudgetUsed >= Opts.MaxEvaluations) {
        S.K = Kind::Dropped;
        continue;
      }
      ++BudgetUsed;
      BatchKeys.insert(S.Key);
      auto RIt = ReplayCache.find(S.Key);
      if (RIt != ReplayCache.end()) {
        S.K = Kind::Replay;
        S.Out.Metric = RIt->second.Metric;
        S.Out.Failure = RIt->second.Failure;
        S.Out.Detail = RIt->second.Detail;
        ReplayCache.erase(RIt);
        continue;
      }
      if (Opts.StaticFilter) {
        if (std::optional<EvalOutcome> Pruned = Opts.StaticFilter(Batch[I])) {
          S.K = Kind::Pruned;
          S.Out = std::move(*Pruned);
          continue;
        }
      }
      S.K = Kind::Pending;
      Pending.push_back(I);
    }

    // Concurrent assessment of the fresh points.
    if (!Pending.empty()) {
      ++Result.Batches;
      Result.MaxBatch = std::max(Result.MaxBatch, static_cast<int>(Pending.size()));
      if (Pending.size() > 1 && Pool.jobs() > 1)
        Result.PooledEvaluations += static_cast<int>(Pending.size());
      Pool.run(Pending.size(), [&](size_t J) {
        Slots[Pending[J]].Out = Obj.assess(Batch[Pending[J]]);
      });
    }

    // Commit pass, in proposal order.
    std::vector<BatchItem> Items(Batch.size());
    for (size_t I = 0; I < Batch.size(); ++I) {
      Slot &S = Slots[I];
      BatchItem &Item = Items[I];
      switch (S.K) {
      case Kind::Dup: {
        const auto &Memo = Seen.at(S.Key);
        ++Result.DuplicatesSkipped;
        ++Result.DuplicateHits;
        Item.Metric = Memo.first;
        Item.Valid = Memo.second;
        Item.Assessed = true;
        break;
      }
      case Kind::Dropped:
        break;
      case Kind::Replay:
      case Kind::Pruned:
      case Kind::Pending: {
        bool Replayed = S.K == Kind::Replay;
        if (Replayed)
          ++Result.ReplayedEvaluations;
        if (S.K == Kind::Pruned)
          ++Result.PrunedStatic;
        ++Result.Evaluations;
        Item.Valid = S.Out.ok();
        Item.Metric = Item.Valid ? S.Out.Metric
                                 : std::numeric_limits<double>::infinity();
        Item.Fresh = true;
        Item.Assessed = true;
        Seen[S.Key] = {Item.Metric, Item.Valid};
        if (!Item.Valid) {
          ++Result.InvalidPoints;
          ++Result.FailureCounts[static_cast<size_t>(S.Out.Failure)];
        }
        EvalRecord Rec;
        Rec.P = Batch[I];
        Rec.Metric = Item.Metric;
        Rec.Valid = Item.Valid;
        Rec.Failure = S.Out.Failure;
        Rec.Detail = std::move(S.Out.Detail);
        Result.History.push_back(std::move(Rec));
        if (!Replayed && Opts.OnFreshEval)
          Opts.OnFreshEval(Result.History.back());
        if (Item.Valid && Item.Metric < Result.BestMetric) {
          Result.BestMetric = Item.Metric;
          Result.Best = Batch[I];
          Result.Found = true;
          Improved = true;
        }
        break;
      }
      }
    }
    return Items;
  }

  /// Single-point convenience wrapper (the sequential searchers' path);
  /// returns true when a (fresh, replayed, or pruned) evaluation happened.
  bool evaluate(const Point &P, double &Metric, bool &Valid) {
    std::vector<BatchItem> Items = evaluateBatch({P});
    Metric = Items[0].Metric;
    Valid = Items[0].Valid;
    return Items[0].Fresh;
  }

  bool takeImproved() {
    bool I = Improved;
    Improved = false;
    return I;
  }

private:
  Objective &Obj;
  const SearchOptions &Opts;
  SearchResult &Result;
  EvalPool Pool;
  std::map<std::string, std::pair<double, bool>> Seen;
  std::map<std::string, EvalRecord> ReplayCache;
  bool Improved = false;
};

//===----------------------------------------------------------------------===//
// Mutation move shared by hill climbing and the bandit ensemble
//===----------------------------------------------------------------------===//

Point mutate(const Space &S, const Point &Base, Rng &R) {
  Point P = Base;
  if (S.Params.empty())
    return P;
  const ParamDef &Def = S.Params[R.index(S.Params.size())];
  auto &Slot = P.Values[Def.Id];
  if (Def.Kind == ParamKind::Permutation) {
    auto Perm = std::get<std::vector<int>>(Slot);
    if (Perm.size() >= 2) {
      size_t A = R.index(Perm.size());
      size_t B = R.index(Perm.size());
      std::swap(Perm[A], Perm[B]);
    }
    Slot = Perm;
    return P;
  }
  if (Def.Kind == ParamKind::FloatRange || Def.Kind == ParamKind::LogFloat) {
    double Cur = std::get<double>(Slot);
    double Width = (Def.FMax - Def.FMin) * 0.15;
    double Next = std::clamp(Cur + R.normal() * Width, Def.FMin, Def.FMax);
    Slot = Next;
    return P;
  }
  std::vector<PointValue> Values = enumerateValues(Def);
  // Step to a neighboring value most of the time; jump occasionally.
  int64_t Cur = std::get<int64_t>(Slot);
  size_t CurIdx = 0;
  for (size_t I = 0; I < Values.size(); ++I)
    if (std::get<int64_t>(Values[I]) == Cur)
      CurIdx = I;
  if (Values.size() > 1 && R.chance(0.7)) {
    size_t Next = CurIdx;
    if (CurIdx == 0)
      Next = 1;
    else if (CurIdx + 1 >= Values.size())
      Next = CurIdx - 1;
    else
      Next = R.chance(0.5) ? CurIdx - 1 : CurIdx + 1;
    Slot = Values[Next];
  } else {
    Slot = Values[R.index(Values.size())];
  }
  return P;
}

//===----------------------------------------------------------------------===//
// Exhaustive
//===----------------------------------------------------------------------===//

class ExhaustiveSearcher : public Searcher {
public:
  std::string name() const override { return "exhaustive"; }

  SearchResult search(const Space &S, Objective &Obj,
                      const SearchOptions &Opts) override {
    SearchResult Result;
    EvalDriver Driver(Obj, Opts, Result);
    std::vector<std::vector<PointValue>> ValueLists;
    for (const ParamDef &P : S.Params)
      ValueLists.push_back(enumerateValues(P));

    // Enumeration is outcome-independent, so the next stretch of the sweep
    // is proposed as one batch and evaluated concurrently.
    std::vector<size_t> Odometer(S.Params.size(), 0);
    bool Done = false;
    while (Driver.budgetLeft() && !Done) {
      std::vector<Point> Batch;
      while (Batch.size() < SpeculativeBatch && !Done) {
        Point P;
        for (size_t I = 0; I < S.Params.size(); ++I)
          P.Values[S.Params[I].Id] = ValueLists[I][Odometer[I]];
        Batch.push_back(std::move(P));
        // Advance the odometer.
        size_t I = 0;
        for (; I < Odometer.size(); ++I) {
          if (++Odometer[I] < ValueLists[I].size())
            break;
          Odometer[I] = 0;
        }
        if (I == Odometer.size() || Odometer.empty())
          Done = true; // wrapped: the whole space is enumerated
      }
      Driver.evaluateBatch(Batch);
    }
    return Result;
  }
};

//===----------------------------------------------------------------------===//
// Random
//===----------------------------------------------------------------------===//

class RandomSearcher : public Searcher {
public:
  std::string name() const override { return "random"; }

  SearchResult search(const Space &S, Objective &Obj,
                      const SearchOptions &Opts) override {
    SearchResult Result;
    EvalDriver Driver(Obj, Opts, Result);
    Rng R(Opts.Seed);
    // Sampling is outcome-independent: draw the next stretch up front and
    // evaluate it as one concurrent batch. The Rng consumption order equals
    // the serial one, so the sampled stream is unchanged.
    int Stale = 0;
    while (Driver.budgetLeft() && Stale < Opts.MaxEvaluations * 4) {
      std::vector<Point> Batch;
      for (size_t I = 0; I < SpeculativeBatch; ++I)
        Batch.push_back(samplePoint(S, R));
      for (const BatchItem &Item : Driver.evaluateBatch(Batch)) {
        if (Item.Fresh)
          Stale = 0;
        else if (Item.Assessed)
          ++Stale;
      }
    }
    return Result;
  }
};

//===----------------------------------------------------------------------===//
// Hill climbing with restarts
//===----------------------------------------------------------------------===//

class HillClimbSearcher : public Searcher {
public:
  std::string name() const override { return "hillclimb"; }

  SearchResult search(const Space &S, Objective &Obj,
                      const SearchOptions &Opts) override {
    SearchResult Result;
    EvalDriver Driver(Obj, Opts, Result);
    Rng R(Opts.Seed);

    Point Current = samplePoint(S, R);
    double CurrentMetric;
    bool Valid;
    Driver.evaluate(Current, CurrentMetric, Valid);
    int SinceImprovement = 0;
    int Stale = 0;
    while (Driver.budgetLeft() && Stale < Opts.MaxEvaluations * 4) {
      Point Next = mutate(S, Current, R);
      double Metric;
      bool NextValid;
      bool Fresh = Driver.evaluate(Next, Metric, NextValid);
      if (!Fresh)
        ++Stale;
      if (NextValid && (Metric < CurrentMetric || !Valid)) {
        Current = Next;
        CurrentMetric = Metric;
        Valid = true;
        SinceImprovement = 0;
      } else if (++SinceImprovement > 20) {
        // Restart from a fresh random point.
        Current = samplePoint(S, R);
        Driver.evaluate(Current, CurrentMetric, Valid);
        SinceImprovement = 0;
      }
    }
    return Result;
  }
};

//===----------------------------------------------------------------------===//
// Differential evolution on normalized coordinates
//===----------------------------------------------------------------------===//

class DeSearcher : public Searcher {
public:
  std::string name() const override { return "de"; }

  SearchResult search(const Space &S, Objective &Obj,
                      const SearchOptions &Opts) override {
    SearchResult Result;
    EvalDriver Driver(Obj, Opts, Result);
    Rng R(Opts.Seed);

    // The initial population is one outcome-independent batch.
    const size_t PopSize = 10;
    std::vector<Point> Init;
    for (size_t I = 0; I < PopSize; ++I)
      Init.push_back(samplePoint(S, R));
    std::vector<BatchItem> InitItems = Driver.evaluateBatch(Init);
    std::vector<Point> Pop;
    std::vector<double> Fitness;
    for (size_t I = 0; I < Init.size(); ++I) {
      if (!InitItems[I].Assessed)
        break; // budget boundary
      Pop.push_back(std::move(Init[I]));
      Fitness.push_back(InitItems[I].Valid
                            ? InitItems[I].Metric
                            : std::numeric_limits<double>::infinity());
    }
    if (Pop.size() < 4)
      return Result;

    // Generational DE: every generation's trials are combined from a
    // snapshot of the population, so the whole generation is proposal-
    // independent and evaluates as one concurrent batch; selection commits
    // afterwards, member by member, in order.
    int Stale = 0;
    while (Driver.budgetLeft() && Stale < Opts.MaxEvaluations * 4) {
      std::vector<Point> Trials;
      for (size_t I = 0; I < Pop.size(); ++I) {
        size_t A = R.index(Pop.size()), B = R.index(Pop.size()),
               C = R.index(Pop.size());
        Trials.push_back(combine(S, Pop[I], Pop[A], Pop[B], Pop[C], R));
      }
      std::vector<BatchItem> Items = Driver.evaluateBatch(Trials);
      for (size_t I = 0; I < Trials.size(); ++I) {
        if (!Items[I].Assessed)
          break; // budget boundary
        if (Items[I].Fresh)
          Stale = 0;
        else
          ++Stale;
        if (Items[I].Valid && Items[I].Metric < Fitness[I]) {
          Pop[I] = std::move(Trials[I]);
          Fitness[I] = Items[I].Metric;
        }
      }
    }
    return Result;
  }

private:
  /// Classic rand/1/bin on a normalized [0,1] coordinate per parameter.
  Point combine(const Space &S, const Point &Target, const Point &A,
                const Point &B, const Point &C, Rng &R) {
    Point Trial = Target;
    const double F = 0.6, CR = 0.8;
    for (const ParamDef &Def : S.Params) {
      if (!R.chance(CR))
        continue;
      if (Def.Kind == ParamKind::Permutation) {
        Trial.Values[Def.Id] = sampleValue(Def, R);
        continue;
      }
      double XA = norm(Def, A), XB = norm(Def, B), XC = norm(Def, C);
      double X = std::clamp(XA + F * (XB - XC), 0.0, 1.0);
      Trial.Values[Def.Id] = denorm(Def, X, R);
    }
    return Trial;
  }

  static double norm(const ParamDef &Def, const Point &P) {
    const PointValue &V = P.Values.at(Def.Id);
    if (Def.Kind == ParamKind::FloatRange || Def.Kind == ParamKind::LogFloat) {
      double X = std::get<double>(V);
      return Def.FMax > Def.FMin ? (X - Def.FMin) / (Def.FMax - Def.FMin) : 0;
    }
    std::vector<PointValue> Values = enumerateValues(Def);
    int64_t X = std::get<int64_t>(V);
    for (size_t I = 0; I < Values.size(); ++I)
      if (std::get<int64_t>(Values[I]) == X)
        return Values.size() > 1
                   ? static_cast<double>(I) / (Values.size() - 1)
                   : 0.0;
    return 0;
  }

  static PointValue denorm(const ParamDef &Def, double X, Rng &R) {
    (void)R;
    if (Def.Kind == ParamKind::FloatRange || Def.Kind == ParamKind::LogFloat)
      return Def.FMin + X * (Def.FMax - Def.FMin);
    std::vector<PointValue> Values = enumerateValues(Def);
    size_t Idx = static_cast<size_t>(
        std::lround(X * static_cast<double>(Values.size() - 1)));
    return Values[std::min(Idx, Values.size() - 1)];
  }
};

//===----------------------------------------------------------------------===//
// AUC-bandit ensemble (the OpenTuner stand-in)
//===----------------------------------------------------------------------===//

class BanditSearcher : public Searcher {
public:
  std::string name() const override { return "bandit"; }

  SearchResult search(const Space &S, Objective &Obj,
                      const SearchOptions &Opts) override {
    SearchResult Result;
    EvalDriver Driver(Obj, Opts, Result);
    Rng R(Opts.Seed);

    // Move generators: random, greedy mutation of the best, and a
    // crossover-style recombination of two elites.
    const int NumArms = 3;
    std::vector<std::vector<int>> Window(static_cast<size_t>(NumArms));
    std::vector<int> Uses(static_cast<size_t>(NumArms), 0);
    const size_t WindowCap = 50;
    int T = 0;

    std::vector<std::pair<double, Point>> Elites;

    // Seed with the midpoint default configuration (as OpenTuner seeds
    // sensible defaults) followed by random points.
    {
      Point Mid;
      for (const ParamDef &Def : S.Params) {
        std::vector<PointValue> Values = enumerateValues(Def);
        Mid.Values[Def.Id] = Values[Values.size() / 2];
      }
      double Metric;
      bool Valid;
      Driver.evaluate(Mid, Metric, Valid);
      if (Valid)
        recordElite(Elites, Metric, Mid);
    }
    for (int I = 0; I < 4 && Driver.budgetLeft(); ++I) {
      Point P = samplePoint(S, R);
      double Metric;
      bool Valid;
      Driver.evaluate(P, Metric, Valid);
      if (Valid)
        recordElite(Elites, Metric, P);
    }

    int Stale = 0;
    while (Driver.budgetLeft() && Stale < Opts.MaxEvaluations * 4) {
      ++T;
      int Arm = pickArm(Window, Uses, T);
      Point P;
      if (Arm == 0 || Elites.empty()) {
        P = samplePoint(S, R);
      } else if (Arm == 1) {
        P = mutate(S, Elites[R.index(Elites.size())].second, R);
      } else {
        const Point &A = Elites[R.index(Elites.size())].second;
        const Point &B = Elites[R.index(Elites.size())].second;
        P = crossover(S, A, B, R);
      }
      double Metric;
      bool Valid;
      bool Fresh = Driver.evaluate(P, Metric, Valid);
      // A duplicate proposal is negative feedback for the arm that produced
      // it. Crediting it keeps the bandit state moving during duplicate
      // streaks; otherwise pickArm's inputs freeze and the same exhausted
      // arm is chosen until the stale limit aborts the search.
      bool NewBest = Fresh && Driver.takeImproved();
      auto &Hist = Window[static_cast<size_t>(Arm)];
      Hist.push_back(NewBest ? 1 : 0);
      if (Hist.size() > WindowCap)
        Hist.erase(Hist.begin());
      ++Uses[static_cast<size_t>(Arm)];
      if (!Fresh) {
        ++Stale;
        continue; // the paper notes OpenTuner avoids re-assessing variants
      }
      Stale = 0;
      if (Valid)
        recordElite(Elites, Metric, P);
    }
    return Result;
  }

private:
  static void recordElite(std::vector<std::pair<double, Point>> &Elites,
                          double Metric, const Point &P) {
    Elites.emplace_back(Metric, P);
    std::sort(Elites.begin(), Elites.end(),
              [](const auto &A, const auto &B) { return A.first < B.first; });
    if (Elites.size() > 8)
      Elites.resize(8);
  }

  /// AUC credit: exponentially weighted recency of "produced a new best",
  /// plus a UCB exploration bonus.
  static int pickArm(const std::vector<std::vector<int>> &Window,
                     const std::vector<int> &Uses, int T) {
    int BestArm = 0;
    double BestScore = -1;
    for (size_t Arm = 0; Arm < Window.size(); ++Arm) {
      double Auc = 0, Weight = 0;
      const auto &Hist = Window[Arm];
      for (size_t I = 0; I < Hist.size(); ++I) {
        double W = static_cast<double>(I + 1);
        Auc += W * Hist[I];
        Weight += W;
      }
      double Exploit = Weight > 0 ? Auc / Weight : 0;
      double Explore =
          std::sqrt(2.0 * std::log(static_cast<double>(T + 1)) /
                    (Uses[Arm] + 1));
      double Score = Exploit + 0.3 * Explore;
      if (Score > BestScore) {
        BestScore = Score;
        BestArm = static_cast<int>(Arm);
      }
    }
    return BestArm;
  }

  static Point crossover(const Space &S, const Point &A, const Point &B,
                         Rng &R) {
    Point P = A;
    for (const ParamDef &Def : S.Params)
      if (R.chance(0.5))
        P.Values[Def.Id] = B.Values.at(Def.Id);
    return P;
  }
};

//===----------------------------------------------------------------------===//
// Tree-structured Parzen estimator (the HyperOpt stand-in)
//===----------------------------------------------------------------------===//

class TpeSearcher : public Searcher {
public:
  std::string name() const override { return "tpe"; }

  SearchResult search(const Space &S, Objective &Obj,
                      const SearchOptions &Opts) override {
    SearchResult Result;
    EvalDriver Driver(Obj, Opts, Result);
    Rng R(Opts.Seed);

    std::vector<std::pair<double, Point>> History;

    const int Startup = std::min(10, std::max(3, Opts.MaxEvaluations / 10));
    int Stale = 0;
    while (Driver.budgetLeft() && Stale < Opts.MaxEvaluations * 4) {
      Point P;
      if (static_cast<int>(History.size()) < Startup) {
        P = samplePoint(S, R);
      } else if (Stale > 0 && R.chance(0.5)) {
        // The model proposed an already-assessed point last round; its
        // density estimate has concentrated on exhausted ground. Fall back
        // to uniform exploration until a proposal lands somewhere fresh.
        P = samplePoint(S, R);
      } else {
        P = propose(S, History, R);
      }
      double Metric;
      bool Valid;
      bool Fresh = Driver.evaluate(P, Metric, Valid);
      if (!Fresh) {
        ++Stale;
        continue;
      }
      Stale = 0;
      // Failed points enter the history with their infinite sentinel metric:
      // they sort to the bad tail of the split, so the density ratio steers
      // proposals away from the failing subspace instead of forgetting it.
      History.emplace_back(Metric, P);
    }
    return Result;
  }

private:
  /// Splits history at the gamma quantile into good/bad sets and proposes
  /// the candidate maximizing the density ratio l(x)/g(x), per parameter.
  Point propose(const Space &S, std::vector<std::pair<double, Point>> History,
                Rng &R) {
    std::sort(History.begin(), History.end(),
              [](const auto &A, const auto &B) { return A.first < B.first; });
    size_t NGood = std::max<size_t>(1, History.size() / 4);

    Point Best;
    double BestScore = -std::numeric_limits<double>::infinity();
    const int Candidates = 16;
    for (int C = 0; C < Candidates; ++C) {
      Point P;
      double Score = 0;
      for (const ParamDef &Def : S.Params) {
        // Sample around a random good observation.
        const Point &Anchor = History[R.index(NGood)].second;
        PointValue V = perturb(Def, Anchor.Values.at(Def.Id), R);
        Score += std::log(density(Def, V, History, 0, NGood) + 1e-9) -
                 std::log(density(Def, V, History, NGood, History.size()) +
                          1e-9);
        P.Values[Def.Id] = std::move(V);
      }
      if (Score > BestScore) {
        BestScore = Score;
        Best = std::move(P);
      }
    }
    return Best;
  }

  PointValue perturb(const ParamDef &Def, const PointValue &Anchor, Rng &R) {
    if (Def.Kind == ParamKind::Permutation) {
      auto Perm = std::get<std::vector<int>>(Anchor);
      if (Perm.size() >= 2 && R.chance(0.5))
        std::swap(Perm[R.index(Perm.size())], Perm[R.index(Perm.size())]);
      return Perm;
    }
    if (Def.Kind == ParamKind::FloatRange || Def.Kind == ParamKind::LogFloat) {
      double X = std::get<double>(Anchor);
      double W = (Def.FMax - Def.FMin) * 0.2;
      return std::clamp(X + R.normal() * W, Def.FMin, Def.FMax);
    }
    std::vector<PointValue> Values = enumerateValues(Def);
    if (R.chance(0.35))
      return Values[R.index(Values.size())];
    int64_t X = std::get<int64_t>(Anchor);
    size_t Idx = 0;
    for (size_t I = 0; I < Values.size(); ++I)
      if (std::get<int64_t>(Values[I]) == X)
        Idx = I;
    int64_t Offset = R.range(-1, 1);
    int64_t NewIdx = std::clamp<int64_t>(static_cast<int64_t>(Idx) + Offset, 0,
                                         static_cast<int64_t>(Values.size()) - 1);
    return Values[static_cast<size_t>(NewIdx)];
  }

  /// Kernel density of a value within History[Begin, End).
  double density(const ParamDef &Def, const PointValue &V,
                 const std::vector<std::pair<double, Point>> &History,
                 size_t Begin, size_t End) {
    if (Begin >= End)
      return 0;
    double Sum = 0;
    for (size_t I = Begin; I < End; ++I) {
      const PointValue &O = History[I].second.Values.at(Def.Id);
      if (Def.Kind == ParamKind::FloatRange ||
          Def.Kind == ParamKind::LogFloat) {
        double W = std::max(1e-9, (Def.FMax - Def.FMin) * 0.15);
        double D = (std::get<double>(V) - std::get<double>(O)) / W;
        Sum += std::exp(-0.5 * D * D);
      } else if (Def.Kind == ParamKind::Permutation) {
        Sum += std::get<std::vector<int>>(V) == std::get<std::vector<int>>(O)
                   ? 1.0
                   : 0.05;
      } else {
        std::vector<PointValue> Values = enumerateValues(Def);
        double W = std::max(1.0, static_cast<double>(Values.size()) * 0.15);
        auto IndexOf = [&](int64_t X) {
          for (size_t J = 0; J < Values.size(); ++J)
            if (std::get<int64_t>(Values[J]) == X)
              return static_cast<double>(J);
          return 0.0;
        };
        double D = (IndexOf(std::get<int64_t>(V)) -
                    IndexOf(std::get<int64_t>(O))) /
                   W;
        Sum += std::exp(-0.5 * D * D);
      }
    }
    return Sum / static_cast<double>(End - Begin);
  }
};

} // namespace

std::unique_ptr<Searcher> makeExhaustiveSearcher() {
  return std::make_unique<ExhaustiveSearcher>();
}
std::unique_ptr<Searcher> makeRandomSearcher() {
  return std::make_unique<RandomSearcher>();
}
std::unique_ptr<Searcher> makeHillClimbSearcher() {
  return std::make_unique<HillClimbSearcher>();
}
std::unique_ptr<Searcher> makeDifferentialEvolutionSearcher() {
  return std::make_unique<DeSearcher>();
}
std::unique_ptr<Searcher> makeBanditSearcher() {
  return std::make_unique<BanditSearcher>();
}
std::unique_ptr<Searcher> makeTpeSearcher() {
  return std::make_unique<TpeSearcher>();
}

std::unique_ptr<Searcher> makeSearcher(const std::string &Name) {
  if (Name == "exhaustive")
    return makeExhaustiveSearcher();
  if (Name == "random")
    return makeRandomSearcher();
  if (Name == "hillclimb")
    return makeHillClimbSearcher();
  if (Name == "de")
    return makeDifferentialEvolutionSearcher();
  if (Name == "bandit" || Name == "opentuner")
    return makeBanditSearcher();
  if (Name == "tpe" || Name == "hyperopt")
    return makeTpeSearcher();
  return nullptr;
}

} // namespace search
} // namespace locus
