//===- Searchers.cpp - Built-in search modules --------------------------------===//

#include "src/search/Search.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>

namespace locus {
namespace search {

const char *failureKindName(FailureKind K) {
  switch (K) {
  case FailureKind::None:
    return "None";
  case FailureKind::TransformIllegal:
    return "TransformIllegal";
  case FailureKind::InvalidPoint:
    return "InvalidPoint";
  case FailureKind::PrepareFailed:
    return "PrepareFailed";
  case FailureKind::RuntimeTrap:
    return "RuntimeTrap";
  case FailureKind::BudgetExceeded:
    return "BudgetExceeded";
  case FailureKind::ChecksumMismatch:
    return "ChecksumMismatch";
  case FailureKind::MetricUnstable:
    return "MetricUnstable";
  }
  return "None";
}

FailureKind parseFailureKind(std::string_view Name, bool &Ok) {
  Ok = true;
  for (int I = 0; I < NumFailureKinds; ++I) {
    FailureKind K = static_cast<FailureKind>(I);
    if (Name == failureKindName(K))
      return K;
  }
  Ok = false;
  return FailureKind::None;
}

namespace {

//===----------------------------------------------------------------------===//
// Value enumeration / sampling
//===----------------------------------------------------------------------===//

std::vector<int64_t> pow2Values(int64_t Min, int64_t Max) {
  std::vector<int64_t> Values;
  int64_t V = 1;
  while (V < Min)
    V <<= 1;
  for (; V <= Max; V <<= 1)
    Values.push_back(V);
  if (Values.empty())
    Values.push_back(std::max<int64_t>(1, Min));
  return Values;
}

std::vector<int64_t> logIntValues(int64_t Min, int64_t Max) {
  // Geometric grid with ratio ~1.5, deduplicated.
  std::vector<int64_t> Values;
  double V = static_cast<double>(std::max<int64_t>(1, Min));
  while (static_cast<int64_t>(V) <= Max) {
    int64_t I = static_cast<int64_t>(V);
    if (Values.empty() || Values.back() != I)
      Values.push_back(I);
    V *= 1.5;
    if (V < static_cast<double>(Values.back()) + 1)
      V = static_cast<double>(Values.back()) + 1;
  }
  if (Values.empty())
    Values.push_back(Min);
  return Values;
}

} // namespace

std::vector<PointValue> enumerateValues(const ParamDef &P) {
  std::vector<PointValue> Out;
  switch (P.Kind) {
  case ParamKind::Enum:
    for (size_t I = 0; I < std::max<size_t>(1, P.Options.size()); ++I)
      Out.push_back(static_cast<int64_t>(I));
    return Out;
  case ParamKind::Bool:
    Out.push_back(static_cast<int64_t>(0));
    Out.push_back(static_cast<int64_t>(1));
    return Out;
  case ParamKind::IntRange:
    for (int64_t V = P.Min; V <= P.Max; ++V)
      Out.push_back(V);
    if (Out.empty())
      Out.push_back(P.Min);
    return Out;
  case ParamKind::Pow2:
    for (int64_t V : pow2Values(P.Min, P.Max))
      Out.push_back(V);
    return Out;
  case ParamKind::LogInt:
    for (int64_t V : logIntValues(P.Min, P.Max))
      Out.push_back(V);
    return Out;
  case ParamKind::FloatRange:
  case ParamKind::LogFloat: {
    const int Steps = 16;
    for (int I = 0; I < Steps; ++I) {
      double T = static_cast<double>(I) / (Steps - 1);
      if (P.Kind == ParamKind::LogFloat && P.FMin > 0) {
        Out.push_back(P.FMin * std::pow(P.FMax / P.FMin, T));
      } else {
        Out.push_back(P.FMin + T * (P.FMax - P.FMin));
      }
    }
    return Out;
  }
  case ParamKind::Permutation: {
    // Enumerate permutations lexicographically (callers cap the count).
    std::vector<int> Perm(static_cast<size_t>(P.PermSize));
    for (int I = 0; I < P.PermSize; ++I)
      Perm[static_cast<size_t>(I)] = I;
    do {
      Out.push_back(Perm);
    } while (std::next_permutation(Perm.begin(), Perm.end()) &&
             Out.size() < 5041);
    return Out;
  }
  }
  return Out;
}

PointValue sampleValue(const ParamDef &P, Rng &R) {
  if (P.Kind == ParamKind::Permutation) {
    std::vector<int> Perm(static_cast<size_t>(P.PermSize));
    for (int I = 0; I < P.PermSize; ++I)
      Perm[static_cast<size_t>(I)] = I;
    R.shuffle(Perm);
    return Perm;
  }
  if (P.Kind == ParamKind::FloatRange)
    return P.FMin + R.uniform() * (P.FMax - P.FMin);
  if (P.Kind == ParamKind::LogFloat && P.FMin > 0)
    return P.FMin * std::pow(P.FMax / P.FMin, R.uniform());
  std::vector<PointValue> Values = enumerateValues(P);
  return Values[R.index(Values.size())];
}

Point samplePoint(const Space &S, Rng &R) {
  Point P;
  for (const ParamDef &Def : S.Params)
    P.Values[Def.Id] = sampleValue(Def, R);
  return P;
}

namespace {

//===----------------------------------------------------------------------===//
// Shared evaluation driver with deduplication
//===----------------------------------------------------------------------===//

class EvalDriver {
public:
  EvalDriver(Objective &Obj, const SearchOptions &Opts, SearchResult &Result)
      : Obj(Obj), Opts(Opts), Result(Result) {
    for (const EvalRecord &R : Opts.Replay)
      ReplayCache.emplace(R.P.key(), R);
  }

  bool budgetLeft() const { return Result.Evaluations < Opts.MaxEvaluations; }

  /// Evaluates a point unless it was already assessed; returns true when a
  /// (fresh or replayed) evaluation happened. Metric/Valid describe the
  /// outcome either way. A point with a journal-replayed record consumes the
  /// cached outcome without calling the objective, so a resumed search walks
  /// the interrupted run's exact trajectory.
  bool evaluate(const Point &P, double &Metric, bool &Valid) {
    std::string Key = P.key();
    auto It = Seen.find(Key);
    if (It != Seen.end()) {
      ++Result.DuplicatesSkipped;
      Metric = It->second.first;
      Valid = It->second.second;
      return false;
    }
    EvalOutcome Out;
    auto RIt = ReplayCache.find(Key);
    bool Replayed = RIt != ReplayCache.end();
    if (Replayed) {
      Out.Metric = RIt->second.Metric;
      Out.Failure = RIt->second.Failure;
      Out.Detail = RIt->second.Detail;
      ReplayCache.erase(RIt);
      ++Result.ReplayedEvaluations;
    } else if (Opts.StaticFilter) {
      // Statically provable failures skip materialization/evaluation but
      // count and record exactly like an evaluated failure.
      if (std::optional<EvalOutcome> Pruned = Opts.StaticFilter(P)) {
        Out = std::move(*Pruned);
        ++Result.PrunedStatic;
      } else {
        Out = Obj.assess(P);
      }
    } else {
      Out = Obj.assess(P);
    }
    ++Result.Evaluations;
    Valid = Out.ok();
    Metric = Valid ? Out.Metric : std::numeric_limits<double>::infinity();
    Seen[Key] = {Metric, Valid};
    if (!Valid) {
      ++Result.InvalidPoints;
      ++Result.FailureCounts[static_cast<size_t>(Out.Failure)];
    }
    EvalRecord Rec;
    Rec.P = P;
    Rec.Metric = Metric;
    Rec.Valid = Valid;
    Rec.Failure = Out.Failure;
    Rec.Detail = std::move(Out.Detail);
    Result.History.push_back(std::move(Rec));
    if (!Replayed && Opts.OnFreshEval)
      Opts.OnFreshEval(Result.History.back());
    if (Valid && Metric < Result.BestMetric) {
      Result.BestMetric = Metric;
      Result.Best = P;
      Result.Found = true;
      Improved = true;
    }
    return true;
  }

  bool takeImproved() {
    bool I = Improved;
    Improved = false;
    return I;
  }

private:
  Objective &Obj;
  const SearchOptions &Opts;
  SearchResult &Result;
  std::map<std::string, std::pair<double, bool>> Seen;
  std::map<std::string, EvalRecord> ReplayCache;
  bool Improved = false;
};

//===----------------------------------------------------------------------===//
// Mutation move shared by hill climbing and the bandit ensemble
//===----------------------------------------------------------------------===//

Point mutate(const Space &S, const Point &Base, Rng &R) {
  Point P = Base;
  if (S.Params.empty())
    return P;
  const ParamDef &Def = S.Params[R.index(S.Params.size())];
  auto &Slot = P.Values[Def.Id];
  if (Def.Kind == ParamKind::Permutation) {
    auto Perm = std::get<std::vector<int>>(Slot);
    if (Perm.size() >= 2) {
      size_t A = R.index(Perm.size());
      size_t B = R.index(Perm.size());
      std::swap(Perm[A], Perm[B]);
    }
    Slot = Perm;
    return P;
  }
  if (Def.Kind == ParamKind::FloatRange || Def.Kind == ParamKind::LogFloat) {
    double Cur = std::get<double>(Slot);
    double Width = (Def.FMax - Def.FMin) * 0.15;
    double Next = std::clamp(Cur + R.normal() * Width, Def.FMin, Def.FMax);
    Slot = Next;
    return P;
  }
  std::vector<PointValue> Values = enumerateValues(Def);
  // Step to a neighboring value most of the time; jump occasionally.
  int64_t Cur = std::get<int64_t>(Slot);
  size_t CurIdx = 0;
  for (size_t I = 0; I < Values.size(); ++I)
    if (std::get<int64_t>(Values[I]) == Cur)
      CurIdx = I;
  if (Values.size() > 1 && R.chance(0.7)) {
    size_t Next = CurIdx;
    if (CurIdx == 0)
      Next = 1;
    else if (CurIdx + 1 >= Values.size())
      Next = CurIdx - 1;
    else
      Next = R.chance(0.5) ? CurIdx - 1 : CurIdx + 1;
    Slot = Values[Next];
  } else {
    Slot = Values[R.index(Values.size())];
  }
  return P;
}

//===----------------------------------------------------------------------===//
// Exhaustive
//===----------------------------------------------------------------------===//

class ExhaustiveSearcher : public Searcher {
public:
  std::string name() const override { return "exhaustive"; }

  SearchResult search(const Space &S, Objective &Obj,
                      const SearchOptions &Opts) override {
    SearchResult Result;
    EvalDriver Driver(Obj, Opts, Result);
    std::vector<std::vector<PointValue>> ValueLists;
    for (const ParamDef &P : S.Params)
      ValueLists.push_back(enumerateValues(P));

    std::vector<size_t> Odometer(S.Params.size(), 0);
    while (Driver.budgetLeft()) {
      Point P;
      for (size_t I = 0; I < S.Params.size(); ++I)
        P.Values[S.Params[I].Id] = ValueLists[I][Odometer[I]];
      double Metric;
      bool Valid;
      Driver.evaluate(P, Metric, Valid);
      // Advance the odometer.
      size_t I = 0;
      for (; I < Odometer.size(); ++I) {
        if (++Odometer[I] < ValueLists[I].size())
          break;
        Odometer[I] = 0;
      }
      if (I == Odometer.size())
        break; // wrapped: the whole space is enumerated
      if (Odometer.empty())
        break;
    }
    return Result;
  }
};

//===----------------------------------------------------------------------===//
// Random
//===----------------------------------------------------------------------===//

class RandomSearcher : public Searcher {
public:
  std::string name() const override { return "random"; }

  SearchResult search(const Space &S, Objective &Obj,
                      const SearchOptions &Opts) override {
    SearchResult Result;
    EvalDriver Driver(Obj, Opts, Result);
    Rng R(Opts.Seed);
    int Stale = 0;
    while (Driver.budgetLeft() && Stale < Opts.MaxEvaluations * 4) {
      double Metric;
      bool Valid;
      if (Driver.evaluate(samplePoint(S, R), Metric, Valid))
        Stale = 0;
      else
        ++Stale;
    }
    return Result;
  }
};

//===----------------------------------------------------------------------===//
// Hill climbing with restarts
//===----------------------------------------------------------------------===//

class HillClimbSearcher : public Searcher {
public:
  std::string name() const override { return "hillclimb"; }

  SearchResult search(const Space &S, Objective &Obj,
                      const SearchOptions &Opts) override {
    SearchResult Result;
    EvalDriver Driver(Obj, Opts, Result);
    Rng R(Opts.Seed);

    Point Current = samplePoint(S, R);
    double CurrentMetric;
    bool Valid;
    Driver.evaluate(Current, CurrentMetric, Valid);
    int SinceImprovement = 0;
    int Stale = 0;
    while (Driver.budgetLeft() && Stale < Opts.MaxEvaluations * 4) {
      Point Next = mutate(S, Current, R);
      double Metric;
      bool NextValid;
      bool Fresh = Driver.evaluate(Next, Metric, NextValid);
      if (!Fresh)
        ++Stale;
      if (NextValid && (Metric < CurrentMetric || !Valid)) {
        Current = Next;
        CurrentMetric = Metric;
        Valid = true;
        SinceImprovement = 0;
      } else if (++SinceImprovement > 20) {
        // Restart from a fresh random point.
        Current = samplePoint(S, R);
        Driver.evaluate(Current, CurrentMetric, Valid);
        SinceImprovement = 0;
      }
    }
    return Result;
  }
};

//===----------------------------------------------------------------------===//
// Differential evolution on normalized coordinates
//===----------------------------------------------------------------------===//

class DeSearcher : public Searcher {
public:
  std::string name() const override { return "de"; }

  SearchResult search(const Space &S, Objective &Obj,
                      const SearchOptions &Opts) override {
    SearchResult Result;
    EvalDriver Driver(Obj, Opts, Result);
    Rng R(Opts.Seed);

    const size_t PopSize = 10;
    std::vector<Point> Pop;
    std::vector<double> Fitness;
    for (size_t I = 0; I < PopSize && Driver.budgetLeft(); ++I) {
      Point P = samplePoint(S, R);
      double Metric;
      bool Valid;
      Driver.evaluate(P, Metric, Valid);
      Pop.push_back(std::move(P));
      Fitness.push_back(Valid ? Metric
                              : std::numeric_limits<double>::infinity());
    }
    if (Pop.size() < 4)
      return Result;

    int Stale = 0;
    while (Driver.budgetLeft() && Stale < Opts.MaxEvaluations * 4) {
      for (size_t I = 0; I < Pop.size() && Driver.budgetLeft(); ++I) {
        size_t A = R.index(Pop.size()), B = R.index(Pop.size()),
               C = R.index(Pop.size());
        Point Trial = combine(S, Pop[I], Pop[A], Pop[B], Pop[C], R);
        double Metric;
        bool Valid;
        bool Fresh = Driver.evaluate(Trial, Metric, Valid);
        if (!Fresh)
          ++Stale;
        else
          Stale = 0;
        if (Valid && Metric < Fitness[I]) {
          Pop[I] = std::move(Trial);
          Fitness[I] = Metric;
        }
      }
    }
    return Result;
  }

private:
  /// Classic rand/1/bin on a normalized [0,1] coordinate per parameter.
  Point combine(const Space &S, const Point &Target, const Point &A,
                const Point &B, const Point &C, Rng &R) {
    Point Trial = Target;
    const double F = 0.6, CR = 0.8;
    for (const ParamDef &Def : S.Params) {
      if (!R.chance(CR))
        continue;
      if (Def.Kind == ParamKind::Permutation) {
        Trial.Values[Def.Id] = sampleValue(Def, R);
        continue;
      }
      double XA = norm(Def, A), XB = norm(Def, B), XC = norm(Def, C);
      double X = std::clamp(XA + F * (XB - XC), 0.0, 1.0);
      Trial.Values[Def.Id] = denorm(Def, X, R);
    }
    return Trial;
  }

  static double norm(const ParamDef &Def, const Point &P) {
    const PointValue &V = P.Values.at(Def.Id);
    if (Def.Kind == ParamKind::FloatRange || Def.Kind == ParamKind::LogFloat) {
      double X = std::get<double>(V);
      return Def.FMax > Def.FMin ? (X - Def.FMin) / (Def.FMax - Def.FMin) : 0;
    }
    std::vector<PointValue> Values = enumerateValues(Def);
    int64_t X = std::get<int64_t>(V);
    for (size_t I = 0; I < Values.size(); ++I)
      if (std::get<int64_t>(Values[I]) == X)
        return Values.size() > 1
                   ? static_cast<double>(I) / (Values.size() - 1)
                   : 0.0;
    return 0;
  }

  static PointValue denorm(const ParamDef &Def, double X, Rng &R) {
    (void)R;
    if (Def.Kind == ParamKind::FloatRange || Def.Kind == ParamKind::LogFloat)
      return Def.FMin + X * (Def.FMax - Def.FMin);
    std::vector<PointValue> Values = enumerateValues(Def);
    size_t Idx = static_cast<size_t>(
        std::lround(X * static_cast<double>(Values.size() - 1)));
    return Values[std::min(Idx, Values.size() - 1)];
  }
};

//===----------------------------------------------------------------------===//
// AUC-bandit ensemble (the OpenTuner stand-in)
//===----------------------------------------------------------------------===//

class BanditSearcher : public Searcher {
public:
  std::string name() const override { return "bandit"; }

  SearchResult search(const Space &S, Objective &Obj,
                      const SearchOptions &Opts) override {
    SearchResult Result;
    EvalDriver Driver(Obj, Opts, Result);
    Rng R(Opts.Seed);

    // Move generators: random, greedy mutation of the best, and a
    // crossover-style recombination of two elites.
    const int NumArms = 3;
    std::vector<std::vector<int>> Window(static_cast<size_t>(NumArms));
    std::vector<int> Uses(static_cast<size_t>(NumArms), 0);
    const size_t WindowCap = 50;
    int T = 0;

    std::vector<std::pair<double, Point>> Elites;

    // Seed with the midpoint default configuration (as OpenTuner seeds
    // sensible defaults) followed by random points.
    {
      Point Mid;
      for (const ParamDef &Def : S.Params) {
        std::vector<PointValue> Values = enumerateValues(Def);
        Mid.Values[Def.Id] = Values[Values.size() / 2];
      }
      double Metric;
      bool Valid;
      Driver.evaluate(Mid, Metric, Valid);
      if (Valid)
        recordElite(Elites, Metric, Mid);
    }
    for (int I = 0; I < 4 && Driver.budgetLeft(); ++I) {
      Point P = samplePoint(S, R);
      double Metric;
      bool Valid;
      Driver.evaluate(P, Metric, Valid);
      if (Valid)
        recordElite(Elites, Metric, P);
    }

    int Stale = 0;
    while (Driver.budgetLeft() && Stale < Opts.MaxEvaluations * 4) {
      ++T;
      int Arm = pickArm(Window, Uses, T);
      Point P;
      if (Arm == 0 || Elites.empty()) {
        P = samplePoint(S, R);
      } else if (Arm == 1) {
        P = mutate(S, Elites[R.index(Elites.size())].second, R);
      } else {
        const Point &A = Elites[R.index(Elites.size())].second;
        const Point &B = Elites[R.index(Elites.size())].second;
        P = crossover(S, A, B, R);
      }
      double Metric;
      bool Valid;
      bool Fresh = Driver.evaluate(P, Metric, Valid);
      // A duplicate proposal is negative feedback for the arm that produced
      // it. Crediting it keeps the bandit state moving during duplicate
      // streaks; otherwise pickArm's inputs freeze and the same exhausted
      // arm is chosen until the stale limit aborts the search.
      bool NewBest = Fresh && Driver.takeImproved();
      auto &Hist = Window[static_cast<size_t>(Arm)];
      Hist.push_back(NewBest ? 1 : 0);
      if (Hist.size() > WindowCap)
        Hist.erase(Hist.begin());
      ++Uses[static_cast<size_t>(Arm)];
      if (!Fresh) {
        ++Stale;
        continue; // the paper notes OpenTuner avoids re-assessing variants
      }
      Stale = 0;
      if (Valid)
        recordElite(Elites, Metric, P);
    }
    return Result;
  }

private:
  static void recordElite(std::vector<std::pair<double, Point>> &Elites,
                          double Metric, const Point &P) {
    Elites.emplace_back(Metric, P);
    std::sort(Elites.begin(), Elites.end(),
              [](const auto &A, const auto &B) { return A.first < B.first; });
    if (Elites.size() > 8)
      Elites.resize(8);
  }

  /// AUC credit: exponentially weighted recency of "produced a new best",
  /// plus a UCB exploration bonus.
  static int pickArm(const std::vector<std::vector<int>> &Window,
                     const std::vector<int> &Uses, int T) {
    int BestArm = 0;
    double BestScore = -1;
    for (size_t Arm = 0; Arm < Window.size(); ++Arm) {
      double Auc = 0, Weight = 0;
      const auto &Hist = Window[Arm];
      for (size_t I = 0; I < Hist.size(); ++I) {
        double W = static_cast<double>(I + 1);
        Auc += W * Hist[I];
        Weight += W;
      }
      double Exploit = Weight > 0 ? Auc / Weight : 0;
      double Explore =
          std::sqrt(2.0 * std::log(static_cast<double>(T + 1)) /
                    (Uses[Arm] + 1));
      double Score = Exploit + 0.3 * Explore;
      if (Score > BestScore) {
        BestScore = Score;
        BestArm = static_cast<int>(Arm);
      }
    }
    return BestArm;
  }

  static Point crossover(const Space &S, const Point &A, const Point &B,
                         Rng &R) {
    Point P = A;
    for (const ParamDef &Def : S.Params)
      if (R.chance(0.5))
        P.Values[Def.Id] = B.Values.at(Def.Id);
    return P;
  }
};

//===----------------------------------------------------------------------===//
// Tree-structured Parzen estimator (the HyperOpt stand-in)
//===----------------------------------------------------------------------===//

class TpeSearcher : public Searcher {
public:
  std::string name() const override { return "tpe"; }

  SearchResult search(const Space &S, Objective &Obj,
                      const SearchOptions &Opts) override {
    SearchResult Result;
    EvalDriver Driver(Obj, Opts, Result);
    Rng R(Opts.Seed);

    std::vector<std::pair<double, Point>> History;

    const int Startup = std::min(10, std::max(3, Opts.MaxEvaluations / 10));
    int Stale = 0;
    while (Driver.budgetLeft() && Stale < Opts.MaxEvaluations * 4) {
      Point P;
      if (static_cast<int>(History.size()) < Startup) {
        P = samplePoint(S, R);
      } else if (Stale > 0 && R.chance(0.5)) {
        // The model proposed an already-assessed point last round; its
        // density estimate has concentrated on exhausted ground. Fall back
        // to uniform exploration until a proposal lands somewhere fresh.
        P = samplePoint(S, R);
      } else {
        P = propose(S, History, R);
      }
      double Metric;
      bool Valid;
      bool Fresh = Driver.evaluate(P, Metric, Valid);
      if (!Fresh) {
        ++Stale;
        continue;
      }
      Stale = 0;
      // Failed points enter the history with their infinite sentinel metric:
      // they sort to the bad tail of the split, so the density ratio steers
      // proposals away from the failing subspace instead of forgetting it.
      History.emplace_back(Metric, P);
    }
    return Result;
  }

private:
  /// Splits history at the gamma quantile into good/bad sets and proposes
  /// the candidate maximizing the density ratio l(x)/g(x), per parameter.
  Point propose(const Space &S, std::vector<std::pair<double, Point>> History,
                Rng &R) {
    std::sort(History.begin(), History.end(),
              [](const auto &A, const auto &B) { return A.first < B.first; });
    size_t NGood = std::max<size_t>(1, History.size() / 4);

    Point Best;
    double BestScore = -std::numeric_limits<double>::infinity();
    const int Candidates = 16;
    for (int C = 0; C < Candidates; ++C) {
      Point P;
      double Score = 0;
      for (const ParamDef &Def : S.Params) {
        // Sample around a random good observation.
        const Point &Anchor = History[R.index(NGood)].second;
        PointValue V = perturb(Def, Anchor.Values.at(Def.Id), R);
        Score += std::log(density(Def, V, History, 0, NGood) + 1e-9) -
                 std::log(density(Def, V, History, NGood, History.size()) +
                          1e-9);
        P.Values[Def.Id] = std::move(V);
      }
      if (Score > BestScore) {
        BestScore = Score;
        Best = std::move(P);
      }
    }
    return Best;
  }

  PointValue perturb(const ParamDef &Def, const PointValue &Anchor, Rng &R) {
    if (Def.Kind == ParamKind::Permutation) {
      auto Perm = std::get<std::vector<int>>(Anchor);
      if (Perm.size() >= 2 && R.chance(0.5))
        std::swap(Perm[R.index(Perm.size())], Perm[R.index(Perm.size())]);
      return Perm;
    }
    if (Def.Kind == ParamKind::FloatRange || Def.Kind == ParamKind::LogFloat) {
      double X = std::get<double>(Anchor);
      double W = (Def.FMax - Def.FMin) * 0.2;
      return std::clamp(X + R.normal() * W, Def.FMin, Def.FMax);
    }
    std::vector<PointValue> Values = enumerateValues(Def);
    if (R.chance(0.35))
      return Values[R.index(Values.size())];
    int64_t X = std::get<int64_t>(Anchor);
    size_t Idx = 0;
    for (size_t I = 0; I < Values.size(); ++I)
      if (std::get<int64_t>(Values[I]) == X)
        Idx = I;
    int64_t Offset = R.range(-1, 1);
    int64_t NewIdx = std::clamp<int64_t>(static_cast<int64_t>(Idx) + Offset, 0,
                                         static_cast<int64_t>(Values.size()) - 1);
    return Values[static_cast<size_t>(NewIdx)];
  }

  /// Kernel density of a value within History[Begin, End).
  double density(const ParamDef &Def, const PointValue &V,
                 const std::vector<std::pair<double, Point>> &History,
                 size_t Begin, size_t End) {
    if (Begin >= End)
      return 0;
    double Sum = 0;
    for (size_t I = Begin; I < End; ++I) {
      const PointValue &O = History[I].second.Values.at(Def.Id);
      if (Def.Kind == ParamKind::FloatRange ||
          Def.Kind == ParamKind::LogFloat) {
        double W = std::max(1e-9, (Def.FMax - Def.FMin) * 0.15);
        double D = (std::get<double>(V) - std::get<double>(O)) / W;
        Sum += std::exp(-0.5 * D * D);
      } else if (Def.Kind == ParamKind::Permutation) {
        Sum += std::get<std::vector<int>>(V) == std::get<std::vector<int>>(O)
                   ? 1.0
                   : 0.05;
      } else {
        std::vector<PointValue> Values = enumerateValues(Def);
        double W = std::max(1.0, static_cast<double>(Values.size()) * 0.15);
        auto IndexOf = [&](int64_t X) {
          for (size_t J = 0; J < Values.size(); ++J)
            if (std::get<int64_t>(Values[J]) == X)
              return static_cast<double>(J);
          return 0.0;
        };
        double D = (IndexOf(std::get<int64_t>(V)) -
                    IndexOf(std::get<int64_t>(O))) /
                   W;
        Sum += std::exp(-0.5 * D * D);
      }
    }
    return Sum / static_cast<double>(End - Begin);
  }
};

} // namespace

std::unique_ptr<Searcher> makeExhaustiveSearcher() {
  return std::make_unique<ExhaustiveSearcher>();
}
std::unique_ptr<Searcher> makeRandomSearcher() {
  return std::make_unique<RandomSearcher>();
}
std::unique_ptr<Searcher> makeHillClimbSearcher() {
  return std::make_unique<HillClimbSearcher>();
}
std::unique_ptr<Searcher> makeDifferentialEvolutionSearcher() {
  return std::make_unique<DeSearcher>();
}
std::unique_ptr<Searcher> makeBanditSearcher() {
  return std::make_unique<BanditSearcher>();
}
std::unique_ptr<Searcher> makeTpeSearcher() {
  return std::make_unique<TpeSearcher>();
}

std::unique_ptr<Searcher> makeSearcher(const std::string &Name) {
  if (Name == "exhaustive")
    return makeExhaustiveSearcher();
  if (Name == "random")
    return makeRandomSearcher();
  if (Name == "hillclimb")
    return makeHillClimbSearcher();
  if (Name == "de")
    return makeDifferentialEvolutionSearcher();
  if (Name == "bandit" || Name == "opentuner")
    return makeBanditSearcher();
  if (Name == "tpe" || Name == "hyperopt")
    return makeTpeSearcher();
  return nullptr;
}

} // namespace search
} // namespace locus
