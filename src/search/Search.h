//===- Search.h - Search module interface -----------------------*- C++ -*-===//
///
/// \file
/// The search-module interface of Section IV-B and the built-in searchers.
/// A search module receives the extracted Space and an Objective (evaluate a
/// Point, smaller metric is better) and returns the best point found within
/// a budget of assessments. Invalid points (dependent-range violations,
/// illegal transformations) report Valid = false and the search moves on,
/// exactly as the paper describes for OpenTuner.
///
/// Built-in searchers:
///  - exhaustive: odometer enumeration (small spaces, ground truth in tests)
///  - random: uniform sampling
///  - hillclimb: greedy mutation with restarts
///  - de: differential evolution on normalized coordinates
///  - bandit: AUC credit-assignment ensemble of the above three move types,
///    with tested-variant deduplication (the OpenTuner stand-in)
///  - tpe: tree-structured Parzen estimator (the HyperOpt stand-in)
///
//===----------------------------------------------------------------------===//
#ifndef LOCUS_SEARCH_SEARCH_H
#define LOCUS_SEARCH_SEARCH_H

#include "src/search/Space.h"
#include "src/support/Rng.h"

#include <array>
#include <atomic>
#include <functional>
#include <limits>
#include <memory>
#include <optional>
#include <string>
#include <string_view>

namespace locus {
namespace search {

/// Why an assessment failed. Empirical search over composed loop
/// transformations lives on failed points (Kruse & Finkel report large
/// invalid fractions in such spaces); collapsing every mode into one bool
/// hides whether a search is fighting illegal rewrites, crashing variants,
/// or a flaky measurement. The taxonomy is threaded from the interpreter
/// and evaluator through every searcher into per-kind counters.
enum class FailureKind : uint8_t {
  None = 0,         ///< success
  TransformIllegal, ///< the transformation recipe itself failed to execute
  InvalidPoint,     ///< dependent-range violation / module reported Illegal
  PrepareFailed,    ///< variant did not compile on the evaluator
  RuntimeTrap,      ///< variant crashed while running (OOB, bad index, ...)
  BudgetExceeded,   ///< variant blew its per-variant deadline
  ChecksumMismatch, ///< variant computed different results than the baseline
  MetricUnstable,   ///< measurement was non-finite / non-reproducible
};

inline constexpr int NumFailureKinds = 8;

/// Stable name of a failure kind ("None", "RuntimeTrap", ...).
const char *failureKindName(FailureKind K);

/// Parses a failure-kind name; sets Ok=false (and returns None) on unknown
/// names.
FailureKind parseFailureKind(std::string_view Name, bool &Ok);

/// The outcome of assessing one point: a metric (lower is better) or a
/// classified failure with a human-readable detail.
struct EvalOutcome {
  double Metric = std::numeric_limits<double>::infinity();
  FailureKind Failure = FailureKind::None;
  std::string Detail;

  bool ok() const { return Failure == FailureKind::None; }

  static EvalOutcome success(double Metric) {
    EvalOutcome O;
    O.Metric = Metric;
    return O;
  }
  static EvalOutcome fail(FailureKind K, std::string Detail = "") {
    EvalOutcome O;
    O.Failure = K;
    O.Detail = std::move(Detail);
    return O;
  }
};

/// Evaluation callback: assesses a point and reports a metric or a
/// classified failure.
class Objective {
public:
  virtual ~Objective() = default;
  virtual EvalOutcome assess(const Point &P) = 0;

  /// True when assess() may be called concurrently from multiple threads.
  /// The evaluation pool dispatches proposal batches in parallel only when
  /// the objective opts in (SearchOptions::Jobs > 1 alone is not enough);
  /// a concurrency-safe objective must build per-call interpreter/evaluator
  /// state instead of mutating anything shared.
  virtual bool concurrencySafe() const { return false; }

  /// Legacy adapter: metric plus a validity flag (failure kinds erased).
  double evaluate(const Point &P, bool &Valid) {
    EvalOutcome O = assess(P);
    Valid = O.ok();
    return Valid ? O.Metric : 0;
  }
};

/// Base class for objectives that support batched, concurrent assessment:
/// deriving from BatchObjective asserts that assess() is reentrant, so the
/// search loop may hand a whole proposal batch (a DE generation, the next
/// stretch of an exhaustive sweep) to the evaluation pool at once.
class BatchObjective : public Objective {
public:
  bool concurrencySafe() const override { return true; }
};

/// Convenience adapter over a lambda, in either the outcome-returning or the
/// legacy (metric, Valid&) form; the latter maps Valid=false to InvalidPoint.
/// Pass ThreadSafe=true when the lambda tolerates concurrent calls (required
/// for the pool to parallelize under SearchOptions::Jobs > 1).
class LambdaObjective : public Objective {
public:
  using Fn = std::function<double(const Point &, bool &)>;
  using OutcomeFn = std::function<EvalOutcome(const Point &)>;
  explicit LambdaObjective(OutcomeFn F, bool ThreadSafe = false)
      : F(std::move(F)), ThreadSafe(ThreadSafe) {}
  explicit LambdaObjective(Fn Legacy, bool ThreadSafe = false)
      : F([G = std::move(Legacy)](const Point &P) {
          bool Valid = false;
          double Metric = G(P, Valid);
          return Valid ? EvalOutcome::success(Metric)
                       : EvalOutcome::fail(FailureKind::InvalidPoint);
        }),
        ThreadSafe(ThreadSafe) {}
  EvalOutcome assess(const Point &P) override { return F(P); }
  bool concurrencySafe() const override { return ThreadSafe; }

private:
  OutcomeFn F;
  bool ThreadSafe = false;
};

struct EvalRecord {
  Point P;
  double Metric = 0;
  bool Valid = false; ///< convenience mirror of Failure == None
  FailureKind Failure = FailureKind::InvalidPoint;
  std::string Detail;
};

struct SearchOptions {
  /// Maximum number of variant assessments (the paper's per-search budget,
  /// e.g. 1,000 for DGEMM and 500 per extracted loop nest).
  int MaxEvaluations = 100;
  uint64_t Seed = 42;
  /// Records reloaded from a crash-safe journal. A proposal matching a
  /// replayed record consumes its cached outcome without calling the
  /// objective, counts toward the budget, and (because the searcher sees
  /// exactly what the original run saw) reproduces the interrupted run's
  /// trajectory before fresh evaluations continue it.
  std::vector<EvalRecord> Replay;
  /// Journal sink: called once per fresh (non-replayed) evaluation, in
  /// order. Used to append to the on-disk journal.
  std::function<void(const EvalRecord &)> OnFreshEval;

  /// Static legality oracle: returns the failure the objective would report
  /// for a point it can prove invalid without materializing the variant, or
  /// nullopt when the point must be evaluated. Pruned points count in
  /// SearchResult::PrunedStatic and otherwise flow through the searcher
  /// exactly like an evaluated failure, so the trajectory (and the best
  /// point found) is unchanged. Always invoked on the search thread, in
  /// proposal order (the oracle need not be thread-safe).
  std::function<std::optional<EvalOutcome>(const Point &)> StaticFilter;

  /// Number of concurrent evaluation workers. Proposal batches are
  /// dispatched across Jobs std::jthread workers when the objective reports
  /// concurrencySafe(); results are committed back in proposal order, so a
  /// seeded trajectory is bit-identical to the Jobs=1 run (batch widths are
  /// fixed per searcher, independent of Jobs). 1 evaluates inline.
  int Jobs = 1;
  /// Cooperative stop: when non-null and set, the evaluation driver reports
  /// the budget as exhausted at the next between-iterations check. The
  /// searcher then unwinds normally — the journal's last record is complete
  /// and synced, partial results are returned, SearchResult::Stopped is set.
  /// Wire support::shutdownFlag() here for SIGTERM/SIGINT graceful
  /// shutdown.
  const std::atomic<bool> *StopFlag = nullptr;
};

struct SearchResult {
  bool Found = false;
  /// True when the run ended because SearchOptions::StopFlag was raised
  /// rather than by exhausting MaxEvaluations or the space.
  bool Stopped = false;
  Point Best;
  double BestMetric = std::numeric_limits<double>::infinity();
  int Evaluations = 0;         ///< distinct variants assessed (incl. replay)
  int ReplayedEvaluations = 0; ///< of those, satisfied from Replay
  int InvalidPoints = 0;       ///< points rejected as invalid (any kind)
  int DuplicatesSkipped = 0;   ///< proposals identical to evaluated variants
  int PrunedStatic = 0;        ///< of InvalidPoints, proven by StaticFilter
                               ///< without invoking the objective
  int PrunedStaticByRange = 0; ///< of PrunedStatic, proven by symbolic
                               ///< dependent-range resolution (filled by the
                               ///< driver from the legality oracle)
  /// Duplicate proposals served a memoized outcome instead of being
  /// re-assessed (the canonical counter; DuplicatesSkipped mirrors it for
  /// backward compatibility). Variant-level dedup across *distinct* points
  /// is counted separately in CacheDedupSaves.
  int DuplicateHits = 0;
  /// Per-kind failure counts, indexed by FailureKind; the entries other
  /// than None sum to InvalidPoints.
  std::array<int, NumFailureKinds> FailureCounts{};
  std::vector<EvalRecord> History;

  // Evaluation-pool observability (filled by the search loop).
  int PoolJobs = 1;  ///< concurrent evaluation workers used
  int Batches = 0;   ///< proposal batches dispatched to the pool
  int MaxBatch = 0;  ///< largest number of points assessed concurrently
  int PooledEvaluations = 0; ///< objective assessments dispatched through
                             ///< batches of size > 1 (worker utilization =
                             ///< PooledEvaluations / Evaluations)

  // Content-addressed evaluation-cache counters (filled by the driver when
  // the cache is enabled; see search::EvalCache).
  uint64_t CacheHits = 0;
  uint64_t CacheMisses = 0;
  uint64_t CacheDedupSaves = 0; ///< distinct points that materialized to an
                                ///< already-evaluated variant

  // Persistent-cache counters (filled by the driver when --cache-dir is
  // set; see search::PersistentEvalCache).
  uint64_t CacheLoadedPersistent = 0; ///< entries preloaded from the store
  uint64_t CachePersistedAppends = 0; ///< entries this run appended to it
  uint64_t CacheWarnings = 0;         ///< store I/O/format problems surfaced
  bool CacheDegraded = false;         ///< persistence disabled after an error

  int failures(FailureKind K) const {
    return FailureCounts[static_cast<size_t>(K)];
  }
};

/// A search module.
class Searcher {
public:
  virtual ~Searcher() = default;
  virtual std::string name() const = 0;
  virtual SearchResult search(const Space &S, Objective &Obj,
                              const SearchOptions &Opts) = 0;
};

std::unique_ptr<Searcher> makeExhaustiveSearcher();
std::unique_ptr<Searcher> makeRandomSearcher();
std::unique_ptr<Searcher> makeHillClimbSearcher();
std::unique_ptr<Searcher> makeDifferentialEvolutionSearcher();
std::unique_ptr<Searcher> makeBanditSearcher();
std::unique_ptr<Searcher> makeTpeSearcher();

/// Factory by name ("exhaustive", "random", "hillclimb", "de", "bandit",
/// "opentuner" (alias of bandit), "tpe", "hyperopt" (alias of tpe)); null
/// for unknown names.
std::unique_ptr<Searcher> makeSearcher(const std::string &Name);

/// Enumerates the candidate values of a parameter (used by the exhaustive
/// searcher, mutation moves, and tests). Float ranges are discretized into
/// 16 steps; permutations are not enumerated here.
std::vector<PointValue> enumerateValues(const ParamDef &P);

/// Samples a uniform random value for a parameter.
PointValue sampleValue(const ParamDef &P, Rng &R);

/// Samples a full random point.
Point samplePoint(const Space &S, Rng &R);

} // namespace search
} // namespace locus

#endif // LOCUS_SEARCH_SEARCH_H
