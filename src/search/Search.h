//===- Search.h - Search module interface -----------------------*- C++ -*-===//
///
/// \file
/// The search-module interface of Section IV-B and the built-in searchers.
/// A search module receives the extracted Space and an Objective (evaluate a
/// Point, smaller metric is better) and returns the best point found within
/// a budget of assessments. Invalid points (dependent-range violations,
/// illegal transformations) report Valid = false and the search moves on,
/// exactly as the paper describes for OpenTuner.
///
/// Built-in searchers:
///  - exhaustive: odometer enumeration (small spaces, ground truth in tests)
///  - random: uniform sampling
///  - hillclimb: greedy mutation with restarts
///  - de: differential evolution on normalized coordinates
///  - bandit: AUC credit-assignment ensemble of the above three move types,
///    with tested-variant deduplication (the OpenTuner stand-in)
///  - tpe: tree-structured Parzen estimator (the HyperOpt stand-in)
///
//===----------------------------------------------------------------------===//
#ifndef LOCUS_SEARCH_SEARCH_H
#define LOCUS_SEARCH_SEARCH_H

#include "src/search/Space.h"
#include "src/support/Rng.h"

#include <functional>
#include <limits>
#include <memory>
#include <string>

namespace locus {
namespace search {

/// Evaluation callback: returns the metric of a point (lower is better) and
/// sets Valid=false when the point does not produce a runnable variant.
class Objective {
public:
  virtual ~Objective() = default;
  virtual double evaluate(const Point &P, bool &Valid) = 0;
};

/// Convenience adapter over a lambda.
class LambdaObjective : public Objective {
public:
  using Fn = std::function<double(const Point &, bool &)>;
  explicit LambdaObjective(Fn F) : F(std::move(F)) {}
  double evaluate(const Point &P, bool &Valid) override { return F(P, Valid); }

private:
  Fn F;
};

struct SearchOptions {
  /// Maximum number of variant assessments (the paper's per-search budget,
  /// e.g. 1,000 for DGEMM and 500 per extracted loop nest).
  int MaxEvaluations = 100;
  uint64_t Seed = 42;
};

struct EvalRecord {
  Point P;
  double Metric = 0;
  bool Valid = false;
};

struct SearchResult {
  bool Found = false;
  Point Best;
  double BestMetric = std::numeric_limits<double>::infinity();
  int Evaluations = 0;       ///< distinct variants actually assessed
  int InvalidPoints = 0;     ///< points rejected as invalid
  int DuplicatesSkipped = 0; ///< proposals identical to evaluated variants
  std::vector<EvalRecord> History;
};

/// A search module.
class Searcher {
public:
  virtual ~Searcher() = default;
  virtual std::string name() const = 0;
  virtual SearchResult search(const Space &S, Objective &Obj,
                              const SearchOptions &Opts) = 0;
};

std::unique_ptr<Searcher> makeExhaustiveSearcher();
std::unique_ptr<Searcher> makeRandomSearcher();
std::unique_ptr<Searcher> makeHillClimbSearcher();
std::unique_ptr<Searcher> makeDifferentialEvolutionSearcher();
std::unique_ptr<Searcher> makeBanditSearcher();
std::unique_ptr<Searcher> makeTpeSearcher();

/// Factory by name ("exhaustive", "random", "hillclimb", "de", "bandit",
/// "opentuner" (alias of bandit), "tpe", "hyperopt" (alias of tpe)); null
/// for unknown names.
std::unique_ptr<Searcher> makeSearcher(const std::string &Name);

/// Enumerates the candidate values of a parameter (used by the exhaustive
/// searcher, mutation moves, and tests). Float ranges are discretized into
/// 16 steps; permutations are not enumerated here.
std::vector<PointValue> enumerateValues(const ParamDef &P);

/// Samples a uniform random value for a parameter.
PointValue sampleValue(const ParamDef &P, Rng &R);

/// Samples a full random point.
Point samplePoint(const Space &S, Rng &R);

} // namespace search
} // namespace locus

#endif // LOCUS_SEARCH_SEARCH_H
