//===- RegionDiscovery.h - Pragma-free optimizable-region discovery -*- C++ -*-===//
///
/// \file
/// Static discovery of optimizable code regions in *unannotated* MiniC, the
/// pass that drops the `#pragma @Locus` requirement: instead of optimizing
/// only what a user marked by hand, the system scans a translation unit for
/// candidate loop nests, triages their legality with the existing `Affine`
/// and `Dependence` analyses (every bail-out carries a located reason — a
/// candidate is never dropped silently), ranks the survivors by a static
/// hotness estimate, and synthesizes exactly the artifacts the rest of the
/// pipeline already consumes:
///
///  - auto-named region labels ("scop0", "scop1", ... in rank order),
///  - injected region blocks on the AST (the unparser re-emits them as
///    `#pragma @Locus loop=NAME` markers, indistinguishable from hand
///    annotations — test-asserted structural equality), and
///  - a generated Fig. 13-style generic Locus optimization program per
///    candidate, so a discovered region flows straight into the existing
///    search/evaluation stack.
///
/// The pipeline mirrors the phoenix Identify -> DependenceAnalysis ->
/// ProgramSlicing pass structure named in ROADMAP.md, restricted to the
/// MiniC world: Identify (structural scan) -> triage (affine bounds,
/// side-effect-free bodies, dependence availability) -> rank (hotness) ->
/// annotate + generate.
///
/// Verdicts:
///  - Selected: structurally sound, dependence information available; the
///    full generic program (interchange/tiling/unroll-and-jam) applies.
///  - Demoted:  annotatable and tunable, but dependence analysis is
///    unavailable (non-affine subscripts, conditionals in the nest); the
///    generic program degrades to its dependence-free arm (unrolling), and
///    the candidate ranks below every Selected one. The reason is located.
///  - Rejected: not a usable region (side-effecting calls, non-affine
///    bounds, non-positive step); never annotated. The reason is located.
///
/// Determinism anchor: annotating a discovered candidate (renamed to the
/// hand-chosen label) produces a program structurally equal to the
/// hand-annotated original, so tuning it replays to the bit-identical
/// search trajectory — same best point, metric and journal record sequence
/// (asserted per searcher in RegionDiscoveryTest).
///
//===----------------------------------------------------------------------===//
#ifndef LOCUS_ANALYSIS_REGIONDISCOVERY_H
#define LOCUS_ANALYSIS_REGIONDISCOVERY_H

#include "src/cir/Ast.h"
#include "src/machine/CacheSim.h"
#include "src/support/Diag.h"
#include "src/support/Error.h"

#include <cstdint>
#include <string>
#include <vector>

namespace locus {
namespace analysis {

/// Per-candidate verdict of the discovery triage.
enum class CandidateVerdict { Selected, Demoted, Rejected };

/// Stable name of a verdict ("selected", "demoted", "rejected").
const char *candidateVerdictName(CandidateVerdict V);

/// One candidate loop nest found by the scan. Candidates are outermost
/// `for` statements not already inside a named `@Locus` region; everything
/// nested below a candidate root belongs to that candidate.
struct NestCandidate {
  /// Position of the root loop in the scan order (preorder over the
  /// program body, descending through plain blocks and `if` branches but
  /// never into loops or named regions). This is the stable identity
  /// annotateRegions() uses to find the loop again in a clone.
  int ScanIndex = 0;

  /// Assigned region label ("scop0", ...), in rank order over annotatable
  /// (Selected + Demoted) candidates; empty for Rejected ones. Callers may
  /// overwrite it before annotateRegions() to pin a specific name (the
  /// determinism tests rename the single candidate to the hand label).
  std::string Name;

  support::SrcLoc Loc;  ///< root loop position
  std::string LoopVar;  ///< root induction variable
  int Depth = 0;        ///< full nest depth (longest chain)
  bool Perfect = false; ///< perfectly nested down to the innermost loop

  CandidateVerdict Verdict = CandidateVerdict::Selected;
  /// Located reason for Demoted / Rejected verdicts (empty for Selected).
  support::Diag Why;

  /// True when DependenceInfo::compute succeeded on the root.
  bool DepAvailable = false;

  // Hotness model (see DESIGN.md "Region discovery").
  /// Product of per-loop trip counts along the deepest chain. Symbolic
  /// bounds are refined by range analysis: a bound whose interval is a
  /// singleton gives the exact trip, a bounded interval gives an
  /// upper-bound estimate, and only fully unbounded bounds fall back to
  /// DiscoveryOptions::SymbolicTrip.
  uint64_t TripProduct = 1;
  /// True when every trip count along the chain is exactly known — from a
  /// compile-time-constant bound or a singleton bound interval; estimates
  /// and SymbolicTrip fallbacks clear it.
  bool TripExact = false;
  /// Estimated distinct bytes touched per nest execution; 0 when unknown
  /// (symbolic bounds or undeclared arrays).
  uint64_t FootprintBytes = 0;
  /// Depth x TripProduct, scaled by the machine-model latency factor of
  /// the footprint when it is known (a nest whose working set spills to a
  /// farther cache level ranks hotter: more cycles to win back).
  double Hotness = 0;
};

/// Options for the discovery scan.
struct DiscoveryOptions {
  /// Prefix of auto-assigned region labels; rank index is appended.
  std::string NamePrefix = "scop";
  /// Machine whose cache hierarchy refines the hotness estimate.
  machine::MachineConfig Machine = machine::MachineConfig::xeonE5v3();
  /// Assumed trip count for loops whose bounds are not compile-time
  /// constants (the symbolic part of the trip-count product).
  uint64_t SymbolicTrip = 64;
};

/// Result of a discovery scan: candidates in rank order plus advisory notes.
struct DiscoveryReport {
  /// Ranked candidates: Selected by descending hotness, then Demoted by
  /// descending hotness, then Rejected in source order.
  std::vector<NestCandidate> Candidates;
  /// Advisory notes (e.g. "no loop nests found", "loop already annotated");
  /// located where possible. Never errors: discovery is advisory.
  std::vector<support::Diag> Notes;
  /// Number of outer loops scanned (candidates + rejected).
  int NumScanned = 0;
  /// Number of loops skipped because they already sit inside a named
  /// `@Locus` region.
  int NumAlreadyAnnotated = 0;

  /// Candidates that can be annotated and tuned (Selected + Demoted), in
  /// rank order, truncated to \p TopN when TopN > 0.
  std::vector<const NestCandidate *> annotatable(int TopN = 0) const;

  /// Human-readable ranked report (the `--discover` output).
  std::string render() const;
};

/// Scans \p P for candidate loop nests. Pure analysis: \p P is not
/// modified. Loops already inside named regions are skipped (with a note);
/// a program with no loops at all yields an empty candidate list and a
/// located advisory note instead of surprising callers.
DiscoveryReport discoverRegions(const cir::Program &P,
                                const DiscoveryOptions &Opts = {});

/// Wraps the root loop of every annotatable candidate (truncated to
/// \p TopN when > 0) in a region block carrying the candidate's Name —
/// exactly the structure the parser builds for a hand-written
/// `#pragma @Locus loop=NAME`. \p P must be the scanned program or a
/// structurally identical clone of it; returns the number of regions
/// injected, or an error when the scan shape no longer matches.
Expected<int> annotateRegions(cir::Program &P, const DiscoveryReport &Report,
                              int TopN = 0);

/// The Fig. 13 generic optimization program (Section V-D) targeting region
/// \p RegionName: interchange + tiling OR unroll-and-jam OR nothing,
/// optional distribution, and unrolling, all guarded by the dependence and
/// shape queries so it degrades gracefully on Demoted candidates.
std::string genericLocusProgram(const std::string &RegionName);

/// genericLocusProgram for one discovered candidate (uses its Name).
std::string genericLocusProgram(const NestCandidate &C);

/// Removes every `#pragma @Locus ...` line (loop/block/endblock markers)
/// from MiniC source text, leaving all other lines — including non-Locus
/// pragmas — untouched. Used to derive unannotated twins of hand-annotated
/// workloads for the discovery determinism tests.
std::string stripLocusRegionPragmas(const std::string &Source);

} // namespace analysis
} // namespace locus

#endif // LOCUS_ANALYSIS_REGIONDISCOVERY_H
