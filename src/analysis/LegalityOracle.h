//===- LegalityOracle.h - Static legality classification -------*- C++ -*-===//
///
/// \file
/// Classifies search points as provably invalid BEFORE a variant is
/// materialized, from the TransformPlan recorded during space extraction.
/// Two failure sources are modeled:
///
///  - dependent-range violations: RangeCheck entries are evaluated directly
///    against the point (the bounds are constants or other parameters).
///    Before any point is seen they are also evaluated SYMBOLICALLY over the
///    parameter value intervals (RangeAnalysis.h): a check that provably
///    passes for every point in the space is elided from the per-point path,
///    and the remaining checks are memoized per *sub-box* — the projection
///    of the point onto the parameters the check mentions — so a whole
///    sub-box of provably-invalid points short-circuits to the recorded
///    verdict without re-resolving the bounds;
///  - illegal/erroneous module calls: ModuleCall entries whose arguments
///    fully resolve are REPLAYED, through the same module registry the
///    interpreter uses, on a cached clone of the baseline program. A module
///    reporting Illegal/Error yields the same failure the concrete run
///    would produce; a module that applies extends the cached region state
///    for the next entry.
///
/// Replay per region is incremental: a prefix cache keyed by the sequence of
/// applied calls means points sharing a transformation prefix (e.g. the same
/// tiling under different unroll factors) reuse the materialized state.
/// Whenever an entry cannot be modeled — unresolvable arguments, an entry
/// under an unknown conditional, overlapping or multiply-instantiated
/// regions — the affected region is poisoned and classification degrades to
/// "cannot prove" (nullopt), never to a wrong prediction. The search then
/// evaluates the point normally, so enabling the oracle never changes which
/// best point a search finds, only how many evaluator invocations it costs.
///
//===----------------------------------------------------------------------===//
#ifndef LOCUS_ANALYSIS_LEGALITYORACLE_H
#define LOCUS_ANALYSIS_LEGALITYORACLE_H

#include "src/analysis/RangeAnalysis.h"
#include "src/analysis/TransformPlan.h"
#include "src/cir/Ast.h"
#include "src/search/Search.h"
#include "src/search/Space.h"
#include "src/transform/Transform.h"

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>

namespace locus {
namespace analysis {

/// Applies module \p Module.\p Member with fully resolved \p Args to
/// \p Region of \p Prog. Supplied by the driver layer (it owns the module
/// registry and the argument-value conversion), so replay goes through
/// exactly the code path the interpreter uses and cannot drift from it.
using ModuleInvoker = std::function<transform::TransformResult(
    const std::string &Module, const std::string &Member,
    const std::map<std::string, PlanArg> &Args, cir::Block &Region,
    cir::Program &Prog)>;

class LegalityOracle {
public:
  /// \p Baseline must outlive the oracle; it is cloned, never mutated.
  LegalityOracle(const cir::Program &Baseline, const search::Space &Space,
                 TransformPlan Plan, ModuleInvoker Invoker);
  ~LegalityOracle();

  /// Returns the failure outcome the evaluation pipeline would report for a
  /// provably invalid point, or nullopt when the point cannot be proven
  /// invalid (and must be evaluated). Matches the interpreter's failure
  /// classification: range violations map to InvalidPoint, module Illegal
  /// to TransformIllegal, module Error to InvalidPoint.
  std::optional<search::EvalOutcome> classify(const search::Point &P);

  /// Number of classify() calls that proved a point invalid (monitoring).
  int prunedCount() const { return Pruned; }
  /// Of prunedCount(), how many were proven by a dependent-range check
  /// (fresh or from a memoized sub-box verdict).
  int rangePrunedCount() const { return RangePruned; }
  /// Range checks proven to pass for EVERY point of the space at
  /// construction time and elided from the per-point path.
  int rangeChecksElided() const { return RangeChecksElided; }
  /// classify() range-check lookups served from a memoized sub-box verdict.
  int rangeBoxHits() const { return RangeBoxHits; }

private:
  struct RegionState;

  /// Construction-time symbolic classification of one RangeCheck entry.
  struct RangeCheckInfo {
    /// Proven to pass over the whole parameter box; skip it per point.
    bool AlwaysPasses = false;
    /// Verdict is a pure function of KeyParams' point values; memoize it.
    bool Memoizable = false;
    /// Parameters the verdict depends on: guards, the checked parameter,
    /// and every parameter reachable from the Lo/Hi bound expressions
    /// (through enum option and permutation item lists).
    std::vector<std::string> KeyParams;
  };

  const cir::Program &Baseline;
  const search::Space &Space;
  TransformPlan Plan;
  ModuleInvoker Invoker;

  /// Per region name: whether replay is permitted at all (single,
  /// non-overlapping instantiation in the baseline).
  std::map<std::string, bool> RegionReplayable;

  /// Prefix cache: (region name, applied-call-sequence key) -> materialized
  /// program state. Bounded; see Impl.
  std::map<std::string, std::unique_ptr<RegionState>> PrefixCache;

  /// Failed-call cache: (region, prefix, call key) -> outcome, so repeated
  /// illegal prefixes across points don't re-run the module.
  std::map<std::string, search::EvalOutcome> FailCache;

  /// Parallel to Plan.Entries (meaningful for RangeCheck entries only).
  std::vector<RangeCheckInfo> RCInfo;
  /// Sub-box memo: entry index + key-parameter projection -> verdict
  /// (nullopt records a pass). Bounded; see classify().
  std::map<std::string, std::optional<search::EvalOutcome>> RangeBoxVerdicts;

  int Pruned = 0;
  int RangePruned = 0;
  int RangeChecksElided = 0;
  int RangeBoxHits = 0;
};

/// Interval spanning every value the sampler can assign to \p Def (the
/// static domain; dependent-range links do not narrow it). Bounded for the
/// integer-valued kinds (Bool, IntRange, Pow2, LogInt); full() otherwise.
Interval paramValueInterval(const search::ParamDef &Def);

/// True when every value the sampler can assign to \p Def is a power of two.
bool paramValuesAllPow2(const search::ParamDef &Def);

} // namespace analysis
} // namespace locus

#endif // LOCUS_ANALYSIS_LEGALITYORACLE_H
