//===- Affine.cpp - Affine form extraction ---------------------------------===//

#include "src/analysis/Affine.h"

#include <sstream>

namespace locus {
namespace analysis {

AffineExpr AffineExpr::operator+(const AffineExpr &Other) const {
  AffineExpr Result = *this;
  Result.Constant += Other.Constant;
  for (const auto &[Name, Coeff] : Other.Coeffs)
    Result.addTerm(Name, Coeff);
  return Result;
}

AffineExpr AffineExpr::operator-(const AffineExpr &Other) const {
  return *this + Other.scaled(-1);
}

AffineExpr AffineExpr::scaled(int64_t Factor) const {
  AffineExpr Result;
  if (Factor == 0)
    return Result;
  Result.Constant = Constant * Factor;
  for (const auto &[Name, Coeff] : Coeffs)
    Result.Coeffs[Name] = Coeff * Factor;
  return Result;
}

std::string AffineExpr::str() const {
  std::ostringstream Out;
  bool First = true;
  for (const auto &[Name, Coeff] : Coeffs) {
    if (!First)
      Out << " + ";
    First = false;
    if (Coeff == 1)
      Out << Name;
    else
      Out << Coeff << "*" << Name;
  }
  if (Constant != 0 || First) {
    if (!First)
      Out << " + ";
    Out << Constant;
  }
  return Out.str();
}

std::optional<AffineExpr> toAffine(const cir::Expr &E) {
  using namespace cir;
  switch (E.kind()) {
  case ExprKind::IntLit:
    return AffineExpr(cast<IntLit>(&E)->Value);
  case ExprKind::VarRef:
    return AffineExpr::variable(cast<VarRef>(&E)->Name);
  case ExprKind::Unary: {
    const auto *U = cast<UnaryExpr>(&E);
    if (U->Op != UnOp::Neg)
      return std::nullopt;
    std::optional<AffineExpr> Inner = toAffine(*U->Operand);
    if (!Inner)
      return std::nullopt;
    return Inner->scaled(-1);
  }
  case ExprKind::Binary: {
    const auto *B = cast<BinaryExpr>(&E);
    std::optional<AffineExpr> L = toAffine(*B->Lhs);
    std::optional<AffineExpr> R = toAffine(*B->Rhs);
    switch (B->Op) {
    case BinOp::Add:
      if (L && R)
        return *L + *R;
      return std::nullopt;
    case BinOp::Sub:
      if (L && R)
        return *L - *R;
      return std::nullopt;
    case BinOp::Mul:
      if (L && R) {
        if (L->isConstant())
          return R->scaled(L->constant());
        if (R->isConstant())
          return L->scaled(R->constant());
      }
      return std::nullopt;
    case BinOp::Div:
      // Division only stays affine when it divides a constant exactly.
      if (L && R && L->isConstant() && R->isConstant() &&
          R->constant() != 0 && L->constant() % R->constant() == 0)
        return AffineExpr(L->constant() / R->constant());
      return std::nullopt;
    default:
      return std::nullopt;
    }
  }
  case ExprKind::Call: {
    // min/max of constants folds; otherwise non-affine.
    const auto *C = cast<CallExpr>(&E);
    if ((C->Callee == "min" || C->Callee == "max") && C->Args.size() == 2) {
      std::optional<AffineExpr> A = toAffine(*C->Args[0]);
      std::optional<AffineExpr> B = toAffine(*C->Args[1]);
      if (A && B && A->isConstant() && B->isConstant()) {
        int64_t V = C->Callee == "min"
                        ? std::min(A->constant(), B->constant())
                        : std::max(A->constant(), B->constant());
        return AffineExpr(V);
      }
    }
    return std::nullopt;
  }
  case ExprKind::FloatLit:
  case ExprKind::ArrayRef:
    return std::nullopt;
  }
  return std::nullopt;
}

} // namespace analysis
} // namespace locus
