//===- TransformPlan.h - Recorded transformation plan ----------*- C++ -*-===//
///
/// \file
/// A symbolic record of what a Locus optimization program will do to a code
/// region, captured as a side effect of space extraction (convertOptUniverse).
/// Each entry is either a dependent-range check on a search parameter or a
/// module call whose arguments are reduced to PlanArgs: constants, references
/// to search parameters, or Unknown when the extraction-time value of an
/// argument cannot be trusted to equal its concrete-mode value.
///
/// The plan is consumed by the static legality oracle (LegalityOracle.h),
/// which classifies search points as provably-invalid before a variant is
/// materialized. Everything here is conservative: an argument that cannot be
/// resolved is Unknown, and Unknown always degrades to "cannot prove
/// anything", never to a wrong prediction.
///
//===----------------------------------------------------------------------===//
#ifndef LOCUS_ANALYSIS_TRANSFORMPLAN_H
#define LOCUS_ANALYSIS_TRANSFORMPLAN_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace locus {
namespace analysis {

/// A symbolic argument value: a constant, a reference to a search parameter
/// (resolved against a concrete point at classification time), or Unknown.
struct PlanArg {
  enum class Kind { Unknown, Int, Float, Str, Param, List };
  Kind K = Kind::Unknown;
  int64_t Int = 0;
  double Float = 0;
  std::string Str; ///< Str payload, or the parameter id for Param
  std::vector<PlanArg> List;

  static PlanArg unknown() { return {}; }
  static PlanArg ofInt(int64_t V) {
    PlanArg A;
    A.K = Kind::Int;
    A.Int = V;
    return A;
  }
  static PlanArg ofFloat(double V) {
    PlanArg A;
    A.K = Kind::Float;
    A.Float = V;
    return A;
  }
  static PlanArg ofStr(std::string V) {
    PlanArg A;
    A.K = Kind::Str;
    A.Str = std::move(V);
    return A;
  }
  static PlanArg ofParam(std::string Id) {
    PlanArg A;
    A.K = Kind::Param;
    A.Str = std::move(Id);
    return A;
  }
  static PlanArg ofList(std::vector<PlanArg> Items) {
    PlanArg A;
    A.K = Kind::List;
    A.List = std::move(Items);
    return A;
  }

  /// True when no Unknown appears transitively (Params count as resolvable).
  bool resolvable() const {
    if (K == Kind::Unknown)
      return false;
    for (const PlanArg &I : List)
      if (!I.resolvable())
        return false;
    return true;
  }
};

/// An entry executes only when every guarding selector parameter (an OR
/// block/expression alternative or an optional statement) is pinned to the
/// recorded alternative.
struct PlanGuard {
  std::string ParamId;
  int64_t Alt = 0;
};

/// One step of the recorded plan, in execution order.
struct PlanEntry {
  enum class Kind { RangeCheck, ModuleCall };
  Kind K = Kind::ModuleCall;

  /// Selector guards; the entry is skipped when any guard is unsatisfied.
  std::vector<PlanGuard> Guards;

  /// True when the entry was recorded inside a conditional whose outcome
  /// depends on a search value: it may or may not execute, so it can never
  /// prove a failure, and a mutating entry poisons its region.
  bool UnderUnknownCond = false;

  // -- RangeCheck: the dynamic dependent-range validation of a numeric
  // search parameter (Section IV-B): ParamId's value must lie in [Lo, Hi]
  // (each a constant or another parameter) and be a power of two if IsPow2.
  std::string ParamId;
  PlanArg Lo, Hi;
  bool IsPow2 = false;

  // -- ModuleCall: a mutating transformation call. Queries are never
  // recorded: their results flow into Locus variables, and any variable
  // whose extraction-time value may diverge from its concrete-mode value is
  // tracked as unusable by the extractor's taint analysis, degrading the
  // arguments that mention it to Unknown.
  std::string Module, Member;
  std::string Region; ///< CodeReg region name the call applies to
  int Line = 0;       ///< Locus source line of the call
  std::map<std::string, PlanArg> Args; ///< keyword (or "argN") -> value
};

/// The whole recorded plan for one Locus program against one target.
struct TransformPlan {
  std::vector<PlanEntry> Entries;

  /// CodeReg names in execution order (including those with no entries).
  /// Concrete mode runs a CodeReg body once per matching region; when a name
  /// matches several regions the executions beyond the first see state the
  /// extractor never modeled, so the oracle drops every entry recorded after
  /// the first multiply-instantiated CodeReg.
  std::vector<std::string> CodeRegOrder;

  /// Typed option values of each enum parameter (ParamDef::Options only
  /// keeps the stringified rendering).
  std::map<std::string, std::vector<PlanArg>> EnumValues;

  /// Base item list of each permutation parameter (the concrete point only
  /// stores the index permutation).
  std::map<std::string, std::vector<PlanArg>> PermItems;
};

} // namespace analysis
} // namespace locus

#endif // LOCUS_ANALYSIS_TRANSFORMPLAN_H
