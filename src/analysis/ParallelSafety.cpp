//===- ParallelSafety.cpp - OpenMP race detection & classification ----------===//

#include "src/analysis/ParallelSafety.h"

#include "src/analysis/Affine.h"
#include "src/cir/AstUtils.h"
#include "src/support/StringUtils.h"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>

namespace locus {
namespace analysis {

using namespace cir;

const char *varClassName(VarClass C) {
  switch (C) {
  case VarClass::Private:
    return "private";
  case VarClass::FirstPrivate:
    return "firstprivate";
  case VarClass::SharedReadOnly:
    return "shared-read-only";
  case VarClass::Shared:
    return "shared";
  case VarClass::Reduction:
    return "reduction";
  case VarClass::Racy:
    return "racy";
  }
  return "?";
}

const char *redOpName(RedOp O) {
  switch (O) {
  case RedOp::Add:
    return "+";
  case RedOp::Mul:
    return "*";
  case RedOp::Min:
    return "min";
  case RedOp::Max:
    return "max";
  }
  return "?";
}

namespace {

const char *depKindName(DepKind K) {
  switch (K) {
  case DepKind::Flow:
    return "flow";
  case DepKind::Anti:
    return "anti";
  case DepKind::Output:
    return "output";
  }
  return "?";
}

//===----------------------------------------------------------------------===//
// Direction-vector refinement for tile loops
//===----------------------------------------------------------------------===//

/// True when loop \p Q's iteration windows for distinct values of \p P.Var
/// are disjoint and increasing: Q starts exactly at P.Var and, per the upper
/// bound, never reaches the window of the next P iteration. This is the
/// shape rectangular tiling produces (`for (i = it; i < min(N, it + T); ...)`
/// under `for (it = ...; it += T)`), where the tile variable appears in no
/// subscript and would otherwise stay a conservative '*'.
bool controlsDisjointWindow(const ForStmt &P, const ForStmt &Q) {
  if (P.Step <= 0 || Q.Step <= 0)
    return false;
  const auto *InitVar = dyn_cast<VarRef>(Q.Init.get());
  if (!InitVar || InitVar->Name != P.Var)
    return false;
  // Find an upper-bound arm of the (possibly min-clamped) bound that is
  // affine in P.Var with coefficient 1 and no other variables; the true
  // bound is no larger than any min arm, so using one arm is sound.
  const std::function<bool(const Expr &)> ArmOk = [&](const Expr &E) -> bool {
    if (const auto *C = dyn_cast<CallExpr>(&E)) {
      if (C->Callee == "min")
        for (const auto &A : C->Args)
          if (ArmOk(*A))
            return true;
      return false;
    }
    std::optional<AffineExpr> Aff = toAffine(E);
    if (!Aff)
      return false;
    if (Aff->coeffs().size() != 1 || Aff->coeff(P.Var) != 1)
      return false;
    // Q.Var stays below P.Var + W (exclusive); disjoint when the window
    // never reaches the next tile's start at P.Var + P.Step.
    int64_t W = Q.Op == BoundOp::Lt ? Aff->constant() : Aff->constant() + 1;
    return W <= P.Step;
  };
  return ArmOk(*Q.Bound);
}

/// Refines conservative '*' entries of \p D's direction vector: when an
/// inner common loop proven '=' iterates a window that is disjoint across
/// the outer loop's iterations, equal inner values force equal outer values,
/// so the outer entry is '=' too. Runs to a fixpoint so chained tilings
/// (L2 tiles inside L1 tiles) propagate outward.
std::vector<char> refinedDirs(const Dependence &D) {
  std::vector<char> Dirs = D.Dirs;
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (size_t P = 0; P < Dirs.size(); ++P) {
      if (Dirs[P] != '*')
        continue;
      for (size_t Q = P + 1; Q < Dirs.size(); ++Q) {
        if (Dirs[Q] != '=')
          continue;
        if (controlsDisjointWindow(*D.CommonLoops[P], *D.CommonLoops[Q])) {
          Dirs[P] = '=';
          Changed = true;
          break;
        }
      }
    }
  }
  return Dirs;
}

/// mayBeCarriedBy(0) over an already-refined direction vector.
bool carriedByParallelDim(const std::vector<char> &Dirs) {
  return !Dirs.empty() && (Dirs[0] == '<' || Dirs[0] == '*');
}

std::string renderDirs(const std::vector<char> &Dirs) {
  std::string Out = "(";
  for (size_t I = 0; I < Dirs.size(); ++I) {
    if (I)
      Out += ",";
    Out += Dirs[I];
  }
  Out += ")";
  return Out;
}

//===----------------------------------------------------------------------===//
// Reduction recognition
//===----------------------------------------------------------------------===//

/// Counts occurrences of \p Name as a bare positively-signed term of the
/// additive (+/-) chain of \p E; bumps \p Other for any occurrence of Name
/// elsewhere in the chain's leaves.
void scanAddChain(const Expr &E, const std::string &Name, bool Negated,
                  int &Bare, int &Other) {
  if (const auto *B = dyn_cast<BinaryExpr>(&E)) {
    if (B->Op == BinOp::Add || B->Op == BinOp::Sub) {
      scanAddChain(*B->Lhs, Name, Negated, Bare, Other);
      scanAddChain(*B->Rhs, Name, Negated != (B->Op == BinOp::Sub), Bare,
                   Other);
      return;
    }
  }
  if (const auto *V = dyn_cast<VarRef>(&E)) {
    if (V->Name == Name) {
      if (!Negated)
        ++Bare;
      else
        ++Other;
    }
    return;
  }
  if (referencesVar(E, Name))
    ++Other;
}

void scanMulChain(const Expr &E, const std::string &Name, int &Bare,
                  int &Other) {
  if (const auto *B = dyn_cast<BinaryExpr>(&E)) {
    if (B->Op == BinOp::Mul) {
      scanMulChain(*B->Lhs, Name, Bare, Other);
      scanMulChain(*B->Rhs, Name, Bare, Other);
      return;
    }
  }
  if (const auto *V = dyn_cast<VarRef>(&E)) {
    if (V->Name == Name)
      ++Bare;
    return;
  }
  if (referencesVar(E, Name))
    ++Other;
}

/// Leaves of a nested min/min (or max/max) call chain.
void scanMinMaxChain(const Expr &E, const std::string &Callee,
                     const std::string &Name, int &Bare, int &Other) {
  if (const auto *C = dyn_cast<CallExpr>(&E)) {
    if (C->Callee == Callee) {
      for (const auto &A : C->Args)
        scanMinMaxChain(*A, Callee, Name, Bare, Other);
      return;
    }
  }
  if (const auto *V = dyn_cast<VarRef>(&E)) {
    if (V->Name == Name)
      ++Bare;
    return;
  }
  if (referencesVar(E, Name))
    ++Other;
}

/// Classifies one write to scalar \p Name as a reduction update:
///   x += e / x -= e            -> +     x *= e -> *
///   x = x + e (any +/- chain with x appearing once, positively)
///   x = x * e (any * chain with x appearing once)
///   x = min(x, e) / max(x, e)  (nested same-op chains allowed)
/// Returns nullopt when the write is not a reduction-form update.
std::optional<RedOp> reductionForm(const AssignStmt &A,
                                   const std::string &Name) {
  if (A.Op == AssignOp::Add || A.Op == AssignOp::Sub)
    return referencesVar(*A.Rhs, Name) ? std::nullopt
                                       : std::optional<RedOp>(RedOp::Add);
  if (A.Op == AssignOp::Mul)
    return referencesVar(*A.Rhs, Name) ? std::nullopt
                                       : std::optional<RedOp>(RedOp::Mul);
  // A.Op == Set: inspect the RHS shape.
  int Bare = 0, Other = 0;
  scanAddChain(*A.Rhs, Name, /*Negated=*/false, Bare, Other);
  if (Bare == 1 && Other == 0)
    return RedOp::Add;
  Bare = Other = 0;
  scanMulChain(*A.Rhs, Name, Bare, Other);
  if (Bare == 1 && Other == 0)
    return RedOp::Mul;
  if (const auto *C = dyn_cast<CallExpr>(A.Rhs.get())) {
    if (C->Callee == "min" || C->Callee == "max") {
      Bare = Other = 0;
      scanMinMaxChain(*C, C->Callee, Name, Bare, Other);
      if (Bare == 1 && Other == 0)
        return C->Callee == "min" ? RedOp::Min : RedOp::Max;
    }
  }
  return std::nullopt;
}

//===----------------------------------------------------------------------===//
// Body scan
//===----------------------------------------------------------------------===//

/// Syntactic facts about the loop body: which names are loop indices, which
/// are declared per-iteration, which scalars/arrays are read or written and
/// where.
struct BodyFacts {
  std::set<std::string> LoopVars;      ///< all induction vars, root included
  std::set<std::string> InnerLoopVars; ///< induction vars below the root
  std::set<std::string> DeclaredInBody;
  std::set<std::string> ScalarNames, ArrayNames;
  std::set<std::string> ScalarWritten, ArrayWritten;
  /// Every assignment whose LHS is scalar Name.
  std::map<std::string, std::vector<const AssignStmt *>> ScalarWrites;
  /// First write location per name, for witnesses.
  std::map<std::string, support::SrcLoc> FirstWriteLoc;

  void noteExprReads(const Expr &E) {
    switch (E.kind()) {
    case ExprKind::VarRef: {
      const auto &V = *cast<VarRef>(&E);
      if (!LoopVars.count(V.Name))
        ScalarNames.insert(V.Name);
      return;
    }
    case ExprKind::ArrayRef: {
      const auto &A = *cast<ArrayRef>(&E);
      ArrayNames.insert(A.Name);
      for (const auto &I : A.Indices)
        noteExprReads(*I);
      return;
    }
    case ExprKind::Binary:
      noteExprReads(*cast<BinaryExpr>(&E)->Lhs);
      noteExprReads(*cast<BinaryExpr>(&E)->Rhs);
      return;
    case ExprKind::Unary:
      noteExprReads(*cast<UnaryExpr>(&E)->Operand);
      return;
    case ExprKind::Call:
      for (const auto &A : cast<CallExpr>(&E)->Args)
        noteExprReads(*A);
      return;
    default:
      return;
    }
  }

  void noteWrite(const Expr &Lhs, support::SrcLoc Loc) {
    if (const auto *V = dyn_cast<VarRef>(&Lhs)) {
      if (LoopVars.count(V->Name))
        return;
      ScalarNames.insert(V->Name);
      ScalarWritten.insert(V->Name);
      if (!FirstWriteLoc.count(V->Name))
        FirstWriteLoc[V->Name] = Loc;
    } else if (const auto *A = dyn_cast<ArrayRef>(&Lhs)) {
      ArrayNames.insert(A->Name);
      ArrayWritten.insert(A->Name);
      if (!FirstWriteLoc.count(A->Name))
        FirstWriteLoc[A->Name] = Loc;
      for (const auto &I : A->Indices)
        noteExprReads(*I);
    }
  }

  void scanStmt(const Stmt &S) {
    switch (S.kind()) {
    case StmtKind::Block:
      for (const auto &C : cast<Block>(&S)->Stmts)
        scanStmt(*C);
      return;
    case StmtKind::For: {
      const auto &F = *cast<ForStmt>(&S);
      noteExprReads(*F.Init);
      noteExprReads(*F.Bound);
      for (const auto &C : F.Body->Stmts)
        scanStmt(*C);
      return;
    }
    case StmtKind::If: {
      const auto &I = *cast<IfStmt>(&S);
      noteExprReads(*I.Cond);
      for (const auto &C : I.Then->Stmts)
        scanStmt(*C);
      if (I.Else)
        for (const auto &C : I.Else->Stmts)
          scanStmt(*C);
      return;
    }
    case StmtKind::Assign: {
      const auto &A = *cast<AssignStmt>(&S);
      noteWrite(*A.Lhs, A.Loc);
      if (const auto *V = dyn_cast<VarRef>(A.Lhs.get()))
        ScalarWrites[V->Name].push_back(&A);
      noteExprReads(*A.Rhs);
      return;
    }
    case StmtKind::Decl: {
      const auto &D = *cast<DeclStmt>(&S);
      DeclaredInBody.insert(D.Name);
      if (D.isArray())
        ArrayNames.insert(D.Name);
      else
        ScalarNames.insert(D.Name);
      if (D.Init)
        noteExprReads(*D.Init);
      return;
    }
    case StmtKind::CallStmt:
      noteExprReads(*cast<CallStmt>(&S)->Call);
      return;
    }
  }

  static BodyFacts collect(const ForStmt &Root) {
    BodyFacts F;
    F.LoopVars.insert(Root.Var);
    forEachStmt(const_cast<ForStmt &>(Root), [&](Stmt &S) {
      if (auto *L = dyn_cast<ForStmt>(&S))
        if (L != &Root) {
          F.LoopVars.insert(L->Var);
          F.InnerLoopVars.insert(L->Var);
        }
    });
    for (const auto &S : Root.Body->Stmts)
      F.scanStmt(*S);
    return F;
  }
};

/// True when any expression of \p S (or an inner loop header writing it)
/// mentions \p Name.
bool stmtMentions(const Stmt &S, const std::string &Name) {
  switch (S.kind()) {
  case StmtKind::Block: {
    for (const auto &C : cast<Block>(&S)->Stmts)
      if (stmtMentions(*C, Name))
        return true;
    return false;
  }
  case StmtKind::For: {
    const auto &F = *cast<ForStmt>(&S);
    if (F.Var == Name || referencesVar(*F.Init, Name) ||
        referencesVar(*F.Bound, Name))
      return true;
    for (const auto &C : F.Body->Stmts)
      if (stmtMentions(*C, Name))
        return true;
    return false;
  }
  case StmtKind::If: {
    const auto &I = *cast<IfStmt>(&S);
    if (referencesVar(*I.Cond, Name))
      return true;
    for (const auto &C : I.Then->Stmts)
      if (stmtMentions(*C, Name))
        return true;
    if (I.Else)
      for (const auto &C : I.Else->Stmts)
        if (stmtMentions(*C, Name))
          return true;
    return false;
  }
  case StmtKind::Assign: {
    const auto &A = *cast<AssignStmt>(&S);
    return referencesVar(*A.Lhs, Name) || referencesVar(*A.Rhs, Name);
  }
  case StmtKind::Decl: {
    const auto &D = *cast<DeclStmt>(&S);
    return D.Name == Name || (D.Init && referencesVar(*D.Init, Name));
  }
  case StmtKind::CallStmt:
    return referencesVar(*cast<CallStmt>(&S)->Call, Name);
  }
  return false;
}

/// True when scalar \p Name is certainly written before any read in every
/// iteration: the first top-level body statement mentioning it is a plain
/// assignment `Name = e` with e not reading Name. (A nested first access
/// under an if or inner loop may not execute, so it does not qualify.)
bool writtenBeforeRead(const ForStmt &For, const std::string &Name) {
  for (const auto &S : For.Body->Stmts) {
    if (!stmtMentions(*S, Name))
      continue;
    const auto *A = dyn_cast<AssignStmt>(S.get());
    if (!A)
      return false;
    const auto *V = dyn_cast<VarRef>(A->Lhs.get());
    return V && V->Name == Name && A->Op == AssignOp::Set &&
           !referencesVar(*A->Rhs, Name);
  }
  return false;
}

} // namespace

//===----------------------------------------------------------------------===//
// Report rendering
//===----------------------------------------------------------------------===//

std::string RaceWitness::render() const {
  std::ostringstream Out;
  if (!Note.empty()) {
    Out << Note;
  } else {
    Out << "loop-carried " << depKindName(Kind) << " dependence on "
        << (IsScalar ? "scalar '" : "'") << Var << "'";
    if (!Dirs.empty())
      Out << ", direction " << Dirs;
  }
  if (SrcLoc.valid()) {
    bool DistinctDst =
        DstLoc.valid() && (DstLoc.Line != SrcLoc.Line || DstLoc.Col != SrcLoc.Col);
    Out << " [" << SrcLoc.str()
        << (DistinctDst ? " -> " + DstLoc.str() : std::string()) << "]";
  }
  return Out.str();
}

std::string ParallelSafetyReport::summary() const {
  switch (Verdict) {
  case ParallelVerdict::Safe:
    return "safe: no dependence carried by loop '" + LoopVar + "'";
  case ParallelVerdict::Racy:
    return "racy: " +
           (Witnesses.empty() ? std::string("conflict detected")
                              : Witnesses.front().render());
  case ParallelVerdict::Unknown:
    return "unknown: " +
           (WhyUnknown.empty() ? std::string("cannot prove parallel safety")
                               : WhyUnknown);
  }
  return "";
}

std::string ParallelSafetyReport::clauses() const {
  if (Verdict != ParallelVerdict::Safe)
    return "";
  std::vector<std::string> Private, FirstPrivate;
  std::map<std::string, std::vector<std::string>> Reductions;
  for (const VarInfo &V : Vars) {
    if (V.DeclaredInLoop)
      continue; // already per-iteration storage
    if (V.Name == LoopVar)
      continue; // the worksharing construct privatizes its own index
    if (V.Class == VarClass::Private)
      Private.push_back(V.Name);
    else if (V.Class == VarClass::FirstPrivate)
      FirstPrivate.push_back(V.Name);
    else if (V.Class == VarClass::Reduction && V.Reduction)
      Reductions[redOpName(*V.Reduction)].push_back(V.Name);
  }
  auto Join = [](const std::vector<std::string> &Names) {
    std::string Out;
    for (size_t I = 0; I < Names.size(); ++I)
      Out += (I ? "," : "") + Names[I];
    return Out;
  };
  std::string Out;
  if (!Private.empty())
    Out += "private(" + Join(Private) + ")";
  if (!FirstPrivate.empty())
    Out += std::string(Out.empty() ? "" : " ") + "firstprivate(" +
           Join(FirstPrivate) + ")";
  for (const auto &[Op, Names] : Reductions)
    Out += std::string(Out.empty() ? "" : " ") + "reduction(" + Op + ":" +
           Join(Names) + ")";
  return Out;
}

void ParallelSafetyReport::toDiags(support::DiagEngine &Diags,
                                   const std::string &Region) const {
  switch (Verdict) {
  case ParallelVerdict::Safe:
    Diags.note(LoopLoc, Region,
               "loop '" + LoopVar + "' is safe to parallelize" +
                   (clauses().empty() ? "" : " with " + clauses()));
    return;
  case ParallelVerdict::Unknown:
    Diags.warning(LoopLoc, Region,
                  "cannot prove loop '" + LoopVar +
                      "' safe to parallelize: " + WhyUnknown);
    return;
  case ParallelVerdict::Racy:
    Diags.warning(LoopLoc, Region,
                  "parallelizing loop '" + LoopVar + "' is racy");
    for (const RaceWitness &W : Witnesses)
      Diags.note(W.SrcLoc.valid() ? W.SrcLoc : LoopLoc, Region, W.render());
    return;
  }
}

//===----------------------------------------------------------------------===//
// The analysis
//===----------------------------------------------------------------------===//

bool isOmpParallelForPragma(const std::string &Text) {
  return startsWith(trimString(Text), "omp parallel for");
}

bool hasOmpParallelFor(const cir::ForStmt &For) {
  return std::any_of(For.Pragmas.begin(), For.Pragmas.end(),
                     isOmpParallelForPragma);
}

ParallelSafetyReport analyzeParallelLoop(const ForStmt &For) {
  ParallelSafetyReport Rep;
  Rep.LoopVar = For.Var;
  Rep.LoopLoc = For.Loc;

  BodyFacts Facts = BodyFacts::collect(For);

  support::Diag Why;
  std::optional<DependenceInfo> Deps = DependenceInfo::compute(For, &Why);
  bool DepsAvailable = Deps.has_value();
  if (!DepsAvailable)
    Rep.WhyUnknown = Why.Message.empty()
                         ? "dependence analysis unavailable"
                         : Why.Message +
                               (Why.Loc.valid() ? " [" + Why.Loc.str() + "]"
                                                : std::string());

  // Dependences carried by the parallel dimension, per variable name. '*'
  // entries refined through the tile-window rule first, so parallelizing a
  // tile-controlling loop is not misreported as racy.
  std::map<std::string, std::vector<const Dependence *>> Carried;
  std::map<const Dependence *, std::vector<char>> DirsOf;
  if (DepsAvailable) {
    for (const Dependence &D : Deps->deps()) {
      std::vector<char> Dirs = refinedDirs(D);
      if (carriedByParallelDim(Dirs)) {
        Carried[D.Array].push_back(&D);
        DirsOf[&D] = std::move(Dirs);
      }
    }
  }

  auto makeWitness = [&](const Dependence &D) {
    RaceWitness W;
    W.Var = D.Array;
    W.Kind = D.Kind;
    W.IsScalar = D.IsScalar;
    W.Dirs = renderDirs(DirsOf[&D]);
    if (const Stmt *S = Deps->leafStmt(D.SrcStmt))
      W.SrcLoc = S->Loc;
    if (const Stmt *S = Deps->leafStmt(D.DstStmt))
      W.DstLoc = S->Loc;
    return W;
  };

  // --- Loop indices -------------------------------------------------------
  // The parallel index is privatized by OpenMP itself; inner indices are
  // classic private variables (in C they are usually declared outside the
  // nest, so they need an explicit clause).
  {
    VarInfo V;
    V.Name = For.Var;
    V.Class = VarClass::Private;
    V.Why = "the parallel loop's own index (privatized by OpenMP)";
    Rep.Vars.push_back(std::move(V));
  }
  for (const std::string &Name : Facts.InnerLoopVars) {
    VarInfo V;
    V.Name = Name;
    V.Class = VarClass::Private;
    V.Why = "inner loop index";
    Rep.Vars.push_back(std::move(V));
  }

  // --- Scalars ------------------------------------------------------------
  for (const std::string &Name : Facts.ScalarNames) {
    VarInfo V;
    V.Name = Name;
    V.IsArray = false;
    V.DeclaredInLoop = Facts.DeclaredInBody.count(Name) > 0;

    bool Written =
        Facts.ScalarWritten.count(Name) || Facts.DeclaredInBody.count(Name);
    if (!Written) {
      V.Class = VarClass::FirstPrivate;
      V.Why = "read-only; captures its value from before the loop";
      Rep.Vars.push_back(std::move(V));
      continue;
    }
    if (V.DeclaredInLoop) {
      V.Class = VarClass::Private;
      V.Why = "declared inside the loop body (fresh per iteration)";
      Rep.Vars.push_back(std::move(V));
      continue;
    }

    // Reduction: every write is an `x = x op e` update with one consistent
    // operator, and x is read nowhere else in the body.
    const std::vector<const AssignStmt *> &Writes = Facts.ScalarWrites[Name];
    std::optional<RedOp> Op;
    bool AllReduction = !Writes.empty();
    for (const AssignStmt *A : Writes) {
      std::optional<RedOp> ThisOp = reductionForm(*A, Name);
      if (!ThisOp || (Op && *Op != *ThisOp)) {
        AllReduction = false;
        break;
      }
      Op = ThisOp;
    }
    if (AllReduction) {
      // Any read outside the reduction updates themselves disqualifies.
      bool ReadElsewhere = false;
      const std::function<void(const Stmt &)> Check = [&](const Stmt &S) {
        if (const auto *A = dyn_cast<AssignStmt>(&S)) {
          if (std::find(Writes.begin(), Writes.end(), A) != Writes.end())
            return; // its single RHS occurrence is the reduction read
          if (referencesVar(*A->Lhs, Name) || referencesVar(*A->Rhs, Name))
            ReadElsewhere = true;
          return;
        }
        if (stmtMentions(S, Name) && !isa<Block>(&S) && !isa<ForStmt>(&S) &&
            !isa<IfStmt>(&S)) {
          ReadElsewhere = true;
          return;
        }
        if (const auto *B = dyn_cast<Block>(&S)) {
          for (const auto &C : B->Stmts)
            Check(*C);
        } else if (const auto *F = dyn_cast<ForStmt>(&S)) {
          if (referencesVar(*F->Init, Name) || referencesVar(*F->Bound, Name))
            ReadElsewhere = true;
          for (const auto &C : F->Body->Stmts)
            Check(*C);
        } else if (const auto *I = dyn_cast<IfStmt>(&S)) {
          if (referencesVar(*I->Cond, Name))
            ReadElsewhere = true;
          for (const auto &C : I->Then->Stmts)
            Check(*C);
          if (I->Else)
            for (const auto &C : I->Else->Stmts)
              Check(*C);
        }
      };
      for (const auto &S : For.Body->Stmts)
        Check(*S);
      if (!ReadElsewhere) {
        V.Class = VarClass::Reduction;
        V.Reduction = Op;
        V.Why = std::string("updated only through `x = x ") +
                redOpName(*Op) + " e` chains";
        Rep.Vars.push_back(std::move(V));
        continue;
      }
    }

    if (writtenBeforeRead(For, Name)) {
      V.Class = VarClass::Private;
      V.Why = "written before read in every iteration";
      Rep.Vars.push_back(std::move(V));
      continue;
    }

    // A scalar written in the body that is neither private nor a reduction
    // is a conflict between any two iterations.
    V.Class = VarClass::Racy;
    V.Why = "written without private or reduction form";
    RaceWitness W;
    bool HaveDep = false;
    if (DepsAvailable) {
      auto It = Carried.find(Name);
      if (It != Carried.end() && !It->second.empty()) {
        W = makeWitness(*It->second.front());
        HaveDep = true;
      }
    }
    if (!HaveDep) {
      W.Var = Name;
      W.IsScalar = true;
      W.Note = "scalar '" + Name +
               "' is assigned in the loop body without private or "
               "reduction form";
      auto It = Facts.FirstWriteLoc.find(Name);
      if (It != Facts.FirstWriteLoc.end())
        W.SrcLoc = It->second;
    }
    Rep.Witnesses.push_back(std::move(W));
    Rep.Vars.push_back(std::move(V));
  }

  // --- Arrays -------------------------------------------------------------
  for (const std::string &Name : Facts.ArrayNames) {
    VarInfo V;
    V.Name = Name;
    V.IsArray = true;
    V.DeclaredInLoop = Facts.DeclaredInBody.count(Name) > 0;

    if (!Facts.ArrayWritten.count(Name)) {
      V.Class = VarClass::SharedReadOnly;
      V.Why = "only read inside the loop";
      Rep.Vars.push_back(std::move(V));
      continue;
    }
    if (V.DeclaredInLoop) {
      V.Class = VarClass::Private;
      V.Why = "declared inside the loop body (fresh per iteration)";
      Rep.Vars.push_back(std::move(V));
      continue;
    }
    if (!DepsAvailable) {
      V.Class = VarClass::Shared;
      V.Why = "written; dependences unavailable, safety unproven";
      Rep.Vars.push_back(std::move(V));
      continue;
    }
    auto It = Carried.find(Name);
    if (It == Carried.end()) {
      V.Class = VarClass::Shared;
      V.Why = "written; no dependence carried by the parallel loop";
      Rep.Vars.push_back(std::move(V));
      continue;
    }
    V.Class = VarClass::Racy;
    V.Why = "dependence carried by the parallel loop";
    for (const Dependence *D : It->second)
      Rep.Witnesses.push_back(makeWitness(*D));
    Rep.Vars.push_back(std::move(V));
  }

  bool AnyRacy =
      std::any_of(Rep.Vars.begin(), Rep.Vars.end(),
                  [](const VarInfo &V) { return V.Class == VarClass::Racy; });
  if (AnyRacy)
    Rep.Verdict = ParallelVerdict::Racy;
  else if (!DepsAvailable)
    Rep.Verdict = ParallelVerdict::Unknown;
  else
    Rep.Verdict = ParallelVerdict::Safe;
  return Rep;
}

int annotateOmpClauses(Program &P) {
  int Annotated = 0;
  const std::function<void(Stmt &)> Visit = [&](Stmt &S) {
    auto *For = dyn_cast<ForStmt>(&S);
    if (For && hasOmpParallelFor(*For)) {
      ParallelSafetyReport Rep = analyzeParallelLoop(*For);
      std::string Clauses = Rep.clauses();
      if (!Clauses.empty()) {
        for (std::string &Text : For->Pragmas) {
          if (!isOmpParallelForPragma(Text) ||
              Text.find("private(") != std::string::npos ||
              Text.find("reduction(") != std::string::npos)
            continue;
          Text += " " + Clauses;
          ++Annotated;
        }
      }
    }
  };
  forEachStmt(*P.Body, Visit);
  return Annotated;
}

} // namespace analysis
} // namespace locus
