//===- Affine.h - Affine form extraction -----------------------*- C++ -*-===//
///
/// \file
/// Converts MiniC index/bound expressions into affine form over loop
/// induction variables and symbolic parameters: sum(Coeff_i * Var_i) + Const.
/// Expressions that cannot be put in this form (indirect accesses, modulo,
/// products of variables) are rejected; dependence analysis then reports that
/// dependences are unavailable, which drives the "IsDepAvailable" query used
/// by the generic optimization program of Fig. 13.
///
//===----------------------------------------------------------------------===//
#ifndef LOCUS_ANALYSIS_AFFINE_H
#define LOCUS_ANALYSIS_AFFINE_H

#include "src/cir/Ast.h"

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>

namespace locus {
namespace analysis {

/// An affine expression: Constant + sum of Coefficient * VariableName.
/// Variables may be loop induction variables or symbolic parameters; the
/// caller distinguishes them by name.
class AffineExpr {
public:
  AffineExpr() = default;
  explicit AffineExpr(int64_t Constant) : Constant(Constant) {}

  static AffineExpr variable(const std::string &Name, int64_t Coeff = 1) {
    AffineExpr E;
    if (Coeff != 0)
      E.Coeffs[Name] = Coeff;
    return E;
  }

  int64_t constant() const { return Constant; }
  const std::map<std::string, int64_t> &coeffs() const { return Coeffs; }

  /// Coefficient of \p Name (0 when absent).
  int64_t coeff(const std::string &Name) const {
    auto It = Coeffs.find(Name);
    return It == Coeffs.end() ? 0 : It->second;
  }

  bool isConstant() const { return Coeffs.empty(); }

  AffineExpr operator+(const AffineExpr &Other) const;
  AffineExpr operator-(const AffineExpr &Other) const;
  AffineExpr scaled(int64_t Factor) const;

  bool operator==(const AffineExpr &Other) const {
    return Constant == Other.Constant && Coeffs == Other.Coeffs;
  }

  /// Renders "2*i + j + 3" style text for diagnostics.
  std::string str() const;

private:
  void addTerm(const std::string &Name, int64_t Coeff) {
    int64_t &Slot = Coeffs[Name];
    Slot += Coeff;
    if (Slot == 0)
      Coeffs.erase(Name);
  }

  int64_t Constant = 0;
  std::map<std::string, int64_t> Coeffs;
};

/// Tries to convert \p E into affine form. Returns nullopt for non-affine
/// expressions. Every VarRef becomes a variable term; calls, modulo,
/// divisions and variable products are non-affine. ArrayRef subscripts make
/// the whole expression non-affine (indirect access).
std::optional<AffineExpr> toAffine(const cir::Expr &E);

} // namespace analysis
} // namespace locus

#endif // LOCUS_ANALYSIS_AFFINE_H
