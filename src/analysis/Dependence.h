//===- Dependence.h - Data dependence analysis -----------------*- C++ -*-===//
///
/// \file
/// Data-dependence analysis over MiniC loop nests, in the style of the
/// dependence tests the RoseLocus modules rely on in the paper (Section
/// IV-A.2). Subscripts are put in affine form; ZIV / strong-SIV / GCD tests
/// produce direction vectors which legality queries for interchange, tiling,
/// unroll-and-jam, distribution and fusion consume.
///
/// When any access or loop bound is non-affine the analysis reports
/// "dependences unavailable" (compute() returns nullopt) — this is the
/// IsDepAvailable query of the Fig. 13 generic optimization program.
///
//===----------------------------------------------------------------------===//
#ifndef LOCUS_ANALYSIS_DEPENDENCE_H
#define LOCUS_ANALYSIS_DEPENDENCE_H

#include "src/analysis/Affine.h"
#include "src/cir/Ast.h"
#include "src/support/Diag.h"

#include <optional>
#include <string>
#include <vector>

namespace locus {
namespace analysis {

/// Classic dependence kinds.
enum class DepKind { Flow, Anti, Output };

/// One array (or scalar) access inside the analyzed nest.
struct Access {
  std::string Array;            ///< array name; scalars use their own name
  std::vector<AffineExpr> Subs; ///< affine subscripts (empty for scalars)
  bool IsWrite = false;
  int LeafStmt = 0; ///< index of the owning leaf statement (preorder)
  std::vector<const cir::ForStmt *> Loops; ///< enclosing loops, outer first
};

/// A dependence between two leaf statements with a direction vector over
/// their common loops: '<', '=', '>' or '*' (unknown).
struct Dependence {
  int SrcStmt = 0;
  int DstStmt = 0;
  std::string Array;
  DepKind Kind = DepKind::Flow;
  /// True for scalar (unsubscripted) dependences; loop distribution must
  /// keep scalar-linked statements together.
  bool IsScalar = false;
  std::vector<char> Dirs;
  std::vector<const cir::ForStmt *> CommonLoops;

  /// True when the dependence is carried by loop \p Level (first non-'='
  /// position could be at Level).
  bool mayBeCarriedBy(size_t Level) const;
};

/// Dependence analysis result for one loop nest.
class DependenceInfo {
public:
  /// Analyzes the nest rooted at \p Root. Returns nullopt when dependences
  /// cannot be computed (non-affine subscripts/bounds, unknown calls).
  /// When \p WhyNot is non-null and the analysis is unavailable, it is
  /// filled with a located diagnostic explaining the first construct that
  /// defeated the analysis (e.g. "subscript `A[B[i]]` is non-affine:
  /// dependence analysis unavailable").
  static std::optional<DependenceInfo>
  compute(const cir::ForStmt &Root, support::Diag *WhyNot = nullptr);

  const std::vector<Dependence> &deps() const { return Deps; }
  const std::vector<Access> &accesses() const { return Accesses; }

  /// Legality of permuting the perfect nest of Root with permutation
  /// \p Perm (Perm[i] = original index of the loop placed at position i).
  bool interchangeLegal(const std::vector<int> &Perm) const;

  /// Legality of rectangular tiling of the loops at depths
  /// [BandBegin, BandEnd] of the perfect nest (band must be fully
  /// permutable or dependences satisfied outside it).
  bool tilingLegal(size_t BandBegin, size_t BandEnd) const;

  /// Legality of unroll-and-jam of the loop at depth \p Level.
  bool unrollAndJamLegal(size_t Level) const;

  /// Builds the statement-level dependence graph among the top-level
  /// statements of \p Loop's body (indices into Loop->Body->Stmts).
  /// Edge[a] contains b when some instance of statement-group a must execute
  /// before some instance of statement-group b.
  std::vector<std::vector<int>> stmtGraph(const cir::ForStmt &Loop) const;

  /// Legality of distributing \p Loop's body statements into separate loops
  /// in textual order without reordering (conservative: no backward edge
  /// and no dependence cycle across distinct statements).
  bool distributionLegal(const cir::ForStmt &Loop) const;

  int leafStmtCount() const { return NumLeaves; }

  /// The leaf statement behind the index a Dependence's SrcStmt/DstStmt
  /// refers to (for located witnesses); null when out of range.
  const cir::Stmt *leafStmt(int I) const {
    return I >= 0 && I < static_cast<int>(LeafStmts.size())
               ? LeafStmts[static_cast<size_t>(I)]
               : nullptr;
  }

private:
  /// Expands '*' entries and filters to plausible (lexicographically
  /// non-negative) concrete vectors.
  std::vector<std::vector<char>>
  plausibleVectors(const Dependence &D) const;

  std::vector<Access> Accesses;
  std::vector<Dependence> Deps;
  std::vector<const cir::Stmt *> LeafStmts;
  std::vector<const cir::ForStmt *> NestLoops; ///< the perfect nest of Root
  int NumLeaves = 0;

  friend struct DependenceBuilder;
};

} // namespace analysis
} // namespace locus

#endif // LOCUS_ANALYSIS_DEPENDENCE_H
