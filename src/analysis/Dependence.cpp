//===- Dependence.cpp - Data dependence analysis ---------------------------===//

#include "src/analysis/Dependence.h"

#include "src/cir/AstUtils.h"
#include "src/cir/Printer.h"

#include <algorithm>
#include <array>
#include <functional>
#include <numeric>
#include <set>

namespace locus {
namespace analysis {

using namespace cir;

bool Dependence::mayBeCarriedBy(size_t Level) const {
  if (Level >= Dirs.size())
    return false;
  // Carried by Level when some plausible vector has its first non-'=' at
  // Level; approximated as: all earlier components may be '=', and the
  // component at Level may be '<'.
  for (size_t I = 0; I < Level; ++I)
    if (Dirs[I] == '<' || Dirs[I] == '>')
      return false;
  return Dirs[Level] == '<' || Dirs[Level] == '*';
}

namespace {

int64_t gcd64(int64_t A, int64_t B) {
  A = std::abs(A);
  B = std::abs(B);
  while (B != 0) {
    int64_t T = A % B;
    A = B;
    B = T;
  }
  return A;
}

/// Direction constraint lattice: '*' unconstrained, concrete values, or
/// conflict (reported via the bool result of merge).
bool mergeDir(char &Slot, char New) {
  if (Slot == '*') {
    Slot = New;
    return true;
  }
  return Slot == New;
}

} // namespace

/// Walks a nest collecting leaf statements and their accesses; also checks
/// that everything needed for dependence testing is affine.
struct DependenceBuilder {
  bool Affine = true;
  support::Diag *WhyNot = nullptr;
  std::vector<const ForStmt *> LoopStack;
  std::set<std::string> LoopVars;
  std::set<std::string> WrittenScalars;
  DependenceInfo Info;

  /// Marks the analysis unavailable, capturing the first reason (with its
  /// source location) for diagnostics when the caller asked for one.
  void nonAffine(support::SrcLoc Loc, const std::string &Msg) {
    if (Affine && WhyNot) {
      WhyNot->Sev = support::DiagSeverity::Warning;
      WhyNot->Loc = Loc;
      WhyNot->Message = Msg;
    }
    Affine = false;
  }

  void run(const ForStmt &Root) {
    // First pass: find scalars written inside the nest (they participate in
    // dependences; read-only scalars are parameters). Declarations count as
    // writes: a subscript through a loop-local temporary (Kripke's
    // "int idx = ..." address computations) is not analyzable as affine.
    forEachStmt(const_cast<ForStmt &>(Root), [&](Stmt &S) {
      if (auto *A = dyn_cast<AssignStmt>(&S)) {
        if (auto *V = dyn_cast<VarRef>(A->Lhs.get()))
          WrittenScalars.insert(V->Name);
      } else if (auto *D = dyn_cast<DeclStmt>(&S)) {
        if (!D->isArray())
          WrittenScalars.insert(D->Name);
      }
    });
    visitLoop(Root);
    Info.NumLeaves = static_cast<int>(Info.LeafStmts.size());
    if (Affine)
      testAllPairs();
  }

  void visitLoop(const ForStmt &For) {
    // Non-affine loop bounds (min/max-clamped tile loops, indirection-driven
    // ranges) are fine: the subscript tests are conservative without trip
    // information. Only subscripts must be affine.
    LoopStack.push_back(&For);
    LoopVars.insert(For.Var);
    visitBlock(*For.Body);
    LoopVars.erase(For.Var);
    LoopStack.pop_back();
  }

  void visitBlock(const Block &B) {
    for (const auto &S : B.Stmts)
      visitStmt(*S);
  }

  void visitStmt(const Stmt &S) {
    switch (S.kind()) {
    case StmtKind::Block:
      visitBlock(*cast<Block>(&S));
      return;
    case StmtKind::For:
      visitLoop(*cast<ForStmt>(&S));
      return;
    case StmtKind::If: {
      const auto *I = cast<IfStmt>(&S);
      // Conditionals make exact dependence testing unavailable here.
      nonAffine(S.Loc, "conditional statement inside the nest: dependence "
                       "analysis unavailable");
      visitBlock(*I->Then);
      if (I->Else)
        visitBlock(*I->Else);
      return;
    }
    case StmtKind::Assign: {
      const auto *A = cast<AssignStmt>(&S);
      int Leaf = static_cast<int>(Info.LeafStmts.size());
      Info.LeafStmts.push_back(&S);
      // Compound assignment reads the LHS too.
      addAccess(*A->Lhs, /*IsWrite=*/true, Leaf);
      if (A->Op != AssignOp::Set)
        addAccess(*A->Lhs, /*IsWrite=*/false, Leaf);
      addReads(*A->Rhs, Leaf);
      return;
    }
    case StmtKind::Decl: {
      const auto *D = cast<DeclStmt>(&S);
      int Leaf = static_cast<int>(Info.LeafStmts.size());
      Info.LeafStmts.push_back(&S);
      if (D->Init) {
        // A declaration acts as a scalar write.
        VarRef Tmp(D->Name);
        addAccess(Tmp, /*IsWrite=*/true, Leaf);
        addReads(*D->Init, Leaf);
      }
      return;
    }
    case StmtKind::CallStmt:
      // Unknown call inside the nest: cannot reason about its effects.
      nonAffine(S.Loc, "call `" + printExpr(*cast<CallStmt>(&S)->Call) +
                           "` has unknown effects: dependence analysis "
                           "unavailable");
      Info.LeafStmts.push_back(&S);
      return;
    }
  }

  void addAccess(const Expr &E, bool IsWrite, int Leaf) {
    if (const auto *A = dyn_cast<ArrayRef>(&E)) {
      Access Acc;
      Acc.Array = A->Name;
      Acc.IsWrite = IsWrite;
      Acc.LeafStmt = Leaf;
      Acc.Loops = LoopStack;
      for (const auto &Sub : A->Indices) {
        std::optional<AffineExpr> Aff = toAffine(*Sub);
        if (!Aff) {
          nonAffine(Sub->Loc.valid() ? Sub->Loc : E.Loc,
                    "subscript `" + A->Name + "[" + printExpr(*Sub) +
                        "]` is non-affine: dependence analysis unavailable");
          return;
        }
        // Subscripts referencing scalars that are written in the nest are
        // not analyzable (their value varies unpredictably).
        for (const auto &[Name, Coeff] : Aff->coeffs()) {
          (void)Coeff;
          if (WrittenScalars.count(Name) && !LoopVars.count(Name))
            nonAffine(Sub->Loc.valid() ? Sub->Loc : E.Loc,
                      "subscript `" + A->Name + "[" + printExpr(*Sub) +
                          "]` reads scalar '" + Name +
                          "' written inside the nest: dependence analysis "
                          "unavailable");
        }
        Acc.Subs.push_back(std::move(*Aff));
      }
      Info.Accesses.push_back(std::move(Acc));
      return;
    }
    if (const auto *V = dyn_cast<VarRef>(&E)) {
      // Scalars participate only when written somewhere in the nest.
      if (!WrittenScalars.count(V->Name) || LoopVars.count(V->Name))
        return;
      Access Acc;
      Acc.Array = V->Name;
      Acc.IsWrite = IsWrite;
      Acc.LeafStmt = Leaf;
      Acc.Loops = LoopStack;
      Info.Accesses.push_back(std::move(Acc));
      return;
    }
  }

  void addReads(const Expr &E, int Leaf) {
    switch (E.kind()) {
    case ExprKind::ArrayRef: {
      addAccess(E, /*IsWrite=*/false, Leaf);
      // Indirect subscripts (array refs inside subscripts) were already
      // rejected by toAffine in addAccess; still recurse for reads.
      for (const auto &I : cast<ArrayRef>(&E)->Indices)
        addReads(*I, Leaf);
      return;
    }
    case ExprKind::VarRef:
      addAccess(E, /*IsWrite=*/false, Leaf);
      return;
    case ExprKind::Binary:
      addReads(*cast<BinaryExpr>(&E)->Lhs, Leaf);
      addReads(*cast<BinaryExpr>(&E)->Rhs, Leaf);
      return;
    case ExprKind::Unary:
      addReads(*cast<UnaryExpr>(&E)->Operand, Leaf);
      return;
    case ExprKind::Call: {
      const auto *C = cast<CallExpr>(&E);
      if (C->Callee != "min" && C->Callee != "max" && C->Callee != "sqrt" &&
          C->Callee != "fabs")
        nonAffine(E.Loc, "call to '" + C->Callee +
                             "' is not a known pure intrinsic: dependence "
                             "analysis unavailable");
      for (const auto &A : C->Args)
        addReads(*A, Leaf);
      return;
    }
    default:
      return;
    }
  }

  /// Tests every ordered pair of accesses to the same array where at least
  /// one is a write.
  void testAllPairs() {
    for (size_t I = 0; I < Info.Accesses.size(); ++I) {
      for (size_t J = 0; J < Info.Accesses.size(); ++J) {
        if (I == J)
          continue;
        const Access &A = Info.Accesses[I];
        const Access &B = Info.Accesses[J];
        if (A.Array != B.Array || (!A.IsWrite && !B.IsWrite))
          continue;
        testPair(A, B);
      }
    }
  }

  void testPair(const Access &A, const Access &B) {
    // Common loops: longest common prefix of the enclosing loop chains.
    size_t Common = 0;
    while (Common < A.Loops.size() && Common < B.Loops.size() &&
           A.Loops[Common] == B.Loops[Common])
      ++Common;

    std::vector<char> Dirs(Common, '*');
    std::set<std::string> CommonVars;
    for (size_t L = 0; L < Common; ++L)
      CommonVars.insert(A.Loops[L]->Var);

    if (A.Subs.size() != B.Subs.size())
      return; // different dimensionality: treat as distinct objects

    for (size_t D = 0; D < A.Subs.size(); ++D)
      if (!testDim(A.Subs[D], B.Subs[D], A, B, CommonVars, Dirs, Common))
        return; // proven independent

    Dependence Dep;
    Dep.SrcStmt = A.LeafStmt;
    Dep.DstStmt = B.LeafStmt;
    Dep.Array = A.Array;
    Dep.IsScalar = A.Subs.empty();
    Dep.Kind = A.IsWrite ? (B.IsWrite ? DepKind::Output : DepKind::Flow)
                         : DepKind::Anti;
    Dep.Dirs = std::move(Dirs);
    Dep.CommonLoops.assign(A.Loops.begin(),
                           A.Loops.begin() + static_cast<long>(Common));
    // Keep only dependences with at least one plausible vector.
    DependenceInfo Tmp;
    Info.Deps.push_back(std::move(Dep));
    if (Info.plausibleVectors(Info.Deps.back()).empty())
      Info.Deps.pop_back();
  }

  /// Per-dimension test; returns false when the dimension proves the pair
  /// independent, otherwise refines \p Dirs.
  bool testDim(const AffineExpr &FA, const AffineExpr &FB, const Access &A,
               const Access &B, const std::set<std::string> &CommonVars,
               std::vector<char> &Dirs, size_t Common) {
    // Split into common-loop-var part, other-loop-var part, and params.
    auto Classify = [&](const AffineExpr &E, const Access &Acc,
                        std::map<std::string, int64_t> &CommonC,
                        std::map<std::string, int64_t> &OtherLoopC,
                        std::map<std::string, int64_t> &ParamC) {
      for (const auto &[Name, Coeff] : E.coeffs()) {
        bool IsLoop = false;
        for (const ForStmt *L : Acc.Loops)
          if (L->Var == Name)
            IsLoop = true;
        if (CommonVars.count(Name))
          CommonC[Name] += Coeff;
        else if (IsLoop)
          OtherLoopC[Name] += Coeff;
        else
          ParamC[Name] += Coeff;
      }
    };

    std::map<std::string, int64_t> CA, OA, PA, CB, OB, PB;
    Classify(FA, A, CA, OA, PA);
    Classify(FB, B, CB, OB, PB);

    // Mismatched symbolic parameter parts: the constant distance is unknown,
    // but a symbolic GCD test still proves independence when every
    // coefficient of the parameter difference is a multiple of the gcd of
    // the loop-variable coefficients while the constant difference is not.
    if (PA != PB) {
      std::map<std::string, int64_t> PD = PA;
      for (const auto &[Name, Coeff] : PB)
        PD[Name] -= Coeff;
      int64_t G = 0;
      for (const auto &[Name, Coeff] : CA)
        (void)Name, G = gcd64(G, Coeff);
      for (const auto &[Name, Coeff] : CB)
        (void)Name, G = gcd64(G, Coeff);
      for (const auto &[Name, Coeff] : OA)
        (void)Name, G = gcd64(G, Coeff);
      for (const auto &[Name, Coeff] : OB)
        (void)Name, G = gcd64(G, Coeff);
      if (G != 0) {
        bool ParamsDivisible = true;
        for (const auto &[Name, Coeff] : PD) {
          (void)Name;
          if (Coeff % G != 0)
            ParamsDivisible = false;
        }
        if (ParamsDivisible && (FA.constant() - FB.constant()) % G != 0)
          return false; // symbolic GCD proves independence
      }
      return true; // otherwise conservatively unknown
    }

    if (CA.empty() && CB.empty() && OA.empty() && OB.empty()) {
      // ZIV: pure constants (plus matching params).
      return FA.constant() == FB.constant();
    }

    // Strong SIV: exactly one common var with equal coefficients on both
    // sides, and no other loop vars involved.
    if (OA.empty() && OB.empty() && CA.size() == 1 && CB.size() == 1 &&
        CA.begin()->first == CB.begin()->first &&
        CA.begin()->second == CB.begin()->second) {
      const std::string &Var = CA.begin()->first;
      int64_t Coeff = CA.begin()->second;
      int64_t Diff = FA.constant() - FB.constant();
      if (Diff % Coeff != 0)
        return false; // non-integer distance: independent
      int64_t Distance = Diff / Coeff; // in value space of the variable
      // The variable only takes values Lo, Lo+Step, ...: a distance that is
      // not a multiple of the step is unrealizable (unrolled loops write
      // interleaved, disjoint element sets).
      for (size_t L = 0; L < Common; ++L) {
        if (A.Loops[L]->Var != Var)
          continue;
        int64_t Step = A.Loops[L]->Step;
        if (Step > 1 && Distance % Step != 0)
          return false;
      }
      char Dir = Distance > 0 ? '<' : (Distance < 0 ? '>' : '=');
      for (size_t L = 0; L < Common; ++L) {
        if (A.Loops[L]->Var != Var)
          continue;
        if (!mergeDir(Dirs[L], Dir))
          return false; // conflicting constraints: independent
      }
      return true;
    }

    // Constant iteration range {first value, last value, step} of the common
    // loop driving \p Var, when its bounds are compile-time constants.
    auto ConstRange =
        [&](const std::string &Var) -> std::optional<std::array<int64_t, 3>> {
      for (size_t L = 0; L < Common; ++L) {
        const ForStmt *Loop = A.Loops[L];
        if (Loop->Var != Var)
          continue;
        std::optional<int64_t> Lo = evalConstInt(*Loop->Init);
        std::optional<int64_t> Hi = evalConstInt(*Loop->Bound);
        if (!Lo || !Hi || Loop->Step <= 0)
          return std::nullopt;
        int64_t Last = Loop->Op == BoundOp::Lt ? *Hi - 1 : *Hi;
        return std::array<int64_t, 3>{*Lo, Last, Loop->Step};
      }
      return std::nullopt;
    };

    // Weak-zero SIV: a*i + c1 against a constant c2. A dependence needs the
    // single iteration i0 = (c2 - c1)/a; independent when i0 is fractional
    // or falls outside the loop's constant iteration range.
    if (OA.empty() && OB.empty() &&
        ((CA.size() == 1 && CB.empty()) || (CA.empty() && CB.size() == 1))) {
      const auto &VarSide = CA.empty() ? CB : CA;
      const std::string &Var = VarSide.begin()->first;
      int64_t Coeff = VarSide.begin()->second;
      int64_t Diff = CA.empty() ? FA.constant() - FB.constant()
                                : FB.constant() - FA.constant();
      if (Coeff != 0) {
        if (Diff % Coeff != 0)
          return false; // no integer solution: independent
        int64_t I0 = Diff / Coeff;
        if (std::optional<std::array<int64_t, 3>> R = ConstRange(Var)) {
          auto [Lo, Hi, Step] = *R;
          if (I0 < Lo || I0 > Hi || (I0 - Lo) % Step != 0)
            return false; // solution outside the iteration space
        }
      }
      return true; // realizable (or range unknown): directions stay '*'
    }

    // Weak-crossing SIV: a*i + c1 against -a*i + c2. A dependence needs
    // iterations i1, i2 with i1 + i2 = (c2 - c1)/a; independent when no such
    // pair exists in the loop's constant iteration range.
    if (OA.empty() && OB.empty() && CA.size() == 1 && CB.size() == 1 &&
        CA.begin()->first == CB.begin()->first &&
        CA.begin()->second == -CB.begin()->second &&
        CA.begin()->second != 0) {
      const std::string &Var = CA.begin()->first;
      int64_t Coeff = CA.begin()->second;
      int64_t Diff = FB.constant() - FA.constant();
      if (Diff % Coeff != 0)
        return false; // crossing point is not at an integer multiple
      int64_t Sum = Diff / Coeff; // i1 + i2 at the crossing
      if (std::optional<std::array<int64_t, 3>> R = ConstRange(Var)) {
        auto [Lo, Hi, Step] = *R;
        if (Sum < 2 * Lo || Sum > 2 * Hi || (Sum - 2 * Lo) % Step != 0)
          return false; // no iteration pair reaches the crossing
      }
      return true; // realizable crossing: directions stay '*'
    }

    // GCD test over all loop-variable coefficients.
    int64_t G = 0;
    for (const auto &[Name, Coeff] : CA)
      (void)Name, G = gcd64(G, Coeff);
    for (const auto &[Name, Coeff] : CB)
      (void)Name, G = gcd64(G, Coeff);
    for (const auto &[Name, Coeff] : OA)
      (void)Name, G = gcd64(G, Coeff);
    for (const auto &[Name, Coeff] : OB)
      (void)Name, G = gcd64(G, Coeff);
    int64_t Diff = FA.constant() - FB.constant();
    if (G != 0 && Diff % G != 0)
      return false; // GCD test proves independence
    return true;    // unknown: keep '*' directions
  }
};

std::optional<DependenceInfo>
DependenceInfo::compute(const ForStmt &Root, support::Diag *WhyNot) {
  DependenceBuilder Builder;
  Builder.WhyNot = WhyNot;
  Builder.run(Root);
  if (!Builder.Affine)
    return std::nullopt;
  Builder.Info.NestLoops.clear();
  for (ForStmt *L : perfectNest(const_cast<ForStmt &>(Root)))
    Builder.Info.NestLoops.push_back(L);
  return std::move(Builder.Info);
}

std::vector<std::vector<char>>
DependenceInfo::plausibleVectors(const Dependence &D) const {
  std::vector<std::vector<char>> Result;
  std::vector<char> Current(D.Dirs.size(), '=');
  const std::function<void(size_t)> Expand = [&](size_t Pos) {
    if (Pos == D.Dirs.size()) {
      // Keep lexicographically positive vectors; all-'=' vectors are
      // plausible only when the source precedes the destination textually
      // (or reads-before-write within one statement).
      size_t FirstNonEq = 0;
      while (FirstNonEq < Current.size() && Current[FirstNonEq] == '=')
        ++FirstNonEq;
      if (FirstNonEq == Current.size()) {
        bool EqPlausible = D.SrcStmt < D.DstStmt ||
                           (D.SrcStmt == D.DstStmt && D.Kind == DepKind::Anti);
        if (EqPlausible)
          Result.push_back(Current);
        return;
      }
      if (Current[FirstNonEq] == '<')
        Result.push_back(Current);
      return;
    }
    if (D.Dirs[Pos] == '*') {
      for (char C : {'<', '=', '>'}) {
        Current[Pos] = C;
        Expand(Pos + 1);
      }
    } else {
      Current[Pos] = D.Dirs[Pos];
      Expand(Pos + 1);
    }
  };
  Expand(0);
  return Result;
}

bool DependenceInfo::interchangeLegal(const std::vector<int> &Perm) const {
  for (const Dependence &D : Deps) {
    for (const std::vector<char> &V : plausibleVectors(D)) {
      // Build the permuted vector over the perfect-nest positions.
      std::vector<char> P;
      P.reserve(Perm.size());
      for (int Orig : Perm) {
        char C = '=';
        if (Orig >= 0 && static_cast<size_t>(Orig) < V.size())
          C = V[static_cast<size_t>(Orig)];
        P.push_back(C);
      }
      // Components beyond the permuted band keep their original order.
      for (size_t I = Perm.size(); I < V.size(); ++I)
        P.push_back(V[I]);
      size_t FirstNonEq = 0;
      while (FirstNonEq < P.size() && P[FirstNonEq] == '=')
        ++FirstNonEq;
      if (FirstNonEq < P.size() && P[FirstNonEq] == '>')
        return false;
    }
  }
  return true;
}

bool DependenceInfo::tilingLegal(size_t BandBegin, size_t BandEnd) const {
  for (const Dependence &D : Deps) {
    for (const std::vector<char> &V : plausibleVectors(D)) {
      bool SatisfiedOutside = false;
      for (size_t I = 0; I < BandBegin && I < V.size(); ++I)
        if (V[I] == '<') {
          SatisfiedOutside = true;
          break;
        }
      if (SatisfiedOutside)
        continue;
      for (size_t I = BandBegin; I <= BandEnd && I < V.size(); ++I)
        if (V[I] == '>')
          return false;
    }
  }
  return true;
}

bool DependenceInfo::unrollAndJamLegal(size_t Level) const {
  for (const Dependence &D : Deps) {
    for (const std::vector<char> &V : plausibleVectors(D)) {
      bool SatisfiedOutside = false;
      for (size_t I = 0; I < Level && I < V.size(); ++I)
        if (V[I] == '<') {
          SatisfiedOutside = true;
          break;
        }
      if (SatisfiedOutside || Level >= V.size() || V[Level] == '=')
        continue;
      // Carried by the jammed loop: the jam is illegal when any inner
      // component runs backwards.
      for (size_t I = Level + 1; I < V.size(); ++I)
        if (V[I] == '>')
          return false;
    }
  }
  return true;
}

std::vector<std::vector<int>>
DependenceInfo::stmtGraph(const ForStmt &Loop) const {
  // Map each leaf statement to the index of the top-level body statement
  // containing it.
  std::vector<int> LeafGroup(LeafStmts.size(), -1);
  for (size_t Top = 0; Top < Loop.Body->Stmts.size(); ++Top) {
    forEachStmt(*Loop.Body->Stmts[Top], [&](Stmt &S) {
      for (size_t Leaf = 0; Leaf < LeafStmts.size(); ++Leaf)
        if (LeafStmts[Leaf] == &S)
          LeafGroup[Leaf] = static_cast<int>(Top);
    });
  }

  std::vector<std::vector<int>> Graph(Loop.Body->Stmts.size());
  for (const Dependence &D : Deps) {
    int SrcGroup = D.SrcStmt < static_cast<int>(LeafGroup.size())
                       ? LeafGroup[static_cast<size_t>(D.SrcStmt)]
                       : -1;
    int DstGroup = D.DstStmt < static_cast<int>(LeafGroup.size())
                       ? LeafGroup[static_cast<size_t>(D.DstStmt)]
                       : -1;
    if (SrcGroup < 0 || DstGroup < 0 || SrcGroup == DstGroup)
      continue;
    auto AddEdge = [&](int From, int To) {
      auto &Edges = Graph[static_cast<size_t>(From)];
      if (std::find(Edges.begin(), Edges.end(), To) == Edges.end())
        Edges.push_back(To);
    };
    AddEdge(SrcGroup, DstGroup);
    // Scalar-linked statements must stay in one loop after distribution:
    // force them into the same strongly connected component.
    if (D.IsScalar)
      AddEdge(DstGroup, SrcGroup);
  }
  return Graph;
}

bool DependenceInfo::distributionLegal(const ForStmt &Loop) const {
  std::vector<std::vector<int>> Graph = stmtGraph(Loop);
  // Legal (conservatively, preserving textual order) when no backward edge.
  for (size_t From = 0; From < Graph.size(); ++From)
    for (int To : Graph[From])
      if (To < static_cast<int>(From))
        return false;
  return true;
}

} // namespace analysis
} // namespace locus
