//===- Verifier.cpp - CIR structural/semantic verifier ---------------------===//

#include "src/analysis/Verifier.h"

#include "src/analysis/RangeAnalysis.h"
#include "src/cir/AstUtils.h"
#include "src/cir/Parser.h"
#include "src/cir/Printer.h"

#include <map>
#include <set>
#include <vector>

namespace locus {
namespace analysis {

namespace {

using namespace cir;

/// Walks the program checking scoping, induction-variable and rank
/// invariants. Scopes map a name to its array rank (0 for scalars).
class ProgramChecker {
public:
  ProgramChecker(const Program &P, support::DiagEngine &Diags)
      : Prog(P), Diags(Diags) {}

  void run() {
    Scopes.emplace_back();
    for (const auto &G : Prog.Globals)
      declare(*G);
    checkBlock(*Prog.Body, /*NewScope=*/false);
    Scopes.pop_back();
    checkRegionLabels();
  }

private:
  void declare(const DeclStmt &D) {
    Scopes.back()[D.Name] = static_cast<int>(D.Dims.size());
  }

  const int *lookup(const std::string &Name) const {
    for (auto It = Scopes.rbegin(); It != Scopes.rend(); ++It) {
      auto Found = It->find(Name);
      if (Found != It->end())
        return &Found->second;
    }
    return nullptr;
  }

  support::SrcLoc locOf(const Expr &E) const {
    return E.Loc.valid() ? E.Loc : CurStmtLoc;
  }

  void checkExpr(const Expr &E) {
    switch (E.kind()) {
    case ExprKind::IntLit:
    case ExprKind::FloatLit:
      return;
    case ExprKind::VarRef: {
      const auto *V = cast<VarRef>(&E);
      // Whole-array references (harness call arguments) resolve like any
      // other name; rank misuse of a bare name is not flagged here.
      if (!lookup(V->Name))
        Diags.error(locOf(E), CurRegion,
                    "identifier '" + V->Name +
                        "' does not resolve to any declaration");
      return;
    }
    case ExprKind::ArrayRef: {
      const auto *A = cast<ArrayRef>(&E);
      if (const int *Rank = lookup(A->Name)) {
        if (*Rank == 0)
          Diags.error(locOf(E), CurRegion,
                      "scalar '" + A->Name + "' is subscripted like an array");
        else if (*Rank != static_cast<int>(A->Indices.size()))
          Diags.error(locOf(E), CurRegion,
                      "array '" + A->Name + "' is accessed with " +
                          std::to_string(A->Indices.size()) +
                          " subscripts but declared with rank " +
                          std::to_string(*Rank));
      } else {
        Diags.error(locOf(E), CurRegion,
                    "array '" + A->Name +
                        "' does not resolve to any declaration");
      }
      for (const auto &I : A->Indices)
        checkExpr(*I);
      return;
    }
    case ExprKind::Binary:
      checkExpr(*cast<BinaryExpr>(&E)->Lhs);
      checkExpr(*cast<BinaryExpr>(&E)->Rhs);
      return;
    case ExprKind::Unary:
      checkExpr(*cast<UnaryExpr>(&E)->Operand);
      return;
    case ExprKind::Call:
      // Callee names are intrinsics/harness functions known to the
      // evaluator; only the arguments are checked.
      for (const auto &A : cast<CallExpr>(&E)->Args)
        checkExpr(*A);
      return;
    }
  }

  void checkBlock(const Block &B, bool NewScope = true) {
    if (NewScope)
      Scopes.emplace_back();
    std::string SavedRegion = CurRegion;
    if (!B.RegionName.empty())
      CurRegion = B.RegionName;
    for (const auto &S : B.Stmts)
      checkStmt(*S);
    CurRegion = SavedRegion;
    if (NewScope)
      Scopes.pop_back();
  }

  void checkStmt(const Stmt &S) {
    if (S.Loc.valid())
      CurStmtLoc = S.Loc;
    support::SrcLoc Loc = S.Loc.valid() ? S.Loc : CurStmtLoc;
    switch (S.kind()) {
    case StmtKind::Block: {
      // The parser groups multi-declarator statements ("double a, b;") into
      // a synthetic Block of DeclStmts; those declarations belong to the
      // ENCLOSING scope, so declaration-only blocks are scope-transparent.
      const auto *B = cast<Block>(&S);
      bool DeclsOnly = !B->Stmts.empty();
      for (const auto &Sub : B->Stmts)
        DeclsOnly = DeclsOnly && isa<DeclStmt>(Sub.get());
      checkBlock(*B, /*NewScope=*/!DeclsOnly);
      return;
    }
    case StmtKind::For: {
      const auto *F = cast<ForStmt>(&S);
      // Init/Bound are evaluated outside the loop's scope.
      checkExpr(*F->Init);
      checkExpr(*F->Bound);
      if (ActiveInductionVars.count(F->Var))
        Diags.error(Loc, CurRegion,
                    "induction variable '" + F->Var +
                        "' is redefined by a nested loop");
      Scopes.emplace_back();
      Scopes.back()[F->Var] = 0;
      bool Inserted = ActiveInductionVars.insert(F->Var).second;
      checkBlock(*F->Body, /*NewScope=*/false);
      if (Inserted)
        ActiveInductionVars.erase(F->Var);
      Scopes.pop_back();
      return;
    }
    case StmtKind::If: {
      const auto *I = cast<IfStmt>(&S);
      checkExpr(*I->Cond);
      checkBlock(*I->Then);
      if (I->Else)
        checkBlock(*I->Else);
      return;
    }
    case StmtKind::Assign: {
      const auto *A = cast<AssignStmt>(&S);
      if (const auto *V = dyn_cast<VarRef>(A->Lhs.get()))
        if (ActiveInductionVars.count(V->Name))
          Diags.error(Loc, CurRegion,
                      "induction variable '" + V->Name +
                          "' is reassigned inside its loop body");
      checkExpr(*A->Lhs);
      checkExpr(*A->Rhs);
      return;
    }
    case StmtKind::Decl: {
      const auto *D = cast<DeclStmt>(&S);
      if (ActiveInductionVars.count(D->Name))
        Diags.error(Loc, CurRegion,
                    "induction variable '" + D->Name +
                        "' is shadowed by a declaration inside its loop");
      if (D->Init)
        checkExpr(*D->Init);
      declare(*D);
      return;
    }
    case StmtKind::CallStmt:
      checkExpr(*cast<CallStmt>(&S)->Call);
      return;
    }
  }

  void checkRegionLabels() {
    std::map<std::string, int> Seen;
    forEachStmt(const_cast<Block &>(*Prog.Body), [&](Stmt &S) {
      const auto *B = dyn_cast<Block>(&S);
      if (!B || B->RegionName.empty())
        return;
      support::SrcLoc Loc = B->Loc;
      if (++Seen[B->RegionName] == 2)
        Diags.warning(Loc, B->RegionName,
                      "region label '" + B->RegionName +
                          "' is not unique; transformations apply to every "
                          "instance");
      if (B->Stmts.empty())
        Diags.warning(Loc, B->RegionName,
                      "region '" + B->RegionName +
                          "' maps to no live statements");
    });
  }

  const Program &Prog;
  support::DiagEngine &Diags;
  std::vector<std::map<std::string, int>> Scopes;
  std::set<std::string> ActiveInductionVars;
  std::string CurRegion;
  support::SrcLoc CurStmtLoc;
};

void checkRoundTrip(const Program &P, support::DiagEngine &Diags) {
  std::string Text = printProgram(P);
  Expected<std::unique_ptr<Program>> Reparsed = parseProgram(Text);
  if (!Reparsed.ok()) {
    Diags.error(support::SrcLoc{}, "",
                "unparse→reparse round trip failed to parse: " +
                    Reparsed.message());
    return;
  }
  if (!programEquals(P, **Reparsed))
    Diags.error(support::SrcLoc{}, "",
                "unparse→reparse round trip does not reproduce the program");
}

/// Range-analysis cross-checks of a transformed region against its
/// pre-transform clone: the transformed nest's iteration-space box must stay
/// contained in the original's (per loop variable that survives with its
/// name; generated tile/skew variables are new names and are skipped), and no
/// subscript may become *definitely* out of bounds (every point of its
/// interval outside the extent). May-out-of-bounds intervals are NOT errors
/// here: interval arithmetic loses cross-variable correlation (e.g. skewed
/// subscripts), so only definite findings indict the rewrite.
void checkIterationSpace(const Program &P, const Block &Region,
                         const Block &Before, support::DiagEngine &Diags) {
  analysis::RangeEnv Base = analysis::envAtBlock(P, &Region);
  std::map<std::string, analysis::Interval> AfterBox =
      analysis::iterationBox(Region, Base);
  std::map<std::string, analysis::Interval> BeforeBox =
      analysis::iterationBox(Before, Base);
  support::SrcLoc Loc = Region.Loc;
  if (!Loc.valid() && !Region.Stmts.empty())
    Loc = Region.Stmts.front()->Loc;
  for (const auto &[Var, After] : AfterBox) {
    auto It = BeforeBox.find(Var);
    if (It == BeforeBox.end() || After.Empty)
      continue;
    const analysis::Interval &B4 = It->second;
    bool LoViol =
        B4.Lo != INT64_MIN && After.Lo != INT64_MIN && After.Lo < B4.Lo;
    bool HiViol =
        B4.Hi != INT64_MAX && After.Hi != INT64_MAX && After.Hi > B4.Hi;
    if (LoViol || HiViol)
      Diags.error(Loc, Region.RegionName,
                  "iteration-space containment violated: loop `" + Var +
                      "` ranges over " + After.str() +
                      " after the transformation but " + B4.str() +
                      " before");
  }
  analysis::BoundsReport BR = analysis::checkBounds(P);
  for (const analysis::SubscriptFinding &F : BR.Findings)
    if (F.Definite && F.Region == Region.RegionName)
      Diags.error(F.Loc, F.Region,
                  "transformation drives a subscript out of bounds: " +
                      F.witness());
}

std::optional<long long> countInstances(const Stmt &S) {
  switch (S.kind()) {
  case StmtKind::Block: {
    long long Sum = 0;
    for (const auto &Sub : cast<Block>(&S)->Stmts) {
      std::optional<long long> C = countInstances(*Sub);
      if (!C)
        return std::nullopt;
      Sum += *C;
    }
    return Sum;
  }
  case StmtKind::For: {
    const auto *F = cast<ForStmt>(&S);
    std::optional<int64_t> Init = evalConstInt(*F->Init);
    std::optional<int64_t> Bound = evalConstInt(*F->Bound);
    if (!Init || !Bound || F->Step <= 0)
      return std::nullopt;
    long long Trips;
    if (F->Op == BoundOp::Lt)
      Trips = *Bound > *Init ? (*Bound - *Init + F->Step - 1) / F->Step : 0;
    else
      Trips = *Bound >= *Init ? (*Bound - *Init) / F->Step + 1 : 0;
    std::optional<long long> BodyCount = countInstances(*F->Body);
    if (!BodyCount)
      return std::nullopt;
    if (Trips > 0 && *BodyCount > (1LL << 50) / Trips)
      return std::nullopt; // overflow guard
    return Trips * *BodyCount;
  }
  case StmtKind::If:
    // Data-dependent instance count.
    return std::nullopt;
  case StmtKind::Assign:
    return 1;
  case StmtKind::Decl:
  case StmtKind::CallStmt:
    return 0;
  }
  return std::nullopt;
}

} // namespace

bool verifyProgram(const cir::Program &P, support::DiagEngine &Diags,
                   const VerifierOptions &Opts) {
  size_t ErrorsBefore = Diags.errorCount();
  ProgramChecker(P, Diags).run();
  if (Opts.RoundTrip)
    checkRoundTrip(P, Diags);
  return Diags.errorCount() == ErrorsBefore;
}

std::optional<long long> countAssignInstances(const cir::Block &B) {
  return countInstances(B);
}

bool verifyAfterTransform(const cir::Program &P, const cir::Block &Region,
                          const cir::Block *Before, bool CheckInstanceCounts,
                          support::DiagEngine &Diags) {
  size_t ErrorsBefore = Diags.errorCount();
  verifyProgram(P, Diags);
  if (Before && CheckInstanceCounts) {
    std::optional<long long> CountBefore = countAssignInstances(*Before);
    std::optional<long long> CountAfter = countAssignInstances(Region);
    if (CountBefore && CountAfter && *CountBefore != *CountAfter) {
      support::SrcLoc Loc = Region.Loc;
      if (!Loc.valid() && !Region.Stmts.empty())
        Loc = Region.Stmts.front()->Loc;
      Diags.error(Loc, Region.RegionName,
                  "statement-instance accounting mismatch: region executed " +
                      std::to_string(*CountBefore) +
                      " assignment instances before the transformation but " +
                      std::to_string(*CountAfter) + " after");
    }
  }
  if (Before)
    checkIterationSpace(P, Region, *Before, Diags);
  return Diags.errorCount() == ErrorsBefore;
}

} // namespace analysis
} // namespace locus
