//===- ParallelSafety.h - OpenMP race detection & classification -*- C++ -*-===//
///
/// \file
/// Static parallel-safety analysis for `omp parallel for` loops. For the
/// parallelized dimension it proves (or refutes) the absence of loop-carried
/// dependences using the dependence analyzer, and classifies every scalar
/// and array referenced in the loop body into the OpenMP data-sharing
/// classes (private, firstprivate, shared read-only, shared, reduction) or
/// `racy` when two iterations may touch the same location with a write.
///
/// The verdict is three-valued: Safe (proven race-free), Racy (a concrete
/// witness exists), Unknown (dependences unavailable — never silently
/// safe). Conservative `*` direction entries count as carried.
///
/// Consumers:
///  - transform::applyOmpFor rejects provably-racy parallelization (the
///    witness travels in TransformResult::Message), which the legality
///    oracle replays so the search prunes racy points statically;
///  - the simulator's OpenMP schedule model refuses to model speedup for
///    loops it cannot prove safe (unless trusted);
///  - the native evaluator emits data-sharing clauses for proven loops;
///  - locus_cli --race-check / --lint render the report for humans.
///
//===----------------------------------------------------------------------===//
#ifndef LOCUS_ANALYSIS_PARALLELSAFETY_H
#define LOCUS_ANALYSIS_PARALLELSAFETY_H

#include "src/analysis/Dependence.h"
#include "src/cir/Ast.h"
#include "src/support/Diag.h"

#include <optional>
#include <string>
#include <vector>

namespace locus {
namespace analysis {

/// OpenMP data-sharing classification of one variable.
enum class VarClass {
  Private,        ///< written before read in every iteration (or block-local)
  FirstPrivate,   ///< read-only scalar capturing its pre-loop value
  SharedReadOnly, ///< array only ever read inside the loop
  Shared,         ///< written, but no dependence carried by the parallel dim
  Reduction,      ///< scalar updated only through `x = x op e` chains
  Racy            ///< two iterations may conflict on it
};

/// Reduction operators recognized in `x = x op e` / `x op= e` chains.
enum class RedOp { Add, Mul, Min, Max };

const char *varClassName(VarClass C);
const char *redOpName(RedOp O);

/// A concrete race witness: the dependence that two iterations of the
/// parallel loop may both execute, with its endpoints' source locations.
struct RaceWitness {
  std::string Var;
  DepKind Kind = DepKind::Flow;
  bool IsScalar = false;
  /// Direction vector over the common loops, rendered "(<,=,*)"; empty for
  /// purely syntactic scalar witnesses.
  std::string Dirs;
  support::SrcLoc SrcLoc;
  support::SrcLoc DstLoc;
  /// Extra prose when no dependence record backs the witness (syntactic
  /// scalar races).
  std::string Note;

  std::string render() const;
};

/// Overall verdict for parallelizing one loop.
enum class ParallelVerdict { Safe, Racy, Unknown };

/// Classification of one variable referenced in the loop body.
struct VarInfo {
  std::string Name;
  bool IsArray = false;
  VarClass Class = VarClass::Shared;
  std::optional<RedOp> Reduction;
  /// True when the variable is declared inside the loop body (per-iteration
  /// storage; needs no data-sharing clause).
  bool DeclaredInLoop = false;
  /// One-line rationale for the classification.
  std::string Why;
};

/// The full analysis result for one candidate `omp parallel for` loop.
struct ParallelSafetyReport {
  ParallelVerdict Verdict = ParallelVerdict::Unknown;
  std::string LoopVar;
  support::SrcLoc LoopLoc;
  /// When Verdict is Unknown: why dependence analysis was unavailable.
  std::string WhyUnknown;
  /// Classification table, one entry per referenced variable.
  std::vector<VarInfo> Vars;
  /// Witnesses for every racy variable (at least one when Verdict is Racy).
  std::vector<RaceWitness> Witnesses;

  /// One-line summary ("racy: loop-carried flow dependence on A ...").
  std::string summary() const;
  /// OpenMP data-sharing clauses for a proven-safe loop, e.g.
  /// "private(j,k) firstprivate(alpha) reduction(+:s)"; empty when nothing
  /// needs a clause or the loop is not proven safe.
  std::string clauses() const;
  /// Reports the verdict and witnesses as located diagnostics.
  void toDiags(support::DiagEngine &Diags, const std::string &Region) const;
};

/// True when pragma text \p Text (as stored on cir::Stmt::Pragmas, without
/// the leading "#pragma") requests OpenMP worksharing for the loop.
bool isOmpParallelForPragma(const std::string &Text);

/// True when \p For carries an `omp parallel for` pragma.
bool hasOmpParallelFor(const cir::ForStmt &For);

/// Analyzes \p For as if it were parallelized over its own dimension.
/// Works on any loop; the pragma need not be present.
ParallelSafetyReport analyzeParallelLoop(const cir::ForStmt &For);

/// Rewrites every `omp parallel for` pragma in \p P whose loop is proven
/// safe to carry the data-sharing clauses of its classification (idempotent;
/// existing clauses are preserved). Returns the number of annotated loops.
/// Used by the native evaluator so emitted C is correct under -fopenmp.
int annotateOmpClauses(cir::Program &P);

} // namespace analysis
} // namespace locus

#endif // LOCUS_ANALYSIS_PARALLELSAFETY_H
