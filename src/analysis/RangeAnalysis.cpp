//===- RangeAnalysis.cpp - Symbolic interval ranges over CIR --------------===//

#include "src/analysis/RangeAnalysis.h"

#include "src/cir/AstUtils.h"
#include "src/cir/Printer.h"

#include <algorithm>

namespace locus {
namespace analysis {

using namespace cir;

//===----------------------------------------------------------------------===//
// Saturating scalar arithmetic
//===----------------------------------------------------------------------===//

int64_t satAdd(int64_t A, int64_t B) {
  if (A == INT64_MIN || B == INT64_MIN)
    return INT64_MIN;
  if (A == INT64_MAX || B == INT64_MAX)
    return INT64_MAX;
  __int128 S = static_cast<__int128>(A) + B;
  if (S <= INT64_MIN)
    return INT64_MIN;
  if (S >= INT64_MAX)
    return INT64_MAX;
  return static_cast<int64_t>(S);
}

int64_t satNeg(int64_t A) {
  if (A == INT64_MIN)
    return INT64_MAX;
  if (A == INT64_MAX)
    return INT64_MIN;
  return -A;
}

int64_t satSub(int64_t A, int64_t B) { return satAdd(A, satNeg(B)); }

int64_t satMul(int64_t A, int64_t B) {
  if (A == 0 || B == 0)
    return 0;
  bool Neg = (A < 0) != (B < 0);
  if (A == INT64_MIN || A == INT64_MAX || B == INT64_MIN || B == INT64_MAX)
    return Neg ? INT64_MIN : INT64_MAX;
  __int128 P = static_cast<__int128>(A) * B;
  if (P <= INT64_MIN)
    return INT64_MIN;
  if (P >= INT64_MAX)
    return INT64_MAX;
  return static_cast<int64_t>(P);
}

//===----------------------------------------------------------------------===//
// Interval lattice and arithmetic
//===----------------------------------------------------------------------===//

std::string Interval::str() const {
  if (Empty)
    return "[]";
  std::string S = "[";
  S += Lo == INT64_MIN ? "-inf" : std::to_string(Lo);
  S += ", ";
  S += Hi == INT64_MAX ? "+inf" : std::to_string(Hi);
  S += "]";
  return S;
}

Interval join(const Interval &A, const Interval &B) {
  if (A.Empty)
    return B;
  if (B.Empty)
    return A;
  return Interval::make(std::min(A.Lo, B.Lo), std::max(A.Hi, B.Hi));
}

Interval meet(const Interval &A, const Interval &B) {
  if (A.Empty || B.Empty)
    return Interval::none();
  return Interval::make(std::max(A.Lo, B.Lo), std::min(A.Hi, B.Hi));
}

Interval widen(const Interval &Old, const Interval &New) {
  if (Old.Empty)
    return New;
  if (New.Empty)
    return Old;
  Interval W;
  W.Lo = New.Lo < Old.Lo ? INT64_MIN : Old.Lo;
  W.Hi = New.Hi > Old.Hi ? INT64_MAX : Old.Hi;
  return W;
}

Interval rangeAdd(const Interval &A, const Interval &B) {
  if (A.Empty || B.Empty)
    return Interval::none();
  return Interval::make(satAdd(A.Lo, B.Lo), satAdd(A.Hi, B.Hi));
}

Interval rangeNeg(const Interval &A) {
  if (A.Empty)
    return Interval::none();
  return Interval::make(satNeg(A.Hi), satNeg(A.Lo));
}

Interval rangeSub(const Interval &A, const Interval &B) {
  return rangeAdd(A, rangeNeg(B));
}

Interval rangeMul(const Interval &A, const Interval &B) {
  if (A.Empty || B.Empty)
    return Interval::none();
  int64_t C[4] = {satMul(A.Lo, B.Lo), satMul(A.Lo, B.Hi), satMul(A.Hi, B.Lo),
                  satMul(A.Hi, B.Hi)};
  return Interval::make(*std::min_element(C, C + 4),
                        *std::max_element(C, C + 4));
}

namespace {

/// C truncating division of a possibly-saturated endpoint by a non-zero
/// finite constant.
int64_t truncDiv(int64_t A, int64_t C) {
  if (A == INT64_MIN)
    return C > 0 ? INT64_MIN : INT64_MAX;
  if (A == INT64_MAX)
    return C > 0 ? INT64_MAX : INT64_MIN;
  if (A == INT64_MIN + 1 && C == -1) // guard -MIN overflow after the above
    return INT64_MAX;
  return A / C;
}

} // namespace

Interval rangeDiv(const Interval &A, const Interval &B) {
  if (A.Empty || B.Empty)
    return Interval::none();
  // Truncating division is monotone in the dividend for a fixed non-zero
  // divisor, so corners suffice when the divisor interval excludes zero.
  if (!B.bounded() || (B.Lo <= 0 && B.Hi >= 0))
    return Interval::full();
  int64_t C[4] = {truncDiv(A.Lo, B.Lo), truncDiv(A.Lo, B.Hi),
                  truncDiv(A.Hi, B.Lo), truncDiv(A.Hi, B.Hi)};
  return Interval::make(*std::min_element(C, C + 4),
                        *std::max_element(C, C + 4));
}

Interval rangeMod(const Interval &A, const Interval &B) {
  if (A.Empty || B.Empty)
    return Interval::none();
  if (B.Lo != B.Hi || B.Lo == 0 || B.Lo == INT64_MIN)
    return Interval::full();
  int64_t M = B.Lo < 0 ? -B.Lo : B.Lo;
  if (A.Lo >= 0)
    return Interval::make(0, std::min(A.Hi, M - 1));
  return Interval::make(-(M - 1), M - 1);
}

Interval rangeMin(const Interval &A, const Interval &B) {
  if (A.Empty || B.Empty)
    return Interval::none();
  return Interval::make(std::min(A.Lo, B.Lo), std::min(A.Hi, B.Hi));
}

Interval rangeMax(const Interval &A, const Interval &B) {
  if (A.Empty || B.Empty)
    return Interval::none();
  return Interval::make(std::max(A.Lo, B.Lo), std::max(A.Hi, B.Hi));
}

//===----------------------------------------------------------------------===//
// Expression evaluation
//===----------------------------------------------------------------------===//

Interval evalRange(const Expr &E, const RangeEnv &Env) {
  switch (E.kind()) {
  case ExprKind::IntLit:
    return Interval::point(cast<IntLit>(&E)->Value);
  case ExprKind::FloatLit:
    return Interval::full();
  case ExprKind::VarRef: {
    auto It = Env.find(cast<VarRef>(&E)->Name);
    return It == Env.end() ? Interval::full() : It->second;
  }
  case ExprKind::ArrayRef:
    return Interval::full(); // element values are not tracked
  case ExprKind::Unary: {
    const auto *U = cast<UnaryExpr>(&E);
    if (U->Op == UnOp::Neg)
      return rangeNeg(evalRange(*U->Operand, Env));
    return Interval::make(0, 1); // logical not
  }
  case ExprKind::Binary: {
    const auto *B = cast<BinaryExpr>(&E);
    Interval L = evalRange(*B->Lhs, Env);
    Interval R = evalRange(*B->Rhs, Env);
    switch (B->Op) {
    case BinOp::Add:
      return rangeAdd(L, R);
    case BinOp::Sub:
      return rangeSub(L, R);
    case BinOp::Mul:
      return rangeMul(L, R);
    case BinOp::Div:
      return rangeDiv(L, R);
    case BinOp::Mod:
      return rangeMod(L, R);
    default:
      if (L.Empty || R.Empty)
        return Interval::none();
      return Interval::make(0, 1); // comparisons and logical connectives
    }
  }
  case ExprKind::Call: {
    const auto *C = cast<CallExpr>(&E);
    if ((C->Callee == "min" || C->Callee == "max") && !C->Args.empty()) {
      Interval Acc = evalRange(*C->Args[0], Env);
      for (size_t I = 1; I < C->Args.size(); ++I) {
        Interval Next = evalRange(*C->Args[I], Env);
        Acc = C->Callee == "min" ? rangeMin(Acc, Next) : rangeMax(Acc, Next);
      }
      return Acc;
    }
    return Interval::full();
  }
  }
  return Interval::full();
}

//===----------------------------------------------------------------------===//
// Dataflow walker
//===----------------------------------------------------------------------===//

namespace {

/// Missing keys mean full(); look up with that default.
Interval envGet(const RangeEnv &Env, const std::string &Name) {
  auto It = Env.find(Name);
  return It == Env.end() ? Interval::full() : It->second;
}

RangeEnv joinEnv(const RangeEnv &A, const RangeEnv &B) {
  RangeEnv Out;
  for (const auto &[K, V] : A)
    Out[K] = join(V, envGet(B, K));
  for (const auto &[K, V] : B)
    if (!A.count(K))
      Out[K] = join(V, Interval::full()); // absent in A: unknown there
  return Out;
}

bool envEq(const RangeEnv &A, const RangeEnv &B) {
  for (const auto &[K, V] : A)
    if (envGet(B, K) != V)
      return false;
  for (const auto &[K, V] : B)
    if (envGet(A, K) != V)
      return false;
  return true;
}

RangeEnv widenEnv(const RangeEnv &Old, const RangeEnv &New) {
  RangeEnv Out;
  for (const auto &[K, V] : New)
    Out[K] = widen(envGet(Old, K), V);
  return Out;
}

/// The shared abstract-interpretation walker. Collectors are optional; the
/// loop-body fixpoint runs with collection suppressed and makes one final
/// collecting pass under the stabilized head environment, so findings are
/// reported exactly once.
class RangeWalker {
public:
  RangeEnv Env;
  std::map<std::string, std::vector<int64_t>> Extents;

  // Optional collectors.
  BoundsReport *Report = nullptr;
  std::map<const ForStmt *, LoopRange> *Loops = nullptr;
  std::map<std::string, Interval> *Box = nullptr;
  const Block *StopAt = nullptr; ///< capture Env at this block's entry
  RangeEnv *StopEnvOut = nullptr;
  bool Stopped = false;

  void runProgram(const Program &P) {
    for (const auto &G : P.Globals)
      declStmt(*G);
    walkBlock(*P.Body);
  }

  void walkBlock(const Block &B) {
    if (Stopped)
      return;
    if (&B == StopAt) {
      if (StopEnvOut)
        *StopEnvOut = Env;
      Stopped = true;
      return;
    }
    std::string SavedRegion = CurRegion;
    if (!B.RegionName.empty())
      CurRegion = B.RegionName;
    for (const auto &S : B.Stmts) {
      walkStmt(*S);
      if (Stopped)
        break;
    }
    CurRegion = SavedRegion;
  }

private:
  bool Collect = true;
  std::vector<const ForStmt *> LoopStack;
  std::string CurRegion;
  support::SrcLoc CurLoc;

  void declStmt(const DeclStmt &D) {
    if (D.Init)
      checkSubscripts(*D.Init);
    if (D.isArray()) {
      Extents[D.Name] = D.Dims;
      return;
    }
    Env[D.Name] = D.Init ? evalRange(*D.Init, Env) : Interval::full();
  }

  void walkStmt(const Stmt &S) {
    if (Stopped)
      return;
    if (S.Loc.valid())
      CurLoc = S.Loc;
    switch (S.kind()) {
    case StmtKind::Block:
      walkBlock(*cast<Block>(&S));
      return;
    case StmtKind::Decl:
      declStmt(*cast<DeclStmt>(&S));
      return;
    case StmtKind::CallStmt:
      // Harness calls take whole arrays; MiniC has no scalar out-params, so
      // the scalar environment survives.
      checkSubscripts(*cast<CallStmt>(&S)->Call);
      return;
    case StmtKind::Assign: {
      const auto *A = cast<AssignStmt>(&S);
      checkSubscripts(*A->Lhs);
      checkSubscripts(*A->Rhs);
      const auto *V = dyn_cast<VarRef>(A->Lhs.get());
      if (!V)
        return;
      Interval R = evalRange(*A->Rhs, Env);
      switch (A->Op) {
      case AssignOp::Set:
        Env[V->Name] = R;
        break;
      case AssignOp::Add:
        Env[V->Name] = rangeAdd(envGet(Env, V->Name), R);
        break;
      case AssignOp::Sub:
        Env[V->Name] = rangeSub(envGet(Env, V->Name), R);
        break;
      case AssignOp::Mul:
        Env[V->Name] = rangeMul(envGet(Env, V->Name), R);
        break;
      }
      return;
    }
    case StmtKind::If: {
      const auto *I = cast<IfStmt>(&S);
      checkSubscripts(*I->Cond);
      RangeEnv Before = Env;
      walkBlock(*I->Then);
      if (Stopped)
        return;
      RangeEnv ThenOut = std::move(Env);
      RangeEnv ElseOut;
      if (I->Else) {
        Env = Before;
        walkBlock(*I->Else);
        if (Stopped)
          return;
        ElseOut = std::move(Env);
      } else {
        ElseOut = std::move(Before);
      }
      Env = joinEnv(ThenOut, ElseOut);
      return;
    }
    case StmtKind::For:
      forStmt(*cast<ForStmt>(&S));
      return;
    }
  }

  void forStmt(const ForStmt &F) {
    checkSubscripts(*F.Init);
    checkSubscripts(*F.Bound);
    Interval InitR = evalRange(*F.Init, Env);
    Interval BoundR = evalRange(*F.Bound, Env);
    Interval LimitR = F.Op == BoundOp::Le
                          ? rangeAdd(BoundR, Interval::point(1))
                          : BoundR;
    if (Collect && Loops)
      (*Loops)[&F] = LoopRange{InitR, LimitR};

    // Value interval of the induction variable over executed iterations.
    Interval VarR;
    if (InitR.Empty || LimitR.Empty) {
      VarR = Interval::none();
    } else if (F.Step > 0) {
      // satSub keeps a +inf limit saturated; empty when the loop cannot run.
      int64_t Top = satSub(LimitR.Hi, 1);
      // Stride refinement: with a pinned start the last executed value is
      // aligned to the step (a tile loop `for (it = 0; it < 16; it += 4)`
      // ends at 12, not 15 — the difference between proving a tiled
      // subscript and a spurious finding).
      if (F.Step > 1 && InitR.Lo == InitR.Hi && InitR.Lo != INT64_MIN &&
          Top != INT64_MAX && Top >= InitR.Lo) {
        __int128 Span = static_cast<__int128>(Top) - InitR.Lo;
        Top = static_cast<int64_t>(InitR.Lo + Span / F.Step * F.Step);
      }
      VarR = Interval::make(InitR.Lo, Top);
    } else if (F.Step < 0) {
      VarR = Interval::make(INT64_MIN, InitR.Hi);
    } else {
      VarR = Interval::full();
    }
    if (Collect && Box) {
      auto It = Box->find(F.Var);
      (*Box)[F.Var] = It == Box->end() ? VarR : join(It->second, VarR);
    }

    // Fixpoint over the body for loop-carried scalars, widening after a few
    // rounds so symbolic bounds terminate.
    RangeEnv Entry = Env;
    RangeEnv Head = Entry;
    Head[F.Var] = VarR;
    bool SavedCollect = Collect;
    Collect = false;
    RangeEnv BodyOut;
    for (int It = 0; It < 8; ++It) {
      BodyOut = runBody(F, Head);
      if (Stopped) {
        Collect = SavedCollect;
        return;
      }
      BodyOut[F.Var] = VarR; // induction var is single-assignment
      RangeEnv Joined = joinEnv(Head, BodyOut);
      if (envEq(Joined, Head))
        break;
      Head = It >= 2 ? widenEnv(Head, Joined) : std::move(Joined);
    }
    Collect = SavedCollect;

    // One collecting pass under the stabilized head environment.
    BodyOut = runBody(F, Head);
    if (Stopped)
      return;

    // After the loop: body effects joined with the never-ran case; the
    // variable holds its exit value (first value past the limit) or its
    // init when the loop never ran.
    Env = joinEnv(Entry, BodyOut);
    Interval After = Interval::full();
    if (F.Step > 0 && !LimitR.Empty && !InitR.Empty)
      After = join(InitR,
                   Interval::make(LimitR.Lo, satAdd(LimitR.Hi, F.Step - 1)));
    Env[F.Var] = After;
  }

  /// Walks F's body starting from \p Head, returning the post-body env.
  RangeEnv runBody(const ForStmt &F, const RangeEnv &Head) {
    RangeEnv Saved = std::move(Env);
    Env = Head;
    LoopStack.push_back(&F);
    walkBlock(*F.Body);
    LoopStack.pop_back();
    if (Stopped)
      return {};
    RangeEnv Out = std::move(Env);
    Env = std::move(Saved);
    return Out;
  }

  void checkSubscripts(const Expr &E) {
    if (!Collect || !Report)
      return;
    switch (E.kind()) {
    case ExprKind::IntLit:
    case ExprKind::FloatLit:
    case ExprKind::VarRef:
      return;
    case ExprKind::Unary:
      checkSubscripts(*cast<UnaryExpr>(&E)->Operand);
      return;
    case ExprKind::Binary:
      checkSubscripts(*cast<BinaryExpr>(&E)->Lhs);
      checkSubscripts(*cast<BinaryExpr>(&E)->Rhs);
      return;
    case ExprKind::Call:
      for (const auto &A : cast<CallExpr>(&E)->Args)
        checkSubscripts(*A);
      return;
    case ExprKind::ArrayRef:
      break;
    }
    const auto *A = cast<ArrayRef>(&E);
    auto It = Extents.find(A->Name);
    for (size_t D = 0; D < A->Indices.size(); ++D) {
      const Expr &Idx = *A->Indices[D];
      checkSubscripts(Idx); // nested subscripts A[B[i]]
      if (It == Extents.end() || D >= It->second.size())
        continue; // unresolved name / rank mismatch: the verifier's domain
      ++Report->SubscriptsChecked;
      int64_t Extent = It->second[D];
      Interval R = evalRange(Idx, Env);
      if (R.Empty) { // access under a provably-empty loop never executes
        ++Report->Proven;
        continue;
      }
      bool LoOk = R.Lo >= 0;
      bool HiOk = R.Hi <= Extent - 1;
      if (LoOk && HiOk) {
        ++Report->Proven;
        continue;
      }
      SubscriptFinding F;
      F.K = ((!LoOk && R.Lo != INT64_MIN) || (!HiOk && R.Hi != INT64_MAX))
                ? SubscriptFinding::Kind::Violation
                : SubscriptFinding::Kind::Unproven;
      F.Definite = R.Lo > Extent - 1 || (R.Hi < 0 && R.Hi != INT64_MIN);
      F.Array = A->Name;
      F.Dim = static_cast<int>(D);
      F.Extent = Extent;
      F.IndexText = printExpr(Idx);
      F.Range = R;
      F.Loc = A->Loc.valid() ? A->Loc : CurLoc;
      F.Region = CurRegion;
      for (auto L = LoopStack.rbegin(); L != LoopStack.rend(); ++L) {
        if (referencesVar(Idx, (*L)->Var)) {
          F.LoopVar = (*L)->Var;
          F.LoopLoc = (*L)->Loc;
          break;
        }
      }
      Report->Findings.push_back(std::move(F));
    }
  }
};

} // namespace

//===----------------------------------------------------------------------===//
// Public entry points
//===----------------------------------------------------------------------===//

std::string SubscriptFinding::witness() const {
  std::string S;
  S += K == Kind::Violation ? "bounds violation: " : "bounds unproven: ";
  S += "subscript " + std::to_string(Dim + 1) + " of `" + Array + "` (`" +
       IndexText + "`) ranges over " + Range.str() +
       " but the dimension has extent " + std::to_string(Extent) +
       " (valid 0.." + std::to_string(Extent - 1) + ")";
  if (!LoopVar.empty()) {
    S += "; indexed by loop `" + LoopVar + "`";
    if (LoopLoc.valid())
      S += " at " + LoopLoc.str();
  }
  return S;
}

std::string SubscriptFinding::render() const {
  std::string S;
  if (Loc.valid())
    S += Loc.str() + ": ";
  S += witness();
  if (!Region.empty())
    S += " [region `" + Region + "`]";
  return S;
}

int BoundsReport::violations() const {
  int N = 0;
  for (const SubscriptFinding &F : Findings)
    N += F.K == SubscriptFinding::Kind::Violation;
  return N;
}

int BoundsReport::unproven() const {
  int N = 0;
  for (const SubscriptFinding &F : Findings)
    N += F.K == SubscriptFinding::Kind::Unproven;
  return N;
}

std::string BoundsReport::render() const {
  std::string S = "bounds: " + std::to_string(SubscriptsChecked) +
                  " subscripts checked, " + std::to_string(Proven) +
                  " proven in bounds, " + std::to_string(violations()) +
                  " violations, " + std::to_string(unproven()) + " unproven";
  for (const SubscriptFinding &F : Findings)
    S += "\n  " + F.render();
  return S;
}

BoundsReport checkBounds(const Program &P) {
  BoundsReport Report;
  RangeWalker W;
  W.Report = &Report;
  W.runProgram(P);
  return Report;
}

std::map<const ForStmt *, LoopRange> loopBoundRanges(const Program &P) {
  std::map<const ForStmt *, LoopRange> Out;
  RangeWalker W;
  W.Loops = &Out;
  W.runProgram(P);
  return Out;
}

RangeEnv envAtBlock(const Program &P, const Block *Target) {
  RangeEnv Out;
  RangeWalker W;
  W.StopAt = Target;
  W.StopEnvOut = &Out;
  W.runProgram(P);
  return Out;
}

std::map<std::string, Interval> iterationBox(const Block &B,
                                             const RangeEnv &Base) {
  std::map<std::string, Interval> Out;
  RangeWalker W;
  W.Env = Base;
  W.Box = &Out;
  W.walkBlock(B);
  return Out;
}

std::map<std::string, std::vector<int64_t>> arrayExtents(const Program &P) {
  std::map<std::string, std::vector<int64_t>> Out;
  for (const auto &G : P.Globals)
    if (G->isArray())
      Out[G->Name] = G->Dims;
  forEachStmt(const_cast<Block &>(*P.Body), [&](Stmt &S) {
    if (const auto *D = dyn_cast<DeclStmt>(&S))
      if (D->isArray())
        Out[D->Name] = D->Dims;
  });
  return Out;
}

} // namespace analysis
} // namespace locus
