//===- RegionDiscovery.cpp - Pragma-free region discovery -----------------===//

#include "src/analysis/RegionDiscovery.h"

#include "src/analysis/Affine.h"
#include "src/analysis/Dependence.h"
#include "src/analysis/RangeAnalysis.h"
#include "src/cir/AstUtils.h"
#include "src/cir/Printer.h"
#include "src/support/StringUtils.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <set>
#include <sstream>

namespace locus {
namespace analysis {

using cir::ArrayRef;
using cir::Block;
using cir::BoundOp;
using cir::CallExpr;
using cir::CallStmt;
using cir::DeclStmt;
using cir::Expr;
using cir::ForStmt;
using cir::IfStmt;
using cir::Program;
using cir::Stmt;
using cir::StmtPtr;

const char *candidateVerdictName(CandidateVerdict V) {
  switch (V) {
  case CandidateVerdict::Selected:
    return "selected";
  case CandidateVerdict::Demoted:
    return "demoted";
  case CandidateVerdict::Rejected:
    return "rejected";
  }
  return "?";
}

namespace {

/// Calls the evaluator treats as pure intrinsics; safe inside a region.
bool isIntrinsicCall(const std::string &Callee) {
  return Callee == "min" || Callee == "max";
}

//===----------------------------------------------------------------------===//
// Const traversal helpers (AstUtils' forEachStmt/forEachExpr are mutating).
//===----------------------------------------------------------------------===//

void visitExpr(const Expr &E, const std::function<void(const Expr &)> &Fn) {
  Fn(E);
  switch (E.kind()) {
  case cir::ExprKind::ArrayRef:
    for (const auto &I : cast<ArrayRef>(&E)->Indices)
      visitExpr(*I, Fn);
    break;
  case cir::ExprKind::Binary: {
    const auto *B = cast<cir::BinaryExpr>(&E);
    visitExpr(*B->Lhs, Fn);
    visitExpr(*B->Rhs, Fn);
    break;
  }
  case cir::ExprKind::Unary:
    visitExpr(*cast<cir::UnaryExpr>(&E)->Operand, Fn);
    break;
  case cir::ExprKind::Call:
    for (const auto &A : cast<CallExpr>(&E)->Args)
      visitExpr(*A, Fn);
    break;
  default:
    break;
  }
}

void visitStmt(const Stmt &S, const std::function<void(const Stmt &)> &Fn) {
  Fn(S);
  switch (S.kind()) {
  case cir::StmtKind::Block:
    for (const auto &Sub : cast<Block>(&S)->Stmts)
      visitStmt(*Sub, Fn);
    break;
  case cir::StmtKind::For:
    visitStmt(*cast<ForStmt>(&S)->Body, Fn);
    break;
  case cir::StmtKind::If: {
    const auto *If = cast<IfStmt>(&S);
    visitStmt(*If->Then, Fn);
    if (If->Else)
      visitStmt(*If->Else, Fn);
    break;
  }
  default:
    break;
  }
}

/// Visits every expression in the subtree, including loop bounds and
/// if conditions.
void visitAllExprs(const Stmt &S, const std::function<void(const Expr &)> &Fn) {
  visitStmt(S, [&](const Stmt &Sub) {
    switch (Sub.kind()) {
    case cir::StmtKind::For: {
      const auto *For = cast<ForStmt>(&Sub);
      visitExpr(*For->Init, Fn);
      visitExpr(*For->Bound, Fn);
      break;
    }
    case cir::StmtKind::If:
      visitExpr(*cast<IfStmt>(&Sub)->Cond, Fn);
      break;
    case cir::StmtKind::Assign: {
      const auto *A = cast<cir::AssignStmt>(&Sub);
      visitExpr(*A->Lhs, Fn);
      visitExpr(*A->Rhs, Fn);
      break;
    }
    case cir::StmtKind::Decl:
      if (const auto *D = cast<DeclStmt>(&Sub); D->Init)
        visitExpr(*D->Init, Fn);
      break;
    case cir::StmtKind::CallStmt:
      visitExpr(*cast<CallStmt>(&Sub)->Call, Fn);
      break;
    default:
      break;
    }
  });
}

//===----------------------------------------------------------------------===//
// Scan: outermost loops, in source order
//===----------------------------------------------------------------------===//

/// One outer loop found by the scan, plus how we got there.
struct ScanHit {
  const ForStmt *Root = nullptr;
};

/// Walks \p B in source order collecting outermost loops. Descends through
/// plain blocks and both branches of if statements, never into loop bodies,
/// and never into blocks that already carry a region name (those are
/// reported through \p OnRegion).
void scanBlock(const Block &B, std::vector<ScanHit> &Hits,
               const std::function<void(const Block &)> &OnRegion) {
  for (const StmtPtr &S : B.Stmts) {
    if (const auto *For = cir::dyn_cast<ForStmt>(S.get())) {
      Hits.push_back(ScanHit{For});
    } else if (const auto *Blk = cir::dyn_cast<Block>(S.get())) {
      if (!Blk->RegionName.empty())
        OnRegion(*Blk);
      else
        scanBlock(*Blk, Hits, OnRegion);
    } else if (const auto *If = cir::dyn_cast<IfStmt>(S.get())) {
      scanBlock(*If->Then, Hits, OnRegion);
      if (If->Else)
        scanBlock(*If->Else, Hits, OnRegion);
    }
  }
}

/// Mutable mirror of scanBlock: the owning slot of every outermost loop, in
/// the identical order (so ScanIndex matches between scan and annotate).
void scanSlots(Block &B, std::vector<StmtPtr *> &Slots) {
  for (StmtPtr &S : B.Stmts) {
    if (cir::isa<ForStmt>(S.get())) {
      Slots.push_back(&S);
    } else if (auto *Blk = cir::dyn_cast<Block>(S.get())) {
      if (Blk->RegionName.empty())
        scanSlots(*Blk, Slots);
    } else if (auto *If = cir::dyn_cast<IfStmt>(S.get())) {
      scanSlots(*If->Then, Slots);
      if (If->Else)
        scanSlots(*If->Else, Slots);
    }
  }
}

//===----------------------------------------------------------------------===//
// Triage
//===----------------------------------------------------------------------===//

/// First side-effecting construct in the nest, if any: a call statement or a
/// call expression that is not a pure intrinsic.
std::optional<support::Diag> findSideEffect(const ForStmt &Root) {
  std::optional<support::Diag> Found;
  visitAllExprs(Root, [&](const Expr &E) {
    if (Found)
      return;
    if (const auto *Call = cir::dyn_cast<CallExpr>(&E)) {
      if (!isIntrinsicCall(Call->Callee)) {
        support::Diag D;
        D.Sev = support::DiagSeverity::Warning;
        D.Loc = E.Loc.valid() ? E.Loc : Root.Loc;
        D.Message =
            "call `" + Call->Callee + "` has unknown effects; not a region";
        Found = D;
      }
    }
  });
  return Found;
}

/// Whether \p E is acceptable as a loop bound for triage: affine, or a pure
/// min/max intrinsic over acceptable bounds. Tiled variants carry
/// `min(N, ii + tile)` bounds everywhere; intrinsics must not reject a nest
/// (dependence analysis still demotes it with its own located reason).
bool triageBoundOk(const Expr &E) {
  if (toAffine(E))
    return true;
  const auto *Call = cir::dyn_cast<CallExpr>(&E);
  if (!Call || !isIntrinsicCall(Call->Callee))
    return false;
  for (const auto &A : Call->Args)
    if (!triageBoundOk(*A))
      return false;
  return true;
}

/// First loop in the nest with a bound the affine machinery cannot handle,
/// if any: non-affine init/bound expression or a non-positive step.
std::optional<support::Diag> findBadBound(const ForStmt &Root) {
  std::optional<support::Diag> Found;
  visitStmt(Root, [&](const Stmt &S) {
    if (Found)
      return;
    const auto *For = cir::dyn_cast<ForStmt>(&S);
    if (!For)
      return;
    support::Diag D;
    D.Sev = support::DiagSeverity::Warning;
    D.Loc = For->Loc;
    if (For->Step <= 0) {
      D.Message = "loop `" + For->Var + "` has non-positive step " +
                  std::to_string(For->Step);
      Found = D;
    } else if (!triageBoundOk(*For->Init)) {
      D.Message = "loop `" + For->Var + "` lower bound `" +
                  cir::printExpr(*For->Init) + "` is non-affine";
      Found = D;
    } else if (!triageBoundOk(*For->Bound)) {
      D.Message = "loop `" + For->Var + "` bound `" +
                  cir::printExpr(*For->Bound) + "` is non-affine";
      Found = D;
    }
  });
  return Found;
}

/// Trip count of one loop when its bounds are compile-time constants.
std::optional<uint64_t> constTrip(const ForStmt &For) {
  auto Init = cir::evalConstInt(*For.Init);
  auto Bound = cir::evalConstInt(*For.Bound);
  if (!Init || !Bound || For.Step <= 0)
    return std::nullopt;
  int64_t Span = *Bound - *Init + (For.Op == BoundOp::Le ? 1 : 0);
  if (Span <= 0)
    return 0;
  return static_cast<uint64_t>((Span + For.Step - 1) / For.Step);
}

struct TripInfo {
  uint64_t Product = 1;
  bool Exact = true;
};

/// Trip count of one loop, refined by the symbolic ranges of its bounds when
/// they are not plain constants: singleton intervals (e.g. a bound variable
/// with a single possible value, `int n = 40;`) give an EXACT trip; bounded
/// intervals give an upper-bound estimate (Exact stays false); only fully
/// unbounded symbolic bounds fall back to \p SymbolicTrip.
TripInfo loopTrip(const ForStmt &For,
                  const std::map<const ForStmt *, LoopRange> &Ranges,
                  uint64_t SymbolicTrip) {
  if (auto T = constTrip(For))
    return TripInfo{*T, true};
  TripInfo Fallback{SymbolicTrip, false};
  if (For.Step <= 0)
    return Fallback;
  auto It = Ranges.find(&For);
  if (It == Ranges.end())
    return Fallback;
  const Interval &Init = It->second.Init;
  const Interval &Limit = It->second.Limit; // exclusive upper limit
  if (Init.Empty || Limit.Empty)
    return TripInfo{0, true}; // provably never runs
  if (Init.Lo == INT64_MIN || Limit.Hi == INT64_MAX)
    return Fallback;
  bool Exact = Init.Lo == Init.Hi && Limit.Lo == Limit.Hi;
  int64_t Span = satSub(Limit.Hi, Init.Lo);
  if (Span <= 0)
    return TripInfo{0, Exact};
  return TripInfo{static_cast<uint64_t>((Span + For.Step - 1) / For.Step),
                  Exact};
}

/// Trip-count product along the deepest (maximum-product) chain of the nest
/// rooted at \p For. Loops with underivable symbolic bounds contribute
/// \p SymbolicTrip and clear Exact; see loopTrip().
TripInfo chainTrips(const ForStmt &For,
                    const std::map<const ForStmt *, LoopRange> &Ranges,
                    uint64_t SymbolicTrip) {
  TripInfo Self = loopTrip(For, Ranges, SymbolicTrip);
  std::vector<ScanHit> Children;
  scanBlock(*For.Body, Children, [](const Block &) {});
  TripInfo Best; // no children: multiply by 1, stay exact
  bool HasChild = false;
  for (const ScanHit &C : Children) {
    TripInfo CI = chainTrips(*C.Root, Ranges, SymbolicTrip);
    if (!HasChild || CI.Product > Best.Product) {
      Best = CI;
      HasChild = true;
    }
  }
  return TripInfo{Self.Product * Best.Product, Self.Exact && Best.Exact};
}

//===----------------------------------------------------------------------===//
// Footprint estimate
//===----------------------------------------------------------------------===//

/// Value range of an affine expression over a box of variable ranges.
/// Returns nullopt when the expression mentions a variable outside the box.
std::optional<std::pair<int64_t, int64_t>>
affineRange(const AffineExpr &E,
            const std::map<std::string, std::pair<int64_t, int64_t>> &Box) {
  int64_t Min = E.constant(), Max = E.constant();
  for (const auto &[Name, Coeff] : E.coeffs()) {
    auto It = Box.find(Name);
    if (It == Box.end())
      return std::nullopt;
    const auto &[Lo, Hi] = It->second;
    if (Coeff >= 0) {
      Min += Coeff * Lo;
      Max += Coeff * Hi;
    } else {
      Min += Coeff * Hi;
      Max += Coeff * Lo;
    }
  }
  return std::make_pair(Min, Max);
}

/// Declared dimensions of array \p Name: a global or a body-local
/// declaration. Empty when not found.
std::vector<int64_t> declaredDims(const Program &P, const std::string &Name) {
  if (const DeclStmt *G = P.findGlobal(Name))
    return G->Dims;
  std::vector<int64_t> Dims;
  visitStmt(*P.Body, [&](const Stmt &S) {
    if (const auto *D = cir::dyn_cast<DeclStmt>(&S))
      if (D->Name == Name && !Dims.size())
        Dims = D->Dims;
  });
  return Dims;
}

/// Estimated distinct bytes the nest touches: per array, the product of
/// per-dimension subscript extents over the (fully concrete) iteration box.
/// Arrays with non-affine or out-of-box subscripts fall back to their
/// declared size; 0 when anything stays unknown.
uint64_t estimateFootprint(const Program &P, const ForStmt &Root) {
  // The iteration box; bail out unless every loop is concrete.
  std::map<std::string, std::pair<int64_t, int64_t>> Box;
  bool Concrete = true;
  visitStmt(Root, [&](const Stmt &S) {
    const auto *For = cir::dyn_cast<ForStmt>(&S);
    if (!For || !Concrete)
      return;
    auto Init = cir::evalConstInt(*For->Init);
    auto Bound = cir::evalConstInt(*For->Bound);
    if (!Init || !Bound || For->Step <= 0) {
      Concrete = false;
      return;
    }
    int64_t Hi = *Bound - (For->Op == BoundOp::Lt ? 1 : 0);
    Box[For->Var] = {*Init, std::max(*Init, Hi)};
  });
  if (!Concrete)
    return 0;

  // Per array, per dimension, the widest extent seen across references.
  std::map<std::string, std::vector<uint64_t>> Extents;
  std::set<std::string> Fallback; // arrays needing declared-size fallback
  visitAllExprs(Root, [&](const Expr &E) {
    const auto *Ref = cir::dyn_cast<ArrayRef>(&E);
    if (!Ref)
      return;
    std::vector<uint64_t> RefExtents;
    for (const auto &Sub : Ref->Indices) {
      auto Aff = toAffine(*Sub);
      auto Range = Aff ? affineRange(*Aff, Box) : std::nullopt;
      if (!Range) {
        Fallback.insert(Ref->Name);
        return;
      }
      RefExtents.push_back(
          static_cast<uint64_t>(Range->second - Range->first + 1));
    }
    auto &Slot = Extents[Ref->Name];
    Slot.resize(std::max(Slot.size(), RefExtents.size()), 1);
    for (size_t I = 0; I < RefExtents.size(); ++I)
      Slot[I] = std::max(Slot[I], RefExtents[I]);
  });

  constexpr uint64_t ElemBytes = 8;
  uint64_t Total = 0;
  for (const std::string &Name : Fallback) {
    std::vector<int64_t> Dims = declaredDims(P, Name);
    if (Dims.empty())
      return 0; // size genuinely unknown; no refinement
    uint64_t Bytes = ElemBytes;
    for (int64_t D : Dims)
      Bytes *= static_cast<uint64_t>(std::max<int64_t>(D, 1));
    Total += Bytes;
    Extents.erase(Name);
  }
  for (const auto &[Name, Dims] : Extents) {
    uint64_t Bytes = ElemBytes;
    for (uint64_t D : Dims)
      Bytes *= std::max<uint64_t>(D, 1);
    Total += Bytes;
  }
  return Total;
}

/// Latency (cycles) of the cache level the footprint fits in; memory
/// latency when it fits nowhere.
double footprintLatency(const machine::MachineConfig &M, uint64_t Bytes) {
  for (const machine::CacheLevelConfig &L : M.Levels)
    if (Bytes <= L.SizeBytes)
      return L.HitLatency;
  return M.MemLatency;
}

} // namespace

//===----------------------------------------------------------------------===//
// discoverRegions
//===----------------------------------------------------------------------===//

DiscoveryReport discoverRegions(const Program &P,
                                const DiscoveryOptions &Opts) {
  DiscoveryReport Report;

  std::vector<ScanHit> Hits;
  scanBlock(*P.Body, Hits, [&](const Block &Region) {
    std::vector<ScanHit> Inner;
    scanBlock(Region, Inner, [](const Block &) {});
    Report.NumAlreadyAnnotated += static_cast<int>(Inner.size());
    support::Diag D;
    D.Sev = support::DiagSeverity::Note;
    D.Loc = Region.Loc;
    D.Region = Region.RegionName;
    D.Message = "region `" + Region.RegionName +
                "` is already annotated; skipped by discovery";
    Report.Notes.push_back(D);
  });
  Report.NumScanned = static_cast<int>(Hits.size());

  if (Hits.empty()) {
    support::Diag D;
    D.Sev = support::DiagSeverity::Note;
    if (!P.Body->Stmts.empty())
      D.Loc = P.Body->Stmts.front()->Loc;
    D.Message = Report.NumAlreadyAnnotated > 0
                    ? "no unannotated loop nests; nothing to discover"
                    : "no loop nests found; nothing to discover";
    Report.Notes.push_back(D);
    return Report;
  }

  // Symbolic loop-bound ranges refine trip counts where evalConstInt fails
  // (e.g. `for (i = 0; i < n; ...)` with `int n = 40;` in scope).
  std::map<const ForStmt *, LoopRange> Ranges = loopBoundRanges(P);

  for (size_t I = 0; I < Hits.size(); ++I) {
    const ForStmt &Root = *Hits[I].Root;
    NestCandidate C;
    C.ScanIndex = static_cast<int>(I);
    C.Loc = Root.Loc;
    C.LoopVar = Root.Var;
    C.Depth = cir::loopNestDepth(Root);
    C.Perfect = cir::isPerfectNest(Root);

    // Stage 1: side-effect triage. A nest that calls out is not a region.
    if (auto Why = findSideEffect(Root)) {
      C.Verdict = CandidateVerdict::Rejected;
      C.Why = *Why;
      Report.Candidates.push_back(std::move(C));
      continue;
    }

    // Stage 2: bound triage. Non-affine bounds defeat every downstream
    // analysis (trip counts, dependence tests, legality queries).
    if (auto Why = findBadBound(Root)) {
      C.Verdict = CandidateVerdict::Rejected;
      C.Why = *Why;
      Report.Candidates.push_back(std::move(C));
      continue;
    }

    // Stage 3: hotness model. Depth x trip-count product, refined by the
    // machine-model latency of the footprint when bounds are concrete.
    TripInfo Trips = chainTrips(Root, Ranges, Opts.SymbolicTrip);
    C.TripProduct = Trips.Product;
    C.TripExact = Trips.Exact;
    C.FootprintBytes = estimateFootprint(P, Root);
    double Factor = 1.0;
    if (C.FootprintBytes > 0 && !Opts.Machine.Levels.empty()) {
      double Base = Opts.Machine.Levels.front().HitLatency;
      if (Base > 0)
        Factor = footprintLatency(Opts.Machine, C.FootprintBytes) / Base;
    }
    C.Hotness = static_cast<double>(C.Depth) *
                static_cast<double>(C.TripProduct) * Factor;

    // Stage 4: dependence triage. Unavailable dependences demote (the
    // generic program's dependence-guarded arms switch off) but the nest
    // stays annotatable and tunable.
    support::Diag Why;
    if (DependenceInfo::compute(Root, &Why)) {
      C.DepAvailable = true;
      C.Verdict = CandidateVerdict::Selected;
    } else {
      C.Verdict = CandidateVerdict::Demoted;
      if (Why.Message.empty()) {
        Why.Sev = support::DiagSeverity::Note;
        Why.Loc = Root.Loc;
        Why.Message = "dependence analysis unavailable";
      }
      C.Why = Why;
    }
    Report.Candidates.push_back(std::move(C));
  }

  // Rank: Selected by hotness, then Demoted by hotness, then Rejected in
  // source order; ties broken by scan order for determinism.
  auto Group = [](const NestCandidate &C) {
    switch (C.Verdict) {
    case CandidateVerdict::Selected:
      return 0;
    case CandidateVerdict::Demoted:
      return 1;
    case CandidateVerdict::Rejected:
      return 2;
    }
    return 3;
  };
  std::stable_sort(Report.Candidates.begin(), Report.Candidates.end(),
                   [&](const NestCandidate &A, const NestCandidate &B) {
                     if (Group(A) != Group(B))
                       return Group(A) < Group(B);
                     if (Group(A) == 2)
                       return A.ScanIndex < B.ScanIndex;
                     if (A.Hotness != B.Hotness)
                       return A.Hotness > B.Hotness;
                     return A.ScanIndex < B.ScanIndex;
                   });

  int Rank = 0;
  for (NestCandidate &C : Report.Candidates)
    if (C.Verdict != CandidateVerdict::Rejected)
      C.Name = Opts.NamePrefix + std::to_string(Rank++);

  return Report;
}

std::vector<const NestCandidate *>
DiscoveryReport::annotatable(int TopN) const {
  std::vector<const NestCandidate *> Out;
  for (const NestCandidate &C : Candidates) {
    if (C.Verdict == CandidateVerdict::Rejected)
      continue;
    if (TopN > 0 && static_cast<int>(Out.size()) >= TopN)
      break;
    Out.push_back(&C);
  }
  return Out;
}

std::string DiscoveryReport::render() const {
  std::ostringstream OS;
  int Annotatable = 0, Rejected = 0;
  for (const NestCandidate &C : Candidates)
    (C.Verdict == CandidateVerdict::Rejected ? Rejected : Annotatable)++;
  OS << "discovery: scanned " << NumScanned << " outer loop nest(s): "
     << Annotatable << " annotatable, " << Rejected << " rejected";
  if (NumAlreadyAnnotated > 0)
    OS << ", " << NumAlreadyAnnotated << " already annotated";
  OS << "\n";
  int Rank = 0;
  for (const NestCandidate &C : Candidates) {
    ++Rank;
    OS << "  " << Rank << ". ";
    if (!C.Name.empty())
      OS << C.Name << " ";
    OS << "[" << candidateVerdictName(C.Verdict) << "] " << C.Loc.str()
       << ": for (" << C.LoopVar << ") depth=" << C.Depth
       << (C.Perfect ? " perfect" : " imperfect");
    if (C.Verdict != CandidateVerdict::Rejected) {
      OS << " trip=" << (C.TripExact ? "" : "~") << C.TripProduct;
      if (C.FootprintBytes > 0)
        OS << " footprint=" << C.FootprintBytes << "B";
      char Buf[32];
      std::snprintf(Buf, sizeof(Buf), "%.3g", C.Hotness);
      OS << " hotness=" << Buf;
    }
    OS << "\n";
    if (!C.Why.Message.empty())
      OS << "     reason: " << C.Why.Message << " (" << C.Why.Loc.str()
         << ")\n";
  }
  for (const support::Diag &N : Notes)
    OS << "  " << N.render() << "\n";
  return OS.str();
}

//===----------------------------------------------------------------------===//
// annotateRegions
//===----------------------------------------------------------------------===//

Expected<int> annotateRegions(Program &P, const DiscoveryReport &Report,
                              int TopN) {
  std::vector<StmtPtr *> Slots;
  scanSlots(*P.Body, Slots);
  if (static_cast<int>(Slots.size()) != Report.NumScanned)
    return Expected<int>::error(
        "program shape does not match discovery report: expected " +
        std::to_string(Report.NumScanned) + " outer loops, found " +
        std::to_string(Slots.size()));

  int Injected = 0;
  for (const NestCandidate *C : Report.annotatable(TopN)) {
    if (C->Name.empty())
      return Expected<int>::error("candidate at " + C->Loc.str() +
                                  " has no region name");
    if (C->ScanIndex < 0 || C->ScanIndex >= static_cast<int>(Slots.size()))
      return Expected<int>::error("candidate scan index out of range");
    StmtPtr &Slot = *Slots[static_cast<size_t>(C->ScanIndex)];
    if (!cir::isa<ForStmt>(Slot.get()))
      return Expected<int>::error(
          "statement at scan index " + std::to_string(C->ScanIndex) +
          " is no longer a loop; re-run discovery");
    // Mirror the parser's handling of "#pragma @Locus loop=NAME": the loop
    // becomes the sole statement of a named block.
    auto Region = std::make_unique<Block>();
    Region->Loc = Slot->Loc;
    Region->RegionName = C->Name;
    Region->Stmts.push_back(std::move(Slot));
    Slot = std::move(Region);
    ++Injected;
  }
  return Injected;
}

//===----------------------------------------------------------------------===//
// Generic program + pragma stripping
//===----------------------------------------------------------------------===//

std::string genericLocusProgram(const std::string &RegionName) {
  return R"(
Search {
  buildcmd = "make clean; make LOOPEXTRACTED";
  runcmd = "LOOPEXTRACTED ../input 10";
}

CodeReg )" +
         RegionName + R"( {
  perfect = BuiltIn.IsPerfectLoopNest();
  depth = BuiltIn.LoopNestDepth();
  if (RoseLocus.IsDepAvailable()) {
    if (perfect && depth > 1) {
      permorder = permutation(seq(0, depth));
      RoseLocus.Interchange(order=permorder);
    }
    {
      if (perfect) {
        indexT1 = integer(1..depth);
        T1fac = poweroftwo(2..32);
        RoseLocus.Tiling(loop=indexT1, factor=T1fac);
      }
    } OR {
      if (depth > 1) {
        indexUAJ = integer(1..depth-1);
        UAJfac = poweroftwo(2..4);
        RoseLocus.UnrollAndJam(loop=indexUAJ, factor=UAJfac);
      }
    } OR {
      None; # No tiling, interchange, or unroll and jam.
    }
    innerloops = BuiltIn.ListInnerLoops();
    *RoseLocus.Distribute(loop=innerloops);
  }
  innerloops = BuiltIn.ListInnerLoops();
  RoseLocus.Unroll(loop=innerloops, factor=poweroftwo(2..8));
}
)";
}

std::string genericLocusProgram(const NestCandidate &C) {
  return genericLocusProgram(C.Name);
}

std::string stripLocusRegionPragmas(const std::string &Source) {
  std::ostringstream OS;
  std::istringstream IS(Source);
  std::string Line;
  while (std::getline(IS, Line)) {
    std::string_view Trimmed = trimString(Line);
    // Blank the line rather than deleting it: every other construct keeps
    // its source line, so located diagnostics (and the journal records that
    // embed them) stay bit-identical to the annotated original's.
    if (Trimmed.rfind("#pragma", 0) == 0 &&
        Trimmed.find("@Locus") != std::string_view::npos)
      Line.clear();
    OS << Line << "\n";
  }
  return OS.str();
}

} // namespace analysis
} // namespace locus
