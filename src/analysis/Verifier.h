//===- Verifier.h - CIR structural/semantic verifier -----------*- C++ -*-===//
///
/// \file
/// A verifier over the MiniC AST, in the spirit of LLVM's -verify-each
/// discipline: run it after every transformation so a broken rewrite
/// surfaces at the rewrite that introduced it, with a located diagnostic,
/// instead of one full interpreted run later as a checksum mismatch.
///
/// Invariants checked by verifyProgram():
///  - every identifier (scalar, array, loop induction variable) resolves to
///    a declaration visible at its use;
///  - loop induction variables are single-assignment within their loop body
///    and are not redefined by a nested loop;
///  - array accesses have the same rank as their declaration, and scalars
///    are never subscripted;
///  - "#pragma @Locus" region labels are unique and map to live (non-empty)
///    blocks (violations are warnings: multiple same-named regions are a
///    supported feature, but usually a mistake);
///  - the unparse→reparse round trip reproduces the program (modulo the
///    redundant block nesting the printer/parser pair introduces).
///
/// verifyAfterTransform() additionally performs statement-instance
/// accounting: for transformations that must preserve the number of executed
/// assignment instances (unroll, tiling, interchange, fusion, ...), the
/// per-region instance count — the sum over assignment statements of the
/// product of enclosing constant trip counts — must not change. This is the
/// check that catches a dropped remainder loop, which is structurally valid
/// IR and invisible to every other invariant.
///
//===----------------------------------------------------------------------===//
#ifndef LOCUS_ANALYSIS_VERIFIER_H
#define LOCUS_ANALYSIS_VERIFIER_H

#include "src/cir/Ast.h"
#include "src/support/Diag.h"

#include <optional>

namespace locus {
namespace analysis {

struct VerifierOptions {
  /// Check that unparse→reparse reproduces the program.
  bool RoundTrip = true;
};

/// Runs all structural/semantic checks on \p P, reporting into \p Diags.
/// Returns true when no errors were found (warnings do not fail).
bool verifyProgram(const cir::Program &P, support::DiagEngine &Diags,
                   const VerifierOptions &Opts = {});

/// Counts the number of assignment-statement instances executed by \p B:
/// the sum over AssignStmt leaves of the product of the enclosing loops'
/// constant trip counts. Returns nullopt when any enclosing trip count is
/// not a compile-time constant or the block contains control flow whose
/// instance count is data dependent (if statements).
std::optional<long long> countAssignInstances(const cir::Block &B);

/// Post-transformation verification: verifyProgram() on the whole program
/// plus, when \p CheckInstanceCounts is set and \p Before is non-null,
/// statement-instance accounting of \p Region against its pre-transform
/// clone \p Before. When \p Before is non-null the range-analysis
/// cross-checks also run: the transformed nest's iteration-space box must be
/// contained in the original's, and no subscript may become definitely out
/// of bounds (see RangeAnalysis.h). Returns true when no errors were found.
bool verifyAfterTransform(const cir::Program &P, const cir::Block &Region,
                          const cir::Block *Before, bool CheckInstanceCounts,
                          support::DiagEngine &Diags);

} // namespace analysis
} // namespace locus

#endif // LOCUS_ANALYSIS_VERIFIER_H
