//===- LegalityOracle.cpp - Static legality classification ----------------===//

#include "src/analysis/LegalityOracle.h"

#include "src/cir/AstUtils.h"

#include <set>
#include <variant>

namespace locus {
namespace analysis {

namespace {

bool isPow2(int64_t X) { return X > 0 && (X & (X - 1)) == 0; }

/// True when block \p Inner is \p Outer or appears anywhere inside it.
bool blockContains(const cir::Block &Outer, const cir::Block &Inner) {
  if (&Outer == &Inner)
    return true;
  bool Found = false;
  cir::forEachStmt(const_cast<cir::Block &>(Outer), [&](cir::Stmt &S) {
    if (&S == &Inner)
      Found = true;
  });
  return Found;
}

/// Stable text key of a resolved PlanArg (cache keys only).
void renderArg(const PlanArg &A, std::string &Out) {
  switch (A.K) {
  case PlanArg::Kind::Unknown:
    Out += "?";
    return;
  case PlanArg::Kind::Int:
    Out += std::to_string(A.Int);
    return;
  case PlanArg::Kind::Float:
    Out += std::to_string(A.Float);
    return;
  case PlanArg::Kind::Str:
    Out += "'" + A.Str + "'";
    return;
  case PlanArg::Kind::Param:
    Out += "$" + A.Str;
    return;
  case PlanArg::Kind::List:
    Out += "[";
    for (const PlanArg &I : A.List) {
      renderArg(I, Out);
      Out += ",";
    }
    Out += "]";
    return;
  }
}

enum class GuardState { Sat, Unsat, Unknown };

} // namespace

struct LegalityOracle::RegionState {
  std::unique_ptr<cir::Program> Prog;
};

LegalityOracle::LegalityOracle(const cir::Program &Baseline,
                               const search::Space &Space, TransformPlan Plan,
                               ModuleInvoker Invoker)
    : Baseline(Baseline), Space(Space), Plan(std::move(Plan)),
      Invoker(std::move(Invoker)) {
  // Drop entries the extractor's single-execution model cannot vouch for:
  // everything after the first CodeReg whose name matches several regions
  // (its own entries still describe the first execution and stay).
  std::set<std::string> Dropped;
  bool SawMulti = false;
  for (const std::string &Name : this->Plan.CodeRegOrder) {
    if (SawMulti)
      Dropped.insert(Name);
    if (Baseline.findRegions(Name).size() > 1)
      SawMulti = true;
  }
  if (!Dropped.empty()) {
    auto &Entries = this->Plan.Entries;
    for (size_t I = 0; I < Entries.size(); ++I) {
      if (Dropped.count(Entries[I].Region)) {
        Entries.resize(I);
        break;
      }
    }
  }

  // Replay is modeled per region on independent clones; that is only valid
  // for regions instantiated exactly once and not overlapping any other
  // replayed region.
  std::map<std::string, const cir::Block *> Blocks;
  for (const PlanEntry &E : this->Plan.Entries)
    if (E.K == PlanEntry::Kind::ModuleCall &&
        !RegionReplayable.count(E.Region)) {
      std::vector<const cir::Block *> Regions = Baseline.findRegions(E.Region);
      RegionReplayable[E.Region] = Regions.size() == 1;
      if (Regions.size() == 1)
        Blocks[E.Region] = Regions[0];
    }
  for (auto &[NameA, BlockA] : Blocks)
    for (auto &[NameB, BlockB] : Blocks)
      if (NameA != NameB && blockContains(*BlockA, *BlockB)) {
        RegionReplayable[NameA] = false;
        RegionReplayable[NameB] = false;
      }

  // Symbolic pre-classification of every RangeCheck: evaluate the check over
  // the parameter value intervals once, here, instead of once per point.
  RCInfo.resize(this->Plan.Entries.size());
  for (size_t I = 0; I < this->Plan.Entries.size(); ++I) {
    const PlanEntry &E = this->Plan.Entries[I];
    if (E.K != PlanEntry::Kind::RangeCheck)
      continue;
    RangeCheckInfo &Info = RCInfo[I];

    auto ArgInterval = [&](const PlanArg &A) -> Interval {
      switch (A.K) {
      case PlanArg::Kind::Int:
        return Interval::point(A.Int);
      case PlanArg::Kind::Param: {
        const search::ParamDef *D = this->Space.find(A.Str);
        return D ? paramValueInterval(*D) : Interval::full();
      }
      default:
        return Interval::full();
      }
    };
    const search::ParamDef *VD = this->Space.find(E.ParamId);
    Interval V = VD ? paramValueInterval(*VD) : Interval::full();
    Interval LoI = ArgInterval(E.Lo);
    Interval HiI = ArgInterval(E.Hi);
    // Passes for every point iff the smallest value clears the largest
    // possible lower bound and the largest clears the smallest upper bound.
    if (V.bounded() && LoI.Hi != INT64_MAX && HiI.Lo != INT64_MIN &&
        V.Lo >= LoI.Hi && V.Hi <= HiI.Lo &&
        (!E.IsPow2 || (VD && paramValuesAllPow2(*VD)))) {
      Info.AlwaysPasses = true;
      ++RangeChecksElided;
      continue;
    }

    // Otherwise the verdict is a pure function of the point's values of the
    // guards, the checked parameter, and every parameter reachable from the
    // bound expressions (enum options and permutation items included, since
    // Resolve() consults them).
    std::set<std::string> Keys;
    std::function<void(const PlanArg &)> CollectKeys =
        [&](const PlanArg &A) {
          for (const PlanArg &Sub : A.List)
            CollectKeys(Sub);
          if (A.K != PlanArg::Kind::Param || !Keys.insert(A.Str).second)
            return;
          const search::ParamDef *D = this->Space.find(A.Str);
          if (!D)
            return;
          if (D->Kind == search::ParamKind::Enum) {
            auto It = this->Plan.EnumValues.find(A.Str);
            if (It != this->Plan.EnumValues.end())
              for (const PlanArg &Opt : It->second)
                CollectKeys(Opt);
          } else if (D->Kind == search::ParamKind::Permutation) {
            auto It = this->Plan.PermItems.find(A.Str);
            if (It != this->Plan.PermItems.end())
              for (const PlanArg &Item : It->second)
                CollectKeys(Item);
          }
        };
    for (const PlanGuard &G : E.Guards)
      Keys.insert(G.ParamId);
    Keys.insert(E.ParamId);
    CollectKeys(E.Lo);
    CollectKeys(E.Hi);
    Info.Memoizable = true;
    Info.KeyParams.assign(Keys.begin(), Keys.end());
  }
}

Interval paramValueInterval(const search::ParamDef &Def) {
  using search::ParamKind;
  switch (Def.Kind) {
  case ParamKind::Bool:
  case ParamKind::IntRange:
  case ParamKind::Pow2:
  case ParamKind::LogInt: {
    std::vector<search::PointValue> Vals = search::enumerateValues(Def);
    if (Vals.empty())
      return Interval::full();
    Interval I = Interval::none();
    for (const search::PointValue &V : Vals) {
      if (!std::holds_alternative<int64_t>(V))
        return Interval::full();
      I = join(I, Interval::point(std::get<int64_t>(V)));
    }
    return I;
  }
  default:
    return Interval::full();
  }
}

bool paramValuesAllPow2(const search::ParamDef &Def) {
  using search::ParamKind;
  if (Def.Kind != ParamKind::Bool && Def.Kind != ParamKind::IntRange &&
      Def.Kind != ParamKind::Pow2 && Def.Kind != ParamKind::LogInt)
    return false;
  std::vector<search::PointValue> Vals = search::enumerateValues(Def);
  if (Vals.empty())
    return false;
  for (const search::PointValue &V : Vals)
    if (!std::holds_alternative<int64_t>(V) || !isPow2(std::get<int64_t>(V)))
      return false;
  return true;
}

LegalityOracle::~LegalityOracle() = default;

std::optional<search::EvalOutcome>
LegalityOracle::classify(const search::Point &P) {
  using search::EvalOutcome;
  using search::FailureKind;

  // Bound the caches (correctness is unaffected: states are rebuilt from the
  // baseline on demand).
  if (PrefixCache.size() > 256)
    PrefixCache.clear();
  if (FailCache.size() > 4096)
    FailCache.clear();

  auto PointInt = [&](const std::string &Id, int64_t &Out) {
    auto It = P.Values.find(Id);
    if (It == P.Values.end() || !std::holds_alternative<int64_t>(It->second))
      return false;
    Out = std::get<int64_t>(It->second);
    return true;
  };

  // Resolves a PlanArg against the point; false when any part is Unknown or
  // a referenced parameter cannot be pinned to a concrete value.
  std::function<bool(const PlanArg &, PlanArg &)> Resolve =
      [&](const PlanArg &A, PlanArg &Out) -> bool {
    switch (A.K) {
    case PlanArg::Kind::Unknown:
      return false;
    case PlanArg::Kind::Int:
    case PlanArg::Kind::Float:
    case PlanArg::Kind::Str:
      Out = A;
      return true;
    case PlanArg::Kind::List: {
      PlanArg L;
      L.K = PlanArg::Kind::List;
      for (const PlanArg &I : A.List) {
        PlanArg R;
        if (!Resolve(I, R))
          return false;
        L.List.push_back(std::move(R));
      }
      Out = std::move(L);
      return true;
    }
    case PlanArg::Kind::Param: {
      const search::ParamDef *Def = Space.find(A.Str);
      auto It = P.Values.find(A.Str);
      if (!Def || It == P.Values.end())
        return false;
      switch (Def->Kind) {
      case search::ParamKind::Enum: {
        auto EIt = Plan.EnumValues.find(A.Str);
        if (EIt == Plan.EnumValues.end() ||
            !std::holds_alternative<int64_t>(It->second))
          return false;
        int64_t Choice = std::get<int64_t>(It->second);
        if (Choice < 0 || static_cast<size_t>(Choice) >= EIt->second.size())
          return false;
        return Resolve(EIt->second[static_cast<size_t>(Choice)], Out);
      }
      case search::ParamKind::Permutation: {
        auto PIt = Plan.PermItems.find(A.Str);
        if (PIt == Plan.PermItems.end() ||
            !std::holds_alternative<std::vector<int>>(It->second))
          return false;
        const auto &Perm = std::get<std::vector<int>>(It->second);
        if (Perm.size() != PIt->second.size())
          return false;
        PlanArg L;
        L.K = PlanArg::Kind::List;
        for (int I : Perm) {
          if (I < 0 || static_cast<size_t>(I) >= PIt->second.size())
            return false;
          PlanArg R;
          if (!Resolve(PIt->second[static_cast<size_t>(I)], R))
            return false;
          L.List.push_back(std::move(R));
        }
        Out = std::move(L);
        return true;
      }
      case search::ParamKind::FloatRange:
      case search::ParamKind::LogFloat:
        if (std::holds_alternative<double>(It->second))
          Out = PlanArg::ofFloat(std::get<double>(It->second));
        else if (std::holds_alternative<int64_t>(It->second))
          Out = PlanArg::ofFloat(
              static_cast<double>(std::get<int64_t>(It->second)));
        else
          return false;
        return true;
      default:
        if (!std::holds_alternative<int64_t>(It->second))
          return false;
        Out = PlanArg::ofInt(std::get<int64_t>(It->second));
        return true;
      }
    }
    }
    return false;
  };

  // Per-classify replay cursor: region -> applied-call-prefix key and the
  // cached state it denotes.
  std::map<std::string, std::string> PrefixKey;
  std::map<std::string, RegionState *> CurState;
  std::set<std::string> Poisoned;

  for (size_t EIdx = 0; EIdx < Plan.Entries.size(); ++EIdx) {
    const PlanEntry &E = Plan.Entries[EIdx];
    GuardState G = GuardState::Sat;
    for (const PlanGuard &Guard : E.Guards) {
      int64_t V;
      if (!PointInt(Guard.ParamId, V)) {
        G = GuardState::Unknown;
      } else if (V != Guard.Alt) {
        G = GuardState::Unsat;
        break;
      }
    }
    if (G == GuardState::Unsat)
      continue;
    bool Certain = G == GuardState::Sat && !E.UnderUnknownCond;

    if (E.K == PlanEntry::Kind::RangeCheck) {
      const RangeCheckInfo &Info = RCInfo[EIdx];
      if (Info.AlwaysPasses)
        continue; // proven over the whole parameter box at construction

      // Sub-box memo: the verdict is a pure function of the point's values
      // of KeyParams, so one resolution serves the whole sub-box sharing
      // that projection. Non-integer values cannot influence the verdict
      // beyond their kind, so they key as "?".
      std::string BoxKey;
      if (Info.Memoizable) {
        BoxKey = std::to_string(EIdx);
        for (const std::string &Id : Info.KeyParams) {
          auto It = P.Values.find(Id);
          BoxKey += "|" + Id + "=";
          if (It != P.Values.end() &&
              std::holds_alternative<int64_t>(It->second))
            BoxKey += std::to_string(std::get<int64_t>(It->second));
          else
            BoxKey += "?";
        }
        auto Hit = RangeBoxVerdicts.find(BoxKey);
        if (Hit != RangeBoxVerdicts.end()) {
          ++RangeBoxHits;
          if (Hit->second) {
            ++Pruned;
            ++RangePruned;
            return Hit->second;
          }
          continue;
        }
      }
      auto Remember = [&](const std::optional<EvalOutcome> &Out) {
        if (!Info.Memoizable)
          return;
        if (RangeBoxVerdicts.size() > 65536)
          RangeBoxVerdicts.clear();
        RangeBoxVerdicts.emplace(BoxKey, Out);
      };

      if (!Certain) { // may not execute: cannot prove a failure
        Remember(std::nullopt);
        continue;
      }
      int64_t V, Lo, Hi;
      PlanArg RLo, RHi;
      if (!PointInt(E.ParamId, V) || !Resolve(E.Lo, RLo) ||
          !Resolve(E.Hi, RHi) || RLo.K != PlanArg::Kind::Int ||
          RHi.K != PlanArg::Kind::Int) {
        Remember(std::nullopt);
        continue;
      }
      Lo = RLo.Int;
      Hi = RHi.Int;
      // Wording matches the interpreter's dynamic invalidation exactly.
      if (V < Lo || V > Hi) {
        EvalOutcome Out = EvalOutcome::fail(
            FailureKind::InvalidPoint, E.ParamId + "=" + std::to_string(V) +
                                           " violates range " +
                                           std::to_string(Lo) + ".." +
                                           std::to_string(Hi));
        Remember(Out);
        ++Pruned;
        ++RangePruned;
        return Out;
      }
      if (E.IsPow2 && !isPow2(V)) {
        EvalOutcome Out = EvalOutcome::fail(FailureKind::InvalidPoint,
                                            E.ParamId + "=" +
                                                std::to_string(V) +
                                                " is not a power of two");
        Remember(Out);
        ++Pruned;
        ++RangePruned;
        return Out;
      }
      Remember(std::nullopt);
      continue;
    }

    // ModuleCall replay.
    const std::string &R = E.Region;
    auto Rep = RegionReplayable.find(R);
    bool Replayable = Rep != RegionReplayable.end() && Rep->second;
    if (!Certain || !Replayable || Poisoned.count(R) || !Invoker) {
      Poisoned.insert(R);
      continue;
    }

    std::map<std::string, PlanArg> Resolved;
    bool ArgsOk = true;
    for (const auto &[Key, Arg] : E.Args) {
      PlanArg RA;
      if (!Resolve(Arg, RA)) {
        ArgsOk = false;
        break;
      }
      Resolved.emplace(Key, std::move(RA));
    }
    if (!ArgsOk) {
      Poisoned.insert(R);
      continue;
    }

    std::string CallKey = E.Module + "." + E.Member + "(";
    for (const auto &[Key, Arg] : Resolved) {
      CallKey += Key + "=";
      renderArg(Arg, CallKey);
      CallKey += ",";
    }
    CallKey += ");";
    std::string NewPrefix = R + "|" + PrefixKey[R] + CallKey;

    auto FIt = FailCache.find(NewPrefix);
    if (FIt != FailCache.end()) {
      ++Pruned;
      return FIt->second;
    }
    auto PIt = PrefixCache.find(NewPrefix);
    if (PIt != PrefixCache.end()) {
      PrefixKey[R] += CallKey;
      CurState[R] = PIt->second.get();
      continue;
    }

    // Materialize the predecessor state on first use.
    RegionState *Cur = CurState.count(R) ? CurState[R] : nullptr;
    if (!Cur) {
      std::string BaseKey = R + "|";
      auto BIt = PrefixCache.find(BaseKey);
      if (BIt == PrefixCache.end()) {
        auto S = std::make_unique<RegionState>();
        S->Prog = Baseline.clone();
        BIt = PrefixCache.emplace(BaseKey, std::move(S)).first;
      }
      Cur = BIt->second.get();
    }

    auto Next = std::make_unique<RegionState>();
    Next->Prog = Cur->Prog->clone();
    std::vector<cir::Block *> Regions = Next->Prog->findRegions(R);
    if (Regions.size() != 1) {
      Poisoned.insert(R);
      continue;
    }
    transform::TransformResult TR =
        Invoker(E.Module, E.Member, Resolved, *Regions[0], *Next->Prog);
    switch (TR.Status) {
    case transform::TransformStatus::Success:
    case transform::TransformStatus::NoOp: {
      PrefixKey[R] += CallKey;
      CurState[R] = Next.get();
      PrefixCache.emplace(NewPrefix, std::move(Next));
      continue;
    }
    case transform::TransformStatus::Illegal: {
      // Wording matches the interpreter's concrete-mode invalidation.
      EvalOutcome Out = EvalOutcome::fail(
          FailureKind::TransformIllegal,
          E.Module + "." + E.Member + " illegal: " + TR.Message);
      FailCache.emplace(NewPrefix, Out);
      ++Pruned;
      return Out;
    }
    case transform::TransformStatus::Error: {
      EvalOutcome Out = EvalOutcome::fail(
          FailureKind::InvalidPoint,
          E.Module + "." + E.Member + " error: " + TR.Message);
      FailCache.emplace(NewPrefix, Out);
      ++Pruned;
      return Out;
    }
    }
  }
  return std::nullopt;
}

} // namespace analysis
} // namespace locus
