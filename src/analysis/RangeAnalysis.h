//===- RangeAnalysis.h - Symbolic interval ranges over CIR -----*- C++ -*-===//
///
/// \file
/// A symbolic interval/affine-range dataflow over the MiniC AST. Environments
/// map scalar identifiers to saturating [lo, hi] intervals (INT64_MIN /
/// INT64_MAX act as -inf / +inf sentinels), joined at control-flow merges and
/// widened at loop heads so the fixpoint terminates on symbolic bounds.
///
/// Four consumers:
///  - checkBounds(): the static array-bounds verifier behind
///    `locus_cli --bounds-check` and the `--lint` fold-in. Every subscript of
///    every array access is proven within its declared extent, or reported
///    with the access, the offending interval, and the loop that produced it.
///  - loopBoundRanges(): per-loop init/limit intervals consumed by
///    RegionDiscovery to refine trip counts where evalConstInt() fails
///    (e.g. `for (i = 0; i < n; ...)` with `int n = 40;` in scope).
///  - iterationBox() + envAtBlock(): the post-transform iteration-space
///    containment cross-check run by verifyAfterTransform().
///  - interval evaluation of recorded dependent-range checks over whole
///    parameter boxes (LegalityOracle), so provably-pass checks are elided
///    and provably-fail sub-boxes prune before materialization.
///
/// Everything here is conservative: saturated endpoints mean "unknown in that
/// direction", and all verdicts degrade toward "cannot prove", never toward a
/// wrong claim.
///
//===----------------------------------------------------------------------===//
#ifndef LOCUS_ANALYSIS_RANGEANALYSIS_H
#define LOCUS_ANALYSIS_RANGEANALYSIS_H

#include "src/cir/Ast.h"
#include "src/support/Diag.h"

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace locus {
namespace analysis {

//===----------------------------------------------------------------------===//
// Saturating scalar arithmetic
//===----------------------------------------------------------------------===//

/// Saturating add: INT64_MIN / INT64_MAX are absorbing (-inf dominates when
/// both sentinels meet, which only happens on degenerate inputs).
int64_t satAdd(int64_t A, int64_t B);
/// Saturating negate: maps one sentinel to the other.
int64_t satNeg(int64_t A);
/// satAdd(A, satNeg(B)).
int64_t satSub(int64_t A, int64_t B);
/// Saturating multiply; 0 absorbs even against sentinels (0 * inf == 0,
/// sound because a saturated endpoint stands for "some value beyond range").
int64_t satMul(int64_t A, int64_t B);

//===----------------------------------------------------------------------===//
// Interval
//===----------------------------------------------------------------------===//

/// A saturating integer interval [Lo, Hi]. INT64_MIN as Lo and INT64_MAX as
/// Hi mean unbounded in that direction. Empty is the bottom element.
struct Interval {
  int64_t Lo = INT64_MIN;
  int64_t Hi = INT64_MAX;
  bool Empty = false;

  static Interval full() { return {}; }
  static Interval none() {
    Interval I;
    I.Empty = true;
    I.Lo = 0;
    I.Hi = -1;
    return I;
  }
  static Interval point(int64_t V) {
    Interval I;
    I.Lo = I.Hi = V;
    return I;
  }
  /// Normalizing constructor: Lo > Hi yields the empty interval.
  static Interval make(int64_t Lo, int64_t Hi) {
    if (Lo > Hi)
      return none();
    Interval I;
    I.Lo = Lo;
    I.Hi = Hi;
    return I;
  }

  bool isFull() const { return !Empty && Lo == INT64_MIN && Hi == INT64_MAX; }
  /// Both endpoints are real (non-sentinel) values.
  bool bounded() const { return !Empty && Lo != INT64_MIN && Hi != INT64_MAX; }

  bool containsValue(int64_t V) const { return !Empty && Lo <= V && V <= Hi; }
  /// Interval containment; the empty interval is contained in everything.
  bool contains(const Interval &O) const {
    if (O.Empty)
      return true;
    return !Empty && Lo <= O.Lo && O.Hi <= Hi;
  }

  bool operator==(const Interval &O) const {
    return Empty == O.Empty && (Empty || (Lo == O.Lo && Hi == O.Hi));
  }
  bool operator!=(const Interval &O) const { return !(*this == O); }

  /// "[lo, hi]" with "-inf" / "+inf" for saturated endpoints, "[]" if empty.
  std::string str() const;
};

/// Least upper bound (interval hull).
Interval join(const Interval &A, const Interval &B);
/// Greatest lower bound (intersection).
Interval meet(const Interval &A, const Interval &B);
/// Classic widening: any endpoint that moved from Old to New jumps straight
/// to its sentinel, guaranteeing loop-fixpoint termination.
Interval widen(const Interval &Old, const Interval &New);

Interval rangeAdd(const Interval &A, const Interval &B);
Interval rangeSub(const Interval &A, const Interval &B);
Interval rangeMul(const Interval &A, const Interval &B);
/// C truncating division; full() when the divisor interval spans 0.
Interval rangeDiv(const Interval &A, const Interval &B);
/// C remainder; usable bounds only for constant non-zero divisors.
Interval rangeMod(const Interval &A, const Interval &B);
Interval rangeMin(const Interval &A, const Interval &B);
Interval rangeMax(const Interval &A, const Interval &B);
Interval rangeNeg(const Interval &A);

//===----------------------------------------------------------------------===//
// Expression evaluation
//===----------------------------------------------------------------------===//

/// An abstract store: scalar name -> value interval. Names absent from the
/// environment evaluate to full().
using RangeEnv = std::map<std::string, Interval>;

/// Evaluates \p E over \p Env. min/max intrinsic calls are interpreted;
/// comparisons and logical operators yield [0, 1]; array loads, float
/// literals and unknown calls yield full().
Interval evalRange(const cir::Expr &E, const RangeEnv &Env);

//===----------------------------------------------------------------------===//
// Bounds verification
//===----------------------------------------------------------------------===//

/// One subscript the analysis could not prove in bounds.
struct SubscriptFinding {
  enum class Kind {
    Violation, ///< a finite endpoint lies outside the valid range
    Unproven   ///< a saturated/widened endpoint defeats the proof
  };
  Kind K = Kind::Unproven;
  std::string Array;     ///< array name
  int Dim = 0;           ///< 0-based subscript position
  int64_t Extent = 0;    ///< declared extent of that dimension
  std::string IndexText; ///< unparsed index expression
  Interval Range;        ///< computed interval of the index
  support::SrcLoc Loc;   ///< location of the access
  std::string Region;    ///< enclosing Locus region name, if any
  /// Innermost enclosing loop whose variable the index mentions.
  std::string LoopVar;
  support::SrcLoc LoopLoc;
  /// Every point of Range is out of bounds (not just the extremes). Only
  /// definite findings are hard post-transform verification errors; interval
  /// subtraction loses cross-variable correlation (e.g. skewed subscripts),
  /// so a may-out-of-bounds interval is not proof of a broken rewrite.
  bool Definite = false;

  /// Witness message without the location prefix and region suffix, for
  /// embedding in a Diag that carries Loc and Region itself.
  std::string witness() const;

  /// Located one-line witness, e.g.
  /// "12:9: A[i][j]: subscript 2 ranges over [0, 32] but extent is 32
  ///  (valid 0..31); indexed by loop `j` at 11:5".
  std::string render() const;
};

/// Result of a whole-program bounds scan.
struct BoundsReport {
  int SubscriptsChecked = 0; ///< (access, dimension) pairs visited
  int Proven = 0;            ///< of those, proven within extents
  std::vector<SubscriptFinding> Findings;

  int violations() const;
  int unproven() const;
  bool clean() const { return Findings.empty(); }
  /// Multi-line human-readable report (summary + one line per finding).
  std::string render() const;
};

/// Proves every subscript of every array access in \p P within its declared
/// extents, or reports a located finding. Accesses under provably-empty
/// loops are vacuously proven.
BoundsReport checkBounds(const cir::Program &P);

//===----------------------------------------------------------------------===//
// Loop ranges / iteration boxes
//===----------------------------------------------------------------------===//

/// Intervals of a loop's init and exclusive limit expressions at loop entry.
struct LoopRange {
  Interval Init;  ///< interval of the init expression
  Interval Limit; ///< interval of the EXCLUSIVE upper limit (Bound, +1 if <=)
};

/// Entry-environment init/limit intervals for every loop in \p P.
std::map<const cir::ForStmt *, LoopRange>
loopBoundRanges(const cir::Program &P);

/// The abstract environment at the entry of \p Target (a block inside \p P).
/// Empty when \p Target is not reachable by the walk.
RangeEnv envAtBlock(const cir::Program &P, const cir::Block *Target);

/// Name -> value interval of every loop variable inside \p B (joined when
/// several loops share a name, e.g. a main/remainder pair), evaluated under
/// \p Base. This is the nest's iteration-space box.
std::map<std::string, Interval> iterationBox(const cir::Block &B,
                                             const RangeEnv &Base);

/// Declared array extents of \p P (globals and local declarations, flat).
std::map<std::string, std::vector<int64_t>>
arrayExtents(const cir::Program &P);

} // namespace analysis
} // namespace locus

#endif // LOCUS_ANALYSIS_RANGEANALYSIS_H
