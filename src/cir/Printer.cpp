//===- Printer.cpp - MiniC unparser ---------------------------------------===//

#include "src/cir/Printer.h"

#include <sstream>

namespace locus {
namespace cir {

namespace {

/// C operator precedence used to parenthesize minimally but safely.
int precedence(BinOp Op) {
  switch (Op) {
  case BinOp::Mul:
  case BinOp::Div:
  case BinOp::Mod:
    return 5;
  case BinOp::Add:
  case BinOp::Sub:
    return 4;
  case BinOp::Lt:
  case BinOp::Le:
  case BinOp::Gt:
  case BinOp::Ge:
    return 3;
  case BinOp::Eq:
  case BinOp::Ne:
    return 2;
  case BinOp::And:
    return 1;
  case BinOp::Or:
    return 0;
  }
  return 0;
}

const char *opText(BinOp Op) {
  switch (Op) {
  case BinOp::Add:
    return "+";
  case BinOp::Sub:
    return "-";
  case BinOp::Mul:
    return "*";
  case BinOp::Div:
    return "/";
  case BinOp::Mod:
    return "%";
  case BinOp::Lt:
    return "<";
  case BinOp::Le:
    return "<=";
  case BinOp::Gt:
    return ">";
  case BinOp::Ge:
    return ">=";
  case BinOp::Eq:
    return "==";
  case BinOp::Ne:
    return "!=";
  case BinOp::And:
    return "&&";
  case BinOp::Or:
    return "||";
  }
  return "?";
}

void printExprPrec(const Expr &E, int Parent, std::ostringstream &Out) {
  switch (E.kind()) {
  case ExprKind::IntLit:
    Out << cast<IntLit>(&E)->Value;
    return;
  case ExprKind::FloatLit: {
    std::ostringstream Num;
    Num << cast<FloatLit>(&E)->Value;
    std::string Text = Num.str();
    // Make sure it still reads as a floating literal.
    if (Text.find('.') == std::string::npos &&
        Text.find('e') == std::string::npos &&
        Text.find("inf") == std::string::npos)
      Text += ".0";
    Out << Text;
    return;
  }
  case ExprKind::VarRef:
    Out << cast<VarRef>(&E)->Name;
    return;
  case ExprKind::ArrayRef: {
    const auto *A = cast<ArrayRef>(&E);
    Out << A->Name;
    for (const auto &I : A->Indices) {
      Out << '[';
      printExprPrec(*I, -1, Out);
      Out << ']';
    }
    return;
  }
  case ExprKind::Binary: {
    const auto *B = cast<BinaryExpr>(&E);
    int Prec = precedence(B->Op);
    bool Paren = Prec < Parent;
    if (Paren)
      Out << '(';
    printExprPrec(*B->Lhs, Prec, Out);
    Out << ' ' << opText(B->Op) << ' ';
    // Right operand binds one tighter to preserve left associativity of
    // non-commutative operators.
    printExprPrec(*B->Rhs, Prec + 1, Out);
    if (Paren)
      Out << ')';
    return;
  }
  case ExprKind::Unary: {
    const auto *U = cast<UnaryExpr>(&E);
    Out << (U->Op == UnOp::Neg ? '-' : '!');
    printExprPrec(*U->Operand, 6, Out);
    return;
  }
  case ExprKind::Call: {
    const auto *C = cast<CallExpr>(&E);
    Out << C->Callee << '(';
    for (size_t I = 0; I < C->Args.size(); ++I) {
      if (I != 0)
        Out << ", ";
      printExprPrec(*C->Args[I], -1, Out);
    }
    Out << ')';
    return;
  }
  }
}

class StmtPrinter {
public:
  StmtPrinter(const PrintOptions &Opts) : Opts(Opts) {}

  void print(const Stmt &S, int Indent) {
    for (const auto &P : S.Pragmas)
      line(Indent) << "#pragma " << P << '\n';

    switch (S.kind()) {
    case StmtKind::Block: {
      const auto *B = cast<Block>(&S);
      bool IsRegion = !B->RegionName.empty() && Opts.EmitRegionPragmas;
      bool LoopRegion = IsRegion && B->Stmts.size() == 1 &&
                        isa<ForStmt>(B->Stmts.front().get());
      if (LoopRegion) {
        line(Indent) << "#pragma @Locus loop=" << B->RegionName << '\n';
        print(*B->Stmts.front(), Indent);
        return;
      }
      if (IsRegion)
        line(Indent) << "#pragma @Locus block=" << B->RegionName << '\n';
      line(Indent) << "{\n";
      for (const auto &Sub : B->Stmts)
        print(*Sub, Indent + 1);
      line(Indent) << "}\n";
      if (IsRegion)
        line(Indent) << "#pragma @Locus endblock\n";
      return;
    }
    case StmtKind::For: {
      const auto *F = cast<ForStmt>(&S);
      line(Indent) << "for (" << F->Var << " = " << printExpr(*F->Init) << "; "
                   << F->Var << (F->Op == BoundOp::Lt ? " < " : " <= ")
                   << printExpr(*F->Bound) << "; " << F->Var;
      if (F->Step == 1)
        Out << "++";
      else
        Out << " += " << F->Step;
      Out << ") {\n";
      for (const auto &Sub : F->Body->Stmts)
        print(*Sub, Indent + 1);
      line(Indent) << "}\n";
      return;
    }
    case StmtKind::If: {
      const auto *I = cast<IfStmt>(&S);
      line(Indent) << "if (" << printExpr(*I->Cond) << ") {\n";
      for (const auto &Sub : I->Then->Stmts)
        print(*Sub, Indent + 1);
      if (I->Else) {
        line(Indent) << "} else {\n";
        for (const auto &Sub : I->Else->Stmts)
          print(*Sub, Indent + 1);
      }
      line(Indent) << "}\n";
      return;
    }
    case StmtKind::Assign: {
      const auto *A = cast<AssignStmt>(&S);
      const char *Op = "=";
      if (A->Op == AssignOp::Add)
        Op = "+=";
      else if (A->Op == AssignOp::Sub)
        Op = "-=";
      else if (A->Op == AssignOp::Mul)
        Op = "*=";
      line(Indent) << printExpr(*A->Lhs) << ' ' << Op << ' '
                   << printExpr(*A->Rhs) << ";\n";
      return;
    }
    case StmtKind::Decl: {
      const auto *D = cast<DeclStmt>(&S);
      line(Indent) << (D->Elem == ElemType::Int ? "int " : "double ")
                   << D->Name;
      for (int64_t Dim : D->Dims)
        Out << '[' << Dim << ']';
      if (D->Init)
        Out << " = " << printExpr(*D->Init);
      Out << ";\n";
      return;
    }
    case StmtKind::CallStmt: {
      const auto *C = cast<CallStmt>(&S);
      line(Indent) << printExpr(*C->Call) << ";\n";
      return;
    }
    }
  }

  std::string take() { return Out.str(); }

private:
  std::ostringstream &line(int Indent) {
    for (int I = 0; I < Indent * Opts.IndentWidth; ++I)
      Out << ' ';
    return Out;
  }

  const PrintOptions &Opts;
  std::ostringstream Out;
};

} // namespace

std::string printExpr(const Expr &E) {
  std::ostringstream Out;
  printExprPrec(E, -1, Out);
  return Out.str();
}

std::string printStmt(const Stmt &S, const PrintOptions &Opts, int Indent) {
  StmtPrinter P(Opts);
  P.print(S, Indent);
  return P.take();
}

std::string printProgram(const Program &P, const PrintOptions &Opts) {
  std::string Out;
  for (const auto &G : P.Globals)
    Out += printStmt(*G, Opts);
  Out += "\n";
  for (const auto &S : P.Body->Stmts)
    Out += printStmt(*S, Opts);
  return Out;
}

} // namespace cir
} // namespace locus
