//===- AstUtils.cpp - MiniC AST manipulation helpers -----------------------===//

#include "src/cir/AstUtils.h"

#include "src/cir/Printer.h"
#include "src/support/Hashing.h"

#include <algorithm>

namespace locus {
namespace cir {

std::vector<ForStmt *> perfectNest(ForStmt &Root) {
  std::vector<ForStmt *> Nest;
  ForStmt *Current = &Root;
  while (true) {
    Nest.push_back(Current);
    if (Current->Body->Stmts.size() != 1)
      break;
    auto *Next = dyn_cast<ForStmt>(Current->Body->Stmts.front().get());
    if (!Next)
      break;
    Current = Next;
  }
  return Nest;
}

int loopNestDepth(const ForStmt &Root) {
  int MaxChild = 0;
  const std::function<int(const Block &)> BlockDepth =
      [&](const Block &B) -> int {
    int Max = 0;
    for (const auto &S : B.Stmts) {
      if (const auto *For = dyn_cast<ForStmt>(S.get()))
        Max = std::max(Max, loopNestDepth(*For));
      else if (const auto *Sub = dyn_cast<Block>(S.get()))
        Max = std::max(Max, BlockDepth(*Sub));
      else if (const auto *If = dyn_cast<IfStmt>(S.get())) {
        Max = std::max(Max, BlockDepth(*If->Then));
        if (If->Else)
          Max = std::max(Max, BlockDepth(*If->Else));
      }
    }
    return Max;
  };
  MaxChild = BlockDepth(*Root.Body);
  return 1 + MaxChild;
}

bool isPerfectNest(const ForStmt &Root) {
  const ForStmt *Current = &Root;
  while (true) {
    if (Current->Body->Stmts.empty())
      return true;
    bool HasLoop = false;
    for (const auto &S : Current->Body->Stmts)
      if (isa<ForStmt>(S.get()))
        HasLoop = true;
    if (!HasLoop)
      return true; // innermost body: any statements are fine
    if (Current->Body->Stmts.size() != 1)
      return false; // a loop plus siblings -> imperfect
    Current = cast<ForStmt>(Current->Body->Stmts.front().get());
  }
}

ExprPtr substituteVar(ExprPtr E, const std::string &Name,
                      const Expr &Replacement) {
  switch (E->kind()) {
  case ExprKind::VarRef:
    if (cast<VarRef>(E.get())->Name == Name)
      return Replacement.clone();
    return E;
  case ExprKind::IntLit:
  case ExprKind::FloatLit:
    return E;
  case ExprKind::ArrayRef: {
    auto *A = cast<ArrayRef>(E.get());
    for (auto &I : A->Indices)
      I = substituteVar(std::move(I), Name, Replacement);
    return E;
  }
  case ExprKind::Binary: {
    auto *B = cast<BinaryExpr>(E.get());
    B->Lhs = substituteVar(std::move(B->Lhs), Name, Replacement);
    B->Rhs = substituteVar(std::move(B->Rhs), Name, Replacement);
    return E;
  }
  case ExprKind::Unary: {
    auto *U = cast<UnaryExpr>(E.get());
    U->Operand = substituteVar(std::move(U->Operand), Name, Replacement);
    return E;
  }
  case ExprKind::Call: {
    auto *C = cast<CallExpr>(E.get());
    for (auto &A : C->Args)
      A = substituteVar(std::move(A), Name, Replacement);
    return E;
  }
  }
  return E;
}

void substituteVarInStmt(Stmt &S, const std::string &Name,
                         const Expr &Replacement) {
  forEachExpr(S, [&](ExprPtr &E) {
    E = substituteVar(std::move(E), Name, Replacement);
  });
}

bool exprEquals(const Expr &A, const Expr &B) {
  if (A.kind() != B.kind())
    return false;
  switch (A.kind()) {
  case ExprKind::IntLit:
    return cast<IntLit>(&A)->Value == cast<IntLit>(&B)->Value;
  case ExprKind::FloatLit: {
    const auto *X = cast<FloatLit>(&A);
    const auto *Y = cast<FloatLit>(&B);
    // Values that unparse identically are indistinguishable after a print →
    // reparse round trip; treat them as equal so the verifier's round-trip
    // check is not tripped by the printer's limited float precision.
    return X->Value == Y->Value || printExpr(*X) == printExpr(*Y);
  }
  case ExprKind::VarRef:
    return cast<VarRef>(&A)->Name == cast<VarRef>(&B)->Name;
  case ExprKind::ArrayRef: {
    const auto *X = cast<ArrayRef>(&A);
    const auto *Y = cast<ArrayRef>(&B);
    if (X->Name != Y->Name || X->Indices.size() != Y->Indices.size())
      return false;
    for (size_t I = 0; I < X->Indices.size(); ++I)
      if (!exprEquals(*X->Indices[I], *Y->Indices[I]))
        return false;
    return true;
  }
  case ExprKind::Binary: {
    const auto *X = cast<BinaryExpr>(&A);
    const auto *Y = cast<BinaryExpr>(&B);
    return X->Op == Y->Op && exprEquals(*X->Lhs, *Y->Lhs) &&
           exprEquals(*X->Rhs, *Y->Rhs);
  }
  case ExprKind::Unary: {
    const auto *X = cast<UnaryExpr>(&A);
    const auto *Y = cast<UnaryExpr>(&B);
    return X->Op == Y->Op && exprEquals(*X->Operand, *Y->Operand);
  }
  case ExprKind::Call: {
    const auto *X = cast<CallExpr>(&A);
    const auto *Y = cast<CallExpr>(&B);
    if (X->Callee != Y->Callee || X->Args.size() != Y->Args.size())
      return false;
    for (size_t I = 0; I < X->Args.size(); ++I)
      if (!exprEquals(*X->Args[I], *Y->Args[I]))
        return false;
    return true;
  }
  }
  return false;
}

namespace {

/// Descends through singleton unnamed, pragma-free child blocks: the
/// statement list of the returned block is the normalized content of \p B.
const Block *unwrapBlock(const Block *B) {
  while (B->Stmts.size() == 1) {
    const auto *Inner = dyn_cast<Block>(B->Stmts.front().get());
    if (!Inner || !Inner->RegionName.empty() || !Inner->Pragmas.empty())
      break;
    B = Inner;
  }
  return B;
}

bool blockContentsEqual(const Block &A, const Block &B) {
  const Block *NA = unwrapBlock(&A);
  const Block *NB = unwrapBlock(&B);
  if (NA->Stmts.size() != NB->Stmts.size())
    return false;
  for (size_t I = 0; I < NA->Stmts.size(); ++I)
    if (!stmtEquals(*NA->Stmts[I], *NB->Stmts[I]))
      return false;
  return true;
}

} // namespace

bool stmtEquals(const Stmt &A, const Stmt &B) {
  if (A.kind() != B.kind()) {
    // Allow a redundant singleton wrapper block on one side only.
    if (const auto *BA = dyn_cast<Block>(&A))
      if (BA->RegionName.empty() && BA->Pragmas.empty() &&
          BA->Stmts.size() == 1)
        return stmtEquals(*BA->Stmts.front(), B);
    if (const auto *BB = dyn_cast<Block>(&B))
      if (BB->RegionName.empty() && BB->Pragmas.empty() &&
          BB->Stmts.size() == 1)
        return stmtEquals(A, *BB->Stmts.front());
    return false;
  }
  if (A.Pragmas != B.Pragmas)
    return false;
  switch (A.kind()) {
  case StmtKind::Block: {
    const auto *X = cast<Block>(&A);
    const auto *Y = cast<Block>(&B);
    return X->RegionName == Y->RegionName && blockContentsEqual(*X, *Y);
  }
  case StmtKind::For: {
    const auto *X = cast<ForStmt>(&A);
    const auto *Y = cast<ForStmt>(&B);
    return X->Var == Y->Var && X->Op == Y->Op && X->Step == Y->Step &&
           exprEquals(*X->Init, *Y->Init) && exprEquals(*X->Bound, *Y->Bound) &&
           blockContentsEqual(*X->Body, *Y->Body);
  }
  case StmtKind::If: {
    const auto *X = cast<IfStmt>(&A);
    const auto *Y = cast<IfStmt>(&B);
    if (!exprEquals(*X->Cond, *Y->Cond) ||
        !blockContentsEqual(*X->Then, *Y->Then))
      return false;
    if (static_cast<bool>(X->Else) != static_cast<bool>(Y->Else))
      return false;
    return !X->Else || blockContentsEqual(*X->Else, *Y->Else);
  }
  case StmtKind::Assign: {
    const auto *X = cast<AssignStmt>(&A);
    const auto *Y = cast<AssignStmt>(&B);
    return X->Op == Y->Op && exprEquals(*X->Lhs, *Y->Lhs) &&
           exprEquals(*X->Rhs, *Y->Rhs);
  }
  case StmtKind::Decl: {
    const auto *X = cast<DeclStmt>(&A);
    const auto *Y = cast<DeclStmt>(&B);
    if (X->Elem != Y->Elem || X->Name != Y->Name || X->Dims != Y->Dims)
      return false;
    if (static_cast<bool>(X->Init) != static_cast<bool>(Y->Init))
      return false;
    return !X->Init || exprEquals(*X->Init, *Y->Init);
  }
  case StmtKind::CallStmt:
    return exprEquals(*cast<CallStmt>(&A)->Call, *cast<CallStmt>(&B)->Call);
  }
  return false;
}

bool programEquals(const Program &A, const Program &B) {
  std::vector<const Stmt *> SA, SB;
  const auto Collect = [](const Program &P, std::vector<const Stmt *> &Out) {
    for (const auto &G : P.Globals)
      Out.push_back(G.get());
    const Block *Body = unwrapBlock(P.Body.get());
    for (const auto &S : Body->Stmts)
      Out.push_back(S.get());
  };
  Collect(A, SA);
  Collect(B, SB);
  if (SA.size() != SB.size())
    return false;
  for (size_t I = 0; I < SA.size(); ++I)
    if (!stmtEquals(*SA[I], *SB[I]))
      return false;
  return true;
}

void collectVars(const Expr &E, std::set<std::string> &Out) {
  switch (E.kind()) {
  case ExprKind::VarRef:
    Out.insert(cast<VarRef>(&E)->Name);
    return;
  case ExprKind::IntLit:
  case ExprKind::FloatLit:
    return;
  case ExprKind::ArrayRef:
    for (const auto &I : cast<ArrayRef>(&E)->Indices)
      collectVars(*I, Out);
    return;
  case ExprKind::Binary:
    collectVars(*cast<BinaryExpr>(&E)->Lhs, Out);
    collectVars(*cast<BinaryExpr>(&E)->Rhs, Out);
    return;
  case ExprKind::Unary:
    collectVars(*cast<UnaryExpr>(&E)->Operand, Out);
    return;
  case ExprKind::Call:
    for (const auto &A : cast<CallExpr>(&E)->Args)
      collectVars(*A, Out);
    return;
  }
}

void collectArrays(const Expr &E, std::set<std::string> &Out) {
  switch (E.kind()) {
  case ExprKind::ArrayRef: {
    const auto *A = cast<ArrayRef>(&E);
    Out.insert(A->Name);
    for (const auto &I : A->Indices)
      collectArrays(*I, Out);
    return;
  }
  case ExprKind::Binary:
    collectArrays(*cast<BinaryExpr>(&E)->Lhs, Out);
    collectArrays(*cast<BinaryExpr>(&E)->Rhs, Out);
    return;
  case ExprKind::Unary:
    collectArrays(*cast<UnaryExpr>(&E)->Operand, Out);
    return;
  case ExprKind::Call:
    for (const auto &A : cast<CallExpr>(&E)->Args)
      collectArrays(*A, Out);
    return;
  default:
    return;
  }
}

bool referencesVar(const Expr &E, const std::string &Name) {
  std::set<std::string> Vars;
  collectVars(E, Vars);
  return Vars.count(Name) != 0;
}

bool stmtReferencesVar(const Stmt &S, const std::string &Name) {
  bool Found = false;
  forEachStmt(const_cast<Stmt &>(S), [&](Stmt &Sub) {
    if (Found)
      return;
    forEachExpr(Sub, [&](ExprPtr &E) {
      if (!Found && referencesVar(*E, Name))
        Found = true;
    });
    if (auto *For = dyn_cast<ForStmt>(&Sub))
      if (For->Var == Name)
        Found = true;
  });
  return Found;
}

std::optional<int64_t> evalConstInt(const Expr &E) {
  switch (E.kind()) {
  case ExprKind::IntLit:
    return cast<IntLit>(&E)->Value;
  case ExprKind::Unary: {
    const auto *U = cast<UnaryExpr>(&E);
    std::optional<int64_t> V = evalConstInt(*U->Operand);
    if (!V)
      return std::nullopt;
    return U->Op == UnOp::Neg ? -*V : static_cast<int64_t>(*V == 0);
  }
  case ExprKind::Binary: {
    const auto *B = cast<BinaryExpr>(&E);
    std::optional<int64_t> L = evalConstInt(*B->Lhs);
    std::optional<int64_t> R = evalConstInt(*B->Rhs);
    if (!L || !R)
      return std::nullopt;
    switch (B->Op) {
    case BinOp::Add:
      return *L + *R;
    case BinOp::Sub:
      return *L - *R;
    case BinOp::Mul:
      return *L * *R;
    case BinOp::Div:
      return *R == 0 ? std::nullopt : std::optional<int64_t>(*L / *R);
    case BinOp::Mod:
      return *R == 0 ? std::nullopt : std::optional<int64_t>(*L % *R);
    case BinOp::Lt:
      return static_cast<int64_t>(*L < *R);
    case BinOp::Le:
      return static_cast<int64_t>(*L <= *R);
    case BinOp::Gt:
      return static_cast<int64_t>(*L > *R);
    case BinOp::Ge:
      return static_cast<int64_t>(*L >= *R);
    case BinOp::Eq:
      return static_cast<int64_t>(*L == *R);
    case BinOp::Ne:
      return static_cast<int64_t>(*L != *R);
    case BinOp::And:
      return static_cast<int64_t>(*L != 0 && *R != 0);
    case BinOp::Or:
      return static_cast<int64_t>(*L != 0 || *R != 0);
    }
    return std::nullopt;
  }
  case ExprKind::Call: {
    const auto *C = cast<CallExpr>(&E);
    if ((C->Callee == "min" || C->Callee == "max") && C->Args.size() == 2) {
      std::optional<int64_t> A = evalConstInt(*C->Args[0]);
      std::optional<int64_t> B = evalConstInt(*C->Args[1]);
      if (A && B)
        return C->Callee == "min" ? std::min(*A, *B) : std::max(*A, *B);
    }
    return std::nullopt;
  }
  default:
    return std::nullopt;
  }
}

ExprPtr foldExpr(ExprPtr E) {
  switch (E->kind()) {
  case ExprKind::Binary: {
    auto *B = cast<BinaryExpr>(E.get());
    B->Lhs = foldExpr(std::move(B->Lhs));
    B->Rhs = foldExpr(std::move(B->Rhs));
    if (std::optional<int64_t> V = evalConstInt(*E))
      return makeInt(*V);
    std::optional<int64_t> L = evalConstInt(*B->Lhs);
    std::optional<int64_t> R = evalConstInt(*B->Rhs);
    // x + 0, x - 0
    if ((B->Op == BinOp::Add || B->Op == BinOp::Sub) && R && *R == 0)
      return std::move(B->Lhs);
    // 0 + x
    if (B->Op == BinOp::Add && L && *L == 0)
      return std::move(B->Rhs);
    // x * 1, x / 1
    if ((B->Op == BinOp::Mul || B->Op == BinOp::Div) && R && *R == 1)
      return std::move(B->Lhs);
    // 1 * x
    if (B->Op == BinOp::Mul && L && *L == 1)
      return std::move(B->Rhs);
    // 0 * x, x * 0
    if (B->Op == BinOp::Mul && ((L && *L == 0) || (R && *R == 0)))
      return makeInt(0);
    return E;
  }
  case ExprKind::Unary: {
    auto *U = cast<UnaryExpr>(E.get());
    U->Operand = foldExpr(std::move(U->Operand));
    if (std::optional<int64_t> V = evalConstInt(*E))
      return makeInt(*V);
    return E;
  }
  case ExprKind::Call: {
    auto *C = cast<CallExpr>(E.get());
    for (auto &A : C->Args)
      A = foldExpr(std::move(A));
    if ((C->Callee == "min" || C->Callee == "max") && C->Args.size() == 2) {
      if (std::optional<int64_t> V = evalConstInt(*E))
        return makeInt(*V);
      // min(x, x) == x
      if (exprEquals(*C->Args[0], *C->Args[1]))
        return std::move(C->Args[0]);
    }
    return E;
  }
  case ExprKind::ArrayRef: {
    auto *A = cast<ArrayRef>(E.get());
    for (auto &I : A->Indices)
      I = foldExpr(std::move(I));
    return E;
  }
  default:
    return E;
  }
}

void collectOuterLoops(const Block &B, std::vector<const ForStmt *> &Out) {
  for (const StmtPtr &S : B.Stmts) {
    if (const auto *For = dyn_cast<ForStmt>(S.get()))
      Out.push_back(For);
    else if (const auto *Blk = dyn_cast<Block>(S.get()))
      collectOuterLoops(*Blk, Out);
  }
}

void collectAllLoops(const Block &B, std::vector<const ForStmt *> &Out) {
  for (const StmtPtr &S : B.Stmts) {
    if (const auto *For = dyn_cast<ForStmt>(S.get())) {
      Out.push_back(For);
      collectAllLoops(*For->Body, Out);
    } else if (const auto *Blk = dyn_cast<Block>(S.get())) {
      collectAllLoops(*Blk, Out);
    } else if (const auto *If = dyn_cast<IfStmt>(S.get())) {
      collectAllLoops(*If->Then, Out);
      if (If->Else)
        collectAllLoops(*If->Else, Out);
    }
  }
}

void forEachExpr(Stmt &S, const std::function<void(ExprPtr &)> &Fn) {
  switch (S.kind()) {
  case StmtKind::Block:
    for (auto &Sub : cast<Block>(&S)->Stmts)
      forEachExpr(*Sub, Fn);
    return;
  case StmtKind::For: {
    auto *F = cast<ForStmt>(&S);
    Fn(F->Init);
    Fn(F->Bound);
    forEachExpr(*F->Body, Fn);
    return;
  }
  case StmtKind::If: {
    auto *I = cast<IfStmt>(&S);
    Fn(I->Cond);
    forEachExpr(*I->Then, Fn);
    if (I->Else)
      forEachExpr(*I->Else, Fn);
    return;
  }
  case StmtKind::Assign: {
    auto *A = cast<AssignStmt>(&S);
    Fn(A->Lhs);
    Fn(A->Rhs);
    return;
  }
  case StmtKind::Decl: {
    auto *D = cast<DeclStmt>(&S);
    if (D->Init)
      Fn(D->Init);
    return;
  }
  case StmtKind::CallStmt:
    Fn(cast<CallStmt>(&S)->Call);
    return;
  }
}

void forEachStmt(Stmt &S, const std::function<void(Stmt &)> &Fn) {
  Fn(S);
  switch (S.kind()) {
  case StmtKind::Block:
    for (auto &Sub : cast<Block>(&S)->Stmts)
      forEachStmt(*Sub, Fn);
    return;
  case StmtKind::For:
    forEachStmt(*cast<ForStmt>(&S)->Body, Fn);
    return;
  case StmtKind::If: {
    auto *I = cast<IfStmt>(&S);
    forEachStmt(*I->Then, Fn);
    if (I->Else)
      forEachStmt(*I->Else, Fn);
    return;
  }
  default:
    return;
  }
}

uint64_t hashRegion(const Block &Region) {
  PrintOptions Opts;
  Opts.EmitRegionPragmas = false;
  return fnv1a(printStmt(Region, Opts));
}

} // namespace cir
} // namespace locus
