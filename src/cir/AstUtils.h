//===- AstUtils.h - MiniC AST manipulation helpers -------------*- C++ -*-===//
///
/// \file
/// Shared AST utilities: perfect-nest discovery, variable substitution,
/// structural equality, constant folding of index/bound expressions, and
/// code-region hashing (used for the source-coherence check of Section II).
///
//===----------------------------------------------------------------------===//
#ifndef LOCUS_CIR_ASTUTILS_H
#define LOCUS_CIR_ASTUTILS_H

#include "src/cir/Ast.h"

#include <cstdint>
#include <functional>
#include <optional>
#include <set>
#include <string>
#include <vector>

namespace locus {
namespace cir {

/// Returns the chain of perfectly nested loops rooted at \p Root: Root, then
/// its only-statement child loop, and so on. Always contains at least Root.
std::vector<ForStmt *> perfectNest(ForStmt &Root);

/// Returns the full nesting depth of the loop nest rooted at \p Root: the
/// longest chain of loops reachable by descending through bodies (not
/// necessarily perfectly nested).
int loopNestDepth(const ForStmt &Root);

/// Returns true when the nest rooted at \p Root is perfectly nested: every
/// body down to the innermost loop contains exactly one statement, a loop.
bool isPerfectNest(const ForStmt &Root);

/// Replaces every VarRef to \p Name inside \p E with a clone of \p
/// Replacement, returning the (possibly new) expression.
ExprPtr substituteVar(ExprPtr E, const std::string &Name,
                      const Expr &Replacement);

/// Replaces VarRefs in all expressions of the statement subtree.
void substituteVarInStmt(Stmt &S, const std::string &Name,
                         const Expr &Replacement);

/// Structural expression equality.
bool exprEquals(const Expr &A, const Expr &B);

/// Structural statement equality: pragmas and region names are compared,
/// source locations are ignored. Blocks are compared modulo redundant
/// nesting — a block whose only statement is an unnamed, pragma-free block
/// is equivalent to that inner block (the unparser/parser pair introduces
/// such wrappers around region bodies).
bool stmtEquals(const Stmt &A, const Stmt &B);

/// Program equality used by the verifier's unparse→reparse round-trip check.
/// Globals and main-body statements are compared as one combined sequence
/// because reparsing printed output may reclassify leading body declarations
/// as globals.
bool programEquals(const Program &A, const Program &B);

/// Collects the names of all scalar variables referenced in \p E.
void collectVars(const Expr &E, std::set<std::string> &Out);

/// Collects names of arrays referenced in \p E.
void collectArrays(const Expr &E, std::set<std::string> &Out);

/// Returns true if expression \p E references variable \p Name.
bool referencesVar(const Expr &E, const std::string &Name);

/// Returns true if any expression in the statement subtree references \p Name.
bool stmtReferencesVar(const Stmt &S, const std::string &Name);

/// Evaluates \p E when it is a compile-time integer constant.
std::optional<int64_t> evalConstInt(const Expr &E);

/// Folds constant subexpressions and algebraic identities (x+0, x*1, 1*x,
/// min/max of constants). Transformation-generated bounds go through this so
/// emitted code stays readable.
ExprPtr foldExpr(ExprPtr E);

/// Collects the outermost loops inside \p B in source order, descending
/// through nested plain blocks but not into loop bodies. (Shared by the CLI
/// workflows and region discovery; formerly private to locus_cli.)
void collectOuterLoops(const Block &B, std::vector<const ForStmt *> &Out);

/// Collects every loop inside \p B — nest roots and nested loops alike —
/// descending through blocks, loop bodies and both if branches.
void collectAllLoops(const Block &B, std::vector<const ForStmt *> &Out);

/// Visits every expression in a statement subtree (mutable access).
void forEachExpr(Stmt &S, const std::function<void(ExprPtr &)> &Fn);

/// Visits every statement in the subtree, preorder.
void forEachStmt(Stmt &S, const std::function<void(Stmt &)> &Fn);

/// Stable hash of a code region's unparsed text; Section II uses this key to
/// warn when the source drifted under a saved optimization program.
uint64_t hashRegion(const Block &Region);

} // namespace cir
} // namespace locus

#endif // LOCUS_CIR_ASTUTILS_H
