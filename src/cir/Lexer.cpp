//===- Lexer.cpp - MiniC lexer --------------------------------------------===//

#include "src/cir/Lexer.h"

#include "src/support/StringUtils.h"

#include <cctype>
#include <cstdlib>

namespace locus {
namespace cir {

Lexer::Lexer(std::string Source) : Source(std::move(Source)) {}

char Lexer::peek(int Ahead) const {
  size_t P = Pos + static_cast<size_t>(Ahead);
  return P < Source.size() ? Source[P] : '\0';
}

char Lexer::advance() {
  char C = Source[Pos++];
  if (C == '\n') {
    ++Line;
    LineStartPos = Pos;
  }
  return C;
}

void Lexer::skipTrivia() {
  while (!atEnd()) {
    char C = peek();
    if (std::isspace(static_cast<unsigned char>(C))) {
      advance();
      continue;
    }
    if (C == '/' && peek(1) == '/') {
      while (!atEnd() && peek() != '\n')
        advance();
      continue;
    }
    if (C == '/' && peek(1) == '*') {
      advance();
      advance();
      while (!atEnd() && !(peek() == '*' && peek(1) == '/'))
        advance();
      if (!atEnd()) {
        advance();
        advance();
      }
      continue;
    }
    break;
  }
}

std::vector<Token> Lexer::lexAll() {
  std::vector<Token> Tokens;
  while (true) {
    Token T = lexToken();
    bool IsEof = T.is(TokKind::Eof);
    Tokens.push_back(std::move(T));
    if (IsEof)
      break;
  }
  return Tokens;
}

Token Lexer::lexToken() {
  skipTrivia();
  Token T;
  T.Line = Line;
  T.Col = static_cast<int>(Pos - LineStartPos) + 1;
  if (atEnd() || hadError())
    return T;

  char C = peek();

  // Preprocessor lines: #define handled here, #pragma becomes a token.
  if (C == '#') {
    size_t LineStart = Pos;
    while (!atEnd() && peek() != '\n')
      advance();
    std::string LineText(Source.substr(LineStart, Pos - LineStart));
    std::string_view Body = trimString(LineText);
    if (startsWith(Body, "#pragma")) {
      T.Kind = TokKind::Pragma;
      T.Text = std::string(trimString(Body.substr(7)));
      return T;
    }
    if (startsWith(Body, "#define")) {
      std::string_view Rest = trimString(Body.substr(7));
      size_t Space = Rest.find_first_of(" \t");
      if (Space != std::string_view::npos) {
        std::string Name(trimString(Rest.substr(0, Space)));
        std::string Value(trimString(Rest.substr(Space)));
        char *End = nullptr;
        long long V = std::strtoll(Value.c_str(), &End, 10);
        if (End && *End == '\0')
          Defines[Name] = V;
      }
      return lexToken(); // skip the define line itself
    }
    if (startsWith(Body, "#include"))
      return lexToken(); // includes are ignored; intrinsics are built in
    ErrorMessage = "line " + std::to_string(T.Line) +
                   ": unsupported preprocessor directive: " + LineText;
    return T;
  }

  if (std::isalpha(static_cast<unsigned char>(C)) || C == '_') {
    std::string Ident;
    while (!atEnd() && (std::isalnum(static_cast<unsigned char>(peek())) ||
                        peek() == '_'))
      Ident += advance();
    // Macro substitution for integer #defines.
    auto It = Defines.find(Ident);
    if (It != Defines.end()) {
      T.Kind = TokKind::IntLit;
      T.IntValue = It->second;
      T.Text = std::to_string(It->second);
      return T;
    }
    T.Kind = TokKind::Ident;
    T.Text = std::move(Ident);
    return T;
  }

  if (std::isdigit(static_cast<unsigned char>(C)) ||
      (C == '.' && std::isdigit(static_cast<unsigned char>(peek(1))))) {
    std::string Num;
    bool IsFloat = false;
    while (!atEnd()) {
      char N = peek();
      if (std::isdigit(static_cast<unsigned char>(N))) {
        Num += advance();
      } else if (N == '.' && !IsFloat) {
        IsFloat = true;
        Num += advance();
      } else if ((N == 'e' || N == 'E') &&
                 (std::isdigit(static_cast<unsigned char>(peek(1))) ||
                  ((peek(1) == '+' || peek(1) == '-') &&
                   std::isdigit(static_cast<unsigned char>(peek(2)))))) {
        IsFloat = true;
        Num += advance(); // e
        if (peek() == '+' || peek() == '-')
          Num += advance();
      } else {
        break;
      }
    }
    // Trailing float suffixes.
    if (peek() == 'f' || peek() == 'F' || peek() == 'l' || peek() == 'L')
      advance();
    if (IsFloat) {
      T.Kind = TokKind::FloatLit;
      T.FloatValue = std::strtod(Num.c_str(), nullptr);
    } else {
      T.Kind = TokKind::IntLit;
      T.IntValue = std::strtoll(Num.c_str(), nullptr, 10);
    }
    T.Text = std::move(Num);
    return T;
  }

  if (C == '"') {
    advance();
    std::string Str;
    while (!atEnd() && peek() != '"') {
      char S = advance();
      if (S == '\\' && !atEnd())
        S = advance();
      Str += S;
    }
    if (!atEnd())
      advance(); // closing quote
    T.Kind = TokKind::StrLit;
    T.Text = std::move(Str);
    return T;
  }

  // Multi-character operators first.
  static const char *TwoCharOps[] = {"<=", ">=", "==", "!=", "&&", "||",
                                     "+=", "-=", "*=", "/=", "++", "--"};
  for (const char *Op : TwoCharOps) {
    if (C == Op[0] && peek(1) == Op[1]) {
      advance();
      advance();
      T.Kind = TokKind::Punct;
      T.Text = Op;
      return T;
    }
  }

  static const std::string SingleChars = "()[]{};,<>=+-*/%!&.?:";
  if (SingleChars.find(C) != std::string::npos) {
    advance();
    T.Kind = TokKind::Punct;
    T.Text = std::string(1, C);
    return T;
  }

  ErrorMessage = "line " + std::to_string(Line) +
                 ": unexpected character '" + std::string(1, C) + "'";
  return T;
}

} // namespace cir
} // namespace locus
