//===- Parser.h - MiniC parser ---------------------------------*- C++ -*-===//
///
/// \file
/// Recursive-descent parser for MiniC producing a cir::Program. This is the
/// "source code front end" of Fig. 1 in the paper: it reads the baseline
/// version, recognizes "#pragma @Locus loop=NAME" / "block=NAME" region
/// annotations, and materializes them as named Block nodes.
///
//===----------------------------------------------------------------------===//
#ifndef LOCUS_CIR_PARSER_H
#define LOCUS_CIR_PARSER_H

#include "src/cir/Ast.h"
#include "src/cir/Lexer.h"
#include "src/support/Error.h"

#include <map>
#include <memory>
#include <string>
#include <vector>

namespace locus {
namespace cir {

/// Parses MiniC source text into a Program. Returns an error message on the
/// first syntax problem encountered.
Expected<std::unique_ptr<Program>> parseProgram(const std::string &Source);

/// Parses a sequence of statements (no declarations of new arrays), used by
/// the BuiltIn.Altdesc module to splice external code snippets into a region.
Expected<std::vector<StmtPtr>> parseStatements(const std::string &Source);

namespace detail {

/// Implementation class; exposed for unit testing of individual productions.
class Parser {
public:
  Parser(std::vector<Token> Tokens, std::map<std::string, int64_t> Defines)
      : Tokens(std::move(Tokens)), Defines(std::move(Defines)) {}

  Expected<std::unique_ptr<Program>> parseProgramTokens();
  Expected<std::vector<StmtPtr>> parseStatementList();

private:
  const Token &peek(int Ahead = 0) const;
  const Token &advance();
  bool matchPunct(const char *P);
  bool expectPunct(const char *P);
  void fail(const std::string &Message);

  // Productions.
  StmtPtr parseStmt();
  std::unique_ptr<Block> parseBlock();
  StmtPtr parseFor();
  StmtPtr parseIf();
  StmtPtr parseDecl(bool IsGlobal);
  StmtPtr parseSimpleStmt();
  ExprPtr parseExpr();
  ExprPtr parseOr();
  ExprPtr parseAnd();
  ExprPtr parseEquality();
  ExprPtr parseRelational();
  ExprPtr parseAdditive();
  ExprPtr parseMultiplicative();
  ExprPtr parseUnary();
  ExprPtr parsePrimary();

  /// Folds an expression to an integer constant (array dims); uses Defines
  /// and previously seen const-int globals.
  Expected<int64_t> evalConstExpr(const Expr &E) const;

  /// Handles a run of pragma tokens: Locus region pragmas drive region
  /// wrapping; other pragmas accumulate into PendingPragmas.
  void collectPragmas();

  std::vector<Token> Tokens;
  std::map<std::string, int64_t> Defines;
  size_t Pos = 0;
  std::string ErrorMessage;

  std::vector<std::string> PendingPragmas;
  std::string PendingLoopRegion;  ///< from "#pragma @Locus loop=NAME"
  std::string PendingBlockRegion; ///< from "#pragma @Locus block=NAME"
  /// Number of PendingPragmas seen before the @Locus region marker: those
  /// belong to the region block, later ones to the wrapped statement (e.g.
  /// "omp parallel for" emitted between the marker and its loop).
  size_t PendingRegionSplit = 0;

  std::map<std::string, int64_t> ConstInts;
  std::unique_ptr<Program> Prog;
};

} // namespace detail
} // namespace cir
} // namespace locus

#endif // LOCUS_CIR_PARSER_H
