//===- PathIndex.cpp - Hierarchical statement indexing --------------------===//

#include "src/cir/PathIndex.h"

#include "src/support/StringUtils.h"

#include <cstdlib>

namespace locus {
namespace cir {

Expected<std::vector<int>> parsePath(const std::string &Path) {
  if (Path.empty())
    return Expected<std::vector<int>>::error("empty hierarchical path");
  std::vector<int> Components;
  for (const std::string &Part : splitString(Path, '.')) {
    if (Part.empty())
      return Expected<std::vector<int>>::error("malformed path: " + Path);
    for (char C : Part)
      if (!std::isdigit(static_cast<unsigned char>(C)))
        return Expected<std::vector<int>>::error("malformed path: " + Path);
    Components.push_back(std::atoi(Part.c_str()));
  }
  return Components;
}

Expected<StmtLocation> resolvePath(Block &Region, const std::string &Path) {
  Expected<std::vector<int>> Components = parsePath(Path);
  if (!Components.ok())
    return Expected<StmtLocation>::error(Components.message());

  Block *Current = &Region;
  for (size_t Level = 0; Level < Components->size(); ++Level) {
    int Index = (*Components)[Level];
    if (Index < 0 || static_cast<size_t>(Index) >= Current->Stmts.size())
      return Expected<StmtLocation>::error(
          "path " + Path + " is out of range at level " +
          std::to_string(Level));
    Stmt *S = Current->Stmts[static_cast<size_t>(Index)].get();
    if (Level + 1 == Components->size())
      return StmtLocation{Current, static_cast<size_t>(Index)};
    if (auto *For = dyn_cast<ForStmt>(S)) {
      Current = For->Body.get();
    } else if (auto *B = dyn_cast<Block>(S)) {
      Current = B;
    } else {
      return Expected<StmtLocation>::error(
          "path " + Path + " descends through a non-compound statement");
    }
  }
  return Expected<StmtLocation>::error("unreachable: empty path");
}

Expected<ForStmt *> resolveLoopPath(Block &Region, const std::string &Path) {
  Expected<StmtLocation> Loc = resolvePath(Region, Path);
  if (!Loc.ok())
    return Expected<ForStmt *>::error(Loc.message());
  auto *For = dyn_cast<ForStmt>(Loc->get());
  if (!For)
    return Expected<ForStmt *>::error("path " + Path +
                                      " does not address a loop");
  return For;
}

namespace {

/// Collects the loops directly at this block level, looking through nested
/// plain (non-region) blocks but not into loop bodies.
void levelLoops(Block &B, std::vector<ForStmt *> &Out) {
  for (auto &S : B.Stmts) {
    if (auto *For = dyn_cast<ForStmt>(S.get()))
      Out.push_back(For);
    else if (auto *Sub = dyn_cast<Block>(S.get()))
      levelLoops(*Sub, Out);
  }
}

} // namespace

Expected<ForStmt *> resolveLoopPathLoopwise(Block &Region,
                                            const std::string &Path) {
  // Exact statement paths win when they address a loop.
  if (Expected<ForStmt *> Strict = resolveLoopPath(Region, Path); Strict.ok())
    return Strict;

  Expected<std::vector<int>> Components = parsePath(Path);
  if (!Components.ok())
    return Expected<ForStmt *>::error(Components.message());
  Block *Current = &Region;
  ForStmt *Loop = nullptr;
  for (int Index : *Components) {
    std::vector<ForStmt *> Loops;
    levelLoops(*Current, Loops);
    if (Index < 0 || static_cast<size_t>(Index) >= Loops.size())
      return Expected<ForStmt *>::error(
          "loop path " + Path + " is out of range (level has " +
          std::to_string(Loops.size()) + " loops)");
    Loop = Loops[static_cast<size_t>(Index)];
    Current = Loop->Body.get();
  }
  return Loop;
}

namespace {

void walkLoops(Block &B, const std::string &Prefix,
               std::vector<LoopEntry> &Out) {
  for (size_t I = 0; I < B.Stmts.size(); ++I) {
    std::string Path = Prefix.empty() ? std::to_string(I)
                                      : Prefix + "." + std::to_string(I);
    Stmt *S = B.Stmts[I].get();
    if (auto *For = dyn_cast<ForStmt>(S)) {
      Out.push_back(LoopEntry{Path, For});
      walkLoops(*For->Body, Path, Out);
    } else if (auto *Sub = dyn_cast<Block>(S)) {
      walkLoops(*Sub, Path, Out);
    } else if (auto *If = dyn_cast<IfStmt>(S)) {
      // If bodies are not addressable through numeric paths in this scheme,
      // but loops inside them still count for inner/outer queries. They get
      // the if statement's path as an approximation.
      walkLoops(*If->Then, Path, Out);
      if (If->Else)
        walkLoops(*If->Else, Path, Out);
    }
  }
}

bool containsLoop(const Block &B) {
  for (const auto &S : B.Stmts) {
    if (isa<ForStmt>(S.get()))
      return true;
    if (const auto *Sub = dyn_cast<Block>(S.get()))
      if (containsLoop(*Sub))
        return true;
    if (const auto *If = dyn_cast<IfStmt>(S.get())) {
      if (containsLoop(*If->Then))
        return true;
      if (If->Else && containsLoop(*If->Else))
        return true;
    }
  }
  return false;
}

} // namespace

std::vector<LoopEntry> listLoops(Block &Region) {
  std::vector<LoopEntry> Out;
  walkLoops(Region, "", Out);
  return Out;
}

std::vector<LoopEntry> listInnerLoops(Block &Region) {
  std::vector<LoopEntry> All = listLoops(Region);
  std::vector<LoopEntry> Inner;
  for (const LoopEntry &E : All)
    if (!containsLoop(*E.Loop->Body))
      Inner.push_back(E);
  return Inner;
}

std::vector<LoopEntry> listOuterLoops(Block &Region) {
  std::vector<LoopEntry> All = listLoops(Region);
  std::vector<LoopEntry> Outer;
  for (const LoopEntry &E : All) {
    // An outer loop's path has no other loop's path as a proper prefix.
    bool Nested = false;
    for (const LoopEntry &Other : All) {
      if (&Other == &E)
        continue;
      if (E.Path.size() > Other.Path.size() &&
          startsWith(E.Path, Other.Path + "."))
        Nested = true;
    }
    if (!Nested)
      Outer.push_back(E);
  }
  return Outer;
}

std::optional<StmtLocation> locateStmt(Block &Root, const Stmt *Target) {
  for (size_t I = 0; I < Root.Stmts.size(); ++I) {
    Stmt *S = Root.Stmts[I].get();
    if (S == Target)
      return StmtLocation{&Root, I};
    if (auto *For = dyn_cast<ForStmt>(S)) {
      if (auto Found = locateStmt(*For->Body, Target))
        return Found;
    } else if (auto *B = dyn_cast<Block>(S)) {
      if (auto Found = locateStmt(*B, Target))
        return Found;
    } else if (auto *If = dyn_cast<IfStmt>(S)) {
      if (auto Found = locateStmt(*If->Then, Target))
        return Found;
      if (If->Else)
        if (auto Found = locateStmt(*If->Else, Target))
          return Found;
    }
  }
  return std::nullopt;
}

} // namespace cir
} // namespace locus
