//===- Lexer.h - MiniC lexer -----------------------------------*- C++ -*-===//
///
/// \file
/// Tokenizer for the MiniC subset. Pragma lines are captured as single
/// tokens (their text matters to the region front end), and a tiny
/// "#define NAME <int>" preprocessor is supported because the kernel sources
/// in the paper (Polybench style) size arrays with macros.
///
//===----------------------------------------------------------------------===//
#ifndef LOCUS_CIR_LEXER_H
#define LOCUS_CIR_LEXER_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace locus {
namespace cir {

enum class TokKind {
  Eof,
  Ident,
  IntLit,
  FloatLit,
  StrLit,
  Punct,  ///< one of ( ) [ ] { } ; , plus operators, stored in Text
  Pragma, ///< a whole "#pragma ..." line, Text holds everything after #pragma
};

/// A single token with its source line and column (1-based) for diagnostics.
struct Token {
  TokKind Kind = TokKind::Eof;
  std::string Text;
  int64_t IntValue = 0;
  double FloatValue = 0;
  int Line = 0;
  int Col = 0;

  bool is(TokKind K) const { return Kind == K; }
  bool isPunct(const char *P) const {
    return Kind == TokKind::Punct && Text == P;
  }
  bool isIdent(const char *Name) const {
    return Kind == TokKind::Ident && Text == Name;
  }
};

/// Tokenizes MiniC source. Reports errors by emitting an Eof token and
/// setting an error message retrievable via error().
class Lexer {
public:
  explicit Lexer(std::string Source);

  /// Lexes the whole input; returns all tokens ending with Eof.
  std::vector<Token> lexAll();

  const std::string &error() const { return ErrorMessage; }
  bool hadError() const { return !ErrorMessage.empty(); }

  /// Macro table accumulated from #define lines (name -> integer value).
  const std::map<std::string, int64_t> &defines() const { return Defines; }

private:
  Token lexToken();
  void skipTrivia();
  char peek(int Ahead = 0) const;
  char advance();
  bool atEnd() const { return Pos >= Source.size(); }

  std::string Source;
  size_t Pos = 0;
  int Line = 1;
  size_t LineStartPos = 0; ///< offset of the first char of the current line
  std::string ErrorMessage;
  std::map<std::string, int64_t> Defines;
};

} // namespace cir
} // namespace locus

#endif // LOCUS_CIR_LEXER_H
