//===- Printer.h - MiniC unparser ------------------------------*- C++ -*-===//
///
/// \file
/// Unparses the MiniC AST back into C source text. Used to (a) hash code
/// regions for the coherence check of Section II, (b) emit compilable C for
/// the native evaluator, and (c) show variants to humans.
///
//===----------------------------------------------------------------------===//
#ifndef LOCUS_CIR_PRINTER_H
#define LOCUS_CIR_PRINTER_H

#include "src/cir/Ast.h"

#include <string>

namespace locus {
namespace cir {

/// Unparsing options.
struct PrintOptions {
  /// Re-emit "#pragma @Locus ..." region markers around region blocks.
  bool EmitRegionPragmas = true;
  /// Indentation width in spaces.
  int IndentWidth = 2;
};

/// Renders an expression as C source.
std::string printExpr(const Expr &E);

/// Renders a statement (recursively) as C source.
std::string printStmt(const Stmt &S, const PrintOptions &Opts = {},
                      int Indent = 0);

/// Renders a whole program: globals then the main body statements.
std::string printProgram(const Program &P, const PrintOptions &Opts = {});

} // namespace cir
} // namespace locus

#endif // LOCUS_CIR_PRINTER_H
