//===- Parser.cpp - MiniC parser ------------------------------------------===//

#include "src/cir/Parser.h"

#include "src/support/StringUtils.h"

#include <cassert>

namespace locus {
namespace cir {

using detail::Parser;

Expected<std::unique_ptr<Program>> parseProgram(const std::string &Source) {
  Lexer Lex(Source);
  std::vector<Token> Tokens = Lex.lexAll();
  if (Lex.hadError())
    return Expected<std::unique_ptr<Program>>::error(Lex.error());
  Parser P(std::move(Tokens), Lex.defines());
  return P.parseProgramTokens();
}

Expected<std::vector<StmtPtr>> parseStatements(const std::string &Source) {
  Lexer Lex(Source);
  std::vector<Token> Tokens = Lex.lexAll();
  if (Lex.hadError())
    return Expected<std::vector<StmtPtr>>::error(Lex.error());
  Parser P(std::move(Tokens), Lex.defines());
  return P.parseStatementList();
}

namespace detail {

const Token &Parser::peek(int Ahead) const {
  size_t P = Pos + static_cast<size_t>(Ahead);
  if (P >= Tokens.size())
    P = Tokens.size() - 1; // Eof token
  return Tokens[P];
}

const Token &Parser::advance() {
  const Token &T = Tokens[Pos];
  if (Pos + 1 < Tokens.size())
    ++Pos;
  return T;
}

bool Parser::matchPunct(const char *P) {
  if (peek().isPunct(P)) {
    advance();
    return true;
  }
  return false;
}

bool Parser::expectPunct(const char *P) {
  if (matchPunct(P))
    return true;
  fail(std::string("expected '") + P + "' but found '" + peek().Text + "'");
  return false;
}

void Parser::fail(const std::string &Message) {
  if (ErrorMessage.empty())
    ErrorMessage =
        "line " + std::to_string(peek().Line) + ": " + Message;
  // Drive the parser to Eof so callers unwind quickly.
  Pos = Tokens.size() - 1;
}

static bool isTypeKeyword(const Token &T) {
  return T.isIdent("int") || T.isIdent("double") || T.isIdent("float") ||
         T.isIdent("const") || T.isIdent("static") || T.isIdent("unsigned") ||
         T.isIdent("long");
}

void Parser::collectPragmas() {
  while (peek().is(TokKind::Pragma)) {
    std::string Text = advance().Text;
    std::string_view Body = trimString(Text);
    if (startsWith(Body, "@Locus")) {
      std::string_view Spec = trimString(Body.substr(6));
      if (startsWith(Spec, "loop=")) {
        PendingLoopRegion = std::string(trimString(Spec.substr(5)));
        PendingRegionSplit = PendingPragmas.size();
      } else if (startsWith(Spec, "block=")) {
        PendingBlockRegion = std::string(trimString(Spec.substr(6)));
        PendingRegionSplit = PendingPragmas.size();
      } else if (Spec == "endblock") {
        fail("@Locus endblock without a matching block annotation");
      } else {
        fail("malformed @Locus pragma: " + Text);
      }
      continue;
    }
    PendingPragmas.push_back(Text);
  }
}

Expected<std::unique_ptr<Program>> Parser::parseProgramTokens() {
  Prog = std::make_unique<Program>();

  while (!peek().is(TokKind::Eof) && ErrorMessage.empty()) {
    collectPragmas();
    if (peek().is(TokKind::Eof))
      break;

    // Function definition or prototype: type ident '(' ...
    if (isTypeKeyword(peek()) && peek(1).is(TokKind::Ident) &&
        peek(2).isPunct("(")) {
      std::string Name = peek(1).Text;
      advance(); // type
      advance(); // name
      advance(); // '('
      // Skip the parameter list.
      int Depth = 1;
      while (Depth > 0 && !peek().is(TokKind::Eof)) {
        if (peek().isPunct("("))
          ++Depth;
        else if (peek().isPunct(")"))
          --Depth;
        advance();
      }
      if (matchPunct(";"))
        continue; // prototype: ignore
      if (!peek().isPunct("{")) {
        fail("expected function body for " + Name);
        break;
      }
      std::unique_ptr<Block> Body = parseBlock();
      if (!Body)
        break;
      if (Name == "main") {
        Prog->Body = std::move(Body);
      }
      // Non-main function bodies are parsed for syntax but dropped; the
      // workloads only call harness intrinsics.
      continue;
    }

    if (isTypeKeyword(peek())) {
      StmtPtr D = parseDecl(/*IsGlobal=*/true);
      if (!D)
        break;
      Prog->Globals.push_back(std::unique_ptr<DeclStmt>(
          cast<DeclStmt>(D.release())));
      continue;
    }

    // Top-level statement (kernel-file format without a main wrapper).
    StmtPtr S = parseStmt();
    if (!S)
      break;
    Prog->Body->Stmts.push_back(std::move(S));
  }

  if (!ErrorMessage.empty())
    return Expected<std::unique_ptr<Program>>::error(ErrorMessage);
  if (!PendingBlockRegion.empty())
    return Expected<std::unique_ptr<Program>>::error(
        "unterminated @Locus block region: " + PendingBlockRegion);
  return std::move(Prog);
}

Expected<std::vector<StmtPtr>> Parser::parseStatementList() {
  Prog = std::make_unique<Program>();
  std::vector<StmtPtr> Stmts;
  while (!peek().is(TokKind::Eof) && ErrorMessage.empty()) {
    collectPragmas();
    if (peek().is(TokKind::Eof))
      break;
    StmtPtr S = parseStmt();
    if (!S)
      break;
    Stmts.push_back(std::move(S));
  }
  if (!ErrorMessage.empty())
    return Expected<std::vector<StmtPtr>>::error(ErrorMessage);
  return Expected<std::vector<StmtPtr>>(std::move(Stmts));
}

std::unique_ptr<Block> Parser::parseBlock() {
  support::SrcLoc StartLoc{peek().Line, peek().Col};
  if (!expectPunct("{"))
    return nullptr;
  auto B = std::make_unique<Block>();
  B->Loc = StartLoc;
  while (!peek().isPunct("}") && !peek().is(TokKind::Eof) &&
         ErrorMessage.empty()) {
    StmtPtr S = parseStmt();
    if (!S)
      return nullptr;
    B->Stmts.push_back(std::move(S));
  }
  if (!expectPunct("}"))
    return nullptr;
  return B;
}

StmtPtr Parser::parseStmt() {
  collectPragmas();
  support::SrcLoc StartLoc{peek().Line, peek().Col};

  // Region wrapping: "#pragma @Locus block=NAME" wraps statements until the
  // matching endblock pragma into one named Block.
  if (!PendingBlockRegion.empty()) {
    std::string Name = PendingBlockRegion;
    PendingBlockRegion.clear();
    auto Region = std::make_unique<Block>();
    Region->Loc = StartLoc;
    Region->RegionName = Name;
    // Pragmas seen before the marker annotate the region; later ones stay
    // pending for the first wrapped statement.
    size_t Split = std::min(PendingRegionSplit, PendingPragmas.size());
    Region->Pragmas.assign(PendingPragmas.begin(),
                           PendingPragmas.begin() + Split);
    PendingPragmas.erase(PendingPragmas.begin(), PendingPragmas.begin() + Split);
    while (ErrorMessage.empty()) {
      // endblock is detected here rather than in collectPragmas.
      if (peek().is(TokKind::Pragma)) {
        std::string_view Body = trimString(peek().Text);
        if (startsWith(Body, "@Locus") &&
            trimString(Body.substr(6)) == "endblock") {
          advance();
          return Region;
        }
      }
      if (peek().is(TokKind::Eof)) {
        fail("unterminated @Locus block region: " + Name);
        return nullptr;
      }
      StmtPtr S = parseStmt();
      if (!S)
        return nullptr;
      Region->Stmts.push_back(std::move(S));
    }
    return nullptr;
  }

  if (!PendingLoopRegion.empty()) {
    std::string Name = PendingLoopRegion;
    PendingLoopRegion.clear();
    // Pragmas seen before the marker annotate the region block; later ones
    // (e.g. "omp parallel for" between the marker and its loop) stay
    // pending and bind to the for statement itself, matching where the
    // printer emits a transformed loop's pragmas.
    size_t Split = std::min(PendingRegionSplit, PendingPragmas.size());
    std::vector<std::string> RegionPragmas(PendingPragmas.begin(),
                                           PendingPragmas.begin() + Split);
    PendingPragmas.erase(PendingPragmas.begin(), PendingPragmas.begin() + Split);
    if (!peek().isIdent("for")) {
      fail("@Locus loop annotation must precede a for loop");
      return nullptr;
    }
    StmtPtr Loop = parseStmt();
    if (!Loop)
      return nullptr;
    auto Region = std::make_unique<Block>();
    Region->Loc = StartLoc;
    Region->RegionName = Name;
    Region->Pragmas = std::move(RegionPragmas);
    Region->Stmts.push_back(std::move(Loop));
    return Region;
  }

  std::vector<std::string> Pragmas = std::move(PendingPragmas);
  PendingPragmas.clear();

  StmtPtr S;
  if (peek().isIdent("for"))
    S = parseFor();
  else if (peek().isIdent("if"))
    S = parseIf();
  else if (peek().isPunct("{"))
    S = parseBlock();
  else if (isTypeKeyword(peek()))
    S = parseDecl(/*IsGlobal=*/false);
  else if (peek().isIdent("return")) {
    // return <expr>; is a harness artifact; parse and drop.
    advance();
    if (!peek().isPunct(";"))
      parseExpr();
    expectPunct(";");
    auto Empty = std::make_unique<Block>();
    S = std::move(Empty);
  } else
    S = parseSimpleStmt();

  if (S && !Pragmas.empty())
    S->Pragmas.insert(S->Pragmas.begin(), Pragmas.begin(), Pragmas.end());
  if (S && !S->Loc.valid())
    S->Loc = StartLoc;
  return S;
}

StmtPtr Parser::parseFor() {
  advance(); // for
  if (!expectPunct("("))
    return nullptr;

  // Init: [int] var = expr
  StmtPtr HoistedDecl;
  if (peek().isIdent("int"))
    advance();
  if (!peek().is(TokKind::Ident)) {
    fail("expected induction variable in for initializer");
    return nullptr;
  }
  std::string Var = advance().Text;
  if (!expectPunct("="))
    return nullptr;
  ExprPtr Init = parseExpr();
  if (!Init || !expectPunct(";"))
    return nullptr;

  // Condition: var (< | <=) expr
  if (!peek().isIdent(Var.c_str())) {
    fail("for condition must test the induction variable '" + Var + "'");
    return nullptr;
  }
  advance();
  BoundOp Op;
  if (matchPunct("<"))
    Op = BoundOp::Lt;
  else if (matchPunct("<="))
    Op = BoundOp::Le;
  else {
    fail("for condition must use < or <=");
    return nullptr;
  }
  ExprPtr Bound = parseExpr();
  if (!Bound || !expectPunct(";"))
    return nullptr;

  // Increment: var++ | ++var | var += c
  int64_t Step = 1;
  if (matchPunct("++")) {
    if (!peek().isIdent(Var.c_str())) {
      fail("for increment must update the induction variable");
      return nullptr;
    }
    advance();
  } else {
    if (!peek().isIdent(Var.c_str())) {
      fail("for increment must update the induction variable");
      return nullptr;
    }
    advance();
    if (matchPunct("++")) {
      Step = 1;
    } else if (matchPunct("+=")) {
      ExprPtr StepE = parseExpr();
      if (!StepE)
        return nullptr;
      Expected<int64_t> C = evalConstExpr(*StepE);
      if (!C.ok()) {
        fail("for step must be an integer constant");
        return nullptr;
      }
      Step = *C;
    } else {
      fail("unsupported for increment");
      return nullptr;
    }
  }
  if (!expectPunct(")"))
    return nullptr;

  std::unique_ptr<Block> Body;
  if (peek().isPunct("{")) {
    Body = parseBlock();
  } else {
    StmtPtr Single = parseStmt();
    if (!Single)
      return nullptr;
    Body = std::make_unique<Block>();
    Body->Stmts.push_back(std::move(Single));
  }
  if (!Body)
    return nullptr;

  return std::make_unique<ForStmt>(Var, std::move(Init), Op, std::move(Bound),
                                   Step, std::move(Body));
}

StmtPtr Parser::parseIf() {
  advance(); // if
  if (!expectPunct("("))
    return nullptr;
  ExprPtr Cond = parseExpr();
  if (!Cond || !expectPunct(")"))
    return nullptr;

  std::unique_ptr<Block> Then;
  if (peek().isPunct("{")) {
    Then = parseBlock();
  } else {
    StmtPtr Single = parseStmt();
    if (!Single)
      return nullptr;
    Then = std::make_unique<Block>();
    Then->Stmts.push_back(std::move(Single));
  }
  if (!Then)
    return nullptr;

  std::unique_ptr<Block> Else;
  if (peek().isIdent("else")) {
    advance();
    if (peek().isPunct("{")) {
      Else = parseBlock();
    } else {
      StmtPtr Single = parseStmt();
      if (!Single)
        return nullptr;
      Else = std::make_unique<Block>();
      Else->Stmts.push_back(std::move(Single));
    }
    if (!Else)
      return nullptr;
  }
  return std::make_unique<IfStmt>(std::move(Cond), std::move(Then),
                                  std::move(Else));
}

StmtPtr Parser::parseDecl(bool IsGlobal) {
  bool IsConst = false;
  ElemType Elem = ElemType::Int;
  bool SawBaseType = false;
  while (isTypeKeyword(peek())) {
    if (peek().isIdent("const"))
      IsConst = true;
    else if (peek().isIdent("double") || peek().isIdent("float")) {
      Elem = ElemType::Double;
      SawBaseType = true;
    } else if (peek().isIdent("int") || peek().isIdent("long") ||
               peek().isIdent("unsigned")) {
      Elem = ElemType::Int;
      SawBaseType = true;
    }
    advance();
  }
  if (!SawBaseType) {
    fail("expected a base type in declaration");
    return nullptr;
  }

  // Parse one or more declarators; return a Block when several are declared
  // in one statement ("int i, j, k;").
  std::vector<StmtPtr> Decls;
  while (true) {
    if (!peek().is(TokKind::Ident)) {
      fail("expected declarator name");
      return nullptr;
    }
    std::string Name = advance().Text;
    std::vector<int64_t> Dims;
    while (matchPunct("[")) {
      ExprPtr DimE = parseExpr();
      if (!DimE)
        return nullptr;
      Expected<int64_t> Dim = evalConstExpr(*DimE);
      if (!Dim.ok()) {
        fail("array dimension of '" + Name + "' is not an integer constant");
        return nullptr;
      }
      Dims.push_back(*Dim);
      if (!expectPunct("]"))
        return nullptr;
    }
    ExprPtr Init;
    if (matchPunct("=")) {
      Init = parseExpr();
      if (!Init)
        return nullptr;
      if ((IsConst || IsGlobal) && Dims.empty() && Elem == ElemType::Int) {
        Expected<int64_t> C = evalConstExpr(*Init);
        if (C.ok())
          ConstInts[Name] = *C;
      }
    }
    Decls.push_back(
        std::make_unique<DeclStmt>(Elem, Name, std::move(Dims), std::move(Init)));
    if (!matchPunct(","))
      break;
  }
  if (!expectPunct(";"))
    return nullptr;

  if (Decls.size() == 1)
    return std::move(Decls.front());
  if (IsGlobal) {
    fail("multiple global declarators per statement are not supported");
    return nullptr;
  }
  auto Group = std::make_unique<Block>();
  Group->Stmts = std::move(Decls);
  return Group;
}

StmtPtr Parser::parseSimpleStmt() {
  ExprPtr Lhs = parseExpr();
  if (!Lhs)
    return nullptr;

  if (peek().isPunct(";") && isa<CallExpr>(Lhs.get())) {
    advance();
    return std::make_unique<CallStmt>(std::move(Lhs));
  }

  AssignOp Op;
  if (matchPunct("="))
    Op = AssignOp::Set;
  else if (matchPunct("+="))
    Op = AssignOp::Add;
  else if (matchPunct("-="))
    Op = AssignOp::Sub;
  else if (matchPunct("*="))
    Op = AssignOp::Mul;
  else {
    fail("expected assignment or call statement");
    return nullptr;
  }

  if (!isa<VarRef>(Lhs.get()) && !isa<ArrayRef>(Lhs.get())) {
    fail("assignment target must be a variable or array element");
    return nullptr;
  }

  ExprPtr Rhs = parseExpr();
  if (!Rhs || !expectPunct(";"))
    return nullptr;
  return std::make_unique<AssignStmt>(std::move(Lhs), Op, std::move(Rhs));
}

ExprPtr Parser::parseExpr() { return parseOr(); }

ExprPtr Parser::parseOr() {
  ExprPtr E = parseAnd();
  while (E && peek().isPunct("||")) {
    advance();
    ExprPtr R = parseAnd();
    if (!R)
      return nullptr;
    E = makeBin(BinOp::Or, std::move(E), std::move(R));
  }
  return E;
}

ExprPtr Parser::parseAnd() {
  ExprPtr E = parseEquality();
  while (E && peek().isPunct("&&")) {
    advance();
    ExprPtr R = parseEquality();
    if (!R)
      return nullptr;
    E = makeBin(BinOp::And, std::move(E), std::move(R));
  }
  return E;
}

ExprPtr Parser::parseEquality() {
  ExprPtr E = parseRelational();
  while (E && (peek().isPunct("==") || peek().isPunct("!="))) {
    BinOp Op = peek().isPunct("==") ? BinOp::Eq : BinOp::Ne;
    advance();
    ExprPtr R = parseRelational();
    if (!R)
      return nullptr;
    E = makeBin(Op, std::move(E), std::move(R));
  }
  return E;
}

ExprPtr Parser::parseRelational() {
  ExprPtr E = parseAdditive();
  while (E && (peek().isPunct("<") || peek().isPunct("<=") ||
               peek().isPunct(">") || peek().isPunct(">="))) {
    BinOp Op;
    if (peek().isPunct("<"))
      Op = BinOp::Lt;
    else if (peek().isPunct("<="))
      Op = BinOp::Le;
    else if (peek().isPunct(">"))
      Op = BinOp::Gt;
    else
      Op = BinOp::Ge;
    advance();
    ExprPtr R = parseAdditive();
    if (!R)
      return nullptr;
    E = makeBin(Op, std::move(E), std::move(R));
  }
  return E;
}

ExprPtr Parser::parseAdditive() {
  ExprPtr E = parseMultiplicative();
  while (E && (peek().isPunct("+") || peek().isPunct("-"))) {
    BinOp Op = peek().isPunct("+") ? BinOp::Add : BinOp::Sub;
    advance();
    ExprPtr R = parseMultiplicative();
    if (!R)
      return nullptr;
    E = makeBin(Op, std::move(E), std::move(R));
  }
  return E;
}

ExprPtr Parser::parseMultiplicative() {
  ExprPtr E = parseUnary();
  while (E && (peek().isPunct("*") || peek().isPunct("/") ||
               peek().isPunct("%"))) {
    BinOp Op;
    if (peek().isPunct("*"))
      Op = BinOp::Mul;
    else if (peek().isPunct("/"))
      Op = BinOp::Div;
    else
      Op = BinOp::Mod;
    advance();
    ExprPtr R = parseUnary();
    if (!R)
      return nullptr;
    E = makeBin(Op, std::move(E), std::move(R));
  }
  return E;
}

ExprPtr Parser::parseUnary() {
  if (matchPunct("-")) {
    ExprPtr E = parseUnary();
    if (!E)
      return nullptr;
    return std::make_unique<UnaryExpr>(UnOp::Neg, std::move(E));
  }
  if (matchPunct("!")) {
    ExprPtr E = parseUnary();
    if (!E)
      return nullptr;
    return std::make_unique<UnaryExpr>(UnOp::Not, std::move(E));
  }
  if (matchPunct("+"))
    return parseUnary();
  return parsePrimary();
}

ExprPtr Parser::parsePrimary() {
  const Token &T = peek();
  support::SrcLoc StartLoc{T.Line, T.Col};
  if (T.is(TokKind::IntLit)) {
    advance();
    ExprPtr E = makeInt(T.IntValue);
    E->Loc = StartLoc;
    return E;
  }
  if (T.is(TokKind::FloatLit)) {
    advance();
    auto E = std::make_unique<FloatLit>(T.FloatValue);
    E->Loc = StartLoc;
    return E;
  }
  if (T.isPunct("(")) {
    advance();
    // Skip C-style casts "(double)".
    if (isTypeKeyword(peek()) && peek(1).isPunct(")")) {
      advance();
      advance();
      return parseUnary();
    }
    ExprPtr E = parseExpr();
    if (!E || !expectPunct(")"))
      return nullptr;
    return E;
  }
  if (T.is(TokKind::Ident)) {
    std::string Name = advance().Text;
    if (matchPunct("(")) {
      std::vector<ExprPtr> Args;
      if (!peek().isPunct(")")) {
        while (true) {
          // String literal arguments (printf) are dropped.
          if (peek().is(TokKind::StrLit)) {
            advance();
          } else {
            ExprPtr A = parseExpr();
            if (!A)
              return nullptr;
            Args.push_back(std::move(A));
          }
          if (!matchPunct(","))
            break;
        }
      }
      if (!expectPunct(")"))
        return nullptr;
      ExprPtr E = makeCall(Name, std::move(Args));
      E->Loc = StartLoc;
      return E;
    }
    if (peek().isPunct("[")) {
      std::vector<ExprPtr> Indices;
      while (matchPunct("[")) {
        ExprPtr I = parseExpr();
        if (!I || !expectPunct("]"))
          return nullptr;
        Indices.push_back(std::move(I));
      }
      auto E = std::make_unique<ArrayRef>(Name, std::move(Indices));
      E->Loc = StartLoc;
      return E;
    }
    ExprPtr E = makeVar(Name);
    E->Loc = StartLoc;
    return E;
  }
  fail("unexpected token '" + T.Text + "' in expression");
  return nullptr;
}

Expected<int64_t> Parser::evalConstExpr(const Expr &E) const {
  switch (E.kind()) {
  case ExprKind::IntLit:
    return cast<IntLit>(&E)->Value;
  case ExprKind::VarRef: {
    auto It = ConstInts.find(cast<VarRef>(&E)->Name);
    if (It != ConstInts.end())
      return It->second;
    return Expected<int64_t>::error("not a constant: " +
                                    cast<VarRef>(&E)->Name);
  }
  case ExprKind::Unary: {
    const auto *U = cast<UnaryExpr>(&E);
    Expected<int64_t> V = evalConstExpr(*U->Operand);
    if (!V.ok())
      return V;
    return U->Op == UnOp::Neg ? -*V : static_cast<int64_t>(*V == 0);
  }
  case ExprKind::Binary: {
    const auto *B = cast<BinaryExpr>(&E);
    Expected<int64_t> L = evalConstExpr(*B->Lhs);
    if (!L.ok())
      return L;
    Expected<int64_t> R = evalConstExpr(*B->Rhs);
    if (!R.ok())
      return R;
    switch (B->Op) {
    case BinOp::Add:
      return *L + *R;
    case BinOp::Sub:
      return *L - *R;
    case BinOp::Mul:
      return *L * *R;
    case BinOp::Div:
      if (*R == 0)
        return Expected<int64_t>::error("division by zero in constant");
      return *L / *R;
    case BinOp::Mod:
      if (*R == 0)
        return Expected<int64_t>::error("modulo by zero in constant");
      return *L % *R;
    default:
      return Expected<int64_t>::error("non-arithmetic constant expression");
    }
  }
  default:
    return Expected<int64_t>::error("not a constant expression");
  }
}

} // namespace detail
} // namespace cir
} // namespace locus
