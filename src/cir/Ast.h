//===- Ast.h - MiniC abstract syntax tree ----------------------*- C++ -*-===//
///
/// \file
/// The abstract syntax tree of MiniC, the C subset Locus operates on. This
/// plays the role the Rose/Pips internal representations play in the paper:
/// every transformation module rewrites this tree, and the unparser emits C
/// source from it.
///
/// Design notes:
///  - Nodes are owned through std::unique_ptr and deep-copied via clone().
///  - A hand-rolled isa<>/cast<>/dyn_cast<> keyed on a Kind tag is used
///    instead of RTTI, following LLVM conventions.
///  - Any statement can carry a list of pragma strings; pragmas attach to the
///    statement that follows them in the source (this is how the Pragma
///    transformation module annotates loops with ivdep / vector / omp).
///  - Blocks can be tagged with a region name; such blocks are the code
///    regions named by "#pragma @Locus loop=NAME" / "block=NAME".
///
//===----------------------------------------------------------------------===//
#ifndef LOCUS_CIR_AST_H
#define LOCUS_CIR_AST_H

#include "src/support/Diag.h"

#include <cassert>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace locus {
namespace cir {

//===----------------------------------------------------------------------===//
// Casting helpers
//===----------------------------------------------------------------------===//

/// Returns true if \p Node is non-null and of dynamic type \p T.
template <typename T, typename NodeT> bool isa(const NodeT *Node) {
  return Node && T::classof(Node);
}

/// Checked downcast; asserts the node really has type \p T.
template <typename T, typename NodeT> T *cast(NodeT *Node) {
  assert(isa<T>(Node) && "cast<> on node of wrong kind");
  return static_cast<T *>(Node);
}

template <typename T, typename NodeT> const T *cast(const NodeT *Node) {
  assert(isa<T>(Node) && "cast<> on node of wrong kind");
  return static_cast<const T *>(Node);
}

/// Downcast that returns null when the node is not of type \p T.
template <typename T, typename NodeT> T *dyn_cast(NodeT *Node) {
  return isa<T>(Node) ? static_cast<T *>(Node) : nullptr;
}

template <typename T, typename NodeT> const T *dyn_cast(const NodeT *Node) {
  return isa<T>(Node) ? static_cast<const T *>(Node) : nullptr;
}

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

/// Scalar element types supported by MiniC.
enum class ElemType { Int, Double };

/// Binary operator kinds. Comparison and logical operators yield int (0/1).
enum class BinOp {
  Add,
  Sub,
  Mul,
  Div,
  Mod,
  Lt,
  Le,
  Gt,
  Ge,
  Eq,
  Ne,
  And,
  Or
};

/// Unary operator kinds.
enum class UnOp { Neg, Not };

/// Discriminator for expression nodes.
enum class ExprKind { IntLit, FloatLit, VarRef, ArrayRef, Binary, Unary, Call };

class Expr;
using ExprPtr = std::unique_ptr<Expr>;

/// Base class of all MiniC expressions.
class Expr {
public:
  explicit Expr(ExprKind Kind) : Kind(Kind) {}
  virtual ~Expr() = default;

  ExprKind kind() const { return Kind; }

  /// Deep copy (source location included).
  ExprPtr clone() const {
    ExprPtr Copy = cloneImpl();
    Copy->Loc = Loc;
    return Copy;
  }

  /// Source position of this expression; invalid for synthesized nodes.
  support::SrcLoc Loc;

protected:
  virtual ExprPtr cloneImpl() const = 0;

private:
  ExprKind Kind;
};

/// Integer literal.
class IntLit : public Expr {
public:
  explicit IntLit(int64_t Value) : Expr(ExprKind::IntLit), Value(Value) {}

  static bool classof(const Expr *E) { return E->kind() == ExprKind::IntLit; }

  ExprPtr cloneImpl() const override { return std::make_unique<IntLit>(Value); }

  int64_t Value;
};

/// Floating-point literal.
class FloatLit : public Expr {
public:
  explicit FloatLit(double Value) : Expr(ExprKind::FloatLit), Value(Value) {}

  static bool classof(const Expr *E) { return E->kind() == ExprKind::FloatLit; }

  ExprPtr cloneImpl() const override {
    return std::make_unique<FloatLit>(Value);
  }

  double Value;
};

/// Reference to a scalar variable (or whole-array name inside a call).
class VarRef : public Expr {
public:
  explicit VarRef(std::string Name)
      : Expr(ExprKind::VarRef), Name(std::move(Name)) {}

  static bool classof(const Expr *E) { return E->kind() == ExprKind::VarRef; }

  ExprPtr cloneImpl() const override { return std::make_unique<VarRef>(Name); }

  std::string Name;
};

/// Subscripted array reference A[i][j]...
class ArrayRef : public Expr {
public:
  ArrayRef(std::string Name, std::vector<ExprPtr> Indices)
      : Expr(ExprKind::ArrayRef), Name(std::move(Name)),
        Indices(std::move(Indices)) {}

  static bool classof(const Expr *E) { return E->kind() == ExprKind::ArrayRef; }

  ExprPtr cloneImpl() const override {
    std::vector<ExprPtr> Copy;
    Copy.reserve(Indices.size());
    for (const auto &I : Indices)
      Copy.push_back(I->clone());
    return std::make_unique<ArrayRef>(Name, std::move(Copy));
  }

  std::string Name;
  std::vector<ExprPtr> Indices;
};

/// Binary operation.
class BinaryExpr : public Expr {
public:
  BinaryExpr(BinOp Op, ExprPtr Lhs, ExprPtr Rhs)
      : Expr(ExprKind::Binary), Op(Op), Lhs(std::move(Lhs)),
        Rhs(std::move(Rhs)) {}

  static bool classof(const Expr *E) { return E->kind() == ExprKind::Binary; }

  ExprPtr cloneImpl() const override {
    return std::make_unique<BinaryExpr>(Op, Lhs->clone(), Rhs->clone());
  }

  BinOp Op;
  ExprPtr Lhs;
  ExprPtr Rhs;
};

/// Unary operation.
class UnaryExpr : public Expr {
public:
  UnaryExpr(UnOp Op, ExprPtr Operand)
      : Expr(ExprKind::Unary), Op(Op), Operand(std::move(Operand)) {}

  static bool classof(const Expr *E) { return E->kind() == ExprKind::Unary; }

  ExprPtr cloneImpl() const override {
    return std::make_unique<UnaryExpr>(Op, Operand->clone());
  }

  UnOp Op;
  ExprPtr Operand;
};

/// Call expression. The workload kernels only call intrinsics ("min", "max")
/// plus harness no-ops ("rtclock", "init_array", ...), which the evaluator
/// recognizes by name.
class CallExpr : public Expr {
public:
  CallExpr(std::string Callee, std::vector<ExprPtr> Args)
      : Expr(ExprKind::Call), Callee(std::move(Callee)), Args(std::move(Args)) {}

  static bool classof(const Expr *E) { return E->kind() == ExprKind::Call; }

  ExprPtr cloneImpl() const override {
    std::vector<ExprPtr> Copy;
    Copy.reserve(Args.size());
    for (const auto &A : Args)
      Copy.push_back(A->clone());
    return std::make_unique<CallExpr>(Callee, std::move(Copy));
  }

  std::string Callee;
  std::vector<ExprPtr> Args;
};

/// Convenience constructors used heavily by transformations.
ExprPtr makeInt(int64_t Value);
ExprPtr makeVar(std::string Name);
ExprPtr makeBin(BinOp Op, ExprPtr Lhs, ExprPtr Rhs);
ExprPtr makeCall(std::string Callee, std::vector<ExprPtr> Args);
/// min(Lhs, Rhs) intrinsic call.
ExprPtr makeMin(ExprPtr Lhs, ExprPtr Rhs);
/// max(Lhs, Rhs) intrinsic call.
ExprPtr makeMax(ExprPtr Lhs, ExprPtr Rhs);

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

enum class StmtKind { Block, For, If, Assign, Decl, CallStmt };

class Stmt;
using StmtPtr = std::unique_ptr<Stmt>;

/// Base class of all MiniC statements. Every statement may carry pragma
/// strings (e.g. "ivdep", "omp parallel for schedule(static)") which the
/// unparser re-emits ahead of it and the evaluator interprets.
class Stmt {
public:
  explicit Stmt(StmtKind Kind) : Kind(Kind) {}
  virtual ~Stmt() = default;

  StmtKind kind() const { return Kind; }

  /// Deep copy (pragmas and source location included).
  StmtPtr clone() const {
    StmtPtr Copy = cloneImpl();
    Copy->Loc = Loc;
    return Copy;
  }

  /// Pragmas attached to (preceding) this statement.
  std::vector<std::string> Pragmas;

  /// Source position of this statement; invalid for synthesized nodes.
  support::SrcLoc Loc;

protected:
  virtual StmtPtr cloneImpl() const = 0;

  /// Copies pragma annotations onto a freshly cloned node.
  void copyPragmasTo(Stmt &Clone) const { Clone.Pragmas = Pragmas; }

private:
  StmtKind Kind;
};

/// A statement block ({ ... }). Blocks may be tagged with the name of a Locus
/// code region, which makes them the anchor transformations operate on.
class Block : public Stmt {
public:
  Block() : Stmt(StmtKind::Block) {}

  static bool classof(const Stmt *S) { return S->kind() == StmtKind::Block; }

  StmtPtr cloneImpl() const override {
    auto Copy = std::make_unique<Block>();
    Copy->RegionName = RegionName;
    for (const auto &S : Stmts)
      Copy->Stmts.push_back(S->clone());
    copyPragmasTo(*Copy);
    return Copy;
  }

  /// Non-empty when this block is a "#pragma @Locus" code region.
  std::string RegionName;
  std::vector<StmtPtr> Stmts;
};

/// Loop bound comparison in a canonical for statement.
enum class BoundOp { Lt, Le };

/// A canonical counted loop:
///   for (Var = Init; Var (< | <=) Bound; Var += Step) Body
class ForStmt : public Stmt {
public:
  ForStmt(std::string Var, ExprPtr Init, BoundOp Op, ExprPtr Bound,
          int64_t Step, std::unique_ptr<Block> Body)
      : Stmt(StmtKind::For), Var(std::move(Var)), Init(std::move(Init)),
        Op(Op), Bound(std::move(Bound)), Step(Step), Body(std::move(Body)) {}

  static bool classof(const Stmt *S) { return S->kind() == StmtKind::For; }

  StmtPtr cloneImpl() const override {
    auto BodyCopy = std::unique_ptr<Block>(cast<Block>(Body->clone().release()));
    auto Copy = std::make_unique<ForStmt>(Var, Init->clone(), Op,
                                          Bound->clone(), Step,
                                          std::move(BodyCopy));
    copyPragmasTo(*Copy);
    return Copy;
  }

  std::string Var;
  ExprPtr Init;
  BoundOp Op;
  ExprPtr Bound;
  int64_t Step;
  std::unique_ptr<Block> Body;
};

/// if (Cond) Then [else Else]
class IfStmt : public Stmt {
public:
  IfStmt(ExprPtr Cond, std::unique_ptr<Block> Then, std::unique_ptr<Block> Else)
      : Stmt(StmtKind::If), Cond(std::move(Cond)), Then(std::move(Then)),
        Else(std::move(Else)) {}

  static bool classof(const Stmt *S) { return S->kind() == StmtKind::If; }

  StmtPtr cloneImpl() const override {
    auto ThenCopy = std::unique_ptr<Block>(cast<Block>(Then->clone().release()));
    std::unique_ptr<Block> ElseCopy;
    if (Else)
      ElseCopy = std::unique_ptr<Block>(cast<Block>(Else->clone().release()));
    auto Copy = std::make_unique<IfStmt>(Cond->clone(), std::move(ThenCopy),
                                         std::move(ElseCopy));
    copyPragmasTo(*Copy);
    return Copy;
  }

  ExprPtr Cond;
  std::unique_ptr<Block> Then;
  std::unique_ptr<Block> Else; // may be null
};

/// Assignment operator of an AssignStmt.
enum class AssignOp { Set, Add, Sub, Mul };

/// Lhs (=|+=|-=|*=) Rhs, where Lhs is a VarRef or ArrayRef.
class AssignStmt : public Stmt {
public:
  AssignStmt(ExprPtr Lhs, AssignOp Op, ExprPtr Rhs)
      : Stmt(StmtKind::Assign), Lhs(std::move(Lhs)), Op(Op),
        Rhs(std::move(Rhs)) {}

  static bool classof(const Stmt *S) { return S->kind() == StmtKind::Assign; }

  StmtPtr cloneImpl() const override {
    auto Copy =
        std::make_unique<AssignStmt>(Lhs->clone(), Op, Rhs->clone());
    copyPragmasTo(*Copy);
    return Copy;
  }

  ExprPtr Lhs;
  AssignOp Op;
  ExprPtr Rhs;
};

/// A (possibly array) variable declaration. Dimensions are integer constants
/// after parsing (the parser folds #define'd and const-int symbols).
class DeclStmt : public Stmt {
public:
  DeclStmt(ElemType Elem, std::string Name, std::vector<int64_t> Dims,
           ExprPtr Init)
      : Stmt(StmtKind::Decl), Elem(Elem), Name(std::move(Name)),
        Dims(std::move(Dims)), Init(std::move(Init)) {}

  static bool classof(const Stmt *S) { return S->kind() == StmtKind::Decl; }

  StmtPtr cloneImpl() const override {
    auto Copy = std::make_unique<DeclStmt>(Elem, Name, Dims,
                                           Init ? Init->clone() : nullptr);
    copyPragmasTo(*Copy);
    return Copy;
  }

  bool isArray() const { return !Dims.empty(); }

  ElemType Elem;
  std::string Name;
  std::vector<int64_t> Dims;
  ExprPtr Init; // scalar initializer; may be null
};

/// An expression statement wrapping a call (e.g. init_array();).
class CallStmt : public Stmt {
public:
  explicit CallStmt(ExprPtr Call) : Stmt(StmtKind::CallStmt), Call(std::move(Call)) {}

  static bool classof(const Stmt *S) { return S->kind() == StmtKind::CallStmt; }

  StmtPtr cloneImpl() const override {
    auto Copy = std::make_unique<CallStmt>(Call->clone());
    copyPragmasTo(*Copy);
    return Copy;
  }

  ExprPtr Call;
};

//===----------------------------------------------------------------------===//
// Program
//===----------------------------------------------------------------------===//

/// A parsed MiniC translation unit: global declarations plus the body of the
/// (implicit or explicit) main function. Code regions are Block nodes within
/// Body whose RegionName is set.
class Program {
public:
  Program() : Body(std::make_unique<Block>()) {}

  /// Deep copy, used to materialize fresh variants per search point.
  std::unique_ptr<Program> clone() const {
    auto Copy = std::make_unique<Program>();
    for (const auto &D : Globals)
      Copy->Globals.push_back(
          std::unique_ptr<DeclStmt>(cast<DeclStmt>(D->clone().release())));
    Copy->Body = std::unique_ptr<Block>(cast<Block>(Body->clone().release()));
    return Copy;
  }

  /// Returns all region blocks named \p Name, in source order.
  std::vector<Block *> findRegions(const std::string &Name);
  std::vector<const Block *> findRegions(const std::string &Name) const;

  /// Returns the names of all regions, in source order (duplicates kept).
  std::vector<std::string> regionNames() const;

  /// Looks up a global declaration by name; null when absent.
  const DeclStmt *findGlobal(const std::string &Name) const;

  std::vector<std::unique_ptr<DeclStmt>> Globals;
  std::unique_ptr<Block> Body;
};

} // namespace cir
} // namespace locus

#endif // LOCUS_CIR_AST_H
