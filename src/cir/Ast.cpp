//===- Ast.cpp - MiniC AST out-of-line pieces -----------------------------===//

#include "src/cir/Ast.h"

namespace locus {
namespace cir {

ExprPtr makeInt(int64_t Value) { return std::make_unique<IntLit>(Value); }

ExprPtr makeVar(std::string Name) {
  return std::make_unique<VarRef>(std::move(Name));
}

ExprPtr makeBin(BinOp Op, ExprPtr Lhs, ExprPtr Rhs) {
  return std::make_unique<BinaryExpr>(Op, std::move(Lhs), std::move(Rhs));
}

ExprPtr makeCall(std::string Callee, std::vector<ExprPtr> Args) {
  return std::make_unique<CallExpr>(std::move(Callee), std::move(Args));
}

ExprPtr makeMin(ExprPtr Lhs, ExprPtr Rhs) {
  std::vector<ExprPtr> Args;
  Args.push_back(std::move(Lhs));
  Args.push_back(std::move(Rhs));
  return makeCall("min", std::move(Args));
}

ExprPtr makeMax(ExprPtr Lhs, ExprPtr Rhs) {
  std::vector<ExprPtr> Args;
  Args.push_back(std::move(Lhs));
  Args.push_back(std::move(Rhs));
  return makeCall("max", std::move(Args));
}

namespace {

/// Collects region blocks in source order.
void collectRegions(const Block &B, const std::string *Name,
                    std::vector<const Block *> *Out,
                    std::vector<std::string> *NamesOut) {
  if (!B.RegionName.empty()) {
    if (NamesOut)
      NamesOut->push_back(B.RegionName);
    if (Out && Name && B.RegionName == *Name)
      Out->push_back(&B);
  }
  for (const auto &S : B.Stmts) {
    if (const auto *Sub = dyn_cast<Block>(S.get()))
      collectRegions(*Sub, Name, Out, NamesOut);
    else if (const auto *For = dyn_cast<ForStmt>(S.get()))
      collectRegions(*For->Body, Name, Out, NamesOut);
    else if (const auto *If = dyn_cast<IfStmt>(S.get())) {
      collectRegions(*If->Then, Name, Out, NamesOut);
      if (If->Else)
        collectRegions(*If->Else, Name, Out, NamesOut);
    }
  }
}

} // namespace

std::vector<Block *> Program::findRegions(const std::string &Name) {
  std::vector<Block *> Result;
  // The walk itself is const; a mutable Program may hand out mutable blocks.
  for (const Block *B : static_cast<const Program *>(this)->findRegions(Name))
    Result.push_back(const_cast<Block *>(B));
  return Result;
}

std::vector<const Block *> Program::findRegions(const std::string &Name) const {
  std::vector<const Block *> Result;
  collectRegions(*Body, &Name, &Result, nullptr);
  return Result;
}

std::vector<std::string> Program::regionNames() const {
  std::vector<std::string> Names;
  collectRegions(*Body, nullptr, nullptr, &Names);
  return Names;
}

const DeclStmt *Program::findGlobal(const std::string &Name) const {
  for (const auto &D : Globals)
    if (D->Name == Name)
      return D.get();
  return nullptr;
}

} // namespace cir
} // namespace locus
