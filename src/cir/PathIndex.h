//===- PathIndex.h - Hierarchical statement indexing -----------*- C++ -*-===//
///
/// \file
/// Implements the paper's hierarchical indexing (Section III): a path such as
/// "0.0.1" names a statement or loop inside a code region. Each number is the
/// position at its level; descending a level means entering a loop body or a
/// compound statement. "0.0.0" on the matmul region of Fig. 3 names the
/// innermost k loop.
///
//===----------------------------------------------------------------------===//
#ifndef LOCUS_CIR_PATHINDEX_H
#define LOCUS_CIR_PATHINDEX_H

#include "src/cir/Ast.h"
#include "src/support/Error.h"

#include <string>
#include <vector>

namespace locus {
namespace cir {

/// The location of a statement: the block that owns it and its index, so
/// callers can replace the statement in place.
struct StmtLocation {
  Block *Parent = nullptr;
  size_t Index = 0;

  Stmt *get() const { return Parent->Stmts[Index].get(); }

  /// Replaces the addressed statement, returning the old one.
  StmtPtr replace(StmtPtr New) const {
    StmtPtr Old = std::move(Parent->Stmts[Index]);
    Parent->Stmts[Index] = std::move(New);
    return Old;
  }
};

/// Parses "a.b.c" into numeric components; errors on malformed paths.
Expected<std::vector<int>> parsePath(const std::string &Path);

/// Resolves \p Path inside \p Region. The final component addresses a
/// statement in its level's statement list; intermediate components must
/// address loops or compound blocks to descend through.
Expected<StmtLocation> resolvePath(Block &Region, const std::string &Path);

/// Like resolvePath but requires the result to be a ForStmt.
Expected<ForStmt *> resolveLoopPath(Block &Region, const std::string &Path);

/// Loop-wise interpretation of a path: each component indexes only the
/// loops at its nesting level, skipping interleaved plain statements (such
/// as LICM-hoisted definitions). "0.0.0.0" then names the 4th-level loop of
/// the nest even after statements were hoisted between the loops. Used by
/// the pragma modules whose targets are always loops.
Expected<ForStmt *> resolveLoopPathLoopwise(Block &Region,
                                            const std::string &Path);

/// A discovered loop with its hierarchical path string.
struct LoopEntry {
  std::string Path;
  ForStmt *Loop = nullptr;
};

/// Lists every loop in the region with its path, in preorder.
std::vector<LoopEntry> listLoops(Block &Region);

/// Lists the innermost loops of the region (loops containing no other loop).
std::vector<LoopEntry> listInnerLoops(Block &Region);

/// Lists the outermost loops of the region (loops not contained in another).
std::vector<LoopEntry> listOuterLoops(Block &Region);

/// Finds the owning block and index of \p Target anywhere under \p Root
/// (searching loop bodies and if branches). Returns nullopt when absent.
std::optional<StmtLocation> locateStmt(Block &Root, const Stmt *Target);

} // namespace cir
} // namespace locus

#endif // LOCUS_CIR_PATHINDEX_H
