//===- DriverTest.cpp - End-to-end orchestration tests ------------------------===//

#include "src/baseline/Pluto.h"
#include "src/cir/Parser.h"
#include "src/cir/PathIndex.h"
#include "src/driver/Orchestrator.h"
#include "src/locus/LocusParser.h"
#include "src/workloads/Workloads.h"

#include <gtest/gtest.h>

namespace locus {
namespace {

using driver::Orchestrator;
using driver::OrchestratorOptions;

std::unique_ptr<lang::LocusProgram> parseLocusOrDie(const std::string &Src) {
  auto P = lang::parseLocusProgram(Src);
  EXPECT_TRUE(P.ok()) << P.message();
  return P.ok() ? std::move(*P) : nullptr;
}

std::unique_ptr<cir::Program> parseCOrDie(const std::string &Src) {
  auto P = cir::parseProgram(Src);
  EXPECT_TRUE(P.ok()) << P.message();
  return P.ok() ? std::move(*P) : nullptr;
}

OrchestratorOptions tinyOptions() {
  OrchestratorOptions Opts;
  Opts.Eval.Machine = machine::MachineConfig::tiny();
  Opts.MaxEvaluations = 30;
  Opts.Seed = 5;
  return Opts;
}

TEST(Driver, SearchWorkflowOnFig5) {
  auto LP = parseLocusOrDie(workloads::dgemmLocusFig5());
  auto CP = parseCOrDie(workloads::dgemmSource(24, 24, 24));
  OrchestratorOptions Opts = tinyOptions();
  Opts.SearcherName = "bandit";
  Orchestrator Orch(*LP, *CP, Opts);
  auto R = Orch.runSearch();
  ASSERT_TRUE(R.ok()) << R.message();
  EXPECT_EQ(R->Space.Params.size(), 3u);
  EXPECT_GT(R->Search.Evaluations, 0);
  EXPECT_GE(R->Speedup, 1.0); // non-prescriptive floor
  ASSERT_NE(R->BestProgram, nullptr);
  if (!R->BaselineChosen) {
    // Checksum-equivalence was enforced per evaluated variant.
    EXPECT_LT(R->BestCycles, R->BaselineCycles);
  }
}

TEST(Driver, SearchWorkflowOnFig7FindsTilingWin) {
  auto LP = parseLocusOrDie(workloads::dgemmLocusFig7(16));
  auto CP = parseCOrDie(workloads::dgemmSource(32, 32, 32));
  OrchestratorOptions Opts = tinyOptions();
  Opts.MaxEvaluations = 40;
  Orchestrator Orch(*LP, *CP, Opts);
  auto R = Orch.runSearch();
  ASSERT_TRUE(R.ok()) << R.message();
  // On the tiny machine (1 KB L1) a 32^3 DGEMM is strongly cache-bound:
  // interchange+tiling+parallel must beat the naive baseline.
  EXPECT_FALSE(R->BaselineChosen);
  EXPECT_GT(R->Speedup, 1.5) << "speedup " << R->Speedup;
}

TEST(Driver, PointRoundTripReproducesBestVariant) {
  auto LP = parseLocusOrDie(workloads::dgemmLocusFig5());
  auto CP = parseCOrDie(workloads::dgemmSource(24, 24, 24));
  OrchestratorOptions Opts = tinyOptions();
  Orchestrator Orch(*LP, *CP, Opts);
  auto R = Orch.runSearch();
  ASSERT_TRUE(R.ok()) << R.message();
  if (R->BaselineChosen)
    GTEST_SKIP() << "baseline won; no point to round-trip";

  std::string Text = driver::serializePoint(R->Search.Best);
  auto Restored = driver::deserializePoint(Text, R->Space);
  ASSERT_TRUE(Restored.ok()) << Restored.message();
  auto Direct = Orch.runPoint(*Restored);
  ASSERT_TRUE(Direct.ok()) << Direct.message();
  EXPECT_DOUBLE_EQ(Direct->Run.Cycles, R->BestCycles);
}

TEST(Driver, NonPrescriptiveFallbackOnUselessProgram) {
  // A program that only adds unprofitable work: distribute nothing and
  // unroll by 2 on a loop already dominated by memory cost; the fallback
  // must still return a valid result with speedup >= 1... but more robust:
  // a program whose transformation is always Illegal yields only invalid
  // points, so the baseline is chosen.
  const char *Src = R"(
#define N 16
double A[N][N];
int main() {
  int i, j;
#pragma @Locus loop=wave
  for (i = 1; i < N; i++)
    for (j = 0; j < N - 1; j++)
      A[i][j] = A[i - 1][j + 1] + 1.0;
}
)";
  const char *Prog = R"(
CodeReg wave {
  f = poweroftwo(2..8);
  RoseLocus.Tiling(loop="0", factor=[f, f]);
}
)";
  auto LP = parseLocusOrDie(Prog);
  auto CP = parseCOrDie(Src);
  OrchestratorOptions Opts = tinyOptions();
  Orchestrator Orch(*LP, *CP, Opts);
  auto R = Orch.runSearch();
  ASSERT_TRUE(R.ok()) << R.message();
  EXPECT_TRUE(R->BaselineChosen);
  EXPECT_EQ(R->Speedup, 1.0);
  EXPECT_GT(R->Search.InvalidPoints, 0);
}

TEST(Driver, DirectWorkflow) {
  const char *Prog = R"(
CodeReg matmul {
  RoseLocus.Interchange(order=[0, 2, 1]);
  Pips.Tiling(loop="0", factor=[8, 8, 8]);
  Pragma.OMPFor(loop="0");
}
)";
  auto LP = parseLocusOrDie(Prog);
  auto CP = parseCOrDie(workloads::dgemmSource(24, 24, 24));
  OrchestratorOptions Opts = tinyOptions();
  Orchestrator Orch(*LP, *CP, Opts);
  auto Direct = Orch.runDirect();
  ASSERT_TRUE(Direct.ok()) << Direct.message();
  EXPECT_EQ(Direct->Exec.TransformsApplied, 3);
  auto Baseline = Orch.evaluateBaseline();
  ASSERT_TRUE(Baseline.ok());
  EXPECT_NEAR(Direct->Run.Checksum, Baseline->Checksum,
              1e-9 * std::abs(Baseline->Checksum));
}

TEST(Driver, RegionHashes) {
  auto LP = parseLocusOrDie("CodeReg matmul { RoseLocus.LICM(); }");
  auto CP1 = parseCOrDie(workloads::dgemmSource(8, 8, 8));
  auto CP2 = parseCOrDie(workloads::dgemmSource(8, 8, 9));
  OrchestratorOptions Opts = tinyOptions();
  Orchestrator O1(*LP, *CP1, Opts);
  Orchestrator O2(*LP, *CP2, Opts);
  auto H1 = O1.regionHashes();
  auto H2 = O2.regionHashes();
  ASSERT_TRUE(H1.count("matmul"));
  // K differs -> the region text (bounds) differs -> the key changes.
  EXPECT_NE(H1["matmul"], H2["matmul"]);
  // Same source hashes identically.
  auto CP3 = parseCOrDie(workloads::dgemmSource(8, 8, 8));
  Orchestrator O3(*LP, *CP3, Opts);
  EXPECT_EQ(H1["matmul"], O3.regionHashes()["matmul"]);
}

//===----------------------------------------------------------------------===//
// Kripke integration
//===----------------------------------------------------------------------===//

class KripkeLayouts : public ::testing::TestWithParam<std::string> {};

TEST_P(KripkeLayouts, ScatteringMatchesHandOptimized) {
  const std::string &Layout = GetParam();
  workloads::KripkeConfig C;
  C.NumZones = 16;
  C.NumGroups = 4;
  C.NumMoments = 3;

  std::string Skeleton = workloads::kripkeKernelSource(C, "Scattering");
  auto CP = parseCOrDie(Skeleton);
  auto LP = parseLocusOrDie(workloads::kripkeLocusFig11("Scattering"));

  OrchestratorOptions Opts = tinyOptions();
  Opts.Snippets = workloads::kripkeSnippets(C, "Scattering");
  Opts.InitHook = [C](eval::ProgramEvaluator &E) {
    workloads::initKripkeArrays(E, C);
  };
  Orchestrator Orch(*LP, *CP, Opts);

  // Pin the layout enum to this layout.
  auto R = Orch.runSearch();
  ASSERT_TRUE(R.ok()) << R.message();
  ASSERT_EQ(R->Space.Params.size(), 1u);
  search::Point P;
  const auto &Layouts = workloads::kripkeLayouts();
  auto It = std::find(Layouts.begin(), Layouts.end(), Layout);
  P.Values[R->Space.Params[0].Id] =
      static_cast<int64_t>(It - Layouts.begin());
  auto Direct = Orch.runPoint(P);
  ASSERT_TRUE(Direct.ok()) << Direct.message();
  EXPECT_GE(Direct->Exec.TransformsApplied, 3);

  // The hand-optimized source must compute the same result.
  std::string Hand = workloads::kripkeHandOptimizedSource(C, "Scattering", Layout);
  auto HandProg = parseCOrDie(Hand);
  eval::EvalOptions EOpts;
  EOpts.Machine = machine::MachineConfig::tiny();
  eval::ProgramEvaluator HandEval(*HandProg, EOpts);
  ASSERT_TRUE(HandEval.prepare().ok());
  workloads::initKripkeArrays(HandEval, C);
  eval::RunResult HandRun = HandEval.run();
  ASSERT_TRUE(HandRun.Ok) << HandRun.Error;
  EXPECT_NEAR(Direct->Run.Checksum, HandRun.Checksum,
              1e-9 * std::abs(HandRun.Checksum))
      << "layout " << Layout;
}

INSTANTIATE_TEST_SUITE_P(AllLayouts, KripkeLayouts,
                         ::testing::Values("DGZ", "DZG", "GDZ", "GZD", "ZDG",
                                           "ZGD"));

TEST(Kripke, AllKernelsRunUnderAllLayouts) {
  workloads::KripkeConfig C;
  C.NumZones = 8;
  C.NumGroups = 3;
  C.NumMoments = 2;
  C.NumDirections = 4;
  for (const std::string &Kernel : workloads::kripkeKernels()) {
    auto CP = parseCOrDie(workloads::kripkeKernelSource(C, Kernel));
    auto LP = parseLocusOrDie(workloads::kripkeLocusFig11(Kernel));
    OrchestratorOptions Opts = tinyOptions();
    Opts.Snippets = workloads::kripkeSnippets(C, Kernel);
    Opts.InitHook = [C](eval::ProgramEvaluator &E) {
      workloads::initKripkeArrays(E, C);
    };
    Opts.MaxEvaluations = 6; // the layout enum is the whole space
    Opts.SearcherName = "exhaustive";
    Orchestrator Orch(*LP, *CP, Opts);
    auto R = Orch.runSearch();
    ASSERT_TRUE(R.ok()) << Kernel << ": " << R.message();
    EXPECT_EQ(R->Search.Evaluations, 6) << Kernel;
    EXPECT_TRUE(R->Search.Found) << Kernel;
  }
}

//===----------------------------------------------------------------------===//
// Pluto baseline
//===----------------------------------------------------------------------===//

TEST(Pluto, TransformsAffineMatmul) {
  auto CP = parseCOrDie(workloads::dgemmSource(48, 48, 48));
  baseline::PlutoOptions Opts;
  Opts.TileSize = 8;
  baseline::PlutoOutcome Out = baseline::runPluto(*CP, "matmul", Opts);
  ASSERT_TRUE(Out.Transformed) << Out.Summary;
  cir::Block *Region = Out.Program->findRegions("matmul")[0];
  EXPECT_EQ(cir::listLoops(*Region).size(), 6u); // 3 tile + 3 intra
  // Semantics preserved.
  eval::EvalOptions EOpts;
  EOpts.CountCost = false;
  eval::RunResult Base = eval::evaluateProgram(*CP, EOpts);
  eval::RunResult Opt = eval::evaluateProgram(*Out.Program, EOpts);
  ASSERT_TRUE(Base.Ok && Opt.Ok);
  EXPECT_NEAR(Base.Checksum, Opt.Checksum, 1e-9 * std::abs(Base.Checksum));
}

TEST(Pluto, RefusesNonAffineCode) {
  const char *Src = R"(
#define N 32
double A[N];
double B[N];
int idx[N];
int main() {
  int i;
#pragma @Locus loop=scop
  for (i = 0; i < N; i++)
    A[idx[i]] = A[idx[i]] + B[i];
}
)";
  auto CP = parseCOrDie(Src);
  baseline::PlutoOptions Opts;
  Opts.TrySkewedTiling = false;
  baseline::PlutoOutcome Out = baseline::runPluto(*CP, "scop", Opts);
  EXPECT_FALSE(Out.Transformed);
}

TEST(Pluto, SkewTilesStencilWithValidation) {
  auto CP = parseCOrDie(
      workloads::stencilSource(workloads::StencilKind::Heat2D, 6, 12));
  eval::EvalOptions EOpts;
  EOpts.CountCost = false;
  eval::RunResult Base = eval::evaluateProgram(*CP, EOpts);
  ASSERT_TRUE(Base.Ok);
  baseline::PlutoOptions Opts;
  Opts.TileSize = 4;
  baseline::PlutoOutcome Out = baseline::runPluto(
      *CP, "stencil", Opts, [&](const cir::Program &Candidate) {
        eval::RunResult R = eval::evaluateProgram(Candidate, EOpts);
        return R.Ok &&
               std::abs(R.Checksum - Base.Checksum) <
                   1e-9 * std::max(1.0, std::abs(Base.Checksum));
      });
  ASSERT_TRUE(Out.Transformed) << Out.Summary;
  EXPECT_NE(Out.Summary.find("skewed"), std::string::npos) << Out.Summary;
}

TEST(Pluto, TunedDgemmMatchesBaselineSemantics) {
  auto Naive = parseCOrDie(workloads::dgemmSource(24, 24, 24));
  auto Tuned = parseCOrDie(baseline::tunedDgemmSource(24, 24, 24, 8));
  eval::EvalOptions EOpts;
  EOpts.CountCost = false;
  eval::RunResult A = eval::evaluateProgram(*Naive, EOpts);
  eval::RunResult B = eval::evaluateProgram(*Tuned, EOpts);
  ASSERT_TRUE(A.Ok) << A.Error;
  ASSERT_TRUE(B.Ok) << B.Error;
  EXPECT_NEAR(A.Checksum, B.Checksum, 1e-9 * std::abs(A.Checksum));
}

} // namespace
} // namespace locus
